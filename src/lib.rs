//! # blelloch-scan
//!
//! A from-scratch Rust reproduction of Guy E. Blelloch, *Scans as
//! Primitive Parallel Operations* (ICPP 1987): the scan primitives and
//! vector operation vocabulary, the scan machine model with step
//! accounting, the logic-level hardware circuit of Section 3, and the
//! full algorithm suite of Section 2 and Table 1.
//!
//! This facade crate re-exports the four member crates:
//!
//! - [`core`] (`scan-core`) — scans, segmented scans, derived vector
//!   operations, and the §3.4 two-primitive simulation layer;
//! - [`pram`] (`scan-pram`) — P-RAM machine models (EREW/CREW/CRCW and
//!   the scan model) with measured step complexity;
//! - [`circuit`] (`scan-circuit`) — the cycle-accurate bit-pipelined
//!   tree scan circuit and the Table 2/4 cost models;
//! - [`shard`] (`scan-shard`) — sharded execution: one scan fanned
//!   across independent worker pools with the §3 tree combine of
//!   per-shard totals, shard-loss detection and recovery
//!   (re-execution on survivors, breaker quarantine, probe
//!   readmission), and graceful degradation;
//! - [`service`] (`scan-service`) — the multi-tenant serving layer: a
//!   coalescing front door that batches many small concurrent scan
//!   requests into one segmented-scan mega-batch, with admission
//!   control, per-tenant fairness, deadline propagation, and
//!   overload-graceful degradation;
//! - [`algorithms`] (`scan-algorithms`) — split radix sort, quicksort,
//!   halving merge, MST, connected components, MIS, line drawing,
//!   line of sight, convex hull, k-d trees, closest pair, list
//!   ranking, Euler tours, matrix kernels, and the appendix numerics.
//!
//! ## Quickstart
//!
//! ```
//! use blelloch_scan::core::{scan, op::Sum};
//! use blelloch_scan::algorithms::sort::split_radix_sort;
//!
//! // The paper's +-scan:
//! assert_eq!(scan::<Sum, _>(&[2u32, 1, 2, 3, 5, 8, 13, 21]),
//!            vec![0, 2, 3, 5, 8, 13, 21, 34]);
//!
//! // And the sort built on it:
//! assert_eq!(split_radix_sort(&[5, 7, 3, 1, 4, 2, 7, 2], 3),
//!            vec![1, 2, 2, 3, 4, 5, 7, 7]);
//! ```

#![warn(missing_docs)]

pub use scan_algorithms as algorithms;
pub use scan_circuit as circuit;
pub use scan_core as core;
pub use scan_pram as pram;
pub use scan_service as service;
pub use scan_shard as shard;
