//! The graph workload of §2.3: build the segmented representation,
//! run the random-mate minimum-spanning-tree algorithm, and verify
//! against Kruskal.
//!
//! Run with: `cargo run --release --example graph_mst`

use blelloch_scan::algorithms::graph::reference::kruskal;
use blelloch_scan::algorithms::graph::segmented::SegGraph;
use blelloch_scan::algorithms::graph::{connected_components, minimum_spanning_tree};
use blelloch_scan::core::op::Sum;
use blelloch_scan::pram::{Ctx, Model};

fn random_graph(n: usize, m: usize, seed: u64) -> Vec<(usize, usize, u64)> {
    let mut x = seed | 1;
    let mut rng = move || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        x >> 24
    };
    (0..m)
        .filter_map(|_| {
            let u = (rng() as usize) % n;
            let v = (rng() as usize) % n;
            (u != v).then(|| (u, v, rng() % 10_000))
        })
        .collect()
}

fn main() {
    // Start with the paper's own Figure 6 graph.
    let g = SegGraph::figure6();
    println!("Figure 6 graph:");
    println!("  vertex-of-slot = {:?}", g.vertex_of_slot);
    println!("  cross-pointers = {:?}", g.cross_pointers);
    println!("  weights        = {:?}", g.weights);
    let mut ctx = Ctx::new(Model::Scan);
    let degrees = g.per_vertex_reduce::<Sum, _>(&mut ctx, &vec![1u64; g.n_slots()]);
    println!("  degrees        = {degrees:?}");
    let nbr_sum = g.neighbor_reduce::<Sum, _>(&mut ctx, &[10u64, 20, 30, 40, 50]);
    println!("  neighbor sums of [10 20 30 40 50] = {nbr_sum:?}");
    println!("  (each an O(1)-step operation — §2.3.2)\n");

    // A larger random graph: MST + components, verified.
    let n = 2_000;
    let edges = random_graph(n, 12_000, 2026);
    let mut ctx = Ctx::new(Model::Scan);
    let mst =
        blelloch_scan::algorithms::graph::mst::minimum_spanning_tree_ctx(&mut ctx, n, &edges, 7);
    let (expect, expect_weight) = kruskal(n, &edges);
    assert_eq!(mst.edges, expect, "random-mate MST must match Kruskal");
    assert_eq!(mst.total_weight, expect_weight);
    println!(
        "Random graph: n = {n}, m = {} edges",
        edges.len()
    );
    println!(
        "  MST: {} edges, total weight {}, found in {} star-merge rounds",
        mst.edges.len(),
        mst.total_weight,
        mst.rounds
    );
    println!("  program steps on the scan model: {}", ctx.stats());
    println!("  matches Kruskal: yes (asserted)");

    let labels = connected_components(n, &edges, 3);
    let mut distinct: Vec<usize> = labels.clone();
    distinct.sort_unstable();
    distinct.dedup();
    println!("  connected components: {}", distinct.len());

    // The paper's claim: O(lg n) rounds, not O(n).
    let _ = minimum_spanning_tree(200, &random_graph(200, 2_000, 5), 11);
    println!(
        "\nRounds stay logarithmic: {} rounds for n = {n} (lg n ≈ {}).",
        mst.rounds,
        (n as f64).log2().round()
    );
}
