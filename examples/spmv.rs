//! Sparse matrix–vector multiply with segmented sums — the canonical
//! application of segmented scans: one segment per row, one element per
//! nonzero, and the whole product is three vector operations no matter
//! how irregular the rows are.
//!
//! Run with: `cargo run --release --example spmv`

use blelloch_scan::algorithms::matrix_sparse::SparseMatrix;
use blelloch_scan::pram::{Ctx, Model};

fn main() {
    // A small banded system with a few dense rows thrown in, built from
    // triplets (the construction radix-sorts them into row segments).
    let n = 12;
    let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..n {
        triplets.push((i, i, 4.0));
        if i + 1 < n {
            triplets.push((i, i + 1, -1.0));
            triplets.push((i + 1, i, -1.0));
        }
    }
    // Row 5 is dense — segmented sums don't care.
    for j in 0..n {
        if j != 5 {
            triplets.push((5, j, 0.25));
        }
    }
    let a = SparseMatrix::from_triplets(n, n, &triplets);
    println!(
        "matrix: {} x {}, {} nonzeros, row lengths {:?}",
        a.rows,
        a.cols,
        a.nnz(),
        a.row_lengths
    );
    let x: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 / 10.0).collect();
    let mut ctx = Ctx::new(Model::Scan);
    let y = a.spmv_ctx(&mut ctx, &x);
    println!("y = A x  = {y:?}");
    println!("program steps: {} (constant in rows, cols and nnz)", ctx.stats());
    // Verified against the dense reference.
    let expect = a.spmv_reference(&x);
    let err: f64 = y
        .iter()
        .zip(&expect)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!("max abs error vs dense reference: {err:.2e}");
    assert!(err < 1e-12);

    // The irregularity argument, measured: a power-law matrix (a few
    // giant rows) costs the same number of vector steps as a uniform
    // one.
    let power_law: Vec<(usize, usize, f64)> = (0..2000usize)
        .map(|k| {
            let row = if k % 17 == 0 { 0 } else { 1 + k % 99 };
            (row, k % 100, 1.0)
        })
        .collect();
    let b = SparseMatrix::from_triplets(100, 100, &power_law);
    let mut ctx2 = Ctx::new(Model::Scan);
    b.spmv_ctx(&mut ctx2, &vec![1.0; 100]);
    println!(
        "\npower-law matrix ({} nnz, max row {}): {} vector ops — same as above ({}).",
        b.nnz(),
        b.row_lengths.iter().max().expect("nonempty"),
        ctx2.stats().ops(),
        ctx.stats().ops(),
    );
    assert_eq!(ctx.stats().ops(), ctx2.stats().ops());
}
