//! The PARIS-style vector instruction set: the paper's operations as a
//! register machine, with step counting along for the ride.
//!
//! Run with: `cargo run --example paris_vm`

use blelloch_scan::pram::vm::{radix_pass_program, Instr, Vm};
use blelloch_scan::pram::Model;

fn main() {
    // Figure 2's radix sort, written as straight-line vector programs.
    let mut vm = Vm::new(Model::Scan);
    vm.load("keys", vec![5, 7, 3, 1, 4, 2, 7, 2]);
    println!("keys        = {:?}", vm.get("keys").unwrap());
    for bit in 0..3 {
        vm.run(&radix_pass_program(bit)).expect("valid program");
        println!("after bit {bit} = {:?}", vm.get("keys").unwrap());
    }
    println!("steps: {}\n", vm.stats());

    // A hand-written program: distance of every element to the running
    // maximum (a max-scan followed by a subtract).
    let mut vm = Vm::new(Model::Scan);
    vm.load("a", vec![3, 1, 4, 1, 5, 9, 2, 6]);
    vm.run(&[
        Instr::MaxScan { dst: "m", src: "a" },
        Instr::MaxV { dst: "m", a: "m", b: "a" }, // inclusive max
        Instr::Sub { dst: "gap", a: "m", b: "a" },
    ])
    .expect("valid program");
    println!("a            = {:?}", vm.get("a").unwrap());
    println!("running max  = {:?}", vm.get("m").unwrap());
    println!("gap to max   = {:?}", vm.get("gap").unwrap());

    // Segmented programs: per-segment sums in two instructions.
    let mut vm = Vm::new(Model::Scan);
    vm.load("a", vec![5, 1, 3, 4, 3, 9, 2, 6]);
    vm.load("heads", vec![1, 0, 1, 0, 0, 0, 1, 0]);
    vm.run(&[
        Instr::SegPlusScan { dst: "s", src: "a", flags: "heads" },
        Instr::Add { dst: "incl", a: "s", b: "a" },
    ])
    .expect("valid program");
    println!("\nsegmented exclusive sums = {:?}", vm.get("s").unwrap());
    println!("segmented inclusive sums = {:?}", vm.get("incl").unwrap());

    // Errors are first-class: reading an unwritten register fails.
    let mut vm = Vm::new(Model::Scan);
    let err = vm
        .step(Instr::PlusScan { dst: "x", src: "missing" })
        .unwrap_err();
    println!("\nexpected program error: {err}");
}
