//! Sorting on the scan model: the split radix sort (§2.2.1), the
//! segmented quicksort (§2.3.1) and the bitonic baseline (Table 4),
//! with measured step complexities under each machine model.
//!
//! Run with: `cargo run --release --example sorting`

use blelloch_scan::algorithms::sort::bitonic::bitonic_sort_ctx;
use blelloch_scan::algorithms::sort::quicksort::{quicksort_ctx, PivotRule};
use blelloch_scan::algorithms::sort::radix::split_radix_sort_ctx;
use blelloch_scan::pram::{Ctx, Model};

fn workload(n: usize, seed: u64) -> Vec<u64> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 40) & 0xFFFF
        })
        .collect()
}

fn main() {
    println!("Sorting 16-bit keys: program steps by algorithm and model\n");
    println!(
        "{:>8} {:>6} | {:>12} {:>12} {:>12}",
        "n", "model", "split-radix", "quicksort", "bitonic"
    );
    for lg_n in [8u32, 10, 12, 14] {
        let n = 1usize << lg_n;
        let keys = workload(n, 42);
        let mut expect = keys.clone();
        expect.sort_unstable();
        for model in [Model::Scan, Model::Erew] {
            let mut radix = Ctx::new(model);
            assert_eq!(split_radix_sort_ctx(&mut radix, &keys, 16), expect);
            let mut quick = Ctx::new(model);
            assert_eq!(
                quicksort_ctx(&mut quick, &keys, PivotRule::Random(7)).keys,
                expect
            );
            let mut bitonic = Ctx::new(model);
            assert_eq!(bitonic_sort_ctx(&mut bitonic, &keys), expect);
            println!(
                "{:>8} {:>6} | {:>12} {:>12} {:>12}",
                n,
                model.name(),
                radix.steps(),
                quick.steps(),
                bitonic.steps()
            );
        }
    }
    println!();
    println!("Shapes to notice (the paper's claims):");
    println!(" - split radix under the Scan model is flat in n (O(d) steps);");
    println!("   under EREW it grows by the lg n tree factor;");
    println!(" - quicksort's expected steps grow like lg n on the Scan model;");
    println!(" - bitonic takes the same steps under both models — scans");
    println!("   don't help it, which is why it is the Table 4 yardstick.");
}
