//! Quickstart: the scan primitives and the derived vector operations,
//! on the paper's own worked examples.
//!
//! Run with: `cargo run --example quickstart`

use blelloch_scan::core::op::{Max, Sum};
use blelloch_scan::core::ops;
use blelloch_scan::core::{allocate, distribute, scan, seg_scan, Segments};
use blelloch_scan::pram::{Ctx, Model};

fn main() {
    // The paper's definition (§1): scan takes [a0, a1, ..., a(n-1)] to
    // [i, a0, a0⊕a1, ...].
    let a = [2u32, 1, 2, 3, 5, 8, 13, 21];
    println!("A          = {a:?}");
    println!("+-scan(A)  = {:?}", scan::<Sum, _>(&a));
    println!("max-scan(A)= {:?}", scan::<Max, _>(&a));

    // Figure 1: enumerate / copy / +-distribute.
    let flags = [true, false, false, true, false, true, true, false];
    println!("\nenumerate({flags:?})\n  = {:?}", ops::enumerate(&flags));
    let b = [1u32, 1, 2, 1, 1, 2, 1, 1];
    println!("+-distribute({b:?}) = {:?}", ops::distribute_op::<Sum, _>(&b));

    // Figure 3: split packs false-flagged elements to the bottom.
    let v = [5u32, 7, 3, 1, 4, 2, 7, 2];
    let f = [true, true, true, true, false, false, true, false];
    println!("\nsplit({v:?})\n  = {:?}", ops::split(&v, &f));

    // Figure 4: segmented scans restart at segment heads.
    let vals = [5u32, 1, 3, 4, 3, 9, 2, 6];
    let segs = Segments::from_flags(vec![
        true, false, true, false, false, false, true, false,
    ]);
    println!(
        "\nseg-+-scan   = {:?}",
        seg_scan::<Sum, _>(&vals, &segs)
    );
    println!("seg-max-scan = {:?}", seg_scan::<Max, _>(&vals, &segs));

    // Figure 8: processor allocation.
    let alloc = allocate(&[4, 1, 3]);
    println!(
        "\nallocate([4,1,3]): total {}, starts {:?}",
        alloc.total, alloc.starts
    );
    println!(
        "distribute([v1,v2,v3]) = {:?}",
        distribute(&["v1", "v2", "v3"], &[4, 1, 3])
    );

    // The same operations, step-counted under two machine models.
    let keys: Vec<u64> = (0..1024u64).map(|i| (i * 2654435761) % 1024).collect();
    for model in [Model::Scan, Model::Erew] {
        let mut ctx = Ctx::new(model);
        ctx.scan::<Sum, _>(&keys);
        ctx.split(&keys, &keys.iter().map(|&k| k % 2 == 0).collect::<Vec<_>>());
        println!(
            "\n{} model: scan + split on 1024 elements took {}",
            model.name(),
            ctx.stats()
        );
    }
    println!("\nThe scan model executes both in a handful of steps; the");
    println!("EREW P-RAM pays 2·lg n per scan — Table 1's missing factor.");
}
