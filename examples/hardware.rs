//! The Section 3 hardware, live: run scans bit-by-bit through the
//! simulated tree circuit, check them against the software kernels,
//! and print the cost accounting of Tables 2 and the §3.3 example
//! system.
//!
//! Run with: `cargo run --release --example hardware`

use blelloch_scan::circuit::{
    baseline, CircuitBackend, ExampleSystem, HardwareCost, OpKind, TreeScanCircuit,
};
use blelloch_scan::core::op::{Min, Sum};
use blelloch_scan::core::scan;
use blelloch_scan::core::simulate::{self, PrimitiveScans};

fn main() {
    // A 64-leaf circuit executing a 16-bit +-scan, cycle by cycle.
    let values: Vec<u64> = (0..64u64).map(|i| (i * 37) % 1000).collect();
    let mut circuit = TreeScanCircuit::new(64);
    let run = circuit.scan(OpKind::Plus, &values, 16);
    assert_eq!(run.values, scan::<Sum, _>(&values));
    println!("64-leaf tree circuit, 16-bit +-scan:");
    println!(
        "  {} bit cycles (paper bound m + 2 lg n = {})",
        run.cycles,
        circuit.cycle_bound(16)
    );

    // The same tree executes max-scan with the Op line high.
    let run = circuit.scan(OpKind::Max, &values, 16);
    println!("  max-scan result matches software: {}", {
        use blelloch_scan::core::op::Max;
        run.values == scan::<Max, _>(&values)
    });

    // §3.4: every other scan from the two primitives — here running on
    // the simulated hardware itself.
    let hw = CircuitBackend::new(64);
    let a = [7u64, 3, 9, 1, 14, 2];
    assert_eq!(simulate::min_scan_u64(&hw, &a), scan::<Min, _>(&a));
    println!(
        "\nmin-scan via invert∘max-scan∘invert on the circuit: ok ({} scans, {} cycles)",
        hw.scans(),
        hw.cycles()
    );
    let bools = [false, true, false, false, true];
    assert_eq!(
        simulate::or_scan(&hw, &bools),
        scan::<blelloch_scan::core::op::Or, _>(&bools)
    );
    println!("or-scan as a 1-bit max-scan on the circuit: ok");
    let _ = hw.plus_scan(&a);

    // Hardware inventory (§3.2).
    println!("\nHardware inventory:");
    for lg in [6u32, 12, 16] {
        let n = 1usize << lg;
        let c = HardwareCost::for_leaves(n);
        println!(
            "  n = {:>6}: {:>6} units, {:>6} state machines, {:>7} FIFO bits, {:>7} wires",
            n, c.units, c.state_machines, c.fifo_bits, c.wires
        );
    }

    // The §3.3 example system.
    let sys = ExampleSystem::paper_config();
    println!("\n§3.3 example system (4096 processors, 64 per board):");
    println!(
        "  {} boards; each chip: {} state machines, {} shift registers",
        sys.boards(),
        sys.state_machines_per_chip(),
        sys.shift_registers_per_chip()
    );
    println!(
        "  32-bit scan at 100 ns clock: {:.1} µs  (paper: ~5 µs)",
        sys.scan_time_us(32)
    );
    let fast = ExampleSystem {
        clock_ns: 10.0,
        ..sys
    };
    println!(
        "  32-bit scan at  10 ns clock: {:.2} µs  (paper: ~0.5 µs)",
        fast.scan_time_us(32)
    );

    // Table 2's comparison: scan vs shared-memory reference.
    let n = 1 << 16;
    println!("\nTable 2 shape at n = 64K, 32-bit fields:");
    println!(
        "  scan:             {:>5} bit cycles",
        baseline::scan_bit_cycles(n, 32)
    );
    println!(
        "  memory reference: {:>5} bit cycles (butterfly model)",
        baseline::memory_reference_bit_cycles(n, 32)
    );
    println!(
        "  tree components {} vs butterfly switches {}",
        HardwareCost::for_leaves(n).size_components(),
        baseline::butterfly_switches(n)
    );
}
