//! Figure 9 live: draw the paper's three example lines by processor
//! allocation, render them on an ASCII grid, and run the line-of-sight
//! kernel on a synthetic ridge.
//!
//! Run with: `cargo run --example line_drawing`

use blelloch_scan::algorithms::geometry::{
    draw_lines, line_of_sight, render_ascii,
};
use blelloch_scan::pram::{Ctx, Model};

fn main() {
    // The exact endpoints of Figure 9.
    let lines = [
        ((11, 2), (23, 14)),
        ((2, 13), (13, 8)),
        ((16, 4), (31, 4)),
    ];
    let mut ctx = Ctx::new(Model::Scan);
    let pixels =
        blelloch_scan::algorithms::geometry::line_draw::draw_lines_ctx(&mut ctx, &lines);
    println!("Figure 9 — three lines, one processor per pixel:\n");
    println!("{}", render_ascii(&pixels, 32, 16));
    for l in 0..lines.len() {
        let count = pixels.iter().filter(|p| p.line == l).count();
        println!("line {l}: {count} pixels");
    }
    println!("\nprogram steps: {} (O(1) — §2.4.1)", ctx.stats());

    // Line of sight over a ridge (Table 1's O(1)-step entry).
    let terrain: Vec<f64> = (1..40)
        .map(|k| {
            let x = k as f64;
            // A hill at distance 12 and a taller one at 30.
            12.0 * (-(x - 12.0).powi(2) / 18.0).exp()
                + 25.0 * (-(x - 30.0).powi(2) / 30.0).exp()
        })
        .collect();
    let visible = line_of_sight(2.0, &terrain);
    println!("\nLine of sight from height 2.0 (█ visible, · hidden):");
    let profile: String = terrain
        .iter()
        .zip(&visible)
        .map(|(_, &v)| if v { '█' } else { '·' })
        .collect();
    println!("{profile}");
    let visible_count = visible.iter().filter(|&&v| v).count();
    println!(
        "{} of {} samples visible — the near hill shadows the valley.",
        visible_count,
        terrain.len()
    );
    assert!(draw_lines(&lines).len() == pixels.len());
}
