//! The §2.4 motivating workload: fixed-depth game search with dynamic
//! processor allocation — "we can execute the algorithms in parallel by
//! placing each possible move in a separate processor."
//!
//! The whole search frontier lives in one vector; each wave allocates a
//! processor per child move (§2.4), prunes decided positions (§2.5's
//! bounding), and the backward pass resolves the minimax with segmented
//! min/max distributes.
//!
//! Run with: `cargo run --release --example branch_and_bound`

use blelloch_scan::algorithms::game_search::{
    minimax_reference, parallel_minimax_ctx, Board,
};
use blelloch_scan::pram::{Ctx, Model};

fn main() {
    let positions = [
        ("empty board", Board::empty()),
        ("X about to win", Board::parse("XX. OO. ...", true)),
        ("O threatens twice", Board::parse("OO. .X. .XO", true)),
        ("midgame", Board::parse("X.O .X. O..", true)),
    ];
    for (name, board) in positions {
        let mut ctx = Ctx::new(Model::Scan);
        let r = parallel_minimax_ctx(&mut ctx, board, 9);
        let reference = minimax_reference(board, 9);
        assert_eq!(r.value, reference);
        let nodes: usize = r.wave_sizes.iter().sum();
        println!("{name}:");
        println!(
            "  minimax value {} (X's perspective), {} nodes in {} waves",
            r.value,
            nodes,
            r.wave_sizes.len()
        );
        println!("  frontier sizes: {:?}", r.wave_sizes);
        println!("  program steps: {} — scales with depth, not nodes\n", ctx.steps());
    }
    println!("Every wave is a handful of vector operations (allocate,");
    println!("distribute, segmented scan, segmented min/max), no matter how");
    println!("many positions it holds — the point of §2.4's allocation.");
}
