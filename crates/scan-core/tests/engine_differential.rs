//! Differential tests for the execution engine: every `*_by` entry
//! point, under all three parallel schedules ([`Schedule::Pooled`],
//! [`Schedule::Spawn`], and the single-pass [`Schedule::Lookback`])
//! and all four scan directions, must agree with the sequential
//! reference at sizes straddling `PAR_THRESHOLD`.
//!
//! The container running CI may expose a single core, which would give
//! the lazy global pool width 1 and silently skip the parallel paths.
//! [`setup`] pins `SCAN_CORE_THREADS=4` before the pool is first
//! touched so the blocked kernels genuinely run multi-threaded here.

// Not meaningful under the loom model-checking cfg (no global pool).
#![cfg(not(loom))]

use proptest::prelude::*;
use scan_core::parallel::{self, Schedule, PAR_THRESHOLD};
use scan_core::segmented::{
    seg_inclusive_scan, seg_inclusive_scan_backward, seg_scan, seg_scan_backward, Segments,
};
use scan_core::{Max, ScanOp, Sum};
use std::sync::{Mutex, Once};

static INIT: Once = Once::new();

/// Pin the pool width to 4 and force pool creation before any test
/// runs a scan. `Once` serializes this against every other test thread,
/// so the `set_var` cannot race a concurrent pool init reading the
/// environment.
fn setup() {
    INIT.call_once(|| {
        std::env::set_var("SCAN_CORE_THREADS", "4");
        assert_eq!(
            scan_core::pool::global().threads(),
            4,
            "pool must honor SCAN_CORE_THREADS"
        );
    });
}

/// Serializes tests that flip the process-wide default schedule.
static SCHED_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with the default schedule set to `s`, restoring Pooled after.
fn with_default_schedule<R>(s: Schedule, f: impl FnOnce() -> R) -> R {
    let _guard = SCHED_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    parallel::set_default_schedule(s);
    let r = f();
    parallel::set_default_schedule(Schedule::Pooled);
    r
}

const PAR_SCHEDULES: [Schedule; 3] = [Schedule::Pooled, Schedule::Spawn, Schedule::Lookback];

/// Sizes that straddle every interesting boundary: empty, tiny, just
/// below/at/above the parallel threshold, a size that is not a multiple
/// of the block plan, and a couple of larger parallel sizes.
fn sizes() -> Vec<usize> {
    vec![
        0,
        1,
        2,
        3,
        7,
        PAR_THRESHOLD - 1,
        PAR_THRESHOLD,
        PAR_THRESHOLD + 1,
        PAR_THRESHOLD + PAR_THRESHOLD / 4 + 1,
        2 * PAR_THRESHOLD + 7,
    ]
}

/// Deterministic pseudo-random data (splitmix64).
fn data(mut seed: u64, n: usize) -> Vec<u64> {
    (0..n)
        .map(|_| {
            seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        })
        .collect()
}

/// Segment head flags with roughly one head per `period` elements.
fn flags(seed: u64, n: usize, period: u64) -> Vec<bool> {
    data(seed ^ 0x5e65, n)
        .iter()
        .map(|&x| x % period == 0)
        .collect()
}

fn wadd(a: u64, b: u64) -> u64 {
    a.wrapping_add(b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn forward_scans_match_reference(seed in any::<u64>()) {
        setup();
        for n in sizes() {
            let a = data(seed, n);
            let ex = parallel::seq_exclusive_scan_by(&a, 0u64, wadd);
            let inc = parallel::seq_inclusive_scan_by(&a, 0u64, wadd);
            for sched in PAR_SCHEDULES {
                prop_assert_eq!(
                    parallel::exclusive_scan_by_sched(sched, &a, 0u64, wadd),
                    ex.clone(),
                    "exclusive fwd n={} sched={:?}", n, sched
                );
                prop_assert_eq!(
                    parallel::inclusive_scan_by_sched(sched, &a, 0u64, wadd),
                    inc.clone(),
                    "inclusive fwd n={} sched={:?}", n, sched
                );
            }
        }
    }

    #[test]
    fn backward_scans_match_reversed_reference(seed in any::<u64>()) {
        setup();
        for n in sizes() {
            let a = data(seed, n);
            let rev: Vec<u64> = a.iter().rev().copied().collect();
            let mut ex = parallel::seq_exclusive_scan_by(&rev, 0u64, u64::max);
            ex.reverse();
            let mut inc = parallel::seq_inclusive_scan_by(&rev, 0u64, u64::max);
            inc.reverse();
            for sched in PAR_SCHEDULES {
                prop_assert_eq!(
                    parallel::exclusive_scan_backward_by_sched(sched, &a, 0u64, u64::max),
                    ex.clone(),
                    "exclusive bwd n={} sched={:?}", n, sched
                );
                prop_assert_eq!(
                    parallel::inclusive_scan_backward_by_sched(sched, &a, 0u64, u64::max),
                    inc.clone(),
                    "inclusive bwd n={} sched={:?}", n, sched
                );
            }
        }
    }

    #[test]
    fn scan_with_total_matches_scan_plus_reduce(seed in any::<u64>()) {
        setup();
        for n in sizes() {
            let a = data(seed, n);
            let ex = parallel::seq_exclusive_scan_by(&a, 0u64, wadd);
            let total = parallel::seq_reduce_by(&a, 0u64, wadd);
            for sched in PAR_SCHEDULES {
                let (got, got_total) = with_default_schedule(sched, || {
                    parallel::scan_with_total_by(&a, 0u64, wadd)
                });
                prop_assert_eq!(got, ex.clone(), "with_total scan n={}", n);
                prop_assert_eq!(got_total, total, "with_total total n={}", n);
            }
        }
    }

    #[test]
    fn fused_map_scans_match_unfused(seed in any::<u64>()) {
        setup();
        let g = |x: u64| (x % 17) as u32;
        for n in sizes() {
            let a = data(seed, n);
            let mapped: Vec<u32> = a.iter().map(|&x| g(x)).collect();
            let ex = parallel::seq_exclusive_scan_by(&mapped, 0u32, u32::wrapping_add);
            let rev: Vec<u32> = mapped.iter().rev().copied().collect();
            let mut bex = parallel::seq_exclusive_scan_by(&rev, 0u32, u32::wrapping_add);
            bex.reverse();
            let total = parallel::seq_reduce_by(&mapped, 0u32, u32::wrapping_add);
            for sched in PAR_SCHEDULES {
                let (f_scan, f_back, (f_wt, f_total), f_red) = with_default_schedule(sched, || {
                    (
                        parallel::scan_map_by(&a, g, 0u32, u32::wrapping_add),
                        parallel::scan_map_backward_by(&a, g, 0u32, u32::wrapping_add),
                        parallel::scan_map_with_total_by(&a, g, 0u32, u32::wrapping_add),
                        parallel::reduce_map_by(&a, g, 0u32, u32::wrapping_add),
                    )
                });
                prop_assert_eq!(f_scan, ex.clone(), "scan_map n={} sched={:?}", n, sched);
                prop_assert_eq!(f_back, bex.clone(), "scan_map_backward n={}", n);
                prop_assert_eq!(f_wt, ex.clone(), "scan_map_with_total scan n={}", n);
                prop_assert_eq!(f_total, total, "scan_map_with_total total n={}", n);
                prop_assert_eq!(f_red, total, "reduce_map n={}", n);
            }
        }
    }

    #[test]
    fn reduce_map_tabulate_zip_match_naive(seed in any::<u64>()) {
        setup();
        for n in sizes() {
            let a = data(seed, n);
            let b = data(seed ^ 0xbeef, n);
            let red_ref = parallel::seq_reduce_by(&a, 0u64, u64::max);
            let map_ref: Vec<u64> = a.iter().map(|&x| x ^ 0xff).collect();
            let tab_ref: Vec<u64> = (0..n).map(|i| (i as u64) * 3).collect();
            let zip_ref: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x.wrapping_add(y)).collect();
            for sched in PAR_SCHEDULES {
                prop_assert_eq!(
                    parallel::reduce_by_sched(sched, &a, 0u64, u64::max),
                    red_ref,
                    "reduce n={} sched={:?}", n, sched
                );
                prop_assert_eq!(
                    parallel::map_by_sched(sched, &a, |x| x ^ 0xff),
                    map_ref.clone(),
                    "map n={}", n
                );
                let (tab, zip) = with_default_schedule(sched, || {
                    (
                        parallel::tabulate_by(n, |i| (i as u64) * 3),
                        parallel::zip_by(&a, &b, |x: u64, y: u64| x.wrapping_add(y)),
                    )
                });
                prop_assert_eq!(tab, tab_ref.clone(), "tabulate n={}", n);
                prop_assert_eq!(zip, zip_ref.clone(), "zip n={}", n);
            }
        }
    }

    #[test]
    fn segmented_pair_operator_matches_per_segment_reference(seed in any::<u64>()) {
        setup();
        for n in sizes() {
            let a = data(seed, n);
            let f = flags(seed, n, 97);
            let segs = Segments::from_flags(f);

            // Per-segment sequential references, all four directions.
            let mut ex = vec![0u64; n];
            let mut inc = vec![0u64; n];
            let mut bex = vec![0u64; n];
            let mut binc = vec![0u64; n];
            for (s, e) in segs.ranges() {
                let mut acc = 0u64;
                for i in s..e {
                    ex[i] = acc;
                    acc = acc.wrapping_add(a[i]);
                    inc[i] = acc;
                }
                let mut acc = 0u64;
                for i in (s..e).rev() {
                    bex[i] = acc;
                    acc = acc.wrapping_add(a[i]);
                    binc[i] = acc;
                }
            }

            for sched in PAR_SCHEDULES {
                // The library's fused segmented scans (default-schedule
                // entry points).
                let (g_ex, g_inc, g_bex, g_binc) = with_default_schedule(sched, || {
                    (
                        seg_scan::<Sum, _>(&a, &segs),
                        seg_inclusive_scan::<Sum, _>(&a, &segs),
                        seg_scan_backward::<Sum, _>(&a, &segs),
                        seg_inclusive_scan_backward::<Sum, _>(&a, &segs),
                    )
                });
                prop_assert_eq!(g_ex, ex.clone(), "seg excl fwd n={} sched={:?}", n, sched);
                prop_assert_eq!(g_inc, inc.clone(), "seg incl fwd n={}", n);
                prop_assert_eq!(g_bex, bex.clone(), "seg excl bwd n={}", n);
                prop_assert_eq!(g_binc, binc.clone(), "seg incl bwd n={}", n);

                // The raw pair operator through the generic engine: the
                // classic (value, flag) associative combine.
                let pairs: Vec<(u64, bool)> =
                    (0..n).map(|i| (a[i], segs.is_head(i))).collect();
                let combined = parallel::inclusive_scan_by_sched(
                    sched,
                    &pairs,
                    (0u64, false),
                    |(v1, f1), (v2, f2)| {
                        if f2 {
                            (v2, true)
                        } else {
                            (v1.wrapping_add(v2), f1)
                        }
                    },
                );
                let got: Vec<u64> = combined.iter().map(|&(v, _)| v).collect();
                prop_assert_eq!(got, inc.clone(), "pair-op seg scan n={} sched={:?}", n, sched);
            }
        }
    }

    #[test]
    fn max_op_library_wrappers_match(seed in any::<u64>()) {
        setup();
        for n in sizes() {
            let a = data(seed, n);
            let ex: Vec<u64> = {
                let mut out = Vec::with_capacity(n);
                let mut acc = Max::identity();
                for &x in &a {
                    out.push(acc);
                    acc = Max::combine(acc, x);
                }
                out
            };
            for sched in PAR_SCHEDULES {
                let got = with_default_schedule(sched, || scan_core::scan::<Max, _>(&a));
                prop_assert_eq!(got, ex.clone(), "scan::<Max> n={} sched={:?}", n, sched);
            }
        }
    }
}
