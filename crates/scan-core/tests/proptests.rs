//! Property-based tests for the scan primitives and derived vector
//! operations: every kernel must agree with a trivially-correct
//! sequential reference on arbitrary inputs.

// Not meaningful under the loom model-checking cfg (no global pool).
#![cfg(not(loom))]

use proptest::prelude::*;
use scan_core::op::{And, Max, Min, Or, ScanOp, Sum};
use scan_core::ops::{self, Bucket};
use scan_core::segmented::{
    seg_inclusive_scan, seg_inclusive_scan_backward, seg_scan, seg_scan_backward, Segments,
};
use scan_core::simulate::{self, SoftwareScans};
use scan_core::{allocate, distribute, inclusive_scan, scan, scan_backward};

/// Naive exclusive scan reference.
fn ref_scan<O: ScanOp<T>, T: scan_core::ScanElem>(a: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len());
    let mut acc = O::identity();
    for &x in a {
        out.push(acc);
        acc = O::combine(acc, x);
    }
    out
}

/// Naive per-segment exclusive scan reference.
fn ref_seg_scan<O: ScanOp<T>, T: scan_core::ScanElem>(a: &[T], segs: &Segments) -> Vec<T> {
    let mut out = vec![O::identity(); a.len()];
    for (s, e) in segs.ranges() {
        let mut acc = O::identity();
        for i in s..e {
            out[i] = acc;
            acc = O::combine(acc, a[i]);
        }
    }
    out
}

proptest! {
    #[test]
    fn plus_scan_matches_reference(a in proptest::collection::vec(any::<u64>(), 0..2000)) {
        prop_assert_eq!(scan::<Sum, _>(&a), ref_scan::<Sum, _>(&a));
    }

    #[test]
    fn max_scan_matches_reference(a in proptest::collection::vec(any::<u64>(), 0..2000)) {
        prop_assert_eq!(scan::<Max, _>(&a), ref_scan::<Max, _>(&a));
    }

    #[test]
    fn min_scan_matches_reference(a in proptest::collection::vec(any::<i64>(), 0..2000)) {
        prop_assert_eq!(scan::<Min, _>(&a), ref_scan::<Min, _>(&a));
    }

    #[test]
    fn inclusive_is_shifted_exclusive(a in proptest::collection::vec(any::<u32>(), 1..1000)) {
        let exc = scan::<Sum, _>(&a);
        let inc = inclusive_scan::<Sum, _>(&a);
        for i in 0..a.len() {
            prop_assert_eq!(inc[i], exc[i].wrapping_add(a[i]));
        }
    }

    #[test]
    fn backward_is_reversed_forward(a in proptest::collection::vec(any::<u64>(), 0..1000)) {
        let rev: Vec<u64> = a.iter().rev().copied().collect();
        let mut fwd = scan::<Sum, _>(&rev);
        fwd.reverse();
        prop_assert_eq!(scan_backward::<Sum, _>(&a), fwd);
    }

    #[test]
    fn seg_scan_equals_per_segment_scans(
        a in proptest::collection::vec(0u64..1_000_000, 1..1500),
        seed in any::<u64>(),
    ) {
        let flags: Vec<bool> = (0..a.len())
            .map(|i| (seed.wrapping_mul(i as u64 + 1).wrapping_mul(2654435761)).is_multiple_of(5))
            .collect();
        let segs = Segments::from_flags(flags);
        prop_assert_eq!(seg_scan::<Sum, _>(&a, &segs), ref_seg_scan::<Sum, _>(&a, &segs));
        prop_assert_eq!(seg_scan::<Max, _>(&a, &segs), ref_seg_scan::<Max, _>(&a, &segs));
        prop_assert_eq!(seg_scan::<Min, _>(&a, &segs), ref_seg_scan::<Min, _>(&a, &segs));
    }

    #[test]
    fn seg_inclusive_backward_consistency(
        a in proptest::collection::vec(0u64..1000, 1..800),
        seed in any::<u64>(),
    ) {
        let flags: Vec<bool> = (0..a.len())
            .map(|i| (seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15)).is_multiple_of(4))
            .collect();
        let segs = Segments::from_flags(flags);
        // inclusive == exclusive ⊕ own element
        let inc = seg_inclusive_scan::<Sum, _>(&a, &segs);
        let exc = seg_scan::<Sum, _>(&a, &segs);
        for i in 0..a.len() {
            prop_assert_eq!(inc[i], exc[i] + a[i]);
        }
        // backward inclusive == reversed forward inclusive on reversed segments
        let binc = seg_inclusive_scan_backward::<Sum, _>(&a, &segs);
        let bexc = seg_scan_backward::<Sum, _>(&a, &segs);
        for i in 0..a.len() {
            prop_assert_eq!(binc[i], bexc[i] + a[i]);
        }
        // per segment, last exclusive-backward element is identity
        for (_, e) in segs.ranges() {
            prop_assert_eq!(bexc[e - 1], 0);
        }
    }

    #[test]
    fn split_is_stable_partition(
        a in proptest::collection::vec(any::<u32>(), 0..1000),
        seed in any::<u64>(),
    ) {
        let flags: Vec<bool> = (0..a.len())
            .map(|i| (seed >> (i % 60)) & 1 == 1)
            .collect();
        let (got, n_false) = ops::split_count(&a, &flags);
        let mut expect: Vec<u32> = a.iter().zip(&flags).filter(|(_, &f)| !f).map(|(&x, _)| x).collect();
        prop_assert_eq!(expect.len(), n_false);
        expect.extend(a.iter().zip(&flags).filter(|(_, &f)| f).map(|(&x, _)| x));
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn split3_is_stable_three_way(
        a in proptest::collection::vec(any::<u32>(), 0..600),
        seed in any::<u64>(),
    ) {
        let buckets: Vec<Bucket> = (0..a.len())
            .map(|i| match (seed.wrapping_add(i as u64 * 7919)) % 3 {
                0 => Bucket::Lo,
                1 => Bucket::Mid,
                _ => Bucket::Hi,
            })
            .collect();
        let (got, n_lo, n_mid) = ops::split3(&a, &buckets);
        let mut expect: Vec<u32> = Vec::new();
        for want in [Bucket::Lo, Bucket::Mid, Bucket::Hi] {
            expect.extend(
                a.iter().zip(&buckets).filter(|(_, &b)| b == want).map(|(&x, _)| x),
            );
        }
        prop_assert_eq!(got, expect);
        prop_assert_eq!(n_lo, buckets.iter().filter(|&&b| b == Bucket::Lo).count());
        prop_assert_eq!(n_mid, buckets.iter().filter(|&&b| b == Bucket::Mid).count());
    }

    #[test]
    fn pack_equals_filter(
        a in proptest::collection::vec(any::<u64>(), 0..1000),
        seed in any::<u64>(),
    ) {
        let keep: Vec<bool> = (0..a.len()).map(|i| (seed >> (i % 64)) & 1 == 1).collect();
        let expect: Vec<u64> = a.iter().zip(&keep).filter(|(_, &k)| k).map(|(&x, _)| x).collect();
        prop_assert_eq!(ops::pack(&a, &keep), expect);
    }

    #[test]
    fn permute_then_gather_roundtrips(n in 0usize..500, seed in any::<u64>()) {
        let a: Vec<u64> = (0..n as u64).collect();
        // Build a permutation deterministically from the seed.
        let mut idx: Vec<usize> = (0..n).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            idx.swap(i, j);
        }
        let p = ops::permute(&a, &idx);
        prop_assert_eq!(ops::gather(&p, &idx), a);
    }

    #[test]
    fn enumerate_assigns_ranks(flags in proptest::collection::vec(any::<bool>(), 0..1000)) {
        let e = ops::enumerate(&flags);
        let mut rank = 0usize;
        for i in 0..flags.len() {
            prop_assert_eq!(e[i], rank);
            if flags[i] { rank += 1; }
        }
        prop_assert_eq!(ops::count(&flags), rank);
    }

    #[test]
    fn allocation_invariants(counts in proptest::collection::vec(0usize..20, 0..200)) {
        let alloc = allocate(&counts);
        prop_assert_eq!(alloc.total, counts.iter().sum::<usize>());
        let nonzero: Vec<usize> = counts.iter().copied().filter(|&c| c > 0).collect();
        prop_assert_eq!(alloc.segments.lengths(), nonzero);
        // distribute repeats each value counts[i] times.
        let vals: Vec<u64> = (0..counts.len() as u64).collect();
        let d = distribute(&vals, &counts);
        let expect: Vec<u64> = counts
            .iter()
            .enumerate()
            .flat_map(|(i, &c)| std::iter::repeat_n(i as u64, c))
            .collect();
        prop_assert_eq!(d, expect);
    }

    #[test]
    fn simulated_scans_match_direct(
        a in proptest::collection::vec(0u64..1_000_000, 0..800),
        seed in any::<u64>(),
    ) {
        let b = SoftwareScans;
        prop_assert_eq!(simulate::min_scan_u64(&b, &a), scan::<Min, _>(&a));
        let bools: Vec<bool> = a.iter().map(|&x| x % 2 == 0).collect();
        prop_assert_eq!(simulate::or_scan(&b, &bools), scan::<Or, _>(&bools));
        prop_assert_eq!(simulate::and_scan(&b, &bools), scan::<And, _>(&bools));
        if !a.is_empty() {
            let flags: Vec<bool> = (0..a.len())
                .map(|i| (seed ^ (i as u64).wrapping_mul(0x2545F4914F6CDD1D)).is_multiple_of(6))
                .collect();
            let segs = Segments::from_flags(flags);
            prop_assert_eq!(
                simulate::seg_max_scan_via_primitives(&b, &a, &segs, 20).unwrap(),
                seg_scan::<Max, _>(&a, &segs)
            );
            prop_assert_eq!(
                simulate::seg_plus_scan_via_primitives(&b, &a, &segs, 40).unwrap(),
                seg_scan::<Sum, _>(&a, &segs)
            );
        }
    }

    #[test]
    fn simulated_float_scans(a in proptest::collection::vec(-1e12f64..1e12, 0..500)) {
        let b = SoftwareScans;
        prop_assert_eq!(simulate::max_scan_f64(&b, &a), scan::<Max, _>(&a));
        prop_assert_eq!(simulate::min_scan_f64(&b, &a), scan::<Min, _>(&a));
    }

    #[test]
    fn seg_split_is_per_segment_stable_partition(
        a in proptest::collection::vec(any::<u32>(), 1..400),
        seed in any::<u64>(),
    ) {
        let flags: Vec<bool> = (0..a.len())
            .map(|i| (seed ^ (i as u64).wrapping_mul(0x94d049bb133111eb)).is_multiple_of(2))
            .collect();
        let seg_flags: Vec<bool> = (0..a.len())
            .map(|i| (seed ^ (i as u64).wrapping_mul(0xbf58476d1ce4e5b9)).is_multiple_of(5))
            .collect();
        let segs = Segments::from_flags(seg_flags);
        let got = scan_core::segops::seg_split(&a, &flags, &segs);
        let mut expect = Vec::with_capacity(a.len());
        for (s, e) in segs.ranges() {
            expect.extend((s..e).filter(|&i| !flags[i]).map(|i| a[i]));
            expect.extend((s..e).filter(|&i| flags[i]).map(|i| a[i]));
        }
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn seg_split3_invariants(
        a in proptest::collection::vec(any::<u32>(), 1..300),
        seed in any::<u64>(),
    ) {
        let buckets: Vec<Bucket> = (0..a.len())
            .map(|i| match (seed ^ (i as u64).wrapping_mul(0x2545F4914F6CDD1D)) % 3 {
                0 => Bucket::Lo,
                1 => Bucket::Mid,
                _ => Bucket::Hi,
            })
            .collect();
        let seg_flags: Vec<bool> = (0..a.len())
            .map(|i| (seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15)).is_multiple_of(4))
            .collect();
        let segs = Segments::from_flags(seg_flags);
        let r = scan_core::segops::seg_split3(&a, &buckets, &segs);
        // Same multiset overall.
        let mut orig = a.clone();
        let mut moved = r.values.clone();
        orig.sort_unstable();
        moved.sort_unstable();
        prop_assert_eq!(orig, moved);
        // Per old segment: Lo then Mid then Hi, stable within groups.
        for (s, e) in segs.ranges() {
            let mut expect = Vec::new();
            for want in [Bucket::Lo, Bucket::Mid, Bucket::Hi] {
                expect.extend((s..e).filter(|&i| buckets[i] == want).map(|i| a[i]));
            }
            prop_assert_eq!(&r.values[s..e], expect.as_slice());
        }
        // Refined segment count = number of nonempty groups.
        let mut groups = 0;
        for (s, e) in segs.ranges() {
            for want in [Bucket::Lo, Bucket::Mid, Bucket::Hi] {
                if (s..e).any(|i| buckets[i] == want) {
                    groups += 1;
                }
            }
        }
        prop_assert_eq!(r.segments.count(), groups);
    }

    #[test]
    fn seg_reduce_and_distribute_consistency(
        a in proptest::collection::vec(0u64..100_000, 1..400),
        seed in any::<u64>(),
    ) {
        let flags: Vec<bool> = (0..a.len())
            .map(|i| (seed ^ (i as u64).wrapping_mul(0xd6e8feb86659fd93)).is_multiple_of(6))
            .collect();
        let segs = Segments::from_flags(flags);
        let reduced = scan_core::segops::seg_reduce::<Sum, _>(&a, &segs);
        let distributed = scan_core::segops::seg_distribute::<Sum, _>(&a, &segs);
        prop_assert_eq!(reduced.len(), segs.count());
        for (k, (s, e)) in segs.ranges().into_iter().enumerate() {
            let total: u64 = a[s..e].iter().sum();
            prop_assert_eq!(reduced[k], total);
            for &d in &distributed[s..e] {
                prop_assert_eq!(d, total);
            }
        }
    }

    #[test]
    fn flag_merge_inverts_unmerge(
        a in proptest::collection::vec(any::<u32>(), 0..300),
        b in proptest::collection::vec(any::<u32>(), 0..300),
        seed in any::<u64>(),
    ) {
        // Build a valid flag vector with exactly b.len() trues.
        let n = a.len() + b.len();
        let mut flags = vec![false; n];
        let mut idx: Vec<usize> = (0..n).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99991);
            let j = (state >> 33) as usize % (i + 1);
            idx.swap(i, j);
        }
        for &i in idx.iter().take(b.len()) {
            flags[i] = true;
        }
        let merged = ops::flag_merge(&flags, &a, &b);
        // Unmerge: false positions recover a, true positions recover b.
        let a_back: Vec<u32> = merged.iter().zip(&flags).filter(|(_, &f)| !f).map(|(&x, _)| x).collect();
        let b_back: Vec<u32> = merged.iter().zip(&flags).filter(|(_, &f)| f).map(|(&x, _)| x).collect();
        prop_assert_eq!(a_back, a);
        prop_assert_eq!(b_back, b);
    }
}
