//! Model-checked concurrency scenarios for the worker pool.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p scan-core --test loom_pool --release
//! ```
//!
//! Each test wraps a small pool interaction in `loom::model`, which
//! re-executes it under every thread interleaving the sync operations
//! permit (bounded — see `shims/loom`). Invariants asserted inside the
//! closure therefore hold on *every* explored schedule, not just the
//! ones a timing-based stress test happens to sample. These are the
//! interleavings `scan-fault`'s chaos proptests can only sample; here
//! they are enumerated.
//!
//! Scenarios stay deliberately tiny (pool width 2, ≤ 3 tasks): the
//! schedule tree grows exponentially with choice points, and a width-2
//! pool already exhibits every coordination edge the pool has —
//! epoch broadcast, lock-free claiming, submitter participation,
//! re-entrant fallback, deadline latching, panic containment, and
//! shutdown.

#![cfg(loom)]

use scan_core::pool::WorkerPool;
use scan_core::sync::atomic::{AtomicUsize, Ordering};
use scan_core::sync::{Arc, Mutex};
use scan_core::{ExecError, ScanDeadline};

/// Epoch broadcast + lock-free claiming: every task index is executed
/// exactly once, no matter how the worker's wakeup interleaves with
/// the submitter's participation.
#[test]
fn every_task_runs_exactly_once() {
    loom::model(|| {
        let pool = WorkerPool::new(2);
        let hits: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        pool.run(3, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1, "task ran != 1 times");
        }
    });
}

/// Submitter participation: the job completes and its writes are
/// visible to the caller even on schedules where the parked worker
/// never claims a single task.
#[test]
fn job_completes_without_worker_help() {
    loom::model(|| {
        let pool = WorkerPool::new(2);
        let mut out = vec![0usize; 2];
        {
            let slots: Vec<Mutex<&mut usize>> = out.iter_mut().map(Mutex::new).collect();
            pool.run(2, |i| {
                **slots[i].lock().unwrap() = i + 10;
            });
        }
        // `run` returning happens-after every task on every schedule.
        assert_eq!(out, vec![10, 11]);
    });
}

/// Re-entrant fallback: a task submitting to its own pool takes the
/// inline path (contended `try_lock`) instead of deadlocking, on every
/// schedule.
#[test]
fn reentrant_run_falls_back_inline() {
    loom::model(|| {
        let pool = WorkerPool::new(2);
        let inner = AtomicUsize::new(0);
        pool.run(2, |_| {
            pool.run(2, |_| {
                inner.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(inner.load(Ordering::Relaxed), 4);
    });
}

/// Two concurrent submitters: whichever wins the submission lock, both
/// jobs complete in full (the loser runs inline).
#[test]
fn concurrent_submitters_both_complete() {
    loom::model(|| {
        let pool = Arc::new(WorkerPool::new(2));
        let total = Arc::new(AtomicUsize::new(0));
        let (p2, t2) = (Arc::clone(&pool), Arc::clone(&total));
        let second = loom::thread::spawn(move || {
            p2.run(2, |_| {
                t2.fetch_add(1, Ordering::Relaxed);
            });
        });
        pool.run(2, |_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        second.join().unwrap();
        assert_eq!(total.load(Ordering::Relaxed), 4);
    });
}

/// Deadline latch vs. task claim: a task cancels the manual token
/// mid-job. On every interleaving of the cancel store with the other
/// claims, `try_run` reports `Cancelled`, the cancelling task itself
/// ran, and no task runs after the cancel is observed.
#[test]
fn cancel_mid_job_latches_and_drains() {
    loom::model(|| {
        let pool = WorkerPool::new(2);
        let d = ScanDeadline::manual();
        let ran = AtomicUsize::new(0);
        let err = pool
            .try_run(3, Some(&d), |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i == 0 {
                    d.cancel();
                }
            })
            .unwrap_err();
        assert_eq!(err, ExecError::Cancelled);
        let ran = ran.load(Ordering::Relaxed);
        // Task 0 always executes (it is the one that cancels); the
        // other two may have been claimed before or after the latch.
        assert!((1..=3).contains(&ran), "ran = {ran}");
    });
}

/// Panic containment: a panicking task is contained by `try_run` as a
/// typed `WorkerLost` on every schedule (whether the worker or the
/// submitter claims the doomed index), and the pool stays usable.
#[test]
fn panic_is_contained_and_pool_survives() {
    loom::model(|| {
        let pool = WorkerPool::new(2);
        let err = pool
            .try_run(2, None, |i| {
                assert!(i != 1, "induced task failure");
            })
            .unwrap_err();
        assert_eq!(err, ExecError::WorkerLost { panics: 1 });
        // The gate was left clean: the next submission runs normally.
        let hits = AtomicUsize::new(0);
        pool.run(2, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    });
}

/// Shutdown: dropping the pool terminates a parked worker on every
/// interleaving of the shutdown broadcast with the worker's epoch
/// checks (including drop-before-the-worker-ever-waits).
#[test]
fn drop_terminates_parked_worker() {
    loom::model(|| {
        let pool = WorkerPool::new(2);
        drop(pool); // must join the worker without deadlocking
    });
}
