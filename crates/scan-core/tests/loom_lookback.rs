//! Model-checked publication protocol of the decoupled-lookback scan
//! ([`scan_core::lookback`]).
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p scan-core --test loom_lookback --release
//! ```
//!
//! The descriptor table's whole correctness argument is one handshake:
//! a block writes its payload slot, `Release`-stores the status word,
//! and a successor reads the slot only after an `Acquire` load
//! observes the status. These scenarios enumerate the interleavings of
//! that handshake through the `crate::sync` swap point — every
//! schedule the `aggregate → prefix` transition permits, not just the
//! ones a timing test samples. Scenarios stay tiny (2–3 descriptors,
//! one auxiliary thread): the protocol has no width-dependent edges.

#![cfg(loom)]

use scan_core::lookback::DescTable;
use scan_core::sync::Arc;

/// The fundamental handshake: a successor spinning on its predecessor
/// resolves the same seed whether it observes the `AGG` publication,
/// the `PREFIX` publication, or spins through `EMPTY` first.
#[test]
fn aggregate_then_prefix_publication_resolves() {
    loom::model(|| {
        let table: Arc<DescTable<u64>> = Arc::new(DescTable::new(2));
        let t = table.clone();
        let h = loom::thread::spawn(move || {
            t.publish_aggregate(0, 5);
            t.publish_prefix(0, 5);
        });
        // Block 1 looking back at block 0: every interleaving must
        // resolve the exclusive prefix 5 — from the aggregate fold or
        // from the published prefix, never from an unwritten slot.
        let seed = table.lookback(1, 0u64, &|a, b| a + b, None);
        assert_eq!(seed, Some(5));
        h.join().unwrap();
    });
}

/// A chain fold across two predecessors publishing concurrently:
/// block 2 folds block 1's aggregate and grafts block 0's prefix, in
/// traversal order, on every schedule.
#[test]
fn lookback_folds_aggregates_across_the_chain() {
    loom::model(|| {
        let table: Arc<DescTable<u64>> = Arc::new(DescTable::new(3));
        let t0 = table.clone();
        let h0 = loom::thread::spawn(move || {
            t0.publish_prefix(0, 3);
        });
        let t1 = table.clone();
        let h1 = loom::thread::spawn(move || {
            t1.publish_aggregate(1, 4);
        });
        let seed = table.lookback(2, 0u64, &|a, b| a + b, None);
        assert_eq!(seed, Some(7), "prefix(0)=3 folded with agg(1)=4");
        h0.join().unwrap();
        h1.join().unwrap();
    });
}

/// Abandonment (the panic/deadline guard) must unblock a spinning
/// successor on every schedule: it either observes the latch and bails
/// (`None`) or observes the placeholder identity prefix the guard
/// published — it never keeps spinning and never reads garbage.
#[test]
fn abandon_unblocks_spinning_successor() {
    loom::model(|| {
        let table: Arc<DescTable<u64>> = Arc::new(DescTable::new(2));
        let t = table.clone();
        let h = loom::thread::spawn(move || {
            t.abandon(0, 0);
        });
        match table.lookback(1, 0u64, &|a, b| a + b, None) {
            None => {} // saw the abandoned latch mid-spin
            Some(v) => assert_eq!(v, 0, "only the identity placeholder is visible"),
        }
        h.join().unwrap();
        assert!(table.is_abandoned());
    });
}
