//! Sanitizer profile for the unsafe kernels: Miri-sized proofs of the
//! engine's disjoint-write discipline.
//!
//! Every unsafe block in `parallel.rs` / `multi_split.rs` claims the
//! same invariant — parallel tasks write disjoint index ranges of an
//! uninitialized buffer, every index is written before `set_len`, and
//! the join establishes happens-before with the reader. Miri checks
//! those claims directly (uninitialized reads, out-of-bounds writes,
//! and data races are all hard errors), but it interprets every
//! instruction, so the production `PAR_THRESHOLD` (16Ki elements)
//! would take hours. The doc-hidden threshold override shrinks the
//! parallel cutoff so the *blocked* path — multiple blocks, real
//! worker threads, uninitialized output — runs on a few hundred
//! elements.
//!
//! The suite is dual-mode: under plain `cargo test` it runs with
//! larger sizes as a cheap regression net; under
//! `cargo +nightly miri test -p scan-core --test miri_kernels`
//! it is the soundness proof. `Schedule::Spawn` is used for the
//! cross-thread proofs because it spawns real threads regardless of
//! pool width (the global pool degrades to sequential on one core);
//! the pool's own unsafe claiming path is proven via `WorkerPool`
//! directly.

use scan_core::parallel::{
    self, exclusive_scan_backward_by_sched, exclusive_scan_by_sched, inclusive_scan_by_sched,
    map_by_sched, reduce_by_sched, seq_exclusive_scan_by, seq_inclusive_scan_by, seq_reduce_by,
    Schedule,
};
use scan_core::pool::WorkerPool;
use scan_core::sync::atomic::{AtomicUsize, Ordering};
use scan_core::{multi_split, ops, ExecError, ScanDeadline};

/// Parallel cutoff while these tests run: small enough that Miri can
/// interpret the blocked path, large enough that the plan still
/// produces several blocks per schedule (`min_block` = 16).
const TEST_THRESHOLD: usize = 64;

/// Input size: comfortably past the shrunken threshold so every
/// schedule takes the blocked path, with a ragged tail so block
/// boundaries don't line up with anything.
fn n() -> usize {
    if cfg!(miri) {
        193
    } else {
        5 * 1024 + 7
    }
}

/// All tests share one process-wide override; setting it to the same
/// value from every test keeps the (parallel) test harness benign.
fn shrink_threshold() {
    parallel::set_par_threshold_override(TEST_THRESHOLD);
}

fn input(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect()
}

const SCHEDS: [Schedule; 4] = [
    Schedule::Spawn,
    Schedule::Pooled,
    Schedule::Lookback,
    Schedule::Sequential,
];

#[test]
fn scan_kernels_are_sound_at_miri_size() {
    shrink_threshold();
    let a = input(n());
    let f = u64::wrapping_add;
    let exc = seq_exclusive_scan_by(&a, 0, f);
    let inc = seq_inclusive_scan_by(&a, 0, f);
    let mut rev = a.clone();
    rev.reverse();
    let mut exc_bwd = seq_exclusive_scan_by(&rev, 0, f);
    exc_bwd.reverse();
    for sched in SCHEDS {
        assert_eq!(exclusive_scan_by_sched(sched, &a, 0, f), exc, "{sched:?}");
        assert_eq!(inclusive_scan_by_sched(sched, &a, 0, f), inc, "{sched:?}");
        assert_eq!(
            exclusive_scan_backward_by_sched(sched, &a, 0, f),
            exc_bwd,
            "{sched:?}"
        );
        assert_eq!(
            reduce_by_sched(sched, &a, 0, f),
            seq_reduce_by(&a, 0, f),
            "{sched:?}"
        );
    }
}

#[test]
fn fill_kernel_initializes_every_index() {
    shrink_threshold();
    let a = input(n());
    for sched in SCHEDS {
        let m = map_by_sched(sched, &a, |x| x ^ 0xff);
        assert_eq!(m.len(), a.len());
        assert!(m.iter().zip(&a).all(|(&y, &x)| y == x ^ 0xff), "{sched:?}");
    }
}

#[test]
fn multi_split_kernel_is_sound_at_miri_size() {
    shrink_threshold();
    let a = input(n());
    let nbuckets = 5;
    let key = |x: u64| (x % nbuckets as u64) as usize;
    // Reference: stable bucket grouping, sequentially.
    let mut expect = Vec::with_capacity(a.len());
    let mut expect_counts = vec![0usize; nbuckets];
    for b in 0..nbuckets {
        for &x in &a {
            if key(x) == b {
                expect.push(x);
            }
        }
    }
    for &x in &a {
        expect_counts[key(x)] += 1;
    }
    for sched in SCHEDS {
        let mut dst = vec![0u64; a.len()];
        let mut scratch = multi_split::MultiSplitScratch::new();
        let counts =
            multi_split::multi_split_into_sched(sched, &a, &mut dst, nbuckets, key, &mut scratch);
        assert_eq!(dst, expect, "{sched:?}");
        assert_eq!(counts, expect_counts, "{sched:?}");
    }
}

#[test]
fn pack_kernel_is_sound_at_miri_size() {
    shrink_threshold();
    let a = input(n());
    let keep: Vec<bool> = a.iter().map(|&x| x % 3 == 0).collect();
    let expect: Vec<u64> = a
        .iter()
        .zip(&keep)
        .filter_map(|(&x, &k)| k.then_some(x))
        .collect();
    assert_eq!(ops::pack(&a, &keep), expect);
}

#[test]
fn lookback_descriptor_protocol_is_race_free_under_miri() {
    // The descriptor table's cross-thread handshake on real threads:
    // the payload slot is plain (unsynchronized) memory published via a
    // Release store of the status word and read back under an Acquire
    // load. Miri's data-race detector proves the claim directly — if
    // the ordering were wrong, the successor's slot read would race
    // with the publisher's write.
    use scan_core::lookback::DescTable;
    use scan_core::sync::Arc;
    let table: Arc<DescTable<u64>> = Arc::new(DescTable::new(3));
    let t = Arc::clone(&table);
    let h = std::thread::spawn(move || {
        t.publish_aggregate(1, 5);
        t.publish_prefix(0, 7);
        t.publish_prefix(1, 12);
    });
    // Block 2's lookback must fold agg(1) onto prefix(0) — or observe
    // prefix(1) directly — and land on 12 either way, spinning through
    // EMPTY states until the publisher gets there.
    let seed = table.lookback(2, 0u64, &|a, b| a + b, None);
    assert_eq!(seed, Some(12));
    h.join().unwrap();
    assert_eq!(table.try_prefix(1), Some(12));
    assert!(!table.is_abandoned());
}

#[test]
fn pool_claiming_is_race_free_under_miri() {
    // The pool's lock-free task claiming + `TaskPtr` lifetime erasure,
    // on real worker threads. Every task must run exactly once and the
    // join must publish the writes.
    let pool = WorkerPool::new(3);
    let ntasks = if cfg!(miri) { 24 } else { 256 };
    let hits: Vec<AtomicUsize> = (0..ntasks).map(|_| AtomicUsize::new(0)).collect();
    for _ in 0..2 {
        pool.run(ntasks, |t| {
            hits[t].fetch_add(1, Ordering::Relaxed);
        });
    }
    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 2));
}

#[test]
fn pool_cancellation_and_containment_under_miri() {
    let pool = WorkerPool::new(2);
    // Manual deadline: cancelled mid-job, drained without running the
    // remaining tasks to completion.
    let d = ScanDeadline::manual();
    let ran = AtomicUsize::new(0);
    let r = pool.try_run(8, Some(&d), |t| {
        if t == 0 {
            d.cancel();
        }
        ran.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(r, Err(ExecError::Cancelled));
    // A panicking task is contained and surfaces as a typed error.
    let r = pool.try_run(4, None, |t| {
        assert!(t != 2, "task exploded");
    });
    assert!(matches!(r, Err(ExecError::WorkerLost { panics }) if panics >= 1));
    // The pool stays usable afterwards.
    let ok = AtomicUsize::new(0);
    assert_eq!(
        pool.try_run(4, None, |_| {
            ok.fetch_add(1, Ordering::Relaxed);
        }),
        Ok(())
    );
    assert_eq!(ok.load(Ordering::Relaxed), 4);
}
