//! Streaming scan equivalence and recovery properties.
//!
//! The streaming layer must be observationally identical to the
//! in-RAM kernels for every chunking of the input — including
//! 1-element chunks and chunks straddling the parallel threshold —
//! and its checkpoint/resume protocol must restart from the last
//! verified chunk boundary without re-reading the stream from zero.

use proptest::prelude::*;
use scan_core::deadline::{self, ScanDeadline};
use scan_core::{
    CarryCheckpoint, ChunkSource, Error, Max, ScanStream, SegScanStream, Segments, SliceSource,
    Sum,
};

/// A source delivering chunks of varying lengths (cycling `lens`),
/// not seekable — equivalence must hold for arbitrary chunk shapes.
struct VarSource<'a> {
    data: &'a [u64],
    lens: &'a [usize],
    pos: usize,
    li: usize,
}

impl<'a> VarSource<'a> {
    fn new(data: &'a [u64], lens: &'a [usize]) -> Self {
        VarSource {
            data,
            lens,
            pos: 0,
            li: 0,
        }
    }
}

impl ChunkSource<u64> for VarSource<'_> {
    fn next_chunk(&mut self, buf: &mut Vec<u64>) -> usize {
        if self.pos >= self.data.len() {
            return 0;
        }
        let l = self.lens[self.li % self.lens.len()].max(1);
        self.li += 1;
        let end = (self.pos + l).min(self.data.len());
        buf.extend_from_slice(&self.data[self.pos..end]);
        let n = end - self.pos;
        self.pos = end;
        n
    }
}

/// Pair-yielding variant for segmented streams.
struct VarPairSource<'a> {
    pairs: &'a [(u64, bool)],
    lens: &'a [usize],
    pos: usize,
    li: usize,
}

impl ChunkSource<(u64, bool)> for VarPairSource<'_> {
    fn next_chunk(&mut self, buf: &mut Vec<(u64, bool)>) -> usize {
        if self.pos >= self.pairs.len() {
            return 0;
        }
        let l = self.lens[self.li % self.lens.len()].max(1);
        self.li += 1;
        let end = (self.pos + l).min(self.pairs.len());
        buf.extend_from_slice(&self.pairs[self.pos..end]);
        let n = end - self.pos;
        self.pos = end;
        n
    }
}

/// The chunk boundaries `VarSource` would produce, for building the
/// reverse-order chunk list a backward stream expects.
fn cuts(n: usize, lens: &[usize]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let (mut pos, mut li) = (0usize, 0usize);
    while pos < n {
        let l = lens[li % lens.len()].max(1);
        li += 1;
        let end = (pos + l).min(n);
        out.push((pos, end));
        pos = end;
    }
    out
}

/// A backward source: yields the forward chunks in reverse logical
/// order (each chunk itself in forward element order).
struct RevSource<'a> {
    data: &'a [u64],
    cuts: Vec<(usize, usize)>,
    next: usize,
}

impl ChunkSource<u64> for RevSource<'_> {
    fn next_chunk(&mut self, buf: &mut Vec<u64>) -> usize {
        if self.next >= self.cuts.len() {
            return 0;
        }
        let (s, e) = self.cuts[self.cuts.len() - 1 - self.next];
        self.next += 1;
        buf.extend_from_slice(&self.data[s..e]);
        e - s
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Forward streams equal the in-RAM kernels for every chunking,
    /// both operators, exclusive and inclusive.
    #[test]
    fn forward_stream_equals_in_ram(
        data in proptest::collection::vec(0u64..10_000, 0..600),
        lens in proptest::collection::vec(1usize..64, 1..8),
    ) {
        let mut got = Vec::new();
        let mut s = ScanStream::<Sum, u64, _>::exclusive(VarSource::new(&data, &lens));
        let (total, _) = s.process(|c| got.extend_from_slice(c)).unwrap();
        prop_assert_eq!(&got, &scan_core::scan::<Sum, _>(&data));
        prop_assert_eq!(total, data.iter().fold(0u64, |a, &b| a.wrapping_add(b)));

        got.clear();
        let mut s = ScanStream::<Max, u64, _>::exclusive(VarSource::new(&data, &lens));
        s.process(|c| got.extend_from_slice(c)).unwrap();
        prop_assert_eq!(&got, &scan_core::scan::<Max, _>(&data));

        got.clear();
        let mut s = ScanStream::<Sum, u64, _>::inclusive(VarSource::new(&data, &lens));
        s.process(|c| got.extend_from_slice(c)).unwrap();
        prop_assert_eq!(&got, &scan_core::inclusive_scan::<Sum, _>(&data));
    }

    /// Backward streams (reverse chunk order) equal the in-RAM
    /// backward kernels.
    #[test]
    fn backward_stream_equals_in_ram(
        data in proptest::collection::vec(0u64..10_000, 0..600),
        lens in proptest::collection::vec(1usize..64, 1..8),
    ) {
        let cuts = cuts(data.len(), &lens);
        let mk = || RevSource { data: &data, cuts: cuts.clone(), next: 0 };

        // Output chunks arrive tail-first; reassemble in logical order.
        let mut parts: Vec<Vec<u64>> = Vec::new();
        let mut s = ScanStream::<Sum, u64, _>::exclusive_backward(mk());
        s.process(|c| parts.push(c.to_vec())).unwrap();
        parts.reverse();
        let got: Vec<u64> = parts.concat();
        prop_assert_eq!(&got, &scan_core::scan_backward::<Sum, _>(&data));

        let mut parts: Vec<Vec<u64>> = Vec::new();
        let mut s = ScanStream::<Max, u64, _>::inclusive_backward(mk());
        s.process(|c| parts.push(c.to_vec())).unwrap();
        parts.reverse();
        let got: Vec<u64> = parts.concat();
        prop_assert_eq!(&got, &scan_core::inclusive_scan_backward::<Max, _>(&data));
    }

    /// Segmented streams equal the in-RAM segmented kernel: a head
    /// anywhere inside a chunk cuts the carry exactly as in
    /// [`scan_core::seg_scan`].
    #[test]
    fn segmented_stream_equals_in_ram(
        data in proptest::collection::vec(0u64..10_000, 0..600),
        flags in proptest::collection::vec(any::<bool>(), 600),
        lens in proptest::collection::vec(1usize..64, 1..8),
    ) {
        let heads = &flags[..data.len()];
        let pairs: Vec<(u64, bool)> =
            data.iter().copied().zip(heads.iter().copied()).collect();
        let segs = Segments::from_flags(heads.to_vec());

        let mut got = Vec::new();
        let mut s = SegScanStream::<Sum, u64, _>::new(VarPairSource {
            pairs: &pairs,
            lens: &lens,
            pos: 0,
            li: 0,
        });
        s.process(|c| got.extend_from_slice(c)).unwrap();
        prop_assert_eq!(&got, &scan_core::seg_scan::<Sum, u64>(&data, &segs));

        got.clear();
        let mut s = SegScanStream::<Max, u64, _>::new(VarPairSource {
            pairs: &pairs,
            lens: &lens,
            pos: 0,
            li: 0,
        });
        s.process(|c| got.extend_from_slice(c)).unwrap();
        prop_assert_eq!(&got, &scan_core::seg_scan::<Max, u64>(&data, &segs));
    }

    /// A stream interrupted after any prefix of chunks and resumed
    /// from its checkpoint on a fresh source produces the same output
    /// as the uninterrupted stream — and the resumed source is only
    /// pulled for the remaining chunks.
    #[test]
    fn checkpoint_resume_is_seamless(
        data in proptest::collection::vec(0u64..10_000, 1..600),
        chunk_len in 1usize..64,
        stop_frac in 0.0f64..1.0,
    ) {
        let want = scan_core::scan::<Sum, _>(&data);
        let nchunks = data.len().div_ceil(chunk_len);
        let stop = ((nchunks as f64) * stop_frac) as u64;

        // Run the head of the stream, checkpointing every chunk.
        let mut got = Vec::new();
        let mut s =
            ScanStream::<Sum, u64, _>::exclusive(SliceSource::new(&data, chunk_len));
        let mut ckpt = s.checkpoint();
        while s.chunks_done() < stop {
            let Some(chunk) = s.step().unwrap() else { break };
            got.extend_from_slice(chunk);
            ckpt = s.checkpoint();
        }
        drop(s); // the interruption

        // Resume on a brand-new source from the last checkpoint.
        let mut r = ScanStream::<Sum, u64, _>::exclusive(SliceSource::new(&data, chunk_len))
            .resume(&ckpt)
            .unwrap();
        r.process(|c| got.extend_from_slice(c)).unwrap();
        prop_assert_eq!(&got, &want);
        // Only the chunks after the checkpoint were re-read.
        prop_assert_eq!(r.pulls(), (nchunks as u64) - ckpt.chunk());
    }
}

/// A corrupted checkpoint is rejected by its digest before any data
/// is read, and a mid-stream resume on a non-seekable source is a
/// typed error rather than silent recomputation.
#[test]
fn corrupt_or_unseekable_checkpoints_are_typed_errors() {
    let data: Vec<u64> = (0..100).collect();
    let mut s = ScanStream::<Sum, u64, _>::exclusive(SliceSource::new(&data, 16));
    s.step().unwrap();
    s.step().unwrap();
    let good = s.checkpoint();
    assert!(good.verify());
    let (chunk, carry, digest) = good.parts();

    // Flip the carry without re-digesting: verification must fail.
    let bad = CarryCheckpoint::from_parts(chunk, carry ^ 1, digest);
    assert!(!bad.verify());
    let r = ScanStream::<Sum, u64, _>::exclusive(SliceSource::new(&data, 16)).resume(&bad);
    assert!(matches!(r, Err(Error::CheckpointCorrupt { chunk: 2 })));

    // Same digest, tampered chunk index.
    let bad = CarryCheckpoint::from_parts(chunk + 1, carry, digest);
    assert!(!bad.verify());

    // A non-seekable source cannot resume mid-stream.
    let r = ScanStream::<Sum, u64, _>::exclusive(VarSource::new(&data, &[16])).resume(&good);
    assert!(matches!(r, Err(Error::SeekUnsupported { chunk: 2 })));
}

/// A source whose pull trips a cancellation *after* handing out the
/// chunk: the failed `step` must keep the chunk buffered so the retry
/// does not re-pull.
struct TrippingSource<'a> {
    inner: SliceSource<'a, u64>,
    trip_on_pull: u64,
    pulls: u64,
    deadline: ScanDeadline,
}

impl ChunkSource<u64> for TrippingSource<'_> {
    fn next_chunk(&mut self, buf: &mut Vec<u64>) -> usize {
        self.pulls += 1;
        if self.pulls == self.trip_on_pull {
            self.deadline.cancel();
        }
        self.inner.next_chunk(buf)
    }
}

#[test]
fn failed_step_retries_without_repulling() {
    let data: Vec<u64> = (0..200).collect();
    let d = ScanDeadline::manual();
    let source = TrippingSource {
        inner: SliceSource::new(&data, 32),
        trip_on_pull: 3,
        pulls: 0,
        deadline: d.clone(),
    };
    let mut s = ScanStream::<Sum, u64, _>::exclusive(source);

    let mut got = Vec::new();
    let err = deadline::with_deadline(&d, || {
        loop {
            match s.step() {
                Ok(Some(c)) => got.extend_from_slice(c),
                Ok(None) => panic!("stream must fail at the tripped pull"),
                Err(e) => break e,
            }
        }
    });
    assert_eq!(err, Error::Exec(scan_core::ExecError::Cancelled));
    // Two chunks committed; the third was pulled but not committed.
    assert_eq!(s.chunks_done(), 2);
    assert_eq!(s.pulls(), 3);
    // The carry still describes the last committed boundary, so a
    // checkpoint taken mid-failure is valid.
    let ckpt = s.checkpoint();
    assert!(ckpt.verify());
    assert_eq!(ckpt.chunk(), 2);

    // Retry outside the cancelled scope: same chunk, no re-pull.
    s.process(|c| got.extend_from_slice(c)).unwrap();
    assert_eq!(s.pulls(), data.len().div_ceil(32) as u64);
    assert_eq!(got, scan_core::scan::<Sum, _>(&data));
}

/// An expired ambient deadline surfaces between chunks as a typed
/// error and the stream stays resumable afterwards.
#[test]
fn deadline_interrupts_between_chunks() {
    let data: Vec<u64> = (0..100).collect();
    let d = ScanDeadline::manual();
    let mut s = ScanStream::<Sum, u64, _>::exclusive(SliceSource::new(&data, 10));
    deadline::with_deadline(&d, || {
        s.step().unwrap();
        d.cancel();
        assert_eq!(
            s.step().unwrap_err(),
            Error::Exec(scan_core::ExecError::Cancelled)
        );
    });
    let mut got: Vec<u64> = scan_core::scan::<Sum, _>(&data[..10]);
    s.process(|c| got.extend_from_slice(c)).unwrap();
    assert_eq!(got, scan_core::scan::<Sum, _>(&data));
}

/// Chunks straddling the parallel threshold: with the override pinned
/// low, every chunk takes the blocked parallel path, and equivalence
/// must still hold chunk by chunk.
#[test]
fn chunks_straddling_par_threshold_stay_equivalent() {
    scan_core::parallel::set_par_threshold_override(64);
    let data: Vec<u64> = (0..1000).map(|i| (i * 13 + 7) % 997).collect();
    for chunk_len in [1usize, 63, 64, 65, 128, 400] {
        let mut got = Vec::new();
        let mut s =
            ScanStream::<Sum, u64, _>::exclusive(SliceSource::new(&data, chunk_len));
        s.process(|c| got.extend_from_slice(c)).unwrap();
        assert_eq!(got, scan_core::scan::<Sum, _>(&data), "chunk_len {chunk_len}");
    }
    scan_core::parallel::set_par_threshold_override(0);
}

/// A generating source: no backing array, so the stream's resident
/// state is the only memory in play.
struct Ramp {
    next: u64,
    remaining: u64,
    chunk: usize,
}

impl ChunkSource<u64> for Ramp {
    fn next_chunk(&mut self, buf: &mut Vec<u64>) -> usize {
        let n = (self.remaining.min(self.chunk as u64)) as usize;
        buf.extend((0..n as u64).map(|i| self.next + i));
        self.next += n as u64;
        self.remaining -= n as u64;
        n
    }
}

fn constant_memory_run(total: u64, chunk: usize) {
    let mut s = ScanStream::<Sum, u64, _>::exclusive(Ramp {
        next: 0,
        remaining: total,
        chunk,
    });
    let mut seen = 0u64;
    let (carry, chunks) = s
        .process(|c| {
            // Exclusive +-scan of 0,1,2,...: out[g] = g*(g-1)/2.
            let g = seen;
            assert_eq!(c[0], g.wrapping_mul(g.wrapping_sub(1)) / 2);
            seen += c.len() as u64;
        })
        .unwrap();
    // Vec capacity never shrinks, so post-run scratch is the peak.
    let peak = s.scratch_len();
    assert_eq!(seen, total);
    assert_eq!(chunks, total.div_ceil(chunk as u64));
    assert_eq!(carry, total.wrapping_mul(total - 1) / 2);
    // Constant memory: resident scratch tracks the chunk length, never
    // the total input (2 buffers + amortized-growth slack).
    assert!(
        peak <= 4 * chunk,
        "scratch {peak} exceeds chunk-bounded ceiling for chunk {chunk}"
    );
}

/// Constant-memory streaming over 2^22 elements (always on).
#[test]
fn streaming_is_constant_memory_4m() {
    constant_memory_run(1 << 22, 1 << 16);
}

/// Constant-memory streaming over 2^28 elements. Release-only: the
/// debug-profile kernels are too slow for a quarter-billion elements.
#[test]
#[cfg_attr(debug_assertions, ignore)]
fn streaming_is_constant_memory_256m() {
    constant_memory_run(1 << 28, 1 << 20);
}
