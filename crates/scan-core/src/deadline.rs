//! Cooperative cancellation and deadline tokens for scan execution.
//!
//! A [`ScanDeadline`] is a cheap, clonable token carrying two pieces of
//! state: an explicit *cancel* flag and an optional wall-clock
//! *deadline*. The fallible execution paths ([`crate::parallel`]'s
//! `try_*` kernels and the pool's `try_run`) check the token at block
//! boundaries and between fixed-size strides inside a block, so a
//! cancelled or expired submission stops doing work promptly and
//! returns a typed [`ExecError`] instead of running to completion.
//!
//! Two properties make the token sound to check from many threads at
//! once:
//!
//! - **Sticky expiry**: the first observer of an elapsed deadline
//!   latches `deadline_hit`, so every later [`check`](ScanDeadline::check)
//!   is a single relaxed atomic load — no repeated clock reads, and no
//!   thread can see "expired" flip back to "live".
//! - **No thread-local reads on workers**: engine closures capture a
//!   clone of the token; workers never consult ambient state.
//!
//! The thread-local *scope* ([`with_deadline`], [`current`],
//! [`checkpoint`]) exists so the checked vector operations
//! (`try_pack`, `try_split`, ...) can honor a caller-installed
//! deadline without every signature growing a token parameter.

use crate::error::ExecError;
use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::Arc;
use std::cell::RefCell;
// `Instant` deliberately stays on std even under `cfg(loom)`:
// wall-clock expiry cannot be model-checked. Loom scenarios use
// `ScanDeadline::manual()` tokens, whose state is a shimmed atomic.
use std::time::{Duration, Instant};

/// Shared state behind a [`ScanDeadline`]; all clones observe it.
#[derive(Debug)]
struct Inner {
    /// Explicit cancellation, set by [`ScanDeadline::cancel`].
    cancelled: AtomicBool,
    /// Latched "deadline has passed" flag; once set it never clears.
    deadline_hit: AtomicBool,
    /// The instant after which the token is expired, if any.
    deadline: Option<Instant>,
}

/// A cancellation/deadline token threaded through fallible scan calls.
///
/// Clones share state: cancelling any clone cancels them all, and an
/// elapsed deadline is visible through every clone. Checking is
/// wait-free (two relaxed loads on the happy path) so tokens can be
/// consulted inside hot loops at a coarse stride.
///
/// ```
/// use scan_core::deadline::ScanDeadline;
///
/// let d = ScanDeadline::manual();
/// assert!(d.check().is_ok());
/// d.cancel();
/// assert!(d.check().is_err());
/// ```
#[derive(Clone, Debug)]
pub struct ScanDeadline {
    inner: Arc<Inner>,
}

impl ScanDeadline {
    fn from_instant(deadline: Option<Instant>) -> Self {
        ScanDeadline {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline_hit: AtomicBool::new(false),
                deadline,
            }),
        }
    }

    /// A token that expires `timeout` from now.
    pub fn after(timeout: Duration) -> Self {
        Self::from_instant(Instant::now().checked_add(timeout))
    }

    /// A token that expires at `at`.
    pub fn at(at: Instant) -> Self {
        Self::from_instant(Some(at))
    }

    /// A token with no wall-clock deadline; it only trips when
    /// [`cancel`](Self::cancel) is called.
    pub fn manual() -> Self {
        Self::from_instant(None)
    }

    /// Cancel the submission guarded by this token (and all clones).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// True if [`cancel`](Self::cancel) has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Time left before expiry; `None` when the token has no deadline.
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// True once the deadline has been observed to pass. Latched: the
    /// first caller that sees the clock past the deadline records it,
    /// and every later call answers from the flag alone.
    pub fn is_expired(&self) -> bool {
        if self.inner.deadline_hit.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => {
                self.inner.deadline_hit.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Check the token: `Ok(())` while live, otherwise the typed
    /// reason. Cancellation takes precedence over expiry so an
    /// explicitly cancelled call reports [`ExecError::Cancelled`] even
    /// if its deadline also passed.
    pub fn check(&self) -> Result<(), ExecError> {
        if self.is_cancelled() {
            return Err(ExecError::Cancelled);
        }
        if self.is_expired() {
            return Err(ExecError::DeadlineExceeded);
        }
        Ok(())
    }
}

thread_local! {
    /// The deadline installed on this thread by [`with_deadline`].
    static CURRENT: RefCell<Option<ScanDeadline>> = const { RefCell::new(None) };
}

/// Restores the previously installed deadline when a scope ends, even
/// if the scoped closure panics.
struct ScopeGuard {
    prev: Option<ScanDeadline>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Run `f` with `deadline` installed as the calling thread's ambient
/// deadline. Checked vector operations (`try_pack`, `try_split`, ...)
/// and the fallible scan entry points observe it via [`checkpoint`] /
/// [`current`]. Scopes nest; the previous token is restored on exit,
/// panic included.
pub fn with_deadline<R>(deadline: &ScanDeadline, f: impl FnOnce() -> R) -> R {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(deadline.clone()));
    let _guard = ScopeGuard { prev };
    f()
}

/// The calling thread's ambient deadline, if one is installed.
pub fn current() -> Option<ScanDeadline> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Check the ambient deadline, if any. `Ok(())` when none is
/// installed — code that never opts in pays two TLS reads and nothing
/// else.
pub fn checkpoint() -> Result<(), ExecError> {
    CURRENT.with(|c| match &*c.borrow() {
        Some(d) => d.check(),
        None => Ok(()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_token_trips_only_on_cancel() {
        let d = ScanDeadline::manual();
        assert!(d.check().is_ok());
        assert!(d.remaining().is_none());
        d.cancel();
        assert_eq!(d.check(), Err(ExecError::Cancelled));
    }

    #[test]
    fn clones_share_cancellation() {
        let d = ScanDeadline::manual();
        let d2 = d.clone();
        d2.cancel();
        assert!(d.is_cancelled());
    }

    #[test]
    fn elapsed_deadline_is_latched() {
        let d = ScanDeadline::at(Instant::now());
        // First check observes the clock and latches.
        assert_eq!(d.check(), Err(ExecError::DeadlineExceeded));
        assert!(d.inner.deadline_hit.load(Ordering::Relaxed));
        assert_eq!(d.check(), Err(ExecError::DeadlineExceeded));
    }

    #[test]
    fn future_deadline_is_live() {
        let d = ScanDeadline::after(Duration::from_secs(3600));
        assert!(d.check().is_ok());
        assert!(d.remaining().is_some_and(|r| r > Duration::from_secs(3000)));
    }

    #[test]
    fn cancel_wins_over_expiry() {
        let d = ScanDeadline::at(Instant::now());
        d.cancel();
        assert_eq!(d.check(), Err(ExecError::Cancelled));
    }

    #[test]
    fn scope_installs_and_restores() {
        assert!(current().is_none());
        let d = ScanDeadline::manual();
        with_deadline(&d, || {
            assert!(current().is_some());
            assert!(checkpoint().is_ok());
            let inner = ScanDeadline::manual();
            inner.cancel();
            with_deadline(&inner, || {
                assert_eq!(checkpoint(), Err(ExecError::Cancelled));
            });
            // Outer token restored after the nested scope.
            assert!(checkpoint().is_ok());
        });
        assert!(current().is_none());
    }

    #[test]
    fn scope_restores_after_panic() {
        let d = ScanDeadline::manual();
        let r = std::panic::catch_unwind(|| {
            with_deadline(&d, || panic!("boom"));
        });
        assert!(r.is_err());
        assert!(current().is_none());
    }

    #[test]
    fn nested_scope_restores_outer_after_inner_panic() {
        // Regression: an inner scoped closure panicking must restore
        // the *outer* token, not clear the slot — otherwise every
        // ambient checkpoint after the unwind silently loses the
        // outer deadline.
        let outer = ScanDeadline::manual();
        let inner = ScanDeadline::manual();
        with_deadline(&outer, || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                with_deadline(&inner, || {
                    inner.cancel();
                    assert!(current().expect("inner installed").is_cancelled());
                    panic!("inner boom");
                })
            }));
            assert!(r.is_err());
            // Ambient token is the outer scope's again: present, not
            // the cancelled inner one, and live for checkpoints.
            let cur = current().expect("outer scope lost after inner panic");
            assert!(!cur.is_cancelled());
            assert!(checkpoint().is_ok());
            // And it is genuinely the outer *token*, sharing state
            // with the caller's handle.
            outer.cancel();
            assert!(current().expect("outer still installed").is_cancelled());
        });
        assert!(current().is_none());
    }

    #[test]
    fn checkpoint_without_scope_is_ok() {
        assert!(checkpoint().is_ok());
    }
}
