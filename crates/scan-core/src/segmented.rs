//! Segmented scans (paper §2.3, Figure 4).
//!
//! Segmented scans break the linear order of the processors into
//! *segments* and restart the scan at the beginning of each segment. They
//! are the workhorse of the paper's divide-and-conquer algorithms
//! (quicksort, §2.3.1) and of the segmented graph representation
//! (§2.3.2).
//!
//! A segmentation is described by a vector of flags, one per element,
//! where a `true` flag marks the **first element of a segment**. Element 0
//! always starts a segment, whether or not its flag is set (the paper's
//! figures always set it).
//!
//! ```
//! use scan_core::{seg_scan, Segments, op::{Sum, Max}};
//! // Figure 4:
//! // A  = [5 1 3 4 3 9 2 6],  Sb = [T F T F F F T F]
//! let a = [5u32, 1, 3, 4, 3, 9, 2, 6];
//! let sb = Segments::from_flags(vec![true, false, true, false, false, false, true, false]);
//! assert_eq!(seg_scan::<Sum, _>(&a, &sb), vec![0, 5, 0, 3, 7, 10, 0, 2]);
//! assert_eq!(seg_scan::<Max, _>(&a, &sb), vec![0, 5, 0, 3, 4, 4, 0, 2]);
//! ```

use crate::element::ScanElem;
use crate::op::ScanOp;
use crate::parallel;

/// A segmentation of a vector: head flags plus derived bookkeeping.
///
/// Invariant: `flags.len()` equals the length of the vectors it segments;
/// element 0 is always treated as a segment head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segments {
    flags: Vec<bool>,
}

impl Segments {
    /// Build from head flags. Element 0 is a head even if `flags[0]` is
    /// `false`.
    pub fn from_flags(flags: Vec<bool>) -> Self {
        Segments { flags }
    }

    /// Build a segmentation with the given segment lengths. Zero lengths
    /// are allowed and contribute no elements (and no head).
    ///
    /// ```
    /// use scan_core::Segments;
    /// let s = Segments::from_lengths(&[2, 3, 1]);
    /// assert_eq!(s.flags(), &[true, false, true, false, false, true]);
    /// ```
    pub fn from_lengths(lengths: &[usize]) -> Self {
        let total: usize = lengths.iter().sum();
        let mut flags = vec![false; total];
        let mut pos = 0;
        for &l in lengths {
            if l > 0 {
                flags[pos] = true;
                pos += l;
            }
        }
        Segments { flags }
    }

    /// A single segment covering `n` elements.
    pub fn single(n: usize) -> Self {
        let mut flags = vec![false; n];
        if n > 0 {
            flags[0] = true;
        }
        Segments { flags }
    }

    /// Number of elements covered.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// True when the segmentation covers no elements.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// The raw head-flag vector.
    pub fn flags(&self) -> &[bool] {
        &self.flags
    }

    /// Consume into the raw head-flag vector.
    pub fn into_flags(self) -> Vec<bool> {
        self.flags
    }

    /// Is element `i` a segment head? Element 0 always is.
    #[inline]
    pub fn is_head(&self, i: usize) -> bool {
        i == 0 || self.flags[i]
    }

    /// Number of segments (zero-length segments are not representable and
    /// therefore not counted).
    pub fn count(&self) -> usize {
        if self.flags.is_empty() {
            return 0;
        }
        1 + self.flags[1..].iter().filter(|&&f| f).count()
    }

    /// Start index of every segment, ascending.
    pub fn head_positions(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.is_head(i)).collect()
    }

    /// Length of every segment, in order.
    pub fn lengths(&self) -> Vec<usize> {
        let heads = self.head_positions();
        heads
            .iter()
            .enumerate()
            .map(|(k, &h)| {
                let end = heads.get(k + 1).copied().unwrap_or(self.len());
                end - h
            })
            .collect()
    }

    /// For every element, the index of the segment it belongs to
    /// (0-based, ascending).
    ///
    /// Computed as an inclusive `+`-scan of the head flags, minus one —
    /// the `Seg-Number` vector of the paper's Figure 16. The flag
    /// vector is loaded on the fly; no 0/1 vector is materialized.
    pub fn segment_ids(&self) -> Vec<usize> {
        parallel::engine(
            parallel::default_schedule(),
            self.len(),
            |i| usize::from(self.is_head(i)),
            0usize,
            |a, b| a.wrapping_add(b),
            |_, s| s - 1,
            parallel::Mode::InclusiveFwd,
            <crate::op::Sum as ScanOp<usize>>::simd_tile(),
        )
        .0
    }

    /// For every element, the index of its segment's head element.
    ///
    /// Computed as a fused inclusive `max`-scan of `flag ? index : 0`.
    pub fn head_index_per_element(&self) -> Vec<usize> {
        parallel::engine(
            parallel::default_schedule(),
            self.len(),
            |i| if self.is_head(i) { i } else { 0 },
            0usize,
            |a, b| a.max(b),
            |_, s| s,
            parallel::Mode::InclusiveFwd,
            <crate::op::Max as ScanOp<usize>>::simd_tile(),
        )
        .0
    }

    /// Iterate over the `(start, end)` half-open range of every segment.
    pub fn ranges(&self) -> Vec<(usize, usize)> {
        let heads = self.head_positions();
        heads
            .iter()
            .enumerate()
            .map(|(k, &h)| (h, heads.get(k + 1).copied().unwrap_or(self.len())))
            .collect()
    }

    /// The segmentation of the reversed vector: heads become positions
    /// just past the old segment *ends*. Used to derive backward
    /// segmented scans by "reading the vector in reverse order" (§3.4).
    pub fn reversed(&self) -> Segments {
        let n = self.len();
        let flags = (0..n).map(|j| j == 0 || self.is_head(n - j)).collect();
        Segments { flags }
    }
}

/// The pair operator that turns any scan into a segmented scan.
///
/// Combining `(v1, f1)` and `(v2, f2)` yields
/// `(if f2 { v2 } else { v1 ⊕ v2 }, f1 | f2)`. This operator is
/// associative whenever `⊕` is, so segmented scans run on the same
/// blocked parallel engine as plain scans — this is also how the
/// hardware implements segmented scans "with little additional
/// hardware" (§3, citing \[7]).
#[inline(always)]
pub fn seg_combine<O: ScanOp<T>, T: ScanElem>(a: (T, bool), b: (T, bool)) -> (T, bool) {
    if b.1 {
        (b.0, true)
    } else {
        (O::combine(a.0, b.0), a.1)
    }
}

/// Is element `i` the **last** element of its segment? (The backward
/// scans restart here, mirroring how the forward scans restart at
/// heads.)
#[inline]
fn is_tail(segs: &Segments, i: usize) -> bool {
    i + 1 == segs.len() || segs.is_head(i + 1)
}

/// Exclusive segmented scan: each segment head receives the identity;
/// element `i` of a segment receives the combine of the segment's
/// elements strictly before it.
///
/// Fully fused: the `(value, flag)` pairs are loaded on the fly and the
/// head-shift happens in the engine's emit step, so neither a pair
/// vector nor an inclusive intermediate is materialized.
///
/// # Panics
/// If `a.len() != segs.len()`.
pub fn seg_scan<O: ScanOp<T>, T: ScanElem>(a: &[T], segs: &Segments) -> Vec<T> {
    assert_eq!(a.len(), segs.len(), "seg_scan length mismatch");
    // The engine's exclusive state at `i` is the inclusive pair state
    // at `i - 1`, so emitting `identity` at heads and the carried value
    // elsewhere is exactly the per-segment right-shift.
    parallel::engine(
        parallel::default_schedule(),
        a.len(),
        |i| (a[i], segs.is_head(i)),
        (O::identity(), false),
        seg_combine::<O, T>,
        |i, s: (T, bool)| if segs.is_head(i) { O::identity() } else { s.0 },
        parallel::Mode::ExclusiveFwd,
        O::simd_seg_tile(),
    )
    .0
}

/// Fallible [`seg_scan`]: checks the length precondition instead of
/// panicking, honors the ambient [`crate::deadline`] scope, and
/// contains operator panics — failures surface as
/// [`crate::Error`] (`LengthMismatch` or `Exec`).
pub fn try_seg_scan<O: ScanOp<T>, T: ScanElem>(a: &[T], segs: &Segments) -> crate::Result<Vec<T>> {
    if a.len() != segs.len() {
        return Err(crate::Error::LengthMismatch {
            expected: a.len(),
            actual: segs.len(),
        });
    }
    let d = crate::deadline::current();
    let (out, _) = parallel::try_engine(
        parallel::default_schedule(),
        a.len(),
        |i| (a[i], segs.is_head(i)),
        (O::identity(), false),
        seg_combine::<O, T>,
        |i, s: (T, bool)| if segs.is_head(i) { O::identity() } else { s.0 },
        parallel::Mode::ExclusiveFwd,
        O::simd_seg_tile(),
        d.as_ref(),
    )?;
    Ok(out)
}

/// Inclusive segmented scan.
///
/// # Panics
/// If `a.len() != segs.len()`.
pub fn seg_inclusive_scan<O: ScanOp<T>, T: ScanElem>(a: &[T], segs: &Segments) -> Vec<T> {
    assert_eq!(a.len(), segs.len(), "seg_inclusive_scan length mismatch");
    parallel::engine(
        parallel::default_schedule(),
        a.len(),
        |i| (a[i], segs.is_head(i)),
        (O::identity(), false),
        seg_combine::<O, T>,
        |_, s: (T, bool)| s.0,
        parallel::Mode::InclusiveFwd,
        O::simd_seg_tile(),
    )
    .0
}

/// Exclusive *backward* segmented scan: within each segment, element `i`
/// receives the combine of the segment elements strictly after it; each
/// segment's **last** element receives the identity.
///
/// Direction-aware: the engine walks the blocks right-to-left with the
/// pair operator restarting at segment *tails*, which is §3.4's
/// "reading the vector in reverse order" without allocating a reversed
/// copy of the data or of the segmentation.
///
/// # Panics
/// If `a.len() != segs.len()`.
pub fn seg_scan_backward<O: ScanOp<T>, T: ScanElem>(a: &[T], segs: &Segments) -> Vec<T> {
    assert_eq!(a.len(), segs.len(), "seg_scan_backward length mismatch");
    parallel::engine(
        parallel::default_schedule(),
        a.len(),
        |i| (a[i], is_tail(segs, i)),
        (O::identity(), false),
        seg_combine::<O, T>,
        |i, s: (T, bool)| if is_tail(segs, i) { O::identity() } else { s.0 },
        parallel::Mode::ExclusiveBwd,
        O::simd_seg_tile(),
    )
    .0
}

/// Inclusive backward segmented scan.
///
/// # Panics
/// If `a.len() != segs.len()`.
pub fn seg_inclusive_scan_backward<O: ScanOp<T>, T: ScanElem>(a: &[T], segs: &Segments) -> Vec<T> {
    assert_eq!(
        a.len(),
        segs.len(),
        "seg_inclusive_scan_backward length mismatch"
    );
    parallel::engine(
        parallel::default_schedule(),
        a.len(),
        |i| (a[i], is_tail(segs, i)),
        (O::identity(), false),
        seg_combine::<O, T>,
        |_, s: (T, bool)| s.0,
        parallel::Mode::InclusiveBwd,
        O::simd_seg_tile(),
    )
    .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Max, Min, Sum};

    fn fig4_segments() -> Segments {
        Segments::from_flags(vec![true, false, true, false, false, false, true, false])
    }

    #[test]
    fn figure4_examples() {
        let a = [5u32, 1, 3, 4, 3, 9, 2, 6];
        let sb = fig4_segments();
        assert_eq!(seg_scan::<Sum, _>(&a, &sb), vec![0, 5, 0, 3, 7, 10, 0, 2]);
        assert_eq!(seg_scan::<Max, _>(&a, &sb), vec![0, 5, 0, 3, 4, 4, 0, 2]);
    }

    #[test]
    fn from_lengths_roundtrip() {
        let s = Segments::from_lengths(&[2, 3, 1]);
        assert_eq!(s.lengths(), vec![2, 3, 1]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.head_positions(), vec![0, 2, 5]);
        assert_eq!(s.ranges(), vec![(0, 2), (2, 5), (5, 6)]);
    }

    #[test]
    fn from_lengths_with_zeros() {
        let s = Segments::from_lengths(&[0, 2, 0, 0, 3, 0]);
        assert_eq!(s.len(), 5);
        assert_eq!(s.lengths(), vec![2, 3]);
    }

    #[test]
    fn implicit_head_at_zero() {
        let s = Segments::from_flags(vec![false, false, true]);
        assert_eq!(s.count(), 2);
        assert!(s.is_head(0));
        assert_eq!(s.lengths(), vec![2, 1]);
    }

    #[test]
    fn segment_ids_and_heads() {
        let s = fig4_segments();
        assert_eq!(s.segment_ids(), vec![0, 0, 1, 1, 1, 1, 2, 2]);
        assert_eq!(s.head_index_per_element(), vec![0, 0, 2, 2, 2, 2, 6, 6]);
    }

    #[test]
    fn inclusive_segmented() {
        let a = [5u32, 1, 3, 4, 3, 9, 2, 6];
        let sb = fig4_segments();
        assert_eq!(
            seg_inclusive_scan::<Sum, _>(&a, &sb),
            vec![5, 6, 3, 7, 10, 19, 2, 8]
        );
    }

    #[test]
    fn backward_segmented() {
        let a = [5u32, 1, 3, 4, 3, 9, 2, 6];
        let sb = fig4_segments();
        // Segments: [5 1][3 4 3 9][2 6]; backward exclusive sums within:
        assert_eq!(
            seg_scan_backward::<Sum, _>(&a, &sb),
            vec![1, 0, 16, 12, 9, 0, 6, 0]
        );
        assert_eq!(
            seg_inclusive_scan_backward::<Sum, _>(&a, &sb),
            vec![6, 1, 19, 16, 12, 9, 8, 6]
        );
    }

    #[test]
    fn reversed_segments() {
        let s = Segments::from_lengths(&[2, 4, 2]);
        let r = s.reversed();
        assert_eq!(r.lengths(), vec![2, 4, 2]);
        let s = Segments::from_lengths(&[1, 3]);
        assert_eq!(s.reversed().lengths(), vec![3, 1]);
    }

    #[test]
    fn single_segment_matches_plain_scan() {
        let a = [3u32, 1, 4, 1, 5, 9, 2, 6];
        let s = Segments::single(a.len());
        assert_eq!(seg_scan::<Sum, _>(&a, &s), crate::scan::scan::<Sum, _>(&a));
        assert_eq!(seg_scan::<Min, _>(&a, &s), crate::scan::scan::<Min, _>(&a));
    }

    #[test]
    fn every_element_its_own_segment() {
        let a = [3u32, 1, 4];
        let s = Segments::from_flags(vec![true; 3]);
        assert_eq!(seg_scan::<Sum, _>(&a, &s), vec![0, 0, 0]);
        assert_eq!(seg_inclusive_scan::<Sum, _>(&a, &s), vec![3, 1, 4]);
    }

    #[test]
    fn empty_segmentation() {
        let a: [u32; 0] = [];
        let s = Segments::from_flags(vec![]);
        assert!(seg_scan::<Sum, _>(&a, &s).is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.lengths(), Vec::<usize>::new());
    }

    #[test]
    fn large_parallel_segmented_matches_reference() {
        let n = crate::parallel::PAR_THRESHOLD * 2 + 11;
        let a: Vec<u64> = (0..n as u64).map(|i| (i * 7919) % 1000).collect();
        let flags: Vec<bool> = (0..n).map(|i| i % 97 == 0).collect();
        let segs = Segments::from_flags(flags);
        let got = seg_scan::<Sum, _>(&a, &segs);
        // Reference: sequential per-range scans.
        let mut expect = vec![0u64; n];
        for (s, e) in segs.ranges() {
            let mut acc = 0u64;
            for i in s..e {
                expect[i] = acc;
                acc += a[i];
            }
        }
        assert_eq!(got, expect);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let s = Segments::single(3);
        seg_scan::<Sum, _>(&[1u32, 2], &s);
    }

    #[test]
    fn try_seg_scan_matches_and_reports_typed_errors() {
        use crate::deadline::{self, ScanDeadline};
        use crate::error::{Error, ExecError};
        let n = crate::parallel::PAR_THRESHOLD + 31;
        let a: Vec<u64> = (0..n as u64).map(|i| (i * 31) % 1000).collect();
        let flags: Vec<bool> = (0..n).map(|i| i % 53 == 0).collect();
        let segs = Segments::from_flags(flags);
        assert_eq!(
            try_seg_scan::<Sum, _>(&a, &segs).unwrap(),
            seg_scan::<Sum, _>(&a, &segs)
        );
        // Precondition violation is a typed error, not a panic.
        let short = Segments::single(3);
        assert!(matches!(
            try_seg_scan::<Sum, _>(&a, &short),
            Err(Error::LengthMismatch { .. })
        ));
        // An expired ambient deadline is honored.
        let d = ScanDeadline::at(std::time::Instant::now());
        let got = deadline::with_deadline(&d, || try_seg_scan::<Sum, _>(&a, &segs));
        assert_eq!(got, Err(Error::Exec(ExecError::DeadlineExceeded)));
    }
}
