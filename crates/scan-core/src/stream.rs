//! Streaming (chunked) scans with carry propagation and verified
//! restart checkpoints.
//!
//! Everything else in this crate scans one in-RAM slice. A
//! [`ScanStream`] instead pulls fixed-size chunks from a
//! [`ChunkSource`] and scans each chunk on the parallel engine with
//! the running **carry** folded in through the engine's emit hook, so
//! the concatenated chunk outputs equal the whole-input scan while
//! peak scratch stays proportional to one chunk — constant memory over
//! unbounded input. This is the paper's block decomposition (§3: each
//! unit scans its block, then block totals seed the next) turned
//! sideways: blocks arrive over *time* instead of across *processors*,
//! and the carry plays the role of the block-offset scan.
//!
//! # Restart protocol
//!
//! Chunk boundaries are natural restart points. After every committed
//! chunk the stream can mint a [`CarryCheckpoint`]: chunk index, carry
//! value, and an O(1) digest binding the two. If a mid-stream failure
//! (worker panic, deadline, cancellation) kills the computation, a new
//! stream [`ScanStream::resume`]d from the last checkpoint re-seeks
//! the source and continues from that chunk boundary instead of
//! rescanning from element zero; the digest check turns a corrupted
//! checkpoint into a typed [`Error::CheckpointCorrupt`] instead of a
//! silently mis-seeded tail. A failed [`ScanStream::step`] keeps the
//! pulled chunk buffered, so an in-place retry re-scans the same chunk
//! **without re-pulling it** — the chunk-pull counter
//! ([`ScanStream::pulls`]) is how tests assert that recovery did not
//! restart from zero.
//!
//! # Directions
//!
//! Forward streams consume chunks in logical input order. Backward
//! streams ([`ScanStream::exclusive_backward`] /
//! [`ScanStream::inclusive_backward`]) consume chunks in **reverse**
//! logical order (last chunk first, each chunk's elements still in
//! forward order): a backward scan must see the tail first, exactly as
//! §3.4 reads the vector into the processors in reverse. The `k`-th
//! output chunk is then the result for the `k`-th-from-last input
//! chunk.
//!
//! Segmented scans stream through [`SegScanStream`], whose carry is
//! the paper's §2.3 `(value, head-seen)` pair — a segment head inside
//! any chunk cuts the carry off exactly as it cuts off a prefix.

use core::marker::PhantomData;

use crate::backoff;
use crate::deadline;
use crate::element::ScanElem;
use crate::error::{Error, Result};
use crate::op::ScanOp;
use crate::parallel::{self, Mode};
use crate::segmented::seg_combine;

/// Domain separator for checkpoint digests, so a checkpoint can never
/// verify against a jitter draw or any other `mix` stream.
const CHECKPOINT_SEED: u64 = 0xCA44_7C8E_C001_D16E;

/// A pull source of input chunks for a [`ScanStream`].
///
/// The stream clears `buf` and calls [`next_chunk`](Self::next_chunk),
/// which appends the next chunk's elements and returns how many it
/// appended; `0` means the input is exhausted. Chunk sizes may vary
/// call to call (a network source delivers what it has), but a given
/// chunk index must always denote the same elements — that stability
/// is what makes [`seek`](Self::seek)-based resume sound.
pub trait ChunkSource<T> {
    /// Append the next chunk to `buf` (already cleared) and return its
    /// length; `0` ends the stream.
    fn next_chunk(&mut self, buf: &mut Vec<T>) -> usize;

    /// Reposition so the next [`next_chunk`](Self::next_chunk) call
    /// yields chunk `chunk` (0-based). Returns `false` when this
    /// source cannot seek (the default), which makes mid-stream resume
    /// impossible — [`ScanStream::resume`] reports
    /// [`Error::SeekUnsupported`].
    fn seek(&mut self, chunk: u64) -> bool {
        let _ = chunk;
        false
    }
}

/// A [`ChunkSource`] over an in-RAM slice, split into fixed-length
/// chunks (the final chunk may be shorter). Seekable.
#[derive(Debug, Clone)]
pub struct SliceSource<'a, T> {
    data: &'a [T],
    chunk_len: usize,
    pos: usize,
}

impl<'a, T> SliceSource<'a, T> {
    /// Source over `data` delivering `chunk_len`-element chunks
    /// (`chunk_len` is clamped to at least 1).
    pub fn new(data: &'a [T], chunk_len: usize) -> Self {
        SliceSource {
            data,
            chunk_len: chunk_len.max(1),
            pos: 0,
        }
    }
}

impl<T: Copy> ChunkSource<T> for SliceSource<'_, T> {
    fn next_chunk(&mut self, buf: &mut Vec<T>) -> usize {
        let end = (self.pos + self.chunk_len).min(self.data.len());
        let chunk = &self.data[self.pos..end];
        buf.extend_from_slice(chunk);
        self.pos = end;
        chunk.len()
    }

    fn seek(&mut self, chunk: u64) -> bool {
        match (chunk as usize).checked_mul(self.chunk_len) {
            Some(pos) if pos <= self.data.len() => {
                self.pos = pos;
                true
            }
            _ => false,
        }
    }
}

/// A carry value that can contribute bits to a checkpoint digest.
///
/// [`ScanElem`] is a blanket trait over any `Copy + PartialEq` type,
/// which is too wide to digest generically; this companion trait names
/// the types whose streams can mint [`CarryCheckpoint`]s. It covers
/// every primitive the scan operators run over, plus the segmented
/// `(value, flag)` pair.
pub trait CarryDigest {
    /// A 64-bit fingerprint of the value. Equal values must produce
    /// equal bits; the digest does not need to be collision-free, only
    /// to make accidental corruption overwhelmingly detectable.
    fn digest_bits(&self) -> u64;
}

macro_rules! impl_digest_int {
    ($($t:ty),*) => {$(
        impl CarryDigest for $t {
            #[inline]
            fn digest_bits(&self) -> u64 {
                // Sign-extend then reinterpret, so -1i32 and -1i64
                // digest alike and u64::MAX keeps all its bits.
                *self as i128 as u128 as u64 ^ ((*self as i128 as u128 >> 64) as u64)
            }
        }
    )*};
}

impl_digest_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl CarryDigest for bool {
    #[inline]
    fn digest_bits(&self) -> u64 {
        u64::from(*self)
    }
}

impl CarryDigest for f32 {
    #[inline]
    fn digest_bits(&self) -> u64 {
        u64::from(self.to_bits())
    }
}

impl CarryDigest for f64 {
    #[inline]
    fn digest_bits(&self) -> u64 {
        self.to_bits()
    }
}

impl<T: CarryDigest> CarryDigest for (T, bool) {
    #[inline]
    fn digest_bits(&self) -> u64 {
        backoff::mix(self.0.digest_bits()) ^ u64::from(self.1)
    }
}

/// Digest binding a chunk index to a carry value.
fn checkpoint_digest<T: CarryDigest>(chunk: u64, carry: &T) -> u64 {
    backoff::mix(carry.digest_bits() ^ backoff::mix(chunk ^ CHECKPOINT_SEED))
}

/// A verified restart point: "the scan of everything before chunk
/// `chunk` folds to `carry`".
///
/// The digest is an O(1) integrity check over `(chunk, carry)`. It is
/// computed at mint time and re-checked by [`ScanStream::resume`], so
/// a checkpoint that survived a crash in a file, a message, or plain
/// memory cannot silently resume a stream with a corrupted carry.
/// [`parts`](Self::parts) / [`from_parts`](Self::from_parts) model the
/// persistence round-trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CarryCheckpoint<T> {
    chunk: u64,
    carry: T,
    digest: u64,
}

impl<T: Copy + CarryDigest> CarryCheckpoint<T> {
    /// Checkpoint for resuming at chunk boundary `chunk` with running
    /// carry `carry`.
    pub fn new(chunk: u64, carry: T) -> Self {
        CarryCheckpoint {
            chunk,
            carry,
            digest: checkpoint_digest(chunk, &carry),
        }
    }

    /// The raw `(chunk, carry, digest)` triple, e.g. for persisting.
    pub fn parts(&self) -> (u64, T, u64) {
        (self.chunk, self.carry, self.digest)
    }

    /// Rebuild a checkpoint from persisted parts. No verification
    /// happens here — [`verify`](Self::verify) (or
    /// [`ScanStream::resume`], which calls it) decides whether the
    /// triple is intact.
    pub fn from_parts(chunk: u64, carry: T, digest: u64) -> Self {
        CarryCheckpoint {
            chunk,
            carry,
            digest,
        }
    }

    /// Does the digest still bind this chunk index to this carry?
    pub fn verify(&self) -> bool {
        self.digest == checkpoint_digest(self.chunk, &self.carry)
    }

    /// Chunk index to resume at (number of chunks already folded in).
    pub fn chunk(&self) -> u64 {
        self.chunk
    }

    /// The running carry at that boundary.
    pub fn carry(&self) -> T {
        self.carry
    }
}

/// A chunked scan with carry propagation: pull a chunk, scan it seeded
/// by the carry, hand out the output chunk, repeat. See the module
/// docs for the restart and direction protocols.
pub struct ScanStream<O, T, C> {
    source: C,
    mode: Mode,
    buf: Vec<T>,
    out: Vec<T>,
    carry: T,
    chunk: u64,
    /// `buf` holds a pulled-but-uncommitted chunk (set across a failed
    /// `step`, so the retry does not re-pull).
    pulled: bool,
    done: bool,
    pulls: u64,
    _op: PhantomData<O>,
}

impl<O, T, C> ScanStream<O, T, C>
where
    O: ScanOp<T>,
    T: ScanElem,
    C: ChunkSource<T>,
{
    fn with_mode(source: C, mode: Mode) -> Self {
        ScanStream {
            source,
            mode,
            buf: Vec::new(),
            out: Vec::new(),
            carry: O::identity(),
            chunk: 0,
            pulled: false,
            done: false,
            pulls: 0,
            _op: PhantomData,
        }
    }

    /// Streaming exclusive forward scan (the paper's scan).
    pub fn exclusive(source: C) -> Self {
        Self::with_mode(source, Mode::ExclusiveFwd)
    }

    /// Streaming inclusive forward scan.
    pub fn inclusive(source: C) -> Self {
        Self::with_mode(source, Mode::InclusiveFwd)
    }

    /// Streaming exclusive backward scan. The source must yield chunks
    /// in reverse logical order (see the module docs).
    pub fn exclusive_backward(source: C) -> Self {
        Self::with_mode(source, Mode::ExclusiveBwd)
    }

    /// Streaming inclusive backward scan; reverse chunk order as for
    /// [`exclusive_backward`](Self::exclusive_backward).
    pub fn inclusive_backward(source: C) -> Self {
        Self::with_mode(source, Mode::InclusiveBwd)
    }

    /// Scan the next chunk and return its output slice, or `Ok(None)`
    /// once the source is exhausted.
    ///
    /// Each call starts with a [`deadline::checkpoint`], so an expired
    /// or cancelled ambient [`crate::ScanDeadline`] surfaces between
    /// chunks as a typed error — never mid-buffer corruption. On any
    /// error the pulled chunk stays buffered and **uncommitted**:
    /// calling `step` again retries the same chunk without touching
    /// the source, and the carry still describes the last committed
    /// boundary (so a checkpoint taken now is valid).
    pub fn step(&mut self) -> Result<Option<&[T]>> {
        if self.done {
            return Ok(None);
        }
        deadline::checkpoint()?;
        if !self.pulled {
            self.buf.clear();
            let n = self.source.next_chunk(&mut self.buf);
            debug_assert_eq!(n, self.buf.len(), "source must append exactly its count");
            if n == 0 {
                self.done = true;
                return Ok(None);
            }
            self.pulled = true;
            self.pulls += 1;
        }

        let carry = self.carry;
        let backward = self.mode.backward();
        let d = deadline::current();
        let buf = &self.buf;
        // The carry rides the emit hook: the engine scans the chunk
        // from the operator identity, and every emitted state gets the
        // carry folded in from the correct side. Associativity makes
        // this equal to seeding the whole prefix; the identity-seeded
        // engine keeps its block decomposition untouched.
        let (out, total) = parallel::try_engine(
            parallel::default_schedule(),
            buf.len(),
            |i| buf[i],
            O::identity(),
            O::combine,
            move |_, s| {
                if backward {
                    O::combine(s, carry)
                } else {
                    O::combine(carry, s)
                }
            },
            self.mode,
            O::simd_tile(),
            d.as_ref(),
        )?;

        // Commit: the chunk is now folded into the stream state.
        self.carry = if backward {
            O::combine(total, carry)
        } else {
            O::combine(carry, total)
        };
        self.chunk += 1;
        self.pulled = false;
        self.out = out;
        Ok(Some(&self.out))
    }

    /// Run the stream to exhaustion, handing each output chunk to
    /// `sink`; returns the final carry (the total reduction) and the
    /// number of chunks processed. Errors propagate with the stream
    /// left retryable, exactly as for [`step`](Self::step).
    pub fn process<F: FnMut(&[T])>(&mut self, mut sink: F) -> Result<(T, u64)> {
        while let Some(chunk) = self.step()? {
            sink(chunk);
        }
        Ok((self.carry, self.chunk))
    }

    /// The running carry: the fold of every committed chunk.
    pub fn carry(&self) -> T {
        self.carry
    }

    /// Chunks committed so far.
    pub fn chunks_done(&self) -> u64 {
        self.chunk
    }

    /// Chunks pulled from the source so far. A retried chunk is pulled
    /// once — recovery tests pin on this counter to prove a restart
    /// did not re-read the stream from zero.
    pub fn pulls(&self) -> u64 {
        self.pulls
    }

    /// Bytes-free view of current scratch: the stream's peak resident
    /// state is these two buffers, whose capacity tracks the largest
    /// chunk seen — never the total input length.
    pub fn scratch_len(&self) -> usize {
        self.buf.capacity() + self.out.capacity()
    }
}

impl<O, T, C> ScanStream<O, T, C>
where
    O: ScanOp<T>,
    T: ScanElem + CarryDigest,
    C: ChunkSource<T>,
{
    /// Checkpoint of the last committed chunk boundary. Cheap (O(1));
    /// taking one after every chunk is the intended cadence.
    pub fn checkpoint(&self) -> CarryCheckpoint<T> {
        CarryCheckpoint::new(self.chunk, self.carry)
    }

    /// Resume this (freshly built) stream from `ckpt`: verify the
    /// digest, seek the source to the checkpointed chunk, and adopt
    /// its carry. Returns [`Error::CheckpointCorrupt`] when the digest
    /// fails and [`Error::SeekUnsupported`] when a mid-stream resume
    /// is needed but the source cannot seek.
    pub fn resume(mut self, ckpt: &CarryCheckpoint<T>) -> Result<Self> {
        if !ckpt.verify() {
            return Err(Error::CheckpointCorrupt { chunk: ckpt.chunk });
        }
        if !self.source.seek(ckpt.chunk) && ckpt.chunk > 0 {
            return Err(Error::SeekUnsupported { chunk: ckpt.chunk });
        }
        self.carry = ckpt.carry;
        self.chunk = ckpt.chunk;
        self.pulled = false;
        self.done = false;
        Ok(self)
    }
}

/// A chunked **segmented** exclusive scan (paper §2.3). The source
/// yields `(value, head-flag)` pairs; the stream's carry is the
/// segmented pair state, so a head inside any chunk cuts the carry
/// exactly as it cuts a prefix in [`crate::seg_scan`]. Forward only;
/// the global first element is always a segment head whether or not
/// its flag is set, as everywhere in this crate.
pub struct SegScanStream<O, T, C> {
    source: C,
    buf: Vec<(T, bool)>,
    out: Vec<T>,
    carry: (T, bool),
    chunk: u64,
    pulled: bool,
    done: bool,
    pulls: u64,
    _op: PhantomData<O>,
}

impl<O, T, C> SegScanStream<O, T, C>
where
    O: ScanOp<T>,
    T: ScanElem,
    C: ChunkSource<(T, bool)>,
{
    /// Streaming segmented exclusive scan over `source`.
    pub fn new(source: C) -> Self {
        SegScanStream {
            source,
            buf: Vec::new(),
            out: Vec::new(),
            carry: (O::identity(), false),
            chunk: 0,
            pulled: false,
            done: false,
            pulls: 0,
            _op: PhantomData,
        }
    }

    /// Scan the next chunk of pairs; same contract as
    /// [`ScanStream::step`].
    pub fn step(&mut self) -> Result<Option<&[T]>> {
        if self.done {
            return Ok(None);
        }
        deadline::checkpoint()?;
        if !self.pulled {
            self.buf.clear();
            let n = self.source.next_chunk(&mut self.buf);
            debug_assert_eq!(n, self.buf.len(), "source must append exactly its count");
            if n == 0 {
                self.done = true;
                return Ok(None);
            }
            self.pulled = true;
            self.pulls += 1;
        }

        let carry = self.carry;
        let first_chunk = self.chunk == 0;
        let d = deadline::current();
        let buf = &self.buf;
        // Pair load: the global first element is forced to be a head.
        let load = move |i: usize| {
            let (v, f) = buf[i];
            (v, f || (first_chunk && i == 0))
        };
        // Emit: heads restart at the identity; everything else is the
        // in-chunk pair state with the carry folded in — the pair
        // operator itself decides whether the carry survives (it dies
        // at the first head in the chunk prefix).
        let (out, total) = parallel::try_engine(
            parallel::default_schedule(),
            buf.len(),
            load,
            (O::identity(), false),
            seg_combine::<O, T>,
            move |i, s: (T, bool)| {
                if load(i).1 {
                    O::identity()
                } else {
                    seg_combine::<O, T>(carry, s).0
                }
            },
            Mode::ExclusiveFwd,
            O::simd_seg_tile(),
            d.as_ref(),
        )?;

        self.carry = seg_combine::<O, T>(carry, total);
        self.chunk += 1;
        self.pulled = false;
        self.out = out;
        Ok(Some(&self.out))
    }

    /// Run to exhaustion; see [`ScanStream::process`].
    pub fn process<F: FnMut(&[T])>(&mut self, mut sink: F) -> Result<((T, bool), u64)> {
        while let Some(chunk) = self.step()? {
            sink(chunk);
        }
        Ok((self.carry, self.chunk))
    }

    /// The running segmented carry pair.
    pub fn carry(&self) -> (T, bool) {
        self.carry
    }

    /// Chunks committed so far.
    pub fn chunks_done(&self) -> u64 {
        self.chunk
    }

    /// Chunks pulled from the source so far (see [`ScanStream::pulls`]).
    pub fn pulls(&self) -> u64 {
        self.pulls
    }
}

impl<O, T, C> SegScanStream<O, T, C>
where
    O: ScanOp<T>,
    T: ScanElem + CarryDigest,
    C: ChunkSource<(T, bool)>,
{
    /// Checkpoint of the last committed chunk boundary.
    pub fn checkpoint(&self) -> CarryCheckpoint<(T, bool)> {
        CarryCheckpoint::new(self.chunk, self.carry)
    }

    /// Resume from a checkpoint; same contract as
    /// [`ScanStream::resume`].
    pub fn resume(mut self, ckpt: &CarryCheckpoint<(T, bool)>) -> Result<Self> {
        if !ckpt.verify() {
            return Err(Error::CheckpointCorrupt { chunk: ckpt.chunk });
        }
        if !self.source.seek(ckpt.chunk) && ckpt.chunk > 0 {
            return Err(Error::SeekUnsupported { chunk: ckpt.chunk });
        }
        self.carry = ckpt.carry;
        self.chunk = ckpt.chunk;
        self.pulled = false;
        self.done = false;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Max, Sum};
    use crate::segmented::{seg_scan, Segments};

    fn collect<O: ScanOp<u64>, C: ChunkSource<u64>>(
        mut s: ScanStream<O, u64, C>,
    ) -> (Vec<u64>, u64) {
        let mut all = Vec::new();
        let (carry, _) = s.process(|c| all.extend_from_slice(c)).unwrap();
        (all, carry)
    }

    #[test]
    fn forward_streams_match_in_ram_scans() {
        let a: Vec<u64> = (0..1000).map(|i| i * 7 % 113).collect();
        for chunk_len in [1, 3, 64, 999, 1000, 5000] {
            let (out, carry) =
                collect::<Sum, _>(ScanStream::exclusive(SliceSource::new(&a, chunk_len)));
            assert_eq!(out, crate::scan::<Sum, _>(&a), "chunk_len {chunk_len}");
            assert_eq!(carry, crate::reduce::<Sum, _>(&a));
            let (out, _) =
                collect::<Max, _>(ScanStream::inclusive(SliceSource::new(&a, chunk_len)));
            assert_eq!(out, crate::inclusive_scan::<Max, _>(&a));
        }
    }

    #[test]
    fn backward_streams_match_with_reverse_chunk_order() {
        let a: Vec<u64> = (0..500).map(|i| i * 13 % 97).collect();
        let chunk_len = 64;
        // Feed chunks in reverse logical order via a reversed manual
        // source: chunk k of the stream is chunk (last-k) of `a`.
        struct Rev<'a> {
            chunks: Vec<&'a [u64]>,
            next: usize,
        }
        impl ChunkSource<u64> for Rev<'_> {
            fn next_chunk(&mut self, buf: &mut Vec<u64>) -> usize {
                if self.next >= self.chunks.len() {
                    return 0;
                }
                buf.extend_from_slice(self.chunks[self.next]);
                self.next += 1;
                self.chunks[self.next - 1].len()
            }
        }
        let chunks: Vec<&[u64]> = a.chunks(chunk_len).rev().collect();
        let mut s = ScanStream::<Sum, _, _>::exclusive_backward(Rev { chunks, next: 0 });
        let mut pieces: Vec<Vec<u64>> = Vec::new();
        while let Some(c) = s.step().unwrap() {
            pieces.push(c.to_vec());
        }
        // Reassemble in forward order: last-pulled piece is the head.
        let out: Vec<u64> = pieces.iter().rev().flatten().copied().collect();
        assert_eq!(out, crate::scan_backward::<Sum, _>(&a));
        assert_eq!(s.carry(), crate::reduce::<Sum, _>(&a));
    }

    #[test]
    fn seg_stream_matches_seg_scan_across_chunk_cuts() {
        let n = 300usize;
        let values: Vec<u64> = (0..n as u64).map(|i| i * 11 % 61).collect();
        // Heads at positions that land mid-chunk, on chunk edges, and
        // nowhere near a cut.
        let flags: Vec<bool> = (0..n).map(|i| i % 37 == 5 || i == 128).collect();
        let segs = Segments::from_flags(flags.clone());
        let want = seg_scan::<Sum, _>(&values, &segs);
        let pairs: Vec<(u64, bool)> = values.iter().copied().zip(flags).collect();
        for chunk_len in [1, 7, 64, 128, 300] {
            let mut s = SegScanStream::<Sum, _, _>::new(SliceSource::new(&pairs, chunk_len));
            let mut out = Vec::new();
            s.process(|c| out.extend_from_slice(c)).unwrap();
            assert_eq!(out, want, "chunk_len {chunk_len}");
        }
    }

    #[test]
    fn checkpoint_roundtrip_and_corruption_detection() {
        let ck = CarryCheckpoint::new(5, 42u64);
        assert!(ck.verify());
        let (chunk, carry, digest) = ck.parts();
        assert!(CarryCheckpoint::from_parts(chunk, carry, digest).verify());
        // Any single-field corruption is caught.
        assert!(!CarryCheckpoint::from_parts(chunk + 1, carry, digest).verify());
        assert!(!CarryCheckpoint::from_parts(chunk, carry ^ 1, digest).verify());
        assert!(!CarryCheckpoint::from_parts(chunk, carry, digest ^ 1).verify());
        // Pair carries digest too (segmented streams).
        let ck = CarryCheckpoint::new(3, (7u64, true));
        assert!(ck.verify());
        assert!(!CarryCheckpoint::from_parts(3, (7u64, false), ck.parts().2).verify());
    }

    #[test]
    fn resume_continues_from_the_checkpointed_boundary() {
        let a: Vec<u64> = (0..640).map(|i| i * 3 % 251).collect();
        let want = crate::scan::<Sum, _>(&a);
        let mut s = ScanStream::<Sum, _, _>::exclusive(SliceSource::new(&a, 100));
        let mut out = Vec::new();
        for _ in 0..3 {
            out.extend_from_slice(s.step().unwrap().unwrap());
        }
        let ckpt = s.checkpoint();
        assert_eq!(ckpt.chunk(), 3);
        drop(s); // the "crash"

        let resumed = ScanStream::<Sum, _, _>::exclusive(SliceSource::new(&a, 100))
            .resume(&ckpt)
            .unwrap();
        let mut resumed = resumed;
        let mut tail = Vec::new();
        let (carry, chunks) = resumed.process(|c| tail.extend_from_slice(c)).unwrap();
        assert_eq!(chunks, 7, "7 total chunk boundaries for 640/100");
        assert_eq!(carry, crate::reduce::<Sum, _>(&a));
        // Only 4 chunks were pulled after resume — not all 7.
        assert_eq!(resumed.pulls(), 4);
        out.extend_from_slice(&tail);
        assert_eq!(out, want);
    }

    #[test]
    fn resume_rejects_corrupt_checkpoint_and_unseekable_source() {
        let a: Vec<u64> = (0..100).collect();
        let good = CarryCheckpoint::new(2, 10u64);
        let (c, v, d) = good.parts();
        let bad = CarryCheckpoint::from_parts(c, v + 1, d);
        let err = ScanStream::<Sum, _, _>::exclusive(SliceSource::new(&a, 10))
            .resume(&bad)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err, Error::CheckpointCorrupt { chunk: 2 });

        struct NoSeek;
        impl ChunkSource<u64> for NoSeek {
            fn next_chunk(&mut self, _buf: &mut Vec<u64>) -> usize {
                0
            }
        }
        let err = ScanStream::<Sum, _, _>::exclusive(NoSeek)
            .resume(&good)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err, Error::SeekUnsupported { chunk: 2 });
        // Chunk-0 resume needs no seek: it is a plain fresh start.
        assert!(ScanStream::<Sum, _, _>::exclusive(NoSeek)
            .resume(&CarryCheckpoint::new(0, 0u64))
            .is_ok());
    }

    /// Slice source that cancels the ambient deadline while delivering
    /// chosen chunks: the pull succeeds, then the engine run fails —
    /// a deterministic mid-chunk interruption.
    struct Sabotage<'a> {
        inner: SliceSource<'a, u64>,
        cancel_on_pull: Vec<u64>,
        pull: u64,
    }
    impl ChunkSource<u64> for Sabotage<'_> {
        fn next_chunk(&mut self, buf: &mut Vec<u64>) -> usize {
            let n = self.inner.next_chunk(buf);
            if self.cancel_on_pull.contains(&self.pull) {
                if let Some(d) = deadline::current() {
                    d.cancel();
                }
            }
            self.pull += 1;
            n
        }
    }

    #[test]
    fn failed_step_retries_without_repull_and_commits_once() {
        let a: Vec<u64> = (0..64).collect();
        let src = Sabotage {
            inner: SliceSource::new(&a, 16),
            cancel_on_pull: vec![1], // second chunk's engine run dies
            pull: 0,
        };
        let mut s = ScanStream::<Sum, _, _>::exclusive(src);
        // Chunk 0 is clean.
        let d = crate::ScanDeadline::manual();
        let first = deadline::with_deadline(&d, || s.step().map(|c| c.map(<[u64]>::to_vec)));
        assert!(first.unwrap().is_some());
        assert_eq!((s.pulls(), s.chunks_done()), (1, 1));
        // Chunk 1 is pulled, then the engine run is cancelled: the
        // chunk stays buffered and uncommitted.
        let err = deadline::with_deadline(&d, || s.step().map(|_| ()).unwrap_err());
        assert_eq!(err, Error::Exec(crate::ExecError::Cancelled));
        assert_eq!((s.pulls(), s.chunks_done()), (2, 1));
        // A checkpoint taken now still describes the last committed
        // boundary (chunk 1), not the in-flight chunk.
        assert_eq!(s.checkpoint().chunk(), 1);
        // Clean retry outside the cancelled scope: the SAME chunk is
        // re-scanned without a re-pull, then the stream finishes.
        let mut rest = Vec::new();
        let (carry, chunks) = s.process(|c| rest.extend_from_slice(c)).unwrap();
        assert_eq!(chunks, 4);
        assert_eq!(s.pulls(), 4, "chunk 1 was pulled once despite the retry");
        assert_eq!(carry, crate::reduce::<Sum, _>(&a));
        assert_eq!(rest.len(), 48, "chunks 1..4 re-emitted after the retry");
    }

    #[test]
    fn scratch_stays_chunk_sized() {
        let a: Vec<u64> = (0..10_000).collect();
        let mut s = ScanStream::<Sum, _, _>::exclusive(SliceSource::new(&a, 128));
        let mut scratch_peak = 0;
        while s.step().unwrap().is_some() {
            scratch_peak = scratch_peak.max(s.scratch_len());
        }
        // Two buffers of one chunk each — nowhere near the input size.
        assert!(scratch_peak <= 4 * 128, "scratch {scratch_peak}");
    }
}
