//! The "simple operations" of paper §2.2 plus the data-movement
//! operations of §2.1: `enumerate`, `copy`, `⊕-distribute`, `permute`,
//! `split`, `pack`, and friends. All have `O(1)` step complexity in the
//! scan model.

use crate::element::ScanElem;
use crate::error::{Error, Result};
use crate::op::ScanOp;
use crate::parallel;
use crate::scan::reduce;

/// `enumerate` (Figure 1): the `i`-th *true* element receives the count
/// of true elements strictly before it.
///
/// Implemented, as in the paper, as a `+-scan` of the 0/1 rendering of
/// the flags — but fused: the flags are converted inside the scan's
/// load step, so the intermediate 0/1 vector is never materialized.
///
/// ```
/// use scan_core::ops::enumerate;
/// // Figure 1: Flag = [T F F T F T T F] -> [0 1 1 1 2 2 3 4]
/// let f = [true, false, false, true, false, true, true, false];
/// assert_eq!(enumerate(&f), vec![0, 1, 1, 1, 2, 2, 3, 4]);
/// ```
pub fn enumerate(flags: &[bool]) -> Vec<usize> {
    index_sum_scan(
        flags.len(),
        |i| usize::from(flags[i]),
        parallel::Mode::ExclusiveFwd,
    )
    .0
}

/// Backward `enumerate`: the `i`-th true element receives the count of
/// true elements strictly *after* it (used by `split`, Figure 3).
/// Fused like [`enumerate`]; the blocks are walked right-to-left.
pub fn back_enumerate(flags: &[bool]) -> Vec<usize> {
    index_sum_scan(
        flags.len(),
        |i| usize::from(flags[i]),
        parallel::Mode::ExclusiveBwd,
    )
    .0
}

/// Number of true flags (a fused map→reduce).
pub fn count(flags: &[bool]) -> usize {
    parallel::reduce_engine(
        parallel::default_schedule(),
        flags.len(),
        |i| usize::from(flags[i]),
        0usize,
        |a, b| a.wrapping_add(b),
        <crate::op::Sum as ScanOp<usize>>::simd_tile(),
    )
}

/// The funnel for every §2.2 flag-counting step: a fused 0/1 `+`-scan
/// by index with the `usize` sum tile attached (integer index counts
/// reassociate exactly, so the vector path cannot change a result).
fn index_sum_scan<G>(n: usize, g: G, mode: parallel::Mode) -> (Vec<usize>, usize)
where
    G: Fn(usize) -> usize + Sync,
{
    parallel::engine(
        parallel::default_schedule(),
        n,
        g,
        0usize,
        |a, b| a.wrapping_add(b),
        |_, s| s,
        mode,
        <crate::op::Sum as ScanOp<usize>>::simd_tile(),
    )
}

/// `copy` (Figure 1): copy the first element over all elements.
///
/// The paper implements this by placing the identity everywhere but the
/// first position and scanning; at the library level the effect is a
/// broadcast fill.
///
/// # Panics
/// If `a` is empty. See [`try_copy_first`] for the checked form.
pub fn copy_first<T: ScanElem>(a: &[T]) -> Vec<T> {
    copy_first_impl(a).unwrap_or_else(|e| panic!("{e}"))
}

fn copy_first_impl<T: ScanElem>(a: &[T]) -> Result<Vec<T>> {
    match a.first() {
        Some(&head) => Ok(vec![head; a.len()]),
        None => Err(Error::EmptyInput { op: "copy" }),
    }
}

/// Checked [`copy_first`]: `Err(Error::EmptyInput)` on an empty vector
/// instead of panicking. Honors the ambient [`crate::deadline`] scope.
pub fn try_copy_first<T: ScanElem>(a: &[T]) -> Result<Vec<T>> {
    crate::deadline::checkpoint()?;
    copy_first_impl(a)
}

/// `⊕-distribute` (Figure 1): every element receives the reduction of
/// the whole vector (`+-distribute`, `max-distribute`, ... depending on
/// `O`). Implemented as a scan plus a backward copy, per the paper.
///
/// ```
/// use scan_core::{ops::distribute_op, op::Sum};
/// // Figure 1: B = [1 1 2 1 1 2 1 1] -> [10 10 10 10 10 10 10 10]
/// let b = [1u32, 1, 2, 1, 1, 2, 1, 1];
/// assert_eq!(distribute_op::<Sum, _>(&b), vec![10; 8]);
/// ```
pub fn distribute_op<O: ScanOp<T>, T: ScanElem>(a: &[T]) -> Vec<T> {
    let total = reduce::<O, T>(a);
    vec![total; a.len()]
}

/// `permute` (§2.1): move `a[i]` to position `indices[i]` of the result.
/// All indices must be unique and in range — on an EREW P-RAM a
/// duplicate would be a concurrent write.
///
/// This is the checked version; see [`permute_unchecked`] for the
/// fast path used inside the algorithms once indices are known-valid.
pub fn try_permute<T: ScanElem>(a: &[T], indices: &[usize]) -> Result<Vec<T>> {
    crate::deadline::checkpoint()?;
    permute_impl(a, indices)
}

fn permute_impl<T: ScanElem>(a: &[T], indices: &[usize]) -> Result<Vec<T>> {
    if a.len() != indices.len() {
        return Err(Error::LengthMismatch {
            expected: a.len(),
            actual: indices.len(),
        });
    }
    let mut seen = vec![false; a.len()];
    for &ix in indices {
        if ix >= a.len() {
            return Err(Error::IndexOutOfBounds {
                index: ix,
                len: a.len(),
            });
        }
        if seen[ix] {
            return Err(Error::DuplicateIndex { index: ix });
        }
        seen[ix] = true;
    }
    Ok(permute_unchecked(a, indices))
}

/// `permute` (§2.1), panicking on invalid indices.
///
/// ```
/// use scan_core::ops::permute;
/// // §2.1: permute([a0..a7], [2 5 4 3 1 6 0 7]) = [a6 a4 a0 a3 a2 a1 a5 a7]
/// let a = ["a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7"];
/// let i = [2, 5, 4, 3, 1, 6, 0, 7];
/// assert_eq!(permute(&a, &i), vec!["a6", "a4", "a0", "a3", "a2", "a1", "a5", "a7"]);
/// ```
///
/// # Panics
/// On length mismatch, out-of-range index, or duplicate index.
pub fn permute<T: ScanElem>(a: &[T], indices: &[usize]) -> Vec<T> {
    permute_impl(a, indices).unwrap_or_else(|e| panic!("invalid permute: {e}"))
}

/// Scatter without the permutation check: `out[indices[i]] = a[i]`.
/// In debug builds the indices are fully validated; in release an
/// out-of-range index still panics, and a duplicate index (a caller
/// bug) leaves the skipped slot holding `a[0]` — wrong data, but
/// never uninitialized memory.
///
/// # Panics
/// On length mismatch or an out-of-range index (both builds); on a
/// duplicate index in debug builds.
pub fn permute_unchecked<T: ScanElem>(a: &[T], indices: &[usize]) -> Vec<T> {
    assert_eq!(a.len(), indices.len(), "permute length mismatch");
    #[cfg(debug_assertions)]
    {
        let mut seen = vec![false; a.len()];
        for &ix in indices {
            debug_assert!(ix < a.len(), "permute index out of range");
            debug_assert!(!seen[ix], "duplicate permute index");
            seen[ix] = true;
        }
    }
    if a.is_empty() {
        return Vec::new();
    }
    // Pre-fill so every slot is initialized even if the caller breaks
    // the uniqueness contract; the fill is a cheap memset-like pass for
    // `Copy` elements.
    let mut out: Vec<T> = vec![a[0]; a.len()];
    for (i, &ix) in indices.iter().enumerate() {
        out[ix] = a[i];
    }
    out
}

/// Gather: `out[i] = a[indices[i]]`. The read-side dual of `permute`.
/// The result has the length of `indices`, which may differ from `a`.
///
/// On an EREW P-RAM this is an exclusive read only when the indices are
/// unique; with repeats it is a concurrent read (CREW). The paper's
/// cross-pointer traversals use unique indices; its `copy` patterns use
/// repeated ones, which the scan model expresses with scans instead.
///
/// # Panics
/// If an index is out of range. See [`try_gather`] for the checked form.
pub fn gather<T: ScanElem>(a: &[T], indices: &[usize]) -> Vec<T> {
    parallel::tabulate_by(indices.len(), |i| a[indices[i]])
}

/// Checked [`gather`]: `Err(Error::IndexOutOfBounds)` on a bad index
/// instead of panicking.
pub fn try_gather<T: ScanElem>(a: &[T], indices: &[usize]) -> Result<Vec<T>> {
    crate::deadline::checkpoint()?;
    indices
        .iter()
        .map(|&ix| {
            a.get(ix).copied().ok_or(Error::IndexOutOfBounds {
                index: ix,
                len: a.len(),
            })
        })
        .collect()
}

/// The `split` operation (§2.2.1, Figure 3): pack elements whose flag is
/// `false` to the bottom of the vector and elements whose flag is `true`
/// to the top, preserving order within both groups.
///
/// ```
/// use scan_core::ops::split;
/// // Figure 3: A = [5 7 3 1 4 2 7 2], Flags = [T T T T F F T F]
/// let a = [5u32, 7, 3, 1, 4, 2, 7, 2];
/// let f = [true, true, true, true, false, false, true, false];
/// assert_eq!(split(&a, &f), vec![4, 2, 2, 5, 7, 3, 1, 7]);
/// ```
///
/// # Panics
/// If lengths differ. See [`try_split`] for the checked form.
pub fn split<T: ScanElem>(a: &[T], flags: &[bool]) -> Vec<T> {
    split_count(a, flags).0
}

/// Checked [`split`]: `Err(Error::LengthMismatch)` instead of panicking.
pub fn try_split<T: ScanElem>(a: &[T], flags: &[bool]) -> Result<Vec<T>> {
    Ok(try_split_count(a, flags)?.0)
}

/// Checked [`split_count`]: `Err(Error::LengthMismatch)` instead of
/// panicking.
pub fn try_split_count<T: ScanElem>(a: &[T], flags: &[bool]) -> Result<(Vec<T>, usize)> {
    crate::deadline::checkpoint()?;
    if a.len() != flags.len() {
        return Err(Error::LengthMismatch {
            expected: a.len(),
            actual: flags.len(),
        });
    }
    Ok(split_count(a, flags))
}

/// [`split`], also returning the number of `false` elements (the index
/// where the `true` group begins).
pub fn split_count<T: ScanElem>(a: &[T], flags: &[bool]) -> (Vec<T>, usize) {
    assert_eq!(a.len(), flags.len(), "split length mismatch");
    let n = a.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    // Fused: the negated 0/1 flags are loaded inside the scans, so
    // neither `not_flags` nor a ones vector is materialized.
    let (i_down, n_false) = index_sum_scan(
        flags.len(),
        |i| usize::from(!flags[i]),
        parallel::Mode::ExclusiveFwd,
    );
    let i_up = back_enumerate(flags);
    // Figure 3: I-up = n - back-enumerate(Flags) - 1
    let index = parallel::tabulate_by(n, |i| if flags[i] { n - i_up[i] - 1 } else { i_down[i] });
    (permute_unchecked(a, &index), n_false)
}

/// Destination index of each element under [`split`] without moving
/// data. Useful when several vectors must be split by the same flags.
pub fn split_index(flags: &[bool]) -> Vec<usize> {
    let n = flags.len();
    let i_down = index_sum_scan(
        flags.len(),
        |i| usize::from(!flags[i]),
        parallel::Mode::ExclusiveFwd,
    )
    .0;
    let i_up = back_enumerate(flags);
    parallel::tabulate_by(n, |i| if flags[i] { n - i_up[i] - 1 } else { i_down[i] })
}

/// Three-way split keys for [`split3`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bucket {
    /// Goes to the bottom group.
    Lo,
    /// Goes to the middle group.
    Mid,
    /// Goes to the top group.
    Hi,
}

/// Checked [`split3`]: `Err(Error::LengthMismatch)` instead of
/// panicking.
pub fn try_split3<T: ScanElem>(a: &[T], buckets: &[Bucket]) -> Result<(Vec<T>, usize, usize)> {
    crate::deadline::checkpoint()?;
    if a.len() != buckets.len() {
        return Err(Error::LengthMismatch {
            expected: a.len(),
            actual: buckets.len(),
        });
    }
    Ok(split3(a, buckets))
}

/// Three-way split (used by quicksort, §2.3.1): `Lo` elements first,
/// then `Mid`, then `Hi`, each group in original order. Returns the
/// permuted vector and the sizes of the `Lo` and `Mid` groups.
///
/// # Panics
/// If lengths differ. See [`try_split3`] for the checked form.
pub fn split3<T: ScanElem>(a: &[T], buckets: &[Bucket]) -> (Vec<T>, usize, usize) {
    assert_eq!(a.len(), buckets.len(), "split3 length mismatch");
    let index = split3_index(buckets);
    let n_lo = buckets.iter().filter(|&&b| b == Bucket::Lo).count();
    let n_mid = buckets.iter().filter(|&&b| b == Bucket::Mid).count();
    (permute_unchecked(a, &index), n_lo, n_mid)
}

/// Destination index of each element under [`split3`].
pub fn split3_index(buckets: &[Bucket]) -> Vec<usize> {
    let count_of = |want: Bucket| {
        index_sum_scan(
            buckets.len(),
            |i| usize::from(buckets[i] == want),
            parallel::Mode::ExclusiveFwd,
        )
    };
    let (lo_scan, n_lo) = count_of(Bucket::Lo);
    let (mid_scan, n_mid) = count_of(Bucket::Mid);
    let (hi_scan, _) = count_of(Bucket::Hi);
    parallel::tabulate_by(buckets.len(), |i| match buckets[i] {
        Bucket::Lo => lo_scan[i],
        Bucket::Mid => n_lo + mid_scan[i],
        Bucket::Hi => n_lo + n_mid + hi_scan[i],
    })
}

/// The `pack` operation (§2.5, Figure 11): keep only the elements whose
/// flag is `true`, preserving order, in a vector of exactly that length.
///
/// Implemented with an `enumerate` and a permute into the shorter
/// vector, as the paper's load balancing does.
///
/// # Panics
/// If lengths differ. See [`try_pack`] for the checked form.
pub fn pack<T: ScanElem>(a: &[T], keep: &[bool]) -> Vec<T> {
    assert_eq!(a.len(), keep.len(), "pack length mismatch");
    // Fused enumerate-with-total: one pass, no 0/1 vector.
    let (dest, total) = index_sum_scan(
        keep.len(),
        |i| usize::from(keep[i]),
        parallel::Mode::ExclusiveFwd,
    );
    let mut out: Vec<T> = Vec::with_capacity(total);
    // SAFETY: `enumerate` assigns the kept elements the distinct indices
    // 0..total in order, so every slot is written exactly once.
    unsafe {
        let p = out.as_mut_ptr();
        for i in 0..a.len() {
            if keep[i] {
                p.add(dest[i]).write(a[i]);
            }
        }
        out.set_len(total);
    }
    out
}

/// Checked [`pack`]: `Err(Error::LengthMismatch)` instead of panicking.
pub fn try_pack<T: ScanElem>(a: &[T], keep: &[bool]) -> Result<Vec<T>> {
    crate::deadline::checkpoint()?;
    if a.len() != keep.len() {
        return Err(Error::LengthMismatch {
            expected: a.len(),
            actual: keep.len(),
        });
    }
    Ok(pack(a, keep))
}

/// Indices (into the original vector) of the kept elements, in order.
pub fn pack_indices(keep: &[bool]) -> Vec<usize> {
    let idx: Vec<usize> = (0..keep.len()).collect();
    pack(&idx, keep)
}

/// Merge two vectors under the direction of a *merge-flag vector*
/// (§2.5.1): `flags.len() == a.len() + b.len()`; position `i` of the
/// result takes the next unused element of `a` when `flags[i]` is
/// `false` and of `b` when it is `true`.
///
/// This is the inverse view of the halving merge's flag output: the
/// flag vector "both uniquely specifies how the elements should be
/// merged and specifies in which position each element belongs".
///
/// # Panics
/// If `flags.len() != a.len() + b.len()` or the flag counts do not
/// match the vector lengths. See [`try_flag_merge`] for the checked
/// form.
pub fn flag_merge<T: ScanElem>(flags: &[bool], a: &[T], b: &[T]) -> Vec<T> {
    flag_merge_impl(flags, a, b).unwrap_or_else(|e| match e {
        Error::CountMismatch { .. } => panic!("flag_merge: true-count must equal b.len()"),
        e => panic!("flag_merge length mismatch: {e}"),
    })
}

/// Checked [`flag_merge`]: `Err(Error::LengthMismatch)` when
/// `flags.len() != a.len() + b.len()` and `Err(Error::CountMismatch)`
/// when the true-count of `flags` is not `b.len()`.
pub fn try_flag_merge<T: ScanElem>(flags: &[bool], a: &[T], b: &[T]) -> Result<Vec<T>> {
    crate::deadline::checkpoint()?;
    flag_merge_impl(flags, a, b)
}

fn flag_merge_impl<T: ScanElem>(flags: &[bool], a: &[T], b: &[T]) -> Result<Vec<T>> {
    if flags.len() != a.len() + b.len() {
        return Err(Error::LengthMismatch {
            expected: a.len() + b.len(),
            actual: flags.len(),
        });
    }
    let n_true = count(flags);
    if n_true != b.len() {
        return Err(Error::CountMismatch {
            expected: b.len(),
            actual: n_true,
        });
    }
    let a_pos = index_sum_scan(
        flags.len(),
        |i| usize::from(!flags[i]),
        parallel::Mode::ExclusiveFwd,
    )
    .0;
    let b_pos = enumerate(flags);
    Ok(parallel::tabulate_by(flags.len(), |i| {
        if flags[i] {
            b[b_pos[i]]
        } else {
            a[a_pos[i]]
        }
    }))
}

/// Elementwise select: `if flags[i] { t[i] } else { e[i] }` (the paper's
/// `if ... then ... else` vector form, Figure 3).
///
/// # Panics
/// If lengths differ. See [`try_select`] for the checked form.
pub fn select<T: ScanElem>(flags: &[bool], t: &[T], e: &[T]) -> Vec<T> {
    select_impl(flags, t, e).unwrap_or_else(|e| panic!("select length mismatch: {e}"))
}

/// Checked [`select`]: `Err(Error::LengthMismatch)` instead of
/// panicking. Honors the ambient [`crate::deadline`] scope.
pub fn try_select<T: ScanElem>(flags: &[bool], t: &[T], e: &[T]) -> Result<Vec<T>> {
    crate::deadline::checkpoint()?;
    select_impl(flags, t, e)
}

fn select_impl<T: ScanElem>(flags: &[bool], t: &[T], e: &[T]) -> Result<Vec<T>> {
    if flags.len() != t.len() {
        return Err(Error::LengthMismatch {
            expected: flags.len(),
            actual: t.len(),
        });
    }
    if flags.len() != e.len() {
        return Err(Error::LengthMismatch {
            expected: flags.len(),
            actual: e.len(),
        });
    }
    Ok((0..flags.len())
        .map(|i| if flags[i] { t[i] } else { e[i] })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Max, Sum};

    #[test]
    fn figure1_enumerate() {
        let f = [true, false, false, true, false, true, true, false];
        assert_eq!(enumerate(&f), vec![0, 1, 1, 1, 2, 2, 3, 4]);
    }

    #[test]
    fn figure1_copy() {
        let a = [5u32, 1, 3, 4, 3, 9, 2, 6];
        assert_eq!(copy_first(&a), vec![5; 8]);
    }

    #[test]
    fn figure1_plus_distribute() {
        let b = [1u32, 1, 2, 1, 1, 2, 1, 1];
        assert_eq!(distribute_op::<Sum, _>(&b), vec![10; 8]);
    }

    #[test]
    fn max_distribute() {
        let b = [1u32, 7, 2, 5];
        assert_eq!(distribute_op::<Max, _>(&b), vec![7; 4]);
    }

    #[test]
    fn paper_permute_example() {
        let a = [10u32, 11, 12, 13, 14, 15, 16, 17];
        let i = [2, 5, 4, 3, 1, 6, 0, 7];
        assert_eq!(permute(&a, &i), vec![16, 14, 10, 13, 12, 11, 15, 17]);
    }

    #[test]
    fn permute_rejects_bad_indices() {
        assert_eq!(
            try_permute(&[1u32, 2], &[0, 0]),
            Err(Error::DuplicateIndex { index: 0 })
        );
        assert_eq!(
            try_permute(&[1u32, 2], &[0, 5]),
            Err(Error::IndexOutOfBounds { index: 5, len: 2 })
        );
        assert_eq!(
            try_permute(&[1u32, 2], &[0]),
            Err(Error::LengthMismatch {
                expected: 2,
                actual: 1
            })
        );
    }

    #[test]
    fn figure3_split() {
        let a = [5u32, 7, 3, 1, 4, 2, 7, 2];
        let f = [true, true, true, true, false, false, true, false];
        // I-down = [0 0 0 0 0 1 2 2], I-up = [3 4 5 6 6 6 7 7] (as n-1-back)
        assert_eq!(split_index(&f), vec![3, 4, 5, 6, 0, 1, 7, 2]);
        let (s, nf) = split_count(&a, &f);
        assert_eq!(s, vec![4, 2, 2, 5, 7, 3, 1, 7]);
        assert_eq!(nf, 3);
    }

    #[test]
    fn split_all_false_and_all_true() {
        let a = [1u32, 2, 3];
        assert_eq!(split(&a, &[false; 3]), vec![1, 2, 3]);
        assert_eq!(split(&a, &[true; 3]), vec![1, 2, 3]);
        let e: [u32; 0] = [];
        assert!(split(&e, &[]).is_empty());
    }

    #[test]
    fn split3_groups() {
        use Bucket::*;
        let a = [9u32, 1, 5, 5, 2, 8, 5];
        let b = [Hi, Lo, Mid, Mid, Lo, Hi, Mid];
        let (s, n_lo, n_mid) = split3(&a, &b);
        assert_eq!(s, vec![1, 2, 5, 5, 5, 9, 8]);
        assert_eq!((n_lo, n_mid), (2, 3));
    }

    #[test]
    fn pack_figure11_style() {
        // Figure 11: F = [T F F F T T F T T T T T]
        let f = [
            true, false, false, false, true, true, false, true, true, true, true, true,
        ];
        let a: Vec<u32> = (0..12).collect();
        assert_eq!(pack(&a, &f), vec![0, 4, 5, 7, 8, 9, 10, 11]);
        assert_eq!(pack_indices(&f), vec![0, 4, 5, 7, 8, 9, 10, 11]);
    }

    #[test]
    fn pack_none_and_all() {
        let a = [1u32, 2, 3];
        assert!(pack(&a, &[false; 3]).is_empty());
        assert_eq!(pack(&a, &[true; 3]), vec![1, 2, 3]);
    }

    #[test]
    fn flag_merge_basic() {
        // halving-merge(A', B') = [F T T F F T] -> [1 3 9 10 15 23]
        let flags = [false, true, true, false, false, true];
        let a = [1u32, 10, 15];
        let b = [3u32, 9, 23];
        assert_eq!(flag_merge(&flags, &a, &b), vec![1, 3, 9, 10, 15, 23]);
    }

    #[test]
    #[should_panic(expected = "true-count")]
    fn flag_merge_bad_counts() {
        flag_merge(&[true, true], &[1u32], &[2u32]);
    }

    #[test]
    fn select_vectors() {
        let f = [true, false, true];
        assert_eq!(select(&f, &[1u32, 2, 3], &[9, 8, 7]), vec![1, 8, 3]);
    }

    #[test]
    fn gather_is_permute_inverse() {
        let a = [10u32, 11, 12, 13];
        let idx = [2, 0, 3, 1];
        let p = permute(&a, &idx);
        assert_eq!(gather(&p, &idx), a.to_vec());
    }

    #[test]
    fn count_and_back_enumerate() {
        let f = [true, false, true, true];
        assert_eq!(count(&f), 3);
        assert_eq!(back_enumerate(&f), vec![2, 2, 1, 0]);
    }

    #[test]
    fn try_variants_accept_valid_inputs() {
        let a = [5u32, 1, 3];
        assert_eq!(try_copy_first(&a), Ok(vec![5, 5, 5]));
        assert_eq!(try_gather(&a, &[2, 0]), Ok(vec![3, 5]));
        let f = [true, false, false];
        assert_eq!(try_split(&a, &f), Ok(split(&a, &f)));
        assert_eq!(try_pack(&a, &f), Ok(vec![5]));
        assert_eq!(try_select(&f, &a, &[9, 9, 9]), Ok(vec![5, 9, 9]));
        use Bucket::*;
        let b = [Hi, Lo, Mid];
        assert_eq!(try_split3(&a, &b), Ok(split3(&a, &b)));
        let flags = [false, true, false];
        assert_eq!(
            try_flag_merge(&flags, &[1u32, 3], &[2u32]),
            Ok(vec![1, 2, 3])
        );
    }

    #[test]
    fn try_variants_reject_bad_inputs() {
        assert_eq!(
            try_copy_first::<u32>(&[]),
            Err(Error::EmptyInput { op: "copy" })
        );
        assert_eq!(
            try_gather(&[1u32], &[3]),
            Err(Error::IndexOutOfBounds { index: 3, len: 1 })
        );
        assert_eq!(
            try_split(&[1u32], &[true, false]),
            Err(Error::LengthMismatch {
                expected: 1,
                actual: 2
            })
        );
        assert_eq!(
            try_split3(&[1u32], &[]),
            Err(Error::LengthMismatch {
                expected: 1,
                actual: 0
            })
        );
        assert_eq!(
            try_pack(&[1u32, 2], &[true]),
            Err(Error::LengthMismatch {
                expected: 2,
                actual: 1
            })
        );
        assert_eq!(
            try_select(&[true], &[1u32], &[]),
            Err(Error::LengthMismatch {
                expected: 1,
                actual: 0
            })
        );
        assert_eq!(
            try_flag_merge(&[true, true], &[1u32], &[2u32]),
            Err(Error::CountMismatch {
                expected: 1,
                actual: 2
            })
        );
        assert_eq!(
            try_flag_merge(&[true], &[1u32], &[2u32]),
            Err(Error::LengthMismatch {
                expected: 2,
                actual: 1
            })
        );
    }

    #[test]
    #[should_panic(expected = "copy of an empty vector")]
    fn copy_first_empty_panics_with_typed_message() {
        copy_first::<u32>(&[]);
    }
}
