//! The scan primitives: exclusive/inclusive, forward/backward.
//!
//! The paper's scan (§1) is the *exclusive forward* scan:
//! `scan([a0..a(n-1)]) = [i, a0, a0⊕a1, ..., a0⊕...⊕a(n-2)]`.
//! Backward scans (§2.1) run from the last element to the first and are
//! "implemented by simply reading the vector into the processors in
//! reverse order" (§3.4).
//!
//! All functions here dispatch to the blocked parallel engine in
//! [`crate::parallel`] for large inputs.

use crate::element::ScanElem;
use crate::error::Result;
use crate::op::ScanOp;
use crate::parallel;

/// Exclusive forward scan (the paper's scan).
///
/// ```
/// use scan_core::{scan, op::{Sum, Max}};
/// let a = [2u32, 1, 2, 3, 5, 8, 13, 21];
/// assert_eq!(scan::<Sum, _>(&a), vec![0, 2, 3, 5, 8, 13, 21, 34]);
/// assert_eq!(scan::<Max, _>(&[3u32, 1, 4, 1, 5]), vec![0, 3, 3, 4, 4]);
/// ```
pub fn scan<O: ScanOp<T>, T: ScanElem>(a: &[T]) -> Vec<T> {
    typed_scan::<O, T>(a, parallel::Mode::ExclusiveFwd).0
}

/// Exclusive forward scan that also returns the total reduction
/// (`a0 ⊕ ... ⊕ a(n-1)`), which an exclusive scan otherwise drops.
///
/// Equivalent to the pair (`scan`, `reduce`), computed in one pass over
/// the input: the total is the final accumulator of the engine's block
/// offset scan (or of the sequential loop), so no re-combine or second
/// traversal happens.
pub fn scan_with_total<O: ScanOp<T>, T: ScanElem>(a: &[T]) -> (Vec<T>, T) {
    typed_scan::<O, T>(a, parallel::Mode::ExclusiveFwd)
}

/// Inclusive forward scan: element `i` receives `a0 ⊕ ... ⊕ ai`.
pub fn inclusive_scan<O: ScanOp<T>, T: ScanElem>(a: &[T]) -> Vec<T> {
    typed_scan::<O, T>(a, parallel::Mode::InclusiveFwd).0
}

/// Exclusive backward scan: element `i` receives
/// `a(i+1) ⊕ ... ⊕ a(n-1)` (identity at the last position), combined in
/// descending index order per §3.4's "reading the vector in reverse
/// order". The engine walks the blocks right-to-left; no reversed copy
/// of the input is allocated.
///
/// ```
/// use scan_core::{scan_backward, op::Sum};
/// assert_eq!(scan_backward::<Sum, _>(&[1u32, 2, 3, 4]), vec![9, 7, 4, 0]);
/// ```
pub fn scan_backward<O: ScanOp<T>, T: ScanElem>(a: &[T]) -> Vec<T> {
    typed_scan::<O, T>(a, parallel::Mode::ExclusiveBwd).0
}

/// Inclusive backward scan: element `i` receives `ai ⊕ ... ⊕ a(n-1)`.
pub fn inclusive_scan_backward<O: ScanOp<T>, T: ScanElem>(a: &[T]) -> Vec<T> {
    typed_scan::<O, T>(a, parallel::Mode::InclusiveBwd).0
}

/// Reduction over the whole vector with operator `O`.
pub fn reduce<O: ScanOp<T>, T: ScanElem>(a: &[T]) -> T {
    parallel::reduce_engine(
        parallel::default_schedule(),
        a.len(),
        |i| a[i],
        O::identity(),
        O::combine,
        O::simd_tile(),
    )
}

/// Fallible [`scan`]: identical result on success, but honors the
/// ambient [`crate::deadline`] scope and contains operator panics,
/// reporting failures as [`crate::Error::Exec`]. Use this (with
/// [`crate::deadline::with_deadline`]) when a scan must not run
/// longer than a budget.
pub fn try_scan<O: ScanOp<T>, T: ScanElem>(a: &[T]) -> Result<Vec<T>> {
    Ok(try_typed_scan::<O, T>(a, parallel::Mode::ExclusiveFwd)?.0)
}

/// Fallible [`scan_with_total`]; see [`try_scan`].
pub fn try_scan_with_total<O: ScanOp<T>, T: ScanElem>(a: &[T]) -> Result<(Vec<T>, T)> {
    Ok(try_typed_scan::<O, T>(a, parallel::Mode::ExclusiveFwd)?)
}

/// Fallible [`inclusive_scan`]; see [`try_scan`].
pub fn try_inclusive_scan<O: ScanOp<T>, T: ScanElem>(a: &[T]) -> Result<Vec<T>> {
    Ok(try_typed_scan::<O, T>(a, parallel::Mode::InclusiveFwd)?.0)
}

/// Fallible [`scan_backward`]; see [`try_scan`].
pub fn try_scan_backward<O: ScanOp<T>, T: ScanElem>(a: &[T]) -> Result<Vec<T>> {
    Ok(try_typed_scan::<O, T>(a, parallel::Mode::ExclusiveBwd)?.0)
}

/// Fallible [`inclusive_scan_backward`]; see [`try_scan`].
pub fn try_inclusive_scan_backward<O: ScanOp<T>, T: ScanElem>(a: &[T]) -> Result<Vec<T>> {
    Ok(try_typed_scan::<O, T>(a, parallel::Mode::InclusiveBwd)?.0)
}

/// Fallible [`reduce`]; see [`try_scan`].
pub fn try_reduce<O: ScanOp<T>, T: ScanElem>(a: &[T]) -> Result<T> {
    let d = crate::deadline::current();
    Ok(parallel::try_reduce_engine(
        parallel::default_schedule(),
        a.len(),
        |i| a[i],
        O::identity(),
        O::combine,
        O::simd_tile(),
        d.as_ref(),
    )?)
}

/// The one funnel for typed whole-slice scans: every public scan above
/// lowers to this call, which is where the operator's registered SIMD
/// tile (if the CPU has one) enters the engine. Closure-based
/// `parallel::*_by` entry points stay scalar by design — the engine
/// cannot prove an arbitrary closure exact, but `O::simd_tile` is
/// registered only for operators whose reassociation is bit-exact.
fn typed_scan<O: ScanOp<T>, T: ScanElem>(a: &[T], mode: parallel::Mode) -> (Vec<T>, T) {
    parallel::engine(
        parallel::default_schedule(),
        a.len(),
        |i| a[i],
        O::identity(),
        O::combine,
        |_, s| s,
        mode,
        O::simd_tile(),
    )
}

/// Fallible [`typed_scan`], under the ambient deadline scope.
fn try_typed_scan<O: ScanOp<T>, T: ScanElem>(
    a: &[T],
    mode: parallel::Mode,
) -> core::result::Result<(Vec<T>, T), crate::error::ExecError> {
    let d = crate::deadline::current();
    parallel::try_engine(
        parallel::default_schedule(),
        a.len(),
        |i| a[i],
        O::identity(),
        O::combine,
        |_, s| s,
        mode,
        O::simd_tile(),
        d.as_ref(),
    )
}

/// In-place exclusive forward scan (no allocation); sequential.
/// Useful inside per-processor loops of blocked algorithms.
pub fn scan_inplace<O: ScanOp<T>, T: ScanElem>(a: &mut [T]) {
    let mut acc = O::identity();
    for x in a.iter_mut() {
        let next = O::combine(acc, *x);
        *x = acc;
        acc = next;
    }
}

/// In-place inclusive forward scan (no allocation); sequential.
pub fn inclusive_scan_inplace<O: ScanOp<T>, T: ScanElem>(a: &mut [T]) {
    let mut acc = O::identity();
    for x in a.iter_mut() {
        acc = O::combine(acc, *x);
        *x = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{And, Max, Min, Or, Sum};

    #[test]
    fn paper_plus_scan_example() {
        // §2.1: A = [2 1 2 3 5 8 13 21]
        let a = [2u32, 1, 2, 3, 5, 8, 13, 21];
        assert_eq!(scan::<Sum, _>(&a), vec![0, 2, 3, 5, 8, 13, 21, 34]);
    }

    #[test]
    fn with_total() {
        let a = [1u32, 2, 3];
        let (s, t) = scan_with_total::<Sum, _>(&a);
        assert_eq!(s, vec![0, 1, 3]);
        assert_eq!(t, 6);
        let (s, t) = scan_with_total::<Sum, u32>(&[]);
        assert!(s.is_empty());
        assert_eq!(t, 0);
    }

    #[test]
    fn inclusive_forward() {
        let a = [1u32, 2, 3, 4];
        assert_eq!(inclusive_scan::<Sum, _>(&a), vec![1, 3, 6, 10]);
        assert_eq!(
            inclusive_scan::<Max, _>(&[2u32, 9, 4, 11]),
            vec![2, 9, 9, 11]
        );
    }

    #[test]
    fn backward_scans() {
        let a = [1u32, 2, 3, 4];
        assert_eq!(scan_backward::<Sum, _>(&a), vec![9, 7, 4, 0]);
        assert_eq!(inclusive_scan_backward::<Sum, _>(&a), vec![10, 9, 7, 4]);
        assert_eq!(scan_backward::<Max, _>(&[5u32, 1, 7, 2]), vec![7, 7, 2, 0]);
    }

    #[test]
    fn min_or_and() {
        let a = [5u32, 3, 8, 1];
        assert_eq!(scan::<Min, _>(&a), vec![u32::MAX, 5, 3, 3]);
        let b = [false, true, false, false];
        assert_eq!(scan::<Or, _>(&b), vec![false, false, true, true]);
        let c = [true, true, false, true];
        assert_eq!(scan::<And, _>(&c), vec![true, true, true, false]);
    }

    #[test]
    fn reduce_ops() {
        let a = [3u32, 1, 4, 1, 5];
        assert_eq!(reduce::<Sum, _>(&a), 14);
        assert_eq!(reduce::<Max, _>(&a), 5);
        assert_eq!(reduce::<Min, _>(&a), 1);
    }

    #[test]
    fn inplace_variants_match_allocating() {
        let a = [3u32, 1, 4, 1, 5, 9];
        let mut b = a;
        scan_inplace::<Sum, _>(&mut b);
        assert_eq!(b.to_vec(), scan::<Sum, _>(&a));
        let mut c = a;
        inclusive_scan_inplace::<Max, _>(&mut c);
        assert_eq!(c.to_vec(), inclusive_scan::<Max, _>(&a));
        let mut empty: [u32; 0] = [];
        scan_inplace::<Sum, _>(&mut empty);
    }

    #[test]
    fn try_variants_match_on_success_and_report_expiry() {
        use crate::deadline::{self, ScanDeadline};
        use crate::error::{Error, ExecError};
        let a: Vec<u64> = (0..(crate::parallel::PAR_THRESHOLD as u64 + 3)).collect();
        assert_eq!(try_scan::<Sum, _>(&a).unwrap(), scan::<Sum, _>(&a));
        assert_eq!(
            try_scan_with_total::<Sum, _>(&a).unwrap(),
            scan_with_total::<Sum, _>(&a)
        );
        assert_eq!(
            try_inclusive_scan::<Max, _>(&a).unwrap(),
            inclusive_scan::<Max, _>(&a)
        );
        assert_eq!(
            try_scan_backward::<Sum, _>(&a).unwrap(),
            scan_backward::<Sum, _>(&a)
        );
        assert_eq!(
            try_inclusive_scan_backward::<Sum, _>(&a).unwrap(),
            inclusive_scan_backward::<Sum, _>(&a)
        );
        assert_eq!(try_reduce::<Sum, _>(&a).unwrap(), reduce::<Sum, _>(&a));

        let d = ScanDeadline::at(std::time::Instant::now());
        let got = deadline::with_deadline(&d, || try_scan::<Sum, _>(&a));
        assert_eq!(got, Err(Error::Exec(ExecError::DeadlineExceeded)));
    }

    #[test]
    fn signed_and_float() {
        let a = [-3i64, 5, -7, 2];
        assert_eq!(scan::<Sum, _>(&a), vec![0, -3, 2, -5]);
        assert_eq!(scan::<Max, _>(&a), vec![i64::MIN, -3, 5, 5]);
        let f = [1.5f64, -2.0, 0.25];
        assert_eq!(inclusive_scan::<Sum, _>(&f), vec![1.5, -0.5, -0.25]);
        assert_eq!(scan::<Max, _>(&f)[0], f64::NEG_INFINITY);
    }
}
