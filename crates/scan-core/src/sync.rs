//! The crate's single swap point for synchronization primitives.
//!
//! Every concurrent module in `scan-core` (`pool`, `deadline`,
//! `parallel`, `multi_split`, `lookback`) imports its sync types from
//! here instead of `std::sync` directly. In a normal build the
//! re-exports *are* the `std` types — zero cost, zero behavior change.
//! Building with `RUSTFLAGS="--cfg loom"` swaps in the [`loom`]
//! model-checker equivalents, which turn every atomic access, lock
//! acquisition, and condvar wait into a scheduling decision the
//! interleaving search can permute. `tests/loom_pool.rs` runs the
//! pool's concurrency scenarios under that search, and
//! `tests/loom_lookback.rs` the lookback descriptor table's
//! aggregate→prefix publication handshake.
//!
//! Two deliberate exceptions stay on `std` even under loom:
//!
//! - `std::thread::scope` in [`crate::parallel`]'s `Spawn` arm — the
//!   loom suite never exercises that schedule, and scoped spawns have
//!   no loom equivalent;
//! - `std::time::Instant` in [`crate::deadline`] — wall-clock expiry
//!   is untestable under a model checker; loom scenarios use
//!   [`crate::deadline::ScanDeadline::manual`] tokens, whose state is
//!   a shimmed atomic and therefore fully explored.

#[cfg(loom)]
pub use loom::sync::{Arc, Condvar, Mutex, MutexGuard};
#[cfg(loom)]
pub use loom::thread;

/// Atomic types behind the swap point (`std::sync::atomic` or
/// `loom::sync::atomic`).
#[cfg(loom)]
pub mod atomic {
    pub use loom::sync::atomic::{
        AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
}

#[cfg(not(loom))]
pub use std::sync::{Arc, Condvar, Mutex, MutexGuard};
#[cfg(not(loom))]
pub use std::thread;

/// Atomic types behind the swap point (`std::sync::atomic` or
/// `loom::sync::atomic`).
#[cfg(not(loom))]
pub mod atomic {
    pub use std::sync::atomic::{
        AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
}

use self::atomic::{AtomicUsize, Ordering};

/// A process-wide configuration cell: a relaxed atomic word for
/// settings written by test/bench knobs and read by the engines
/// (parallel threshold override, default schedule, cached ISA).
///
/// Publication is `Relaxed` on purpose — a config value carries no
/// happens-before obligation to other memory; readers only need *some*
/// recent value, and every consumer re-reads per call. Keeping the
/// cell here (rather than ad-hoc statics in each engine module) keeps
/// the workspace atomics-confinement invariant: all atomics live
/// behind the audited sync modules, where the loom swap reaches them.
pub struct ConfigCell(AtomicUsize);

impl ConfigCell {
    /// A cell holding `v`.
    pub const fn new(v: usize) -> Self {
        ConfigCell(AtomicUsize::new(v))
    }

    /// Current value.
    pub fn get(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }

    /// Replace the value.
    pub fn set(&self, v: usize) {
        self.0.store(v, Ordering::Relaxed)
    }
}

/// A shared running-minimum cell, used by parallel kernels to latch
/// the first out-of-range index any block observes (`usize::MAX` =
/// none). `Relaxed` suffices: the blocks' writes are joined before the
/// value is read, so the join edge carries the ordering.
pub struct MinCell(AtomicUsize);

impl MinCell {
    /// A cell holding `v`.
    pub const fn new(v: usize) -> Self {
        MinCell(AtomicUsize::new(v))
    }

    /// Lower the cell to `min(current, v)`.
    pub fn lower(&self, v: usize) {
        self.0.fetch_min(v, Ordering::Relaxed);
    }

    /// Current minimum.
    pub fn get(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }
}
