//! The crate's single swap point for synchronization primitives.
//!
//! Every concurrent module in `scan-core` (`pool`, `deadline`,
//! `parallel`, `multi_split`, `lookback`) imports its sync types from
//! here instead of `std::sync` directly. In a normal build the
//! re-exports *are* the `std` types — zero cost, zero behavior change.
//! Building with `RUSTFLAGS="--cfg loom"` swaps in the [`loom`]
//! model-checker equivalents, which turn every atomic access, lock
//! acquisition, and condvar wait into a scheduling decision the
//! interleaving search can permute. `tests/loom_pool.rs` runs the
//! pool's concurrency scenarios under that search, and
//! `tests/loom_lookback.rs` the lookback descriptor table's
//! aggregate→prefix publication handshake.
//!
//! Two deliberate exceptions stay on `std` even under loom:
//!
//! - `std::thread::scope` in [`crate::parallel`]'s `Spawn` arm — the
//!   loom suite never exercises that schedule, and scoped spawns have
//!   no loom equivalent;
//! - `std::time::Instant` in [`crate::deadline`] — wall-clock expiry
//!   is untestable under a model checker; loom scenarios use
//!   [`crate::deadline::ScanDeadline::manual`] tokens, whose state is
//!   a shimmed atomic and therefore fully explored.

#[cfg(loom)]
pub use loom::sync::{Arc, Condvar, Mutex, MutexGuard};
#[cfg(loom)]
pub use loom::thread;

/// Atomic types behind the swap point (`std::sync::atomic` or
/// `loom::sync::atomic`).
#[cfg(loom)]
pub mod atomic {
    pub use loom::sync::atomic::{
        AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
}

#[cfg(not(loom))]
pub use std::sync::{Arc, Condvar, Mutex, MutexGuard};
#[cfg(not(loom))]
pub use std::thread;

/// Atomic types behind the swap point (`std::sync::atomic` or
/// `loom::sync::atomic`).
#[cfg(not(loom))]
pub mod atomic {
    pub use std::sync::atomic::{
        AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
}
