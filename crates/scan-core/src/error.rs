//! Error type for the checked (`try_*`) vector operations.

use core::fmt;

/// Execution-layer failures: a submission that could not run to
/// completion, as opposed to a precondition violation on its inputs.
///
/// These are produced by the fallible execution paths — the pool's
/// `try_run`, the `try_*` scan kernels, and anything routed through a
/// [`crate::deadline::ScanDeadline`] — and are wrapped into
/// [`Error::Exec`] at the public API boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// One or more worker tasks panicked. The panic was contained on
    /// the worker (the pool respawns it); the submission reports this
    /// typed error instead of replaying the payload.
    WorkerLost {
        /// Number of task panics observed within the submission.
        panics: u32,
    },
    /// The submission's deadline elapsed before it finished.
    DeadlineExceeded,
    /// The submission was explicitly cancelled via
    /// [`crate::deadline::ScanDeadline::cancel`].
    Cancelled,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::WorkerLost { panics } => {
                write!(f, "worker lost: {panics} task panic(s) contained")
            }
            ExecError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ExecError::Cancelled => write!(f, "cancelled"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Errors reported by checked vector operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Two vectors that must have equal length did not.
    LengthMismatch {
        /// Length of the first operand.
        expected: usize,
        /// Length of the offending operand.
        actual: usize,
    },
    /// A permute index vector contained the same destination twice.
    ///
    /// The paper (§2.1) requires all indices of a `permute` to be unique;
    /// on an EREW P-RAM a duplicate destination would be a concurrent
    /// write.
    DuplicateIndex {
        /// The destination index written more than once.
        index: usize,
    },
    /// An index pointed outside the destination vector.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// Length of the destination vector.
        len: usize,
    },
    /// A value did not fit in the bit width available for a simulated
    /// composite scan (see [`crate::simulate`]).
    WidthOverflow {
        /// Bits required.
        required: u32,
        /// Bits available.
        available: u32,
    },
    /// An operation that needs at least one element received none
    /// (e.g. `copy_first` of an empty vector).
    EmptyInput {
        /// The operation that was given an empty vector.
        op: &'static str,
    },
    /// A flag vector's true-count disagreed with the length it must
    /// describe (e.g. `flag_merge`'s true flags vs. `b.len()`).
    CountMismatch {
        /// The count the flags must produce.
        expected: usize,
        /// The count they actually produced.
        actual: usize,
    },
    /// A persisted carry checkpoint failed its digest check when a
    /// stream tried to resume from it (see [`crate::stream`]): the
    /// stored carry or chunk index was corrupted between save and
    /// restore, so resuming would silently mis-seed every element
    /// after the restart point.
    CheckpointCorrupt {
        /// Chunk index the corrupt checkpoint claimed.
        chunk: u64,
    },
    /// Resuming a stream required repositioning its chunk source at a
    /// mid-stream chunk, but the source does not support seeking
    /// (see [`crate::stream::ChunkSource::seek`]).
    SeekUnsupported {
        /// Chunk index the resume needed to seek to.
        chunk: u64,
    },
    /// The execution layer failed (worker panic, deadline, cancel).
    Exec(ExecError),
}

impl From<ExecError> for Error {
    fn from(e: ExecError) -> Self {
        Error::Exec(e)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            Error::DuplicateIndex { index } => {
                write!(f, "duplicate permute destination index {index}")
            }
            Error::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for vector of length {len}")
            }
            Error::WidthOverflow {
                required,
                available,
            } => {
                write!(
                    f,
                    "composite scan needs {required} bits but only {available} are available"
                )
            }
            Error::EmptyInput { op } => {
                write!(f, "{op} of an empty vector")
            }
            Error::CountMismatch { expected, actual } => {
                write!(f, "flag count mismatch: expected {expected}, got {actual}")
            }
            Error::CheckpointCorrupt { chunk } => {
                write!(f, "carry checkpoint for chunk {chunk} failed its digest check")
            }
            Error::SeekUnsupported { chunk } => {
                write!(f, "chunk source cannot seek to chunk {chunk} for resume")
            }
            Error::Exec(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias using [`Error`].
pub type Result<T> = core::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::LengthMismatch {
            expected: 4,
            actual: 3,
        };
        assert_eq!(e.to_string(), "length mismatch: expected 4, got 3");
        let e = Error::DuplicateIndex { index: 7 };
        assert_eq!(e.to_string(), "duplicate permute destination index 7");
        let e = Error::IndexOutOfBounds { index: 9, len: 4 };
        assert_eq!(e.to_string(), "index 9 out of bounds for vector of length 4");
        let e = Error::WidthOverflow {
            required: 70,
            available: 64,
        };
        assert!(e.to_string().contains("70 bits"));
        let e = Error::EmptyInput { op: "copy" };
        assert_eq!(e.to_string(), "copy of an empty vector");
        let e = Error::CountMismatch {
            expected: 3,
            actual: 2,
        };
        assert_eq!(e.to_string(), "flag count mismatch: expected 3, got 2");
        let e = Error::CheckpointCorrupt { chunk: 12 };
        assert_eq!(
            e.to_string(),
            "carry checkpoint for chunk 12 failed its digest check"
        );
        let e = Error::SeekUnsupported { chunk: 5 };
        assert_eq!(e.to_string(), "chunk source cannot seek to chunk 5 for resume");
        let e = Error::Exec(ExecError::DeadlineExceeded);
        assert_eq!(e.to_string(), "execution failed: deadline exceeded");
        let e = Error::Exec(ExecError::WorkerLost { panics: 2 });
        assert!(e.to_string().contains("2 task panic"));
        let e = Error::Exec(ExecError::Cancelled);
        assert_eq!(e.to_string(), "execution failed: cancelled");
    }

    #[test]
    fn exec_error_converts_into_error() {
        let e: Error = ExecError::Cancelled.into();
        assert_eq!(e, Error::Exec(ExecError::Cancelled));
    }
}
