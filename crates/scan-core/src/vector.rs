//! The paper's vector notation (§2.1) as an embedded DSL.
//!
//! Section 2.1 writes algorithms over whole vectors — `C ← A + B`,
//! `+-scan(A)`, `permute(A, I)`, `split(A, Flags)` — with one
//! processor per element. [`V`] gives that notation directly in Rust:
//! elementwise arithmetic via operator overloading, scans and the
//! derived operations as chainable methods.
//!
//! ```
//! use scan_core::vector::V;
//! use scan_core::op::Sum;
//!
//! // §2.1:  A = [5 1 3 4 3 9 2 6], B = [2 5 3 8 1 3 6 2]
//! let a = V::from(vec![5u32, 1, 3, 4, 3, 9, 2, 6]);
//! let b = V::from(vec![2u32, 5, 3, 8, 1, 3, 6, 2]);
//! let c = &a + &b;
//! assert_eq!(c.as_slice(), &[7, 6, 6, 12, 4, 12, 8, 8]);
//!
//! // +-scan(A) as a method:
//! let s = V::from(vec![2u32, 1, 2, 3, 5, 8, 13, 21]).scan::<Sum>();
//! assert_eq!(s.as_slice(), &[0, 2, 3, 5, 8, 13, 21, 34]);
//! ```

use core::ops::{Add, BitAnd, BitOr, BitXor, Index, Mul, Sub};

use crate::element::ScanElem;
use crate::op::ScanOp;
use crate::ops;
use crate::parallel;
use crate::scan as scan_fns;
use crate::segmented::{self, Segments};

/// A data-parallel vector: one conceptual processor per element.
#[derive(Debug, Clone, PartialEq)]
pub struct V<T> {
    data: Vec<T>,
}

impl<T: ScanElem> V<T> {
    /// Wrap a `Vec`.
    pub fn new(data: Vec<T>) -> Self {
        V { data }
    }

    /// A constant vector of length `n`.
    pub fn constant(n: usize, v: T) -> Self {
        V { data: vec![v; n] }
    }

    /// Length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the elements.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Unwrap into the underlying `Vec`.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Elementwise map.
    pub fn map<U: ScanElem>(&self, f: impl Fn(T) -> U + Sync) -> V<U> {
        V::new(parallel::map_by(&self.data, f))
    }

    /// Elementwise combination with another vector.
    ///
    /// # Panics
    /// On length mismatch.
    pub fn zip_with<U: ScanElem, R: ScanElem>(
        &self,
        other: &V<U>,
        f: impl Fn(T, U) -> R + Sync,
    ) -> V<R> {
        V::new(parallel::zip_by(&self.data, &other.data, f))
    }

    /// The paper's exclusive scan.
    pub fn scan<O: ScanOp<T>>(&self) -> V<T> {
        V::new(scan_fns::scan::<O, T>(&self.data))
    }

    /// Inclusive scan.
    pub fn inclusive_scan<O: ScanOp<T>>(&self) -> V<T> {
        V::new(scan_fns::inclusive_scan::<O, T>(&self.data))
    }

    /// Backward exclusive scan.
    pub fn scan_backward<O: ScanOp<T>>(&self) -> V<T> {
        V::new(scan_fns::scan_backward::<O, T>(&self.data))
    }

    /// Segmented exclusive scan.
    pub fn seg_scan<O: ScanOp<T>>(&self, segs: &Segments) -> V<T> {
        V::new(segmented::seg_scan::<O, T>(&self.data, segs))
    }

    /// Reduction.
    pub fn reduce<O: ScanOp<T>>(&self) -> T {
        scan_fns::reduce::<O, T>(&self.data)
    }

    /// `⊕-distribute`: every element receives the total (Figure 1).
    pub fn distribute<O: ScanOp<T>>(&self) -> V<T> {
        V::new(ops::distribute_op::<O, T>(&self.data))
    }

    /// `copy`: the first element everywhere (Figure 1).
    ///
    /// # Panics
    /// If empty.
    pub fn copy_first(&self) -> V<T> {
        V::new(ops::copy_first(&self.data))
    }

    /// `permute(A, I)` (§2.1).
    ///
    /// # Panics
    /// If `indices` is not a permutation.
    pub fn permute(&self, indices: &[usize]) -> V<T> {
        V::new(ops::permute(&self.data, indices))
    }

    /// `split(A, Flags)` (§2.2.1, Figure 3).
    pub fn split(&self, flags: &[bool]) -> V<T> {
        V::new(ops::split(&self.data, flags))
    }

    /// `pack`: keep flagged elements (Figure 11).
    pub fn pack(&self, keep: &[bool]) -> V<T> {
        V::new(ops::pack(&self.data, keep))
    }

    /// Elementwise comparison against another vector.
    pub fn lt(&self, other: &V<T>) -> V<bool>
    where
        T: PartialOrd,
    {
        self.zip_with(other, |a, b| a < b)
    }

    /// Elementwise equality against another vector.
    pub fn eq_v(&self, other: &V<T>) -> V<bool> {
        self.zip_with(other, |a, b| a == b)
    }
}

impl V<bool> {
    /// `enumerate` (Figure 1): rank of each true element.
    pub fn enumerate(&self) -> V<usize> {
        V::new(ops::enumerate(&self.data))
    }

    /// Number of true elements.
    pub fn count(&self) -> usize {
        ops::count(&self.data)
    }

    /// Elementwise not.
    pub fn not(&self) -> V<bool> {
        self.map(|b| !b)
    }
}

impl<T: ScanElem> From<Vec<T>> for V<T> {
    fn from(data: Vec<T>) -> Self {
        V::new(data)
    }
}

impl<T: ScanElem> From<&[T]> for V<T> {
    fn from(data: &[T]) -> Self {
        V::new(data.to_vec())
    }
}

impl<T: ScanElem> Index<usize> for V<T> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        &self.data[i]
    }
}

macro_rules! impl_elementwise_binop {
    ($trait:ident, $method:ident, $op:tt, $($bound:tt)*) => {
        impl<'a, T> $trait<&'a V<T>> for &'a V<T>
        where
            T: ScanElem + $($bound)*<Output = T>,
        {
            type Output = V<T>;
            fn $method(self, rhs: &'a V<T>) -> V<T> {
                self.zip_with(rhs, |a, b| a $op b)
            }
        }
    };
}

impl_elementwise_binop!(Add, add, +, Add);
impl_elementwise_binop!(Sub, sub, -, Sub);
impl_elementwise_binop!(Mul, mul, *, Mul);
impl_elementwise_binop!(BitAnd, bitand, &, BitAnd);
impl_elementwise_binop!(BitOr, bitor, |, BitOr);
impl_elementwise_binop!(BitXor, bitxor, ^, BitXor);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Max, Min, Sum};

    #[test]
    fn section2_1_elementwise_add() {
        let a = V::from(vec![5u32, 1, 3, 4, 3, 9, 2, 6]);
        let b = V::from(vec![2u32, 5, 3, 8, 1, 3, 6, 2]);
        assert_eq!((&a + &b).as_slice(), &[7, 6, 6, 12, 4, 12, 8, 8]);
    }

    #[test]
    fn other_binops() {
        let a = V::from(vec![6u32, 5]);
        let b = V::from(vec![2u32, 3]);
        assert_eq!((&a - &b).as_slice(), &[4, 2]);
        assert_eq!((&a * &b).as_slice(), &[12, 15]);
        assert_eq!((&a & &b).as_slice(), &[2, 1]);
        assert_eq!((&a | &b).as_slice(), &[6, 7]);
        assert_eq!((&a ^ &b).as_slice(), &[4, 6]);
    }

    #[test]
    fn scans_and_reductions() {
        let a = V::from(vec![3u64, 1, 7, 0, 4, 1, 6, 3]);
        assert_eq!(a.scan::<Sum>().as_slice(), &[0, 3, 4, 11, 11, 15, 16, 22]);
        assert_eq!(a.reduce::<Max>(), 7);
        assert_eq!(a.reduce::<Min>(), 0);
        assert_eq!(a.distribute::<Sum>().as_slice(), &[25; 8]);
        assert_eq!(a.copy_first().as_slice(), &[3; 8]);
        assert_eq!(a.scan_backward::<Sum>()[0], 22);
        assert_eq!(a.inclusive_scan::<Sum>()[7], 25);
    }

    #[test]
    fn flags_and_packing() {
        let flags = V::from(vec![true, false, false, true, false, true, true, false]);
        assert_eq!(flags.enumerate().as_slice(), &[0, 1, 1, 1, 2, 2, 3, 4]);
        assert_eq!(flags.count(), 4);
        assert_eq!(flags.not().count(), 4);
        let a = V::from(vec![10u32, 11, 12, 13, 14, 15, 16, 17]);
        assert_eq!(a.pack(flags.as_slice()).as_slice(), &[10, 13, 15, 16]);
    }

    #[test]
    fn split_and_permute_chain() {
        // A radix-sort pass in the paper's notation.
        let a = V::from(vec![5u64, 7, 3, 1, 4, 2, 7, 2]);
        let bit0 = a.map(|k| k & 1 == 1);
        assert_eq!(a.split(bit0.as_slice()).as_slice(), &[4, 2, 2, 5, 7, 3, 1, 7]);
        let idx = [2, 5, 4, 3, 1, 6, 0, 7];
        assert_eq!(a.permute(&idx)[2], 5);
    }

    #[test]
    fn segmented_scan_via_dsl() {
        let a = V::from(vec![5u32, 1, 3, 4, 3, 9, 2, 6]);
        let segs = Segments::from_lengths(&[2, 4, 2]);
        assert_eq!(
            a.seg_scan::<Sum>(&segs).as_slice(),
            &[0, 5, 0, 3, 7, 10, 0, 2]
        );
    }

    #[test]
    fn comparisons() {
        let a = V::from(vec![1u32, 5, 3]);
        let b = V::from(vec![2u32, 5, 1]);
        assert_eq!(a.lt(&b).as_slice(), &[true, false, false]);
        assert_eq!(a.eq_v(&b).as_slice(), &[false, true, false]);
    }

    #[test]
    fn constant_and_empty() {
        let c = V::constant(4, 9u32);
        assert_eq!(c.as_slice(), &[9, 9, 9, 9]);
        let e: V<u32> = V::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.scan::<Sum>().len(), 0);
    }
}
