//! The element trait that scan values must satisfy.
//!
//! The paper's vectors hold fixed-width machine words (integers, booleans,
//! and floating-point values). Anything `Copy + Send + Sync` with value
//! equality works here; the blanket impl covers all primitive numeric
//! types.

use core::fmt::Debug;

/// Marker trait for types that can live in a scan-model vector.
///
/// Automatically implemented for every `Copy + Send + Sync + PartialEq +
/// Debug + 'static` type, which includes all primitive integers, floats,
/// `bool`, and small tuples/structs of those.
pub trait ScanElem: Copy + Send + Sync + PartialEq + Debug + 'static {}

impl<T> ScanElem for T where T: Copy + Send + Sync + PartialEq + Debug + 'static {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_scan_elem<T: ScanElem>() {}

    #[test]
    fn primitives_are_elements() {
        assert_scan_elem::<u8>();
        assert_scan_elem::<u32>();
        assert_scan_elem::<u64>();
        assert_scan_elem::<usize>();
        assert_scan_elem::<i32>();
        assert_scan_elem::<i64>();
        assert_scan_elem::<f32>();
        assert_scan_elem::<f64>();
        assert_scan_elem::<bool>();
        assert_scan_elem::<(u32, bool)>();
    }
}
