//! Runtime-dispatched SIMD tile kernels for the hot scan operators.
//!
//! This is the **only** module in the workspace allowed to mention
//! `is_x86_feature_detected!` or `cfg(target_feature)` (enforced by
//! `cargo xtask lint`, rule `simd-confinement`): every vector path in
//! the crate funnels through the [`SimdTile`] function-pointer bundles
//! built here, and everything outside this module stays ISA-agnostic.
//!
//! # Shape
//!
//! The generic engine ([`crate::parallel`]) stages up to [`TILE`]
//! loaded values in a scratch buffer and hands the buffer to a tile
//! kernel: a seeded in-place scan (`fwd`/`bwd`) or a seeded reduction
//! (`reduce`), each returning the carry-out so consecutive tiles chain
//! exactly like the scalar loop. In-register the kernels run the
//! paper's block decomposition (SNIPPETS.md snippet 1) flattened onto
//! 4×64-bit AVX2 lanes: a Hillis–Steele in-vector inclusive scan
//! (lane shifts by 1 and 2, identity shifted in), then the running
//! carry is folded into all lanes and the last lane is broadcast as
//! the next carry — the `MAX += block_total` loop of the snippet, one
//! vector at a time.
//!
//! # Exactness
//!
//! Tiles are registered (see [`crate::op::ScanOp::simd_tile`]) only
//! for operators where *any* reassociation is bit-exact: wrapping
//! integer addition and integer max/min-style lattice ops. Floats and
//! user closures never get a tile, so the scalar engine's
//! "bit-identical across schedules" contract is preserved — the
//! vector path can reassociate freely without changing a single bit.
//!
//! # Dispatch
//!
//! The ISA is detected once (cached in an atomic): AVX2 on `x86_64`
//! when the CPU reports it, scalar otherwise. `SCAN_CORE_SIMD=0` (or
//! `off`) in the environment pins the scalar fallback — CI runs the
//! tier-1 suite both ways. When the answer is [`Isa::Scalar`] the
//! tile getters return `None` and the generic engine runs its
//! original scalar loops untouched.

use crate::sync::ConfigCell;

/// Elements staged per tile by the engine's vector path. Sized so the
/// value scratch (16 KiB at 8 bytes/element) stays L1-resident while
/// amortizing the per-tile dispatch to nothing.
pub const TILE: usize = 2048;

/// The instruction set the dispatcher selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// Portable scalar fallback (also: vector path disabled by env).
    Scalar,
    /// 4×64-bit lanes via AVX2.
    Avx2,
}

impl Isa {
    /// Short name for logs and bench metadata.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
        }
    }
}

const ISA_UNKNOWN: usize = 0;
const ISA_SCALAR: usize = 1;
const ISA_AVX2: usize = 2;

/// Cached dispatch decision; 0 = not yet detected.
static ACTIVE: ConfigCell = ConfigCell::new(ISA_UNKNOWN);

/// The ISA the tile kernels will use, detecting and caching it on
/// first call. Honors `SCAN_CORE_SIMD=0`/`off` (scalar pin).
pub fn active_isa() -> Isa {
    match ACTIVE.get() {
        ISA_SCALAR => Isa::Scalar,
        ISA_AVX2 => Isa::Avx2,
        _ => {
            let isa = detect();
            let enc = match isa {
                Isa::Scalar => ISA_SCALAR,
                Isa::Avx2 => ISA_AVX2,
            };
            ACTIVE.set(enc);
            isa
        }
    }
}

/// Force the dispatch decision (benches and tests): `Some(Isa::Scalar)`
/// pins the scalar fallback, `Some(Isa::Avx2)` pins the vector path
/// (the caller must know the CPU supports it), `None` re-detects on
/// the next [`active_isa`] call.
#[doc(hidden)]
pub fn set_isa_override(isa: Option<Isa>) {
    let enc = match isa {
        None => ISA_UNKNOWN,
        Some(Isa::Scalar) => ISA_SCALAR,
        Some(Isa::Avx2) => ISA_AVX2,
    };
    ACTIVE.set(enc);
}

fn detect() -> Isa {
    if matches!(
        std::env::var("SCAN_CORE_SIMD").as_deref().map(str::trim),
        Ok("0") | Ok("off") | Ok("OFF")
    ) {
        return Isa::Scalar;
    }
    detect_hw()
}

#[cfg(target_arch = "x86_64")]
fn detect_hw() -> Isa {
    if std::arch::is_x86_feature_detected!("avx2") {
        Isa::Avx2
    } else {
        Isa::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_hw() -> Isa {
    Isa::Scalar
}

/// A bundle of tile kernels for one `(operator, element)` pair.
///
/// All three functions are *seeded* and *chaining*: they take the
/// running accumulator in traversal order and return the carry-out,
/// so the engine can feed tiles back-to-back and land on exactly the
/// value the scalar loop would have produced (the registered
/// operators are reassociation-exact).
///
/// - `fwd(buf, carry, inclusive)`: in-place left-to-right scan of the
///   tile. Exclusive: slot `i` becomes the state *before* element `i`.
///   Inclusive: the state after. Returns the carry-out.
/// - `bwd`: the same for right-to-left traversal of the tile.
/// - `reduce(buf, carry)`: fold the tile into `carry`.
pub struct SimdTile<S: Copy> {
    pub(crate) fwd: fn(&mut [S], S, bool) -> S,
    pub(crate) bwd: fn(&mut [S], S, bool) -> S,
    pub(crate) reduce: fn(&[S], S) -> S,
}

// ---------------------------------------------------------------------------
// Scalar fallbacks (also the reference the unit tests compare against).
// ---------------------------------------------------------------------------

fn scalar_scan<S: Copy>(buf: &mut [S], carry: S, inclusive: bool, f: impl Fn(S, S) -> S) -> S {
    let mut acc = carry;
    if inclusive {
        for s in buf.iter_mut() {
            acc = f(acc, *s);
            *s = acc;
        }
    } else {
        for s in buf.iter_mut() {
            let x = *s;
            *s = acc;
            acc = f(acc, x);
        }
    }
    acc
}

fn scalar_reduce<S: Copy>(buf: &[S], carry: S, f: impl Fn(S, S) -> S) -> S {
    let mut acc = carry;
    for &s in buf {
        acc = f(acc, s);
    }
    acc
}

// ---------------------------------------------------------------------------
// AVX2 cores: 4×64-bit lanes.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use core::arch::x86_64::*;

    /// Lanes shifted up by one (`[fill, v0, v1, v2]`).
    #[target_feature(enable = "avx2")]
    fn shift1(v: __m256i, fill: __m256i) -> __m256i {
        let s = _mm256_permute4x64_epi64::<0x90>(v);
        _mm256_blend_epi32::<0b0000_0011>(s, fill)
    }

    /// Lanes shifted up by two (`[fill, fill, v0, v1]`).
    #[target_feature(enable = "avx2")]
    fn shift2(v: __m256i, fill: __m256i) -> __m256i {
        let s = _mm256_permute4x64_epi64::<0x40>(v);
        _mm256_blend_epi32::<0b0000_1111>(s, fill)
    }

    #[target_feature(enable = "avx2")]
    fn add64(a: __m256i, b: __m256i) -> __m256i {
        _mm256_add_epi64(a, b)
    }

    /// Unsigned 64-bit lane max: signed compare after biasing both
    /// operands by `i64::MIN` (flips the sign bit, making the signed
    /// compare order unsigned values correctly).
    #[target_feature(enable = "avx2")]
    fn maxu64(a: __m256i, b: __m256i) -> __m256i {
        let bias = _mm256_set1_epi64x(i64::MIN);
        let gt = _mm256_cmpgt_epi64(_mm256_xor_si256(a, bias), _mm256_xor_si256(b, bias));
        _mm256_blendv_epi8(b, a, gt)
    }

    /// Signed 64-bit lane max.
    #[target_feature(enable = "avx2")]
    fn maxi64(a: __m256i, b: __m256i) -> __m256i {
        let gt = _mm256_cmpgt_epi64(a, b);
        _mm256_blendv_epi8(b, a, gt)
    }

    macro_rules! lane_scan {
        ($fwd:ident, $red:ident, $t:ty, $comb:ident, $id:expr, $sop:expr) => {
            /// Seeded in-place inclusive/exclusive scan of one tile;
            /// returns the carry-out (the inclusive fold of the tile
            /// into the seed).
            #[target_feature(enable = "avx2")]
            pub(super) fn $fwd(buf: &mut [$t], carry: $t, inclusive: bool) -> $t {
                let m = buf.len();
                if m == 0 {
                    return carry;
                }
                let carry_in = carry;
                let idv = _mm256_set1_epi64x($id as i64);
                let mut carry_v = _mm256_set1_epi64x(carry as i64);
                let p = buf.as_mut_ptr();
                let mut j = 0usize;
                while j + 4 <= m {
                    // SAFETY: `j + 4 <= m`, so the unaligned 4-lane
                    // load/store stays inside `buf`.
                    unsafe {
                        let x = _mm256_loadu_si256(p.add(j).cast());
                        let x1 = $comb(shift1(x, idv), x);
                        let x2 = $comb(shift2(x1, idv), x1);
                        let out = $comb(carry_v, x2);
                        _mm256_storeu_si256(p.add(j).cast(), out);
                        carry_v = _mm256_permute4x64_epi64::<0xFF>(out);
                    }
                    j += 4;
                }
                let mut acc = if j == 0 {
                    carry_in
                } else {
                    _mm256_extract_epi64::<0>(carry_v) as $t
                };
                while j < m {
                    acc = ($sop)(acc, buf[j]);
                    buf[j] = acc;
                    j += 1;
                }
                if !inclusive {
                    // Inclusive states → exclusive: shift right by one
                    // and seat the seed at slot 0 (memmove-safe).
                    buf.copy_within(0..m - 1, 1);
                    buf[0] = carry_in;
                }
                acc
            }

            /// Seeded tile reduction (lane-striped, then folded).
            #[target_feature(enable = "avx2")]
            pub(super) fn $red(buf: &[$t], carry: $t) -> $t {
                let m = buf.len();
                let mut acc_v = _mm256_set1_epi64x($id as i64);
                let p = buf.as_ptr();
                let mut j = 0usize;
                while j + 4 <= m {
                    // SAFETY: `j + 4 <= m` keeps the load in bounds.
                    unsafe {
                        acc_v = $comb(acc_v, _mm256_loadu_si256(p.add(j).cast()));
                    }
                    j += 4;
                }
                let h = $comb(acc_v, _mm256_permute4x64_epi64::<0x4E>(acc_v));
                let h = $comb(h, _mm256_permute4x64_epi64::<0xB1>(h));
                let mut acc = ($sop)(carry, _mm256_extract_epi64::<0>(h) as $t);
                while j < m {
                    acc = ($sop)(acc, buf[j]);
                    j += 1;
                }
                acc
            }
        };
    }

    lane_scan!(sum64_fwd, sum64_red, u64, add64, 0u64, |a: u64, b: u64| a
        .wrapping_add(b));
    lane_scan!(
        maxu64_fwd,
        maxu64_red,
        u64,
        maxu64,
        0u64,
        |a: u64, b: u64| a.max(b)
    );
    lane_scan!(
        maxi64_fwd,
        maxi64_red,
        i64,
        maxi64,
        i64::MIN,
        |a: i64, b: i64| a.max(b)
    );

    macro_rules! seg_scan_kernel {
        ($fwd:ident, $t:ty, $comb:ident, $id:expr, $sop:expr) => {
            /// Seeded in-place segmented scan of one tile of
            /// `(value, head-flag)` pairs; returns the carry-out pair.
            /// Pairs are staged through 4-lane stack arrays because the
            /// tuple layout is unspecified (no direct SIMD loads).
            #[target_feature(enable = "avx2")]
            pub(super) fn $fwd(
                buf: &mut [($t, bool)],
                carry: ($t, bool),
                inclusive: bool,
            ) -> ($t, bool) {
                let m = buf.len();
                if m == 0 {
                    return carry;
                }
                let carry_in = carry;
                let idv = _mm256_set1_epi64x($id as i64);
                let zero = _mm256_setzero_si256();
                let mut carry_v = _mm256_set1_epi64x(carry.0 as i64);
                let mut carry_f = _mm256_set1_epi64x(if carry.1 { -1 } else { 0 });
                let mut lanes = [0i64; 4];
                let mut fmask = [0i64; 4];
                let mut j = 0usize;
                while j + 4 <= m {
                    for k in 0..4 {
                        let (v, fl) = buf[j + k];
                        lanes[k] = v as i64;
                        fmask[k] = if fl { -1 } else { 0 };
                    }
                    // SAFETY: `lanes`/`fmask` are 4-lane stack arrays;
                    // the unaligned loads/stores stay inside them.
                    unsafe {
                        let v = _mm256_loadu_si256(lanes.as_ptr().cast());
                        let f = _mm256_loadu_si256(fmask.as_ptr().cast());
                        // Flag-gated Hillis–Steele, distances 1 and 2:
                        // a lane whose accumulated flag is set has hit
                        // its segment head and stops absorbing.
                        let v1 = _mm256_blendv_epi8($comb(shift1(v, idv), v), v, f);
                        let f1 = _mm256_or_si256(f, shift1(f, zero));
                        let v2 = _mm256_blendv_epi8($comb(shift2(v1, idv), v1), v1, f1);
                        let f2 = _mm256_or_si256(f1, shift2(f1, zero));
                        // Fold in the running carry pair.
                        let outv = _mm256_blendv_epi8($comb(carry_v, v2), v2, f2);
                        let outf = _mm256_or_si256(f2, carry_f);
                        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), outv);
                        _mm256_storeu_si256(fmask.as_mut_ptr().cast(), outf);
                        carry_v = _mm256_permute4x64_epi64::<0xFF>(outv);
                        carry_f = _mm256_permute4x64_epi64::<0xFF>(outf);
                    }
                    for k in 0..4 {
                        buf[j + k] = (lanes[k] as $t, fmask[k] != 0);
                    }
                    j += 4;
                }
                let mut acc = if j == 0 {
                    carry_in
                } else {
                    (
                        _mm256_extract_epi64::<0>(carry_v) as $t,
                        _mm256_extract_epi64::<0>(carry_f) != 0,
                    )
                };
                while j < m {
                    acc = ($sop)(acc, buf[j]);
                    buf[j] = acc;
                    j += 1;
                }
                if !inclusive {
                    buf.copy_within(0..m - 1, 1);
                    buf[0] = carry_in;
                }
                acc
            }
        };
    }

    macro_rules! seg_sum_op {
        ($t:ty) => {
            |a: ($t, bool), b: ($t, bool)| {
                if b.1 {
                    b
                } else {
                    (a.0.wrapping_add(b.0), a.1)
                }
            }
        };
    }
    macro_rules! seg_max_op {
        ($t:ty) => {
            |a: ($t, bool), b: ($t, bool)| {
                if b.1 {
                    b
                } else {
                    (a.0.max(b.0), a.1)
                }
            }
        };
    }

    seg_scan_kernel!(seg_sum_u64, u64, add64, 0u64, seg_sum_op!(u64));
    seg_scan_kernel!(seg_sum_usize, usize, add64, 0u64, seg_sum_op!(usize));
    seg_scan_kernel!(seg_sum_i64, i64, add64, 0u64, seg_sum_op!(i64));
    seg_scan_kernel!(seg_sum_isize, isize, add64, 0u64, seg_sum_op!(isize));
    seg_scan_kernel!(seg_max_u64, u64, maxu64, 0u64, seg_max_op!(u64));
    seg_scan_kernel!(seg_max_usize, usize, maxu64, 0u64, seg_max_op!(usize));
    seg_scan_kernel!(seg_max_i64, i64, maxi64, i64::MIN, seg_max_op!(i64));
    seg_scan_kernel!(seg_max_isize, isize, maxi64, i64::MIN, seg_max_op!(isize));
}

// ---------------------------------------------------------------------------
// Dispatch wrappers + tile registry.
// ---------------------------------------------------------------------------

macro_rules! plain_tile {
    ($getter:ident, $wf:ident, $wb:ident, $wr:ident,
     $t:ty, $b:ty, $core_fwd:path, $core_red:path, $sop:expr) => {
        fn $wf(buf: &mut [$t], carry: $t, inclusive: bool) -> $t {
            #[cfg(target_arch = "x86_64")]
            if active_isa() == Isa::Avx2 {
                // SAFETY: the element and the kernel's lane type are
                // both 64-bit plain integers (same size and alignment,
                // every bit pattern valid), so the slice reinterpret is
                // sound; AVX2 availability was just checked, which
                // discharges the target-feature obligation.
                unsafe {
                    let bits =
                        core::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<$b>(), buf.len());
                    return $core_fwd(bits, carry as $b, inclusive) as $t;
                }
            }
            scalar_scan(buf, carry, inclusive, $sop)
        }
        fn $wb(buf: &mut [$t], carry: $t, inclusive: bool) -> $t {
            // Right-to-left traversal = reverse, forward kernel,
            // reverse back (both reversals stay in L1 at tile size).
            buf.reverse();
            let c = $wf(buf, carry, inclusive);
            buf.reverse();
            c
        }
        fn $wr(buf: &[$t], carry: $t) -> $t {
            #[cfg(target_arch = "x86_64")]
            if active_isa() == Isa::Avx2 {
                // SAFETY: as in the scan wrapper above (shared cast).
                unsafe {
                    let bits = core::slice::from_raw_parts(buf.as_ptr().cast::<$b>(), buf.len());
                    return $core_red(bits, carry as $b) as $t;
                }
            }
            scalar_reduce(buf, carry, $sop)
        }
        /// Tile kernels for this operator/element pair, when the
        /// active ISA has a vector path for them.
        pub(crate) fn $getter() -> Option<&'static SimdTile<$t>> {
            static T: SimdTile<$t> = SimdTile {
                fwd: $wf,
                bwd: $wb,
                reduce: $wr,
            };
            (active_isa() == Isa::Avx2).then_some(&T)
        }
    };
}

macro_rules! seg_tile {
    ($getter:ident, $wf:ident, $wb:ident, $wr:ident, $t:ty, $core_fwd:path, $sop:expr) => {
        fn $wf(buf: &mut [($t, bool)], carry: ($t, bool), inclusive: bool) -> ($t, bool) {
            #[cfg(target_arch = "x86_64")]
            if active_isa() == Isa::Avx2 {
                // SAFETY: AVX2 availability was just checked — the
                // kernel's only obligation (it touches no caller memory
                // beyond the pair slice it is handed).
                unsafe {
                    return $core_fwd(buf, carry, inclusive);
                }
            }
            scalar_scan(buf, carry, inclusive, $sop)
        }
        fn $wb(buf: &mut [($t, bool)], carry: ($t, bool), inclusive: bool) -> ($t, bool) {
            buf.reverse();
            let c = $wf(buf, carry, inclusive);
            buf.reverse();
            c
        }
        fn $wr(buf: &[($t, bool)], carry: ($t, bool)) -> ($t, bool) {
            // Pair reductions only feed the two-pass up sweep; the
            // scalar fold is exact and cheap relative to the emit pass.
            scalar_reduce(buf, carry, $sop)
        }
        /// Segmented-pair tile kernels for this operator/element pair.
        pub(crate) fn $getter() -> Option<&'static SimdTile<($t, bool)>> {
            static T: SimdTile<($t, bool)> = SimdTile {
                fwd: $wf,
                bwd: $wb,
                reduce: $wr,
            };
            (active_isa() == Isa::Avx2).then_some(&T)
        }
    };
}

macro_rules! sum_op {
    ($t:ty) => {
        |a: $t, b: $t| a.wrapping_add(b)
    };
}
macro_rules! max_op {
    ($t:ty) => {
        |a: $t, b: $t| a.max(b)
    };
}

#[rustfmt::skip]
mod registry {
    use super::*;

    plain_tile!(sum_u64_tile, sum_u64_f, sum_u64_b, sum_u64_r, u64, u64,
        avx2::sum64_fwd, avx2::sum64_red, sum_op!(u64));
    plain_tile!(sum_usize_tile, sum_usize_f, sum_usize_b, sum_usize_r, usize, u64,
        avx2::sum64_fwd, avx2::sum64_red, sum_op!(usize));
    plain_tile!(sum_i64_tile, sum_i64_f, sum_i64_b, sum_i64_r, i64, u64,
        avx2::sum64_fwd, avx2::sum64_red, sum_op!(i64));
    plain_tile!(sum_isize_tile, sum_isize_f, sum_isize_b, sum_isize_r, isize, u64,
        avx2::sum64_fwd, avx2::sum64_red, sum_op!(isize));
    plain_tile!(max_u64_tile, max_u64_f, max_u64_b, max_u64_r, u64, u64,
        avx2::maxu64_fwd, avx2::maxu64_red, max_op!(u64));
    plain_tile!(max_usize_tile, max_usize_f, max_usize_b, max_usize_r, usize, u64,
        avx2::maxu64_fwd, avx2::maxu64_red, max_op!(usize));
    plain_tile!(max_i64_tile, max_i64_f, max_i64_b, max_i64_r, i64, i64,
        avx2::maxi64_fwd, avx2::maxi64_red, max_op!(i64));
    plain_tile!(max_isize_tile, max_isize_f, max_isize_b, max_isize_r, isize, i64,
        avx2::maxi64_fwd, avx2::maxi64_red, max_op!(isize));

    seg_tile!(seg_sum_u64_tile, sg_sum_u64_f, sg_sum_u64_b, sg_sum_u64_r, u64,
        avx2::seg_sum_u64, seg_sum_op!(u64));
    seg_tile!(seg_sum_usize_tile, sg_sum_usize_f, sg_sum_usize_b, sg_sum_usize_r, usize,
        avx2::seg_sum_usize, seg_sum_op!(usize));
    seg_tile!(seg_sum_i64_tile, sg_sum_i64_f, sg_sum_i64_b, sg_sum_i64_r, i64,
        avx2::seg_sum_i64, seg_sum_op!(i64));
    seg_tile!(seg_sum_isize_tile, sg_sum_isize_f, sg_sum_isize_b, sg_sum_isize_r, isize,
        avx2::seg_sum_isize, seg_sum_op!(isize));
    seg_tile!(seg_max_u64_tile, sg_max_u64_f, sg_max_u64_b, sg_max_u64_r, u64,
        avx2::seg_max_u64, seg_max_op!(u64));
    seg_tile!(seg_max_usize_tile, sg_max_usize_f, sg_max_usize_b, sg_max_usize_r, usize,
        avx2::seg_max_usize, seg_max_op!(usize));
    seg_tile!(seg_max_i64_tile, sg_max_i64_f, sg_max_i64_b, sg_max_i64_r, i64,
        avx2::seg_max_i64, seg_max_op!(i64));
    seg_tile!(seg_max_isize_tile, sg_max_isize_f, sg_max_isize_b, sg_max_isize_r, isize,
        avx2::seg_max_isize, seg_max_op!(isize));
}

macro_rules! seg_sum_op {
    ($t:ty) => {
        |a: ($t, bool), b: ($t, bool)| {
            if b.1 {
                b
            } else {
                (a.0.wrapping_add(b.0), a.1)
            }
        }
    };
}
macro_rules! seg_max_op {
    ($t:ty) => {
        |a: ($t, bool), b: ($t, bool)| {
            if b.1 {
                b
            } else {
                (a.0.max(b.0), a.1)
            }
        }
    };
}
use seg_max_op;
use seg_sum_op;

pub(crate) use registry::*;

#[cfg(test)]
mod tests {
    use super::*;

    fn data(mut seed: u64, n: usize) -> Vec<u64> {
        (0..n)
            .map(|_| {
                seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            })
            .collect()
    }

    const LENS: [usize; 9] = [0, 1, 3, 4, 5, 8, 31, 100, 1027];

    #[test]
    fn detection_is_cached_and_overridable() {
        let first = active_isa();
        assert_eq!(active_isa(), first, "detection must be stable");
        set_isa_override(Some(Isa::Scalar));
        assert_eq!(active_isa(), Isa::Scalar);
        assert!(sum_u64_tile().is_none(), "scalar pin must hide tiles");
        set_isa_override(None);
        assert_eq!(active_isa(), first);
    }

    #[test]
    fn plain_tiles_match_scalar_reference() {
        let Some(sum) = sum_u64_tile() else {
            return; // no vector ISA on this machine: nothing to cross-check
        };
        let max = max_u64_tile().expect("isa already confirmed");
        for &n in &LENS {
            let a = data(0xA5, n);
            for inclusive in [false, true] {
                for (tile, op) in [
                    (sum, u64::wrapping_add as fn(u64, u64) -> u64),
                    (max, u64::max as fn(u64, u64) -> u64),
                ] {
                    let seed = 17u64;
                    let mut got = a.clone();
                    let c = (tile.fwd)(&mut got, seed, inclusive);
                    let mut want = a.clone();
                    let wc = scalar_scan(&mut want, seed, inclusive, op);
                    assert_eq!(got, want, "fwd n={n} inclusive={inclusive}");
                    assert_eq!(c, wc, "fwd carry n={n}");

                    let mut got = a.clone();
                    let c = (tile.bwd)(&mut got, seed, inclusive);
                    let mut want: Vec<u64> = a.iter().rev().copied().collect();
                    let wc = scalar_scan(&mut want, seed, inclusive, op);
                    want.reverse();
                    assert_eq!(got, want, "bwd n={n} inclusive={inclusive}");
                    assert_eq!(c, wc, "bwd carry n={n}");

                    assert_eq!(
                        (tile.reduce)(&a, seed),
                        scalar_reduce(&a, seed, op),
                        "reduce n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn signed_max_tile_handles_negatives() {
        let Some(tile) = max_i64_tile() else {
            return;
        };
        for &n in &LENS {
            let a: Vec<i64> = data(0x5EED, n).iter().map(|&x| x as i64).collect();
            for inclusive in [false, true] {
                let mut got = a.clone();
                let c = (tile.fwd)(&mut got, i64::MIN, inclusive);
                let mut want = a.clone();
                let wc = scalar_scan(&mut want, i64::MIN, inclusive, i64::max);
                assert_eq!(got, want, "n={n} inclusive={inclusive}");
                assert_eq!(c, wc);
            }
        }
    }

    #[test]
    fn seg_tiles_match_scalar_reference() {
        let Some(sum) = seg_sum_u64_tile() else {
            return;
        };
        let max = seg_max_u64_tile().expect("isa already confirmed");
        let sop = seg_sum_op!(u64);
        let mop = seg_max_op!(u64);
        for &n in &LENS {
            let vals = data(0xBEEF, n);
            let heads = data(0xF00D, n);
            let a: Vec<(u64, bool)> = vals
                .iter()
                .zip(&heads)
                .map(|(&v, &h)| (v, h % 5 == 0))
                .collect();
            for inclusive in [false, true] {
                for carry in [(0u64, false), (99u64, true)] {
                    let mut got = a.clone();
                    let c = (sum.fwd)(&mut got, carry, inclusive);
                    let mut want = a.clone();
                    let wc = scalar_scan(&mut want, carry, inclusive, sop);
                    assert_eq!(got, want, "seg-sum n={n} inclusive={inclusive}");
                    assert_eq!(c, wc);

                    let mut got = a.clone();
                    let c = (max.fwd)(&mut got, carry, inclusive);
                    let mut want = a.clone();
                    let wc = scalar_scan(&mut want, carry, inclusive, mop);
                    assert_eq!(got, want, "seg-max n={n} inclusive={inclusive}");
                    assert_eq!(c, wc);

                    let mut got = a.clone();
                    let c = (sum.bwd)(&mut got, carry, inclusive);
                    let mut want: Vec<(u64, bool)> = a.iter().rev().copied().collect();
                    let wc = scalar_scan(&mut want, carry, inclusive, sop);
                    want.reverse();
                    assert_eq!(got, want, "seg-sum bwd n={n}");
                    assert_eq!(c, wc);
                }
            }
        }
    }
}
