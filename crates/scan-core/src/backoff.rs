//! Deterministic, seeded retry/backoff arithmetic.
//!
//! Every resilience layer in this repository needs the same two
//! ingredients when something fails: an **exponential schedule**
//! (retry later, twice as much later each time, capped) and a
//! **seeded jitter draw** (spread co-failing parties apart without
//! giving up reproducibility). Before this module existed the service
//! layer and the fault layer each carried a private copy of the same
//! SplitMix64-finalizer arithmetic; they now share this one, and so
//! does shard-range re-execution in `scan-shard`.
//!
//! Everything here is **pure arithmetic** — no clocks are read and no
//! sleeping happens (the repository's lint confines `Instant::now` to
//! `deadline.rs`). Callers decide what to do with the returned values:
//! `scan-service` sleeps for a [`Backoff::delay`], the `scan-fault`
//! breaker adds a [`jitter`] draw to a quarantine measured in logical
//! scans, and `scan-shard` does both.
//!
//! The jitter draw is a pure function of `(seed, stream, attempt)`:
//! replaying the same failure sequence reproduces the same schedule,
//! which is what makes the chaos suites assertable to exact values.

use core::time::Duration;

/// The 64-bit golden-ratio increment used by SplitMix64.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// One SplitMix64 step: advance `z` by the golden-ratio increment and
/// run the output finalizer. This is the shared deterministic entropy
/// behind every jitter draw in the repository (it is exactly
/// `scan_fault::SplitMix64::next` on a state of `z`).
#[inline]
#[must_use]
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combine a seed, a stream discriminator (dispatch counter, backend
/// index, shard index, ...) and a per-stream step (attempt number,
/// quarantine count, ...) into one jitter-stream key.
///
/// The stream is spread by the golden-ratio constant so adjacent
/// discriminators land in unrelated parts of the state space; the step
/// is shifted left so it cannot collide with a low-entropy seed.
#[inline]
#[must_use]
pub fn stream_key(seed: u64, stream: u64, step: u64) -> u64 {
    seed.wrapping_add(stream.wrapping_mul(GOLDEN))
        .wrapping_add(step << 1)
}

/// A deterministic jitter draw in `0..bound` (`0` when `bound == 0`).
///
/// Pure function of `(key, bound)`; feed it a [`stream_key`] to get
/// the repository-standard draw.
#[inline]
#[must_use]
pub fn jitter(key: u64, bound: u64) -> u64 {
    if bound == 0 {
        0
    } else {
        mix(key) % bound
    }
}

/// The exponential term of a backoff schedule: `base · 2^(attempt-1)`,
/// with the shift capped at 10 (so attempt 11 and beyond wait 1024×
/// base) and saturating `Duration` arithmetic.
///
/// `attempt` is 1-based; an (out-of-contract) `attempt == 0` is
/// treated as attempt 1.
#[inline]
#[must_use]
pub fn exponential(base: Duration, attempt: u32) -> Duration {
    base.saturating_mul(1u32 << attempt.saturating_sub(1).min(10))
}

/// Double a logical-clock quarantine, capped at `max` (which is
/// clamped to at least 1). Used by breakers whose backoff is measured
/// in scans rather than wall time.
#[inline]
#[must_use]
pub fn double_capped(current: u64, max: u64) -> u64 {
    current.saturating_mul(2).min(max.max(1))
}

/// A seeded wall-clock backoff policy: exponential base plus bounded
/// uniform jitter.
///
/// [`delay`](Backoff::delay) is a pure function of the policy and of
/// `(stream, attempt, salt)`, so a replayed failure sequence sleeps
/// the same schedule — the property the service- and shard-level
/// chaos tests pin to exact values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// The exponential term's base: attempt `k` waits `base · 2^(k-1)`.
    pub base: Duration,
    /// Upper bound of the uniform jitter added to each delay;
    /// `Duration::ZERO` disables jitter (exact schedule).
    pub jitter: Duration,
    /// Seed for the jitter draw.
    pub seed: u64,
}

impl Backoff {
    /// The delay before retry number `attempt` (1-based) of logical
    /// stream `stream` (a dispatch counter, shard index, ...). `salt`
    /// decorrelates otherwise-identical streams (e.g. the scan-kind
    /// bit in the service layer); pass `0` when unused.
    #[must_use]
    pub fn delay(&self, stream: u64, attempt: u32, salt: u64) -> Duration {
        let exp = exponential(self.base, attempt);
        let bound = self.jitter.as_nanos() as u64;
        let key = stream_key(self.seed, stream, u64::from(attempt)).wrapping_add(salt);
        exp.saturating_add(Duration::from_nanos(jitter(key, bound)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference SplitMix64 step, written out independently so the
    /// shared `mix` cannot drift from the generators it replaced
    /// (`scan_fault::SplitMix64::next` and the service's old private
    /// finalizer).
    fn reference_splitmix_next(state: u64) -> u64 {
        let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn mix_matches_splitmix64_next_exactly() {
        for s in [0u64, 1, 42, 0x5eed_b10c_ba5e_0ff5, u64::MAX] {
            assert_eq!(mix(s), reference_splitmix_next(s));
        }
        // Exact-value pins: these are load-bearing — the scan-fault
        // breaker tests and the service backoff tests assume draws
        // derived from exactly this function.
        assert_eq!(mix(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(mix(1), 0x910A_2DEC_8902_5CC1);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        for stream in 0..8u64 {
            for step in 0..8u64 {
                let key = stream_key(0xfeed_beef, stream, step);
                let a = jitter(key, 6);
                assert_eq!(a, jitter(key, 6), "same key, same draw");
                assert!(a < 6);
            }
        }
        assert_eq!(jitter(123, 0), 0, "zero bound disables jitter");
        assert_eq!(jitter(123, 1), 0, "bound 1 can only draw 0");
    }

    #[test]
    fn stream_key_matches_the_extracted_formulas() {
        // The scan-fault breaker's draw key was
        //   jitter_seed + b_idx·GOLDEN + (quarantines << 1)
        // and the service's was
        //   jitter_seed + dispatch·GOLDEN + (attempt << 1) + kind_bit.
        let seed = 0x5eed_b10c_ba5e_0ff5u64;
        let legacy_fault = seed
            .wrapping_add(3u64.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(5u64 << 1);
        assert_eq!(stream_key(seed, 3, 5), legacy_fault);
        let legacy_service = seed
            .wrapping_add(17u64.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(2u64 << 1)
            .wrapping_add(1);
        assert_eq!(stream_key(seed, 17, 2).wrapping_add(1), legacy_service);
    }

    #[test]
    fn exponential_doubles_then_caps() {
        let b = Duration::from_millis(3);
        assert_eq!(exponential(b, 1), b);
        assert_eq!(exponential(b, 2), b * 2);
        assert_eq!(exponential(b, 5), b * 16);
        assert_eq!(exponential(b, 11), b * 1024);
        assert_eq!(exponential(b, 40), b * 1024, "shift caps at 10");
        assert_eq!(exponential(b, 0), b, "attempt 0 treated as 1");
        // Saturation instead of overflow.
        let _ = exponential(Duration::MAX, 11);
    }

    #[test]
    fn double_capped_schedule() {
        assert_eq!(double_capped(8, 64), 16);
        assert_eq!(double_capped(40, 64), 64);
        assert_eq!(double_capped(64, 64), 64);
        assert_eq!(double_capped(u64::MAX, u64::MAX), u64::MAX);
        assert_eq!(double_capped(5, 0), 1, "cap clamps to at least 1");
    }

    #[test]
    fn backoff_delay_exact_values() {
        let p = Backoff {
            base: Duration::from_micros(100),
            jitter: Duration::from_micros(10),
            seed: 0x5cad_0001,
        };
        // Pure function: replays identically.
        for attempt in 1..=4 {
            for stream in [0u64, 1, 99] {
                assert_eq!(p.delay(stream, attempt, 0), p.delay(stream, attempt, 0));
                let exp = exponential(p.base, attempt);
                let d = p.delay(stream, attempt, 0);
                assert!(d >= exp && d < exp + p.jitter + Duration::from_nanos(1));
            }
        }
        // Exact pin of one draw, derived by hand from the formula:
        // key = stream_key(seed, 7, 2), bound = 10_000 ns.
        let key = stream_key(0x5cad_0001, 7, 2);
        let expect = exponential(p.base, 2) + Duration::from_nanos(mix(key) % 10_000);
        assert_eq!(p.delay(7, 2, 0), expect);
        // Zero jitter → pure exponential.
        let exact = Backoff {
            jitter: Duration::ZERO,
            ..p
        };
        assert_eq!(exact.delay(7, 3, 0), exponential(p.base, 3));
        // The salt moves the draw (almost surely) but never the bound.
        let with_salt = p.delay(7, 2, 1);
        assert!(with_salt >= exponential(p.base, 2));
    }
}
