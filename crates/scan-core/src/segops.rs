//! Segmented versions of the simple operations (paper §2.3):
//! per-segment `enumerate`, `copy`, `⊕-distribute`, `reduce`, `split`,
//! and three-way `split` — each a constant number of scan-model steps.

use crate::element::ScanElem;
use crate::error::{Error, Result};
use crate::op::{ScanOp, Sum};
use crate::ops::{permute_unchecked, Bucket};
use crate::parallel;
use crate::segmented::{seg_inclusive_scan, seg_scan, Segments};

/// `Err(Error::LengthMismatch)` unless `len` matches the segmentation,
/// checking the ambient [`crate::deadline`] scope first (every checked
/// segmented op funnels through here, so they all honor deadlines).
fn check_seg_len(len: usize, segs: &Segments) -> Result<()> {
    crate::deadline::checkpoint()?;
    if len != segs.len() {
        return Err(Error::LengthMismatch {
            expected: segs.len(),
            actual: len,
        });
    }
    Ok(())
}

/// Segmented `enumerate`: the `i`-th true element *within its segment*
/// receives the count of true elements before it in the same segment.
pub fn seg_enumerate(flags: &[bool], segs: &Segments) -> Vec<usize> {
    let ones = parallel::map_by(flags, usize::from);
    seg_scan::<Sum, _>(&ones, segs)
}

/// Segmented `copy`: copy each segment's first element across the
/// segment (the paper implements this with a segmented `max-scan`; see
/// [`crate::simulate::seg_max_scan_via_primitives`] for that route).
pub fn seg_copy<T: ScanElem>(a: &[T], segs: &Segments) -> Vec<T> {
    assert_eq!(a.len(), segs.len(), "seg_copy length mismatch");
    let heads = segs.head_index_per_element();
    crate::ops::gather(a, &heads)
}

/// Checked [`seg_copy`]: `Err(Error::LengthMismatch)` instead of
/// panicking.
pub fn try_seg_copy<T: ScanElem>(a: &[T], segs: &Segments) -> Result<Vec<T>> {
    check_seg_len(a.len(), segs)?;
    Ok(seg_copy(a, segs))
}

/// Per-segment reduction, one value per segment, in segment order.
pub fn seg_reduce<O: ScanOp<T>, T: ScanElem>(a: &[T], segs: &Segments) -> Vec<T> {
    assert_eq!(a.len(), segs.len(), "seg_reduce length mismatch");
    let inc = seg_inclusive_scan::<O, T>(a, segs);
    segs.ranges().iter().map(|&(_, e)| inc[e - 1]).collect()
}

/// Checked [`seg_reduce`]: `Err(Error::LengthMismatch)` instead of
/// panicking.
pub fn try_seg_reduce<O: ScanOp<T>, T: ScanElem>(a: &[T], segs: &Segments) -> Result<Vec<T>> {
    check_seg_len(a.len(), segs)?;
    Ok(seg_reduce::<O, T>(a, segs))
}

/// Segmented `⊕-distribute`: every element receives the reduction of
/// its own segment.
pub fn seg_distribute<O: ScanOp<T>, T: ScanElem>(a: &[T], segs: &Segments) -> Vec<T> {
    assert_eq!(a.len(), segs.len(), "seg_distribute length mismatch");
    let inc = seg_inclusive_scan::<O, T>(a, segs);
    let mut out = Vec::with_capacity(a.len());
    for (s, e) in segs.ranges() {
        let total = inc[e - 1];
        out.extend(std::iter::repeat_n(total, e - s));
    }
    out
}

/// Checked [`seg_distribute`]: `Err(Error::LengthMismatch)` instead of
/// panicking.
pub fn try_seg_distribute<O: ScanOp<T>, T: ScanElem>(a: &[T], segs: &Segments) -> Result<Vec<T>> {
    check_seg_len(a.len(), segs)?;
    Ok(seg_distribute::<O, T>(a, segs))
}

/// Offset of each element's segment head (the base address of the
/// segment each element lives in).
pub fn seg_offsets(segs: &Segments) -> Vec<usize> {
    segs.head_index_per_element()
}

/// Segmented `split`: within each segment independently, pack `false`
/// elements to the bottom and `true` elements to the top, preserving
/// order within both groups. Segment boundaries are unchanged.
pub fn seg_split<T: ScanElem>(a: &[T], flags: &[bool], segs: &Segments) -> Vec<T> {
    let index = seg_split_index(flags, segs);
    permute_unchecked(a, &index)
}

/// Checked [`seg_split`]: `Err(Error::LengthMismatch)` instead of
/// panicking.
pub fn try_seg_split<T: ScanElem>(a: &[T], flags: &[bool], segs: &Segments) -> Result<Vec<T>> {
    check_seg_len(a.len(), segs)?;
    check_seg_len(flags.len(), segs)?;
    Ok(seg_split(a, flags, segs))
}

/// Checked [`seg_split_index`]: `Err(Error::LengthMismatch)` instead of
/// panicking.
pub fn try_seg_split_index(flags: &[bool], segs: &Segments) -> Result<Vec<usize>> {
    check_seg_len(flags.len(), segs)?;
    Ok(seg_split_index(flags, segs))
}

/// Destination index of each element under [`seg_split`].
pub fn seg_split_index(flags: &[bool], segs: &Segments) -> Vec<usize> {
    assert_eq!(flags.len(), segs.len(), "seg_split length mismatch");
    let not_flags = parallel::map_by(flags, |f| !f);
    let enum_false = seg_enumerate(&not_flags, segs);
    let enum_true = seg_enumerate(flags, segs);
    // Falses in each segment, distributed to every element of the segment.
    let ones = parallel::map_by(&not_flags, usize::from);
    let n_false = seg_distribute::<Sum, _>(&ones, segs);
    let base = seg_offsets(segs);
    (0..flags.len())
        .map(|i| {
            base[i]
                + if flags[i] {
                    n_false[i] + enum_true[i]
                } else {
                    enum_false[i]
                }
        })
        .collect()
}

/// Result of a segmented three-way split ([`seg_split3`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SegSplit3<T> {
    /// The permuted values: within each old segment, `Lo` then `Mid`
    /// then `Hi`, each group in original order.
    pub values: Vec<T>,
    /// The refined segmentation: every nonempty group of every old
    /// segment becomes a segment of its own (quicksort step 4).
    pub segments: Segments,
    /// Destination index each source element was moved to.
    pub index: Vec<usize>,
}

/// Segmented three-way split with segment refinement — the heart of the
/// paper's quicksort (§2.3.1, Figure 5): within each segment, move `Lo`
/// elements first, `Mid` second, `Hi` last, and start a new segment at
/// the head of each nonempty group.
pub fn seg_split3<T: ScanElem>(a: &[T], buckets: &[Bucket], segs: &Segments) -> SegSplit3<T> {
    assert_eq!(a.len(), buckets.len(), "seg_split3 length mismatch");
    assert_eq!(a.len(), segs.len(), "seg_split3 length mismatch");
    seg_split3_inner(a, buckets, segs)
}

/// Checked [`seg_split3`]: `Err(Error::LengthMismatch)` instead of
/// panicking.
pub fn try_seg_split3<T: ScanElem>(
    a: &[T],
    buckets: &[Bucket],
    segs: &Segments,
) -> Result<SegSplit3<T>> {
    if a.len() != buckets.len() {
        return Err(Error::LengthMismatch {
            expected: a.len(),
            actual: buckets.len(),
        });
    }
    check_seg_len(a.len(), segs)?;
    Ok(seg_split3_inner(a, buckets, segs))
}

fn seg_split3_inner<T: ScanElem>(a: &[T], buckets: &[Bucket], segs: &Segments) -> SegSplit3<T> {
    let is = |b: Bucket| -> Vec<usize> {
        buckets.iter().map(|&x| usize::from(x == b)).collect()
    };
    let lo = is(Bucket::Lo);
    let mid = is(Bucket::Mid);
    let enum_lo = seg_scan::<Sum, _>(&lo, segs);
    let enum_mid = seg_scan::<Sum, _>(&mid, segs);
    let hi = is(Bucket::Hi);
    let enum_hi = seg_scan::<Sum, _>(&hi, segs);
    let n_lo = seg_distribute::<Sum, _>(&lo, segs);
    let n_mid = seg_distribute::<Sum, _>(&mid, segs);
    let base = seg_offsets(segs);
    let index: Vec<usize> = (0..a.len())
        .map(|i| {
            base[i]
                + match buckets[i] {
                    Bucket::Lo => enum_lo[i],
                    Bucket::Mid => n_lo[i] + enum_mid[i],
                    Bucket::Hi => n_lo[i] + n_mid[i] + enum_hi[i],
                }
        })
        .collect();
    let values = permute_unchecked(a, &index);
    // New segment heads: the first element of each nonempty group. An
    // element is first of its group exactly when its within-group
    // enumerate is zero, so scatter a flag to its destination.
    let mut flags = vec![false; a.len()];
    for i in 0..a.len() {
        let first_of_group = match buckets[i] {
            Bucket::Lo => enum_lo[i] == 0,
            Bucket::Mid => enum_mid[i] == 0,
            Bucket::Hi => enum_hi[i] == 0,
        };
        if first_of_group {
            flags[index[i]] = true;
        }
    }
    SegSplit3 {
        values,
        segments: Segments::from_flags(flags),
        index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Max, Min};

    fn segs(flags: &[bool]) -> Segments {
        Segments::from_flags(flags.to_vec())
    }

    #[test]
    fn seg_enumerate_restarts() {
        let f = [true, true, false, true, false, true];
        let s = segs(&[true, false, false, true, false, false]);
        assert_eq!(seg_enumerate(&f, &s), vec![0, 1, 2, 0, 1, 1]);
    }

    #[test]
    fn seg_copy_broadcasts_heads() {
        let a = [7u32, 1, 2, 9, 3, 4];
        let s = segs(&[true, false, false, true, false, false]);
        assert_eq!(seg_copy(&a, &s), vec![7, 7, 7, 9, 9, 9]);
    }

    #[test]
    fn seg_reduce_and_distribute() {
        let a = [1u32, 2, 3, 10, 20, 5];
        let s = segs(&[true, false, false, true, false, true]);
        assert_eq!(seg_reduce::<Sum, _>(&a, &s), vec![6, 30, 5]);
        assert_eq!(
            seg_distribute::<Sum, _>(&a, &s),
            vec![6, 6, 6, 30, 30, 5]
        );
        assert_eq!(seg_reduce::<Max, _>(&a, &s), vec![3, 20, 5]);
        assert_eq!(seg_reduce::<Min, _>(&a, &s), vec![1, 10, 5]);
    }

    #[test]
    fn seg_split_within_segments() {
        let a = [1u32, 2, 3, 4, 5, 6];
        // segments [1 2 3][4 5 6]; flags T F T | F T F
        let s = segs(&[true, false, false, true, false, false]);
        let f = [true, false, true, false, true, false];
        // seg 0: falses [2], trues [1 3] -> [2 1 3]
        // seg 1: falses [4 6], trues [5] -> [4 6 5]
        assert_eq!(seg_split(&a, &f, &s), vec![2, 1, 3, 4, 6, 5]);
    }

    #[test]
    fn seg_split_single_segment_matches_split() {
        let a = [5u32, 7, 3, 1, 4, 2, 7, 2];
        let f = [true, true, true, true, false, false, true, false];
        let s = Segments::single(8);
        assert_eq!(seg_split(&a, &f, &s), crate::ops::split(&a, &f));
    }

    #[test]
    fn seg_split3_refines_segments() {
        use Bucket::*;
        // One segment [6 2 9 6 1], pivot 6: [> < = ... ] style
        let a = [6u32, 2, 9, 6, 1];
        let b = [Mid, Lo, Hi, Mid, Lo];
        let s = Segments::single(5);
        let r = seg_split3(&a, &b, &s);
        assert_eq!(r.values, vec![2, 1, 6, 6, 9]);
        assert_eq!(
            r.segments.flags(),
            &[true, false, true, false, true],
            "each nonempty group becomes a segment"
        );
    }

    #[test]
    fn seg_split3_empty_groups_make_no_segments() {
        use Bucket::*;
        let a = [4u32, 4];
        let b = [Mid, Mid];
        let s = Segments::single(2);
        let r = seg_split3(&a, &b, &s);
        assert_eq!(r.values, vec![4, 4]);
        assert_eq!(r.segments.flags(), &[true, false]);
        assert_eq!(r.segments.count(), 1);
    }

    #[test]
    fn seg_split3_multiple_segments() {
        use Bucket::*;
        // segments [3 1 2] and [9 7]
        let a = [3u32, 1, 2, 9, 7];
        let s = segs(&[true, false, false, true, false]);
        let b = [Mid, Lo, Lo, Mid, Lo];
        let r = seg_split3(&a, &b, &s);
        assert_eq!(r.values, vec![1, 2, 3, 7, 9]);
        assert_eq!(r.segments.flags(), &[true, false, true, true, true]);
    }

    #[test]
    fn seg_offsets_are_bases() {
        let s = segs(&[true, false, true, false, false]);
        assert_eq!(seg_offsets(&s), vec![0, 0, 2, 2, 2]);
    }

    #[test]
    fn try_variants_match_and_reject() {
        use crate::error::Error;
        let a = [1u32, 2, 3, 10, 20, 5];
        let s = segs(&[true, false, false, true, false, true]);
        assert_eq!(try_seg_copy(&a, &s), Ok(seg_copy(&a, &s)));
        assert_eq!(
            try_seg_reduce::<Sum, _>(&a, &s),
            Ok(seg_reduce::<Sum, _>(&a, &s))
        );
        assert_eq!(
            try_seg_distribute::<Max, _>(&a, &s),
            Ok(seg_distribute::<Max, _>(&a, &s))
        );
        let f = [true, false, true, false, true, false];
        assert_eq!(try_seg_split(&a, &f, &s), Ok(seg_split(&a, &f, &s)));
        assert_eq!(
            try_seg_split_index(&f, &s),
            Ok(seg_split_index(&f, &s))
        );
        use Bucket::*;
        let b = [Mid, Lo, Hi, Mid, Lo, Hi];
        assert_eq!(try_seg_split3(&a, &b, &s), Ok(seg_split3(&a, &b, &s)));

        let short = [1u32, 2];
        let err = Error::LengthMismatch {
            expected: 6,
            actual: 2,
        };
        assert_eq!(try_seg_copy(&short, &s), Err(err.clone()));
        assert_eq!(try_seg_reduce::<Sum, _>(&short, &s), Err(err.clone()));
        assert_eq!(try_seg_distribute::<Sum, _>(&short, &s), Err(err.clone()));
        assert_eq!(try_seg_split(&short, &f[..2], &s), Err(err.clone()));
        assert_eq!(try_seg_split_index(&f[..2], &s), Err(err));
        assert_eq!(
            try_seg_split3(&a, &b[..2], &s),
            Err(Error::LengthMismatch {
                expected: 6,
                actual: 2
            })
        );
    }
}
