//! The execution engine: blocked two-pass parallel scans over scoped
//! OS threads.
//!
//! Every scan in this crate funnels through [`exclusive_scan_by`] /
//! [`inclusive_scan_by`], which take the operator as a closure so that
//! composite operators (e.g. the segmented-scan pair operator, see
//! [`crate::segmented`]) reuse the same engine.
//!
//! The parallel algorithm is the classic work-efficient two-pass scheme,
//! which is the flat rendering of the tree algorithm of the paper's §3.1:
//!
//! 1. **Up sweep** — split the input into `B` contiguous blocks; each
//!    worker reduces its block (`B` partial sums).
//! 2. Exclusive scan of the `B` block sums (tiny, sequential).
//! 3. **Down sweep** — each worker re-scans its block locally, seeded
//!    with its block's offset from step 2.
//!
//! Total work is `2n` combines — twice sequential, like the paper's tree
//! circuit — and span is `O(n/p + p)`. Below [`PAR_THRESHOLD`] elements
//! the sequential loop wins and is used directly.
//!
//! Workers are `std::thread::scope` threads spawned per call (one per
//! block, a small constant multiple of the core count), which keeps the
//! crate dependency-free; the spawn cost is amortized by the
//! [`PAR_THRESHOLD`] floor on parallel input sizes.

/// Inputs shorter than this are scanned sequentially; the fork/join and
/// extra pass overhead does not pay for itself below roughly this size.
pub const PAR_THRESHOLD: usize = 1 << 14;

/// Sequential exclusive scan with an explicit operator. Reference
/// implementation for the whole crate: everything else must agree with it.
pub fn seq_exclusive_scan_by<T, F>(a: &[T], identity: T, f: F) -> Vec<T>
where
    T: Copy,
    F: Fn(T, T) -> T,
{
    let mut out = Vec::with_capacity(a.len());
    let mut acc = identity;
    for &x in a {
        out.push(acc);
        acc = f(acc, x);
    }
    out
}

/// Sequential inclusive scan with an explicit operator.
pub fn seq_inclusive_scan_by<T, F>(a: &[T], identity: T, f: F) -> Vec<T>
where
    T: Copy,
    F: Fn(T, T) -> T,
{
    let mut out = Vec::with_capacity(a.len());
    let mut acc = identity;
    for &x in a {
        acc = f(acc, x);
        out.push(acc);
    }
    out
}

/// Sequential reduction with an explicit operator.
pub fn seq_reduce_by<T, F>(a: &[T], identity: T, f: F) -> T
where
    T: Copy,
    F: Fn(T, T) -> T,
{
    let mut acc = identity;
    for &x in a {
        acc = f(acc, x);
    }
    acc
}

fn workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn block_size(n: usize) -> usize {
    // Aim for ~4 blocks per worker so the tail imbalance stays small,
    // but keep blocks large enough to amortize the second pass (and the
    // per-block thread spawn).
    (n / (4 * workers().max(1))).max(PAR_THRESHOLD / 4).max(1)
}

/// Join a scoped worker, propagating any payload panic unchanged.
fn join<T>(h: std::thread::ScopedJoinHandle<'_, T>) -> T {
    h.join()
        .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
}

/// Up sweep shared by the scans and the reduction: one partial
/// reduction per block, computed on scoped threads.
fn block_partials<T, F>(a: &[T], bs: usize, identity: T, f: &F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    std::thread::scope(|s| {
        let handles: Vec<_> = a
            .chunks(bs)
            .map(|c| s.spawn(move || seq_reduce_by(c, identity, f)))
            .collect();
        handles.into_iter().map(join).collect()
    })
}

/// Exclusive scan; parallel above [`PAR_THRESHOLD`], sequential below.
///
/// `f` must be associative with identity `identity`; the blocked schedule
/// reassociates combines across blocks.
pub fn exclusive_scan_by<T, F>(a: &[T], identity: T, f: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    if a.len() < PAR_THRESHOLD {
        return seq_exclusive_scan_by(a, identity, f);
    }
    let bs = block_size(a.len());
    let partials = block_partials(a, bs, identity, &f);
    // Scan of block sums (small, sequential).
    let offsets = seq_exclusive_scan_by(&partials, identity, &f);
    // Down sweep: local exclusive scan seeded with the block offset.
    let mut out: Vec<T> = vec![identity; a.len()];
    std::thread::scope(|s| {
        for ((out_c, in_c), &off) in out.chunks_mut(bs).zip(a.chunks(bs)).zip(&offsets) {
            let f = &f;
            s.spawn(move || {
                let mut acc = off;
                for (o, &x) in out_c.iter_mut().zip(in_c) {
                    *o = acc;
                    acc = f(acc, x);
                }
            });
        }
    });
    out
}

/// Inclusive scan; parallel above [`PAR_THRESHOLD`], sequential below.
pub fn inclusive_scan_by<T, F>(a: &[T], identity: T, f: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    if a.len() < PAR_THRESHOLD {
        return seq_inclusive_scan_by(a, identity, f);
    }
    let bs = block_size(a.len());
    let partials = block_partials(a, bs, identity, &f);
    let offsets = seq_exclusive_scan_by(&partials, identity, &f);
    let mut out: Vec<T> = vec![identity; a.len()];
    std::thread::scope(|s| {
        for ((out_c, in_c), &off) in out.chunks_mut(bs).zip(a.chunks(bs)).zip(&offsets) {
            let f = &f;
            s.spawn(move || {
                let mut acc = off;
                for (o, &x) in out_c.iter_mut().zip(in_c) {
                    acc = f(acc, x);
                    *o = acc;
                }
            });
        }
    });
    out
}

/// Reduction; parallel above [`PAR_THRESHOLD`].
pub fn reduce_by<T, F>(a: &[T], identity: T, f: F) -> T
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    if a.len() < PAR_THRESHOLD {
        return seq_reduce_by(a, identity, f);
    }
    let bs = block_size(a.len());
    let partials = block_partials(a, bs, identity, &f);
    seq_reduce_by(&partials, identity, &f)
}

/// Parallel elementwise map into a fresh vector (the paper's per-processor
/// arithmetic step, §2.1). Sequential below the threshold.
pub fn map_by<T, U, F>(a: &[T], f: F) -> Vec<U>
where
    T: Copy + Send + Sync,
    U: Copy + Send + Sync,
    F: Fn(T) -> U + Sync,
{
    if a.len() < PAR_THRESHOLD {
        return a.iter().map(|&x| f(x)).collect();
    }
    let bs = block_size(a.len());
    let parts: Vec<Vec<U>> = std::thread::scope(|s| {
        let handles: Vec<_> = a
            .chunks(bs)
            .map(|c| {
                let f = &f;
                s.spawn(move || c.iter().map(|&x| f(x)).collect::<Vec<U>>())
            })
            .collect();
        handles.into_iter().map(join).collect()
    });
    let mut out = Vec::with_capacity(a.len());
    for p in parts {
        out.extend_from_slice(&p);
    }
    out
}

/// Parallel elementwise zip-map of two equal-length vectors.
///
/// # Panics
/// If the lengths differ.
pub fn zip_by<A, B, U, F>(a: &[A], b: &[B], f: F) -> Vec<U>
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
    U: Copy + Send + Sync,
    F: Fn(A, B) -> U + Sync,
{
    assert_eq!(a.len(), b.len(), "zip_by length mismatch");
    if a.len() < PAR_THRESHOLD {
        return a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect();
    }
    let bs = block_size(a.len());
    let parts: Vec<Vec<U>> = std::thread::scope(|s| {
        let handles: Vec<_> = a
            .chunks(bs)
            .zip(b.chunks(bs))
            .map(|(ca, cb)| {
                let f = &f;
                s.spawn(move || {
                    ca.iter()
                        .zip(cb)
                        .map(|(&x, &y)| f(x, y))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        handles.into_iter().map(join).collect()
    });
    let mut out = Vec::with_capacity(a.len());
    for p in parts {
        out.extend_from_slice(&p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_exclusive_matches_paper_example() {
        let a = [2u64, 1, 2, 3, 5, 8, 13, 21];
        assert_eq!(
            seq_exclusive_scan_by(&a, 0, |x, y| x + y),
            vec![0, 2, 3, 5, 8, 13, 21, 34]
        );
    }

    #[test]
    fn empty_and_single() {
        let e: [u32; 0] = [];
        assert!(seq_exclusive_scan_by(&e, 0, |a, b| a + b).is_empty());
        assert!(exclusive_scan_by(&e, 0, |a, b| a + b).is_empty());
        assert_eq!(seq_exclusive_scan_by(&[7u32], 0, |a, b| a + b), vec![0]);
        assert_eq!(seq_inclusive_scan_by(&[7u32], 0, |a, b| a + b), vec![7]);
    }

    #[test]
    fn par_matches_seq_exclusive() {
        let n = PAR_THRESHOLD * 3 + 17;
        let a: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(2654435761)).collect();
        let seq = seq_exclusive_scan_by(&a, 0, |x, y| x.wrapping_add(y));
        let par = exclusive_scan_by(&a, 0, |x, y| x.wrapping_add(y));
        assert_eq!(seq, par);
    }

    #[test]
    fn par_matches_seq_inclusive_max() {
        let n = PAR_THRESHOLD * 2 + 3;
        let a: Vec<u64> = (0..n as u64).map(|i| (i * 48271) % 104729).collect();
        let seq = seq_inclusive_scan_by(&a, 0, |x, y| x.max(y));
        let par = inclusive_scan_by(&a, 0, |x, y| x.max(y));
        assert_eq!(seq, par);
    }

    #[test]
    fn reduce_matches() {
        let n = PAR_THRESHOLD * 2 + 5;
        let a: Vec<u64> = (0..n as u64).collect();
        assert_eq!(
            reduce_by(&a, 0, |x, y| x + y),
            (n as u64 - 1) * (n as u64) / 2
        );
    }

    #[test]
    fn map_and_zip() {
        let a: Vec<u32> = (0..100).collect();
        let b: Vec<u32> = (0..100).map(|i| i * 2).collect();
        assert_eq!(map_by(&a, |x| x + 1)[99], 100);
        assert_eq!(zip_by(&a, &b, |x, y| x + y)[10], 30);
        let big: Vec<u32> = (0..PAR_THRESHOLD as u32 * 2).collect();
        let m = map_by(&big, |x| x ^ 1);
        assert_eq!(m[5], 4);
        assert_eq!(m.len(), big.len());
        let zipped = zip_by(&big, &big, |x, y| x + y);
        assert_eq!(zipped[9], 18);
        assert_eq!(zipped.len(), big.len());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn zip_length_mismatch_panics() {
        zip_by(&[1u32, 2], &[1u32], |a, b| a + b);
    }
}
