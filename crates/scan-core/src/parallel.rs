//! The execution engine: blocked two-pass parallel scans over a
//! persistent worker pool, with fused map/scan/reduce kernels.
//!
//! Every scan in this crate funnels through one generic blocked engine.
//! The engine reads its input through a *load* closure and writes its
//! output through an *emit* closure, which is what lets the derived
//! operations fuse away their intermediate vectors: `enumerate` loads
//! `usize::from(flag[i])` instead of materializing a 0/1 vector,
//! segmented scans load `(value, flag)` pairs on the fly, and backward
//! scans walk the blocks right-to-left instead of allocating a reversed
//! copy of the input.
//!
//! The parallel algorithm is the classic work-efficient two-pass scheme,
//! the flat rendering of the tree algorithm of the paper's §3.1:
//!
//! 1. **Up sweep** — split the input into `B` balanced contiguous
//!    blocks; each worker reduces its block (`B` partial sums).
//! 2. Exclusive scan of the `B` block sums (tiny, sequential). The
//!    final accumulator of this step is the total reduction, which
//!    [`scan_with_total_by`] returns without any extra pass.
//! 3. **Down sweep** — each worker re-scans its block locally, seeded
//!    with its block's offset from step 2, writing directly into the
//!    (uninitialized) output buffer.
//!
//! Total work is `2n` combines — twice sequential, like the paper's tree
//! circuit — and span is `O(n/p + p)`. Below [`PAR_THRESHOLD`] elements
//! the sequential loop wins and is used directly.
//!
//! Work is executed by the lazily-initialized global worker pool
//! ([`crate::pool`]); a pool of width 1 (e.g. `SCAN_CORE_THREADS=1`)
//! falls back to the sequential kernels. The seed engine's per-call
//! `thread::scope` spawning survives as [`Schedule::Spawn`], a reference
//! schedule used to differential-test and benchmark the pool against.
//! Both schedules use the same block plan, so for a given pool width
//! they reassociate the operator identically and produce bit-identical
//! results even for non-associative operators like float addition.
//!
//! Two orthogonal upgrades close the gap to the memcpy roofline:
//!
//! - **SIMD tiles** ([`crate::simd`]): when the operator registers a
//!   vectorized tile kernel (exact integer `+`/`max`, plain or
//!   segmented pairs), every span — sequential, blocked, or lookback —
//!   stages loads through an L1-resident buffer and scans it in
//!   register instead of element-at-a-time.
//! - **Single-pass lookback** ([`Schedule::Lookback`],
//!   [`crate::lookback`]): replaces the two passes over the input with
//!   one, chaining block offsets through a descriptor array instead of
//!   a barriered offset scan. The two-pass engine stays as the
//!   differential baseline, exactly like `Spawn`.

use crate::deadline::ScanDeadline;
use crate::error::ExecError;
use crate::pool;
use crate::simd::SimdTile;
use crate::sync::ConfigCell;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Inputs shorter than this are scanned sequentially; the extra pass
/// and cross-thread handoff do not pay for themselves below roughly
/// this size.
pub const PAR_THRESHOLD: usize = 1 << 14;

/// Smallest block worth handing to a worker (amortizes the handoff and
/// the second pass).
const MIN_BLOCK: usize = PAR_THRESHOLD / 4;

/// Test-only override of [`PAR_THRESHOLD`] (0 = off, the default).
///
/// The unsafe kernels only run above the threshold, so proving them
/// with Miri at the production size (16Ki elements, interpreted
/// instruction by instruction) would take hours. The sanitizer test
/// profile sets this to a few hundred so the blocked path — disjoint
/// uninitialized writes, `set_len`, cross-thread handoff — runs on
/// Miri-sized inputs. [`MIN_BLOCK`] scales with it (override / 4) so
/// the block plan keeps its production shape.
static PAR_OVERRIDE: ConfigCell = ConfigCell::new(0);

/// Set the [`PAR_THRESHOLD`] override (`0` restores the default).
/// Process-wide; for sanitizer/test profiles only.
#[doc(hidden)]
pub fn set_par_threshold_override(n: usize) {
    PAR_OVERRIDE.set(n);
}

/// Effective parallel threshold (the override, if set).
pub(crate) fn par_threshold() -> usize {
    match PAR_OVERRIDE.get() {
        0 => PAR_THRESHOLD,
        n => n,
    }
}

/// Effective minimum block size, scaled to the active threshold.
fn min_block() -> usize {
    match PAR_OVERRIDE.get() {
        0 => MIN_BLOCK,
        n => (n / 4).max(1),
    }
}

/// Elements processed between cancellation checks inside a block on the
/// fallible (`try_*`) paths. Coarse enough that the check (two relaxed
/// atomic loads once an expiry is latched) vanishes in the combine
/// work, fine enough that a cancel is observed in microseconds.
pub(crate) const CANCEL_STRIDE: usize = 4096;

/// How the blocked engine executes its blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// The persistent global worker pool (the default).
    Pooled,
    /// Fresh scoped OS threads per call — the seed engine's schedule,
    /// kept as a reference for differential tests and benchmarks.
    Spawn,
    /// Force the sequential kernels regardless of input size.
    Sequential,
    /// Single-pass decoupled lookback over the pool: each block scans
    /// once and chains its offset through a descriptor array
    /// ([`crate::lookback`]) instead of a second pass. Reassociates
    /// like the sequential kernel *per block*, but the block
    /// decomposition differs from the two-pass plan, so only exact
    /// (freely reassociable) operators should compare bit-identical
    /// across schedules.
    Lookback,
}

static DEFAULT_SCHEDULE: ConfigCell = ConfigCell::new(0);

/// Set the schedule used by every entry point that does not take an
/// explicit one (process-wide). Intended for benchmarks and tests that
/// compare engines; library code should leave this at
/// [`Schedule::Pooled`].
pub fn set_default_schedule(s: Schedule) {
    let v = match s {
        Schedule::Pooled => 0,
        Schedule::Spawn => 1,
        Schedule::Sequential => 2,
        Schedule::Lookback => 3,
    };
    DEFAULT_SCHEDULE.set(v);
}

/// The schedule currently used by the implicit-schedule entry points.
pub fn default_schedule() -> Schedule {
    match DEFAULT_SCHEDULE.get() {
        1 => Schedule::Spawn,
        2 => Schedule::Sequential,
        3 => Schedule::Lookback,
        _ => Schedule::Pooled,
    }
}

/// Sequential exclusive scan with an explicit operator. Reference
/// implementation for the whole crate: everything else must agree with it.
pub fn seq_exclusive_scan_by<T, F>(a: &[T], identity: T, f: F) -> Vec<T>
where
    T: Copy,
    F: Fn(T, T) -> T,
{
    let mut out = Vec::with_capacity(a.len());
    let mut acc = identity;
    for &x in a {
        out.push(acc);
        acc = f(acc, x);
    }
    out
}

/// Sequential inclusive scan with an explicit operator.
pub fn seq_inclusive_scan_by<T, F>(a: &[T], identity: T, f: F) -> Vec<T>
where
    T: Copy,
    F: Fn(T, T) -> T,
{
    let mut out = Vec::with_capacity(a.len());
    let mut acc = identity;
    for &x in a {
        acc = f(acc, x);
        out.push(acc);
    }
    out
}

/// Sequential reduction with an explicit operator.
pub fn seq_reduce_by<T, F>(a: &[T], identity: T, f: F) -> T
where
    T: Copy,
    F: Fn(T, T) -> T,
{
    let mut acc = identity;
    for &x in a {
        acc = f(acc, x);
    }
    acc
}

/// Traversal direction + exclusive/inclusive flavor of a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// The paper's scan: forward, element `i` excluded from its output.
    ExclusiveFwd,
    /// Forward, element `i` included.
    InclusiveFwd,
    /// Right-to-left, element `i` excluded.
    ExclusiveBwd,
    /// Right-to-left, element `i` included.
    InclusiveBwd,
}

impl Mode {
    pub(crate) fn backward(self) -> bool {
        matches!(self, Mode::ExclusiveBwd | Mode::InclusiveBwd)
    }

    fn inclusive(self) -> bool {
        matches!(self, Mode::InclusiveFwd | Mode::InclusiveBwd)
    }
}

/// Raw output pointer that may cross thread boundaries.
///
/// SAFETY: every engine task writes a disjoint index range, and the
/// engine joins all tasks (pool completion or scope join, both of which
/// establish happens-before) before reading the buffer.
pub(crate) struct SendPtr<T>(*mut T);

// SAFETY: `SendPtr` is a capability to write disjoint indices of one
// buffer from multiple threads (see the type docs); the pointee is
// `Send`, every task writes a range no other task touches, and the
// engine joins all tasks before reading, so cross-thread moves of the
// wrapper are sound.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: shared references to `SendPtr` only expose the raw pointer
// (`get`), never a `&T`/`&mut T`; aliasing discipline is enforced at
// the write sites (disjoint index ranges per task, see above).
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Wrap a raw output pointer; the caller promises the disjoint-write
    /// + join discipline documented on the type.
    pub(crate) fn new(p: *mut T) -> Self {
        SendPtr(p)
    }

    /// Accessor (rather than field access) so closures capture the whole
    /// `SendPtr` — edition-2021 disjoint capture would otherwise grab the
    /// raw `*mut T` field, which is not `Sync`.
    pub(crate) fn get(self) -> *mut T {
        self.0
    }
}

/// Execute `task(0..nblocks)` under the given schedule. Panics in tasks
/// propagate to the caller under every schedule.
pub(crate) fn run_blocks<F: Fn(usize) + Sync>(sched: Schedule, nblocks: usize, task: F) {
    match sched {
        // Under `cfg(loom)` there is no global pool (a static would
        // leak state across explored executions), so the pooled
        // schedule degrades to the sequential loop; the loom suite
        // models `WorkerPool` directly instead. `Lookback` reaches
        // here only for its non-scan phases (reduce/fill), which run
        // on the pool like `Pooled`.
        #[cfg(not(loom))]
        Schedule::Pooled | Schedule::Lookback => pool::global().run(nblocks, task),
        #[cfg(loom)]
        Schedule::Pooled | Schedule::Lookback => {
            for b in 0..nblocks {
                task(b);
            }
        }
        Schedule::Spawn => {
            std::thread::scope(|s| {
                for b in 0..nblocks {
                    let task = &task;
                    s.spawn(move || task(b));
                }
            });
        }
        Schedule::Sequential => {
            for b in 0..nblocks {
                task(b);
            }
        }
    }
}

/// Number of execution lanes the schedule will use. Both parallel
/// schedules plan against the pool width so their block decomposition
/// (and hence operator reassociation) is identical.
pub(crate) fn engine_width(sched: Schedule) -> usize {
    match sched {
        Schedule::Sequential => 1,
        Schedule::Spawn | Schedule::Pooled | Schedule::Lookback => pool::global_threads(),
    }
}

/// Should `n` elements run on the blocked parallel path?
pub(crate) fn go_parallel(sched: Schedule, n: usize) -> bool {
    n >= par_threshold()
        && match sched {
            Schedule::Sequential => false,
            // Spawning works regardless of pool width (the seed engine
            // spawned threads even on one core); the pool degrades to
            // sequential when it has a single lane.
            Schedule::Spawn => true,
            Schedule::Pooled => pool::global_threads() > 1,
            // Lookback pays off at any width: even inline on a width-1
            // pool it reads the input once instead of twice.
            Schedule::Lookback => true,
        }
}

/// Number of balanced blocks for an `n`-element input on `workers`
/// lanes: at most 4 blocks per worker, each at least [`MIN_BLOCK`]
/// elements, and — when there are more blocks than workers — a multiple
/// of the worker count so no worker is left holding a lone tail block.
pub(crate) fn plan_blocks(n: usize, workers: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let workers = workers.max(1);
    let mut b = (n / min_block()).clamp(1, 4 * workers);
    if b > workers {
        b -= b % workers;
    }
    b
}

/// Half-open index range of block `b` of `nblocks` over `n` elements.
/// Blocks partition `0..n` and differ in length by at most one.
pub(crate) fn block_range(n: usize, nblocks: usize, b: usize) -> core::ops::Range<usize> {
    let base = n / nblocks;
    let rem = n % nblocks;
    let start = b * base + b.min(rem);
    start..start + base + usize::from(b < rem)
}

/// One contiguous span of a scan, in traversal order, optionally
/// staged through a SIMD tile kernel. `write(i, state)` receives each
/// index's scan state (pre- or post-combine per `mode`); the return
/// value is the carry-out — the inclusive fold of the span into
/// `seed`. Every scan path (sequential, blocked down sweep, lookback
/// block) funnels through this one loop.
pub(crate) fn scan_span<S, L, F, W>(
    r: core::ops::Range<usize>,
    load: &L,
    seed: S,
    f: &F,
    mode: Mode,
    tile: Option<&SimdTile<S>>,
    write: &mut W,
) -> S
where
    S: Copy,
    L: Fn(usize) -> S,
    F: Fn(S, S) -> S,
    W: FnMut(usize, S),
{
    let Some(t) = tile else {
        // Scalar reference loop — unchanged association and traversal.
        let mut acc = seed;
        if mode.backward() {
            for i in r.rev() {
                let x = load(i);
                if mode.inclusive() {
                    acc = f(acc, x);
                    write(i, acc);
                } else {
                    write(i, acc);
                    acc = f(acc, x);
                }
            }
        } else {
            for i in r {
                let x = load(i);
                if mode.inclusive() {
                    acc = f(acc, x);
                    write(i, acc);
                } else {
                    write(i, acc);
                    acc = f(acc, x);
                }
            }
        }
        return acc;
    };
    // Tiled path: stage up to TILE loads in an L1-resident buffer (in
    // index order), scan it in register, hand the states to `write`.
    // Tiles exist only for exact operators, so the reassociation
    // inside the kernel cannot change any bit of the result.
    let mut buf: Vec<S> = Vec::with_capacity(crate::simd::TILE.min(r.len()));
    let mut acc = seed;
    if mode.backward() {
        let mut hi = r.end;
        while hi > r.start {
            let lo = hi - (hi - r.start).min(crate::simd::TILE);
            buf.clear();
            buf.extend((lo..hi).map(load));
            acc = (t.bwd)(&mut buf, acc, mode.inclusive());
            for (k, &s) in buf.iter().enumerate() {
                write(lo + k, s);
            }
            hi = lo;
        }
    } else {
        let mut lo = r.start;
        while lo < r.end {
            let hi = (lo + crate::simd::TILE).min(r.end);
            buf.clear();
            buf.extend((lo..hi).map(load));
            acc = (t.fwd)(&mut buf, acc, mode.inclusive());
            for (k, &s) in buf.iter().enumerate() {
                write(lo + k, s);
            }
            lo = hi;
        }
    }
    acc
}

/// Fallible [`scan_span`]: checks the deadline between strides and
/// returns `(carry, bailed)` — on a bail the carry is garbage and the
/// caller must discard the pass (the token latch makes the post-phase
/// check authoritative).
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_scan_span<S, L, F, W>(
    r: core::ops::Range<usize>,
    load: &L,
    seed: S,
    f: &F,
    mode: Mode,
    tile: Option<&SimdTile<S>>,
    d: Option<&ScanDeadline>,
    write: &mut W,
) -> (S, bool)
where
    S: Copy,
    L: Fn(usize) -> S,
    F: Fn(S, S) -> S,
    W: FnMut(usize, S),
{
    let mut acc = seed;
    if mode.backward() {
        let mut hi = r.end;
        while hi > r.start {
            let lo = hi.saturating_sub(CANCEL_STRIDE).max(r.start);
            acc = scan_span(lo..hi, load, acc, f, mode, tile, write);
            hi = lo;
            if hi > r.start && check(d).is_err() {
                return (acc, true);
            }
        }
    } else {
        let mut lo = r.start;
        while lo < r.end {
            let hi = (lo + CANCEL_STRIDE).min(r.end);
            acc = scan_span(lo..hi, load, acc, f, mode, tile, write);
            lo = hi;
            if lo < r.end && check(d).is_err() {
                return (acc, true);
            }
        }
    }
    (acc, false)
}

/// One contiguous span of a reduction in traversal order; the tiled
/// path stages each chunk in traversal order before folding, so
/// non-commutative operators (the segmented pair combine) fold in the
/// same order as the scalar loop.
pub(crate) fn reduce_span<S, L, F>(
    r: core::ops::Range<usize>,
    load: &L,
    seed: S,
    f: &F,
    mode: Mode,
    tile: Option<&SimdTile<S>>,
) -> S
where
    S: Copy,
    L: Fn(usize) -> S,
    F: Fn(S, S) -> S,
{
    let Some(t) = tile else {
        let mut acc = seed;
        if mode.backward() {
            for i in r.rev() {
                acc = f(acc, load(i));
            }
        } else {
            for i in r {
                acc = f(acc, load(i));
            }
        }
        return acc;
    };
    let mut buf: Vec<S> = Vec::with_capacity(crate::simd::TILE.min(r.len()));
    let mut acc = seed;
    if mode.backward() {
        let mut hi = r.end;
        while hi > r.start {
            let lo = hi - (hi - r.start).min(crate::simd::TILE);
            buf.clear();
            buf.extend((lo..hi).rev().map(load));
            acc = (t.reduce)(&buf, acc);
            hi = lo;
        }
    } else {
        let mut lo = r.start;
        while lo < r.end {
            let hi = (lo + crate::simd::TILE).min(r.end);
            buf.clear();
            buf.extend((lo..hi).map(load));
            acc = (t.reduce)(&buf, acc);
            lo = hi;
        }
    }
    acc
}

/// Fallible [`reduce_span`]; same contract as [`try_scan_span`].
pub(crate) fn try_reduce_span<S, L, F>(
    r: core::ops::Range<usize>,
    load: &L,
    seed: S,
    f: &F,
    mode: Mode,
    tile: Option<&SimdTile<S>>,
    d: Option<&ScanDeadline>,
) -> (S, bool)
where
    S: Copy,
    L: Fn(usize) -> S,
    F: Fn(S, S) -> S,
{
    let mut acc = seed;
    if mode.backward() {
        let mut hi = r.end;
        while hi > r.start {
            let lo = hi.saturating_sub(CANCEL_STRIDE).max(r.start);
            acc = reduce_span(lo..hi, load, acc, f, mode, tile);
            hi = lo;
            if hi > r.start && check(d).is_err() {
                return (acc, true);
            }
        }
    } else {
        let mut lo = r.start;
        while lo < r.end {
            let hi = (lo + CANCEL_STRIDE).min(r.end);
            acc = reduce_span(lo..hi, load, acc, f, mode, tile);
            lo = hi;
            if lo < r.end && check(d).is_err() {
                return (acc, true);
            }
        }
    }
    (acc, false)
}

/// Sequential fused scan: one pass, any direction, emit-projected.
fn seq_engine<S, U, L, F, E>(
    n: usize,
    load: &L,
    identity: S,
    f: &F,
    emit: &E,
    mode: Mode,
    tile: Option<&SimdTile<S>>,
) -> (Vec<U>, S)
where
    S: Copy,
    U: Copy,
    L: Fn(usize) -> S,
    F: Fn(S, S) -> S,
    E: Fn(usize, S) -> U,
{
    let mut out: Vec<U> = Vec::with_capacity(n);
    let acc = {
        let o = out.as_mut_ptr();
        // SAFETY: `scan_span` writes every index in `0..n` exactly
        // once (single-threaded), before the `set_len` below.
        let mut write = |i: usize, s: S| unsafe { o.add(i).write(emit(i, s)) };
        scan_span(0..n, load, identity, f, mode, tile, &mut write)
    };
    // SAFETY: every index in `0..n` was initialized above.
    unsafe { out.set_len(n) };
    (out, acc)
}

/// The generic blocked scan engine. Returns the emitted output vector
/// and the total reduction of all loaded values (in traversal order),
/// which costs nothing extra: it is the final accumulator of the block
/// offset scan.
///
/// `f` must be associative with identity `identity`; the blocked
/// schedule reassociates combines across blocks. A `tile` (typed
/// entry points pass [`crate::op::ScanOp::simd_tile`]) vectorizes the
/// inner loops without changing any result bit — tiles are registered
/// only for exact operators.
#[allow(clippy::too_many_arguments)]
pub(crate) fn engine<S, U, L, F, E>(
    sched: Schedule,
    n: usize,
    load: L,
    identity: S,
    f: F,
    emit: E,
    mode: Mode,
    tile: Option<&SimdTile<S>>,
) -> (Vec<U>, S)
where
    S: Copy + Send + Sync,
    U: Copy + Send + Sync,
    L: Fn(usize) -> S + Sync,
    F: Fn(S, S) -> S + Sync,
    E: Fn(usize, S) -> U + Sync,
{
    if !go_parallel(sched, n) {
        return seq_engine(n, &load, identity, &f, &emit, mode, tile);
    }
    if sched == Schedule::Lookback {
        return crate::lookback::lookback_engine(n, &load, identity, &f, &emit, mode, tile);
    }
    let nblocks = plan_blocks(n, engine_width(sched));
    if nblocks <= 1 {
        return seq_engine(n, &load, identity, &f, &emit, mode, tile);
    }

    // Up sweep: one partial reduction per block, in traversal order.
    let mut partials = vec![identity; nblocks];
    {
        let p = SendPtr(partials.as_mut_ptr());
        let load = &load;
        let f = &f;
        run_blocks(sched, nblocks, move |b| {
            let r = block_range(n, nblocks, b);
            let acc = reduce_span(r, load, identity, f, mode, tile);
            // SAFETY: task `b` writes only index `b` (see `SendPtr`).
            unsafe { p.get().add(b).write(acc) };
        });
    }

    // Scan of block sums (small, sequential), in place; the final
    // accumulator is the total reduction.
    let mut offsets = partials;
    let mut acc = identity;
    if mode.backward() {
        for o in offsets.iter_mut().rev() {
            let x = *o;
            *o = acc;
            acc = f(acc, x);
        }
    } else {
        for o in offsets.iter_mut() {
            let x = *o;
            *o = acc;
            acc = f(acc, x);
        }
    }
    let total = acc;

    // Down sweep: local re-scan seeded with the block offset, written
    // straight into uninitialized output — no identity pre-fill pass.
    let mut out: Vec<U> = Vec::with_capacity(n);
    {
        let o = SendPtr(out.as_mut_ptr());
        let offsets = &offsets;
        let load = &load;
        let f = &f;
        let emit = &emit;
        run_blocks(sched, nblocks, move |b| {
            let r = block_range(n, nblocks, b);
            // SAFETY: blocks are disjoint and cover `0..n`, so task `b`
            // writes each of its indices exactly once into the
            // uninitialized buffer before the `set_len` below.
            let mut write = |i: usize, s: S| unsafe { o.get().add(i).write(emit(i, s)) };
            scan_span(r, load, offsets[b], f, mode, tile, &mut write);
        });
    }
    // SAFETY: every index in `0..n` was initialized by exactly one block.
    unsafe { out.set_len(n) };
    (out, total)
}

/// Blocked reduction through a load closure.
pub(crate) fn reduce_engine<S, L, F>(
    sched: Schedule,
    n: usize,
    load: L,
    identity: S,
    f: F,
    tile: Option<&SimdTile<S>>,
) -> S
where
    S: Copy + Send + Sync,
    L: Fn(usize) -> S + Sync,
    F: Fn(S, S) -> S + Sync,
{
    if !go_parallel(sched, n) {
        return reduce_span(0..n, &load, identity, &f, Mode::ExclusiveFwd, tile);
    }
    let nblocks = plan_blocks(n, engine_width(sched));
    let mut partials = vec![identity; nblocks];
    {
        let p = SendPtr(partials.as_mut_ptr());
        let load = &load;
        let f = &f;
        run_blocks(sched, nblocks, move |b| {
            let r = block_range(n, nblocks, b);
            let acc = reduce_span(r, load, identity, f, Mode::ExclusiveFwd, tile);
            // SAFETY: task `b` writes only index `b`.
            unsafe { p.get().add(b).write(acc) };
        });
    }
    seq_reduce_by(&partials, identity, f)
}

/// Blocked elementwise tabulation: `out[i] = g(i)`, written straight
/// into uninitialized output.
pub(crate) fn fill_engine<U, G>(sched: Schedule, n: usize, g: G) -> Vec<U>
where
    U: Copy + Send + Sync,
    G: Fn(usize) -> U + Sync,
{
    if !go_parallel(sched, n) {
        return (0..n).map(g).collect();
    }
    let nblocks = plan_blocks(n, engine_width(sched));
    let mut out: Vec<U> = Vec::with_capacity(n);
    {
        let o = SendPtr(out.as_mut_ptr());
        let g = &g;
        run_blocks(sched, nblocks, move |b| {
            for i in block_range(n, nblocks, b) {
                // SAFETY: blocks are disjoint and cover `0..n`.
                unsafe { o.get().add(i).write(g(i)) };
            }
        });
    }
    // SAFETY: every index in `0..n` was initialized by exactly one block.
    unsafe { out.set_len(n) };
    out
}

/// Check an optional deadline token.
pub(crate) fn check(d: Option<&ScanDeadline>) -> Result<(), ExecError> {
    match d {
        Some(d) => d.check(),
        None => Ok(()),
    }
}

/// Fallible [`run_blocks`]: typed errors instead of replayed panics.
///
/// Under [`Schedule::Pooled`] this is the pool's supervised `try_run`
/// (panic containment + watchdog). The other schedules contain panics
/// locally so no schedule lets an operator panic cross this boundary.
pub(crate) fn try_run_blocks<F: Fn(usize) + Sync>(
    sched: Schedule,
    nblocks: usize,
    deadline: Option<&ScanDeadline>,
    task: F,
) -> Result<(), ExecError> {
    match sched {
        // See `run_blocks`: no global pool under `cfg(loom)`.
        #[cfg(not(loom))]
        Schedule::Pooled | Schedule::Lookback => pool::global().try_run(nblocks, deadline, task),
        #[cfg(loom)]
        Schedule::Pooled | Schedule::Lookback => {
            for b in 0..nblocks {
                if check(deadline).is_err() {
                    break;
                }
                task(b);
            }
            check(deadline)
        }
        Schedule::Spawn => {
            let r = catch_unwind(AssertUnwindSafe(|| {
                std::thread::scope(|s| {
                    for b in 0..nblocks {
                        let task = &task;
                        s.spawn(move || task(b));
                    }
                });
            }));
            if r.is_err() {
                return Err(ExecError::WorkerLost { panics: 1 });
            }
            check(deadline)
        }
        Schedule::Sequential => {
            let mut panics = 0u32;
            for b in 0..nblocks {
                if check(deadline).is_err() {
                    break;
                }
                if catch_unwind(AssertUnwindSafe(|| task(b))).is_err() {
                    panics += 1;
                }
            }
            if panics > 0 {
                return Err(ExecError::WorkerLost { panics });
            }
            check(deadline)
        }
    }
}

/// Fallible sequential fused scan: [`seq_engine`] with a deadline check
/// every [`CANCEL_STRIDE`] elements. Same traversal, same association.
#[allow(clippy::too_many_arguments)]
fn try_seq_engine<S, U, L, F, E>(
    n: usize,
    load: &L,
    identity: S,
    f: &F,
    emit: &E,
    mode: Mode,
    tile: Option<&SimdTile<S>>,
    d: Option<&ScanDeadline>,
) -> Result<(Vec<U>, S), ExecError>
where
    S: Copy,
    U: Copy,
    L: Fn(usize) -> S,
    F: Fn(S, S) -> S,
    E: Fn(usize, S) -> U,
{
    check(d)?;
    let mut out: Vec<U> = Vec::with_capacity(n);
    let (acc, bailed) = {
        let o = out.as_mut_ptr();
        // SAFETY: single-threaded; each index in `0..n` is written at
        // most once, and `set_len` below only runs on the unbailed
        // path, where every index was written.
        let mut write = |i: usize, s: S| unsafe { o.add(i).write(emit(i, s)) };
        try_scan_span(0..n, load, identity, f, mode, tile, d, &mut write)
    };
    if bailed {
        // Dropping `out` at length 0 discards the partial prefix
        // (`U: Copy`, nothing needs dropping). A bail implies the
        // token latched, so surface its error.
        return Err(check(d).err().unwrap_or(ExecError::DeadlineExceeded));
    }
    // SAFETY: the unbailed span initialized every index in `0..n`.
    unsafe { out.set_len(n) };
    Ok((out, acc))
}

/// Fallible blocked scan engine: the same block plan, traversal order
/// and operator association as [`engine`] (results are bit-identical),
/// but cooperative and contained:
///
/// - the deadline token is checked between blocks and every
///   [`CANCEL_STRIDE`] elements inside a block; a tripped token makes
///   every remaining stride bail early (the token's expiry latch makes
///   the post-phase check authoritative, so a bailed block's garbage
///   partial is never used);
/// - a panicking operator (or load/emit closure) is contained and
///   surfaces as [`ExecError::WorkerLost`] — nothing unwinds out of
///   this function.
///
/// The happy path of the *infallible* [`engine`] is untouched by all of
/// this; callers that do not opt into `try_*` pay nothing.
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_engine<S, U, L, F, E>(
    sched: Schedule,
    n: usize,
    load: L,
    identity: S,
    f: F,
    emit: E,
    mode: Mode,
    tile: Option<&SimdTile<S>>,
    deadline: Option<&ScanDeadline>,
) -> Result<(Vec<U>, S), ExecError>
where
    S: Copy + Send + Sync,
    U: Copy + Send + Sync,
    L: Fn(usize) -> S + Sync,
    F: Fn(S, S) -> S + Sync,
    E: Fn(usize, S) -> U + Sync,
{
    match catch_unwind(AssertUnwindSafe(|| {
        try_engine_inner(sched, n, &load, identity, &f, &emit, mode, tile, deadline)
    })) {
        Ok(r) => r,
        Err(_) => Err(ExecError::WorkerLost { panics: 1 }),
    }
}

/// [`try_engine`] body; panics escaping it are mapped by the wrapper.
#[allow(clippy::too_many_arguments)]
fn try_engine_inner<S, U, L, F, E>(
    sched: Schedule,
    n: usize,
    load: &L,
    identity: S,
    f: &F,
    emit: &E,
    mode: Mode,
    tile: Option<&SimdTile<S>>,
    d: Option<&ScanDeadline>,
) -> Result<(Vec<U>, S), ExecError>
where
    S: Copy + Send + Sync,
    U: Copy + Send + Sync,
    L: Fn(usize) -> S + Sync,
    F: Fn(S, S) -> S + Sync,
    E: Fn(usize, S) -> U + Sync,
{
    check(d)?;
    if !go_parallel(sched, n) {
        return try_seq_engine(n, load, identity, f, emit, mode, tile, d);
    }
    if sched == Schedule::Lookback {
        return crate::lookback::try_lookback_engine(n, load, identity, f, emit, mode, tile, d);
    }
    let nblocks = plan_blocks(n, engine_width(sched));
    if nblocks <= 1 {
        return try_seq_engine(n, load, identity, f, emit, mode, tile, d);
    }

    // Up sweep, as in `engine`, with per-stride bail-out.
    let mut partials = vec![identity; nblocks];
    {
        let p = SendPtr(partials.as_mut_ptr());
        try_run_blocks(sched, nblocks, d, move |b| {
            let r = block_range(n, nblocks, b);
            let (acc, _bailed) = try_reduce_span(r, load, identity, f, mode, tile, d);
            // A bailed block writes a garbage partial; the post-phase
            // deadline check below discards the whole pass.
            // SAFETY: task `b` writes only index `b` (see `SendPtr`).
            unsafe { p.get().add(b).write(acc) };
        })?;
    }
    // Authoritative: any bail above latched the token first.
    check(d)?;

    // Scan of block sums, identical to `engine`.
    let mut offsets = partials;
    let mut acc = identity;
    if mode.backward() {
        for o in offsets.iter_mut().rev() {
            let x = *o;
            *o = acc;
            acc = f(acc, x);
        }
    } else {
        for o in offsets.iter_mut() {
            let x = *o;
            *o = acc;
            acc = f(acc, x);
        }
    }
    let total = acc;

    // Down sweep into uninitialized output, with per-stride bail-out.
    // On any error the vector is dropped at length 0 — the partially
    // initialized tail is never exposed (`U: Copy`, nothing to drop).
    let mut out: Vec<U> = Vec::with_capacity(n);
    {
        let o = SendPtr(out.as_mut_ptr());
        let offsets = &offsets;
        try_run_blocks(sched, nblocks, d, move |b| {
            let r = block_range(n, nblocks, b);
            // SAFETY: blocks are disjoint and cover `0..n`, so each
            // write targets an index unique to this block; `set_len`
            // only runs if no block bailed (post-phase deadline check).
            let mut write = |i: usize, s: S| unsafe { o.get().add(i).write(emit(i, s)) };
            try_scan_span(r, load, offsets[b], f, mode, tile, d, &mut write);
        })?;
    }
    // Authoritative for the down sweep: a bailed block means the token
    // is latched, so we never `set_len` over uninitialized slots.
    check(d)?;
    // SAFETY: every index in `0..n` was initialized by exactly one block.
    unsafe { out.set_len(n) };
    Ok((out, total))
}

/// Fallible blocked reduction; see [`try_engine`] for the failure
/// contract.
pub(crate) fn try_reduce_engine<S, L, F>(
    sched: Schedule,
    n: usize,
    load: L,
    identity: S,
    f: F,
    tile: Option<&SimdTile<S>>,
    d: Option<&ScanDeadline>,
) -> Result<S, ExecError>
where
    S: Copy + Send + Sync,
    L: Fn(usize) -> S + Sync,
    F: Fn(S, S) -> S + Sync,
{
    match catch_unwind(AssertUnwindSafe(|| {
        check(d)?;
        if !go_parallel(sched, n) {
            let (acc, bailed) =
                try_reduce_span(0..n, &load, identity, &f, Mode::ExclusiveFwd, tile, d);
            if bailed {
                return Err(check(d).err().unwrap_or(ExecError::DeadlineExceeded));
            }
            return Ok(acc);
        }
        let nblocks = plan_blocks(n, engine_width(sched));
        let mut partials = vec![identity; nblocks];
        {
            let p = SendPtr(partials.as_mut_ptr());
            let load = &load;
            let f = &f;
            try_run_blocks(sched, nblocks, d, move |b| {
                let r = block_range(n, nblocks, b);
                let (acc, _bailed) =
                    try_reduce_span(r, load, identity, f, Mode::ExclusiveFwd, tile, d);
                // SAFETY: task `b` writes only index `b`.
                unsafe { p.get().add(b).write(acc) };
            })?;
        }
        // A bailed block left a garbage partial; the latch catches it.
        check(d)?;
        Ok(seq_reduce_by(&partials, identity, &f))
    })) {
        Ok(r) => r,
        Err(_) => Err(ExecError::WorkerLost { panics: 1 }),
    }
}

/// Exclusive scan; parallel above [`PAR_THRESHOLD`], sequential below.
///
/// `f` must be associative with identity `identity`; the blocked schedule
/// reassociates combines across blocks.
pub fn exclusive_scan_by<T, F>(a: &[T], identity: T, f: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    exclusive_scan_by_sched(default_schedule(), a, identity, f)
}

/// [`exclusive_scan_by`] under an explicit [`Schedule`].
pub fn exclusive_scan_by_sched<T, F>(sched: Schedule, a: &[T], identity: T, f: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    engine(
        sched,
        a.len(),
        |i| a[i],
        identity,
        f,
        |_, s| s,
        Mode::ExclusiveFwd,
        None,
    )
    .0
}

/// Inclusive scan; parallel above [`PAR_THRESHOLD`], sequential below.
pub fn inclusive_scan_by<T, F>(a: &[T], identity: T, f: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    inclusive_scan_by_sched(default_schedule(), a, identity, f)
}

/// [`inclusive_scan_by`] under an explicit [`Schedule`].
pub fn inclusive_scan_by_sched<T, F>(sched: Schedule, a: &[T], identity: T, f: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    engine(
        sched,
        a.len(),
        |i| a[i],
        identity,
        f,
        |_, s| s,
        Mode::InclusiveFwd,
        None,
    )
    .0
}

/// Exclusive *backward* scan: element `i` receives the combine, in
/// descending index order, of the elements after it. Walks the blocks
/// right-to-left — no reversed copy of the input is made.
pub fn exclusive_scan_backward_by<T, F>(a: &[T], identity: T, f: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    exclusive_scan_backward_by_sched(default_schedule(), a, identity, f)
}

/// [`exclusive_scan_backward_by`] under an explicit [`Schedule`].
pub fn exclusive_scan_backward_by_sched<T, F>(sched: Schedule, a: &[T], identity: T, f: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    engine(
        sched,
        a.len(),
        |i| a[i],
        identity,
        f,
        |_, s| s,
        Mode::ExclusiveBwd,
        None,
    )
    .0
}

/// Inclusive backward scan; see [`exclusive_scan_backward_by`].
pub fn inclusive_scan_backward_by<T, F>(a: &[T], identity: T, f: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    inclusive_scan_backward_by_sched(default_schedule(), a, identity, f)
}

/// [`inclusive_scan_backward_by`] under an explicit [`Schedule`].
pub fn inclusive_scan_backward_by_sched<T, F>(sched: Schedule, a: &[T], identity: T, f: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    engine(
        sched,
        a.len(),
        |i| a[i],
        identity,
        f,
        |_, s| s,
        Mode::InclusiveBwd,
        None,
    )
    .0
}

/// Fallible [`exclusive_scan_by`]: identical result on success, but
/// cooperative and contained — the ambient [`crate::deadline`] scope
/// (if any) is honored at block boundaries and every [`CANCEL_STRIDE`]
/// elements, and a panicking operator becomes
/// [`ExecError::WorkerLost`] instead of unwinding into the caller.
pub fn try_exclusive_scan_by<T, F>(a: &[T], identity: T, f: F) -> Result<Vec<T>, ExecError>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    try_exclusive_scan_by_sched(default_schedule(), a, identity, f)
}

/// [`try_exclusive_scan_by`] under an explicit [`Schedule`].
pub fn try_exclusive_scan_by_sched<T, F>(
    sched: Schedule,
    a: &[T],
    identity: T,
    f: F,
) -> Result<Vec<T>, ExecError>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    let d = crate::deadline::current();
    try_engine(
        sched,
        a.len(),
        |i| a[i],
        identity,
        f,
        |_, s| s,
        Mode::ExclusiveFwd,
        None,
        d.as_ref(),
    )
    .map(|r| r.0)
}

/// Fallible [`inclusive_scan_by`]; see [`try_exclusive_scan_by`] for
/// the failure contract.
pub fn try_inclusive_scan_by<T, F>(a: &[T], identity: T, f: F) -> Result<Vec<T>, ExecError>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    let d = crate::deadline::current();
    try_engine(
        default_schedule(),
        a.len(),
        |i| a[i],
        identity,
        f,
        |_, s| s,
        Mode::InclusiveFwd,
        None,
        d.as_ref(),
    )
    .map(|r| r.0)
}

/// Fallible [`exclusive_scan_backward_by`]; see
/// [`try_exclusive_scan_by`] for the failure contract.
pub fn try_exclusive_scan_backward_by<T, F>(a: &[T], identity: T, f: F) -> Result<Vec<T>, ExecError>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    let d = crate::deadline::current();
    try_engine(
        default_schedule(),
        a.len(),
        |i| a[i],
        identity,
        f,
        |_, s| s,
        Mode::ExclusiveBwd,
        None,
        d.as_ref(),
    )
    .map(|r| r.0)
}

/// Fallible [`inclusive_scan_backward_by`]; see
/// [`try_exclusive_scan_by`] for the failure contract.
pub fn try_inclusive_scan_backward_by<T, F>(a: &[T], identity: T, f: F) -> Result<Vec<T>, ExecError>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    let d = crate::deadline::current();
    try_engine(
        default_schedule(),
        a.len(),
        |i| a[i],
        identity,
        f,
        |_, s| s,
        Mode::InclusiveBwd,
        None,
        d.as_ref(),
    )
    .map(|r| r.0)
}

/// Fallible [`scan_with_total_by`]; see [`try_exclusive_scan_by`] for
/// the failure contract.
pub fn try_scan_with_total_by<T, F>(a: &[T], identity: T, f: F) -> Result<(Vec<T>, T), ExecError>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    let d = crate::deadline::current();
    try_engine(
        default_schedule(),
        a.len(),
        |i| a[i],
        identity,
        f,
        |_, s| s,
        Mode::ExclusiveFwd,
        None,
        d.as_ref(),
    )
}

/// Fallible [`reduce_by`]; see [`try_exclusive_scan_by`] for the
/// failure contract.
pub fn try_reduce_by<T, F>(a: &[T], identity: T, f: F) -> Result<T, ExecError>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    try_reduce_by_sched(default_schedule(), a, identity, f)
}

/// [`try_reduce_by`] under an explicit [`Schedule`].
pub fn try_reduce_by_sched<T, F>(
    sched: Schedule,
    a: &[T],
    identity: T,
    f: F,
) -> Result<T, ExecError>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    let d = crate::deadline::current();
    try_reduce_engine(sched, a.len(), |i| a[i], identity, f, None, d.as_ref())
}

/// Exclusive scan that also returns the total reduction, in one pass
/// over the input: the total falls out of the block-offset scan.
pub fn scan_with_total_by<T, F>(a: &[T], identity: T, f: F) -> (Vec<T>, T)
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    engine(
        default_schedule(),
        a.len(),
        |i| a[i],
        identity,
        f,
        |_, s| s,
        Mode::ExclusiveFwd,
        None,
    )
}

/// Fused map→scan: the exclusive forward scan of `[g(a[0]), g(a[1]),
/// ...]` without materializing the mapped vector.
pub fn scan_map_by<T, U, G, F>(a: &[T], g: G, identity: U, f: F) -> Vec<U>
where
    T: Copy + Sync,
    U: Copy + Send + Sync,
    G: Fn(T) -> U + Sync,
    F: Fn(U, U) -> U + Sync,
{
    engine(
        default_schedule(),
        a.len(),
        |i| g(a[i]),
        identity,
        f,
        |_, s| s,
        Mode::ExclusiveFwd,
        None,
    )
    .0
}

/// [`scan_map_by`] that also returns the total reduction of the mapped
/// values (still one pass over the input).
pub fn scan_map_with_total_by<T, U, G, F>(a: &[T], g: G, identity: U, f: F) -> (Vec<U>, U)
where
    T: Copy + Sync,
    U: Copy + Send + Sync,
    G: Fn(T) -> U + Sync,
    F: Fn(U, U) -> U + Sync,
{
    engine(
        default_schedule(),
        a.len(),
        |i| g(a[i]),
        identity,
        f,
        |_, s| s,
        Mode::ExclusiveFwd,
        None,
    )
}

/// Fused map→backward-scan; see [`scan_map_by`].
pub fn scan_map_backward_by<T, U, G, F>(a: &[T], g: G, identity: U, f: F) -> Vec<U>
where
    T: Copy + Sync,
    U: Copy + Send + Sync,
    G: Fn(T) -> U + Sync,
    F: Fn(U, U) -> U + Sync,
{
    engine(
        default_schedule(),
        a.len(),
        |i| g(a[i]),
        identity,
        f,
        |_, s| s,
        Mode::ExclusiveBwd,
        None,
    )
    .0
}

/// Fused map→reduce: the reduction of `[g(a[0]), g(a[1]), ...]` without
/// materializing the mapped vector.
pub fn reduce_map_by<T, U, G, F>(a: &[T], g: G, identity: U, f: F) -> U
where
    T: Copy + Sync,
    U: Copy + Send + Sync,
    G: Fn(T) -> U + Sync,
    F: Fn(U, U) -> U + Sync,
{
    reduce_engine(default_schedule(), a.len(), |i| g(a[i]), identity, f, None)
}

/// Reduction; parallel above [`PAR_THRESHOLD`].
pub fn reduce_by<T, F>(a: &[T], identity: T, f: F) -> T
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    reduce_by_sched(default_schedule(), a, identity, f)
}

/// [`reduce_by`] under an explicit [`Schedule`].
pub fn reduce_by_sched<T, F>(sched: Schedule, a: &[T], identity: T, f: F) -> T
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync,
{
    reduce_engine(sched, a.len(), |i| a[i], identity, f, None)
}

/// Parallel elementwise map into a fresh vector (the paper's
/// per-processor arithmetic step, §2.1). Sequential below the threshold.
pub fn map_by<T, U, F>(a: &[T], f: F) -> Vec<U>
where
    T: Copy + Send + Sync,
    U: Copy + Send + Sync,
    F: Fn(T) -> U + Sync,
{
    map_by_sched(default_schedule(), a, f)
}

/// [`map_by`] under an explicit [`Schedule`].
pub fn map_by_sched<T, U, F>(sched: Schedule, a: &[T], f: F) -> Vec<U>
where
    T: Copy + Send + Sync,
    U: Copy + Send + Sync,
    F: Fn(T) -> U + Sync,
{
    fill_engine(sched, a.len(), |i| f(a[i]))
}

/// Parallel tabulation: `out[i] = g(i)` for `i` in `0..n`. The fused
/// form of "build an index-derived vector then map it".
pub fn tabulate_by<U, G>(n: usize, g: G) -> Vec<U>
where
    U: Copy + Send + Sync,
    G: Fn(usize) -> U + Sync,
{
    fill_engine(default_schedule(), n, g)
}

/// Parallel elementwise zip-map of two equal-length vectors.
///
/// # Panics
/// If the lengths differ.
pub fn zip_by<A, B, U, F>(a: &[A], b: &[B], f: F) -> Vec<U>
where
    A: Copy + Send + Sync,
    B: Copy + Send + Sync,
    U: Copy + Send + Sync,
    F: Fn(A, B) -> U + Sync,
{
    assert_eq!(a.len(), b.len(), "zip_by length mismatch");
    fill_engine(default_schedule(), a.len(), |i| f(a[i], b[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_exclusive_matches_paper_example() {
        let a = [2u64, 1, 2, 3, 5, 8, 13, 21];
        assert_eq!(
            seq_exclusive_scan_by(&a, 0, |x, y| x + y),
            vec![0, 2, 3, 5, 8, 13, 21, 34]
        );
    }

    #[test]
    fn empty_and_single() {
        let e: [u32; 0] = [];
        assert!(seq_exclusive_scan_by(&e, 0, |a, b| a + b).is_empty());
        assert!(exclusive_scan_by(&e, 0, |a, b| a + b).is_empty());
        assert!(exclusive_scan_backward_by(&e, 0, |a, b| a + b).is_empty());
        assert_eq!(seq_exclusive_scan_by(&[7u32], 0, |a, b| a + b), vec![0]);
        assert_eq!(seq_inclusive_scan_by(&[7u32], 0, |a, b| a + b), vec![7]);
        assert_eq!(
            inclusive_scan_backward_by(&[7u32], 0, |a, b| a + b),
            vec![7]
        );
    }

    #[test]
    fn par_matches_seq_exclusive() {
        let n = PAR_THRESHOLD * 3 + 17;
        let a: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(2654435761)).collect();
        let seq = seq_exclusive_scan_by(&a, 0, |x, y| x.wrapping_add(y));
        for sched in [
            Schedule::Pooled,
            Schedule::Lookback,
            Schedule::Spawn,
            Schedule::Sequential,
        ] {
            let got = exclusive_scan_by_sched(sched, &a, 0, |x, y| x.wrapping_add(y));
            assert_eq!(seq, got, "schedule {sched:?}");
        }
    }

    #[test]
    fn par_matches_seq_inclusive_max() {
        let n = PAR_THRESHOLD * 2 + 3;
        let a: Vec<u64> = (0..n as u64).map(|i| (i * 48271) % 104729).collect();
        let seq = seq_inclusive_scan_by(&a, 0, |x, y| x.max(y));
        for sched in [Schedule::Pooled, Schedule::Lookback, Schedule::Spawn] {
            assert_eq!(seq, inclusive_scan_by_sched(sched, &a, 0, |x, y| x.max(y)));
        }
    }

    #[test]
    fn backward_scans_match_reversed_forward() {
        for n in [0usize, 1, 5, 1000, PAR_THRESHOLD * 2 + 7] {
            let a: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e3779b9)).collect();
            let mut rev = a.clone();
            rev.reverse();
            let mut expect_exc = seq_exclusive_scan_by(&rev, 0u64, |x, y| x.wrapping_add(y));
            expect_exc.reverse();
            let mut expect_inc = seq_inclusive_scan_by(&rev, 0u64, |x, y| x.wrapping_add(y));
            expect_inc.reverse();
            for sched in [
                Schedule::Pooled,
                Schedule::Lookback,
                Schedule::Spawn,
                Schedule::Sequential,
            ] {
                assert_eq!(
                    exclusive_scan_backward_by_sched(sched, &a, 0, |x, y| x.wrapping_add(y)),
                    expect_exc,
                    "n={n} sched={sched:?}"
                );
                assert_eq!(
                    inclusive_scan_backward_by_sched(sched, &a, 0, |x, y| x.wrapping_add(y)),
                    expect_inc,
                    "n={n} sched={sched:?}"
                );
            }
        }
    }

    #[test]
    fn with_total_agrees_with_reduce() {
        for n in [0usize, 1, 100, PAR_THRESHOLD + 1] {
            let a: Vec<u64> = (0..n as u64).collect();
            let (s, t) = scan_with_total_by(&a, 0, |x, y| x + y);
            assert_eq!(s, seq_exclusive_scan_by(&a, 0, |x, y| x + y));
            assert_eq!(t, seq_reduce_by(&a, 0, |x, y| x + y));
        }
    }

    #[test]
    fn fused_map_scan_variants() {
        let n = PAR_THRESHOLD + 9;
        let flags: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let ones: Vec<usize> = flags.iter().map(|&f| usize::from(f)).collect();
        assert_eq!(
            scan_map_by(&flags, usize::from, 0, |a, b| a + b),
            seq_exclusive_scan_by(&ones, 0, |a, b| a + b)
        );
        let (s, t) = scan_map_with_total_by(&flags, usize::from, 0, |a, b| a + b);
        assert_eq!(s, seq_exclusive_scan_by(&ones, 0, |a, b| a + b));
        assert_eq!(t, ones.iter().sum::<usize>());
        let mut rev_ones = ones.clone();
        rev_ones.reverse();
        let mut expect = seq_exclusive_scan_by(&rev_ones, 0, |a, b| a + b);
        expect.reverse();
        assert_eq!(
            scan_map_backward_by(&flags, usize::from, 0, |a, b| a + b),
            expect
        );
        assert_eq!(
            reduce_map_by(&flags, usize::from, 0, |a, b| a + b),
            ones.iter().sum::<usize>()
        );
    }

    #[test]
    fn reduce_matches() {
        let n = PAR_THRESHOLD * 2 + 5;
        let a: Vec<u64> = (0..n as u64).collect();
        for sched in [
            Schedule::Pooled,
            Schedule::Lookback,
            Schedule::Spawn,
            Schedule::Sequential,
        ] {
            assert_eq!(
                reduce_by_sched(sched, &a, 0, |x, y| x + y),
                (n as u64 - 1) * (n as u64) / 2
            );
        }
    }

    #[test]
    fn map_zip_and_tabulate() {
        let a: Vec<u32> = (0..100).collect();
        let b: Vec<u32> = (0..100).map(|i| i * 2).collect();
        assert_eq!(map_by(&a, |x| x + 1)[99], 100);
        assert_eq!(zip_by(&a, &b, |x, y| x + y)[10], 30);
        let big: Vec<u32> = (0..PAR_THRESHOLD as u32 * 2).collect();
        let m = map_by(&big, |x| x ^ 1);
        assert_eq!(m[5], 4);
        assert_eq!(m.len(), big.len());
        let zipped = zip_by(&big, &big, |x, y| x + y);
        assert_eq!(zipped[9], 18);
        assert_eq!(zipped.len(), big.len());
        let t = tabulate_by(PAR_THRESHOLD + 3, |i| i as u64 * 7);
        assert_eq!(t.len(), PAR_THRESHOLD + 3);
        assert!(t.iter().enumerate().all(|(i, &v)| v == i as u64 * 7));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn zip_length_mismatch_panics() {
        zip_by(&[1u32, 2], &[1u32], |a, b| a + b);
    }

    #[test]
    fn block_plan_partitions_exactly() {
        // Adversarial sizes around the threshold and block-multiple
        // boundaries: the plan must partition 0..n into balanced blocks
        // and, when there are more blocks than workers, a multiple of
        // the worker count (the seed engine could leave a lone tiny
        // tail block: `4·workers + 1` chunks).
        let sizes = [
            PAR_THRESHOLD - 1,
            PAR_THRESHOLD,
            PAR_THRESHOLD + 1,
            MIN_BLOCK * 16 - 1,
            MIN_BLOCK * 16,
            MIN_BLOCK * 16 + 1,
            MIN_BLOCK * 17 + 3,
            1 << 20,
            (1 << 20) + 1,
        ];
        for workers in [1usize, 2, 3, 4, 7, 8, 64] {
            for &n in &sizes {
                let nb = plan_blocks(n, workers);
                assert!(nb >= 1);
                assert!(nb <= 4 * workers);
                if nb > workers {
                    assert_eq!(nb % workers, 0, "n={n} workers={workers} nb={nb}");
                }
                // Ranges partition 0..n, in order, balanced to ±1.
                let mut next = 0usize;
                let base = n / nb;
                for b in 0..nb {
                    let r = block_range(n, nb, b);
                    assert_eq!(r.start, next, "n={n} nb={nb} b={b}");
                    let len = r.end - r.start;
                    assert!(len == base || len == base + 1, "n={n} nb={nb} b={b}");
                    next = r.end;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn schedules_reassociate_identically() {
        // Same block plan on both parallel schedules: even a
        // non-associative operator (float addition) must come out
        // bit-identical between Pooled and Spawn.
        let n = PAR_THRESHOLD * 2 + 13;
        let a: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let pooled = exclusive_scan_by_sched(Schedule::Pooled, &a, 0.0, |x, y| x + y);
        let spawn = exclusive_scan_by_sched(Schedule::Spawn, &a, 0.0, |x, y| x + y);
        if pool::global_threads() > 1 {
            assert_eq!(pooled, spawn);
        } else {
            // Width-1 pool: Pooled falls back to the sequential kernel.
            assert_eq!(pooled, seq_exclusive_scan_by(&a, 0.0, |x, y| x + y));
        }
    }

    #[test]
    fn default_schedule_roundtrip() {
        assert_eq!(default_schedule(), Schedule::Pooled);
        set_default_schedule(Schedule::Sequential);
        assert_eq!(default_schedule(), Schedule::Sequential);
        set_default_schedule(Schedule::Pooled);
        assert_eq!(default_schedule(), Schedule::Pooled);
    }

    #[test]
    fn try_scans_match_infallible_on_the_happy_path() {
        let n = PAR_THRESHOLD * 2 + 13;
        let a: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e3779b9)).collect();
        for sched in [
            Schedule::Pooled,
            Schedule::Lookback,
            Schedule::Spawn,
            Schedule::Sequential,
        ] {
            assert_eq!(
                try_exclusive_scan_by_sched(sched, &a, 0, u64::wrapping_add).unwrap(),
                exclusive_scan_by_sched(sched, &a, 0, u64::wrapping_add),
                "sched {sched:?}"
            );
        }
        assert_eq!(
            try_inclusive_scan_by(&a, 0, u64::wrapping_add).unwrap(),
            inclusive_scan_by(&a, 0, u64::wrapping_add)
        );
        assert_eq!(
            try_exclusive_scan_backward_by(&a, 0, u64::wrapping_add).unwrap(),
            exclusive_scan_backward_by(&a, 0, u64::wrapping_add)
        );
        assert_eq!(
            try_inclusive_scan_backward_by(&a, 0, u64::wrapping_add).unwrap(),
            inclusive_scan_backward_by(&a, 0, u64::wrapping_add)
        );
        let (s, t) = try_scan_with_total_by(&a, 0, u64::wrapping_add).unwrap();
        let (es, et) = scan_with_total_by(&a, 0, u64::wrapping_add);
        assert_eq!((s, t), (es, et));
        assert_eq!(
            try_reduce_by(&a, 0, u64::wrapping_add).unwrap(),
            reduce_by(&a, 0, u64::wrapping_add)
        );
    }

    #[test]
    fn try_scan_under_live_deadline_succeeds() {
        let n = PAR_THRESHOLD + 5;
        let a: Vec<u64> = (0..n as u64).collect();
        let d = ScanDeadline::after(std::time::Duration::from_secs(60));
        let got = crate::deadline::with_deadline(&d, || try_exclusive_scan_by(&a, 0, |x, y| x + y));
        assert_eq!(got.unwrap(), exclusive_scan_by(&a, 0, |x, y| x + y));
    }

    #[test]
    fn try_scan_with_expired_deadline_is_typed() {
        let a: Vec<u64> = (0..(PAR_THRESHOLD as u64 * 2)).collect();
        let d = ScanDeadline::at(std::time::Instant::now());
        for sched in [
            Schedule::Pooled,
            Schedule::Lookback,
            Schedule::Spawn,
            Schedule::Sequential,
        ] {
            let got = crate::deadline::with_deadline(&d, || {
                try_exclusive_scan_by_sched(sched, &a, 0, |x, y| x + y)
            });
            assert_eq!(got, Err(ExecError::DeadlineExceeded), "sched {sched:?}");
        }
        let got = crate::deadline::with_deadline(&d, || try_reduce_by(&a, 0, |x, y| x + y));
        assert_eq!(got, Err(ExecError::DeadlineExceeded));
    }

    #[test]
    fn try_scan_observes_mid_flight_cancellation() {
        // The load closure cancels the token partway through the up
        // sweep: deterministic mid-flight cancellation with no timing.
        let n = PAR_THRESHOLD * 4;
        let a: Vec<u64> = (0..n as u64).collect();
        for sched in [
            Schedule::Pooled,
            Schedule::Lookback,
            Schedule::Spawn,
            Schedule::Sequential,
        ] {
            let d = ScanDeadline::manual();
            let seen = AtomicUsize::new(0);
            let got = crate::deadline::with_deadline(&d, || {
                let d = &d;
                let seen = &seen;
                try_engine(
                    sched,
                    n,
                    |i| {
                        if seen.fetch_add(1, Ordering::Relaxed) == 3 * CANCEL_STRIDE {
                            d.cancel();
                        }
                        a[i]
                    },
                    0u64,
                    |x, y| x + y,
                    |_, s| s,
                    Mode::ExclusiveFwd,
                    None,
                    Some(d),
                )
            });
            assert_eq!(
                got.map(|r| r.1),
                Err(ExecError::Cancelled),
                "sched {sched:?}"
            );
            // The strided bail-out means cancellation stopped the work
            // well short of the two full passes.
            assert!(
                seen.load(Ordering::Relaxed) < 2 * n,
                "sched {sched:?} did all the work anyway"
            );
        }
    }

    #[test]
    fn try_scan_contains_operator_panics() {
        let n = PAR_THRESHOLD * 2;
        let a: Vec<u64> = (0..n as u64).collect();
        for sched in [
            Schedule::Pooled,
            Schedule::Lookback,
            Schedule::Spawn,
            Schedule::Sequential,
        ] {
            let got = try_exclusive_scan_by_sched(sched, &a, 0, |x, y| {
                assert!(x + y < 1_000_000, "operator exploded");
                x + y
            });
            assert!(
                matches!(got, Err(ExecError::WorkerLost { panics }) if panics >= 1),
                "sched {sched:?}: {got:?}"
            );
        }
        // Small inputs take the sequential path inside try_engine and
        // must be contained there too.
        let small: Vec<u64> = (0..100).collect();
        let got = try_exclusive_scan_by(&small, 0, |_, _| -> u64 { panic!("tiny boom") });
        assert!(matches!(got, Err(ExecError::WorkerLost { .. })));
        let got = try_reduce_by(&small, 0, |_, _| -> u64 { panic!("tiny boom") });
        assert!(matches!(got, Err(ExecError::WorkerLost { .. })));
    }

    use std::sync::atomic::{AtomicUsize, Ordering};
}
