//! Single-pass decoupled-lookback scan schedule
//! ([`crate::parallel::Schedule::Lookback`]).
//!
//! The blocked two-pass engine reads its input twice (up sweep + down
//! sweep), which caps a bandwidth-bound scan at half the memcpy
//! roofline. This module implements the decoupled-lookback scheme
//! (Merrill & Garland's single-pass chained scan, the CPU rendering of
//! LightScan's communication structure): each block scans its slice
//! **once**, publishes its local `aggregate` into a per-block
//! descriptor, resolves its global offset by *looking back* through
//! predecessor descriptors, then publishes its inclusive `prefix` for
//! successors — so the input crosses memory exactly once.
//!
//! # Descriptor state machine
//!
//! Each traversal-order block `t` owns descriptor `t` in a
//! [`DescTable`]:
//!
//! ```text
//!   EMPTY ──publish_aggregate──▶ AGG ──publish_prefix──▶ PREFIX
//!     │                                                    ▲
//!     └────────────── abandon (panic/deadline) ────────────┘
//! ```
//!
//! Values are written *before* the status is `Release`-stored, and
//! read only after an `Acquire` load observes the status, so the value
//! read is never racy (`tests/loom_lookback.rs` model-checks this
//! publication protocol through the [`crate::sync`] swap point).
//!
//! # Forward progress
//!
//! The lookback wait can only terminate if every predecessor
//! eventually publishes. Three pool facts make that unconditional
//! (see [`crate::pool`]):
//!
//! - tasks are claimed strictly in ascending index order (one
//!   `fetch_add` per claim), so every predecessor of a spinning block
//!   is already claimed — running or finished, never unstarted behind
//!   it in the queue;
//! - a panicking block unwinds through an `Abandon` guard that
//!   publishes an identity prefix before the pool replays the panic,
//!   so successors cannot spin on a dead block (the replayed panic —
//!   or the typed `WorkerLost` on the fallible path — discards every
//!   result afterwards, so the garbage prefix is never observable);
//! - on the fallible path, a tripped deadline drains unclaimed tasks,
//!   and the drain implies the expiry latch is set — spinning blocks
//!   observe it at their periodic checkpoint and bail, after which the
//!   post-run deadline check discards the pass.
//!
//! Worker *respawn* does not interact with the chain at all: respawn
//! replaces the OS thread after its current task unwound, and the
//! unwind already ran the guard.

use crate::deadline::ScanDeadline;
use crate::error::ExecError;
use crate::parallel::{
    check, run_blocks, scan_span, try_run_blocks, try_scan_span, Mode, Schedule, SendPtr,
};
use crate::simd::SimdTile;
use crate::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;

/// Elements per lookback block in production. Large enough that the
/// descriptor protocol amortizes to nothing, small enough to give the
/// chain pipelining depth (512 blocks at `n = 2^24`).
const LOOKBACK_BLOCK: usize = 1 << 15;

/// Effective block size: scaled down with the test threshold override
/// so Miri/sanitizer profiles exercise multi-block chains.
fn lookback_block() -> usize {
    if crate::parallel::par_threshold() == crate::parallel::PAR_THRESHOLD {
        LOOKBACK_BLOCK
    } else {
        (crate::parallel::par_threshold() / 4).max(4)
    }
}

/// Half-open index range of lookback block `phys`.
fn lb_range(n: usize, block: usize, phys: usize) -> core::ops::Range<usize> {
    let start = phys * block;
    start..(start + block).min(n)
}

const EMPTY: u8 = 0;
const AGG: u8 = 1;
const PREFIX: u8 = 2;

/// One block's descriptor: payload slots plus the status word that
/// publishes them. Slots are plain `UnsafeCell`s (not atomics) — the
/// status handshake is the synchronization.
struct Slot<S> {
    agg: UnsafeCell<MaybeUninit<S>>,
    prefix: UnsafeCell<MaybeUninit<S>>,
}

/// The per-block descriptor array of one lookback pass.
///
/// Exposed (for the loom and Miri protocol suites) rather than
/// private: the publication protocol is the concurrency-critical core
/// of the schedule and is model-checked directly against this type.
pub struct DescTable<S> {
    status: Box<[AtomicU8]>,
    slots: Box<[Slot<S>]>,
    abandoned: AtomicBool,
}

// SAFETY: each `Slot` field has a single writer (the block that owns
// the descriptor, or its abandon guard on that same thread's unwind),
// every write happens before a `Release` store of the status word, and
// readers touch a slot only after an `Acquire` load observes the
// corresponding status — the handshake gives the read happens-after
// the write, so no slot is ever accessed concurrently.
unsafe impl<S: Send> Sync for DescTable<S> {}

impl<S: Copy> DescTable<S> {
    /// A table of `nblocks` descriptors, all `EMPTY`.
    pub fn new(nblocks: usize) -> Self {
        DescTable {
            status: (0..nblocks).map(|_| AtomicU8::new(EMPTY)).collect(),
            slots: (0..nblocks)
                .map(|_| Slot {
                    agg: UnsafeCell::new(MaybeUninit::uninit()),
                    prefix: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            abandoned: AtomicBool::new(false),
        }
    }

    /// Number of descriptors.
    pub fn len(&self) -> usize {
        self.status.len()
    }

    /// Whether the table is empty (a zero-block table).
    pub fn is_empty(&self) -> bool {
        self.status.is_empty()
    }

    /// Has any block abandoned its descriptor (panic or deadline)?
    pub fn is_abandoned(&self) -> bool {
        self.abandoned.load(Ordering::Acquire)
    }

    /// Publish block `t`'s local aggregate: `EMPTY → AGG`.
    pub fn publish_aggregate(&self, t: usize, v: S) {
        // SAFETY: block `t` is the slot's only writer and no reader
        // dereferences it until the `Release` store below is observed.
        unsafe { (*self.slots[t].agg.get()).write(v) };
        self.status[t].store(AGG, Ordering::Release);
    }

    /// Publish block `t`'s inclusive prefix: `{EMPTY,AGG} → PREFIX`.
    pub fn publish_prefix(&self, t: usize, v: S) {
        // SAFETY: as in `publish_aggregate` — single writer, value
        // written before the status `Release` store.
        unsafe { (*self.slots[t].prefix.get()).write(v) };
        self.status[t].store(PREFIX, Ordering::Release);
    }

    /// Block `t`'s inclusive prefix, if already published.
    pub fn try_prefix(&self, t: usize) -> Option<S> {
        if self.status[t].load(Ordering::Acquire) == PREFIX {
            // SAFETY: the `Acquire` load observed the `Release` store
            // of `PREFIX`, which happens-after the slot write.
            Some(unsafe { (*self.slots[t].prefix.get()).assume_init() })
        } else {
            None
        }
    }

    /// Abandon block `t`: latch the abandoned flag and publish an
    /// identity prefix so successors cannot spin on a block that will
    /// never finish. The pass's results are discarded afterwards (by
    /// panic replay or the deadline latch), so the placeholder value
    /// is never observable in an output.
    pub fn abandon(&self, t: usize, identity: S) {
        self.abandoned.store(true, Ordering::Release);
        self.publish_prefix(t, identity);
    }

    /// Resolve block `t`'s *exclusive* prefix by walking predecessors
    /// right-to-left: fold `AGG` aggregates until some block shows a
    /// `PREFIX`, spinning (with periodic yields) on `EMPTY`.
    ///
    /// Returns `None` if the table is abandoned or `deadline` trips
    /// before the chain resolves; the caller must bail — a partial
    /// fold is unusable.
    pub fn lookback<F>(
        &self,
        t: usize,
        identity: S,
        f: &F,
        deadline: Option<&ScanDeadline>,
    ) -> Option<S>
    where
        F: Fn(S, S) -> S,
    {
        debug_assert!(t > 0, "block 0 has no predecessors to look back at");
        let mut acc = identity;
        let mut j = t - 1;
        loop {
            let mut spins = 0u32;
            loop {
                match self.status[j].load(Ordering::Acquire) {
                    PREFIX => {
                        // SAFETY: `Acquire` observed the `PREFIX`
                        // `Release` store; the slot write happens-before.
                        let p = unsafe { (*self.slots[j].prefix.get()).assume_init() };
                        return Some(f(p, acc));
                    }
                    AGG => {
                        // SAFETY: as above, for the `AGG` publication.
                        let a = unsafe { (*self.slots[j].agg.get()).assume_init() };
                        acc = f(a, acc);
                        break;
                    }
                    _ => {
                        spins = spins.wrapping_add(1);
                        if cfg!(any(miri, loom)) || spins.is_multiple_of(64) {
                            // Checkpoint: a predecessor that will never
                            // publish implies one of these latches.
                            if self.is_abandoned() || check(deadline).is_err() {
                                return None;
                            }
                            crate::sync::thread::yield_now();
                        }
                        std::hint::spin_loop();
                    }
                }
            }
            if j == 0 {
                // Unreachable in the engine (block 0 always publishes a
                // prefix, never a bare aggregate), but terminate safely
                // if a protocol driver does otherwise.
                return Some(acc);
            }
            j -= 1;
        }
    }
}

/// Unwind/bail guard: until disarmed, dropping it abandons block `t`.
/// Armed across everything that can panic (load/emit/operator
/// closures) or bail (deadline strides), so no code path can leave a
/// descriptor permanently `EMPTY`/`AGG`.
struct Abandon<'a, S: Copy> {
    table: &'a DescTable<S>,
    t: usize,
    identity: S,
    armed: bool,
}

impl<'a, S: Copy> Abandon<'a, S> {
    fn new(table: &'a DescTable<S>, t: usize, identity: S) -> Self {
        Abandon {
            table,
            t,
            identity,
            armed: true,
        }
    }

    fn disarm(&mut self) {
        self.armed = false;
    }
}

impl<S: Copy> Drop for Abandon<'_, S> {
    fn drop(&mut self) {
        if self.armed {
            self.table.abandon(self.t, self.identity);
        }
    }
}

/// Single-pass scan: the lookback rendering of
/// [`crate::parallel::engine`]'s contract (same load/emit fusion, same
/// modes, same total). `f` must be associative and `identity` must be
/// a two-sided identity — the slow path materializes identity-seeded
/// local states and grafts the resolved seed on with one extra
/// combine per element.
pub(crate) fn lookback_engine<S, U, L, F, E>(
    n: usize,
    load: &L,
    identity: S,
    f: &F,
    emit: &E,
    mode: Mode,
    tile: Option<&SimdTile<S>>,
) -> (Vec<U>, S)
where
    S: Copy + Send + Sync,
    U: Copy + Send + Sync,
    L: Fn(usize) -> S + Sync,
    F: Fn(S, S) -> S + Sync,
    E: Fn(usize, S) -> U + Sync,
{
    let block = lookback_block();
    let nblocks = n.div_ceil(block);
    let table = DescTable::new(nblocks);
    let mut out: Vec<U> = Vec::with_capacity(n);
    {
        let o = SendPtr::new(out.as_mut_ptr());
        let table = &table;
        // The blocks always run on the pool: its strictly in-order task
        // claiming is what makes the lookback chain deadlock-free (a
        // per-call `Spawn` scope gives no claim order).
        run_blocks(Schedule::Pooled, nblocks, move |t| {
            // Descriptor index = traversal order; map to the physical
            // slice, which runs from the other end for backward modes.
            let phys = if mode.backward() { nblocks - 1 - t } else { t };
            let r = lb_range(n, block, phys);
            let mut guard = Abandon::new(table, t, identity);
            let seed = if t == 0 {
                Some(identity)
            } else {
                table.try_prefix(t - 1)
            };
            if let Some(seed) = seed {
                // Fast path (always taken at pool width 1 and by block
                // 0): the predecessor's inclusive prefix is already
                // published, so scan seeded and emit straight to the
                // output — no scratch, no fixup.
                // SAFETY: lookback blocks partition `0..n` and task `t`
                // owns slice `r`, so each index is written exactly once
                // before the `set_len` below (see `SendPtr`).
                let mut write = |i: usize, s: S| unsafe { o.get().add(i).write(emit(i, s)) };
                let incl = scan_span(r, load, seed, f, mode, tile, &mut write);
                table.publish_prefix(t, incl);
                guard.disarm();
            } else {
                // Slow path: scan once into identity-seeded local
                // states, publish the aggregate, resolve the seed by
                // lookback, then emit `f(seed, state)` — the input is
                // still read exactly once.
                let len = r.len();
                let base = r.start;
                let mut states: Vec<S> = Vec::with_capacity(len);
                {
                    let sp = states.as_mut_ptr();
                    // SAFETY: thread-local scratch; `scan_span` writes
                    // every offset in `0..len` exactly once before the
                    // `set_len`.
                    let mut write = |i: usize, s: S| unsafe { sp.add(i - base).write(s) };
                    let agg = scan_span(r.clone(), load, identity, f, mode, tile, &mut write);
                    table.publish_aggregate(t, agg);
                    let Some(seed) = table.lookback(t, identity, f, None) else {
                        // Abandoned chain: the guard re-publishes and the
                        // originating panic replay discards the pass.
                        return;
                    };
                    table.publish_prefix(t, f(seed, agg));
                    guard.disarm();
                    // SAFETY: all `len` offsets initialized just above.
                    unsafe { states.set_len(len) };
                    for i in r {
                        // SAFETY: same disjoint-slice argument as the
                        // fast path.
                        unsafe { o.get().add(i).write(emit(i, f(seed, states[i - base]))) };
                    }
                }
            }
        });
    }
    // A panicking block replays out of `run_blocks` above, so reaching
    // here means every block published a real prefix.
    let total = if nblocks == 0 {
        identity
    } else {
        table.try_prefix(nblocks - 1).unwrap_or(identity)
    };
    // SAFETY: every index in `0..n` was initialized by exactly one block.
    unsafe { out.set_len(n) };
    (out, total)
}

/// Fallible [`lookback_engine`]: deadline checkpoints every stride,
/// panic containment via the pool, identical results on the happy
/// path. The post-run deadline check is authoritative — any bailed
/// block latched the token first, so partially-written output is never
/// exposed.
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_lookback_engine<S, U, L, F, E>(
    n: usize,
    load: &L,
    identity: S,
    f: &F,
    emit: &E,
    mode: Mode,
    tile: Option<&SimdTile<S>>,
    d: Option<&ScanDeadline>,
) -> Result<(Vec<U>, S), ExecError>
where
    S: Copy + Send + Sync,
    U: Copy + Send + Sync,
    L: Fn(usize) -> S + Sync,
    F: Fn(S, S) -> S + Sync,
    E: Fn(usize, S) -> U + Sync,
{
    let block = lookback_block();
    let nblocks = n.div_ceil(block);
    let table = DescTable::new(nblocks);
    let mut out: Vec<U> = Vec::with_capacity(n);
    {
        let o = SendPtr::new(out.as_mut_ptr());
        let table = &table;
        try_run_blocks(Schedule::Pooled, nblocks, d, move |t| {
            let phys = if mode.backward() { nblocks - 1 - t } else { t };
            let r = lb_range(n, block, phys);
            let mut guard = Abandon::new(table, t, identity);
            if table.is_abandoned() || check(d).is_err() {
                return; // guard publishes so successors don't wait
            }
            let seed = if t == 0 {
                Some(identity)
            } else {
                table.try_prefix(t - 1)
            };
            if let Some(seed) = seed {
                // SAFETY: disjoint slice per task + post-run deadline
                // check before `set_len` (see the infallible engine).
                let mut write = |i: usize, s: S| unsafe { o.get().add(i).write(emit(i, s)) };
                let (incl, bailed) = try_scan_span(r, load, seed, f, mode, tile, d, &mut write);
                if bailed {
                    return;
                }
                table.publish_prefix(t, incl);
                guard.disarm();
            } else {
                let len = r.len();
                let base = r.start;
                let mut states: Vec<S> = Vec::with_capacity(len);
                let sp = states.as_mut_ptr();
                // SAFETY: thread-local scratch, each offset written
                // once; `states` is only read below after a clean
                // (unbailed) span filled it.
                let mut write = |i: usize, s: S| unsafe { sp.add(i - base).write(s) };
                let (agg, bailed) =
                    try_scan_span(r.clone(), load, identity, f, mode, tile, d, &mut write);
                if bailed {
                    return;
                }
                table.publish_aggregate(t, agg);
                let Some(seed) = table.lookback(t, identity, f, d) else {
                    return;
                };
                table.publish_prefix(t, f(seed, agg));
                guard.disarm();
                // SAFETY: the unbailed span initialized all `len` offsets.
                unsafe { states.set_len(len) };
                for i in r {
                    // SAFETY: disjoint slice per task, as above.
                    unsafe { o.get().add(i).write(emit(i, f(seed, states[i - base]))) };
                }
            }
        })?;
    }
    // Authoritative: every bail latched the token before returning, so
    // a clean check here proves all blocks emitted their whole slice.
    check(d)?;
    let total = if nblocks == 0 {
        identity
    } else {
        table.try_prefix(nblocks - 1).unwrap_or(identity)
    };
    // SAFETY: every index in `0..n` was initialized by exactly one block.
    unsafe { out.set_len(n) };
    Ok((out, total))
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn descriptor_protocol_single_thread() {
        let t: DescTable<u64> = DescTable::new(3);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!(t.try_prefix(0).is_none());
        t.publish_prefix(0, 7);
        assert_eq!(t.try_prefix(0), Some(7));
        t.publish_aggregate(1, 5);
        // Lookback from block 2: folds block 1's aggregate, then takes
        // block 0's prefix: f(7, f(5, id)).
        let got = t.lookback(2, 0u64, &|a, b| a + b, None);
        assert_eq!(got, Some(12));
        assert!(!t.is_abandoned());
        t.abandon(1, 0);
        assert!(t.is_abandoned());
        assert_eq!(t.try_prefix(1), Some(0));
    }

    #[test]
    fn lookback_bails_on_abandoned_chain() {
        let t: DescTable<u64> = DescTable::new(4);
        t.abandoned.store(true, Ordering::Release);
        // Predecessor 2 never publishes: the spin must observe the
        // abandoned latch and give up rather than hang.
        assert_eq!(t.lookback(3, 0u64, &|a, b| a + b, None), None);
    }

    #[test]
    fn abandon_guard_publishes_on_unwind() {
        let t: DescTable<u64> = DescTable::new(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = Abandon::new(&t, 0, 0u64);
            panic!("block died");
        }));
        assert!(r.is_err());
        assert!(t.is_abandoned());
        assert_eq!(t.try_prefix(0), Some(0));
    }

    #[test]
    fn block_ranges_partition() {
        for n in [1usize, 5, 100, 1000, 4096, 4097] {
            for block in [4usize, 64, 1000] {
                let nb = n.div_ceil(block);
                let mut next = 0;
                for b in 0..nb {
                    let r = lb_range(n, block, b);
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, n);
            }
        }
    }
}
