//! Fused multi-way split: one-pass histogram / rank / scatter.
//!
//! The paper's `split` (§2.2.1) routes elements into 2 buckets with two
//! enumerate-scans; the Connection Machine refinement splits into `2^w`
//! buckets by running one enumerate per bucket — `2^w` full scans and
//! `O(2^w · n)` traffic per radix pass. This module fuses the whole
//! pass into three sweeps of total work `O(n + blocks · 2^w)`:
//!
//! 1. **Histogram** — one read of the input. Each block computes a
//!    private bucket histogram and caches every element's bucket id in
//!    a `u16` digit buffer (so the scatter never re-evaluates the key
//!    function, which keeps the disjoint-write argument independent of
//!    the key closure's determinism).
//! 2. **One exclusive `+`-scan** over the `blocks × 2^w` count matrix,
//!    stored **column-major** (`mat[k * nblocks + b]` = count of bucket
//!    `k` in block `b`). Scanning the flat matrix in memory order walks
//!    bucket-major: after the scan, `mat[k * nblocks + b]` is exactly
//!    the output position of block `b`'s first element of bucket `k`,
//!    and the column heads `mat[k * nblocks]` are the bucket bases —
//!    both fall out of a single scan.
//! 3. **Scatter** — one write pass. Each block loads its cursor row
//!    from the scanned matrix and streams elements to their final
//!    positions through a per-block cursor array.
//!
//! The result is stable: within a block, source order is preserved by
//! the monotone cursors; across blocks, by the block-major order of the
//! matrix columns. The inner loops are chunked (deadline checkpoints at
//! [`CANCEL_STRIDE`][crate::parallel] boundaries on the `try_*` path)
//! and branch-light so the compiler can keep them in registers.

use crate::deadline::{self, ScanDeadline};
use crate::element::ScanElem;
use crate::error::{Error, Result};
use crate::parallel::{
    block_range, check, default_schedule, engine_width, go_parallel, plan_blocks, run_blocks,
    scan_span, try_run_blocks, Mode, Schedule, SendPtr, CANCEL_STRIDE,
};
use crate::sync::MinCell;

/// Maximum bucket count a single `multi_split` accepts (the digit
/// cache is `u16`, so bucket ids must fit 16 bits).
pub const MAX_BUCKETS: usize = 1 << 16;

/// Reusable scratch for [`multi_split_into`]: the per-element digit
/// cache and the `blocks × buckets` count matrix. Hoisting the scratch
/// across the passes of a radix sort removes all per-pass allocation
/// beyond the ping-pong buffers themselves.
#[derive(Debug, Default)]
pub struct MultiSplitScratch {
    digits: Vec<u16>,
    counts: Vec<usize>,
}

impl MultiSplitScratch {
    /// Empty scratch; the buffers grow on first use and are reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Shared fused implementation. When `fallible` is false, `d` is
/// `None`, operator panics propagate, and the only reachable error is
/// a precondition violation (length mismatch / out-of-range bucket).
#[allow(clippy::too_many_arguments)]
fn multi_split_core<T, K>(
    sched: Schedule,
    src: &[T],
    dst: &mut [T],
    nbuckets: usize,
    key: &K,
    scratch: &mut MultiSplitScratch,
    d: Option<&ScanDeadline>,
    fallible: bool,
) -> Result<Vec<usize>>
where
    T: ScanElem,
    K: Fn(T) -> usize + Sync,
{
    assert!(nbuckets >= 1, "multi_split: need at least one bucket");
    assert!(
        nbuckets <= MAX_BUCKETS,
        "multi_split: {nbuckets} buckets exceeds MAX_BUCKETS ({MAX_BUCKETS})"
    );
    let n = src.len();
    if dst.len() != n {
        return Err(Error::LengthMismatch {
            expected: n,
            actual: dst.len(),
        });
    }
    if n == 0 {
        return Ok(vec![0; nbuckets]);
    }

    let nblocks = if go_parallel(sched, n) {
        plan_blocks(n, engine_width(sched))
    } else {
        1
    };
    // A single block needs no cross-thread handoff under any schedule.
    let sched = if nblocks == 1 {
        Schedule::Sequential
    } else {
        sched
    };

    scratch.digits.clear();
    scratch.digits.resize(n, 0);
    scratch.counts.clear();
    scratch.counts.resize(nblocks * nbuckets, 0);

    // Phase 1: per-block histograms + digit cache, one read of `src`.
    // First out-of-range bucket id seen by any block (MAX = none).
    let oob = MinCell::new(usize::MAX);
    {
        let dig = SendPtr::new(scratch.digits.as_mut_ptr());
        let cnt = SendPtr::new(scratch.counts.as_mut_ptr());
        let hist = |b: usize| {
            let r = block_range(n, nblocks, b);
            let mut local = vec![0usize; nbuckets];
            let dig = dig.get();
            let mut lo = r.start;
            'chunks: while lo < r.end {
                let hi = (lo + CANCEL_STRIDE).min(r.end);
                for (i, &x) in src[lo..hi].iter().enumerate() {
                    let k = key(x);
                    if k >= nbuckets {
                        oob.lower(k);
                        break 'chunks;
                    }
                    local[k] += 1;
                    // SAFETY: `i + lo` is in this block's disjoint range.
                    unsafe { dig.add(lo + i).write(k as u16) };
                }
                lo = hi;
                if fallible && check(d).is_err() {
                    break; // bail latch; post-phase check is authoritative
                }
            }
            let cnt = cnt.get();
            for (k, &c) in local.iter().enumerate() {
                // SAFETY: column-major slot (k, b) is written only by block b.
                unsafe { cnt.add(k * nblocks + b).write(c) };
            }
        };
        if fallible {
            try_run_blocks(sched, nblocks, d, hist)?;
        } else {
            run_blocks(sched, nblocks, hist);
        }
    }
    let bad = oob.get();
    if bad != usize::MAX {
        if !fallible {
            // xtask-allow: panic-reachability dead on try_ entries: fallible calls take the Err return below, only the infallible wrappers reach this documented panic
            panic!("multi_split: key mapped to bucket {bad}, but only {nbuckets} buckets exist");
        }
        return Err(Error::IndexOutOfBounds {
            index: bad,
            len: nbuckets,
        });
    }
    if fallible {
        check(d)?;
    }

    // Phase 2: ONE exclusive +-scan over the flat column-major matrix.
    // Memory order is bucket-major then block-major, so the scanned
    // slot (k, b) is the stable output offset for that (bucket, block)
    // pair, and column heads are the bucket bases.
    // In-place through `scan_span` so the count matrix rides the same
    // `usize` sum tile as the scans: each tile's loads complete before
    // its writes, and tiles never revisit an index, so reading through
    // the write pointer is sound.
    let acc = {
        let m = scratch.counts.len();
        let ptr = SendPtr::new(scratch.counts.as_mut_ptr());
        // SAFETY: single-threaded pass; `scan_span` loads every index
        // before writing it (per tile), and indices are visited once.
        let load = |i: usize| unsafe { *ptr.get().add(i) };
        // SAFETY: as above — `i` was already loaded when this runs.
        let mut write = |i: usize, s: usize| unsafe { ptr.get().add(i).write(s) };
        scan_span(
            0..m,
            &load,
            0usize,
            &|a: usize, b: usize| a.wrapping_add(b),
            Mode::ExclusiveFwd,
            <crate::op::Sum as crate::op::ScanOp<usize>>::simd_tile(),
            &mut write,
        )
    };
    debug_assert_eq!(acc, n, "histogram must cover the input exactly");
    let mut counts = vec![0usize; nbuckets];
    for (k, c) in counts.iter_mut().enumerate() {
        let base = scratch.counts[k * nblocks];
        let next = if k + 1 < nbuckets {
            scratch.counts[(k + 1) * nblocks]
        } else {
            acc
        };
        *c = next - base;
    }

    // Phase 3: scatter, one write pass over `dst`.
    {
        let out = SendPtr::new(dst.as_mut_ptr());
        let mat = &scratch.counts;
        let digits = &scratch.digits;
        let scat = |b: usize| {
            let r = block_range(n, nblocks, b);
            let mut cur: Vec<usize> = (0..nbuckets).map(|k| mat[k * nblocks + b]).collect();
            let out = out.get();
            let mut lo = r.start;
            while lo < r.end {
                let hi = (lo + CANCEL_STRIDE).min(r.end);
                for (i, &x) in src[lo..hi].iter().enumerate() {
                    let k = digits[lo + i] as usize;
                    let p = cur[k];
                    cur[k] = p + 1;
                    // SAFETY: positions are an exact partition of 0..n —
                    // block b's bucket-k cursor starts at the scanned
                    // matrix slot (k, b) and advances once per cached
                    // digit, so no two writes (in any block) collide.
                    unsafe { out.add(p).write(x) };
                }
                lo = hi;
                if fallible && check(d).is_err() {
                    break; // `dst` stays initialized; caller sees the error
                }
            }
        };
        if fallible {
            try_run_blocks(sched, nblocks, d, scat)?;
            check(d)?;
        } else {
            run_blocks(sched, nblocks, scat);
        }
    }
    Ok(counts)
}

/// Stable `nbuckets`-way split of `src` into `dst` under an explicit
/// schedule, returning the per-bucket counts. `key` maps each element
/// to its bucket in `0..nbuckets`; elements are grouped by bucket in
/// the output, preserving input order within each bucket (exactly the
/// order `⌈d/w⌉` radix passes need).
///
/// # Panics
/// If `nbuckets` is 0 or exceeds [`MAX_BUCKETS`], if `dst.len() !=
/// src.len()`, or if `key` returns a bucket `>= nbuckets`.
pub fn multi_split_into_sched<T, K>(
    sched: Schedule,
    src: &[T],
    dst: &mut [T],
    nbuckets: usize,
    key: K,
    scratch: &mut MultiSplitScratch,
) -> Vec<usize>
where
    T: ScanElem,
    K: Fn(T) -> usize + Sync,
{
    match multi_split_core(sched, src, dst, nbuckets, &key, scratch, None, false) {
        Ok(counts) => counts,
        Err(e) => panic!("multi_split: {e}"),
    }
}

/// [`multi_split_into_sched`] under the process-default schedule.
pub fn multi_split_into<T, K>(
    src: &[T],
    dst: &mut [T],
    nbuckets: usize,
    key: K,
    scratch: &mut MultiSplitScratch,
) -> Vec<usize>
where
    T: ScanElem,
    K: Fn(T) -> usize + Sync,
{
    multi_split_into_sched(default_schedule(), src, dst, nbuckets, key, scratch)
}

/// Allocating convenience: stable multi-way split returning the
/// reordered vector and the per-bucket counts.
pub fn multi_split_by<T, K>(a: &[T], nbuckets: usize, key: K) -> (Vec<T>, Vec<usize>)
where
    T: ScanElem,
    K: Fn(T) -> usize + Sync,
{
    if a.is_empty() {
        return (Vec::new(), vec![0; nbuckets.max(1)]);
    }
    let mut dst = a.to_vec(); // fully overwritten by the scatter
    let mut scratch = MultiSplitScratch::new();
    let counts = multi_split_into(a, &mut dst, nbuckets, key, &mut scratch);
    (dst, counts)
}

/// Fallible [`multi_split_into_sched`]: cooperates with the ambient
/// [`ScanDeadline`] (checked at block boundaries and every few
/// thousand elements), contains operator panics as
/// [`ExecError::WorkerLost`][crate::ExecError::WorkerLost], and
/// reports an out-of-range bucket as [`Error::IndexOutOfBounds`]
/// instead of panicking. On error, `dst`'s contents are unspecified
/// (but initialized).
pub fn try_multi_split_into_sched<T, K>(
    sched: Schedule,
    src: &[T],
    dst: &mut [T],
    nbuckets: usize,
    key: K,
    scratch: &mut MultiSplitScratch,
) -> Result<Vec<usize>>
where
    T: ScanElem,
    K: Fn(T) -> usize + Sync,
{
    let d = deadline::current();
    multi_split_core(sched, src, dst, nbuckets, &key, scratch, d.as_ref(), true)
}

/// [`try_multi_split_into_sched`] under the process-default schedule.
pub fn try_multi_split_into<T, K>(
    src: &[T],
    dst: &mut [T],
    nbuckets: usize,
    key: K,
    scratch: &mut MultiSplitScratch,
) -> Result<Vec<usize>>
where
    T: ScanElem,
    K: Fn(T) -> usize + Sync,
{
    try_multi_split_into_sched(default_schedule(), src, dst, nbuckets, key, scratch)
}

/// Fallible allocating convenience.
pub fn try_multi_split_by<T, K>(a: &[T], nbuckets: usize, key: K) -> Result<(Vec<T>, Vec<usize>)>
where
    T: ScanElem,
    K: Fn(T) -> usize + Sync,
{
    deadline::checkpoint()?;
    if a.is_empty() {
        return Ok((Vec::new(), vec![0; nbuckets.max(1)]));
    }
    let mut dst = a.to_vec();
    let mut scratch = MultiSplitScratch::new();
    let counts = try_multi_split_into(a, &mut dst, nbuckets, key, &mut scratch)?;
    Ok((dst, counts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExecError;

    fn keys(seed: u64, n: usize, bits: u32) -> Vec<u64> {
        let mask = if bits >= 64 {
            u64::MAX
        } else {
            (1 << bits) - 1
        };
        let mut x = seed;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x & mask
            })
            .collect()
    }

    fn reference<T: ScanElem>(
        a: &[T],
        nbuckets: usize,
        key: impl Fn(T) -> usize,
    ) -> (Vec<T>, Vec<usize>) {
        let mut out = Vec::with_capacity(a.len());
        let mut counts = vec![0usize; nbuckets];
        for (k, c) in counts.iter_mut().enumerate() {
            for &x in a {
                if key(x) == k {
                    out.push(x);
                    *c += 1;
                }
            }
        }
        (out, counts)
    }

    #[test]
    fn splits_small_input_stably() {
        let a = [5u64, 7, 3, 1, 4, 2, 7, 2];
        let (got, counts) = multi_split_by(&a, 4, |k| (k & 3) as usize);
        let (want, want_counts) = reference(&a, 4, |k| (k & 3) as usize);
        assert_eq!(got, want);
        assert_eq!(counts, want_counts);
        assert_eq!(counts.iter().sum::<usize>(), a.len());
    }

    #[test]
    fn matches_reference_across_sizes_and_schedules() {
        for sched in [Schedule::Sequential, Schedule::Pooled, Schedule::Spawn] {
            for n in [
                0usize,
                1,
                5,
                1000,
                crate::parallel::PAR_THRESHOLD - 1,
                crate::parallel::PAR_THRESHOLD + 3,
            ] {
                let a = keys(0x9E3779B97F4A7C15 ^ n as u64, n, 8);
                let key = |k: u64| (k & 15) as usize;
                let mut dst = vec![0u64; n];
                let mut scratch = MultiSplitScratch::new();
                let counts = multi_split_into_sched(sched, &a, &mut dst, 16, key, &mut scratch);
                let (want, want_counts) = reference(&a, 16, key);
                assert_eq!(dst, want, "sched={sched:?} n={n}");
                assert_eq!(counts, want_counts, "sched={sched:?} n={n}");
            }
        }
    }

    #[test]
    fn scratch_reuse_across_changing_shapes() {
        let mut scratch = MultiSplitScratch::new();
        for (n, nbuckets) in [(100usize, 4usize), (17, 256), (3000, 2), (100, 100)] {
            let a = keys(n as u64 * 31 + nbuckets as u64, n, 32);
            let key = move |k: u64| (k as usize) % nbuckets;
            let mut dst = vec![0u64; n];
            let counts = multi_split_into(&a, &mut dst, nbuckets, key, &mut scratch);
            let (want, want_counts) = reference(&a, nbuckets, key);
            assert_eq!(dst, want);
            assert_eq!(counts, want_counts);
        }
    }

    #[test]
    fn single_bucket_is_identity() {
        let a = keys(7, 257, 64);
        let (got, counts) = multi_split_by(&a, 1, |_| 0);
        assert_eq!(got, a);
        assert_eq!(counts, vec![257]);
    }

    #[test]
    fn empty_input() {
        let (got, counts) = multi_split_by::<u64, _>(&[], 8, |_| 0);
        assert!(got.is_empty());
        assert_eq!(counts, vec![0; 8]);
    }

    #[test]
    fn tuples_split_stably() {
        // Pair payloads tag the original index; equal buckets keep order.
        let a: Vec<(u64, u64)> = [3u64, 1, 3, 1, 3, 0]
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i as u64))
            .collect();
        let (got, _) = multi_split_by(&a, 4, |(k, _)| k as usize);
        assert_eq!(got, vec![(0, 5), (1, 1), (1, 3), (3, 0), (3, 2), (3, 4)]);
    }

    #[test]
    #[should_panic(expected = "only 4 buckets exist")]
    fn out_of_range_bucket_panics() {
        let a = [1u64, 2, 9];
        multi_split_by(&a, 4, |k| k as usize);
    }

    #[test]
    fn try_reports_out_of_range_bucket() {
        let a = keys(3, 100, 8);
        let mut dst = vec![0u64; 100];
        let mut scratch = MultiSplitScratch::new();
        let r = try_multi_split_into(&a, &mut dst, 4, |k| k as usize, &mut scratch);
        assert!(matches!(r, Err(Error::IndexOutOfBounds { len: 4, .. })));
    }

    #[test]
    fn try_reports_length_mismatch() {
        let a = [1u64, 2, 3];
        let mut dst = vec![0u64; 2];
        let mut scratch = MultiSplitScratch::new();
        let r = try_multi_split_into(&a, &mut dst, 2, |k| (k & 1) as usize, &mut scratch);
        assert_eq!(
            r,
            Err(Error::LengthMismatch {
                expected: 3,
                actual: 2
            })
        );
    }

    #[test]
    fn try_honors_cancelled_deadline() {
        for sched in [Schedule::Sequential, Schedule::Pooled, Schedule::Spawn] {
            let a = keys(11, crate::parallel::PAR_THRESHOLD * 2, 8);
            let d = ScanDeadline::manual();
            d.cancel();
            let r = deadline::with_deadline(&d, || {
                try_multi_split_by(&a, 16, |k| (k & 15) as usize).map(|(v, _)| v[0])
            });
            let _ = sched; // schedules share the ambient-deadline path
            assert_eq!(r, Err(Error::Exec(ExecError::Cancelled)));
        }
    }

    #[test]
    fn try_matches_infallible_when_unbounded() {
        let a = keys(23, crate::parallel::PAR_THRESHOLD + 17, 16);
        let key = |k: u64| (k & 0xFF) as usize;
        let (want, want_counts) = multi_split_by(&a, 256, key);
        let (got, counts) = try_multi_split_by(&a, 256, key).unwrap();
        assert_eq!(got, want);
        assert_eq!(counts, want_counts);
    }
}
