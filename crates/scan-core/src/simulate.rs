//! §3.4: simulating *all* the paper's scans with just two primitives —
//! an integer `+-scan` and an integer `max-scan`.
//!
//! The hardware of Section 3 implements exactly two operations on
//! unsigned `m`-bit fields. This module reproduces the constructions the
//! paper gives for everything else:
//!
//! - **min-scan**: invert the source, `max-scan`, invert the result;
//! - **or-scan / and-scan**: 1-bit `max-scan` / `min-scan`;
//! - **signed max/min**: order-preserving bias into unsigned;
//! - **floating-point max/min**: "flipping the exponent and significand
//!   if the sign bit is set" — the standard monotone bit transform;
//! - **segmented max-scan** (Figure 16): append the segment number above
//!   the value bits, run an *unsegmented* `max-scan`, strip the append;
//! - **segmented +-scan**: unsegmented `+-scan`, copy each segment
//!   head's scan value across the segment (itself a segmented
//!   max-scan), subtract;
//! - **backward scans**: read the vector in reverse order.
//!
//! The primitive pair is abstracted as [`PrimitiveScans`] so the same
//! constructions can run over the software kernels ([`SoftwareScans`])
//! or over the cycle-accurate hardware simulator in the `scan-circuit`
//! crate, which implements this trait for its tree circuit.

use crate::error::{Error, Result};
use crate::op::{Max, Sum};
use crate::parallel;
use crate::scan::scan;
use crate::segmented::Segments;

/// The two primitive scans of the paper's hardware: exclusive `+-scan`
/// (wrapping) and exclusive `max-scan` (identity 0) over unsigned words.
pub trait PrimitiveScans {
    /// Exclusive wrapping `+-scan` over `u64` words.
    fn plus_scan(&self, a: &[u64]) -> Vec<u64>;
    /// Exclusive `max-scan` over `u64` words; position 0 receives 0.
    fn max_scan(&self, a: &[u64]) -> Vec<u64>;
    /// Backward exclusive `+-scan` (§3.4): by default "implemented by
    /// simply reading the vector into the processors in reverse order",
    /// which is what a hardware backend does. Software backends override
    /// this with a direction-aware kernel that never materialises the
    /// reversed vector.
    fn back_plus_scan(&self, a: &[u64]) -> Vec<u64> {
        let mut out = self.plus_scan(&reversed(a));
        out.reverse();
        out
    }
    /// Backward exclusive `max-scan`; see [`Self::back_plus_scan`].
    fn back_max_scan(&self, a: &[u64]) -> Vec<u64> {
        let mut out = self.max_scan(&reversed(a));
        out.reverse();
        out
    }
}

/// Reverse-order copy used by the default (hardware-style) backward
/// scans, which feed the processors in reverse per §3.4.
fn reversed(a: &[u64]) -> Vec<u64> {
    let mut r = a.to_vec();
    r.reverse();
    r
}

/// Shared backends delegate: a counted handle scans like its target,
/// so one backend instance can serve several consumers (e.g. a checked
/// executor *and* the harness reading its fault counters).
impl<B: PrimitiveScans + ?Sized> PrimitiveScans for std::rc::Rc<B> {
    fn plus_scan(&self, a: &[u64]) -> Vec<u64> {
        (**self).plus_scan(a)
    }
    fn max_scan(&self, a: &[u64]) -> Vec<u64> {
        (**self).max_scan(a)
    }
    fn back_plus_scan(&self, a: &[u64]) -> Vec<u64> {
        (**self).back_plus_scan(a)
    }
    fn back_max_scan(&self, a: &[u64]) -> Vec<u64> {
        (**self).back_max_scan(a)
    }
}

impl<B: PrimitiveScans + ?Sized> PrimitiveScans for &B {
    fn plus_scan(&self, a: &[u64]) -> Vec<u64> {
        (**self).plus_scan(a)
    }
    fn max_scan(&self, a: &[u64]) -> Vec<u64> {
        (**self).max_scan(a)
    }
    fn back_plus_scan(&self, a: &[u64]) -> Vec<u64> {
        (**self).back_plus_scan(a)
    }
    fn back_max_scan(&self, a: &[u64]) -> Vec<u64> {
        (**self).back_max_scan(a)
    }
}

/// [`PrimitiveScans`] backed by this crate's software kernels.
#[derive(Debug, Default, Clone, Copy)]
pub struct SoftwareScans;

impl PrimitiveScans for SoftwareScans {
    fn plus_scan(&self, a: &[u64]) -> Vec<u64> {
        scan::<Sum, _>(a)
    }
    fn max_scan(&self, a: &[u64]) -> Vec<u64> {
        // u64 max identity is 0 == u64::MIN, matching the hardware's
        // grounded parent input at the root.
        scan::<Max, _>(a)
    }
    fn back_plus_scan(&self, a: &[u64]) -> Vec<u64> {
        parallel::exclusive_scan_backward_by(a, 0u64, |x, y| x.wrapping_add(y))
    }
    fn back_max_scan(&self, a: &[u64]) -> Vec<u64> {
        parallel::exclusive_scan_backward_by(a, 0u64, u64::max)
    }
}

/// `min-scan` from `max-scan`: invert, scan, invert.
pub fn min_scan_u64<B: PrimitiveScans>(b: &B, a: &[u64]) -> Vec<u64> {
    let inv = parallel::map_by(a, |x| !x);
    parallel::map_by(&b.max_scan(&inv), |x| !x)
}

/// `or-scan` as a 1-bit `max-scan`.
pub fn or_scan<B: PrimitiveScans>(b: &B, a: &[bool]) -> Vec<bool> {
    let bits = parallel::map_by(a, u64::from);
    parallel::map_by(&b.max_scan(&bits), |x| x != 0)
}

/// `and-scan` as a 1-bit `min-scan`.
pub fn and_scan<B: PrimitiveScans>(b: &B, a: &[bool]) -> Vec<bool> {
    // A 1-bit min-scan: complement, 1-bit max-scan, complement.
    let bits = parallel::map_by(a, |x| u64::from(!x));
    parallel::map_by(&b.max_scan(&bits), |x| x == 0)
}

/// Order-preserving bias from `i64` to `u64` (flip the sign bit).
#[inline]
pub fn i64_key(x: i64) -> u64 {
    (x as u64) ^ (1 << 63)
}

/// Inverse of [`i64_key`].
#[inline]
pub fn i64_unkey(k: u64) -> i64 {
    (k ^ (1 << 63)) as i64
}

/// Signed `max-scan` via the unsigned primitive. Position 0 receives
/// `i64::MIN` (the identity, which is what the biased 0 maps back to).
pub fn max_scan_i64<B: PrimitiveScans>(b: &B, a: &[i64]) -> Vec<i64> {
    let keys = parallel::map_by(a, i64_key);
    parallel::map_by(&b.max_scan(&keys), i64_unkey)
}

/// Signed `min-scan` via the unsigned primitive.
pub fn min_scan_i64<B: PrimitiveScans>(b: &B, a: &[i64]) -> Vec<i64> {
    let keys = parallel::map_by(a, |x| !i64_key(x));
    parallel::map_by(&b.max_scan(&keys), |k| i64_unkey(!k))
}

/// Signed `+-scan`: two's-complement wrapping addition is bit-identical
/// to unsigned, so the unsigned primitive serves directly.
pub fn plus_scan_i64<B: PrimitiveScans>(b: &B, a: &[i64]) -> Vec<i64> {
    let bits = parallel::map_by(a, |x| x as u64);
    parallel::map_by(&b.plus_scan(&bits), |x| x as i64)
}

/// The monotone bit transform for `f64`: if the sign bit is set, flip
/// every bit ("flipping the exponent and significand"); otherwise set
/// the sign bit. Total order matches `<` on non-NaN floats.
#[inline]
pub fn f64_key(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Inverse of [`f64_key`].
#[inline]
pub fn f64_unkey(k: u64) -> f64 {
    if k >> 63 == 1 {
        f64::from_bits(k & !(1 << 63))
    } else {
        f64::from_bits(!k)
    }
}

/// Floating-point `max-scan` via the unsigned primitive. Position 0
/// receives `-∞` (the identity).
pub fn max_scan_f64<B: PrimitiveScans>(b: &B, a: &[f64]) -> Vec<f64> {
    let keys = parallel::map_by(a, f64_key);
    let mut out = parallel::map_by(&b.max_scan(&keys), f64_unkey);
    if let Some(first) = out.first_mut() {
        *first = f64::NEG_INFINITY;
    }
    out
}

/// Floating-point `min-scan` via the unsigned primitive. Position 0
/// receives `+∞`.
pub fn min_scan_f64<B: PrimitiveScans>(b: &B, a: &[f64]) -> Vec<f64> {
    let keys = parallel::map_by(a, |x| !f64_key(x));
    let mut out = parallel::map_by(&b.max_scan(&keys), |k| f64_unkey(!k));
    if let Some(first) = out.first_mut() {
        *first = f64::INFINITY;
    }
    out
}

/// Bits needed to store `x`.
fn bits_for(x: u64) -> u32 {
    64 - x.leading_zeros()
}

/// Segmented `max-scan` from the unsegmented primitive (Figure 16).
///
/// Appends the segment number above the top `value_bits` bits of each
/// value, runs one unsegmented `max-scan`, strips the append, and
/// places 0 at segment heads.
///
/// # Errors
/// [`Error::WidthOverflow`] if a value needs more than `value_bits`
/// bits or `value_bits + ⌈lg(#segments+1)⌉ > 64`.
pub fn seg_max_scan_via_primitives<B: PrimitiveScans>(
    b: &B,
    values: &[u64],
    segs: &Segments,
    value_bits: u32,
) -> Result<Vec<u64>> {
    assert_eq!(values.len(), segs.len(), "seg_max_scan length mismatch");
    if values.is_empty() {
        return Ok(Vec::new());
    }
    for &v in values {
        if bits_for(v) > value_bits {
            return Err(Error::WidthOverflow {
                required: bits_for(v),
                available: value_bits,
            });
        }
    }
    // Seg-Number = SFlag + enumerate(SFlag): 1-based segment ids.
    // Wrapping on purpose: the backend may be a deliberately faulty
    // circuit under fault injection, and garbage scan output must
    // produce garbage values, not a panic.
    let flags01: Vec<u64> = (0..segs.len())
        .map(|i| u64::from(segs.is_head(i)))
        .collect();
    let enumerated = b.plus_scan(&flags01);
    let seg_number: Vec<u64> = flags01
        .iter()
        .zip(&enumerated)
        .map(|(&f, &e)| f.wrapping_add(e))
        .collect();
    let seg_bits = bits_for(seg_number.last().copied().unwrap_or(0));
    if value_bits + seg_bits > 64 {
        return Err(Error::WidthOverflow {
            required: value_bits + seg_bits,
            available: 64,
        });
    }
    // B = append(Seg-Number, A); C = extract-bot(max-scan(B)).
    let composite: Vec<u64> = seg_number
        .iter()
        .zip(values)
        .map(|(&s, &v)| (s << value_bits) | v)
        .collect();
    let mask = if value_bits == 64 {
        u64::MAX
    } else {
        (1u64 << value_bits) - 1
    };
    let scanned = b.max_scan(&composite);
    Ok((0..values.len())
        .map(|i| {
            if segs.is_head(i) {
                0
            } else {
                scanned.get(i).copied().unwrap_or(0) & mask
            }
        })
        .collect())
}

/// Segmented `+-scan` from the unsegmented primitives: one `+-scan`,
/// one segmented head-copy (itself a segmented `max-scan`), one
/// subtraction.
///
/// # Errors
/// [`Error::WidthOverflow`] if the running totals do not fit in
/// `value_bits` bits (the head-copy rides on the Figure 16 composite).
pub fn seg_plus_scan_via_primitives<B: PrimitiveScans>(
    b: &B,
    values: &[u64],
    segs: &Segments,
    value_bits: u32,
) -> Result<Vec<u64>> {
    assert_eq!(values.len(), segs.len(), "seg_plus_scan length mismatch");
    if values.is_empty() {
        return Ok(Vec::new());
    }
    let s = b.plus_scan(values);
    // Value of the scan at each segment head, copied across the segment.
    // Heads hold (s[i] + value placeholder); a segmented max-scan of
    // `head ? s : 0` followed by combining with the element's own marked
    // value gives the inclusive head-copy.
    let marked: Vec<u64> = (0..values.len())
        .map(|i| {
            if segs.is_head(i) {
                s.get(i).copied().unwrap_or(0)
            } else {
                0
            }
        })
        .collect();
    let excl = seg_max_scan_via_primitives(b, &marked, segs, value_bits)?;
    let head_copy: Vec<u64> = excl
        .iter()
        .zip(&marked)
        .map(|(&e, &m)| e.max(m))
        .collect();
    Ok(s.iter()
        .zip(&head_copy)
        .map(|(&x, &h)| x.wrapping_sub(h))
        .collect())
}

/// Backward `+-scan` (§3.4): reads the vector in reverse order on
/// hardware backends; software backends run a direction-aware kernel.
pub fn back_plus_scan<B: PrimitiveScans>(b: &B, a: &[u64]) -> Vec<u64> {
    b.back_plus_scan(a)
}

/// Backward `max-scan`; see [`back_plus_scan`].
pub fn back_max_scan<B: PrimitiveScans>(b: &B, a: &[u64]) -> Vec<u64> {
    b.back_max_scan(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{And, Min, Or};
    use crate::segmented::seg_scan;

    const B: SoftwareScans = SoftwareScans;

    #[test]
    fn min_from_max() {
        let a = [5u64, 3, 8, 1, 9];
        assert_eq!(min_scan_u64(&B, &a), scan::<Min, _>(&a));
    }

    #[test]
    fn or_and_from_one_bit() {
        let a = [false, true, false, true, false];
        assert_eq!(or_scan(&B, &a), scan::<Or, _>(&a));
        let c = [true, true, false, true];
        assert_eq!(and_scan(&B, &c), scan::<And, _>(&c));
    }

    #[test]
    fn signed_scans() {
        let a = [-5i64, 3, -9, 7, 0];
        assert_eq!(max_scan_i64(&B, &a), scan::<Max, _>(&a));
        assert_eq!(min_scan_i64(&B, &a), scan::<Min, _>(&a));
        assert_eq!(plus_scan_i64(&B, &a), scan::<Sum, _>(&a));
    }

    #[test]
    fn i64_key_is_monotone() {
        let v = [i64::MIN, -100, -1, 0, 1, 99, i64::MAX];
        let keys: Vec<u64> = v.iter().map(|&x| i64_key(x)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        v.iter().for_each(|&x| assert_eq!(i64_unkey(i64_key(x)), x));
    }

    #[test]
    fn f64_key_is_monotone() {
        let v = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -0.0,
            0.0,
            1e-300,
            3.25,
            f64::INFINITY,
        ];
        let keys: Vec<u64> = v.iter().map(|&x| f64_key(x)).collect();
        for w in keys.windows(2) {
            assert!(w[0] <= w[1], "keys must be nondecreasing");
        }
        for &x in &v {
            let back = f64_unkey(f64_key(x));
            assert!(back == x || (back == 0.0 && x == 0.0));
        }
    }

    #[test]
    fn float_scans_match_direct() {
        let a = [3.5f64, -1.0, 7.25, 2.0, -9.5];
        assert_eq!(max_scan_f64(&B, &a), scan::<Max, _>(&a));
        assert_eq!(min_scan_f64(&B, &a), scan::<Min, _>(&a));
    }

    #[test]
    fn figure16_seg_max_scan() {
        // A = [5 1 3 4 3 9 2 6], SFlag = [T F T F F F T F]
        // Result = [0 5 0 3 4 4 0 2]
        let a = [5u64, 1, 3, 4, 3, 9, 2, 6];
        let segs = Segments::from_flags(vec![
            true, false, true, false, false, false, true, false,
        ]);
        let got = seg_max_scan_via_primitives(&B, &a, &segs, 8).unwrap();
        assert_eq!(got, vec![0, 5, 0, 3, 4, 4, 0, 2]);
        assert_eq!(got, seg_scan::<Max, _>(&a, &segs));
    }

    #[test]
    fn seg_plus_scan_matches_direct() {
        let a = [5u64, 1, 3, 4, 3, 9, 2, 6];
        let segs = Segments::from_flags(vec![
            true, false, true, false, false, false, true, false,
        ]);
        let got = seg_plus_scan_via_primitives(&B, &a, &segs, 16).unwrap();
        assert_eq!(got, seg_scan::<Sum, _>(&a, &segs));
        assert_eq!(got, vec![0, 5, 0, 3, 7, 10, 0, 2]);
    }

    #[test]
    fn seg_scans_random_match_direct() {
        let mut x = 12345u64;
        let mut rng = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x >> 33
        };
        let n = 500;
        let vals: Vec<u64> = (0..n).map(|_| rng() % 1000).collect();
        let flags: Vec<bool> = (0..n).map(|_| rng() % 7 == 0).collect();
        let segs = Segments::from_flags(flags);
        assert_eq!(
            seg_max_scan_via_primitives(&B, &vals, &segs, 16).unwrap(),
            seg_scan::<Max, _>(&vals, &segs)
        );
        assert_eq!(
            seg_plus_scan_via_primitives(&B, &vals, &segs, 32).unwrap(),
            seg_scan::<Sum, _>(&vals, &segs)
        );
    }

    #[test]
    fn width_overflow_detected() {
        let a = [300u64, 1];
        let segs = Segments::single(2);
        assert!(matches!(
            seg_max_scan_via_primitives(&B, &a, &segs, 8),
            Err(Error::WidthOverflow { .. })
        ));
        // 60-bit values with >16 segments cannot fit.
        let big = vec![u64::MAX >> 4; 40];
        let every = Segments::from_flags(vec![true; 40]);
        assert!(matches!(
            seg_max_scan_via_primitives(&B, &big, &every, 60),
            Err(Error::WidthOverflow { .. })
        ));
    }

    #[test]
    fn backward_primitives() {
        let a = [1u64, 2, 3, 4];
        assert_eq!(back_plus_scan(&B, &a), vec![9, 7, 4, 0]);
        assert_eq!(back_max_scan(&B, &a), vec![4, 4, 4, 0]);
    }

    #[test]
    fn empty_inputs() {
        assert!(min_scan_u64(&B, &[]).is_empty());
        assert!(or_scan(&B, &[]).is_empty());
        assert!(max_scan_f64(&B, &[]).is_empty());
        let segs = Segments::from_flags(vec![]);
        assert!(seg_max_scan_via_primitives(&B, &[], &segs, 8)
            .unwrap()
            .is_empty());
        assert!(seg_plus_scan_via_primitives(&B, &[], &segs, 8)
            .unwrap()
            .is_empty());
    }
}
