//! # scan-core
//!
//! The primary contribution of Blelloch's *Scans as Primitive Parallel
//! Operations* (ICPP 1987): scan (prefix) primitives, segmented scans, and
//! the vocabulary of vector operations derived from them.
//!
//! The paper defines a **scan** as taking a binary associative operator `⊕`
//! with identity `i` and an ordered set `[a0, a1, ..., a(n-1)]`, returning
//! `[i, a0, a0⊕a1, ..., a0⊕a1⊕...⊕a(n-2)]` — i.e. an *exclusive* prefix
//! operation. This crate provides:
//!
//! - the five primitive scan operators the paper uses (`+`, `max`, `min`,
//!   `or`, `and`), in forward and backward directions, exclusive and
//!   inclusive ([`mod@scan`], [`ops`]);
//! - segmented versions of all scans, which restart at segment boundaries
//!   ([`segmented`], paper §2.3);
//! - parallel execution kernels (blocked two-pass over a persistent
//!   worker pool, [`parallel`] + [`pool`], plus a single-pass
//!   decoupled-lookback schedule, [`lookback`]), with runtime-dispatched
//!   SIMD tile kernels for the exact integer operators ([`simd`]),
//!   falling back to sequential code below a threshold; set
//!   `SCAN_CORE_THREADS` to pin the width and `SCAN_CORE_SIMD=0` to
//!   pin the scalar kernels;
//! - the derived "simple operations" of §2.2 — `enumerate`, `copy`,
//!   `+-distribute`, `permute`, `split`, `pack` ([`ops`]) — and their
//!   segmented counterparts ([`segops`], §2.3);
//! - processor allocation (§2.4) in [`mod@allocate`];
//! - the §3.4 construction showing that *every* scan in the paper can be
//!   simulated with just two primitives, an integer `+-scan` and
//!   `max-scan` ([`simulate`]).
//!
//! ## Conventions
//!
//! Unless a function says otherwise, *scan* means the paper's exclusive
//! forward scan. Segment flag vectors mark the **start** of each segment;
//! element 0 always begins a segment whether or not its flag is set.
//!
//! ## Example
//!
//! ```
//! use scan_core::{scan, op::Sum};
//!
//! // Paper §2.1: A = [2 1 2 3 5 8 13 21], +-scan(A) = [0 2 3 5 8 13 21 34]
//! let a = [2u32, 1, 2, 3, 5, 8, 13, 21];
//! assert_eq!(scan::<Sum, _>(&a), vec![0, 2, 3, 5, 8, 13, 21, 34]);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod allocate;
pub mod backoff;
pub mod deadline;
pub mod element;
pub mod error;
pub mod lookback;
pub mod multi_split;
pub mod op;
pub mod ops;
pub mod parallel;
pub mod pool;
pub mod scan;
pub mod segmented;
pub mod segops;
pub mod simd;
pub mod simulate;
pub mod stream;
pub mod sync;
pub mod vector;

pub use allocate::{allocate, distribute, try_distribute, Allocation};
pub use deadline::ScanDeadline;
pub use element::ScanElem;
pub use error::{Error, ExecError, Result};
pub use multi_split::{
    multi_split_by, multi_split_into, try_multi_split_by, try_multi_split_into, MultiSplitScratch,
};
pub use op::{And, Max, Min, Or, Prod, ScanOp, Sum};
pub use scan::{
    inclusive_scan, inclusive_scan_backward, reduce, scan, scan_backward, scan_with_total,
    try_inclusive_scan, try_inclusive_scan_backward, try_reduce, try_scan, try_scan_backward,
    try_scan_with_total,
};
pub use segmented::{seg_inclusive_scan, seg_scan, seg_scan_backward, try_seg_scan, Segments};
pub use stream::{
    CarryCheckpoint, CarryDigest, ChunkSource, ScanStream, SegScanStream, SliceSource,
};

/// Convenience prelude: `use scan_core::prelude::*;`
pub mod prelude {
    pub use crate::allocate::{allocate, distribute, try_distribute};
    pub use crate::deadline::{with_deadline, ScanDeadline};
    pub use crate::op::{And, Max, Min, Or, Prod, ScanOp, Sum};
    pub use crate::ops::{
        copy_first, count, distribute_op, enumerate, flag_merge, gather, pack, permute, split,
        split3, split_count, try_copy_first, try_flag_merge, try_gather, try_pack, try_permute,
        try_select, try_split, try_split3, try_split_count,
    };
    pub use crate::scan::{
        inclusive_scan, inclusive_scan_backward, reduce, scan, scan_backward, scan_with_total,
        try_inclusive_scan, try_inclusive_scan_backward, try_reduce, try_scan, try_scan_backward,
        try_scan_with_total,
    };
    pub use crate::segmented::{
        seg_inclusive_scan, seg_scan, seg_scan_backward, try_seg_scan, Segments,
    };
    pub use crate::segops::{
        seg_copy, seg_distribute, seg_enumerate, seg_reduce, seg_split, seg_split3, try_seg_copy,
        try_seg_distribute, try_seg_reduce, try_seg_split, try_seg_split3,
    };
}
