//! Processor allocation (paper §2.4, Figure 8).
//!
//! Given a vector of integers `A`, allocation creates a new vector of
//! length `Σ A[i]` with `A[i]` contiguous elements *assigned to* each
//! position `i`. The paper implements it with a `+-scan` whose results
//! become pointers to the start of each allocated segment; segment head
//! flags are then scattered through those pointers, and values are
//! distributed with a permute plus a segmented copy.
//!
//! ```
//! use scan_core::{allocate, distribute};
//! // Figure 8: V = [v1 v2 v3], A = [4 1 3]
//! let alloc = allocate(&[4, 1, 3]);
//! assert_eq!(alloc.total, 8);
//! assert_eq!(alloc.starts, vec![0, 4, 5]);
//! assert_eq!(
//!     alloc.segments.flags(),
//!     &[true, false, false, false, true, true, false, false]
//! );
//! assert_eq!(
//!     distribute(&["v1", "v2", "v3"], &[4, 1, 3]),
//!     vec!["v1", "v1", "v1", "v1", "v2", "v3", "v3", "v3"]
//! );
//! ```

use crate::element::ScanElem;
use crate::error::{Error, Result};
use crate::op::Sum;
use crate::scan::scan_with_total;
use crate::segmented::Segments;
use crate::segops::seg_copy;

/// The result of a processor allocation: one segment per *nonzero*
/// request, plus the start pointer of every request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Total number of elements allocated (`Σ counts`).
    pub total: usize,
    /// `starts[i]` is the index in the new vector where request `i`'s
    /// elements begin (the `+-scan` of the counts — Figure 8's
    /// "Hpointers"). Requests with `counts[i] == 0` still get a start
    /// pointer but own no elements.
    pub starts: Vec<usize>,
    /// Segmentation of the new vector: one segment per nonzero request.
    pub segments: Segments,
}

/// Allocate `counts[i]` contiguous new elements to each position `i`.
pub fn allocate(counts: &[usize]) -> Allocation {
    let (starts, total) = scan_with_total::<Sum, _>(counts);
    let mut flags = vec![false; total];
    for (i, &c) in counts.iter().enumerate() {
        // Scatter a head flag through the start pointer; zero-count
        // requests scatter nothing (their pointer aliases the next
        // request's start).
        if c > 0 {
            flags[starts[i]] = true;
        }
    }
    Allocation {
        total,
        starts,
        segments: Segments::from_flags(flags),
    }
}

/// Allocate and distribute: the value at position `i` is copied to all
/// `counts[i]` elements assigned to it (Figure 8's `distribute`).
///
/// # Panics
/// If `values.len() != counts.len()`. See [`try_distribute`] for the
/// checked form.
pub fn distribute<T: ScanElem>(values: &[T], counts: &[usize]) -> Vec<T> {
    distribute_impl(values, counts).unwrap_or_else(|e| panic!("distribute length mismatch: {e}"))
}

/// Checked [`distribute`]: `Err(Error::LengthMismatch)` instead of
/// panicking. Honors the ambient [`crate::deadline`] scope.
pub fn try_distribute<T: ScanElem>(values: &[T], counts: &[usize]) -> Result<Vec<T>> {
    crate::deadline::checkpoint()?;
    distribute_impl(values, counts)
}

fn distribute_impl<T: ScanElem>(values: &[T], counts: &[usize]) -> Result<Vec<T>> {
    if values.len() != counts.len() {
        return Err(Error::LengthMismatch {
            expected: values.len(),
            actual: counts.len(),
        });
    }
    let alloc = allocate(counts);
    if alloc.total == 0 {
        return Ok(Vec::new());
    }
    // Permute each value to the head of its segment, then copy across
    // the segment. Positions not at a head get a placeholder that the
    // segmented copy overwrites.
    let mut heads: Vec<T> = vec![values[0]; alloc.total];
    for (i, &c) in counts.iter().enumerate() {
        if c > 0 {
            heads[alloc.starts[i]] = values[i];
        }
    }
    Ok(seg_copy(&heads, &alloc.segments))
}

/// For each allocated element, the index of the request that owns it
/// (the inverse mapping of [`allocate`]).
pub fn owner_of_each(counts: &[usize]) -> Vec<usize> {
    let owners: Vec<usize> = (0..counts.len()).collect();
    distribute(&owners, counts)
}

/// For each allocated element, its rank within its own segment
/// (0-based). In the line-drawing algorithm (§2.4.1) this is the pixel's
/// position along its line, "determined with a +-scan".
pub fn rank_within_segment(counts: &[usize]) -> Vec<usize> {
    let alloc = allocate(counts);
    let ones = vec![1usize; alloc.total];
    crate::segmented::seg_scan::<Sum, _>(&ones, &alloc.segments)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_allocation() {
        let alloc = allocate(&[4, 1, 3]);
        assert_eq!(alloc.total, 8);
        assert_eq!(alloc.starts, vec![0, 4, 5]);
        assert_eq!(
            alloc.segments.flags(),
            &[true, false, false, false, true, true, false, false]
        );
        assert_eq!(alloc.segments.lengths(), vec![4, 1, 3]);
    }

    #[test]
    fn figure8_distribute() {
        assert_eq!(
            distribute(&[1u32, 2, 3], &[4, 1, 3]),
            vec![1, 1, 1, 1, 2, 3, 3, 3]
        );
    }

    #[test]
    fn zero_counts_are_skipped() {
        let alloc = allocate(&[0, 2, 0, 3, 0]);
        assert_eq!(alloc.total, 5);
        assert_eq!(alloc.starts, vec![0, 0, 2, 2, 5]);
        assert_eq!(alloc.segments.lengths(), vec![2, 3]);
        assert_eq!(distribute(&[9u32, 1, 9, 2, 9], &[0, 2, 0, 3, 0]), vec![1, 1, 2, 2, 2]);
    }

    #[test]
    fn all_zero_and_empty() {
        assert_eq!(allocate(&[0, 0]).total, 0);
        assert_eq!(distribute(&[1u32, 2], &[0, 0]), Vec::<u32>::new());
        assert_eq!(allocate(&[]).total, 0);
    }

    #[test]
    fn owners_and_ranks() {
        assert_eq!(owner_of_each(&[2, 0, 3]), vec![0, 0, 2, 2, 2]);
        assert_eq!(rank_within_segment(&[2, 0, 3]), vec![0, 1, 0, 1, 2]);
    }

    #[test]
    fn try_distribute_checks_lengths() {
        assert_eq!(
            try_distribute(&[1u32, 2], &[1, 2]),
            Ok(vec![1, 2, 2])
        );
        assert_eq!(
            try_distribute(&[1u32], &[1, 2]),
            Err(crate::error::Error::LengthMismatch {
                expected: 1,
                actual: 2
            })
        );
    }

    #[test]
    fn leading_zero_count() {
        let alloc = allocate(&[0, 3]);
        assert_eq!(alloc.starts, vec![0, 0]);
        assert_eq!(alloc.segments.flags(), &[true, false, false]);
        assert_eq!(distribute(&[7u32, 8], &[0, 3]), vec![8, 8, 8]);
    }
}
