//! A lazily-initialized persistent worker pool for the scan engine.
//!
//! The seed engine spawned fresh scoped OS threads on *every* scan call
//! (two `thread::scope` rounds per scan). That per-call setup cost is
//! exactly what the paper's "scans are unit-time primitives" thesis says
//! should not exist, so this module replaces it with one process-wide
//! pool: [`global()`] builds `available_parallelism()` workers on first
//! use (override with the `SCAN_CORE_THREADS` environment variable) and
//! every subsequent scan only has to wake them.
//!
//! Design notes:
//!
//! - **Dependency-free**: a `Mutex`/`Condvar` gate broadcasts one job at
//!   a time to the workers; tasks inside a job are claimed with a single
//!   `fetch_add` each, so block-level load balancing is lock-free.
//! - **The submitter participates**: a pool of `k` threads keeps `k - 1`
//!   parked workers, and the thread calling [`WorkerPool::run`] executes
//!   tasks alongside them. A job therefore always completes even if no
//!   worker ever wakes.
//! - **Clean sequential fallback**: a pool of size 1 spawns no threads
//!   at all and `run` degrades to a plain loop; the same happens for a
//!   contended or re-entrant submission, which also makes nested `run`
//!   calls deadlock-free by construction.
//! - **Panic transparency**: a panicking task is caught on the worker,
//!   carried to the submitter, and resumed there — same observable
//!   behavior as the scoped-spawn engine it replaces.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Hard cap on the pool width, far above any sane `SCAN_CORE_THREADS`.
const MAX_THREADS: usize = 512;

/// Lock a mutex, ignoring poisoning (no task code runs under our locks,
/// so a poisoned lock still guards consistent data).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Condvar wait with the same poisoning policy as [`lock`].
fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(PoisonError::into_inner)
}

/// Type-erased pointer to the job's task closure.
///
/// Safety: `WorkerPool::run` keeps the pointee alive until every task of
/// the job has finished (it blocks on the job's completion count), and
/// no worker dereferences the pointer after claiming a task index `>=
/// ntasks`, so the pointer is never read after `run` returns.
struct TaskPtr(*const (dyn Fn(usize) + Sync));

unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

/// Completion state of one job.
#[derive(Default)]
struct Done {
    /// Tasks fully executed so far.
    finished: usize,
    /// First panic payload observed, carried back to the submitter.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// One batch of `ntasks` independent tasks sharing a claim counter.
struct Job {
    task: TaskPtr,
    ntasks: usize,
    next: AtomicUsize,
    done: Mutex<Done>,
    done_cv: Condvar,
}

impl Job {
    /// Claim and execute tasks until the job is exhausted.
    fn run_tasks(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.ntasks {
                return;
            }
            // Safety: `i < ntasks`, so the submitter is still inside
            // `run` and the closure is alive (see `TaskPtr`).
            let task = unsafe { &*self.task.0 };
            let result = catch_unwind(AssertUnwindSafe(|| task(i)));
            let mut done = lock(&self.done);
            done.finished += 1;
            if let Err(payload) = result {
                done.panic.get_or_insert(payload);
            }
            if done.finished == self.ntasks {
                self.done_cv.notify_all();
            }
        }
    }
}

/// The broadcast slot the workers watch.
#[derive(Default)]
struct Gate {
    /// Bumped on every post so sleeping workers can tell old from new.
    epoch: u64,
    /// The job currently being offered, if any.
    job: Option<Arc<Job>>,
    /// Set once, on pool drop.
    shutdown: bool,
}

struct Shared {
    gate: Mutex<Gate>,
    work_cv: Condvar,
}

fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut gate = lock(&shared.gate);
            loop {
                if gate.shutdown {
                    return;
                }
                if gate.epoch != seen_epoch {
                    seen_epoch = gate.epoch;
                    if let Some(job) = gate.job.clone() {
                        break job;
                    }
                } else {
                    gate = wait(&shared.work_cv, gate);
                }
            }
        };
        job.run_tasks();
    }
}

/// A persistent pool of worker threads executing indexed task batches.
///
/// Most code should use the process-wide [`global()`] pool; constructing
/// private pools is mainly for tests and benchmarks that need a specific
/// width regardless of the host.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Serializes submissions; `try_lock` keeps re-entrant or contended
    /// callers on the inline path instead of deadlocking.
    submit: Mutex<()>,
    threads: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkerPool {
    /// Build a pool of `threads` total execution lanes: `threads - 1`
    /// parked workers plus the submitting thread itself. `threads <= 1`
    /// spawns nothing and makes [`run`](Self::run) purely sequential.
    pub fn new(threads: usize) -> Self {
        let want = threads.clamp(1, MAX_THREADS);
        let shared = Arc::new(Shared {
            gate: Mutex::new(Gate::default()),
            work_cv: Condvar::new(),
        });
        let mut handles = Vec::new();
        for i in 1..want {
            let shared = Arc::clone(&shared);
            let builder = std::thread::Builder::new().name(format!("scan-core-{i}"));
            // A failed spawn just narrows the pool; `run` still works.
            if let Ok(h) = builder.spawn(move || worker_loop(&shared)) {
                handles.push(h);
            }
        }
        WorkerPool {
            shared,
            submit: Mutex::new(()),
            threads: handles.len() + 1,
            handles,
        }
    }

    /// Number of execution lanes (parked workers + the submitter).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute `task(0), task(1), ..., task(ntasks - 1)`, distributing
    /// the indices across the pool, and return when all have finished.
    ///
    /// Tasks may run in any order and concurrently; the closure must
    /// make concurrent index-disjoint work safe (the scan engine does
    /// this by giving every index a disjoint output range). Completion
    /// of `run` happens-after every task, so results written by tasks
    /// are visible to the caller without extra synchronization.
    ///
    /// # Panics
    /// If a task panics, the first payload is re-raised on the calling
    /// thread after the remaining tasks finish.
    pub fn run<F>(&self, ntasks: usize, task: F)
    where
        F: Fn(usize) + Sync,
    {
        if ntasks == 0 {
            return;
        }
        if self.threads == 1 || ntasks == 1 {
            for i in 0..ntasks {
                task(i);
            }
            return;
        }
        // One job at a time: a second submitter (or a task submitting
        // from inside the pool) runs inline instead of queueing.
        let Ok(_submission) = self.submit.try_lock() else {
            for i in 0..ntasks {
                task(i);
            }
            return;
        };
        // Erase the borrow lifetime for the `'static` trait-object field:
        // `run` blocks until every task finishes, so `task` outlives all
        // dereferences of the pointer (see `TaskPtr`).
        let wide: *const (dyn Fn(usize) + Sync + '_) = &task;
        #[allow(clippy::missing_transmute_annotations)]
        let erased: TaskPtr = TaskPtr(unsafe { std::mem::transmute(wide) });
        let job = Arc::new(Job {
            task: erased,
            ntasks,
            next: AtomicUsize::new(0),
            done: Mutex::new(Done::default()),
            done_cv: Condvar::new(),
        });
        {
            let mut gate = lock(&self.shared.gate);
            gate.epoch = gate.epoch.wrapping_add(1);
            gate.job = Some(Arc::clone(&job));
            self.shared.work_cv.notify_all();
        }
        // Participate: the submitter is the pool's extra lane.
        job.run_tasks();
        let payload = {
            let mut done = lock(&job.done);
            while done.finished < ntasks {
                done = wait(&job.done_cv, done);
            }
            done.panic.take()
        };
        {
            let mut gate = lock(&self.shared.gate);
            if gate.job.as_ref().is_some_and(|j| Arc::ptr_eq(j, &job)) {
                gate.job = None;
            }
        }
        if let Some(p) = payload {
            resume_unwind(p);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut gate = lock(&self.shared.gate);
            gate.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Pool width for the global pool: `SCAN_CORE_THREADS` if set to a
/// positive integer, else `available_parallelism()`.
fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("SCAN_CORE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n.min(MAX_THREADS);
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The process-wide pool, built on first use. `SCAN_CORE_THREADS=k`
/// (read once, at that first use) overrides the width; `k = 1` disables
/// parallel execution entirely.
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool::new(configured_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_index_runs_exactly_once() {
        let pool = WorkerPool::new(4);
        for ntasks in [0usize, 1, 2, 3, 7, 64, 1000] {
            let hits: Vec<AtomicUsize> = (0..ntasks).map(|_| AtomicUsize::new(0)).collect();
            pool.run(ntasks, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn results_are_visible_after_run() {
        let pool = WorkerPool::new(3);
        let mut out = vec![0u64; 100];
        {
            let slots: Vec<Mutex<&mut u64>> = out.iter_mut().map(Mutex::new).collect();
            pool.run(100, |i| {
                **lock(&slots[i]) = (i as u64) * 3;
            });
        }
        assert!(out.iter().enumerate().all(|(i, &v)| v == (i as u64) * 3));
    }

    #[test]
    fn pool_is_reusable_across_many_jobs() {
        let pool = WorkerPool::new(4);
        let total = AtomicU64::new(0);
        for _ in 0..200 {
            pool.run(8, |i| {
                total.fetch_add(i as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 200 * (0..8).sum::<u64>());
    }

    #[test]
    fn single_thread_pool_is_sequential() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let hits = AtomicUsize::new(0);
        pool.run(10, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn task_panic_propagates_to_submitter() {
        let pool = WorkerPool::new(4);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, |i| {
                assert!(i != 9, "task nine exploded");
            });
        }));
        let msg = match caught {
            Err(p) => p
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| p.downcast_ref::<String>().cloned())
                .unwrap_or_default(),
            Ok(()) => panic!("expected the job to panic"),
        };
        assert!(msg.contains("task nine exploded"), "got: {msg}");
        // The pool must survive a panicking job.
        let hits = AtomicUsize::new(0);
        pool.run(8, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn concurrent_submitters_all_complete() {
        let pool = WorkerPool::new(4);
        let total = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..6 {
                s.spawn(|| {
                    for _ in 0..50 {
                        pool.run(16, |i| {
                            total.fetch_add(i as u64 + 1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        let per_job: u64 = (1..=16).sum();
        assert_eq!(total.load(Ordering::Relaxed), 6 * 50 * per_job);
    }

    #[test]
    fn reentrant_run_degrades_to_inline() {
        let pool = WorkerPool::new(4);
        let inner_hits = AtomicUsize::new(0);
        pool.run(4, |_| {
            // A task submitting to its own pool must not deadlock.
            pool.run(4, |_| {
                inner_hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(inner_hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = global() as *const WorkerPool;
        let b = global() as *const WorkerPool;
        assert_eq!(a, b);
        assert!(global().threads() >= 1);
    }
}
