//! A lazily-initialized persistent worker pool for the scan engine.
//!
//! The seed engine spawned fresh scoped OS threads on *every* scan call
//! (two `thread::scope` rounds per scan). That per-call setup cost is
//! exactly what the paper's "scans are unit-time primitives" thesis says
//! should not exist, so this module replaces it with one process-wide
//! pool: [`global()`] builds `available_parallelism()` workers on first
//! use (override with the `SCAN_CORE_THREADS` environment variable) and
//! every subsequent scan only has to wake them.
//!
//! Design notes:
//!
//! - **Dependency-free**: a `Mutex`/`Condvar` gate broadcasts one job at
//!   a time to the workers; tasks inside a job are claimed with a single
//!   `fetch_add` each, so block-level load balancing is lock-free. The
//!   `fetch_add` makes claiming *in-order*: task `t` is claimed only
//!   after `0..t` have been claimed. That ordering is load-bearing for
//!   the decoupled-lookback schedule ([`crate::lookback`]), whose
//!   forward-progress argument needs a spinning block's predecessors to
//!   be running or finished — never parked unstarted behind it.
//! - **The submitter participates**: a pool of `k` threads keeps `k - 1`
//!   parked workers, and the thread calling [`WorkerPool::run`] executes
//!   tasks alongside them. A job therefore always completes even if no
//!   worker ever wakes.
//! - **Clean sequential fallback**: a pool of size 1 spawns no threads
//!   at all and `run` degrades to a plain loop; the same happens for a
//!   contended or re-entrant submission, which also makes nested `run`
//!   calls deadlock-free by construction.
//! - **Panic transparency**: a panicking task is caught on the worker,
//!   carried to the submitter, and resumed there — same observable
//!   behavior as the scoped-spawn engine it replaces. The fallible
//!   [`WorkerPool::try_run`] entry point instead *contains* the panic
//!   and reports a typed [`ExecError::WorkerLost`], so callers opting
//!   into the resilient API never see a replayed payload.
//! - **Worker supervision**: a worker thread that somehow unwinds out
//!   of its loop (tasks are caught individually, but e.g. a panic
//!   payload whose own `Drop` panics can escape) is replaced by a
//!   freshly spawned worker, observable via
//!   [`WorkerPool::respawns`]. The pool never shrinks below its
//!   configured width because of a panic.
//! - **Deadlines are cooperative**: [`WorkerPool::try_run`] accepts an
//!   optional [`ScanDeadline`]; workers re-check it before every task
//!   claim and a submitter-side watchdog latches expiry while waiting,
//!   after which unstarted tasks are drained unexecuted. A task that is
//!   already running is never interrupted — `try_run` must wait for
//!   in-flight tasks before returning (the task closure is borrowed) —
//!   so long-running operators should themselves check the token (the
//!   fallible scan engine does, at a fixed stride).

use crate::deadline::ScanDeadline;
use crate::error::ExecError;
use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use crate::sync::{thread, Arc, Condvar, Mutex, MutexGuard};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
#[cfg(not(loom))]
use std::sync::OnceLock;
use std::sync::PoisonError;
use std::time::Duration;

/// Hard cap on the pool width, far above any sane `SCAN_CORE_THREADS`.
const MAX_THREADS: usize = 512;

/// How often the submitter-side watchdog re-checks a submission's
/// deadline while waiting for stragglers.
const WATCHDOG_TICK: Duration = Duration::from_millis(5);

/// Lock a mutex, ignoring poisoning (no task code runs under our locks,
/// so a poisoned lock still guards consistent data).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Condvar wait with the same poisoning policy as [`lock`].
fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(PoisonError::into_inner)
}

/// Bounded condvar wait with the same poisoning policy as [`lock`].
fn wait_for<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>, dur: Duration) -> MutexGuard<'a, T> {
    cv.wait_timeout(g, dur)
        .unwrap_or_else(PoisonError::into_inner)
        .0
}

/// Type-erased pointer to the job's task closure.
///
/// SAFETY: `WorkerPool::run` keeps the pointee alive until every task of
/// the job has finished (it blocks on the job's completion count), and
/// no worker dereferences the pointer after claiming a task index `>=
/// ntasks`, so the pointer is never read after `run` returns.
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (`dyn Fn(usize) + Sync`) and stays
// alive for every dereference — `drive` blocks until all tasks finish
// before its borrow of the closure ends (see the type docs above).
unsafe impl Send for TaskPtr {}
// SAFETY: sharing `&TaskPtr` across workers only ever yields `&dyn Fn`
// calls on a `Sync` closure; no mutation is reachable through it.
unsafe impl Sync for TaskPtr {}

/// Completion state of one job.
#[derive(Default)]
struct Done {
    /// Tasks fully executed (or drained after an abort) so far.
    finished: usize,
    /// Number of task panics contained within this job.
    panics: u32,
    /// First panic payload observed, carried back to the submitter.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// One batch of `ntasks` independent tasks sharing a claim counter.
struct Job {
    task: TaskPtr,
    ntasks: usize,
    next: AtomicUsize,
    /// Once set, tasks not yet started are claimed and marked finished
    /// without executing, so the job converges quickly.
    aborted: AtomicBool,
    /// Deadline attached to the submission, if any; workers re-check it
    /// before every claim so an expired job drains without waiting for
    /// the submitter's watchdog.
    deadline: Option<ScanDeadline>,
    done: Mutex<Done>,
    done_cv: Condvar,
}

impl Job {
    /// True once the job should stop doing real work.
    fn bailed(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
            || self.deadline.as_ref().is_some_and(|d| d.check().is_err())
    }

    /// Claim and execute tasks until the job is exhausted.
    fn run_tasks(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.ntasks {
                return;
            }
            let result = if self.bailed() {
                // Drain: count the task finished without running it.
                Ok(())
            } else {
                // SAFETY: `i < ntasks`, so the submitter is still inside
                // `run`/`try_run` and the closure is alive (see
                // `TaskPtr`).
                let task = unsafe { &*self.task.0 };
                catch_unwind(AssertUnwindSafe(|| task(i)))
            };
            let mut done = lock(&self.done);
            done.finished += 1;
            if let Err(payload) = result {
                done.panics += 1;
                done.panic.get_or_insert(payload);
            }
            if done.finished == self.ntasks {
                self.done_cv.notify_all();
            }
        }
    }
}

/// The broadcast slot the workers watch.
#[derive(Default)]
struct Gate {
    /// Bumped on every post so sleeping workers can tell old from new.
    epoch: u64,
    /// The job currently being offered, if any.
    job: Option<Arc<Job>>,
    /// Set once, on pool drop.
    shutdown: bool,
}

struct Shared {
    gate: Mutex<Gate>,
    work_cv: Condvar,
    /// Workers replaced after an unwind escaped a worker thread.
    respawns: AtomicUsize,
}

fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut gate = lock(&shared.gate);
            loop {
                if gate.shutdown {
                    return;
                }
                if gate.epoch != seen_epoch {
                    seen_epoch = gate.epoch;
                    if let Some(job) = gate.job.clone() {
                        break job;
                    }
                } else {
                    gate = wait(&shared.work_cv, gate);
                }
            }
        };
        job.run_tasks();
    }
}

/// Supervision guard held for the lifetime of a worker thread: if the
/// worker unwinds out of [`worker_loop`] (individual tasks are caught,
/// but e.g. a panic payload whose `Drop` itself panics can escape the
/// accounting path), the guard spawns a replacement worker so the pool
/// keeps its configured width.
struct Respawn {
    shared: Arc<Shared>,
    name: String,
}

impl Drop for Respawn {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.shared.respawns.fetch_add(1, Ordering::Relaxed);
            spawn_worker(&self.shared, self.name.clone());
        }
    }
}

/// Body of every worker thread, original or respawned.
fn worker_body(shared: Arc<Shared>, name: String) {
    let _guard = Respawn {
        shared: Arc::clone(&shared),
        name,
    };
    worker_loop(&shared);
    // Clean shutdown: the guard drops without panicking, so it is inert.
}

/// Spawn one worker thread. A failed spawn is tolerated — the pool just
/// runs narrower (and a failed *respawn* leaves the submitter and the
/// surviving workers to finish jobs, which they always can).
fn spawn_worker(shared: &Arc<Shared>, name: String) -> Option<thread::JoinHandle<()>> {
    let sh = Arc::clone(shared);
    let n = name.clone();
    thread::Builder::new()
        .name(name)
        .spawn(move || worker_body(sh, n))
        .ok()
}

/// A persistent pool of worker threads executing indexed task batches.
///
/// Most code should use the process-wide [`global()`] pool; constructing
/// private pools is mainly for tests and benchmarks that need a specific
/// width regardless of the host.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Serializes submissions; `try_lock` keeps re-entrant or contended
    /// callers on the inline path instead of deadlocking.
    submit: Mutex<()>,
    threads: usize,
    handles: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkerPool {
    /// Build a pool of `threads` total execution lanes: `threads - 1`
    /// parked workers plus the submitting thread itself. `threads <= 1`
    /// spawns nothing and makes [`run`](Self::run) purely sequential.
    pub fn new(threads: usize) -> Self {
        let want = threads.clamp(1, MAX_THREADS);
        let shared = Arc::new(Shared {
            gate: Mutex::new(Gate::default()),
            work_cv: Condvar::new(),
            respawns: AtomicUsize::new(0),
        });
        let mut handles = Vec::new();
        for i in 1..want {
            // A failed spawn just narrows the pool; `run` still works.
            if let Some(h) = spawn_worker(&shared, format!("scan-core-{i}")) {
                handles.push(h);
            }
        }
        WorkerPool {
            shared,
            submit: Mutex::new(()),
            threads: handles.len() + 1,
            handles,
        }
    }

    /// Number of execution lanes (parked workers + the submitter).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of worker threads that have been replaced after a panic
    /// escaped a worker. Zero in a healthy pool.
    pub fn respawns(&self) -> usize {
        self.shared.respawns.load(Ordering::Relaxed)
    }

    /// Execute `task(0), task(1), ..., task(ntasks - 1)`, distributing
    /// the indices across the pool, and return when all have finished.
    ///
    /// Tasks may run in any order and concurrently; the closure must
    /// make concurrent index-disjoint work safe (the scan engine does
    /// this by giving every index a disjoint output range). Completion
    /// of `run` happens-after every task, so results written by tasks
    /// are visible to the caller without extra synchronization.
    ///
    /// # Panics
    /// If a task panics, the first payload is re-raised on the calling
    /// thread after the remaining tasks finish.
    pub fn run<F>(&self, ntasks: usize, task: F)
    where
        F: Fn(usize) + Sync,
    {
        if ntasks == 0 {
            return;
        }
        if self.threads == 1 || ntasks == 1 {
            for i in 0..ntasks {
                task(i);
            }
            return;
        }
        // One job at a time: a second submitter (or a task submitting
        // from inside the pool) runs inline instead of queueing.
        let Ok(_submission) = self.submit.try_lock() else {
            for i in 0..ntasks {
                task(i);
            }
            return;
        };
        let (_, payload) = self.drive(ntasks, None, &task);
        if let Some(p) = payload {
            resume_unwind(p);
        }
    }

    /// Fallible variant of [`run`](Self::run): executes the task batch
    /// under an optional [`ScanDeadline`] and reports failures as typed
    /// errors instead of panicking.
    ///
    /// - A panicking task is contained (its payload is dropped, never
    ///   replayed) and the whole submission fails with
    ///   [`ExecError::WorkerLost`] carrying the panic count. Remaining
    ///   tasks still run, so sibling outputs stay consistent.
    /// - When `deadline` trips, tasks not yet started are drained
    ///   unexecuted and the submission fails with
    ///   [`ExecError::DeadlineExceeded`] (or
    ///   [`ExecError::Cancelled`]). Cancellation is cooperative: an
    ///   in-flight task is never interrupted, so `try_run` returns only
    ///   after every claimed task has yielded.
    ///
    /// Panic containment takes precedence: if tasks both panicked and
    /// overran the deadline, the error is `WorkerLost`.
    pub fn try_run<F>(
        &self,
        ntasks: usize,
        deadline: Option<&ScanDeadline>,
        task: F,
    ) -> Result<(), ExecError>
    where
        F: Fn(usize) + Sync,
    {
        if let Some(d) = deadline {
            d.check()?;
        }
        if ntasks == 0 {
            return Ok(());
        }
        let inline = |task: &F| -> Result<(), ExecError> {
            let mut panics = 0u32;
            for i in 0..ntasks {
                if deadline.is_some_and(|d| d.check().is_err()) {
                    break;
                }
                if catch_unwind(AssertUnwindSafe(|| task(i))).is_err() {
                    panics += 1;
                }
            }
            if panics > 0 {
                return Err(ExecError::WorkerLost { panics });
            }
            if let Some(d) = deadline {
                d.check()?;
            }
            Ok(())
        };
        if self.threads == 1 || ntasks == 1 {
            return inline(&task);
        }
        let Ok(_submission) = self.submit.try_lock() else {
            return inline(&task);
        };
        let (panics, payload) = self.drive(ntasks, deadline, &task);
        drop(payload);
        if panics > 0 {
            return Err(ExecError::WorkerLost { panics });
        }
        if let Some(d) = deadline {
            d.check()?;
        }
        Ok(())
    }

    /// Post one job, participate, and wait for completion. Returns the
    /// contained panic count and the first panic payload.
    ///
    /// Must be called with the submission lock held. On return the gate
    /// has been restored to a clean state: the job slot is empty and
    /// the epoch advanced past the job, so no later submission (or
    /// late-waking worker) can observe this job again.
    fn drive(
        &self,
        ntasks: usize,
        deadline: Option<&ScanDeadline>,
        task: &(dyn Fn(usize) + Sync),
    ) -> (u32, Option<Box<dyn std::any::Any + Send>>) {
        let wide: *const (dyn Fn(usize) + Sync + '_) = task;
        // SAFETY: lifetime-erasing transmute only (pointer-to-pointer,
        // same vtable layout): `drive` blocks until every task has
        // finished, so `task` outlives all dereferences of the erased
        // pointer (see `TaskPtr`).
        #[allow(clippy::missing_transmute_annotations)]
        let erased: TaskPtr = TaskPtr(unsafe { std::mem::transmute(wide) });
        let job = Arc::new(Job {
            task: erased,
            ntasks,
            next: AtomicUsize::new(0),
            aborted: AtomicBool::new(false),
            deadline: deadline.cloned(),
            done: Mutex::new(Done::default()),
            done_cv: Condvar::new(),
        });
        {
            let mut gate = lock(&self.shared.gate);
            gate.epoch = gate.epoch.wrapping_add(1);
            gate.job = Some(Arc::clone(&job));
            self.shared.work_cv.notify_all();
        }
        // Participate: the submitter is the pool's extra lane. Contain
        // any unwind that escapes the accounting path (e.g. a panic
        // payload whose own `Drop` panics) and keep participating —
        // every attempt claims at least one task, so this terminates,
        // and it guarantees progress even if every worker died.
        while catch_unwind(AssertUnwindSafe(|| job.run_tasks())).is_err() {}
        let (panics, payload) = {
            let mut done = lock(&job.done);
            while done.finished < ntasks {
                match deadline {
                    // Watchdog: bounded waits so an expired deadline is
                    // latched and the job switches to drain mode even
                    // if no running task ever checks the token.
                    Some(d) => {
                        done = wait_for(&job.done_cv, done, WATCHDOG_TICK);
                        if d.check().is_err() {
                            job.aborted.store(true, Ordering::Release);
                        }
                    }
                    None => done = wait(&job.done_cv, done),
                }
            }
            (done.panics, done.panic.take())
        };
        {
            // Leave a clean gate: clear the finished job *and* advance
            // the epoch, so a worker waking late observes "new epoch,
            // nothing to do" rather than re-examining a stale job.
            let mut gate = lock(&self.shared.gate);
            if gate.job.as_ref().is_some_and(|j| Arc::ptr_eq(j, &job)) {
                gate.job = None;
                gate.epoch = gate.epoch.wrapping_add(1);
            }
        }
        (panics, payload)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut gate = lock(&self.shared.gate);
            gate.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Parse a `SCAN_CORE_THREADS` value: a positive integer (surrounding
/// whitespace tolerated), capped at [`MAX_THREADS`]. Zero, negative,
/// empty, and garbage values are rejected (`None`), which makes the
/// pool fall back to `available_parallelism()` rather than building a
/// zero-width or absurdly wide pool.
#[cfg_attr(loom, allow(dead_code))] // only `global()` (not(loom)) calls it
fn parse_threads(raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n.min(MAX_THREADS)),
        _ => None,
    }
}

/// Pool width for the global pool: `SCAN_CORE_THREADS` if set to a
/// positive integer, else `available_parallelism()`.
#[cfg(not(loom))]
fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("SCAN_CORE_THREADS") {
        if let Some(n) = parse_threads(&v) {
            return n;
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The process-wide pool, built on first use. `SCAN_CORE_THREADS=k`
/// (read once, at that first use) overrides the width; `k = 1` disables
/// parallel execution entirely.
///
/// Not available under `cfg(loom)`: a `static` pool would leak model
/// state across explored executions. Loom scenarios build private
/// pools inside `loom::model` instead.
#[cfg(not(loom))]
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool::new(configured_threads()))
}

/// Width of the [`global`] pool (1 under `cfg(loom)`, where no global
/// pool exists and the pooled schedule degrades to sequential).
pub(crate) fn global_threads() -> usize {
    #[cfg(not(loom))]
    {
        global().threads()
    }
    #[cfg(loom)]
    {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_index_runs_exactly_once() {
        let pool = WorkerPool::new(4);
        for ntasks in [0usize, 1, 2, 3, 7, 64, 1000] {
            let hits: Vec<AtomicUsize> = (0..ntasks).map(|_| AtomicUsize::new(0)).collect();
            pool.run(ntasks, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn results_are_visible_after_run() {
        let pool = WorkerPool::new(3);
        let mut out = vec![0u64; 100];
        {
            let slots: Vec<Mutex<&mut u64>> = out.iter_mut().map(Mutex::new).collect();
            pool.run(100, |i| {
                **lock(&slots[i]) = (i as u64) * 3;
            });
        }
        assert!(out.iter().enumerate().all(|(i, &v)| v == (i as u64) * 3));
    }

    #[test]
    fn pool_is_reusable_across_many_jobs() {
        let pool = WorkerPool::new(4);
        let total = AtomicU64::new(0);
        for _ in 0..200 {
            pool.run(8, |i| {
                total.fetch_add(i as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 200 * (0..8).sum::<u64>());
    }

    #[test]
    fn single_thread_pool_is_sequential() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let hits = AtomicUsize::new(0);
        pool.run(10, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn task_panic_propagates_to_submitter() {
        let pool = WorkerPool::new(4);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, |i| {
                assert!(i != 9, "task nine exploded");
            });
        }));
        let msg = match caught {
            Err(p) => p
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| p.downcast_ref::<String>().cloned())
                .unwrap_or_default(),
            Ok(()) => panic!("expected the job to panic"),
        };
        assert!(msg.contains("task nine exploded"), "got: {msg}");
        // The pool must survive a panicking job.
        let hits = AtomicUsize::new(0);
        pool.run(8, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn concurrent_submitters_all_complete() {
        let pool = WorkerPool::new(4);
        let total = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..6 {
                s.spawn(|| {
                    for _ in 0..50 {
                        pool.run(16, |i| {
                            total.fetch_add(i as u64 + 1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        let per_job: u64 = (1..=16).sum();
        assert_eq!(total.load(Ordering::Relaxed), 6 * 50 * per_job);
    }

    #[test]
    fn reentrant_run_degrades_to_inline() {
        let pool = WorkerPool::new(4);
        let inner_hits = AtomicUsize::new(0);
        pool.run(4, |_| {
            // A task submitting to its own pool must not deadlock.
            pool.run(4, |_| {
                inner_hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(inner_hits.load(Ordering::Relaxed), 16);
    }

    #[cfg(not(loom))]
    #[test]
    fn global_pool_is_a_singleton() {
        let a = global() as *const WorkerPool;
        let b = global() as *const WorkerPool;
        assert_eq!(a, b);
        assert!(global().threads() >= 1);
    }

    #[test]
    fn try_run_executes_every_task_once() {
        let pool = WorkerPool::new(4);
        let d = ScanDeadline::after(Duration::from_secs(60));
        for ntasks in [0usize, 1, 7, 64] {
            let hits: Vec<AtomicUsize> = (0..ntasks).map(|_| AtomicUsize::new(0)).collect();
            pool.try_run(ntasks, Some(&d), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn try_run_contains_panics_as_worker_lost() {
        let pool = WorkerPool::new(4);
        let err = pool
            .try_run(16, None, |i| {
                assert!(i != 5, "induced task failure");
            })
            .unwrap_err();
        assert!(matches!(err, ExecError::WorkerLost { panics } if panics >= 1));
        // Regression (satellite): the recovery must leave a clean gate —
        // no stale job, epoch advanced — and the *next* submission must
        // behave normally on both the panicking and fallible paths.
        {
            let gate = lock(&pool.shared.gate);
            assert!(gate.job.is_none(), "stale job left in the gate");
        }
        let hits = AtomicUsize::new(0);
        pool.run(32, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 32);
        let d = ScanDeadline::after(Duration::from_secs(60));
        assert!(pool.try_run(8, Some(&d), |_| {}).is_ok());
    }

    #[test]
    fn try_run_counts_multiple_panics() {
        // Width 1 forces the inline path: deterministic panic count.
        let pool = WorkerPool::new(1);
        let err = pool
            .try_run(10, None, |i| {
                assert!(i % 2 == 0, "odd task failure");
            })
            .unwrap_err();
        assert_eq!(err, ExecError::WorkerLost { panics: 5 });
    }

    #[test]
    fn try_run_expired_deadline_runs_nothing() {
        let pool = WorkerPool::new(4);
        let d = ScanDeadline::at(std::time::Instant::now());
        let ran = AtomicUsize::new(0);
        let err = pool
            .try_run(16, Some(&d), |_| {
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap_err();
        assert_eq!(err, ExecError::DeadlineExceeded);
        assert_eq!(ran.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn try_run_deadline_mid_job_drains_and_reports() {
        let pool = WorkerPool::new(2);
        let d = ScanDeadline::after(Duration::from_millis(10));
        let ran = AtomicUsize::new(0);
        let err = pool
            .try_run(64, Some(&d), |i| {
                if i < 2 {
                    std::thread::sleep(Duration::from_millis(40));
                }
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap_err();
        assert_eq!(err, ExecError::DeadlineExceeded);
        // The tasks claimed after expiry were drained, not executed.
        assert!(ran.load(Ordering::Relaxed) < 64);
        // The pool is reusable afterwards.
        assert!(pool.try_run(8, None, |_| {}).is_ok());
    }

    #[test]
    fn try_run_cancellation_is_typed() {
        let pool = WorkerPool::new(4);
        let d = ScanDeadline::manual();
        d.cancel();
        assert_eq!(pool.try_run(8, Some(&d), |_| {}), Err(ExecError::Cancelled));
    }

    #[test]
    fn gate_is_clean_after_each_job() {
        let pool = WorkerPool::new(4);
        let e0 = lock(&pool.shared.gate).epoch;
        pool.run(8, |_| {});
        let gate = lock(&pool.shared.gate);
        assert!(gate.job.is_none());
        // One bump to post the job, one to retire it.
        assert_eq!(gate.epoch, e0 + 2);
    }

    #[test]
    fn thread_count_parsing_rejects_junk() {
        // Rejected: zero width, signs, garbage, empty/whitespace.
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-3"), None);
        assert_eq!(parse_threads("abc"), None);
        assert_eq!(parse_threads(""), None);
        assert_eq!(parse_threads("   "), None);
        assert_eq!(parse_threads("3.5"), None);
        assert_eq!(parse_threads("8 cores"), None);
    }

    #[test]
    fn thread_count_parsing_accepts_and_caps() {
        assert_eq!(parse_threads("1"), Some(1));
        assert_eq!(parse_threads("  8  "), Some(8));
        assert_eq!(parse_threads("512"), Some(MAX_THREADS));
        // Huge-but-parseable values clamp to the cap instead of
        // attempting to spawn millions of workers.
        assert_eq!(parse_threads("99999999"), Some(MAX_THREADS));
        assert_eq!(parse_threads(&usize::MAX.to_string()), Some(MAX_THREADS));
        // Overflowing usize is a parse error, not a panic.
        assert_eq!(parse_threads("999999999999999999999999999"), None);
    }

    #[test]
    fn width_one_pool_spawns_no_workers() {
        // `new(0)` clamps up to 1; neither width spawns OS threads.
        for req in [0usize, 1] {
            let pool = WorkerPool::new(req);
            assert_eq!(pool.threads(), 1);
            assert!(pool.handles.is_empty(), "width-1 pool spawned workers");
            assert_eq!(pool.respawns(), 0);
        }
    }

    #[test]
    fn width_one_try_run_honors_cancellation() {
        let pool = WorkerPool::new(1);
        let d = ScanDeadline::manual();
        let ran = AtomicUsize::new(0);
        let err = pool
            .try_run(8, Some(&d), |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i == 2 {
                    d.cancel();
                }
            })
            .unwrap_err();
        assert_eq!(err, ExecError::Cancelled);
        // Sequential fallback: tasks 0..=2 ran, the cancellation was
        // seen before task 3, nothing after it executed.
        assert_eq!(ran.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn width_one_nested_run_is_inline() {
        let pool = WorkerPool::new(1);
        let inner_hits = AtomicUsize::new(0);
        pool.run(3, |_| {
            pool.run(3, |_| {
                inner_hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(inner_hits.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn respawn_guard_replaces_a_dead_worker() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.respawns(), 0);
        let shared = Arc::clone(&pool.shared);
        let h = std::thread::Builder::new()
            .spawn(move || {
                let _guard = Respawn {
                    shared,
                    name: "scan-core-doomed".into(),
                };
                panic!("induced worker death");
            })
            .unwrap();
        assert!(h.join().is_err());
        // The guard ran during the unwind: a replacement was spawned
        // and counted before `join` returned.
        assert_eq!(pool.respawns(), 1);
        // The pool (now including the replacement worker) still works.
        let total = AtomicU64::new(0);
        pool.run(16, |i| {
            total.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), (0..16).sum::<u64>());
    }
}
