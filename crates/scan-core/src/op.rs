//! The binary associative operators a scan can be taken over.
//!
//! The paper (§1) restricts the *primitive* scans to integer `+` and
//! `max`, and shows (§3.4, reproduced in [`crate::simulate`]) that the
//! remaining useful scans — `min`, `or`, `and`, floating-point `max`/`min`
//! — reduce to those two. At the library level we expose all of them
//! directly as zero-sized operator types implementing [`ScanOp`].

use crate::element::ScanElem;
use crate::simd::SimdTile;

/// A binary associative operator with identity, usable in a scan.
///
/// Implementors are zero-sized marker types ([`Sum`], [`Max`], [`Min`],
/// [`Or`], [`And`], [`Prod`]). The operator must be associative and
/// `IDENTITY ⊕ x == x` must hold; the scan kernels rely on both to
/// reassociate work across blocks.
///
/// Integer addition and multiplication are **wrapping**: the paper's
/// machine operates on fixed-width fields, so sums are taken modulo the
/// word size rather than panicking on overflow.
pub trait ScanOp<T: ScanElem>: Send + Sync + 'static {
    /// Human-readable operator name, e.g. `"+"` or `"max"`.
    const NAME: &'static str;

    /// The identity element `i` with `combine(i, x) == x`.
    fn identity() -> T;

    /// Apply the operator: `a ⊕ b`.
    fn combine(a: T, b: T) -> T;

    /// Vectorized tile kernels for this operator over `T`, if the
    /// running CPU has them (see [`crate::simd`]). Only overridden
    /// where reassociation is bit-exact — integer `+`/`max` at 64-bit
    /// width; everything else keeps the scalar engine.
    fn simd_tile() -> Option<&'static SimdTile<T>> {
        None
    }

    /// Vectorized tile kernels for the segmented `(T, head-flag)`
    /// pair operator derived from this operator (paper §2.3).
    fn simd_seg_tile() -> Option<&'static SimdTile<(T, bool)>> {
        None
    }
}

/// Addition (the paper's `+-scan`). Wrapping for integers.
pub struct Sum;
/// Maximum (the paper's `max-scan`).
pub struct Max;
/// Minimum (`min-scan`), simulated from `max-scan` in the paper.
pub struct Min;
/// Logical / bitwise or (`or-scan`).
pub struct Or;
/// Logical / bitwise and (`and-scan`).
pub struct And;
/// Product (`×-scan`); used by Stone's polynomial evaluation (appendix).
pub struct Prod;

macro_rules! impl_int_ops {
    ($($t:ty),*) => {$(
        impl ScanOp<$t> for Sum {
            const NAME: &'static str = "+";
            #[inline(always)]
            fn identity() -> $t { 0 }
            #[inline(always)]
            fn combine(a: $t, b: $t) -> $t { a.wrapping_add(b) }
        }
        impl ScanOp<$t> for Prod {
            const NAME: &'static str = "*";
            #[inline(always)]
            fn identity() -> $t { 1 }
            #[inline(always)]
            fn combine(a: $t, b: $t) -> $t { a.wrapping_mul(b) }
        }
        impl ScanOp<$t> for Max {
            const NAME: &'static str = "max";
            #[inline(always)]
            fn identity() -> $t { <$t>::MIN }
            #[inline(always)]
            fn combine(a: $t, b: $t) -> $t { if a >= b { a } else { b } }
        }
        impl ScanOp<$t> for Min {
            const NAME: &'static str = "min";
            #[inline(always)]
            fn identity() -> $t { <$t>::MAX }
            #[inline(always)]
            fn combine(a: $t, b: $t) -> $t { if a <= b { a } else { b } }
        }
    )*};
}

impl_int_ops!(u8, u16, u32, u128, i8, i16, i32, i128);

// 64-bit integer widths additionally register the AVX2 tile kernels
// for `+` and `max` (plain and segmented); `Prod`/`Min` keep the
// defaults. Reassociating wrapping adds and lattice maxes is
// bit-exact, so the vector path cannot change results.
macro_rules! impl_int_ops_tiled {
    ($($t:ty => ($sumt:path, $maxt:path, $segsumt:path, $segmaxt:path $(,)?)),* $(,)?) => {$(
        impl ScanOp<$t> for Sum {
            const NAME: &'static str = "+";
            #[inline(always)]
            fn identity() -> $t { 0 }
            #[inline(always)]
            fn combine(a: $t, b: $t) -> $t { a.wrapping_add(b) }
            fn simd_tile() -> Option<&'static SimdTile<$t>> { $sumt() }
            fn simd_seg_tile() -> Option<&'static SimdTile<($t, bool)>> { $segsumt() }
        }
        impl ScanOp<$t> for Prod {
            const NAME: &'static str = "*";
            #[inline(always)]
            fn identity() -> $t { 1 }
            #[inline(always)]
            fn combine(a: $t, b: $t) -> $t { a.wrapping_mul(b) }
        }
        impl ScanOp<$t> for Max {
            const NAME: &'static str = "max";
            #[inline(always)]
            fn identity() -> $t { <$t>::MIN }
            #[inline(always)]
            fn combine(a: $t, b: $t) -> $t { if a >= b { a } else { b } }
            fn simd_tile() -> Option<&'static SimdTile<$t>> { $maxt() }
            fn simd_seg_tile() -> Option<&'static SimdTile<($t, bool)>> { $segmaxt() }
        }
        impl ScanOp<$t> for Min {
            const NAME: &'static str = "min";
            #[inline(always)]
            fn identity() -> $t { <$t>::MAX }
            #[inline(always)]
            fn combine(a: $t, b: $t) -> $t { if a <= b { a } else { b } }
        }
    )*};
}

impl_int_ops_tiled!(
    u64 => (
        crate::simd::sum_u64_tile, crate::simd::max_u64_tile,
        crate::simd::seg_sum_u64_tile, crate::simd::seg_max_u64_tile,
    ),
    usize => (
        crate::simd::sum_usize_tile, crate::simd::max_usize_tile,
        crate::simd::seg_sum_usize_tile, crate::simd::seg_max_usize_tile,
    ),
    i64 => (
        crate::simd::sum_i64_tile, crate::simd::max_i64_tile,
        crate::simd::seg_sum_i64_tile, crate::simd::seg_max_i64_tile,
    ),
    isize => (
        crate::simd::sum_isize_tile, crate::simd::max_isize_tile,
        crate::simd::seg_sum_isize_tile, crate::simd::seg_max_isize_tile,
    ),
);

macro_rules! impl_bitwise_ops {
    ($($t:ty),*) => {$(
        impl ScanOp<$t> for Or {
            const NAME: &'static str = "or";
            #[inline(always)]
            fn identity() -> $t { 0 }
            #[inline(always)]
            fn combine(a: $t, b: $t) -> $t { a | b }
        }
        impl ScanOp<$t> for And {
            const NAME: &'static str = "and";
            #[inline(always)]
            fn identity() -> $t { !0 }
            #[inline(always)]
            fn combine(a: $t, b: $t) -> $t { a & b }
        }
    )*};
}

impl_bitwise_ops!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_float_ops {
    ($($t:ty),*) => {$(
        impl ScanOp<$t> for Sum {
            const NAME: &'static str = "+";
            #[inline(always)]
            fn identity() -> $t { 0.0 }
            #[inline(always)]
            fn combine(a: $t, b: $t) -> $t { a + b }
        }
        impl ScanOp<$t> for Prod {
            const NAME: &'static str = "*";
            #[inline(always)]
            fn identity() -> $t { 1.0 }
            #[inline(always)]
            fn combine(a: $t, b: $t) -> $t { a * b }
        }
        impl ScanOp<$t> for Max {
            const NAME: &'static str = "max";
            #[inline(always)]
            fn identity() -> $t { <$t>::NEG_INFINITY }
            #[inline(always)]
            fn combine(a: $t, b: $t) -> $t { if a >= b { a } else { b } }
        }
        impl ScanOp<$t> for Min {
            const NAME: &'static str = "min";
            #[inline(always)]
            fn identity() -> $t { <$t>::INFINITY }
            #[inline(always)]
            fn combine(a: $t, b: $t) -> $t { if a <= b { a } else { b } }
        }
    )*};
}

impl_float_ops!(f32, f64);

impl ScanOp<bool> for Or {
    const NAME: &'static str = "or";
    #[inline(always)]
    fn identity() -> bool {
        false
    }
    #[inline(always)]
    fn combine(a: bool, b: bool) -> bool {
        a | b
    }
}

impl ScanOp<bool> for And {
    const NAME: &'static str = "and";
    #[inline(always)]
    fn identity() -> bool {
        true
    }
    #[inline(always)]
    fn combine(a: bool, b: bool) -> bool {
        a & b
    }
}

impl ScanOp<bool> for Max {
    const NAME: &'static str = "max";
    #[inline(always)]
    fn identity() -> bool {
        false
    }
    #[inline(always)]
    fn combine(a: bool, b: bool) -> bool {
        a | b
    }
}

impl ScanOp<bool> for Min {
    const NAME: &'static str = "min";
    #[inline(always)]
    fn identity() -> bool {
        true
    }
    #[inline(always)]
    fn combine(a: bool, b: bool) -> bool {
        a & b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_identity<O: ScanOp<T>, T: ScanElem>(samples: &[T]) {
        for &x in samples {
            assert_eq!(O::combine(O::identity(), x), x, "{} identity", O::NAME);
            assert_eq!(
                O::combine(x, O::identity()),
                x,
                "{} identity (rhs)",
                O::NAME
            );
        }
    }

    fn check_associative<O: ScanOp<T>, T: ScanElem>(samples: &[T]) {
        for &a in samples {
            for &b in samples {
                for &c in samples {
                    assert_eq!(
                        O::combine(O::combine(a, b), c),
                        O::combine(a, O::combine(b, c)),
                        "{} associativity",
                        O::NAME
                    );
                }
            }
        }
    }

    #[test]
    fn integer_op_laws() {
        let s: Vec<u32> = vec![0, 1, 2, 7, 100, u32::MAX];
        check_identity::<Sum, u32>(&s);
        check_associative::<Sum, u32>(&s);
        check_identity::<Max, u32>(&s);
        check_associative::<Max, u32>(&s);
        check_identity::<Min, u32>(&s);
        check_associative::<Min, u32>(&s);
        check_identity::<Or, u32>(&s);
        check_associative::<Or, u32>(&s);
        check_identity::<And, u32>(&s);
        check_associative::<And, u32>(&s);
        check_identity::<Prod, u32>(&s);
        check_associative::<Prod, u32>(&s);
    }

    #[test]
    fn signed_op_laws() {
        let s: Vec<i64> = vec![i64::MIN, -5, 0, 3, i64::MAX];
        check_identity::<Sum, i64>(&s);
        check_identity::<Max, i64>(&s);
        check_identity::<Min, i64>(&s);
        check_associative::<Max, i64>(&s);
        check_associative::<Min, i64>(&s);
    }

    #[test]
    fn bool_op_laws() {
        let s = vec![true, false];
        check_identity::<Or, bool>(&s);
        check_identity::<And, bool>(&s);
        check_identity::<Max, bool>(&s);
        check_identity::<Min, bool>(&s);
        check_associative::<Or, bool>(&s);
        check_associative::<And, bool>(&s);
    }

    #[test]
    fn float_identities() {
        let s = vec![-1.5f64, 0.0, 2.25, 1e300];
        check_identity::<Sum, f64>(&s);
        check_identity::<Max, f64>(&s);
        check_identity::<Min, f64>(&s);
        check_identity::<Prod, f64>(&s);
    }

    #[test]
    fn wrapping_sum_does_not_panic() {
        assert_eq!(<Sum as ScanOp<u8>>::combine(200, 100), 44);
        assert_eq!(<Sum as ScanOp<i8>>::combine(i8::MAX, 1), i8::MIN);
    }
}
