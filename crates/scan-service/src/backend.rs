//! The execution seam between the front door and the scan engine.
//!
//! The service talks to hardware through exactly two calls: a
//! segmented scan for a coalesced batch and a flat scan for the
//! degraded one-request-one-kernel path. [`PoolBackend`] is the
//! production implementation (the `scan-core` worker-pool kernels);
//! tests substitute chaos-injecting wrappers at this boundary to
//! exercise the failure envelope — which is why the trait is
//! deliberately tiny and object-safe.

use scan_core::segmented::{try_seg_scan, Segments};
use scan_core::{deadline, Max, ScanDeadline, Sum};

/// The primitive scan family a request group executes under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanKind {
    /// Exclusive `+-scan` (wrapping add; identity 0).
    Sum,
    /// Exclusive `max-scan` (identity `u64::MIN`, i.e. 0).
    Max,
}

impl ScanKind {
    /// The scan recurrence, for O(n) postcondition verification.
    #[inline]
    pub(crate) fn combine(self, a: u64, b: u64) -> u64 {
        match self {
            ScanKind::Sum => a.wrapping_add(b),
            ScanKind::Max => a.max(b),
        }
    }
}

/// Executes batches for the service. Implementations must be safe to
/// call from whichever submitter thread is currently leading a batch.
pub trait BatchBackend: Send + Sync {
    /// One coalesced mega-batch: an exclusive segmented scan of
    /// `values` restarting at the heads of `segs`, under an optional
    /// batch-level deadline.
    fn seg_scan(
        &self,
        kind: ScanKind,
        values: &[u64],
        segs: &Segments,
        deadline: Option<&ScanDeadline>,
    ) -> scan_core::Result<Vec<u64>>;

    /// One request on its own kernel (the degradation ladder's bottom
    /// rung), under the request's own deadline.
    fn scan_one(
        &self,
        kind: ScanKind,
        values: &[u64],
        deadline: Option<&ScanDeadline>,
    ) -> scan_core::Result<Vec<u64>>;
}

/// Production backend: the `scan-core` blocked kernels on the
/// process-wide worker pool, with deadlines delivered through the
/// ambient [`scan_core::deadline`] scope.
#[derive(Debug, Default)]
pub struct PoolBackend;

fn scoped<R>(deadline: Option<&ScanDeadline>, f: impl FnOnce() -> R) -> R {
    match deadline {
        Some(d) => deadline::with_deadline(d, f),
        None => f(),
    }
}

impl BatchBackend for PoolBackend {
    fn seg_scan(
        &self,
        kind: ScanKind,
        values: &[u64],
        segs: &Segments,
        deadline: Option<&ScanDeadline>,
    ) -> scan_core::Result<Vec<u64>> {
        scoped(deadline, || match kind {
            ScanKind::Sum => try_seg_scan::<Sum, u64>(values, segs),
            ScanKind::Max => try_seg_scan::<Max, u64>(values, segs),
        })
    }

    fn scan_one(
        &self,
        kind: ScanKind,
        values: &[u64],
        deadline: Option<&ScanDeadline>,
    ) -> scan_core::Result<Vec<u64>> {
        scoped(deadline, || match kind {
            ScanKind::Sum => scan_core::try_scan::<Sum, u64>(values),
            ScanKind::Max => scan_core::try_scan::<Max, u64>(values),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_core::ExecError;

    #[test]
    fn pool_backend_matches_reference() {
        let b = PoolBackend;
        let a = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let segs = Segments::from_lengths(&[3, 5]);
        assert_eq!(
            b.seg_scan(ScanKind::Sum, &a, &segs, None).unwrap(),
            vec![0, 3, 4, 0, 1, 6, 15, 17]
        );
        assert_eq!(
            b.seg_scan(ScanKind::Max, &a, &segs, None).unwrap(),
            vec![0, 3, 3, 0, 1, 5, 9, 9]
        );
        assert_eq!(
            b.scan_one(ScanKind::Sum, &a, None).unwrap(),
            scan_core::scan::<Sum, _>(&a)
        );
        assert_eq!(
            b.scan_one(ScanKind::Max, &a, None).unwrap(),
            scan_core::scan::<Max, _>(&a)
        );
    }

    #[test]
    fn deadline_propagates_through_the_scope() {
        let b = PoolBackend;
        let d = ScanDeadline::manual();
        d.cancel();
        let a = [1u64, 2, 3];
        let segs = Segments::single(3);
        assert_eq!(
            b.seg_scan(ScanKind::Sum, &a, &segs, Some(&d)),
            Err(scan_core::Error::Exec(ExecError::Cancelled))
        );
        assert_eq!(
            b.scan_one(ScanKind::Max, &a, Some(&d)),
            Err(scan_core::Error::Exec(ExecError::Cancelled))
        );
    }

    #[test]
    fn combine_mirrors_the_ops() {
        assert_eq!(ScanKind::Sum.combine(u64::MAX, 2), 1); // wrapping
        assert_eq!(ScanKind::Max.combine(3, 7), 7);
    }
}
