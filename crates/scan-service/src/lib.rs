//! # scan-service
//!
//! Multi-tenant serving layer for the scan engine: a **coalescing
//! front door** that turns many concurrent small requests (`+-scan`,
//! `max-scan`, `enumerate`, `pack` over short slices) into one
//! segmented-scan mega-batch on the `scan-core` worker pool.
//!
//! The paper's central observation (§2.3) is that segment flags make
//! one scan pass serve arbitrarily many independent scans. This crate
//! is that observation turned into a serving discipline: small
//! requests individually too cheap to amortize a kernel launch are
//! held for a microsecond-scale window, packed into a single
//! [`scan_core::segmented::try_seg_scan`] call, and demultiplexed back
//! to their submitters — giving each tenant small-request latency with
//! big-batch throughput (`BENCH_service.json` quantifies the ratio).
//!
//! The robustness surface around that fast path:
//!
//! - **Admission control** — bounded global and per-tenant queue
//!   depth; overflow sheds with a typed
//!   [`ServiceError::Overloaded`], never unbounded buffering.
//! - **Deadline propagation** — each request may carry a
//!   [`scan_core::ScanDeadline`]; expiry in the queue rejects just
//!   that request, and mid-batch cancellation never touches
//!   co-batched requests.
//! - **Weighted fairness** — per-tenant deficit-round-robin with a
//!   provable starvation bound ([`queue::starvation_bound`]),
//!   property-tested under arbitrary tenant mixes.
//! - **Graceful degradation** — contained worker panics trigger
//!   jittered-backoff batch retries, then per-request fallback; a
//!   breaker quarantines the coalescer itself (one-request-one-kernel
//!   mode) when batches fail persistently.
//! - **Observability** — [`ServiceHealth`] snapshots queue depth,
//!   shed counts, batch occupancy, per-tenant counters, and the
//!   coalescer breaker, and is the contract the chaos suite drains
//!   against.
//!
//! Architecturally the service spawns **no threads**: submitters take
//! turns leading batches (leader–follower on one condvar), so the
//! crate stays inside the repo's spawn/clock confinement rules and
//! inherits the worker pool's panic containment.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod backend;
pub mod error;
pub mod health;
pub mod queue;
pub mod request;
pub mod service;
pub mod sharded;
pub mod sync;

pub use backend::{BatchBackend, PoolBackend, ScanKind};
pub use error::{Result, ServiceError};
pub use health::{CoalescerHealth, ServiceHealth, ServiceMode, TenantCounters};
pub use queue::{starvation_bound, FairQueue};
pub use request::{RequestOp, ScanRequest, TenantId};
pub use service::{ScanService, ServiceConfig};
pub use sharded::ShardedBackend;
