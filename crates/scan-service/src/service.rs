//! The coalescing front door: leader–follower batching without
//! dedicated threads.
//!
//! # How a request flows
//!
//! A submitter calls [`ScanService::submit`], which admits (or sheds)
//! the request, enqueues it into the weighted fair queue, and parks on
//! the service condvar. When a close trigger fires — the queue reached
//! `close_target`, or the submitter's own coalescing window elapsed —
//! exactly one parked submitter elects itself *leader*, drains a batch
//! from the fair queue, releases the lock, and executes the whole
//! batch inline on its own thread: the per-kind request payloads are
//! concatenated and run as **one segmented exclusive scan** on the
//! worker pool (paper §2.3 — segment heads make one kernel launch
//! serve every request at once). The leader then demultiplexes the
//! result back into per-request slots, re-acquires the lock, updates
//! the breaker and counters, steps down, and wakes everyone.
//!
//! No thread is ever spawned here: submitters take turns doing the
//! service's work, so the crate stays inside the repo's spawn
//! confinement (`cargo xtask lint` R3) and the service inherits the
//! pool's panic containment for free.
//!
//! # Robustness ladder
//!
//! 1. Coalesced segmented scan, with a batch deadline equal to the
//!    most generous member deadline (capped by `max_batch_duration`)
//!    so one short-fused member can never poison its batchmates.
//! 2. On a contained worker panic, jittered exponential backoff and
//!    retry of the whole batch (bounded by `batch_retries`).
//! 3. On persistent batch failure or a member that fails the O(n)
//!    postcondition check, the affected members re-run individually
//!    (one-request-one-kernel), each under its own deadline.
//! 4. Repeated coalesced failures open a breaker: the service runs
//!    *degraded* (every request solo) for a quarantine measured in
//!    batch dispatches, then probes; a failed probe doubles the
//!    quarantine, a successful one restores coalescing.
//!
//! Every rung returns typed [`ServiceError`]s; no path hangs, drops a
//! response, or buffers unboundedly.

use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::sync::Arc;
use std::time::Duration;

use scan_core::segmented::Segments;
use scan_core::{ExecError, ScanDeadline};

use crate::backend::{BatchBackend, PoolBackend, ScanKind};
use crate::error::{Result, ServiceError};
use crate::health::{CoalescerHealth, ServiceHealth, ServiceMode, TenantCounters};
use crate::queue::FairQueue;
use crate::sync::SlotFlag;
use crate::request::{RequestOp, ScanRequest, TenantId};

/// Upper bound on a single condvar park; a safety net under the
/// notify-driven wakeups, and the poll cadence while a batch is in
/// flight.
const WAIT_TICK: Duration = Duration::from_millis(1);
/// Shortest park while waiting for a coalescing window, so an expired
/// window behind an active leader degrades to a bounded poll instead
/// of a spin.
const MIN_WAIT: Duration = Duration::from_micros(50);

/// Tuning knobs of the front door. All fields are public; start from
/// [`ServiceConfig::default`] and override.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Admission bound on total queued requests; beyond it submissions
    /// shed with [`ServiceError::Overloaded`].
    pub max_queue_depth: usize,
    /// Admission bound on one tenant's queued requests.
    pub max_tenant_depth: usize,
    /// Most requests one coalesced batch may carry.
    pub batch_capacity: usize,
    /// Queue depth at which a window closes immediately (without
    /// waiting out the coalescing window).
    pub close_target: usize,
    /// Coalescing window: how long a lone request waits for company
    /// before it closes a batch anyway.
    pub window: Duration,
    /// Per-request payload bound; larger requests are rejected with
    /// [`ServiceError::RequestTooLarge`].
    pub max_request_len: usize,
    /// Hard cap on any batch's execution deadline, so members without
    /// deadlines cannot keep a wedged batch alive forever.
    pub max_batch_duration: Duration,
    /// Whole-batch retries after contained worker panics.
    pub batch_retries: u32,
    /// Base of the exponential retry backoff.
    pub backoff_base: Duration,
    /// Upper bound of the uniform jitter added to each backoff.
    pub backoff_jitter: Duration,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
    /// Consecutive coalesced-batch failures that open the breaker.
    pub failure_threshold: u32,
    /// Initial breaker quarantine, in batch dispatches.
    pub base_quarantine: u64,
    /// Quarantine cap; failed probes double up to this.
    pub max_quarantine: u64,
    /// Verify every demuxed segment against the scan recurrence
    /// (O(n)); catches lying backends per-request.
    pub verify: bool,
    /// Fairness weight for tenants absent from `weights`.
    pub default_weight: u32,
    /// Per-tenant fairness weights (share of each batch rotation).
    pub weights: BTreeMap<TenantId, u32>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_queue_depth: 4096,
            max_tenant_depth: 1024,
            batch_capacity: 512,
            close_target: 64,
            window: Duration::from_micros(200),
            max_request_len: 1 << 20,
            max_batch_duration: Duration::from_secs(2),
            batch_retries: 2,
            backoff_base: Duration::from_micros(50),
            backoff_jitter: Duration::from_micros(100),
            jitter_seed: 0x5cad_0001,
            failure_threshold: 3,
            base_quarantine: 8,
            max_quarantine: 256,
            verify: true,
            default_weight: 1,
            weights: BTreeMap::new(),
        }
    }
}

impl ServiceConfig {
    /// A configuration with coalescing disabled: every request runs
    /// one-request-one-kernel. This is the "naive" baseline the bench
    /// compares against — same front door, no batching.
    pub fn uncoalesced() -> Self {
        ServiceConfig {
            batch_capacity: 1,
            close_target: 1,
            window: Duration::ZERO,
            ..ServiceConfig::default()
        }
    }
}

/// One queued request plus its delivery slot.
struct Entry {
    tenant: TenantId,
    op: RequestOp,
    deadline: Option<ScanDeadline>,
    /// Coalescing-window trigger for this entry.
    window: ScanDeadline,
    /// Set (under the state lock) once a leader claimed this entry;
    /// from then on a result is guaranteed to arrive in `slot`.
    taken: SlotFlag,
    /// Set (under the state lock) when the submitter gave up while
    /// still queued; leaders drop such entries for free.
    abandoned: SlotFlag,
    /// Dispatch-clock reading at enqueue, for fairness accounting.
    enqueued_dispatch: u64,
    /// The delivered result. Filled exactly once, by a leader.
    slot: Mutex<Option<Result<Vec<u64>>>>,
}

impl Entry {
    fn take_result(&self) -> Option<Result<Vec<u64>>> {
        self.slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    }

    fn deliver(&self, res: Result<Vec<u64>>) {
        *self.slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(res);
    }
}

/// Everything behind the service lock.
struct State {
    queue: FairQueue<Arc<Entry>>,
    /// Entries still in the queue whose submitters already left.
    abandoned_in_queue: usize,
    /// True while some submitter is executing a batch.
    leading: bool,
    // Breaker / logical batch clock.
    dispatches: u64,
    degraded_until: Option<u64>,
    consecutive_failures: u32,
    quarantine: u64,
    times_degraded: u64,
    batches_retried: u64,
    // Lifetime counters.
    submitted: u64,
    completed: u64,
    shed: u64,
    failed: u64,
    batches: u64,
    batched_requests: u64,
    solo_requests: u64,
    expired_in_queue: u64,
    tenants: BTreeMap<TenantId, TenantCounters>,
}

impl State {
    fn live_depth(&self) -> usize {
        self.queue.depth().saturating_sub(self.abandoned_in_queue)
    }
}

/// Side effects of one executed batch, applied to [`State`] under the
/// lock after the leader finishes.
#[derive(Default)]
struct BatchOutcome {
    /// A coalesced segmented scan was attempted (vs. pure solo mode).
    coalesced: bool,
    /// The coalesced attempt failed (kernel error after retries, or a
    /// member flunked verification) — feeds the breaker.
    coalesced_failed: bool,
    /// At least one retry round was needed.
    retried: bool,
    batched: u64,
    solo: u64,
    expired: u64,
}

/// The multi-tenant coalescing scan service.
///
/// Generic over the [`BatchBackend`] so the chaos suite can inject
/// faults at the execution seam; production code uses
/// [`ScanService::new`], which runs on the `scan-core` worker pool.
pub struct ScanService<B: BatchBackend = PoolBackend> {
    cfg: ServiceConfig,
    backend: B,
    state: Mutex<State>,
    cv: Condvar,
}

impl ScanService<PoolBackend> {
    /// A service executing on the process-wide worker pool.
    pub fn new(cfg: ServiceConfig) -> Self {
        Self::with_backend(cfg, PoolBackend)
    }
}

impl ScanService<crate::sharded::ShardedBackend> {
    /// A service whose mega-batches of `min_shard_len` elements or
    /// more run on a sharded executor (loss recovery, verification,
    /// per-shard quarantine — see [`scan_shard`]); smaller batches
    /// stay on the single-pool kernels.
    pub fn sharded(
        cfg: ServiceConfig,
        shard_cfg: scan_shard::ShardConfig,
        min_shard_len: usize,
    ) -> Self {
        Self::with_backend(cfg, crate::sharded::ShardedBackend::new(shard_cfg, min_shard_len))
    }
}

impl<B: BatchBackend> ScanService<B> {
    /// A service executing on a caller-provided backend.
    pub fn with_backend(cfg: ServiceConfig, backend: B) -> Self {
        let state = State {
            queue: FairQueue::new(cfg.default_weight, cfg.weights.clone()),
            abandoned_in_queue: 0,
            leading: false,
            dispatches: 0,
            degraded_until: None,
            consecutive_failures: 0,
            quarantine: cfg.base_quarantine.max(1),
            times_degraded: 0,
            batches_retried: 0,
            submitted: 0,
            completed: 0,
            shed: 0,
            failed: 0,
            batches: 0,
            batched_requests: 0,
            solo_requests: 0,
            expired_in_queue: 0,
            tenants: BTreeMap::new(),
        };
        ScanService {
            cfg,
            backend,
            state: Mutex::new(state),
            cv: Condvar::new(),
        }
    }

    /// The configuration this service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The backend this service executes on (e.g. for inspecting a
    /// [`crate::ShardedBackend`]'s executor health).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    fn lock_state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Submit one request and block until its typed outcome.
    ///
    /// The calling thread may be drafted to execute a whole batch
    /// (leader–follower): there are no service threads, so submitters
    /// collectively power the coalescer. Returns
    /// [`ServiceError::Overloaded`] instead of queuing beyond the
    /// configured bounds.
    pub fn submit(&self, req: ScanRequest) -> Result<Vec<u64>> {
        req.op.validate(self.cfg.max_request_len)?;
        let tenant = req.tenant;

        // Empty payloads have exactly one correct answer; skip the
        // queue entirely.
        if req.op.is_empty() {
            let mut st = self.lock_state();
            st.submitted += 1;
            st.completed += 1;
            let t = st.tenants.entry(tenant).or_default();
            t.submitted += 1;
            t.completed += 1;
            return Ok(Vec::new());
        }

        let entry = {
            let mut st = self.lock_state();
            // Admission control: bounded queue, per-tenant cap.
            let depth = st.live_depth();
            let tenant_depth = st.queue.tenant_depth(tenant);
            if depth >= self.cfg.max_queue_depth || tenant_depth >= self.cfg.max_tenant_depth {
                st.shed += 1;
                st.tenants.entry(tenant).or_default().shed += 1;
                return Err(ServiceError::Overloaded {
                    depth,
                    tenant_depth,
                });
            }
            let entry = Arc::new(Entry {
                tenant,
                op: req.op,
                deadline: req.deadline,
                window: ScanDeadline::after(self.cfg.window),
                taken: SlotFlag::new(),
                abandoned: SlotFlag::new(),
                enqueued_dispatch: st.dispatches,
                slot: Mutex::new(None),
            });
            st.queue.push(tenant, Arc::clone(&entry));
            st.submitted += 1;
            st.tenants.entry(tenant).or_default().submitted += 1;
            // Wake parked submitters when the close target is hit so
            // one of them leads promptly instead of waiting out a
            // window tick.
            if st.live_depth() >= self.cfg.close_target && !st.leading {
                self.cv.notify_all();
            }
            entry
        };

        self.wait_for(&entry)
    }

    /// Park until `entry` has a result, leading batches when triggers
    /// fire. This loop upholds the no-lost-response invariant: once an
    /// entry is `taken`, some leader is bound to fill its slot, so we
    /// only give up (on our own deadline) while still un-taken.
    fn wait_for(&self, entry: &Arc<Entry>) -> Result<Vec<u64>> {
        let mut st = self.lock_state();
        loop {
            if let Some(res) = entry.take_result() {
                let ok = res.is_ok();
                st.completed += u64::from(ok);
                st.failed += u64::from(!ok);
                let t = st.tenants.entry(entry.tenant).or_default();
                t.completed += u64::from(ok);
                t.failed += u64::from(!ok);
                return res;
            }

            if !entry.taken.is_raised() {
                // Still queued: honor our own deadline without
                // touching anyone else's batch.
                if let Some(d) = &entry.deadline {
                    if let Err(e) = d.check() {
                        entry.abandoned.raise();
                        st.abandoned_in_queue += 1;
                        st.expired_in_queue += 1;
                        st.failed += 1;
                        st.tenants.entry(entry.tenant).or_default().failed += 1;
                        return Err(e.into());
                    }
                }
                let triggered = st.live_depth() >= self.cfg.close_target
                    || entry.window.is_expired();
                if triggered && !st.leading {
                    st.leading = true;
                    st = self.run_batch(st);
                    continue;
                }
            }

            let park = if entry.taken.is_raised() {
                // In flight; the leader notifies on completion, the
                // tick is only a safety net.
                WAIT_TICK
            } else {
                entry
                    .window
                    .remaining()
                    .map_or(WAIT_TICK, |r| r.clamp(MIN_WAIT, WAIT_TICK))
            };
            let (g, _) = self
                .cv
                .wait_timeout(st, park)
                .unwrap_or_else(PoisonError::into_inner);
            st = g;
        }
    }

    /// Leader duty: drain a batch, execute it (lock released), apply
    /// the outcome, step down, wake everyone. Returns with the lock
    /// re-acquired.
    fn run_batch<'a>(&'a self, mut st: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
        debug_assert!(st.leading);
        let batch = {
            let State {
                queue,
                abandoned_in_queue,
                ..
            } = &mut *st;
            queue.take_batch(self.cfg.batch_capacity, |e: &Arc<Entry>| {
                if e.abandoned.is_raised() {
                    *abandoned_in_queue = abandoned_in_queue.saturating_sub(1);
                    false
                } else {
                    true
                }
            })
        };
        if batch.is_empty() {
            st.leading = false;
            self.cv.notify_all();
            return st;
        }

        let dispatch = st.dispatches;
        st.dispatches += 1;
        for e in &batch {
            e.taken.raise();
            let waited = dispatch.saturating_sub(e.enqueued_dispatch);
            let t = st.tenants.entry(e.tenant).or_default();
            t.max_wait_dispatches = t.max_wait_dispatches.max(waited);
        }
        let coalesce_allowed = st.degraded_until.is_none_or(|until| dispatch >= until);
        let probing = st.degraded_until.is_some() && coalesce_allowed;
        drop(st);

        // If execution unwinds (a bug, not a contained worker panic —
        // those come back as typed errors), the guard backfills every
        // undelivered slot and steps down, so waiters never wedge on a
        // dead leader.
        let mut guard = LeaderGuard {
            svc: self,
            batch: &batch,
            armed: true,
        };
        let outcome = if self.cfg.batch_capacity > 1 && coalesce_allowed {
            self.execute_coalesced(&batch, dispatch)
        } else {
            self.execute_solo(&batch)
        };
        guard.armed = false;
        drop(guard);

        let mut st = self.lock_state();
        self.apply_outcome(&mut st, &outcome, probing);
        st.leading = false;
        self.cv.notify_all();
        st
    }

    /// Fold one batch's results into the breaker and the counters.
    fn apply_outcome(&self, st: &mut State, out: &BatchOutcome, probing: bool) {
        // Completion/failure tallies are owned by each waiter (in
        // `wait_for`, when it takes its slot) — the leader only
        // accounts for batch-shaped facts, so nothing double-counts.
        st.batches += u64::from(out.coalesced);
        st.batched_requests += out.batched;
        st.solo_requests += out.solo;
        st.expired_in_queue += out.expired;
        st.batches_retried += u64::from(out.retried);
        if !out.coalesced {
            return;
        }
        if out.coalesced_failed {
            st.consecutive_failures += 1;
            if probing {
                // Failed probe: stay degraded, back off harder.
                st.quarantine = (st.quarantine * 2).min(self.cfg.max_quarantine.max(1));
                st.degraded_until = Some(st.dispatches + st.quarantine);
            } else if st.degraded_until.is_none()
                && st.consecutive_failures >= self.cfg.failure_threshold
            {
                st.degraded_until = Some(st.dispatches + st.quarantine);
                st.times_degraded += 1;
            }
        } else {
            st.consecutive_failures = 0;
            st.quarantine = self.cfg.base_quarantine.max(1);
            st.degraded_until = None;
        }
    }

    /// Execute every member individually (degraded mode, or a
    /// capacity-1 "naive" configuration). Deliveries are *recorded*
    /// here and *counted* in [`Self::apply_outcome`].
    fn execute_solo(&self, batch: &[Arc<Entry>]) -> BatchOutcome {
        let mut out = BatchOutcome::default();
        for e in batch {
            let res = self.exec_one(e, 0);
            out.solo += 1;
            e.deliver(res);
        }
        out
    }

    /// Execute a batch as one segmented scan per scan kind, with the
    /// full robustness ladder.
    fn execute_coalesced(&self, batch: &[Arc<Entry>], dispatch: u64) -> BatchOutcome {
        let mut out = BatchOutcome {
            coalesced: true,
            ..BatchOutcome::default()
        };

        // Triage: members whose deadline already tripped are answered
        // with their typed error and never join the mega-batch — a
        // dead member cannot poison its batchmates.
        let mut live: Vec<&Arc<Entry>> = Vec::with_capacity(batch.len());
        for e in batch {
            match e.deadline.as_ref().map_or(Ok(()), ScanDeadline::check) {
                Ok(()) => live.push(e),
                Err(err) => {
                    out.expired += 1;
                    e.deliver(Err(err.into()));
                }
            }
        }
        out.batched = live.len() as u64;

        // Batch deadline: generous enough for every member (the max of
        // their remaining budgets — a short fuse must not cut short
        // its batchmates), but never beyond the configured cap.
        let mut span = Duration::ZERO;
        let mut unbounded = live.is_empty();
        for e in &live {
            match e.deadline.as_ref().and_then(ScanDeadline::remaining) {
                Some(r) => span = span.max(r),
                None => unbounded = true,
            }
        }
        let budget = if unbounded {
            self.cfg.max_batch_duration
        } else {
            span.min(self.cfg.max_batch_duration)
        };

        // Group by scan kind and run one segmented scan per group.
        for kind in [ScanKind::Sum, ScanKind::Max] {
            let members: Vec<&Arc<Entry>> = live
                .iter()
                .filter(|e| e.op.kind() == kind)
                .copied()
                .collect();
            if members.is_empty() {
                continue;
            }
            let inputs: Vec<Vec<u64>> = members.iter().map(|e| e.op.scan_input()).collect();
            let lengths: Vec<usize> = inputs.iter().map(Vec::len).collect();
            let total: usize = lengths.iter().sum();
            let mut values = Vec::with_capacity(total);
            for v in &inputs {
                values.extend_from_slice(v);
            }
            let segs = Segments::from_lengths(&lengths);
            let token = ScanDeadline::after(budget);

            let scanned = self.seg_scan_with_retries(kind, &values, &segs, &token, dispatch, &mut out);
            match scanned {
                Ok(scanned) => {
                    self.demux(kind, &members, &inputs, &lengths, &scanned, &mut out);
                }
                Err(_) => {
                    // The whole group died (kernel error after the
                    // retry budget, or a batch-level deadline that is
                    // not any member's own verdict): next rung, run
                    // every member solo under its own deadline.
                    out.coalesced_failed = true;
                    for e in &members {
                        let res = self.exec_one(e, 0);
                        out.solo += 1;
                        e.deliver(res);
                    }
                }
            }
        }
        out
    }

    /// One segmented scan with jittered-exponential-backoff retries on
    /// contained worker panics.
    fn seg_scan_with_retries(
        &self,
        kind: ScanKind,
        values: &[u64],
        segs: &Segments,
        token: &ScanDeadline,
        dispatch: u64,
        out: &mut BatchOutcome,
    ) -> core::result::Result<Vec<u64>, ServiceError> {
        if values.is_empty() {
            return Ok(Vec::new());
        }
        let mut attempt: u32 = 0;
        loop {
            match self.backend.seg_scan(kind, values, segs, Some(token)) {
                Ok(scanned) if scanned.len() == values.len() => return Ok(scanned),
                Ok(_) | Err(scan_core::Error::Exec(ExecError::WorkerLost { .. }))
                    if attempt < self.cfg.batch_retries =>
                {
                    attempt += 1;
                    out.retried = true;
                    std::thread::sleep(self.backoff(dispatch, attempt, kind));
                }
                Ok(short) => {
                    // Wrong-length output even after retries: treat as
                    // a lying backend at the batch level.
                    debug_assert_ne!(short.len(), values.len());
                    return Err(ServiceError::Corrupted {
                        attempts: attempt + 1,
                    });
                }
                Err(scan_core::Error::Exec(e)) => return Err(ServiceError::Exec(e)),
                Err(e) => return Err(ServiceError::Invalid(e)),
            }
        }
    }

    /// Deterministic backoff: `base · 2^(attempt-1)` plus seeded
    /// uniform jitter so co-located retry storms decorrelate while
    /// tests stay reproducible. The dispatch counter is the jitter
    /// stream and the scan kind is the salt, so the two per-kind
    /// groups of one batch back off on decorrelated schedules.
    fn backoff(&self, dispatch: u64, attempt: u32, kind: ScanKind) -> Duration {
        let policy = scan_core::backoff::Backoff {
            base: self.cfg.backoff_base,
            jitter: self.cfg.backoff_jitter,
            seed: self.cfg.jitter_seed,
        };
        policy.delay(dispatch, attempt, matches!(kind, ScanKind::Max) as u64)
    }

    /// Slice one group's scanned output back into per-member results,
    /// verifying each segment against the scan recurrence. Members
    /// that fail verification (a lying backend) retry individually;
    /// a member cancelled mid-batch gets its typed error while its
    /// batchmates' results deliver untouched.
    fn demux(
        &self,
        kind: ScanKind,
        members: &[&Arc<Entry>],
        inputs: &[Vec<u64>],
        lengths: &[usize],
        scanned: &[u64],
        out: &mut BatchOutcome,
    ) {
        let mut offset = 0usize;
        for ((e, input), &len) in members.iter().zip(inputs).zip(lengths) {
            let seg = &scanned[offset..offset + len];
            offset += len;
            let res = if let Err(err) = e.deadline.as_ref().map_or(Ok(()), ScanDeadline::check) {
                // Cancelled or expired mid-batch: this member's
                // verdict only.
                Err(err.into())
            } else if self.cfg.verify && !verify_exclusive(kind, input, seg) {
                // Lying backend on this segment: the coalesced path is
                // suspect (feeds the breaker); the member gets a solo
                // retry with one corruption already on record.
                out.coalesced_failed = true;
                out.solo += 1;
                self.exec_one(e, 1)
            } else {
                Ok(e.op.finish(seg))
            };
            e.deliver(res);
        }
        debug_assert_eq!(offset, scanned.len());
    }

    /// The ladder's bottom rung: one request, one kernel, own
    /// deadline, with the same retry/verify discipline.
    /// `prior_corruptions` carries verification failures already
    /// charged to this request on the coalesced path.
    fn exec_one(&self, e: &Entry, prior_corruptions: u32) -> Result<Vec<u64>> {
        if let Some(d) = &e.deadline {
            d.check()?;
        }
        let kind = e.op.kind();
        let input = e.op.scan_input();
        if input.is_empty() {
            return Ok(e.op.finish(&[]));
        }
        let mut attempt: u32 = 0;
        loop {
            match self.backend.scan_one(kind, &input, e.deadline.as_ref()) {
                Ok(scanned)
                    if scanned.len() == input.len()
                        && (!self.cfg.verify || verify_exclusive(kind, &input, &scanned)) =>
                {
                    return Ok(e.op.finish(&scanned));
                }
                Ok(_) if attempt < self.cfg.batch_retries => {
                    attempt += 1;
                    std::thread::sleep(self.backoff(e.enqueued_dispatch, attempt, kind));
                }
                Ok(_) => {
                    return Err(ServiceError::Corrupted {
                        attempts: prior_corruptions + attempt + 1,
                    });
                }
                Err(scan_core::Error::Exec(ExecError::WorkerLost { .. }))
                    if attempt < self.cfg.batch_retries =>
                {
                    attempt += 1;
                    std::thread::sleep(self.backoff(e.enqueued_dispatch, attempt, kind));
                }
                Err(scan_core::Error::Exec(err)) => return Err(ServiceError::Exec(err)),
                Err(err) => return Err(ServiceError::Invalid(err)),
            }
        }
    }

    /// A consistent point-in-time health snapshot.
    pub fn health(&self) -> ServiceHealth {
        let st = self.lock_state();
        ServiceHealth {
            queue_depth: st.live_depth(),
            submitted: st.submitted,
            completed: st.completed,
            shed: st.shed,
            failed: st.failed,
            batches: st.batches,
            batched_requests: st.batched_requests,
            solo_requests: st.solo_requests,
            expired_in_queue: st.expired_in_queue,
            backend_health: CoalescerHealth {
                mode: match st.degraded_until {
                    Some(until) if st.dispatches < until => ServiceMode::Degraded { until },
                    _ => ServiceMode::Coalescing,
                },
                dispatches: st.dispatches,
                consecutive_failures: st.consecutive_failures,
                quarantine: st.quarantine,
                times_degraded: st.times_degraded,
                batches_retried: st.batches_retried,
            },
            tenants: st.tenants.clone(),
        }
    }
}

/// Disaster containment for the leader role: on an unwinding leader,
/// deliver a typed error to every slot still empty, then step down and
/// wake the waiters. Disarmed on the normal path.
struct LeaderGuard<'a, B: BatchBackend> {
    svc: &'a ScanService<B>,
    batch: &'a [Arc<Entry>],
    armed: bool,
}

impl<B: BatchBackend> Drop for LeaderGuard<'_, B> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        for e in self.batch {
            let mut slot = e.slot.lock().unwrap_or_else(PoisonError::into_inner);
            if slot.is_none() {
                *slot = Some(Err(ServiceError::Exec(ExecError::WorkerLost { panics: 1 })));
            }
        }
        let mut st = self.svc.lock_state();
        st.leading = false;
        drop(st);
        self.svc.cv.notify_all();
    }
}

/// O(n) postcondition check: `out` must be the exclusive scan of
/// `input` under `kind` (identity 0 for both `+` and `max` on `u64`).
fn verify_exclusive(kind: ScanKind, input: &[u64], out: &[u64]) -> bool {
    if out.len() != input.len() {
        return false;
    }
    let mut acc = 0u64;
    for (x, y) in input.iter().zip(out) {
        if *y != acc {
            return false;
        }
        acc = kind.combine(acc, *x);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// A fast config for single-submitter tests: zero window so a lone
    /// submitter leads immediately.
    fn quick() -> ServiceConfig {
        ServiceConfig {
            window: Duration::ZERO,
            close_target: 1,
            backoff_base: Duration::ZERO,
            backoff_jitter: Duration::ZERO,
            ..ServiceConfig::default()
        }
    }

    fn plus(v: &[u64]) -> ScanRequest {
        ScanRequest::new(TenantId(1), RequestOp::PlusScan(v.to_vec()))
    }

    #[test]
    fn single_submitter_ops_match_references() {
        let svc = ScanService::new(quick());
        assert_eq!(
            svc.submit(plus(&[3, 1, 4, 1, 5])).unwrap(),
            scan_core::scan::<scan_core::Sum, u64>(&[3, 1, 4, 1, 5])
        );
        assert_eq!(
            svc.submit(ScanRequest::new(
                TenantId(1),
                RequestOp::MaxScan(vec![2, 9, 4, 7])
            ))
            .unwrap(),
            scan_core::scan::<scan_core::Max, u64>(&[2, 9, 4, 7])
        );
        assert_eq!(
            svc.submit(ScanRequest::new(
                TenantId(2),
                RequestOp::Enumerate(vec![true, false, true, true])
            ))
            .unwrap(),
            vec![0, 1, 1, 2]
        );
        assert_eq!(
            svc.submit(ScanRequest::new(
                TenantId(2),
                RequestOp::Pack {
                    values: vec![10, 20, 30, 40],
                    keep: vec![true, false, false, true],
                }
            ))
            .unwrap(),
            vec![10, 40]
        );
        let h = svc.health();
        assert_eq!(h.submitted, 4);
        assert_eq!(h.completed, 4);
        assert!(h.is_drained());
    }

    #[test]
    fn empty_payload_fast_path() {
        let svc = ScanService::new(quick());
        assert_eq!(svc.submit(plus(&[])).unwrap(), Vec::<u64>::new());
        let h = svc.health();
        assert_eq!((h.submitted, h.completed, h.batches), (1, 1, 0));
    }

    #[test]
    fn admission_control_sheds_with_typed_error() {
        let cfg = ServiceConfig {
            max_queue_depth: 0,
            ..quick()
        };
        let svc = ScanService::new(cfg);
        let err = svc.submit(plus(&[1, 2, 3])).unwrap_err();
        assert!(matches!(err, ServiceError::Overloaded { depth: 0, .. }));
        let h = svc.health();
        assert_eq!(h.shed, 1);
        assert_eq!(h.submitted, 0);
        assert_eq!(h.tenants.get(&TenantId(1)).unwrap().shed, 1);
    }

    #[test]
    fn oversized_request_rejected() {
        let cfg = ServiceConfig {
            max_request_len: 4,
            ..quick()
        };
        let svc = ScanService::new(cfg);
        assert!(matches!(
            svc.submit(plus(&[0; 5])).unwrap_err(),
            ServiceError::RequestTooLarge { len: 5, max: 4 }
        ));
    }

    #[test]
    fn dead_on_arrival_deadline_rejects_without_executing() {
        let svc = ScanService::new(quick());
        let d = ScanDeadline::manual();
        d.cancel();
        let err = svc
            .submit(plus(&[1, 2, 3]).with_deadline(d))
            .unwrap_err();
        assert_eq!(err, ServiceError::Exec(ExecError::Cancelled));
        let h = svc.health();
        assert_eq!(h.expired_in_queue, 1);
        assert_eq!(h.failed, 1);
        assert!(h.is_drained());
        // The dead entry's husk must not pollute live depth.
        assert_eq!(h.queue_depth, 0);
    }

    /// Backend whose segmented path fails `fail_next` times with a
    /// contained worker panic, while the solo path stays honest.
    struct FlakySeg {
        fail_next: AtomicU32,
        inner: PoolBackend,
    }

    impl FlakySeg {
        fn failing(n: u32) -> Self {
            FlakySeg {
                fail_next: AtomicU32::new(n),
                inner: PoolBackend,
            }
        }
    }

    impl BatchBackend for FlakySeg {
        fn seg_scan(
            &self,
            kind: ScanKind,
            values: &[u64],
            segs: &Segments,
            deadline: Option<&ScanDeadline>,
        ) -> scan_core::Result<Vec<u64>> {
            let left = self.fail_next.load(Ordering::Relaxed);
            if left > 0 {
                self.fail_next.store(left - 1, Ordering::Relaxed);
                return Err(scan_core::Error::Exec(ExecError::WorkerLost { panics: 1 }));
            }
            self.inner.seg_scan(kind, values, segs, deadline)
        }

        fn scan_one(
            &self,
            kind: ScanKind,
            values: &[u64],
            deadline: Option<&ScanDeadline>,
        ) -> scan_core::Result<Vec<u64>> {
            self.inner.scan_one(kind, values, deadline)
        }
    }

    #[test]
    fn worker_panic_retries_then_succeeds() {
        let cfg = ServiceConfig {
            batch_retries: 2,
            ..quick()
        };
        let svc = ScanService::with_backend(cfg, FlakySeg::failing(2));
        assert_eq!(svc.submit(plus(&[1, 2, 3])).unwrap(), vec![0, 1, 3]);
        let h = svc.health();
        assert_eq!(h.backend_health.batches_retried, 1);
        assert_eq!(h.backend_health.consecutive_failures, 0);
        assert_eq!(h.completed, 1);
    }

    #[test]
    fn breaker_opens_degrades_probes_and_heals() {
        let cfg = ServiceConfig {
            batch_retries: 0,
            failure_threshold: 2,
            base_quarantine: 2,
            max_quarantine: 8,
            ..quick()
        };
        // Enough seg failures to trip the breaker and fail one probe.
        let svc = ScanService::with_backend(cfg, FlakySeg::failing(3));

        // Dispatches 0 and 1: coalesced attempts fail, solo fallback
        // still answers correctly; failure 2 opens the breaker.
        for _ in 0..2 {
            assert_eq!(svc.submit(plus(&[5, 6])).unwrap(), vec![0, 5]);
        }
        let h = svc.health();
        assert!(matches!(h.backend_health.mode, ServiceMode::Degraded { .. }));
        assert_eq!(h.backend_health.times_degraded, 1);
        assert_eq!(h.backend_health.consecutive_failures, 2);

        // Dispatches 2 and 3 run inside the quarantine: pure solo, no
        // coalesced attempt.
        let batches_before = svc.health().batches;
        for _ in 0..2 {
            assert_eq!(svc.submit(plus(&[5, 6])).unwrap(), vec![0, 5]);
        }
        assert_eq!(svc.health().batches, batches_before);

        // Dispatch 4 is the probe; the third injected failure makes it
        // fail, doubling the quarantine.
        assert_eq!(svc.submit(plus(&[5, 6])).unwrap(), vec![0, 5]);
        let h = svc.health();
        assert_eq!(h.backend_health.quarantine, 4);
        assert!(matches!(h.backend_health.mode, ServiceMode::Degraded { .. }));

        // Ride out the doubled quarantine; the next probe succeeds and
        // the breaker closes with state reset.
        for _ in 0..4 {
            svc.submit(plus(&[5, 6])).unwrap();
        }
        assert_eq!(svc.submit(plus(&[7])).unwrap(), vec![0]);
        let h = svc.health();
        assert_eq!(h.backend_health.mode, ServiceMode::Coalescing);
        assert_eq!(h.backend_health.consecutive_failures, 0);
        assert_eq!(h.backend_health.quarantine, 2);
        // Every request was answered despite the storm.
        assert!(h.is_drained());
        assert_eq!(h.failed, 0);
    }

    /// Backend that lies: right-length output, wrong values.
    struct Liar;

    impl BatchBackend for Liar {
        fn seg_scan(
            &self,
            _kind: ScanKind,
            values: &[u64],
            _segs: &Segments,
            _deadline: Option<&ScanDeadline>,
        ) -> scan_core::Result<Vec<u64>> {
            Ok(vec![u64::MAX; values.len()])
        }

        fn scan_one(
            &self,
            _kind: ScanKind,
            values: &[u64],
            _deadline: Option<&ScanDeadline>,
        ) -> scan_core::Result<Vec<u64>> {
            Ok(vec![u64::MAX; values.len()])
        }
    }

    #[test]
    fn lying_backend_is_caught_not_delivered() {
        let cfg = ServiceConfig {
            batch_retries: 0,
            ..quick()
        };
        let svc = ScanService::with_backend(cfg, Liar);
        let err = svc.submit(plus(&[1, 2, 3])).unwrap_err();
        // One corruption on the coalesced path, one on the solo retry.
        assert_eq!(err, ServiceError::Corrupted { attempts: 2 });
        let h = svc.health();
        assert_eq!(h.failed, 1);
        assert!(h.backend_health.consecutive_failures >= 1);
        assert!(h.is_drained());
    }

    #[test]
    fn uncoalesced_config_runs_one_request_one_kernel() {
        let svc = ScanService::new(ServiceConfig {
            backoff_base: Duration::ZERO,
            backoff_jitter: Duration::ZERO,
            ..ServiceConfig::uncoalesced()
        });
        assert_eq!(svc.submit(plus(&[4, 4])).unwrap(), vec![0, 4]);
        let h = svc.health();
        assert_eq!(h.solo_requests, 1);
        assert_eq!(h.batches, 0);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let svc = ScanService::new(quick());
        let a = svc.backoff(7, 1, ScanKind::Sum);
        let b = svc.backoff(7, 1, ScanKind::Sum);
        assert_eq!(a, b);
        // Different dispatch → (almost surely) different jitter, but
        // always within base·2^(k−1) + jitter bound.
        let cfg = ServiceConfig::default();
        for d in 0..20u64 {
            for attempt in 1..=3u32 {
                let got = svc_backoff(&cfg, d, attempt);
                let cap = cfg.backoff_base * (1 << (attempt - 1)) + cfg.backoff_jitter;
                assert!(got <= cap, "backoff {got:?} above cap {cap:?}");
            }
        }
    }

    fn svc_backoff(cfg: &ServiceConfig, dispatch: u64, attempt: u32) -> Duration {
        let svc = ScanService::new(cfg.clone());
        svc.backoff(dispatch, attempt, ScanKind::Sum)
    }

    /// Exact-value pin: the shared `scan_core::backoff` module must
    /// reproduce the formula this file carried inline before the
    /// extraction, nanosecond for nanosecond.
    #[test]
    fn backoff_matches_the_legacy_inline_formula_exactly() {
        fn legacy_mix(mut z: u64) -> u64 {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        fn legacy(cfg: &ServiceConfig, dispatch: u64, attempt: u32, kind: ScanKind) -> Duration {
            let exp = cfg
                .backoff_base
                .saturating_mul(1u32 << (attempt - 1).min(10));
            let jitter_ns = cfg.backoff_jitter.as_nanos() as u64;
            if jitter_ns == 0 {
                return exp;
            }
            let stream = cfg
                .jitter_seed
                .wrapping_add(dispatch.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .wrapping_add(u64::from(attempt) << 1)
                .wrapping_add(matches!(kind, ScanKind::Max) as u64);
            exp + Duration::from_nanos(legacy_mix(stream) % jitter_ns)
        }
        let cfg = ServiceConfig::default();
        let svc = ScanService::new(cfg.clone());
        for dispatch in [0u64, 1, 7, 4096] {
            for attempt in 1..=4u32 {
                for kind in [ScanKind::Sum, ScanKind::Max] {
                    assert_eq!(
                        svc.backoff(dispatch, attempt, kind),
                        legacy(&cfg, dispatch, attempt, kind)
                    );
                }
            }
        }
        // The zero-jitter early return too.
        let cfg = quick();
        let svc = ScanService::new(cfg.clone());
        assert_eq!(svc.backoff(3, 2, ScanKind::Sum), legacy(&cfg, 3, 2, ScanKind::Sum));
    }

    #[test]
    fn verify_exclusive_accepts_truth_rejects_lies() {
        let input = [3u64, 1, 4];
        assert!(verify_exclusive(ScanKind::Sum, &input, &[0, 3, 4]));
        assert!(!verify_exclusive(ScanKind::Sum, &input, &[0, 3, 5]));
        assert!(!verify_exclusive(ScanKind::Sum, &input, &[0, 3]));
        assert!(verify_exclusive(ScanKind::Max, &input, &[0, 3, 3]));
    }
}
