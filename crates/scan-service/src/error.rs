//! Typed errors for the serving layer.
//!
//! Every failure mode of the front door is an enum variant — nothing
//! panics across [`crate::ScanService::submit`], nothing hangs, and a
//! shed request costs O(1). The execution-layer reasons
//! ([`scan_core::ExecError`]: worker panic, deadline, cancel) pass
//! through unchanged so callers can match on them directly.

use core::fmt;
use scan_core::ExecError;

/// Why a submitted request did not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Admission control shed the request: the global queue or the
    /// tenant's share of it is full. Retry later (the queue is bounded
    /// by construction, so this is the *only* backpressure signal —
    /// the service never buffers unboundedly).
    Overloaded {
        /// Queue depth observed at admission time.
        depth: usize,
        /// Depth of the submitting tenant's own queue.
        tenant_depth: usize,
    },
    /// The request payload exceeds the configured per-request bound.
    RequestTooLarge {
        /// Payload length submitted.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
    /// The request was malformed (e.g. a `Pack` whose `values` and
    /// `keep` lengths disagree).
    Invalid(scan_core::Error),
    /// The execution layer failed: the request's deadline elapsed
    /// (in-queue or mid-execution), it was cancelled, or its work kept
    /// dying to contained worker panics after the retry budget.
    Exec(ExecError),
    /// The backend returned results that failed the service's O(n)
    /// postcondition verification, on the coalesced path *and* on
    /// every individual retry. The corrupted output was never
    /// delivered.
    Corrupted {
        /// Total verification failures observed for this request.
        attempts: u32,
    },
}

impl From<ExecError> for ServiceError {
    fn from(e: ExecError) -> Self {
        ServiceError::Exec(e)
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded {
                depth,
                tenant_depth,
            } => write!(
                f,
                "overloaded: queue depth {depth} (tenant depth {tenant_depth}), request shed"
            ),
            ServiceError::RequestTooLarge { len, max } => {
                write!(f, "request of {len} elements exceeds the {max}-element bound")
            }
            ServiceError::Invalid(e) => write!(f, "invalid request: {e}"),
            ServiceError::Exec(e) => write!(f, "execution failed: {e}"),
            ServiceError::Corrupted { attempts } => write!(
                f,
                "backend produced unverifiable output ({attempts} attempt(s) rejected)"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Result alias for service calls.
pub type Result<T> = core::result::Result<T, ServiceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = ServiceError::Overloaded {
            depth: 9,
            tenant_depth: 4,
        };
        assert!(e.to_string().contains("depth 9"));
        assert!(e.to_string().contains("tenant depth 4"));
        let e = ServiceError::RequestTooLarge { len: 10, max: 5 };
        assert!(e.to_string().contains("10"));
        let e = ServiceError::Exec(ExecError::DeadlineExceeded);
        assert!(e.to_string().contains("deadline"));
        let e = ServiceError::Corrupted { attempts: 3 };
        assert!(e.to_string().contains("3 attempt"));
        let e = ServiceError::Invalid(scan_core::Error::LengthMismatch {
            expected: 2,
            actual: 1,
        });
        assert!(e.to_string().contains("length mismatch"));
    }

    #[test]
    fn exec_error_converts() {
        let e: ServiceError = ExecError::Cancelled.into();
        assert_eq!(e, ServiceError::Exec(ExecError::Cancelled));
    }
}
