//! Weighted round-robin tenant queues with a provable starvation
//! bound.
//!
//! The front door keeps one FIFO queue per tenant and forms batches by
//! walking the tenants in a persistent round-robin rotation, taking up
//! to `weight` requests from each before moving on. The rotation
//! *continues across batches* (deficit-round-robin style): the tenant
//! where one batch stopped is where the next batch resumes, so a
//! flooding tenant can fill at most its weighted share of any batch
//! and can never push another tenant's head-of-line request beyond a
//! computable number of dispatches.
//!
//! **Starvation bound.** Call one full rotation over the active
//! tenants a *cycle*. A tenant with queued work is served at least
//! once (and at most `weight`) per cycle, because a tenant is only
//! popped from the rotation when the batch has room for at least one
//! of its requests. A request at position `p` (0-based) of its
//! tenant's queue therefore waits at most `p + 1` cycles, each cycle
//! dispatches at most `W = Σ weights(active)` requests, and batches
//! dispatch up to `capacity` requests each, so the request is
//! dispatched within
//!
//! ```text
//!   ceil((p + 1) · W / capacity) + 1   batch dispatches.
//! ```
//!
//! [`starvation_bound`] computes this; the fairness property suite
//! (`tests/fairness_proptests.rs`) asserts it over arbitrary
//! proptest-generated tenant mixes, and the live service records each
//! request's observed wait in dispatches so the same bound is checked
//! end-to-end under a tenant flood.

use std::collections::{BTreeMap, VecDeque};

use crate::request::TenantId;

/// Per-tenant FIFO queues drained by weighted round-robin.
///
/// Not synchronized — the service owns one behind its state mutex.
/// Generic over the queued item so the fairness properties can be
/// tested on plain tokens without spinning up threads.
#[derive(Debug)]
pub struct FairQueue<T> {
    queues: BTreeMap<TenantId, VecDeque<T>>,
    /// Round-robin rotation of tenants with non-empty queues; the
    /// front is served next. Persistent across batches.
    rotation: VecDeque<TenantId>,
    weights: BTreeMap<TenantId, u32>,
    default_weight: u32,
    depth: usize,
}

impl<T> FairQueue<T> {
    /// An empty queue set; tenants not in `weights` get
    /// `default_weight` (clamped to at least 1).
    pub fn new(default_weight: u32, weights: BTreeMap<TenantId, u32>) -> Self {
        FairQueue {
            queues: BTreeMap::new(),
            rotation: VecDeque::new(),
            weights,
            default_weight: default_weight.max(1),
            depth: 0,
        }
    }

    /// Total queued items, all tenants.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Queued items for one tenant.
    pub fn tenant_depth(&self, t: TenantId) -> usize {
        self.queues.get(&t).map_or(0, VecDeque::len)
    }

    /// The per-batch share of tenant `t`.
    pub fn weight(&self, t: TenantId) -> u32 {
        self.weights
            .get(&t)
            .copied()
            .unwrap_or(self.default_weight)
            .max(1)
    }

    /// Tenants with at least one queued item, in rotation order.
    pub fn active_tenants(&self) -> Vec<TenantId> {
        self.rotation.iter().copied().collect()
    }

    /// Enqueue `item` at the back of `t`'s queue.
    pub fn push(&mut self, t: TenantId, item: T) {
        let q = self.queues.entry(t).or_default();
        if q.is_empty() {
            // (Re-)activates the tenant: it joins the rotation at the
            // back, behind every tenant already waiting.
            self.rotation.push_back(t);
        }
        q.push_back(item);
        self.depth += 1;
    }

    /// Drain up to `capacity` items by weighted round-robin. Items for
    /// which `alive` returns false are dropped without consuming
    /// capacity or the tenant's share (they belong to callers that
    /// already gave up on them).
    ///
    /// A tenant is only taken from when the batch still has room, so
    /// every popped tenant contributes at least one live item (or only
    /// dead ones, which cost nobody anything); an interrupted tenant
    /// rejoins the rotation and no tenant exceeds its weight per
    /// rotation pass.
    pub fn take_batch(&mut self, capacity: usize, mut alive: impl FnMut(&T) -> bool) -> Vec<T> {
        let mut batch = Vec::new();
        // Sweep the rotation until the batch is full or the queues
        // drain. Termination: every inner iteration removes an item
        // from some queue, and a tenant found empty leaves the
        // rotation, so iterations are bounded by depth + tenants.
        while batch.len() < capacity {
            let Some(t) = self.rotation.pop_front() else {
                break;
            };
            let weight = self.weight(t) as usize;
            let mut took = 0usize;
            let emptied = {
                let Some(q) = self.queues.get_mut(&t) else {
                    continue;
                };
                while took < weight && batch.len() < capacity {
                    match q.pop_front() {
                        Some(item) => {
                            self.depth -= 1;
                            if alive(&item) {
                                batch.push(item);
                                took += 1;
                            }
                            // Dead items are dropped free of charge.
                        }
                        None => break,
                    }
                }
                q.is_empty()
            };
            if !emptied {
                self.rotation.push_back(t);
            }
        }
        batch
    }
}

/// The worst-case number of batch dispatches before the request at
/// 0-based queue position `p` of some tenant is dispatched, given the
/// total active weight `total_weight` (Σ over every tenant that may
/// compete) and the batch `capacity`. See the module docs for the
/// derivation.
pub fn starvation_bound(p: usize, total_weight: u64, capacity: usize) -> u64 {
    let cap = capacity.max(1) as u64;
    let requests_ahead = (p as u64 + 1).saturating_mul(total_weight.max(1));
    requests_ahead.div_ceil(cap) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(default_weight: u32) -> FairQueue<u64> {
        FairQueue::new(default_weight, BTreeMap::new())
    }

    #[test]
    fn round_robin_interleaves_tenants() {
        let mut f = q(1);
        for i in 0..3 {
            f.push(TenantId(1), 100 + i);
            f.push(TenantId(2), 200 + i);
        }
        f.push(TenantId(3), 300);
        assert_eq!(f.depth(), 7);
        let b = f.take_batch(7, |_| true);
        // Weight 1 each: 1, 2, 3 then 1, 2 then 1, 2.
        assert_eq!(b, vec![100, 200, 300, 101, 201, 102, 202]);
        assert_eq!(f.depth(), 0);
        assert!(f.active_tenants().is_empty());
    }

    #[test]
    fn weights_scale_the_per_pass_share() {
        let mut f = FairQueue::new(1, BTreeMap::from([(TenantId(1), 2)]));
        for i in 0..4 {
            f.push(TenantId(1), 10 + i);
            f.push(TenantId(2), 20 + i);
        }
        let b = f.take_batch(6, |_| true);
        // Tenant 1 takes 2 per pass, tenant 2 takes 1.
        assert_eq!(b, vec![10, 11, 20, 12, 13, 21]);
    }

    #[test]
    fn rotation_continues_across_batches() {
        let mut f = q(1);
        for t in 1..=4u64 {
            f.push(TenantId(t), t);
            f.push(TenantId(t), 10 + t);
        }
        // Capacity 3 stops mid-rotation; the next batch resumes where
        // this one stopped instead of restarting at tenant 1.
        assert_eq!(f.take_batch(3, |_| true), vec![1, 2, 3]);
        assert_eq!(f.take_batch(3, |_| true), vec![4, 11, 12]);
        assert_eq!(f.take_batch(3, |_| true), vec![13, 14]);
    }

    #[test]
    fn flooding_tenant_cannot_displace_others() {
        let mut f = q(1);
        for i in 0..1000 {
            f.push(TenantId(1), i);
        }
        f.push(TenantId(2), 9999);
        // The flood is ahead in rotation, but tenant 2's request rides
        // the very next batch (weight 1 caps the flood's share).
        let b = f.take_batch(4, |_| true);
        assert!(b.contains(&9999), "flooded-out tenant missing: {b:?}");
    }

    #[test]
    fn dead_items_cost_no_capacity() {
        let mut f = q(2);
        for i in 0..6u64 {
            f.push(TenantId(1), i);
        }
        // Items 0..4 are dead: the batch still fills with live ones.
        let b = f.take_batch(2, |&x| x >= 4);
        assert_eq!(b, vec![4, 5]);
        assert_eq!(f.depth(), 0);
    }

    #[test]
    fn empty_tenant_leaves_rotation_and_rejoins() {
        let mut f = q(1);
        f.push(TenantId(5), 1);
        assert_eq!(f.take_batch(8, |_| true), vec![1]);
        assert!(f.active_tenants().is_empty());
        f.push(TenantId(5), 2);
        assert_eq!(f.active_tenants(), vec![TenantId(5)]);
        assert_eq!(f.tenant_depth(TenantId(5)), 1);
    }

    #[test]
    fn bound_formula_sanity() {
        // Head of queue, 3 tenants weight 1, capacity 4: one batch
        // (plus alignment slack).
        assert_eq!(starvation_bound(0, 3, 4), 2);
        // Deep position pays proportionally.
        assert!(starvation_bound(10, 3, 4) > starvation_bound(0, 3, 4));
        // Degenerate capacity never divides by zero.
        assert!(starvation_bound(0, 1, 0) >= 1);
    }
}
