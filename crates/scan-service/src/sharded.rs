//! A [`BatchBackend`] that routes mega-batches through the sharded
//! executor.
//!
//! Coalesced batches at or above `min_shard_len` run on a
//! [`ShardedExecutor`] — fanned across independent shard pools with
//! loss recovery and verification ([`scan_shard`]) — while small
//! batches and the solo degradation path stay on the ordinary
//! [`PoolBackend`], whose single pool beats the sharding overhead at
//! those sizes.
//!
//! Error mapping back into the service's `scan_core` error space:
//! execution and input errors pass through unchanged; a typed shard
//! loss or degradation (only reachable under
//! [`scan_shard::RecoveryPolicy::Fail`]) is reported as a lost worker,
//! which the service's own retry/degradation ladder already handles.

use scan_core::segmented::Segments;
use scan_core::{deadline, ExecError, ScanDeadline};
use scan_shard::{ShardConfig, ShardError, ShardedExecutor};

use crate::backend::{BatchBackend, PoolBackend, ScanKind};

/// Batch backend executing large batches on a sharded executor.
#[derive(Debug)]
pub struct ShardedBackend {
    executor: ShardedExecutor,
    min_shard_len: usize,
    fallback: PoolBackend,
}

impl ShardedBackend {
    /// Build a backend over a fresh [`ShardedExecutor`]. Batches
    /// shorter than `min_shard_len` run on the single-pool fallback.
    pub fn new(cfg: ShardConfig, min_shard_len: usize) -> Self {
        ShardedBackend {
            executor: ShardedExecutor::new(cfg),
            min_shard_len,
            fallback: PoolBackend,
        }
    }

    /// The underlying executor, for health inspection
    /// ([`ShardedExecutor::health`]).
    pub fn executor(&self) -> &ShardedExecutor {
        &self.executor
    }

    fn kind(kind: ScanKind) -> scan_shard::ScanKind {
        match kind {
            ScanKind::Sum => scan_shard::ScanKind::Sum,
            ScanKind::Max => scan_shard::ScanKind::Max,
        }
    }
}

/// Fold a shard error back into the service's error space.
fn to_core(e: ShardError) -> scan_core::Error {
    match e {
        ShardError::Exec(x) => scan_core::Error::Exec(x),
        ShardError::Invalid(x) => x,
        // Only reachable under RecoveryPolicy::Fail: surface as a lost
        // worker so the service's retry ladder treats it like any
        // other execution failure.
        ShardError::ShardLost { .. } | ShardError::Degraded { .. } => {
            scan_core::Error::Exec(ExecError::WorkerLost { panics: 1 })
        }
    }
}

fn scoped<R>(deadline: Option<&ScanDeadline>, f: impl FnOnce() -> R) -> R {
    match deadline {
        Some(d) => deadline::with_deadline(d, f),
        None => f(),
    }
}

impl BatchBackend for ShardedBackend {
    fn seg_scan(
        &self,
        kind: ScanKind,
        values: &[u64],
        segs: &Segments,
        deadline: Option<&ScanDeadline>,
    ) -> scan_core::Result<Vec<u64>> {
        if values.len() < self.min_shard_len {
            return self.fallback.seg_scan(kind, values, segs, deadline);
        }
        scoped(deadline, || {
            self.executor
                .seg_scan(Self::kind(kind), values, segs.flags())
        })
        .map_err(to_core)
    }

    fn scan_one(
        &self,
        kind: ScanKind,
        values: &[u64],
        deadline: Option<&ScanDeadline>,
    ) -> scan_core::Result<Vec<u64>> {
        if values.len() < self.min_shard_len {
            return self.fallback.scan_one(kind, values, deadline);
        }
        scoped(deadline, || self.executor.scan(Self::kind(kind), values)).map_err(to_core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| (i * 37 + 5) % 211).collect()
    }

    #[test]
    fn matches_pool_backend_above_and_below_the_floor() {
        let sharded = ShardedBackend::new(
            ShardConfig {
                shards: 3,
                ..ShardConfig::default()
            },
            64,
        );
        let pool = PoolBackend;
        for n in [8usize, 63, 64, 500] {
            let a = data(n);
            let segs = Segments::from_flags((0..n).map(|i| i % 19 == 3).collect());
            for kind in [ScanKind::Sum, ScanKind::Max] {
                assert_eq!(
                    sharded.seg_scan(kind, &a, &segs, None).unwrap(),
                    pool.seg_scan(kind, &a, &segs, None).unwrap(),
                    "seg, n = {n}"
                );
                assert_eq!(
                    sharded.scan_one(kind, &a, None).unwrap(),
                    pool.scan_one(kind, &a, None).unwrap(),
                    "flat, n = {n}"
                );
            }
        }
        // Only the batches at or above the floor reached the executor.
        let h = sharded.executor().health();
        assert!(h.runs >= 1);
        assert_eq!(h.losses, 0);
    }

    #[test]
    fn deadline_propagates_into_the_executor() {
        let sharded = ShardedBackend::new(ShardConfig::default(), 0);
        let d = ScanDeadline::manual();
        d.cancel();
        let a = data(100);
        let segs = Segments::single(a.len());
        assert_eq!(
            sharded.seg_scan(ScanKind::Sum, &a, &segs, Some(&d)),
            Err(scan_core::Error::Exec(ExecError::Cancelled))
        );
        assert_eq!(
            sharded.scan_one(ScanKind::Max, &a, Some(&d)),
            Err(scan_core::Error::Exec(ExecError::Cancelled))
        );
    }

    #[test]
    fn service_routes_through_the_sharded_executor() {
        use crate::request::{RequestOp, ScanRequest, TenantId};
        use crate::service::{ScanService, ServiceConfig};

        let svc = ScanService::sharded(
            ServiceConfig::default(),
            ShardConfig {
                shards: 2,
                ..ShardConfig::default()
            },
            0,
        );
        let a = data(200);
        let got = svc
            .submit(ScanRequest::new(TenantId(7), RequestOp::PlusScan(a.clone())))
            .unwrap();
        assert_eq!(got, scan_core::scan::<scan_core::Sum, _>(&a));
        let h = svc.backend().executor().health();
        assert!(h.runs >= 1, "{h:?}");
        assert_eq!(h.losses, 0);
    }

    #[test]
    fn shard_losses_map_to_worker_loss() {
        use scan_shard::LossCause;
        assert_eq!(
            to_core(ShardError::ShardLost {
                shard: 1,
                cause: LossCause::Watchdog,
            }),
            scan_core::Error::Exec(ExecError::WorkerLost { panics: 1 })
        );
        assert_eq!(
            to_core(ShardError::Degraded { live: 0, need: 1 }),
            scan_core::Error::Exec(ExecError::WorkerLost { panics: 1 })
        );
        assert_eq!(
            to_core(ShardError::Exec(ExecError::Cancelled)),
            scan_core::Error::Exec(ExecError::Cancelled)
        );
    }
}
