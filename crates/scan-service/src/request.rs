//! Request vocabulary of the front door.
//!
//! A [`ScanRequest`] is one small unit of work from one tenant: a
//! primitive scan (`+`/`max`) or a derived vector operation
//! (`enumerate`, `pack`) over a short slice. Everything here reduces
//! to an exclusive scan over mapped `u64` values — that reduction is
//! exactly what lets the coalescer fuse a whole window of requests
//! into one segmented scan (paper §2.3).

use scan_core::ScanDeadline;

use crate::backend::ScanKind;
use crate::error::ServiceError;

/// Identifies one tenant of the service. Fairness weights, per-tenant
/// admission caps, and per-tenant health counters key off this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u64);

impl core::fmt::Display for TenantId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// The operation a request asks for. All results are delivered as
/// `Vec<u64>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestOp {
    /// Exclusive `+-scan` of the payload.
    PlusScan(Vec<u64>),
    /// Exclusive `max-scan` of the payload.
    MaxScan(Vec<u64>),
    /// `enumerate` of a flag vector: position of each flag among the
    /// true flags (the exclusive `+-scan` of the 0/1 mapping).
    Enumerate(Vec<bool>),
    /// `pack`: the elements of `values` whose `keep` flag is set, in
    /// order.
    Pack {
        /// Elements to filter.
        values: Vec<u64>,
        /// Keep flags, one per element.
        keep: Vec<bool>,
    },
}

impl RequestOp {
    /// Number of elements this request contributes to a batch.
    pub fn len(&self) -> usize {
        match self {
            RequestOp::PlusScan(v) | RequestOp::MaxScan(v) => v.len(),
            RequestOp::Enumerate(f) => f.len(),
            RequestOp::Pack { values, .. } => values.len(),
        }
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Which primitive scan family executes this op. `Enumerate` and
    /// `Pack` ride the `+-scan` group (their scan input is the 0/1
    /// flag mapping).
    pub fn kind(&self) -> ScanKind {
        match self {
            RequestOp::MaxScan(_) => ScanKind::Max,
            _ => ScanKind::Sum,
        }
    }

    /// The `u64` values the underlying exclusive scan runs over.
    pub fn scan_input(&self) -> Vec<u64> {
        match self {
            RequestOp::PlusScan(v) | RequestOp::MaxScan(v) => v.clone(),
            RequestOp::Enumerate(f) => f.iter().map(|&b| u64::from(b)).collect(),
            RequestOp::Pack { keep, .. } => keep.iter().map(|&b| u64::from(b)).collect(),
        }
    }

    /// Turn the raw exclusive-scan output for this request's segment
    /// into the op's result.
    pub(crate) fn finish(&self, scanned: &[u64]) -> Vec<u64> {
        match self {
            RequestOp::PlusScan(_) | RequestOp::MaxScan(_) | RequestOp::Enumerate(_) => {
                scanned.to_vec()
            }
            RequestOp::Pack { values, keep } => {
                let n = values.len();
                if n == 0 {
                    return Vec::new();
                }
                let kept = (scanned[n - 1] as usize) + usize::from(keep[n - 1]);
                let mut out = vec![0u64; kept];
                for i in 0..n {
                    if keep[i] {
                        out[scanned[i] as usize] = values[i];
                    }
                }
                out
            }
        }
    }

    /// Structural validation (length agreement, payload bound).
    pub(crate) fn validate(&self, max_len: usize) -> Result<(), ServiceError> {
        if let RequestOp::Pack { values, keep } = self {
            if values.len() != keep.len() {
                return Err(ServiceError::Invalid(scan_core::Error::LengthMismatch {
                    expected: values.len(),
                    actual: keep.len(),
                }));
            }
        }
        if self.len() > max_len {
            return Err(ServiceError::RequestTooLarge {
                len: self.len(),
                max: max_len,
            });
        }
        Ok(())
    }
}

/// One submission: a tenant, an operation, and an optional
/// cancellation/deadline token.
///
/// The deadline is *propagated*, not polled: an expired token rejects
/// the request while it queues (without touching the batch it would
/// have joined), and a token cancelled mid-batch fails only this
/// request — co-batched requests from other tenants are unaffected.
#[derive(Debug, Clone)]
pub struct ScanRequest {
    /// Submitting tenant.
    pub tenant: TenantId,
    /// Requested operation.
    pub op: RequestOp,
    /// Optional per-request deadline/cancellation token.
    pub deadline: Option<ScanDeadline>,
}

impl ScanRequest {
    /// A request with no deadline.
    pub fn new(tenant: TenantId, op: RequestOp) -> Self {
        ScanRequest {
            tenant,
            op,
            deadline: None,
        }
    }

    /// Attach a deadline/cancellation token.
    pub fn with_deadline(mut self, deadline: ScanDeadline) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_inputs() {
        let p = RequestOp::PlusScan(vec![1, 2, 3]);
        assert_eq!(p.kind(), ScanKind::Sum);
        assert_eq!(p.scan_input(), vec![1, 2, 3]);
        let m = RequestOp::MaxScan(vec![5]);
        assert_eq!(m.kind(), ScanKind::Max);
        let e = RequestOp::Enumerate(vec![true, false, true]);
        assert_eq!(e.kind(), ScanKind::Sum);
        assert_eq!(e.scan_input(), vec![1, 0, 1]);
        let k = RequestOp::Pack {
            values: vec![10, 20, 30],
            keep: vec![false, true, true],
        };
        assert_eq!(k.scan_input(), vec![0, 1, 1]);
        assert_eq!(k.len(), 3);
        assert!(!k.is_empty());
    }

    #[test]
    fn pack_finish_gathers_kept_elements() {
        let k = RequestOp::Pack {
            values: vec![10, 20, 30, 40],
            keep: vec![true, false, true, true],
        };
        // Exclusive +-scan of [1,0,1,1]:
        let scanned = [0u64, 1, 1, 2];
        assert_eq!(k.finish(&scanned), vec![10, 30, 40]);
        let empty = RequestOp::Pack {
            values: vec![],
            keep: vec![],
        };
        assert_eq!(empty.finish(&[]), Vec::<u64>::new());
    }

    #[test]
    fn validation_catches_mismatch_and_oversize() {
        let bad = RequestOp::Pack {
            values: vec![1, 2],
            keep: vec![true],
        };
        assert!(matches!(
            bad.validate(100),
            Err(ServiceError::Invalid(scan_core::Error::LengthMismatch { .. }))
        ));
        let big = RequestOp::PlusScan(vec![0; 10]);
        assert!(matches!(
            big.validate(5),
            Err(ServiceError::RequestTooLarge { len: 10, max: 5 })
        ));
        assert!(big.validate(10).is_ok());
    }

    #[test]
    fn tenant_display() {
        assert_eq!(TenantId(7).to_string(), "tenant-7");
    }
}
