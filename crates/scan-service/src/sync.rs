//! The service crate's audited sync module.
//!
//! The workspace confines atomic types to the sync modules the
//! invariant linter knows about (`cargo xtask lint`, rule R8), so the
//! one atomic the service layer needs — the per-entry slot flag — is
//! defined here rather than inline in `service.rs`.

use std::sync::atomic::{AtomicBool, Ordering};

/// A once-ish boolean flag on a queue entry (`taken`, `abandoned`).
///
/// Both flags are written under the service state lock and read either
/// under it or on a submitter's own entry, so `Relaxed` suffices: the
/// lock (or the entry's result slot mutex) carries the happens-before
/// edge; the atomic only makes the lock-free *reads* on the wait path
/// race-free.
#[derive(Debug)]
pub struct SlotFlag(AtomicBool);

impl SlotFlag {
    /// A cleared flag.
    pub fn new() -> Self {
        SlotFlag(AtomicBool::new(false))
    }

    /// Raise the flag.
    pub fn raise(&self) {
        self.0.store(true, Ordering::Relaxed)
    }

    /// Is the flag raised?
    pub fn is_raised(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for SlotFlag {
    fn default() -> Self {
        SlotFlag::new()
    }
}
