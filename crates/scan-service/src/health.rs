//! Observability surface of the front door.
//!
//! [`ServiceHealth`] is a point-in-time snapshot assembled under the
//! service lock — every number in it is mutually consistent. It is the
//! contract the chaos suite closes its loops against: after any fault
//! storm, `queue_depth == 0` (drained), `submitted == completed +
//! failed + shed` (no lost responses), and `backend_health` reports
//! which rung of the degradation ladder the coalescer sits on.

use std::collections::BTreeMap;

use crate::request::TenantId;

/// Which execution mode the coalescer is currently in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceMode {
    /// Healthy: windows close into segmented-scan mega-batches.
    Coalescing,
    /// Quarantined after repeated batch failures: every request runs
    /// one-request-one-kernel until the quarantine elapses.
    Degraded {
        /// Batch-clock tick (dispatch count) at which a coalesced
        /// probe is next allowed.
        until: u64,
    },
}

/// Breaker/ladder state of the coalescing path — the service-level
/// analogue of a backend health record. Quarantine is measured on the
/// *logical batch clock* (dispatch count), not wall time, so the
/// ladder is deterministic under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalescerHealth {
    /// Current execution mode.
    pub mode: ServiceMode,
    /// Batch dispatches performed so far (the logical clock).
    pub dispatches: u64,
    /// Consecutive coalesced-batch failures observed.
    pub consecutive_failures: u32,
    /// Length, in dispatches, of the next quarantine should the
    /// breaker (re-)open. Doubles on each failed probe, capped.
    pub quarantine: u64,
    /// Times the breaker opened (entered Degraded).
    pub times_degraded: u64,
    /// Coalesced batches that only succeeded after at least one
    /// jittered-backoff retry.
    pub batches_retried: u64,
}

/// Per-tenant request accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// Requests accepted past admission control.
    pub submitted: u64,
    /// Requests that returned a result.
    pub completed: u64,
    /// Requests shed by admission control (`Overloaded`).
    pub shed: u64,
    /// Requests that ended in any other typed error.
    pub failed: u64,
    /// Worst observed wait, in batch dispatches, between enqueue and
    /// dispatch — the empirical side of the fairness bound.
    pub max_wait_dispatches: u64,
}

/// A consistent snapshot of the service, taken under the state lock.
#[derive(Debug, Clone)]
pub struct ServiceHealth {
    /// Requests currently queued (all tenants).
    pub queue_depth: usize,
    /// Requests accepted past admission control, lifetime.
    pub submitted: u64,
    /// Requests that returned a result, lifetime.
    pub completed: u64,
    /// Requests shed by admission control, lifetime.
    pub shed: u64,
    /// Requests that ended in a non-shed typed error, lifetime.
    pub failed: u64,
    /// Coalesced batches dispatched.
    pub batches: u64,
    /// Requests carried by those batches (Σ batch sizes). Mean batch
    /// occupancy is `batched_requests / batches`.
    pub batched_requests: u64,
    /// Requests executed one-request-one-kernel (degraded mode or
    /// per-member fallback after a batch died).
    pub solo_requests: u64,
    /// Requests rejected because their deadline expired or was
    /// cancelled while they queued (their batch was never touched).
    pub expired_in_queue: u64,
    /// Health of the coalescing path itself (breaker state).
    pub backend_health: CoalescerHealth,
    /// Per-tenant accounting.
    pub tenants: BTreeMap<TenantId, TenantCounters>,
}

impl ServiceHealth {
    /// Mean coalesced-batch occupancy, `None` before the first batch.
    pub fn mean_batch_occupancy(&self) -> Option<f64> {
        (self.batches > 0).then(|| self.batched_requests as f64 / self.batches as f64)
    }

    /// True when every accepted request has been answered and nothing
    /// is queued — the "no lost responses" invariant the chaos suite
    /// asserts after each storm.
    pub fn is_drained(&self) -> bool {
        self.queue_depth == 0 && self.submitted == self.completed + self.failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty() -> ServiceHealth {
        ServiceHealth {
            queue_depth: 0,
            submitted: 0,
            completed: 0,
            shed: 0,
            failed: 0,
            batches: 0,
            batched_requests: 0,
            solo_requests: 0,
            expired_in_queue: 0,
            backend_health: CoalescerHealth {
                mode: ServiceMode::Coalescing,
                dispatches: 0,
                consecutive_failures: 0,
                quarantine: 8,
                times_degraded: 0,
                batches_retried: 0,
            },
            tenants: BTreeMap::new(),
        }
    }

    #[test]
    fn occupancy_and_drain() {
        let mut h = empty();
        assert!(h.mean_batch_occupancy().is_none());
        assert!(h.is_drained());
        h.submitted = 10;
        h.completed = 7;
        h.failed = 2;
        assert!(!h.is_drained());
        h.failed = 3;
        assert!(h.is_drained());
        h.batches = 4;
        h.batched_requests = 10;
        assert_eq!(h.mean_batch_occupancy(), Some(2.5));
    }
}
