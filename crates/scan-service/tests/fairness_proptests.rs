//! Property suite for the weighted fair queue: under arbitrary
//! proptest-generated tenant mixes (weights, queue depths, push
//! orders, batch capacities), no request's wait exceeds the published
//! starvation bound, per-tenant FIFO order is preserved, and nothing
//! is ever lost.
//!
//! The bound under test (derived in `scan_service::queue`):
//!
//! ```text
//! dispatches_waited ≤ ceil((p + 1) · Σweights / capacity) + 1
//! ```
//!
//! where `p` is the request's 0-based position in its tenant's queue
//! at enqueue time and Σweights ranges over every tenant in the mix.

use std::collections::BTreeMap;

use proptest::collection::vec;
use proptest::prelude::*;
use scan_service::{starvation_bound, FairQueue, TenantId};

/// SplitMix64, for seeded in-test shuffles.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One queued token: (tenant index, per-tenant sequence number,
/// position in tenant queue at push).
type Token = (usize, usize, usize);

/// Build the push list for a mix and seed-shuffle it so adversarial
/// interleavings are covered, then enqueue everything.
fn build(
    mix_spec: &[(u32, usize)],
    order_seed: u64,
) -> (FairQueue<Token>, u64, usize) {
    let weights: BTreeMap<TenantId, u32> = mix_spec
        .iter()
        .enumerate()
        .map(|(t, &(w, _))| (TenantId(t as u64), w))
        .collect();
    let total_weight: u64 = mix_spec.iter().map(|&(w, _)| u64::from(w)).sum();

    // One slot per item, shuffled across tenants; per-tenant sequence
    // numbers are assigned at push time so they reflect actual
    // submission order.
    let mut pushes: Vec<usize> = Vec::new();
    for (t, &(_, count)) in mix_spec.iter().enumerate() {
        pushes.extend(std::iter::repeat_n(t, count));
    }
    for i in (1..pushes.len()).rev() {
        let j = (mix(order_seed.wrapping_add(i as u64)) % (i as u64 + 1)) as usize;
        pushes.swap(i, j);
    }

    let mut q: FairQueue<Token> = FairQueue::new(1, weights);
    let total = pushes.len();
    for t in pushes {
        // With no interleaved pops, queue position == sequence number.
        let pos = q.tenant_depth(TenantId(t as u64));
        q.push(TenantId(t as u64), (t, pos, pos));
    }
    (q, total_weight, total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The headline property: every request is dispatched within its
    /// starvation bound, whatever the tenant mix.
    #[test]
    fn no_request_exceeds_starvation_bound(
        mix_spec in vec((1u32..5, 0usize..30), 1..6),
        capacity in 1usize..17,
        order_seed in any::<u64>(),
    ) {
        let (mut q, total_weight, total) = build(&mix_spec, order_seed);
        let mut drained = 0usize;
        let mut dispatch = 0u64;
        while q.depth() > 0 {
            let batch = q.take_batch(capacity, |_| true);
            prop_assert!(!batch.is_empty(), "no progress with depth {}", q.depth());
            for &(t, seq, pos) in &batch {
                let waited = dispatch + 1;
                let bound = starvation_bound(pos, total_weight, capacity);
                prop_assert!(
                    waited <= bound,
                    "tenant {t} item {seq} (pos {pos}) waited {waited} > bound {bound} \
                     (W={total_weight}, cap={capacity})"
                );
            }
            drained += batch.len();
            dispatch += 1;
        }
        prop_assert_eq!(drained, total, "requests lost in the queue");
    }

    /// Per-tenant FIFO: a tenant's requests are dispatched in
    /// submission order, regardless of interleaving or capacity.
    #[test]
    fn per_tenant_fifo_is_preserved(
        mix_spec in vec((1u32..5, 0usize..30), 1..6),
        capacity in 1usize..17,
        order_seed in any::<u64>(),
    ) {
        let (mut q, _, _) = build(&mix_spec, order_seed);
        let mut next_seq: BTreeMap<usize, usize> = BTreeMap::new();
        while q.depth() > 0 {
            for (t, seq, _) in q.take_batch(capacity, |_| true) {
                let expect = next_seq.entry(t).or_insert(0);
                prop_assert_eq!(seq, *expect, "tenant {} out of order", t);
                *expect += 1;
            }
        }
    }

    /// Abandoned requests are dropped for free: live requests still
    /// meet the bound computed from their original positions, and the
    /// queue still fully drains.
    #[test]
    fn dead_items_never_hurt_live_ones(
        mix_spec in vec((1u32..5, 0usize..20), 1..5),
        capacity in 1usize..9,
        order_seed in any::<u64>(),
        dead_seed in any::<u64>(),
    ) {
        let (mut q, total_weight, total) = build(&mix_spec, order_seed);
        let is_dead =
            |tok: &Token| mix(dead_seed ^ ((tok.0 as u64) << 32 | tok.1 as u64)).is_multiple_of(3);
        let mut live_drained = 0usize;
        let mut dead_dropped = 0usize;
        let mut dispatch = 0u64;
        while q.depth() > 0 {
            let before = q.depth();
            let batch = q.take_batch(capacity, |tok| !is_dead(tok));
            dead_dropped += before - q.depth() - batch.len();
            for &(t, seq, pos) in &batch {
                let waited = dispatch + 1;
                let bound = starvation_bound(pos, total_weight, capacity);
                prop_assert!(
                    waited <= bound,
                    "live tenant {t} item {seq} (pos {pos}) waited {waited} > {bound}"
                );
            }
            live_drained += batch.len();
            dispatch += 1;
            prop_assert!(q.depth() < before, "no progress draining");
        }
        prop_assert_eq!(live_drained + dead_dropped, total);
    }

    /// A single flooding tenant cannot push a small tenant's
    /// head-of-line request past the bound for position 0.
    #[test]
    fn flood_cannot_starve_head_of_line(
        flood in 1usize..200,
        capacity in 2usize..17,
        flood_weight in 1u32..5,
    ) {
        let weights = BTreeMap::from([(TenantId(0), flood_weight), (TenantId(1), 1)]);
        let mut q: FairQueue<u64> = FairQueue::new(1, weights);
        for i in 0..flood {
            q.push(TenantId(0), i as u64);
        }
        q.push(TenantId(1), u64::MAX);
        let total_weight = u64::from(flood_weight) + 1;
        let bound = starvation_bound(0, total_weight, capacity);
        let mut dispatch = 0u64;
        'outer: while q.depth() > 0 {
            for item in q.take_batch(capacity, |_| true) {
                if item == u64::MAX {
                    prop_assert!(
                        dispatch < bound,
                        "victim waited {} > bound {bound}",
                        dispatch + 1
                    );
                    break 'outer;
                }
            }
            dispatch += 1;
        }
    }
}
