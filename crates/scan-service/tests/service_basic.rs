//! Concurrent correctness of the coalescing front door: many
//! submitter threads, mixed ops and tenants, every response exact, and
//! the service drained afterwards.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use scan_service::{
    RequestOp, ScanRequest, ScanService, ServiceConfig, ServiceError, TenantId,
};

/// Reference implementations to check every delivered result against.
fn reference(op: &RequestOp) -> Vec<u64> {
    match op {
        RequestOp::PlusScan(v) => scan_core::scan::<scan_core::Sum, u64>(v),
        RequestOp::MaxScan(v) => scan_core::scan::<scan_core::Max, u64>(v),
        RequestOp::Enumerate(f) => {
            let mapped: Vec<u64> = f.iter().map(|&b| u64::from(b)).collect();
            scan_core::scan::<scan_core::Sum, u64>(&mapped)
        }
        RequestOp::Pack { values, keep } => values
            .iter()
            .zip(keep)
            .filter(|(_, &k)| k)
            .map(|(&v, _)| v)
            .collect(),
    }
}

/// Deterministic per-request op mix.
fn make_op(thread: u64, i: u64) -> RequestOp {
    let len = 1 + ((thread * 31 + i * 7) % 40) as usize;
    let vals: Vec<u64> = (0..len as u64).map(|j| thread * 1000 + i * 17 + j).collect();
    match (thread + i) % 4 {
        0 => RequestOp::PlusScan(vals),
        1 => RequestOp::MaxScan(vals),
        2 => RequestOp::Enumerate(vals.iter().map(|v| v % 3 == 0).collect()),
        _ => {
            let keep = vals.iter().map(|v| v % 2 == 1).collect();
            RequestOp::Pack { values: vals, keep }
        }
    }
}

#[test]
fn concurrent_mixed_ops_all_exact() {
    let svc = Arc::new(ScanService::new(ServiceConfig {
        close_target: 8,
        window: Duration::from_micros(100),
        ..ServiceConfig::default()
    }));
    let threads = 8u64;
    let per_thread = 50u64;

    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let svc = Arc::clone(&svc);
            thread::spawn(move || {
                for i in 0..per_thread {
                    let op = make_op(t, i);
                    let want = reference(&op);
                    let got = svc
                        .submit(ScanRequest::new(TenantId(t % 3), op.clone()))
                        .unwrap_or_else(|e| panic!("thread {t} req {i}: {e}"));
                    assert_eq!(got, want, "thread {t} req {i} wrong result for {op:?}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let h = svc.health();
    assert_eq!(h.submitted, threads * per_thread);
    assert_eq!(h.completed, threads * per_thread);
    assert_eq!(h.failed, 0);
    assert_eq!(h.shed, 0);
    assert!(h.is_drained(), "service not drained: {h:?}");
    // With 8 submitters racing a 100µs window, coalescing must
    // actually happen (this is the crate's whole point).
    assert!(h.batches > 0, "no coalesced batches formed");
    assert!(
        h.mean_batch_occupancy().unwrap_or(0.0) > 1.0,
        "batches never coalesced more than one request: {h:?}"
    );
}

#[test]
fn generous_deadlines_do_not_disturb_results() {
    let svc = Arc::new(ScanService::new(ServiceConfig {
        close_target: 4,
        ..ServiceConfig::default()
    }));
    let handles: Vec<_> = (0..6u64)
        .map(|t| {
            let svc = Arc::clone(&svc);
            thread::spawn(move || {
                for i in 0..20u64 {
                    let op = make_op(t, i);
                    let want = reference(&op);
                    let req = ScanRequest::new(TenantId(t), op)
                        .with_deadline(scan_core::ScanDeadline::after(Duration::from_secs(30)));
                    assert_eq!(svc.submit(req).unwrap(), want);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let h = svc.health();
    assert_eq!(h.failed, 0);
    assert!(h.is_drained());
}

#[test]
fn tenant_admission_cap_is_enforced_and_typed() {
    let svc = ScanService::new(ServiceConfig {
        max_tenant_depth: 0,
        ..ServiceConfig::default()
    });
    let err = svc
        .submit(ScanRequest::new(
            TenantId(9),
            RequestOp::PlusScan(vec![1, 2]),
        ))
        .unwrap_err();
    assert!(matches!(err, ServiceError::Overloaded { .. }));
    let h = svc.health();
    assert_eq!(h.shed, 1);
    assert_eq!(h.tenants.get(&TenantId(9)).unwrap().shed, 1);
}
