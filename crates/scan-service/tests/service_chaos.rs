//! Chaos scenarios for the front door, with deterministic injection:
//! worker-panic storms, lying backends, deadline storms, a tenant
//! flood, and a mid-batch cancellation. After every storm the service
//! must be **drained** (no queued husks, every accepted request
//! answered), every outcome must be a correct `Ok` or a *typed*
//! error, and nothing may hang (each scenario runs under a hard
//! wall-clock watchdog, mirroring the repo's chaos-test idiom).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

use scan_core::segmented::Segments;
use scan_core::{ExecError, ScanDeadline};
use scan_service::{
    starvation_bound, BatchBackend, PoolBackend, RequestOp, ScanKind, ScanRequest, ScanService,
    ServiceConfig, ServiceError, TenantId,
};

/// Hard per-scenario watchdog: fail loudly instead of wedging CI.
fn with_timeout<R: Send + 'static>(limit: Duration, f: impl FnOnce() -> R + Send + 'static) -> R {
    let (tx, rx) = mpsc::channel();
    let h = thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(limit) {
        Ok(r) => {
            let _ = h.join();
            r
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The scenario panicked: re-raise its message.
            match h.join() {
                Err(p) => std::panic::resume_unwind(p),
                Ok(_) => unreachable!("sender dropped without panicking"),
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => panic!("chaos scenario wedged past {limit:?}"),
    }
}

/// Deterministic chaos at the execution seam: every `panic_every`-th
/// segmented call dies to a contained worker panic, every
/// `lie_every`-th returns right-length wrong values (1-based call
/// numbering, panic wins ties). The solo path stays honest so the
/// ladder's bottom rung can prove itself.
struct ChaosSeg {
    calls: AtomicU64,
    panic_every: u64,
    lie_every: u64,
    inner: PoolBackend,
}

impl ChaosSeg {
    fn new(panic_every: u64, lie_every: u64) -> Self {
        ChaosSeg {
            calls: AtomicU64::new(0),
            panic_every,
            lie_every,
            inner: PoolBackend,
        }
    }
}

impl BatchBackend for ChaosSeg {
    fn seg_scan(
        &self,
        kind: ScanKind,
        values: &[u64],
        segs: &Segments,
        deadline: Option<&ScanDeadline>,
    ) -> scan_core::Result<Vec<u64>> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        if self.panic_every != 0 && n.is_multiple_of(self.panic_every) {
            return Err(scan_core::Error::Exec(ExecError::WorkerLost { panics: 1 }));
        }
        if self.lie_every != 0 && n.is_multiple_of(self.lie_every) {
            return Ok(values.iter().map(|v| v ^ 0xdead_beef).collect());
        }
        self.inner.seg_scan(kind, values, segs, deadline)
    }

    fn scan_one(
        &self,
        kind: ScanKind,
        values: &[u64],
        deadline: Option<&ScanDeadline>,
    ) -> scan_core::Result<Vec<u64>> {
        self.inner.scan_one(kind, values, deadline)
    }
}

fn plus_req(tenant: u64, vals: Vec<u64>) -> ScanRequest {
    ScanRequest::new(TenantId(tenant), RequestOp::PlusScan(vals))
}

fn ref_plus(vals: &[u64]) -> Vec<u64> {
    scan_core::scan::<scan_core::Sum, u64>(vals)
}

fn storm_config() -> ServiceConfig {
    ServiceConfig {
        close_target: 8,
        window: Duration::from_micros(100),
        backoff_base: Duration::from_micros(10),
        backoff_jitter: Duration::from_micros(20),
        ..ServiceConfig::default()
    }
}

/// Run `threads × per_thread` deterministic +-scans against `svc`,
/// asserting every delivered `Ok` is exact; returns the typed errors.
fn run_storm(
    svc: &Arc<ScanService<ChaosSeg>>,
    threads: u64,
    per_thread: u64,
) -> Vec<ServiceError> {
    let errors = Arc::new(Mutex::new(Vec::new()));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let svc = Arc::clone(svc);
            let errors = Arc::clone(&errors);
            thread::spawn(move || {
                for i in 0..per_thread {
                    let vals: Vec<u64> =
                        (0..(1 + (t * 13 + i) % 32)).map(|j| t * 100 + i + j).collect();
                    match svc.submit(plus_req(t % 4, vals.clone())) {
                        Ok(got) => assert_eq!(got, ref_plus(&vals), "corrupt result delivered"),
                        Err(e) => errors.lock().unwrap().push(e),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    Arc::try_unwrap(errors).unwrap().into_inner().unwrap()
}

#[test]
fn worker_panic_storm_never_corrupts_or_hangs() {
    with_timeout(Duration::from_secs(60), || {
        let svc = Arc::new(ScanService::with_backend(
            storm_config(),
            ChaosSeg::new(3, 0),
        ));
        let errors = run_storm(&svc, 8, 40);
        // Panics are contained and retried/fallen back; with an honest
        // solo path every request must end in an exact Ok.
        assert!(errors.is_empty(), "unexpected errors: {errors:?}");
        let h = svc.health();
        assert!(h.is_drained(), "not drained after panic storm: {h:?}");
        assert_eq!(h.failed, 0);
        assert_eq!(h.queue_depth, 0);
    });
}

#[test]
fn lying_backend_storm_is_caught_and_survived() {
    with_timeout(Duration::from_secs(60), || {
        let cfg = ServiceConfig {
            failure_threshold: 2,
            ..storm_config()
        };
        // Every coalesced call lies; only verification and the honest
        // solo rung stand between the backend and the callers.
        let svc = Arc::new(ScanService::with_backend(cfg, ChaosSeg::new(0, 1)));
        let errors = run_storm(&svc, 8, 40);
        // Verification catches every lie; the solo retry is honest, so
        // no request fails and no corrupt value is ever delivered
        // (run_storm asserts exactness on every Ok).
        assert!(errors.is_empty(), "unexpected errors: {errors:?}");
        let h = svc.health();
        assert!(h.is_drained(), "not drained after lying storm: {h:?}");
        // The breaker must have noticed the coalesced path lying.
        assert!(
            h.backend_health.times_degraded > 0 || h.backend_health.consecutive_failures > 0,
            "breaker never reacted to a lying backend: {h:?}"
        );
    });
}

#[test]
fn deadline_storm_fails_only_the_fused() {
    with_timeout(Duration::from_secs(60), || {
        let svc = Arc::new(ScanService::new(storm_config()));
        let threads = 8u64;
        let per_thread = 30u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let svc = Arc::clone(&svc);
                thread::spawn(move || {
                    for i in 0..per_thread {
                        let vals: Vec<u64> = (0..(1 + (t + i) % 16)).collect();
                        let want = ref_plus(&vals);
                        let mut req = plus_req(t, vals);
                        match (t + i) % 3 {
                            0 => {
                                // Dead on arrival.
                                let d = ScanDeadline::manual();
                                d.cancel();
                                req = req.with_deadline(d);
                            }
                            1 => {
                                // Hair-trigger deadline: may or may not
                                // make it.
                                req = req.with_deadline(ScanDeadline::after(
                                    Duration::from_micros(50),
                                ));
                            }
                            _ => {}
                        }
                        let undeadlined = req.deadline.is_none();
                        match svc.submit(req) {
                            Ok(got) => assert_eq!(got, want),
                            Err(ServiceError::Exec(
                                ExecError::DeadlineExceeded | ExecError::Cancelled,
                            )) => {
                                assert!(
                                    !undeadlined,
                                    "request without a deadline was failed by someone else's"
                                );
                            }
                            Err(e) => panic!("unexpected error in deadline storm: {e}"),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let h = svc.health();
        assert!(h.is_drained(), "not drained after deadline storm: {h:?}");
        // Dead-on-arrival requests must actually have been rejected.
        assert!(h.expired_in_queue > 0 || h.failed > 0);
    });
}

#[test]
fn tenant_flood_sheds_typed_and_spares_victims() {
    with_timeout(Duration::from_secs(60), || {
        // Tenant 0 may hold at most 2 queued requests; 8 flooder
        // threads race into that cap, so admission control must shed.
        let cfg = ServiceConfig {
            max_tenant_depth: 2,
            close_target: 16,
            batch_capacity: 32,
            window: Duration::from_micros(300),
            ..ServiceConfig::default()
        };
        let capacity = cfg.batch_capacity;
        let svc = Arc::new(ScanService::new(cfg));

        // Eight flooder threads hammer tenant 0; three victims submit
        // steadily as tenants 1..=3.
        let mut handles = Vec::new();
        for f in 0..8u64 {
            let svc = Arc::clone(&svc);
            handles.push(thread::spawn(move || {
                let mut sheds = 0u64;
                for i in 0..200u64 {
                    let vals: Vec<u64> = (0..8).map(|j| f + i + j).collect();
                    match svc.submit(plus_req(0, vals.clone())) {
                        Ok(got) => assert_eq!(got, ref_plus(&vals)),
                        Err(ServiceError::Overloaded { .. }) => sheds += 1,
                        Err(e) => panic!("flooder saw unexpected error: {e}"),
                    }
                }
                sheds
            }));
        }
        let mut victims = Vec::new();
        for t in 1..=3u64 {
            let svc = Arc::clone(&svc);
            victims.push(thread::spawn(move || {
                for i in 0..60u64 {
                    let vals: Vec<u64> = (0..4).map(|j| t * 10 + i + j).collect();
                    let got = svc
                        .submit(plus_req(t, vals.clone()))
                        .unwrap_or_else(|e| panic!("victim tenant {t} failed: {e}"));
                    assert_eq!(got, ref_plus(&vals));
                }
            }));
        }
        for v in victims {
            v.join().unwrap();
        }
        for h in handles {
            h.join().unwrap();
        }

        let h = svc.health();
        assert!(h.is_drained(), "not drained after flood: {h:?}");
        // Victims never queue more than one request each, so their
        // wait must respect the position-0 starvation bound for the
        // active tenant set (4 tenants, weight 1 each).
        let bound = starvation_bound(0, 4, capacity);
        for t in 1..=3u64 {
            let c = h.tenants.get(&TenantId(t)).expect("victim counters");
            assert_eq!(c.failed, 0);
            assert_eq!(c.shed, 0);
            assert!(
                c.max_wait_dispatches <= bound,
                "tenant {t} waited {} dispatches > bound {bound}",
                c.max_wait_dispatches
            );
        }
        // The flood itself must have been shed in a typed, bounded
        // way, not buffered.
        let flooder = h.tenants.get(&TenantId(0)).expect("flooder counters");
        assert!(flooder.shed > 0, "flood was never shed: {h:?}");
    });
}

/// Backend that cancels a captured token the first time the coalesced
/// path runs — a deterministic mid-batch cancellation.
struct MidBatchCancel {
    victim: ScanDeadline,
    inner: PoolBackend,
}

impl BatchBackend for MidBatchCancel {
    fn seg_scan(
        &self,
        kind: ScanKind,
        values: &[u64],
        segs: &Segments,
        deadline: Option<&ScanDeadline>,
    ) -> scan_core::Result<Vec<u64>> {
        self.victim.cancel();
        self.inner.seg_scan(kind, values, segs, deadline)
    }

    fn scan_one(
        &self,
        kind: ScanKind,
        values: &[u64],
        deadline: Option<&ScanDeadline>,
    ) -> scan_core::Result<Vec<u64>> {
        self.inner.scan_one(kind, values, deadline)
    }
}

#[test]
fn mid_batch_cancellation_spares_batchmates() {
    with_timeout(Duration::from_secs(60), || {
        let victim_token = ScanDeadline::manual();
        let cfg = ServiceConfig {
            close_target: 2,
            window: Duration::from_secs(5),
            ..ServiceConfig::default()
        };
        let svc = Arc::new(ScanService::with_backend(
            cfg,
            MidBatchCancel {
                victim: victim_token.clone(),
                inner: PoolBackend,
            },
        ));

        // Two submitters; the window is long, so the batch closes only
        // when both are queued — they are guaranteed batchmates.
        let svc_a = Arc::clone(&svc);
        let token = victim_token.clone();
        let a = thread::spawn(move || {
            svc_a.submit(plus_req(1, vec![1, 2, 3]).with_deadline(token))
        });
        let svc_b = Arc::clone(&svc);
        let b = thread::spawn(move || svc_b.submit(plus_req(2, vec![4, 5, 6])));

        let res_a = a.join().unwrap();
        let res_b = b.join().unwrap();
        // The cancelled member gets its typed error...
        assert_eq!(res_a, Err(ServiceError::Exec(ExecError::Cancelled)));
        // ...and its batchmate's result is untouched.
        assert_eq!(res_b, Ok(vec![0, 4, 9]));
        let h = svc.health();
        assert!(h.is_drained());
    });
}
