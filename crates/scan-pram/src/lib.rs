//! # scan-pram
//!
//! The machine-model substrate: parallel random-access machine (P-RAM)
//! variants with **step-complexity accounting**, so the paper's Table 1
//! and Table 5 claims can be *measured* rather than assumed.
//!
//! The paper (§1) replaces "unit time" with the term **program step**:
//! the number of program steps taken by an algorithm is its *step
//! complexity*. A program step is one vector operation over the
//! processors — an elementwise arithmetic operation, a permute (one
//! parallel memory reference each way), or a scan. What a scan *costs*
//! depends on the model:
//!
//! | model | scan charge (p processors) |
//! |-------|----------------------------|
//! | [`Model::Scan`]  | 1 step — the paper's thesis: a scan is as cheap as a reference |
//! | [`Model::Erew`] / [`Model::Crew`] | `2⌈lg p⌉` steps — tree simulation (§3.1) |
//! | [`Model::Crcw`]  | `2⌈lg p⌉` steps — concurrent writes don't speed up a scan, but [`Ctx::combining_write`] is available at unit cost |
//!
//! With more elements than processors (`n > p`, §2.5 / Figure 10) every
//! vector operation additionally pays `⌈n/p⌉` for the per-processor
//! loop, and a scan pays the blocked three-phase schedule.
//!
//! Algorithms in the `scan-algorithms` crate are written against
//! [`Ctx`], which executes operations with the `scan-core` kernels while
//! charging steps according to the model — the same code yields both
//! results and measured step complexities.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod ctx;
pub mod longvec;
pub mod model;
mod route;
pub mod stats;
pub mod vm;

pub use ctx::Ctx;
pub use longvec::BlockedVec;
pub use model::Model;
pub use stats::{Stats, StepKind};
pub use vm::{Instr, Vm, VmError, VmLimits};
