//! The machine models and their per-operation step charges.

/// Ceiling of log2, with `ceil_lg(0) == ceil_lg(1) == 0`.
#[inline]
pub fn ceil_lg(n: usize) -> u64 {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as u64
    }
}

/// Ceiling division.
#[inline]
pub fn ceil_div(n: usize, d: usize) -> u64 {
    if d == 0 {
        0
    } else {
        n.div_ceil(d) as u64
    }
}

/// The P-RAM variants the paper compares (§1, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// Exclusive-read exclusive-write P-RAM.
    Erew,
    /// Concurrent-read exclusive-write P-RAM.
    Crew,
    /// Concurrent-read concurrent-write P-RAM, extended (as the paper's
    /// MST discussion requires) so that colliding writes resolve to the
    /// minimum value / lowest-numbered processor.
    Crcw,
    /// The **scan model**: EREW plus unit-time `+-scan` and `max-scan`.
    Scan,
}

impl Model {
    /// All four models, for sweeps.
    pub const ALL: [Model; 4] = [Model::Erew, Model::Crew, Model::Crcw, Model::Scan];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Model::Erew => "EREW",
            Model::Crew => "CREW",
            Model::Crcw => "CRCW",
            Model::Scan => "Scan",
        }
    }

    /// Steps charged for one elementwise vector operation (or one
    /// parallel memory reference) over `n` elements with `p` processors:
    /// `⌈n/p⌉` (Figure 10's per-processor loop), minimum 1.
    pub fn elementwise_cost(self, n: usize, p: usize) -> u64 {
        if n == 0 {
            return 0;
        }
        ceil_div(n, p).max(1)
    }

    /// Steps charged for a permute: one read plus one write per element
    /// position, i.e. the same `⌈n/p⌉` loop (the paper charges a
    /// reference as a step; we count the permute as one step per
    /// simulated element round).
    pub fn permute_cost(self, n: usize, p: usize) -> u64 {
        self.elementwise_cost(n, p)
    }

    /// Steps charged for one primitive scan over `n` elements with `p`
    /// processors.
    ///
    /// In the scan model this is the blocked schedule of Figure 10: sum
    /// within processors (`⌈n/p⌉`), one unit-time scan across
    /// processors, then the offset pass (`⌈n/p⌉`) — `O(n/p + 1)`. In
    /// the pure P-RAM models the cross-processor scan instead costs a
    /// `2⌈lg p⌉`-step tree simulation (§3.1).
    pub fn scan_cost(self, n: usize, p: usize) -> u64 {
        if n == 0 {
            return 0;
        }
        let p_eff = p.min(n);
        let loop_cost = 2 * ceil_div(n, p_eff).max(1);
        if p_eff <= 1 {
            // A single processor scans its block in the loop itself;
            // there is no cross-processor phase to charge.
            return loop_cost;
        }
        match self {
            Model::Scan => loop_cost + 1,
            Model::Erew | Model::Crew | Model::Crcw => loop_cost + 2 * ceil_lg(p_eff),
        }
    }

    /// Steps charged for a segmented scan: "implemented with at most two
    /// calls to the two unsegmented primitive scans" (§2.3 / §3.4).
    pub fn seg_scan_cost(self, n: usize, p: usize) -> u64 {
        2 * self.scan_cost(n, p)
    }

    /// Steps charged for merging adjacent sorted runs across the whole
    /// vector.
    ///
    /// With the hypothetical §4 merge primitive ("a single pass of an
    /// Omega network") the charge is scan-like: the per-processor loop
    /// plus one unit network pass. Without it, the merge is simulated
    /// by a bitonic merging network: `⌈lg p⌉` compare-exchange stages,
    /// each a full elementwise + exchange round.
    pub fn merge_cost(self, n: usize, p: usize, has_primitive: bool) -> u64 {
        if n == 0 {
            return 0;
        }
        let p_eff = p.min(n);
        let loop_cost = 2 * ceil_div(n, p_eff).max(1);
        if p_eff <= 1 {
            return loop_cost;
        }
        if has_primitive {
            loop_cost + 1
        } else {
            loop_cost * ceil_lg(p_eff).max(1) + ceil_lg(p_eff)
        }
    }

    /// Whether unit-cost combining concurrent writes are available
    /// (the extended CRCW model of §2.3.3).
    pub fn has_combining_write(self) -> bool {
        matches!(self, Model::Crcw)
    }

    /// Whether concurrent reads are legal.
    pub fn allows_concurrent_read(self) -> bool {
        matches!(self, Model::Crew | Model::Crcw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_lg_values() {
        assert_eq!(ceil_lg(0), 0);
        assert_eq!(ceil_lg(1), 0);
        assert_eq!(ceil_lg(2), 1);
        assert_eq!(ceil_lg(3), 2);
        assert_eq!(ceil_lg(4), 2);
        assert_eq!(ceil_lg(5), 3);
        assert_eq!(ceil_lg(1024), 10);
        assert_eq!(ceil_lg(1025), 11);
    }

    #[test]
    fn scan_model_scans_are_unit_when_p_equals_n() {
        // p = n: loop cost is 2·1, plus the unit scan.
        assert_eq!(Model::Scan.scan_cost(1024, 1024), 3);
        // EREW pays the lg-factor tree.
        assert_eq!(Model::Erew.scan_cost(1024, 1024), 2 + 20);
    }

    #[test]
    fn scan_gap_grows_logarithmically() {
        for lg in [4u32, 8, 12, 16, 20] {
            let n = 1usize << lg;
            let gap = Model::Erew.scan_cost(n, n) - Model::Scan.scan_cost(n, n);
            assert_eq!(gap, 2 * lg as u64 - 1);
        }
    }

    #[test]
    fn long_vector_costs() {
        // n = 4096, p = 64: elementwise = 64 steps.
        assert_eq!(Model::Scan.elementwise_cost(4096, 64), 64);
        // Scan: 2·64 + 1.
        assert_eq!(Model::Scan.scan_cost(4096, 64), 129);
        // EREW: 2·64 + 2·6.
        assert_eq!(Model::Erew.scan_cost(4096, 64), 140);
    }

    #[test]
    fn p_capped_at_n() {
        // Extra processors beyond n are idle; cost as if p = n.
        assert_eq!(
            Model::Erew.scan_cost(16, 1 << 20),
            Model::Erew.scan_cost(16, 16)
        );
    }

    #[test]
    fn zero_length_is_free() {
        for m in Model::ALL {
            assert_eq!(m.scan_cost(0, 8), 0);
            assert_eq!(m.elementwise_cost(0, 8), 0);
        }
    }

    #[test]
    fn capabilities() {
        assert!(Model::Crcw.has_combining_write());
        assert!(!Model::Scan.has_combining_write());
        assert!(Model::Crew.allows_concurrent_read());
        assert!(!Model::Erew.allows_concurrent_read());
    }
}
