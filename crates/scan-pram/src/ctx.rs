//! The vector-machine execution context: runs scan-model programs with
//! the `scan-core` kernels while charging program steps per the model.
//!
//! Algorithms written against [`Ctx`] produce both their result *and*
//! their measured step complexity under any [`Model`] — this is how the
//! Table 1 and Table 5 experiments are driven.
//!
//! Each method documents its charge as a composition of the paper's
//! primitives (elementwise operations, permutes, scans). For example
//! `split` (§2.2.1) charges two scans, three elementwise operations and
//! one permute — a constant number of program steps in the scan model,
//! but `O(lg n)` steps in the pure EREW model where each scan costs a
//! tree traversal.

use std::cell::Cell;
use std::rc::Rc;

use scan_core::element::ScanElem;
use scan_core::ScanDeadline;
use scan_core::op::ScanOp;
use scan_core::ops::{self, Bucket};
use scan_core::segmented::{self, Segments};
use scan_core::segops;
use scan_core::simulate::PrimitiveScans;
use scan_core::{allocate as core_allocate, Allocation};

use crate::model::Model;
use crate::route;
use crate::stats::{Stats, StepKind};

/// A step-counting scan-model machine.
///
/// By default the machine has one processor per vector element (`p = n`
/// for every operation, the paper's initial assumption in §2.1). Use
/// [`Ctx::with_processors`] to fix `p` and measure the long-vector
/// costs of §2.5.
///
/// A [`PrimitiveScans`] backend can be plugged in with
/// [`Ctx::with_backend`]; scans and scan-derived operations are then
/// routed onto the backend's two primitives per the §3.4 constructions
/// (the crate's `route` module), falling back to the software kernels
/// for element/operator pairs with no construction.
#[derive(Clone)]
pub struct Ctx {
    model: Model,
    procs: Option<usize>,
    stats: Stats,
    strict: bool,
    merge_primitive: bool,
    backend: Option<Rc<dyn PrimitiveScans>>,
    deadline: Option<ScanDeadline>,
    deadline_skips: Cell<u64>,
}

impl core::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Ctx")
            .field("model", &self.model)
            .field("procs", &self.procs)
            .field("stats", &self.stats)
            .field("strict", &self.strict)
            .field("merge_primitive", &self.merge_primitive)
            .field("backend", &self.backend.as_ref().map(|_| "dyn PrimitiveScans"))
            .field("deadline", &self.deadline)
            .field("deadline_skips", &self.deadline_skips.get())
            .finish()
    }
}

impl Ctx {
    /// A machine in the given model with one processor per element.
    pub fn new(model: Model) -> Self {
        Ctx {
            model,
            procs: None,
            stats: Stats::new(),
            strict: false,
            merge_primitive: false,
            backend: None,
            deadline: None,
            deadline_skips: Cell::new(0),
        }
    }

    /// A machine with a fixed number of processors; vector operations
    /// over `n > p` elements pay the `⌈n/p⌉` per-processor loop.
    pub fn with_processors(model: Model, p: usize) -> Self {
        assert!(p > 0, "need at least one processor");
        Ctx {
            model,
            procs: Some(p),
            stats: Stats::new(),
            strict: false,
            merge_primitive: false,
            backend: None,
            deadline: None,
            deadline_skips: Cell::new(0),
        }
    }

    /// Route primitive scans (and the operations derived from them)
    /// through `backend` — e.g. the simulated tree circuit from the
    /// `scan-circuit` crate, or a fault-injecting wrapper around it.
    pub fn with_backend(mut self, backend: Rc<dyn PrimitiveScans>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Install or remove the primitive-scan backend.
    pub fn set_backend(&mut self, backend: Option<Rc<dyn PrimitiveScans>>) {
        self.backend = backend;
    }

    /// Whether a primitive-scan backend is installed.
    pub fn has_backend(&self) -> bool {
        self.backend.is_some()
    }

    /// Attach a routing deadline. `Ctx` methods are infallible (they
    /// always return a correct result), so the deadline does not abort
    /// work — instead, once it expires or is cancelled, scans stop
    /// being dispatched to the installed backend (e.g. a slow or
    /// chaos-wrapped simulated circuit) and run on the in-process
    /// software kernels, with each skipped dispatch counted in
    /// [`Ctx::deadline_skips`].
    pub fn with_deadline(mut self, deadline: ScanDeadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Install or remove the routing deadline (see
    /// [`Ctx::with_deadline`]).
    pub fn set_deadline(&mut self, deadline: Option<ScanDeadline>) {
        self.deadline = deadline;
    }

    /// The routing deadline, if any.
    pub fn deadline(&self) -> Option<&ScanDeadline> {
        self.deadline.as_ref()
    }

    /// Operations served by the software kernels because the routing
    /// deadline had already expired (or was cancelled) when they would
    /// have dispatched to the backend.
    pub fn deadline_skips(&self) -> u64 {
        self.deadline_skips.get()
    }

    /// The installed backend, unless the routing deadline says the
    /// machine is out of time — then `None`, and the caller falls
    /// through to the software kernels.
    fn routable_backend(&self) -> Option<&Rc<dyn PrimitiveScans>> {
        let b = self.backend.as_ref()?;
        if let Some(d) = &self.deadline {
            if d.check().is_err() {
                self.deadline_skips.set(self.deadline_skips.get() + 1);
                return None;
            }
        }
        Some(b)
    }

    /// Enable strict access checking: an EREW machine will panic on a
    /// concurrent read (a `gather` with duplicate indices).
    pub fn strict(mut self) -> Self {
        self.strict = true;
        self
    }

    /// Enable the hypothetical merge primitive the paper's conclusion
    /// (§4) proposes: merging adjacent sorted runs becomes a unit-time
    /// network pass instead of a `⌈lg p⌉`-stage bitonic simulation.
    pub fn with_merge_primitive(mut self) -> Self {
        self.merge_primitive = true;
        self
    }

    /// Whether the §4 merge primitive is enabled.
    pub fn has_merge_primitive(&self) -> bool {
        self.merge_primitive
    }

    /// Merge every adjacent pair of sorted runs of length `width` — all
    /// pairs at once, one vector operation (a trailing partial run is
    /// carried through unchanged). Charge: one merge step, whose cost
    /// depends on whether the §4 primitive is enabled.
    ///
    /// # Panics
    /// In debug builds, if a run is not sorted.
    pub fn merge_adjacent_runs<T: ScanElem + PartialOrd>(
        &mut self,
        a: &[T],
        width: usize,
    ) -> Vec<T> {
        assert!(width > 0, "run width must be positive");
        let n = a.len();
        let p = self.p_for(n);
        self.stats.charge(
            StepKind::Merge,
            self.model.merge_cost(n, p, self.merge_primitive),
        );
        let mut out = Vec::with_capacity(n);
        let mut base = 0;
        while base < n {
            let mid = (base + width).min(n);
            let end = (base + 2 * width).min(n);
            debug_assert!(a[base..mid].windows(2).all(|w| w[0] <= w[1]));
            debug_assert!(a[mid..end].windows(2).all(|w| w[0] <= w[1]));
            let (mut i, mut j) = (base, mid);
            while i < mid && j < end {
                if a[i] <= a[j] {
                    out.push(a[i]);
                    i += 1;
                } else {
                    out.push(a[j]);
                    j += 1;
                }
            }
            out.extend_from_slice(&a[i..mid]);
            out.extend_from_slice(&a[j..end]);
            base = end;
        }
        out
    }

    /// The machine's model.
    pub fn model(&self) -> Model {
        self.model
    }

    /// The fixed processor count, if any.
    pub fn processors(&self) -> Option<usize> {
        self.procs
    }

    /// Accumulated step statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Total program steps charged so far.
    pub fn steps(&self) -> u64 {
        self.stats.steps()
    }

    /// Zero the counters (the machine state is otherwise unchanged).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    #[inline]
    fn p_for(&self, n: usize) -> usize {
        self.procs.unwrap_or(n.max(1)).min(n.max(1))
    }

    fn charge_elementwise(&mut self, n: usize) {
        let p = self.p_for(n);
        self.stats
            .charge(StepKind::Elementwise, self.model.elementwise_cost(n, p));
    }

    fn charge_permute(&mut self, n: usize) {
        let p = self.p_for(n);
        self.stats
            .charge(StepKind::Permute, self.model.permute_cost(n, p));
    }

    fn charge_scan(&mut self, n: usize) {
        let p = self.p_for(n);
        self.stats.charge(StepKind::Scan, self.model.scan_cost(n, p));
    }

    fn charge_seg_scan(&mut self, n: usize) {
        let p = self.p_for(n);
        self.stats
            .charge(StepKind::SegScan, self.model.seg_scan_cost(n, p));
    }

    // ----- explicit charges for hand-fused vector steps -----
    // Algorithms sometimes fuse several logical vector operations into
    // one loop for clarity; these let them charge the steps the fused
    // code stands for.

    /// Charge one elementwise vector operation over `n` elements.
    pub fn charge_elementwise_op(&mut self, n: usize) {
        self.charge_elementwise(n);
    }

    /// Charge one permute/memory-reference round over `n` elements.
    pub fn charge_permute_op(&mut self, n: usize) {
        self.charge_permute(n);
    }

    /// Charge one primitive scan over `n` elements.
    pub fn charge_scan_op(&mut self, n: usize) {
        self.charge_scan(n);
    }

    /// Charge one segmented scan over `n` elements.
    pub fn charge_seg_scan_op(&mut self, n: usize) {
        self.charge_seg_scan(n);
    }

    // ----- elementwise operations (§2.1) -----

    /// Elementwise map. Charge: 1 elementwise operation.
    pub fn map<T: ScanElem, U: ScanElem>(&mut self, a: &[T], f: impl Fn(T) -> U + Sync) -> Vec<U> {
        self.charge_elementwise(a.len());
        scan_core::parallel::map_by(a, f)
    }

    /// Elementwise combination of two vectors. Charge: 1 elementwise.
    pub fn zip<A: ScanElem, B: ScanElem, U: ScanElem>(
        &mut self,
        a: &[A],
        b: &[B],
        f: impl Fn(A, B) -> U + Sync,
    ) -> Vec<U> {
        self.charge_elementwise(a.len());
        scan_core::parallel::zip_by(a, b, f)
    }

    /// Elementwise select (`if flags then t else e`). Charge: 1
    /// elementwise.
    pub fn select<T: ScanElem>(&mut self, flags: &[bool], t: &[T], e: &[T]) -> Vec<T> {
        self.charge_elementwise(flags.len());
        ops::select(flags, t, e)
    }

    /// A constant vector. Charge: 1 elementwise (a broadcast store).
    pub fn constant<T: ScanElem>(&mut self, n: usize, v: T) -> Vec<T> {
        self.charge_elementwise(n);
        vec![v; n]
    }

    /// The index vector `[0, 1, ..., n-1]` (each processor knows its own
    /// number — the paper treats this as free, we charge one store).
    pub fn iota(&mut self, n: usize) -> Vec<usize> {
        self.charge_elementwise(n);
        (0..n).collect()
    }

    // ----- scans -----

    /// Exclusive scan. Charge: 1 scan.
    pub fn scan<O: ScanOp<T>, T: ScanElem>(&mut self, a: &[T]) -> Vec<T> {
        self.charge_scan(a.len());
        if let Some(b) = self.routable_backend() {
            if let Some(out) = route::scan::<O, T>(b.as_ref(), a) {
                return out;
            }
        }
        scan_core::scan::<O, T>(a)
    }

    /// Exclusive scan plus the total. Charge: 1 scan + 1 elementwise
    /// (the final combine is one more vector step).
    pub fn scan_with_total<O: ScanOp<T>, T: ScanElem>(&mut self, a: &[T]) -> (Vec<T>, T) {
        self.charge_scan(a.len());
        self.charge_elementwise(a.len().min(1));
        if let Some(b) = self.routable_backend() {
            if let Some(out) = route::scan_with_total::<O, T>(b.as_ref(), a) {
                return out;
            }
        }
        scan_core::scan_with_total::<O, T>(a)
    }

    /// Inclusive scan. Charge: 1 scan + 1 elementwise.
    pub fn inclusive_scan<O: ScanOp<T>, T: ScanElem>(&mut self, a: &[T]) -> Vec<T> {
        self.charge_scan(a.len());
        self.charge_elementwise(a.len());
        if let Some(b) = self.routable_backend() {
            if let Some(excl) = route::scan::<O, T>(b.as_ref(), a) {
                if excl.len() == a.len() {
                    return excl
                        .iter()
                        .zip(a)
                        .map(|(&e, &x)| O::combine(e, x))
                        .collect();
                }
            }
        }
        scan_core::inclusive_scan::<O, T>(a)
    }

    /// Exclusive backward scan (§2.1). Charge: 1 scan.
    pub fn scan_backward<O: ScanOp<T>, T: ScanElem>(&mut self, a: &[T]) -> Vec<T> {
        self.charge_scan(a.len());
        if let Some(b) = self.routable_backend() {
            if let Some(out) = route::scan_backward::<O, T>(b.as_ref(), a) {
                return out;
            }
        }
        scan_core::scan_backward::<O, T>(a)
    }

    /// Inclusive backward scan. Charge: 1 scan + 1 elementwise.
    pub fn inclusive_scan_backward<O: ScanOp<T>, T: ScanElem>(&mut self, a: &[T]) -> Vec<T> {
        self.charge_scan(a.len());
        self.charge_elementwise(a.len());
        if let Some(b) = self.routable_backend() {
            if let Some(excl) = route::scan_backward::<O, T>(b.as_ref(), a) {
                if excl.len() == a.len() {
                    return excl
                        .iter()
                        .zip(a)
                        .map(|(&e, &x)| O::combine(e, x))
                        .collect();
                }
            }
        }
        scan_core::inclusive_scan_backward::<O, T>(a)
    }

    /// Reduction. Charge: 1 scan (an up sweep).
    pub fn reduce<O: ScanOp<T>, T: ScanElem>(&mut self, a: &[T]) -> T {
        self.charge_scan(a.len());
        if let Some(b) = self.routable_backend() {
            if let Some((_, total)) = route::scan_with_total::<O, T>(b.as_ref(), a) {
                return total;
            }
        }
        scan_core::reduce::<O, T>(a)
    }

    // ----- segmented scans (§2.3) -----

    /// Exclusive segmented scan. Charge: 1 segmented scan (= two
    /// primitive scans, §3.4).
    pub fn seg_scan<O: ScanOp<T>, T: ScanElem>(&mut self, a: &[T], segs: &Segments) -> Vec<T> {
        self.charge_seg_scan(a.len());
        if let Some(b) = self.routable_backend() {
            if let Some(out) = route::seg_scan::<O, T>(b.as_ref(), a, segs) {
                return out;
            }
        }
        segmented::seg_scan::<O, T>(a, segs)
    }

    /// Inclusive segmented scan. Charge: 1 segmented scan + 1
    /// elementwise.
    pub fn seg_inclusive_scan<O: ScanOp<T>, T: ScanElem>(
        &mut self,
        a: &[T],
        segs: &Segments,
    ) -> Vec<T> {
        self.charge_seg_scan(a.len());
        self.charge_elementwise(a.len());
        if let Some(b) = self.routable_backend() {
            if let Some(excl) = route::seg_scan::<O, T>(b.as_ref(), a, segs) {
                if excl.len() == a.len() {
                    return excl
                        .iter()
                        .zip(a)
                        .map(|(&e, &x)| O::combine(e, x))
                        .collect();
                }
            }
        }
        segmented::seg_inclusive_scan::<O, T>(a, segs)
    }

    /// Exclusive backward segmented scan. Charge: 1 segmented scan.
    pub fn seg_scan_backward<O: ScanOp<T>, T: ScanElem>(
        &mut self,
        a: &[T],
        segs: &Segments,
    ) -> Vec<T> {
        self.charge_seg_scan(a.len());
        if let Some(b) = self.routable_backend() {
            if let Some(out) = route::seg_scan_backward::<O, T>(b.as_ref(), a, segs) {
                return out;
            }
        }
        segmented::seg_scan_backward::<O, T>(a, segs)
    }

    /// Per-segment reduction distributed over every element of the
    /// segment (segmented `⊕-distribute`, §2.2/§2.3). Charge: 1
    /// segmented scan + 1 elementwise.
    pub fn seg_distribute<O: ScanOp<T>, T: ScanElem>(
        &mut self,
        a: &[T],
        segs: &Segments,
    ) -> Vec<T> {
        self.charge_seg_scan(a.len());
        self.charge_elementwise(a.len());
        if let Some(b) = self.routable_backend() {
            if let Some(out) = route::seg_distribute::<O, T>(b.as_ref(), a, segs) {
                return out;
            }
        }
        segops::seg_distribute::<O, T>(a, segs)
    }

    /// Segmented copy: each segment head broadcast across its segment
    /// (implementable as a segmented max-scan, Figure 16). Charge: 1
    /// segmented scan.
    pub fn seg_copy<T: ScanElem>(&mut self, a: &[T], segs: &Segments) -> Vec<T> {
        self.charge_seg_scan(a.len());
        if let Some(b) = self.routable_backend() {
            if let Some(out) = route::seg_copy(b.as_ref(), a, segs) {
                return out;
            }
        }
        segops::seg_copy(a, segs)
    }

    // ----- simple operations (§2.2) -----

    /// Enumerate (Figure 1). Charge: 1 elementwise + 1 scan.
    pub fn enumerate(&mut self, flags: &[bool]) -> Vec<usize> {
        self.charge_elementwise(flags.len());
        self.charge_scan(flags.len());
        if let Some(b) = self.routable_backend() {
            return route::enumerate(b.as_ref(), flags);
        }
        ops::enumerate(flags)
    }

    /// Backward enumerate. Charge: 1 elementwise + 1 scan.
    pub fn back_enumerate(&mut self, flags: &[bool]) -> Vec<usize> {
        self.charge_elementwise(flags.len());
        self.charge_scan(flags.len());
        if let Some(b) = self.routable_backend() {
            return route::back_enumerate(b.as_ref(), flags);
        }
        ops::back_enumerate(flags)
    }

    /// Count of true flags. Charge: 1 elementwise + 1 scan.
    pub fn count(&mut self, flags: &[bool]) -> usize {
        self.charge_elementwise(flags.len());
        self.charge_scan(flags.len());
        if let Some(b) = self.routable_backend() {
            return route::count(b.as_ref(), flags);
        }
        ops::count(flags)
    }

    /// Copy the first element across the vector (Figure 1); the paper
    /// implements it with one scan plus restoring the first element.
    /// Charge: 1 scan + 1 elementwise.
    pub fn copy<T: ScanElem>(&mut self, a: &[T]) -> Vec<T> {
        self.charge_scan(a.len());
        self.charge_elementwise(a.len());
        ops::copy_first(a)
    }

    /// `⊕-distribute` (Figure 1): scan + backward copy. Charge: 2 scans
    /// + 1 elementwise.
    pub fn distribute_op<O: ScanOp<T>, T: ScanElem>(&mut self, a: &[T]) -> Vec<T> {
        self.charge_scan(a.len());
        self.charge_scan(a.len());
        self.charge_elementwise(a.len());
        ops::distribute_op::<O, T>(a)
    }

    // ----- data movement -----

    /// Permute (§2.1). Charge: 1 permute. Panics on invalid indices.
    pub fn permute<T: ScanElem>(&mut self, a: &[T], indices: &[usize]) -> Vec<T> {
        self.charge_permute(a.len());
        ops::permute(a, indices)
    }

    /// Permute with caller-guaranteed unique indices. Charge: 1 permute.
    pub fn permute_unchecked<T: ScanElem>(&mut self, a: &[T], indices: &[usize]) -> Vec<T> {
        self.charge_permute(a.len());
        ops::permute_unchecked(a, indices)
    }

    /// Gather (`out[i] = a[indices[i]]`). Charge: 1 permute round.
    ///
    /// # Panics
    /// In a strict EREW/Scan machine, if the indices contain duplicates
    /// (a concurrent read).
    pub fn gather<T: ScanElem>(&mut self, a: &[T], indices: &[usize]) -> Vec<T> {
        if self.strict && !self.model.allows_concurrent_read() {
            let mut seen = vec![false; a.len()];
            for &ix in indices {
                assert!(
                    !seen[ix],
                    "concurrent read at index {ix} on an exclusive-read machine"
                );
                seen[ix] = true;
            }
        }
        self.charge_permute(indices.len());
        ops::gather(a, indices)
    }

    /// Shift every element one position toward higher indices,
    /// inserting `fill` at position 0 (each processor reads its left
    /// neighbor — one exclusive-read memory round). Charge: 1 permute.
    pub fn shift_right<T: ScanElem>(&mut self, a: &[T], fill: T) -> Vec<T> {
        self.charge_permute(a.len());
        if a.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(a.len());
        out.push(fill);
        out.extend_from_slice(&a[..a.len() - 1]);
        out
    }

    /// Shift toward lower indices, inserting `fill` at the end.
    /// Charge: 1 permute.
    pub fn shift_left<T: ScanElem>(&mut self, a: &[T], fill: T) -> Vec<T> {
        self.charge_permute(a.len());
        if a.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(a.len());
        out.extend_from_slice(&a[1..]);
        out.push(fill);
        out
    }

    /// Split (§2.2.1, Figure 3). Charge: 2 scans + 3 elementwise + 1
    /// permute.
    pub fn split<T: ScanElem>(&mut self, a: &[T], flags: &[bool]) -> Vec<T> {
        self.split_count(a, flags).0
    }

    /// Split, also returning the size of the `false` group. Same charge
    /// as [`Ctx::split`].
    pub fn split_count<T: ScanElem>(&mut self, a: &[T], flags: &[bool]) -> (Vec<T>, usize) {
        let n = a.len();
        self.charge_scan(n); // forward enumerate of falses
        self.charge_scan(n); // backward enumerate of trues
        self.charge_elementwise(n); // not()
        self.charge_elementwise(n); // I-up arithmetic
        self.charge_elementwise(n); // select of indices
        self.charge_permute(n);
        assert_eq!(a.len(), flags.len(), "split length mismatch");
        if let Some(b) = self.routable_backend() {
            return route::split_count(b.as_ref(), a, flags);
        }
        ops::split_count(a, flags)
    }

    /// Three-way split (quicksort's comparison groups). Charge: 3 scans
    /// + 4 elementwise + 1 permute.
    pub fn split3<T: ScanElem>(&mut self, a: &[T], buckets: &[Bucket]) -> (Vec<T>, usize, usize) {
        let n = a.len();
        for _ in 0..3 {
            self.charge_scan(n);
        }
        for _ in 0..4 {
            self.charge_elementwise(n);
        }
        self.charge_permute(n);
        assert_eq!(a.len(), buckets.len(), "split3 length mismatch");
        if let Some(b) = self.routable_backend() {
            return route::split3(b.as_ref(), a, buckets);
        }
        ops::split3(a, buckets)
    }

    /// Stable multi-way split: group `a` by `key` into `nbuckets`
    /// buckets (one radix-sort digit pass), returning the reordered
    /// vector and the per-bucket counts.
    ///
    /// Charge: 1 elementwise (digit extraction), then per bucket 1
    /// elementwise and 1 scan (the flag-and-enumerate the scan model
    /// runs per bucket value), then 1 elementwise (destination
    /// arithmetic) and 1 permute — identical to the unfused
    /// `2^w`-enumerate schedule, so Table 1/Table 4 step accounting is
    /// unchanged; only the execution is fused
    /// ([`scan_core::multi_split`]: one histogram read, one scan over
    /// the block × bucket count matrix, one scatter write).
    ///
    /// # Panics
    /// If `nbuckets` is 0 or exceeds
    /// [`scan_core::multi_split::MAX_BUCKETS`], or `key` returns a
    /// bucket `>= nbuckets`.
    pub fn multi_split<T, K>(&mut self, a: &[T], nbuckets: usize, key: K) -> (Vec<T>, Vec<usize>)
    where
        T: ScanElem,
        K: Fn(T) -> usize + Sync,
    {
        let n = a.len();
        self.charge_elementwise(n); // digit extraction
        for _ in 0..nbuckets {
            self.charge_elementwise(n); // flag this bucket value
            self.charge_scan(n); // enumerate it
        }
        self.charge_elementwise(n); // base + rank destination arithmetic
        self.charge_permute(n); // the scatter
        scan_core::multi_split_by(a, nbuckets, key)
    }

    /// Segmented split within each segment. Charge: 3 segmented scans +
    /// 3 elementwise + 1 permute.
    pub fn seg_split<T: ScanElem>(&mut self, a: &[T], flags: &[bool], segs: &Segments) -> Vec<T> {
        let n = a.len();
        for _ in 0..3 {
            self.charge_seg_scan(n);
        }
        for _ in 0..3 {
            self.charge_elementwise(n);
        }
        self.charge_permute(n);
        segops::seg_split(a, flags, segs)
    }

    /// Segmented three-way split with segment refinement (the quicksort
    /// step, §2.3.1). Charge: 5 segmented scans + 4 elementwise + 2
    /// permutes (values and new head flags).
    pub fn seg_split3<T: ScanElem>(
        &mut self,
        a: &[T],
        buckets: &[Bucket],
        segs: &Segments,
    ) -> segops::SegSplit3<T> {
        let n = a.len();
        for _ in 0..5 {
            self.charge_seg_scan(n);
        }
        for _ in 0..4 {
            self.charge_elementwise(n);
        }
        self.charge_permute(n);
        self.charge_permute(n);
        segops::seg_split3(a, buckets, segs)
    }

    /// Pack kept elements into a shorter vector (Figure 11). Charge: 1
    /// scan + 1 elementwise + 1 permute.
    pub fn pack<T: ScanElem>(&mut self, a: &[T], keep: &[bool]) -> Vec<T> {
        self.charge_scan(a.len());
        self.charge_elementwise(a.len());
        self.charge_permute(a.len());
        assert_eq!(a.len(), keep.len(), "pack length mismatch");
        if let Some(b) = self.routable_backend() {
            return route::pack(b.as_ref(), a, keep);
        }
        ops::pack(a, keep)
    }

    /// Merge two vectors under a merge-flag vector (§2.5.1). Charge: 2
    /// scans + 2 elementwise + 1 permute.
    pub fn flag_merge<T: ScanElem>(&mut self, flags: &[bool], a: &[T], b: &[T]) -> Vec<T> {
        let n = flags.len();
        self.charge_scan(n);
        self.charge_scan(n);
        self.charge_elementwise(n);
        self.charge_elementwise(n);
        self.charge_permute(n);
        if let Some(be) = self.routable_backend() {
            // Only a *valid* merge is routable; invalid inputs keep the
            // software kernel's panic contract.
            let trues = flags.iter().filter(|&&f| f).count();
            if n == a.len() + b.len() && trues == b.len() {
                return route::flag_merge(be.as_ref(), flags, a, b);
            }
        }
        ops::flag_merge(flags, a, b)
    }

    // ----- allocation (§2.4) -----

    /// Allocate `counts[i]` new elements to each position (Figure 8).
    /// Charge: 1 scan + 1 permute (scattering the head flags).
    pub fn allocate(&mut self, counts: &[usize]) -> Allocation {
        self.charge_scan(counts.len());
        self.charge_permute(counts.len());
        if let Some(b) = self.routable_backend() {
            return route::allocate(b.as_ref(), counts);
        }
        core_allocate(counts)
    }

    /// Allocate and distribute values across the allocated segments.
    /// Charge: allocate + 1 permute + 1 segmented scan (the copy).
    pub fn distribute<T: ScanElem>(&mut self, values: &[T], counts: &[usize]) -> Vec<T> {
        self.charge_scan(counts.len());
        self.charge_permute(counts.len());
        let total: usize = counts.iter().sum();
        self.charge_permute(total);
        self.charge_seg_scan(total);
        assert_eq!(
            values.len(),
            counts.len(),
            "distribute length mismatch: expected {}, got {}",
            values.len(),
            counts.len()
        );
        if let Some(b) = self.routable_backend() {
            return route::distribute(b.as_ref(), values, counts);
        }
        scan_core::distribute(values, counts)
    }

    // ----- extended CRCW (§2.3.3) -----

    /// Combining concurrent write: `out[indices[i]] ⊕= values[i]`, with
    /// colliding writes resolved by `O`. Unit cost — this is the
    /// extension the CRCW MST algorithm needs ("either the value from
    /// the lowest numbered processor is written, or the minimum value").
    ///
    /// # Panics
    /// If the model does not provide combining writes (only the
    /// extended CRCW does).
    pub fn combining_write<O: ScanOp<T>, T: ScanElem>(
        &mut self,
        out_len: usize,
        indices: &[usize],
        values: &[T],
    ) -> Vec<T> {
        assert!(
            self.model.has_combining_write(),
            "combining writes require the extended CRCW model, not {}",
            self.model.name()
        );
        assert_eq!(indices.len(), values.len(), "combining_write length mismatch");
        let p = self.p_for(indices.len());
        self.stats.charge(
            StepKind::CombiningWrite,
            self.model.elementwise_cost(indices.len(), p),
        );
        let mut out = vec![O::identity(); out_len];
        for (&ix, &v) in indices.iter().zip(values) {
            out[ix] = O::combine(out[ix], v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_core::op::{Max, Min, Sum};

    #[test]
    fn scan_charges_differ_by_model() {
        let a: Vec<u64> = (0..1024).collect();
        let mut scan_m = Ctx::new(Model::Scan);
        let mut erew = Ctx::new(Model::Erew);
        let r1 = scan_m.scan::<Sum, _>(&a);
        let r2 = erew.scan::<Sum, _>(&a);
        assert_eq!(r1, r2, "results are model-independent");
        assert!(erew.steps() > scan_m.steps());
        assert_eq!(scan_m.steps(), 3);
        assert_eq!(erew.steps(), 2 + 2 * 10);
    }

    #[test]
    fn split_is_constant_ops_in_scan_model() {
        let mut ctx = Ctx::new(Model::Scan);
        let a = [5u32, 7, 3, 1, 4, 2, 7, 2];
        let f = [true, true, true, true, false, false, true, false];
        let s = ctx.split(&a, &f);
        assert_eq!(s, vec![4, 2, 2, 5, 7, 3, 1, 7]);
        // 2 scans (3 steps each at n=p=8) + 3 elementwise + 1 permute.
        assert_eq!(ctx.stats().ops(), 6);
    }

    #[test]
    fn multi_split_groups_stably_and_charges_like_unfused() {
        let mut ctx = Ctx::new(Model::Scan);
        let a = [5u64, 7, 3, 1, 4, 2, 7, 2];
        let (s, counts) = ctx.multi_split(&a, 4, |k| (k & 3) as usize);
        assert_eq!(s, vec![4, 5, 1, 2, 2, 7, 3, 7]);
        assert_eq!(counts, vec![1, 2, 2, 3]);
        // 2^w scans + (2^w + 2) elementwise + 1 permute per pass — the
        // unfused enumerate-per-bucket schedule's exact op counts.
        assert_eq!(ctx.stats().ops_of(StepKind::Scan), 4);
        assert_eq!(ctx.stats().ops_of(StepKind::Elementwise), 6);
        assert_eq!(ctx.stats().ops_of(StepKind::Permute), 1);
    }

    #[test]
    fn long_vector_charges() {
        let a: Vec<u64> = (0..4096).collect();
        let mut ctx = Ctx::with_processors(Model::Scan, 64);
        ctx.map(&a, |x| x + 1);
        assert_eq!(ctx.steps(), 64); // ⌈4096/64⌉
        ctx.reset_stats();
        ctx.scan::<Sum, _>(&a);
        assert_eq!(ctx.steps(), 129); // 2·64 + 1
    }

    #[test]
    fn combining_write_on_crcw() {
        let mut ctx = Ctx::new(Model::Crcw);
        let out = ctx.combining_write::<Min, u64>(3, &[0, 1, 0, 2, 1], &[5, 7, 3, 9, 2]);
        assert_eq!(out, vec![3, 2, 9]);
        assert_eq!(ctx.stats().ops_of(StepKind::CombiningWrite), 1);
    }

    #[test]
    #[should_panic(expected = "extended CRCW")]
    fn combining_write_rejected_on_scan_model() {
        let mut ctx = Ctx::new(Model::Scan);
        ctx.combining_write::<Max, u64>(2, &[0, 1], &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "concurrent read")]
    fn strict_erew_rejects_concurrent_read() {
        let mut ctx = Ctx::new(Model::Erew).strict();
        ctx.gather(&[1u32, 2, 3], &[0, 0, 1]);
    }

    #[test]
    fn strict_crew_allows_concurrent_read() {
        let mut ctx = Ctx::new(Model::Crew).strict();
        assert_eq!(ctx.gather(&[1u32, 2, 3], &[0, 0, 1]), vec![1, 1, 2]);
    }

    #[test]
    fn derived_ops_work_and_charge() {
        let mut ctx = Ctx::new(Model::Scan);
        assert_eq!(
            ctx.enumerate(&[true, false, true]),
            vec![0, 1, 1]
        );
        assert_eq!(ctx.distribute_op::<Sum, _>(&[1u32, 2, 3]), vec![6, 6, 6]);
        assert_eq!(ctx.pack(&[1u32, 2, 3], &[true, false, true]), vec![1, 3]);
        let alloc = ctx.allocate(&[2, 1]);
        assert_eq!(alloc.total, 3);
        assert_eq!(ctx.distribute(&[9u32, 4], &[2, 1]), vec![9, 9, 4]);
        assert!(ctx.steps() > 0);
    }

    #[test]
    fn seg_ops_charge_two_primitive_scans() {
        let a = [5u64, 1, 3, 4];
        let segs = Segments::from_lengths(&[2, 2]);
        let mut ctx = Ctx::new(Model::Scan);
        ctx.seg_scan::<Sum, _>(&a, &segs);
        // n = p = 4: scan cost 3, seg scan = 2 × 3.
        assert_eq!(ctx.steps(), 6);
    }

    #[test]
    fn stats_reset() {
        let mut ctx = Ctx::new(Model::Scan);
        ctx.scan::<Sum, _>(&[1u64, 2, 3]);
        assert!(ctx.steps() > 0);
        ctx.reset_stats();
        assert_eq!(ctx.steps(), 0);
    }

    #[test]
    fn backend_routing_matches_software_results() {
        use scan_core::simulate::{PrimitiveScans, SoftwareScans};
        use std::cell::Cell;
        use std::rc::Rc;

        /// SoftwareScans plus a call counter, to prove routing happened.
        #[derive(Debug, Default)]
        struct Counting {
            calls: Cell<u64>,
        }
        impl PrimitiveScans for Counting {
            fn plus_scan(&self, a: &[u64]) -> Vec<u64> {
                self.calls.set(self.calls.get() + 1);
                SoftwareScans.plus_scan(a)
            }
            fn max_scan(&self, a: &[u64]) -> Vec<u64> {
                self.calls.set(self.calls.get() + 1);
                SoftwareScans.max_scan(a)
            }
        }

        let backend = Rc::new(Counting::default());
        let mut routed = Ctx::new(Model::Scan).with_backend(backend.clone());
        let mut soft = Ctx::new(Model::Scan);
        assert!(routed.has_backend() && !soft.has_backend());

        let a: Vec<u64> = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let flags = [true, false, true, true, false, false, true, false];
        let segs = Segments::from_lengths(&[3, 5]);
        assert_eq!(routed.scan::<Sum, _>(&a), soft.scan::<Sum, _>(&a));
        assert_eq!(
            routed.inclusive_scan::<Max, _>(&a),
            soft.inclusive_scan::<Max, _>(&a)
        );
        assert_eq!(
            routed.scan_backward::<Min, _>(&a),
            soft.scan_backward::<Min, _>(&a)
        );
        assert_eq!(routed.reduce::<Sum, _>(&a), soft.reduce::<Sum, _>(&a));
        assert_eq!(
            routed.seg_scan::<Sum, _>(&a, &segs),
            soft.seg_scan::<Sum, _>(&a, &segs)
        );
        assert_eq!(
            routed.seg_distribute::<Max, _>(&a, &segs),
            soft.seg_distribute::<Max, _>(&a, &segs)
        );
        assert_eq!(routed.seg_copy(&a, &segs), soft.seg_copy(&a, &segs));
        assert_eq!(routed.enumerate(&flags), soft.enumerate(&flags));
        assert_eq!(routed.count(&flags), soft.count(&flags));
        assert_eq!(routed.pack(&a, &flags), soft.pack(&a, &flags));
        assert_eq!(
            routed.split_count(&a, &flags),
            soft.split_count(&a, &flags)
        );
        assert_eq!(routed.allocate(&[2, 0, 3]), soft.allocate(&[2, 0, 3]));
        assert_eq!(
            routed.distribute(&[7u64, 8, 9], &[2, 0, 3]),
            soft.distribute(&[7u64, 8, 9], &[2, 0, 3])
        );
        // The charges are identical either way — routing does not change
        // the cost model.
        assert_eq!(routed.steps(), soft.steps());
        // And the primitives really ran on the backend.
        assert!(backend.calls.get() >= 20, "backend saw {}", backend.calls.get());
    }

    #[test]
    fn expired_deadline_skips_the_backend_but_stays_correct() {
        use scan_core::simulate::{PrimitiveScans, SoftwareScans};
        use std::cell::Cell;
        use std::rc::Rc;

        #[derive(Debug, Default)]
        struct Counting {
            calls: Cell<u64>,
        }
        impl PrimitiveScans for Counting {
            fn plus_scan(&self, a: &[u64]) -> Vec<u64> {
                self.calls.set(self.calls.get() + 1);
                SoftwareScans.plus_scan(a)
            }
            fn max_scan(&self, a: &[u64]) -> Vec<u64> {
                self.calls.set(self.calls.get() + 1);
                SoftwareScans.max_scan(a)
            }
        }

        let backend = Rc::new(Counting::default());
        let d = scan_core::ScanDeadline::after(std::time::Duration::ZERO);
        let mut ctx = Ctx::new(Model::Scan)
            .with_backend(backend.clone())
            .with_deadline(d);
        let a: Vec<u64> = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let flags = [true, false, true, true, false, false, true, false];
        let mut soft = Ctx::new(Model::Scan);
        // Out of time: every op still returns the exact software
        // result, but nothing is dispatched to the backend.
        assert_eq!(ctx.scan::<Sum, _>(&a), soft.scan::<Sum, _>(&a));
        assert_eq!(ctx.reduce::<Max, _>(&a), soft.reduce::<Max, _>(&a));
        assert_eq!(ctx.enumerate(&flags), soft.enumerate(&flags));
        assert_eq!(ctx.pack(&a, &flags), soft.pack(&a, &flags));
        assert_eq!(backend.calls.get(), 0, "expired deadline must skip routing");
        assert_eq!(ctx.deadline_skips(), 4);
        // The charges are unchanged — skipping is a routing decision,
        // not a cost-model one.
        assert_eq!(ctx.steps(), soft.steps());
    }

    #[test]
    fn live_deadline_keeps_routing_and_cancel_stops_it() {
        use scan_core::simulate::{PrimitiveScans, SoftwareScans};
        use std::cell::Cell;
        use std::rc::Rc;

        #[derive(Debug, Default)]
        struct Counting {
            calls: Cell<u64>,
        }
        impl PrimitiveScans for Counting {
            fn plus_scan(&self, a: &[u64]) -> Vec<u64> {
                self.calls.set(self.calls.get() + 1);
                SoftwareScans.plus_scan(a)
            }
            fn max_scan(&self, a: &[u64]) -> Vec<u64> {
                self.calls.set(self.calls.get() + 1);
                SoftwareScans.max_scan(a)
            }
        }

        let backend = Rc::new(Counting::default());
        let d = scan_core::ScanDeadline::manual();
        let mut ctx = Ctx::new(Model::Scan)
            .with_backend(backend.clone())
            .with_deadline(d.clone());
        assert!(ctx.deadline().is_some());
        let a: Vec<u64> = vec![2, 7, 1, 8, 2, 8];
        assert_eq!(ctx.scan::<Sum, _>(&a), vec![0, 2, 9, 10, 18, 20]);
        let routed_calls = backend.calls.get();
        assert!(routed_calls >= 1, "live deadline must not block routing");
        assert_eq!(ctx.deadline_skips(), 0);
        // Cancellation flips routing off mid-program.
        d.cancel();
        assert_eq!(ctx.scan::<Sum, _>(&a), vec![0, 2, 9, 10, 18, 20]);
        assert_eq!(backend.calls.get(), routed_calls);
        assert_eq!(ctx.deadline_skips(), 1);
        // Removing the deadline restores routing.
        ctx.set_deadline(None);
        assert_eq!(ctx.scan::<Sum, _>(&a), vec![0, 2, 9, 10, 18, 20]);
        assert!(backend.calls.get() > routed_calls);
    }

    #[test]
    fn backend_routing_falls_back_for_unroutable_ops() {
        use scan_core::op::Prod;
        use scan_core::simulate::SoftwareScans;
        use std::rc::Rc;
        let mut ctx = Ctx::new(Model::Scan).with_backend(Rc::new(SoftwareScans));
        // No §3.4 construction for ×-scan or float +-scan: software path.
        assert_eq!(ctx.scan::<Prod, _>(&[1u64, 2, 3, 4]), vec![1, 1, 2, 6]);
        let f = [1.0f64, 2.0, 3.0];
        assert_eq!(ctx.scan::<Sum, _>(&f), vec![0.0, 1.0, 3.0]);
    }
}
