//! Step-complexity counters.

use core::fmt;

/// Category of a charged program step, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepKind {
    /// Elementwise arithmetic / logical vector operation.
    Elementwise,
    /// Permute or other parallel memory reference round.
    Permute,
    /// Primitive scan (or the tree simulation of one).
    Scan,
    /// Segmented scan (charged as two primitive scans).
    SegScan,
    /// Unit-cost combining concurrent write (extended CRCW only).
    CombiningWrite,
    /// Merge of adjacent sorted runs (the hypothetical §4 primitive, or
    /// its bitonic-network simulation).
    Merge,
}

impl StepKind {
    /// All kinds, in report order.
    pub const ALL: [StepKind; 6] = [
        StepKind::Elementwise,
        StepKind::Permute,
        StepKind::Scan,
        StepKind::SegScan,
        StepKind::CombiningWrite,
        StepKind::Merge,
    ];

    fn index(self) -> usize {
        match self {
            StepKind::Elementwise => 0,
            StepKind::Permute => 1,
            StepKind::Scan => 2,
            StepKind::SegScan => 3,
            StepKind::CombiningWrite => 4,
            StepKind::Merge => 5,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            StepKind::Elementwise => "elementwise",
            StepKind::Permute => "permute",
            StepKind::Scan => "scan",
            StepKind::SegScan => "seg-scan",
            StepKind::CombiningWrite => "combining-write",
            StepKind::Merge => "merge",
        }
    }
}

/// Accumulated step counts for one run of an algorithm.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    steps_by_kind: [u64; 6],
    ops_by_kind: [u64; 6],
}

impl Stats {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `steps` program steps of the given kind (one operation).
    pub fn charge(&mut self, kind: StepKind, steps: u64) {
        self.steps_by_kind[kind.index()] += steps;
        self.ops_by_kind[kind.index()] += 1;
    }

    /// Total program steps charged.
    pub fn steps(&self) -> u64 {
        self.steps_by_kind.iter().sum()
    }

    /// Steps charged for one kind.
    pub fn steps_of(&self, kind: StepKind) -> u64 {
        self.steps_by_kind[kind.index()]
    }

    /// Number of operations (not steps) of one kind.
    pub fn ops_of(&self, kind: StepKind) -> u64 {
        self.ops_by_kind[kind.index()]
    }

    /// Total vector operations issued.
    pub fn ops(&self) -> u64 {
        self.ops_by_kind.iter().sum()
    }

    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} steps (", self.steps())?;
        let mut first = true;
        for kind in StepKind::ALL {
            let s = self.steps_of(kind);
            if s > 0 {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{} {}", s, kind.label())?;
                first = false;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut s = Stats::new();
        s.charge(StepKind::Scan, 3);
        s.charge(StepKind::Scan, 3);
        s.charge(StepKind::Elementwise, 1);
        assert_eq!(s.steps(), 7);
        assert_eq!(s.steps_of(StepKind::Scan), 6);
        assert_eq!(s.ops_of(StepKind::Scan), 2);
        assert_eq!(s.ops(), 3);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = Stats::new();
        s.charge(StepKind::Permute, 5);
        s.reset();
        assert_eq!(s.steps(), 0);
        assert_eq!(s.ops(), 0);
    }

    #[test]
    fn display_lists_nonzero_kinds() {
        let mut s = Stats::new();
        s.charge(StepKind::Scan, 2);
        s.charge(StepKind::Permute, 1);
        let d = s.to_string();
        assert!(d.contains("3 steps"));
        assert!(d.contains("2 scan"));
        assert!(d.contains("1 permute"));
        assert!(!d.contains("seg-scan"));
    }
}
