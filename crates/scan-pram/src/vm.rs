//! A PARIS-flavored vector instruction set.
//!
//! "The scan primitives have been implemented in microcode on the
//! Connection Machine System, are available in PARIS (the parallel
//! instruction set of the machine), and are used in a large number of
//! applications." This module gives the library the same shape: a
//! small register-based vector ISA whose instruction vocabulary is the
//! paper's — elementwise arithmetic, permutes, the two primitive scans,
//! segmented scans, and the derived operations — executed on the
//! step-counting [`Ctx`], so a program's step complexity is measured as
//! it runs.
//!
//! ```
//! use scan_pram::vm::{Instr, Vm};
//! use scan_pram::Model;
//!
//! // +-scan of [2 1 2 3]:
//! let mut vm = Vm::new(Model::Scan);
//! vm.load("a", vec![2, 1, 2, 3]);
//! vm.run(&[Instr::PlusScan { dst: "s", src: "a" }]).unwrap();
//! assert_eq!(vm.get("s").unwrap(), &[0, 2, 3, 5]);
//! ```

use std::collections::HashMap;

use scan_core::op::{Max, Min, Sum};
use scan_core::segmented::Segments;

use crate::ctx::Ctx;
use crate::model::Model;

/// Register names are static strings (mnemonics in a hand-written
/// program).
pub type Reg = &'static str;

/// The instruction vocabulary: the paper's vector operations. Each
/// variant's doc comment states its semantics; the operand fields are
/// uniformly `dst`/`src`/`a`/`b`/`idx`/`flags` register names.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `dst ← [c; len_of(src)]`.
    Const { dst: Reg, like: Reg, value: u64 },
    /// `dst ← [0, 1, 2, ...]` with the length of `like`.
    Iota { dst: Reg, like: Reg },
    /// `dst ← a + b` (wrapping).
    Add { dst: Reg, a: Reg, b: Reg },
    /// `dst ← a − b` (wrapping).
    Sub { dst: Reg, a: Reg, b: Reg },
    /// `dst ← min(a, b)` elementwise.
    MinV { dst: Reg, a: Reg, b: Reg },
    /// `dst ← max(a, b)` elementwise.
    MaxV { dst: Reg, a: Reg, b: Reg },
    /// `dst ← a & b`.
    And { dst: Reg, a: Reg, b: Reg },
    /// `dst ← a | b`.
    Or { dst: Reg, a: Reg, b: Reg },
    /// `dst ← a ^ b`.
    Xor { dst: Reg, a: Reg, b: Reg },
    /// `dst ← (a >> amount) & 1` — bit extraction (the radix sort's
    /// `A⟨i⟩`).
    Bit { dst: Reg, src: Reg, amount: u32 },
    /// `dst ← a < b` (0/1).
    Lt { dst: Reg, a: Reg, b: Reg },
    /// `dst ← a == b` (0/1).
    Eq { dst: Reg, a: Reg, b: Reg },
    /// `dst ← cond ? a : b` elementwise (`cond` is 0/1).
    Select { dst: Reg, cond: Reg, a: Reg, b: Reg },
    /// The exclusive `+-scan` primitive.
    PlusScan { dst: Reg, src: Reg },
    /// The exclusive `max-scan` primitive.
    MaxScan { dst: Reg, src: Reg },
    /// Segmented exclusive `+-scan`; `flags` is 0/1 head flags.
    SegPlusScan { dst: Reg, src: Reg, flags: Reg },
    /// Segmented exclusive `max-scan`.
    SegMaxScan { dst: Reg, src: Reg, flags: Reg },
    /// `dst ← enumerate(flags)` (flags are 0/1).
    Enumerate { dst: Reg, flags: Reg },
    /// `dst[idx[i]] ← src[i]` (indices must be a permutation).
    Permute { dst: Reg, src: Reg, idx: Reg },
    /// `dst[i] ← src[idx[i]]`.
    Gather { dst: Reg, src: Reg, idx: Reg },
    /// `dst ← pack(src, flags)` — the shorter kept vector.
    Pack { dst: Reg, src: Reg, flags: Reg },
    /// `dst ← split(src, flags)` (§2.2.1).
    Split { dst: Reg, src: Reg, flags: Reg },
    /// `dst ← +-reduce(src)` broadcast to every element
    /// (`+-distribute`).
    PlusDistribute { dst: Reg, src: Reg },
    /// `dst ← min-reduce(src)` broadcast (`min-distribute`).
    MinDistribute { dst: Reg, src: Reg },
}

/// Errors a program can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Instruction read a register that was never written.
    UndefinedRegister(&'static str),
    /// Two operands had different lengths.
    LengthMismatch {
        /// First operand length.
        a: usize,
        /// Second operand length.
        b: usize,
    },
    /// A permute's index vector was not a permutation.
    BadPermutation,
    /// The program charged more steps than its [`VmLimits`] budget.
    StepBudgetExceeded {
        /// The configured budget.
        budget: u64,
        /// Steps charged when the budget check fired.
        used: u64,
    },
    /// The registers hold more words than the [`VmLimits`] cap allows.
    MemoryBudgetExceeded {
        /// The configured cap, in 64-bit words.
        cap: usize,
        /// Words held when the cap check fired.
        used: usize,
    },
    /// A checked vector operation from `scan-core` failed.
    Core(scan_core::Error),
}

impl core::fmt::Display for VmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VmError::UndefinedRegister(r) => write!(f, "undefined register {r}"),
            VmError::LengthMismatch { a, b } => write!(f, "length mismatch: {a} vs {b}"),
            VmError::BadPermutation => write!(f, "index vector is not a permutation"),
            VmError::StepBudgetExceeded { budget, used } => {
                write!(f, "step budget exceeded: {used} steps charged, budget {budget}")
            }
            VmError::MemoryBudgetExceeded { cap, used } => {
                write!(f, "register memory cap exceeded: {used} words held, cap {cap}")
            }
            VmError::Core(e) => write!(f, "vector operation failed: {e}"),
        }
    }
}

impl std::error::Error for VmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VmError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<scan_core::Error> for VmError {
    fn from(e: scan_core::Error) -> Self {
        VmError::Core(e)
    }
}

/// Resource budgets enforced by [`Vm::run`] after every instruction.
///
/// `None` means unlimited (the default). A budget makes a runaway or
/// adversarial program fail with a typed [`VmError`] instead of looping
/// or exhausting memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmLimits {
    /// Maximum program steps (as charged by the model) a run may use.
    pub max_steps: Option<u64>,
    /// Maximum total 64-bit words held across all registers.
    pub max_register_words: Option<usize>,
}

impl VmLimits {
    /// No limits (the default).
    pub fn unlimited() -> Self {
        VmLimits::default()
    }

    /// Cap the program-step budget.
    pub fn with_max_steps(mut self, steps: u64) -> Self {
        self.max_steps = Some(steps);
        self
    }

    /// Cap the total register memory, in 64-bit words.
    pub fn with_max_register_words(mut self, words: usize) -> Self {
        self.max_register_words = Some(words);
        self
    }
}

/// The vector machine: named registers over a step-counting [`Ctx`].
#[derive(Debug)]
pub struct Vm {
    regs: HashMap<&'static str, Vec<u64>>,
    ctx: Ctx,
    limits: VmLimits,
}

impl Vm {
    /// A machine with one processor per element under `model`.
    pub fn new(model: Model) -> Self {
        Vm {
            regs: HashMap::new(),
            ctx: Ctx::new(model),
            limits: VmLimits::default(),
        }
    }

    /// A machine over an existing context (e.g. with a fixed processor
    /// count).
    pub fn with_ctx(ctx: Ctx) -> Self {
        Vm {
            regs: HashMap::new(),
            ctx,
            limits: VmLimits::default(),
        }
    }

    /// A machine under `model` with resource budgets enforced by
    /// [`Vm::run`].
    pub fn with_limits(model: Model, limits: VmLimits) -> Self {
        let mut vm = Vm::new(model);
        vm.limits = limits;
        vm
    }

    /// Replace the resource budgets.
    pub fn set_limits(&mut self, limits: VmLimits) {
        self.limits = limits;
    }

    /// The active resource budgets.
    pub fn limits(&self) -> VmLimits {
        self.limits
    }

    /// Total 64-bit words currently held across all registers.
    pub fn register_words(&self) -> usize {
        self.regs.values().map(Vec::len).sum()
    }

    /// Write a register directly.
    pub fn load(&mut self, reg: &'static str, data: Vec<u64>) {
        self.regs.insert(reg, data);
    }

    /// Read a register.
    pub fn get(&self, reg: &'static str) -> Option<&[u64]> {
        self.regs.get(reg).map(Vec::as_slice)
    }

    /// The accumulated step statistics.
    pub fn stats(&self) -> &crate::stats::Stats {
        self.ctx.stats()
    }

    /// Total program steps charged.
    pub fn steps(&self) -> u64 {
        self.ctx.steps()
    }

    fn reg(&self, r: &'static str) -> Result<&Vec<u64>, VmError> {
        self.regs.get(r).ok_or(VmError::UndefinedRegister(r))
    }

    fn pair(&self, a: &'static str, b: &'static str) -> Result<(Vec<u64>, Vec<u64>), VmError> {
        let av = self.reg(a)?.clone();
        let bv = self.reg(b)?.clone();
        if av.len() != bv.len() {
            return Err(VmError::LengthMismatch {
                a: av.len(),
                b: bv.len(),
            });
        }
        Ok((av, bv))
    }

    fn flags_of(v: &[u64]) -> Vec<bool> {
        v.iter().map(|&x| x != 0).collect()
    }

    /// Execute one instruction.
    pub fn step(&mut self, instr: Instr) -> Result<(), VmError> {
        use Instr::*;
        match instr {
            Const { dst, like, value } => {
                let n = self.reg(like)?.len();
                let out = self.ctx.constant(n, value);
                self.regs.insert(dst, out);
            }
            Iota { dst, like } => {
                let n = self.reg(like)?.len();
                let out: Vec<u64> = self.ctx.iota(n).iter().map(|&i| i as u64).collect();
                self.regs.insert(dst, out);
            }
            Add { dst, a, b } => self.binop(dst, a, b, |x, y| x.wrapping_add(y))?,
            Sub { dst, a, b } => self.binop(dst, a, b, |x, y| x.wrapping_sub(y))?,
            MinV { dst, a, b } => self.binop(dst, a, b, u64::min)?,
            MaxV { dst, a, b } => self.binop(dst, a, b, u64::max)?,
            And { dst, a, b } => self.binop(dst, a, b, |x, y| x & y)?,
            Or { dst, a, b } => self.binop(dst, a, b, |x, y| x | y)?,
            Xor { dst, a, b } => self.binop(dst, a, b, |x, y| x ^ y)?,
            Lt { dst, a, b } => self.binop(dst, a, b, |x, y| u64::from(x < y))?,
            Eq { dst, a, b } => self.binop(dst, a, b, |x, y| u64::from(x == y))?,
            Bit { dst, src, amount } => {
                let s = self.reg(src)?.clone();
                let out = self.ctx.map(&s, move |x| (x >> amount) & 1);
                self.regs.insert(dst, out);
            }
            Select { dst, cond, a, b } => {
                let c = Self::flags_of(self.reg(cond)?);
                let (av, bv) = self.pair(a, b)?;
                if c.len() != av.len() {
                    return Err(VmError::LengthMismatch {
                        a: c.len(),
                        b: av.len(),
                    });
                }
                let out = self.ctx.select(&c, &av, &bv);
                self.regs.insert(dst, out);
            }
            PlusScan { dst, src } => {
                let s = self.reg(src)?.clone();
                let out = self.ctx.scan::<Sum, _>(&s);
                self.regs.insert(dst, out);
            }
            MaxScan { dst, src } => {
                let s = self.reg(src)?.clone();
                let out = self.ctx.scan::<Max, _>(&s);
                self.regs.insert(dst, out);
            }
            SegPlusScan { dst, src, flags } => {
                let (s, f) = self.pair(src, flags)?;
                let segs = Segments::from_flags(Self::flags_of(&f));
                let out = self.ctx.seg_scan::<Sum, _>(&s, &segs);
                self.regs.insert(dst, out);
            }
            SegMaxScan { dst, src, flags } => {
                let (s, f) = self.pair(src, flags)?;
                let segs = Segments::from_flags(Self::flags_of(&f));
                let out = self.ctx.seg_scan::<Max, _>(&s, &segs);
                self.regs.insert(dst, out);
            }
            Enumerate { dst, flags } => {
                let f = Self::flags_of(self.reg(flags)?);
                let out: Vec<u64> = self
                    .ctx
                    .enumerate(&f)
                    .iter()
                    .map(|&x| x as u64)
                    .collect();
                self.regs.insert(dst, out);
            }
            Permute { dst, src, idx } => {
                let (s, ix) = self.pair(src, idx)?;
                let indices: Vec<usize> = ix.iter().map(|&x| x as usize).collect();
                let out = scan_core::ops::try_permute(&s, &indices)
                    .map_err(|_| VmError::BadPermutation)?;
                self.ctx.charge_permute_op(s.len());
                self.regs.insert(dst, out);
            }
            Gather { dst, src, idx } => {
                let s = self.reg(src)?.clone();
                let ix = self.reg(idx)?.clone();
                let indices: Vec<usize> = ix.iter().map(|&x| x as usize).collect();
                let out = scan_core::ops::try_gather(&s, &indices)?;
                self.ctx.charge_permute_op(indices.len());
                self.regs.insert(dst, out);
            }
            Pack { dst, src, flags } => {
                let (s, f) = self.pair(src, flags)?;
                let out = self.ctx.pack(&s, &Self::flags_of(&f));
                self.regs.insert(dst, out);
            }
            Split { dst, src, flags } => {
                let (s, f) = self.pair(src, flags)?;
                let out = self.ctx.split(&s, &Self::flags_of(&f));
                self.regs.insert(dst, out);
            }
            PlusDistribute { dst, src } => {
                let s = self.reg(src)?.clone();
                let out = self.ctx.distribute_op::<Sum, _>(&s);
                self.regs.insert(dst, out);
            }
            MinDistribute { dst, src } => {
                let s = self.reg(src)?.clone();
                let out = self.ctx.distribute_op::<Min, _>(&s);
                self.regs.insert(dst, out);
            }
        }
        Ok(())
    }

    fn binop(
        &mut self,
        dst: &'static str,
        a: &'static str,
        b: &'static str,
        f: impl Fn(u64, u64) -> u64 + Sync,
    ) -> Result<(), VmError> {
        let (av, bv) = self.pair(a, b)?;
        let out = self.ctx.zip(&av, &bv, f);
        self.regs.insert(dst, out);
        Ok(())
    }

    /// Execute a straight-line program, enforcing the machine's
    /// [`VmLimits`] after every instruction.
    pub fn run(&mut self, program: &[Instr]) -> Result<(), VmError> {
        for &i in program {
            self.step(i)?;
            self.check_budgets()?;
        }
        Ok(())
    }

    fn check_budgets(&self) -> Result<(), VmError> {
        if let Some(budget) = self.limits.max_steps {
            let used = self.ctx.steps();
            if used > budget {
                return Err(VmError::StepBudgetExceeded { budget, used });
            }
        }
        if let Some(cap) = self.limits.max_register_words {
            let used = self.register_words();
            if used > cap {
                return Err(VmError::MemoryBudgetExceeded { cap, used });
            }
        }
        Ok(())
    }
}

/// One pass of the split radix sort, as a PARIS-style program: extract
/// bit `bit`, then `split` on it (Figure 2's loop body).
pub fn radix_pass_program(bit: u32) -> Vec<Instr> {
    vec![
        Instr::Bit {
            dst: "flag",
            src: "keys",
            amount: bit,
        },
        Instr::Split {
            dst: "keys",
            src: "keys",
            flags: "flag",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_program() {
        let mut vm = Vm::new(Model::Scan);
        vm.load("a", vec![2, 1, 2, 3, 5, 8, 13, 21]);
        vm.run(&[Instr::PlusScan { dst: "s", src: "a" }]).unwrap();
        assert_eq!(vm.get("s").unwrap(), &[0, 2, 3, 5, 8, 13, 21, 34]);
        assert!(vm.steps() > 0);
    }

    #[test]
    fn radix_sort_as_a_program() {
        let mut vm = Vm::new(Model::Scan);
        vm.load("keys", vec![5, 7, 3, 1, 4, 2, 7, 2]);
        for bit in 0..3 {
            vm.run(&radix_pass_program(bit)).unwrap();
        }
        assert_eq!(vm.get("keys").unwrap(), &[1, 2, 2, 3, 4, 5, 7, 7]);
    }

    #[test]
    fn figure1_programs() {
        let mut vm = Vm::new(Model::Scan);
        vm.load("flags", vec![1, 0, 0, 1, 0, 1, 1, 0]);
        vm.run(&[Instr::Enumerate {
            dst: "e",
            flags: "flags",
        }])
        .unwrap();
        assert_eq!(vm.get("e").unwrap(), &[0, 1, 1, 1, 2, 2, 3, 4]);
        vm.load("b", vec![1, 1, 2, 1, 1, 2, 1, 1]);
        vm.run(&[Instr::PlusDistribute { dst: "d", src: "b" }])
            .unwrap();
        assert_eq!(vm.get("d").unwrap(), &[10; 8]);
    }

    #[test]
    fn segmented_program() {
        let mut vm = Vm::new(Model::Scan);
        vm.load("a", vec![5, 1, 3, 4, 3, 9, 2, 6]);
        vm.load("sb", vec![1, 0, 1, 0, 0, 0, 1, 0]);
        vm.run(&[
            Instr::SegPlusScan {
                dst: "ps",
                src: "a",
                flags: "sb",
            },
            Instr::SegMaxScan {
                dst: "ms",
                src: "a",
                flags: "sb",
            },
        ])
        .unwrap();
        assert_eq!(vm.get("ps").unwrap(), &[0, 5, 0, 3, 7, 10, 0, 2]);
        assert_eq!(vm.get("ms").unwrap(), &[0, 5, 0, 3, 4, 4, 0, 2]);
    }

    #[test]
    fn arithmetic_and_select() {
        let mut vm = Vm::new(Model::Scan);
        vm.load("a", vec![5, 1, 9]);
        vm.load("b", vec![2, 8, 9]);
        vm.run(&[
            Instr::Add { dst: "sum", a: "a", b: "b" },
            Instr::Lt { dst: "lt", a: "a", b: "b" },
            Instr::Select { dst: "min", cond: "lt", a: "a", b: "b" },
            Instr::MaxV { dst: "max", a: "a", b: "b" },
        ])
        .unwrap();
        assert_eq!(vm.get("sum").unwrap(), &[7, 9, 18]);
        assert_eq!(vm.get("lt").unwrap(), &[0, 1, 0]);
        assert_eq!(vm.get("min").unwrap(), &[2, 1, 9]);
        assert_eq!(vm.get("max").unwrap(), &[5, 8, 9]);
    }

    #[test]
    fn permute_and_gather_roundtrip() {
        let mut vm = Vm::new(Model::Scan);
        vm.load("a", vec![10, 11, 12, 13]);
        vm.load("idx", vec![2, 0, 3, 1]);
        vm.run(&[
            Instr::Permute { dst: "p", src: "a", idx: "idx" },
            Instr::Gather { dst: "back", src: "p", idx: "idx" },
        ])
        .unwrap();
        assert_eq!(vm.get("back").unwrap(), &[10, 11, 12, 13]);
    }

    #[test]
    fn errors_are_reported() {
        let mut vm = Vm::new(Model::Scan);
        assert_eq!(
            vm.step(Instr::PlusScan { dst: "x", src: "nope" }),
            Err(VmError::UndefinedRegister("nope"))
        );
        vm.load("a", vec![1, 2]);
        vm.load("b", vec![1]);
        assert!(matches!(
            vm.step(Instr::Add { dst: "c", a: "a", b: "b" }),
            Err(VmError::LengthMismatch { .. })
        ));
        vm.load("idx", vec![0, 0]);
        vm.load("two", vec![7, 8]);
        assert_eq!(
            vm.step(Instr::Permute { dst: "p", src: "two", idx: "idx" }),
            Err(VmError::BadPermutation)
        );
    }

    #[test]
    fn gather_out_of_bounds_is_a_typed_core_error() {
        let mut vm = Vm::new(Model::Scan);
        vm.load("a", vec![1, 2, 3]);
        vm.load("idx", vec![0, 9, 1]);
        let err = vm
            .step(Instr::Gather { dst: "g", src: "a", idx: "idx" })
            .unwrap_err();
        assert_eq!(
            err,
            VmError::Core(scan_core::Error::IndexOutOfBounds { index: 9, len: 3 })
        );
        // The conversion also works via `?` / `From` directly.
        let via_from: VmError = scan_core::Error::DuplicateIndex { index: 2 }.into();
        assert!(matches!(via_from, VmError::Core(_)));
        // And the source chain reaches the core error.
        use std::error::Error as _;
        assert!(err.source().is_some());
    }

    #[test]
    fn step_budget_stops_runaway_programs() {
        let mut vm = Vm::with_limits(Model::Scan, VmLimits::unlimited().with_max_steps(5));
        vm.load("a", (0..64u64).collect());
        // Each scan charges steps; once the cumulative charge passes the
        // budget the run stops with the typed error instead of running
        // the rest of the program.
        let err = vm
            .run(&[
                Instr::PlusScan { dst: "s", src: "a" },
                Instr::PlusScan { dst: "t", src: "s" },
                Instr::PlusScan { dst: "u", src: "t" },
            ])
            .unwrap_err();
        match err {
            VmError::StepBudgetExceeded { budget, used } => {
                assert_eq!(budget, 5);
                assert!(used > 5);
            }
            other => panic!("expected StepBudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn memory_cap_stops_register_growth() {
        let mut vm = Vm::with_limits(
            Model::Scan,
            VmLimits::unlimited().with_max_register_words(5),
        );
        vm.load("a", vec![1, 2, 3]);
        let err = vm
            .run(&[Instr::PlusScan { dst: "s", src: "a" }])
            .unwrap_err();
        assert_eq!(err, VmError::MemoryBudgetExceeded { cap: 5, used: 6 });
        assert_eq!(vm.register_words(), 6);
    }

    #[test]
    fn budgets_default_to_unlimited_and_display() {
        let mut vm = Vm::new(Model::Scan);
        assert_eq!(vm.limits(), VmLimits::default());
        vm.load("a", (0..128u64).collect());
        vm.run(&[Instr::PlusScan { dst: "s", src: "a" }]).unwrap();
        let e = VmError::StepBudgetExceeded { budget: 4, used: 9 };
        assert_eq!(
            e.to_string(),
            "step budget exceeded: 9 steps charged, budget 4"
        );
        let e = VmError::MemoryBudgetExceeded { cap: 2, used: 3 };
        assert_eq!(
            e.to_string(),
            "register memory cap exceeded: 3 words held, cap 2"
        );
        let e = VmError::Core(scan_core::Error::DuplicateIndex { index: 1 });
        assert!(e.to_string().contains("duplicate permute destination"));
    }

    #[test]
    fn step_counting_through_programs() {
        // The same program under two models: same registers, different
        // charges.
        let program = |model| {
            let mut vm = Vm::new(model);
            vm.load("keys", (0..256u64).rev().collect());
            for bit in 0..8 {
                vm.run(&radix_pass_program(bit)).unwrap();
            }
            (vm.get("keys").unwrap().to_vec(), vm.steps())
        };
        let (sorted_scan, steps_scan) = program(Model::Scan);
        let (sorted_erew, steps_erew) = program(Model::Erew);
        assert_eq!(sorted_scan, sorted_erew);
        assert_eq!(sorted_scan, (0..256u64).collect::<Vec<_>>());
        assert!(steps_erew > steps_scan);
    }
}
