//! Long vectors: simulating multiple elements per processor
//! (paper §2.5, Figures 10 and 11).
//!
//! When a vector has more elements than processors, each processor is
//! assigned a contiguous block. An elementwise operation loops over the
//! block; a scan sums within blocks, scans across processors, and uses
//! the result as the offset of a within-block scan. Load balancing packs
//! surviving elements into a shorter vector and re-blocks it.

use scan_core::element::ScanElem;
use scan_core::op::ScanOp;
use scan_core::ops;
use scan_core::scan::scan as flat_scan;

/// A vector explicitly partitioned into per-processor blocks
/// (Figure 10's layout).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockedVec<T> {
    data: Vec<T>,
    procs: usize,
}

impl<T: ScanElem> BlockedVec<T> {
    /// Partition `data` across `procs` processors in contiguous blocks
    /// of `⌈n/p⌉` (the last blocks may be short or empty).
    ///
    /// # Panics
    /// If `procs == 0`.
    pub fn new(data: Vec<T>, procs: usize) -> Self {
        assert!(procs > 0, "need at least one processor");
        BlockedVec { data, procs }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of processors.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// The underlying flat data.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Consume into the flat data.
    pub fn into_data(self) -> Vec<T> {
        self.data
    }

    /// The half-open `(start, end)` range owned by each processor.
    /// Blocks are `⌈n/p⌉` long except possibly the last.
    pub fn block_ranges(&self) -> Vec<(usize, usize)> {
        let n = self.data.len();
        let b = n.div_ceil(self.procs).max(1);
        (0..self.procs)
            .map(|i| {
                let s = (i * b).min(n);
                let e = ((i + 1) * b).min(n);
                (s, e)
            })
            .collect()
    }

    /// The largest number of elements any processor is responsible for —
    /// the `⌈n/p⌉` of the paper's halving-merge analysis (Equation 2).
    pub fn max_block_len(&self) -> usize {
        self.block_ranges()
            .iter()
            .map(|&(s, e)| e - s)
            .max()
            .unwrap_or(0)
    }

    /// Elementwise map: each processor loops over its own block.
    pub fn map<U: ScanElem>(&self, f: impl Fn(T) -> U) -> BlockedVec<U> {
        // Sequential per block by construction; the blocks are what a
        // real machine would run in parallel.
        let mut out = Vec::with_capacity(self.data.len());
        for (s, e) in self.block_ranges() {
            for i in s..e {
                out.push(f(self.data[i]));
            }
        }
        BlockedVec {
            data: out,
            procs: self.procs,
        }
    }

    /// Per-processor partial reductions (Figure 10's `Sum` row).
    pub fn block_sums<O: ScanOp<T>>(&self) -> Vec<T> {
        self.block_ranges()
            .iter()
            .map(|&(s, e)| {
                let mut acc = O::identity();
                for i in s..e {
                    acc = O::combine(acc, self.data[i]);
                }
                acc
            })
            .collect()
    }

    /// Exclusive scan of a long vector, exactly as Figure 10 describes:
    /// each processor sums its elements, a scan runs across processors,
    /// and the result seeds a within-block scan.
    pub fn scan<O: ScanOp<T>>(&self) -> BlockedVec<T> {
        let sums = self.block_sums::<O>();
        let offsets = flat_scan::<O, T>(&sums);
        let mut out = vec![O::identity(); self.data.len()];
        for (p, &(s, e)) in self.block_ranges().iter().enumerate() {
            let mut acc = offsets[p];
            for (o, v) in out[s..e].iter_mut().zip(&self.data[s..e]) {
                *o = acc;
                acc = O::combine(acc, *v);
            }
        }
        BlockedVec {
            data: out,
            procs: self.procs,
        }
    }

    /// Load balancing (Figure 11): drop the elements whose flag is
    /// `false`, pack the survivors into a shorter vector, and re-block
    /// it across the same processors.
    ///
    /// # Panics
    /// If `keep.len() != self.len()`.
    pub fn load_balance(&self, keep: &[bool]) -> BlockedVec<T> {
        assert_eq!(keep.len(), self.data.len(), "load_balance length mismatch");
        BlockedVec {
            data: ops::pack(&self.data, keep),
            procs: self.procs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_core::op::Sum;

    #[test]
    fn figure10_scan() {
        // [4 7 1 | 0 5 2 | 6 4 8 | 1 9 5] on 4 processors
        let v = BlockedVec::new(vec![4u64, 7, 1, 0, 5, 2, 6, 4, 8, 1, 9, 5], 4);
        assert_eq!(v.block_sums::<Sum>(), vec![12, 7, 18, 15]);
        // +-scan(Sum) = [0 12 19 37]
        assert_eq!(flat_scan::<Sum, _>(&v.block_sums::<Sum>()), vec![0, 12, 19, 37]);
        // Final: [0 4 11 | 12 12 17 | 19 25 29 | 37 38 47]
        assert_eq!(
            v.scan::<Sum>().data(),
            &[0, 4, 11, 12, 12, 17, 19, 25, 29, 37, 38, 47]
        );
    }

    #[test]
    fn blocked_scan_matches_flat_scan() {
        for p in [1, 2, 3, 5, 8, 64] {
            let data: Vec<u64> = (0..100).map(|i| i * 3 % 17).collect();
            let v = BlockedVec::new(data.clone(), p);
            assert_eq!(v.scan::<Sum>().data(), flat_scan::<Sum, _>(&data).as_slice());
        }
    }

    #[test]
    fn figure11_load_balance() {
        // F = [T F F F T T F T T T T T], blocks of 3 on 4 processors.
        let keep = [
            true, false, false, false, true, true, false, true, true, true, true, true,
        ];
        let a: Vec<u32> = (0..12).collect();
        let v = BlockedVec::new(a, 4);
        let balanced = v.load_balance(&keep);
        assert_eq!(balanced.data(), &[0, 4, 5, 7, 8, 9, 10, 11]);
        // 8 elements over 4 processors: 2 each.
        assert_eq!(balanced.max_block_len(), 2);
        assert_eq!(
            balanced.block_ranges(),
            vec![(0, 2), (2, 4), (4, 6), (6, 8)]
        );
    }

    #[test]
    fn more_procs_than_elements() {
        let v = BlockedVec::new(vec![1u32, 2], 8);
        assert_eq!(v.max_block_len(), 1);
        assert_eq!(v.scan::<Sum>().data(), &[0, 1]);
    }

    #[test]
    fn empty_vector() {
        let v: BlockedVec<u32> = BlockedVec::new(vec![], 4);
        assert!(v.is_empty());
        assert_eq!(v.max_block_len(), 0);
        assert!(v.scan::<Sum>().is_empty());
    }

    #[test]
    fn map_preserves_order() {
        let v = BlockedVec::new((0u32..10).collect(), 3);
        assert_eq!(
            v.map(|x| x * 2).data(),
            &[0, 2, 4, 6, 8, 10, 12, 14, 16, 18]
        );
    }
}
