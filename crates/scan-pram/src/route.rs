//! Routing generic [`Ctx`](crate::Ctx) operations onto a
//! [`PrimitiveScans`] backend.
//!
//! The paper's §3.4 point is that *every* scan reduces to the two
//! hardware primitives (`+-scan`, `max-scan`). When a backend is plugged
//! into a [`Ctx`](crate::Ctx) — the simulated tree circuit, or a
//! fault-injecting wrapper around it — the derived operations should
//! actually *use* those primitives, so that an experiment (or a fault
//! campaign) over a high-level algorithm exercises the hardware path.
//!
//! Each function here attempts to express one `Ctx` operation in terms
//! of backend primitives, returning `None` when the element/operator
//! pair has no §3.4 construction (the caller then falls back to the
//! software kernels). Dispatch is by `TypeId`, so the generic `Ctx`
//! signatures are unchanged.
//!
//! Because a backend may be deliberately faulty, nothing in this module
//! may panic or allocate unboundedly on garbage scan results: derived
//! index vectors are range-clamped and scatters drop out-of-range
//! destinations. (A *verified* backend — see the `scan-fault` crate —
//! never produces garbage; the clamps are for raw faulty backends.)

use std::any::{Any, TypeId};

use scan_core::element::ScanElem;
use scan_core::op::{And, Max, Min, Or, ScanOp, Sum};
use scan_core::ops::Bucket;
use scan_core::segmented::Segments;
use scan_core::simulate::{self, PrimitiveScans};
use scan_core::{segops, Allocation};

/// Adapter so the `simulate` constructions (generic over
/// `B: PrimitiveScans`) can run over a `&dyn PrimitiveScans`.
struct ByRef<'a>(&'a dyn PrimitiveScans);

impl PrimitiveScans for ByRef<'_> {
    fn plus_scan(&self, a: &[u64]) -> Vec<u64> {
        self.0.plus_scan(a)
    }
    fn max_scan(&self, a: &[u64]) -> Vec<u64> {
        self.0.max_scan(a)
    }
}

// ----- element conversions -----

fn downcast_vec<T: ScanElem, U: ScanElem>(a: &[T]) -> Option<Vec<U>> {
    a.iter()
        .map(|x| (x as &dyn Any).downcast_ref::<U>().copied())
        .collect()
}

fn upcast_vec<T: ScanElem, U: ScanElem>(v: Vec<U>) -> Option<Vec<T>> {
    v.iter()
        .map(|x| (x as &dyn Any).downcast_ref::<T>().copied())
        .collect()
}

/// An unsigned vector widened to the backend's `u64` words; `None` for
/// element types that are not unsigned machine words.
fn to_words<T: ScanElem>(a: &[T]) -> Option<Vec<u64>> {
    let t = TypeId::of::<T>();
    if t == TypeId::of::<u64>() {
        downcast_vec::<T, u64>(a)
    } else if t == TypeId::of::<usize>() {
        downcast_vec::<T, usize>(a).map(|v| v.into_iter().map(|x| x as u64).collect())
    } else if t == TypeId::of::<u32>() {
        downcast_vec::<T, u32>(a).map(|v| v.into_iter().map(u64::from).collect())
    } else if t == TypeId::of::<u16>() {
        downcast_vec::<T, u16>(a).map(|v| v.into_iter().map(u64::from).collect())
    } else if t == TypeId::of::<u8>() {
        downcast_vec::<T, u8>(a).map(|v| v.into_iter().map(u64::from).collect())
    } else {
        None
    }
}

/// Narrow `u64` words back to the unsigned element type. Truncating
/// (`as`) on purpose: the paper's machine wraps at the field width, and
/// wrapping sums commute with truncation.
fn from_words<T: ScanElem>(w: &[u64]) -> Option<Vec<T>> {
    let t = TypeId::of::<T>();
    if t == TypeId::of::<u64>() {
        upcast_vec::<T, u64>(w.to_vec())
    } else if t == TypeId::of::<usize>() {
        upcast_vec::<T, usize>(w.iter().map(|&x| x as usize).collect())
    } else if t == TypeId::of::<u32>() {
        upcast_vec::<T, u32>(w.iter().map(|&x| x as u32).collect())
    } else if t == TypeId::of::<u16>() {
        upcast_vec::<T, u16>(w.iter().map(|&x| x as u16).collect())
    } else if t == TypeId::of::<u8>() {
        upcast_vec::<T, u8>(w.iter().map(|&x| x as u8).collect())
    } else {
        None
    }
}

fn bits_for(v: u64) -> u32 {
    64 - v.leading_zeros()
}

// ----- unsegmented scans -----

/// Exclusive forward scan via the backend primitives (§3.4 dispatch).
pub(crate) fn scan<O: ScanOp<T>, T: ScanElem>(
    b: &dyn PrimitiveScans,
    a: &[T],
) -> Option<Vec<T>> {
    let op = TypeId::of::<O>();
    let t = TypeId::of::<T>();
    let (sum, max, min) = (
        op == TypeId::of::<Sum>(),
        op == TypeId::of::<Max>(),
        op == TypeId::of::<Min>(),
    );
    if t == TypeId::of::<bool>() {
        // or-scan / and-scan are 1-bit max/min scans.
        let v = downcast_vec::<T, bool>(a)?;
        let out = if op == TypeId::of::<Or>() {
            simulate::or_scan(&ByRef(b), &v)
        } else if op == TypeId::of::<And>() {
            simulate::and_scan(&ByRef(b), &v)
        } else {
            return None;
        };
        return upcast_vec(out);
    }
    if sum || max || min {
        if let Some(words) = to_words(a) {
            let out = if sum {
                b.plus_scan(&words)
            } else if max {
                b.max_scan(&words)
            } else {
                simulate::min_scan_u64(&ByRef(b), &words)
            };
            return from_words(&out);
        }
        if t == TypeId::of::<i64>() {
            let v = downcast_vec::<T, i64>(a)?;
            let out = if sum {
                simulate::plus_scan_i64(&ByRef(b), &v)
            } else if max {
                simulate::max_scan_i64(&ByRef(b), &v)
            } else {
                simulate::min_scan_i64(&ByRef(b), &v)
            };
            return upcast_vec(out);
        }
        if t == TypeId::of::<f64>() && !sum {
            let v = downcast_vec::<T, f64>(a)?;
            let out = if max {
                simulate::max_scan_f64(&ByRef(b), &v)
            } else {
                simulate::min_scan_f64(&ByRef(b), &v)
            };
            return upcast_vec(out);
        }
    }
    None
}

/// Exclusive backward scan: read the vector in reverse order (§3.4).
pub(crate) fn scan_backward<O: ScanOp<T>, T: ScanElem>(
    b: &dyn PrimitiveScans,
    a: &[T],
) -> Option<Vec<T>> {
    let rev: Vec<T> = a.iter().rev().copied().collect();
    let mut out = scan::<O, T>(b, &rev)?;
    out.reverse();
    Some(out)
}

/// Exclusive scan plus the reduction total.
pub(crate) fn scan_with_total<O: ScanOp<T>, T: ScanElem>(
    b: &dyn PrimitiveScans,
    a: &[T],
) -> Option<(Vec<T>, T)> {
    let excl = scan::<O, T>(b, a)?;
    let total = match (excl.last(), a.last()) {
        (Some(&e), Some(&x)) => O::combine(e, x),
        _ => O::identity(),
    };
    Some((excl, total))
}

// ----- segmented scans (Figure 16) -----

/// Exclusive segmented scan over unsigned words via the Figure 16
/// composite construction. `None` if the operator has no construction
/// or the values don't leave room for the segment-number append.
pub(crate) fn seg_scan<O: ScanOp<T>, T: ScanElem>(
    b: &dyn PrimitiveScans,
    a: &[T],
    segs: &Segments,
) -> Option<Vec<T>> {
    let words = to_words(a)?;
    if words.len() != segs.len() {
        return None;
    }
    if words.is_empty() {
        return Some(Vec::new());
    }
    let op = TypeId::of::<O>();
    let out = if op == TypeId::of::<Max>() {
        let value_bits = words.iter().map(|&w| bits_for(w)).max().unwrap_or(0);
        simulate::seg_max_scan_via_primitives(&ByRef(b), &words, segs, value_bits).ok()?
    } else if op == TypeId::of::<Sum>() {
        // The head-copy rides on the composite, so the running totals
        // must fit; if the true sum overflows u64 the software kernels
        // handle the wrapping case instead.
        let total = words.iter().try_fold(0u64, |acc, &w| acc.checked_add(w))?;
        let value_bits = bits_for(total);
        simulate::seg_plus_scan_via_primitives(&ByRef(b), &words, segs, value_bits).ok()?
    } else {
        return None;
    };
    from_words(&out)
}

/// Segment head flags of the reversed vector: a reversed position
/// starts a segment where the original position *ended* one.
fn reversed_segments(segs: &Segments) -> Segments {
    let flags = segs.flags();
    let n = flags.len();
    let rev: Vec<bool> = (0..n)
        .map(|i| {
            let j = n - 1 - i;
            j == n - 1 || flags[j + 1]
        })
        .collect();
    Segments::from_flags(rev)
}

/// Exclusive backward segmented scan by reversing values and segments.
pub(crate) fn seg_scan_backward<O: ScanOp<T>, T: ScanElem>(
    b: &dyn PrimitiveScans,
    a: &[T],
    segs: &Segments,
) -> Option<Vec<T>> {
    if a.len() != segs.len() {
        return None;
    }
    let rev: Vec<T> = a.iter().rev().copied().collect();
    let mut out = seg_scan::<O, T>(b, &rev, &reversed_segments(segs))?;
    out.reverse();
    Some(out)
}

/// Segmented head-copy: mark heads, segmented max-scan, take the
/// running max (every non-head in the marked vector is 0).
pub(crate) fn seg_copy<T: ScanElem>(
    b: &dyn PrimitiveScans,
    a: &[T],
    segs: &Segments,
) -> Option<Vec<T>> {
    let words = to_words(a)?;
    if words.len() != segs.len() {
        return None;
    }
    if words.is_empty() {
        return Some(Vec::new());
    }
    let marked: Vec<u64> = words
        .iter()
        .enumerate()
        .map(|(i, &w)| if segs.is_head(i) { w } else { 0 })
        .collect();
    let value_bits = marked.iter().map(|&w| bits_for(w)).max().unwrap_or(0);
    let excl = simulate::seg_max_scan_via_primitives(&ByRef(b), &marked, segs, value_bits).ok()?;
    let out: Vec<u64> = excl
        .iter()
        .zip(&marked)
        .map(|(&e, &m)| e.max(m))
        .collect();
    from_words(&out)
}

/// Backward segmented head-copy: each segment's *last* element copied
/// across the segment.
pub(crate) fn seg_copy_backward<T: ScanElem>(
    b: &dyn PrimitiveScans,
    a: &[T],
    segs: &Segments,
) -> Option<Vec<T>> {
    if a.len() != segs.len() {
        return None;
    }
    let rev: Vec<T> = a.iter().rev().copied().collect();
    let mut out = seg_copy(b, &rev, &reversed_segments(segs))?;
    out.reverse();
    Some(out)
}

/// Segmented `⊕-distribute`: inclusive segmented scan, then copy each
/// segment's final (total) value backward across the segment.
pub(crate) fn seg_distribute<O: ScanOp<T>, T: ScanElem>(
    b: &dyn PrimitiveScans,
    a: &[T],
    segs: &Segments,
) -> Option<Vec<T>> {
    let excl = seg_scan::<O, T>(b, a, segs)?;
    if excl.len() != a.len() {
        return None;
    }
    let incl: Vec<T> = excl
        .iter()
        .zip(a)
        .map(|(&e, &x)| O::combine(e, x))
        .collect();
    seg_copy_backward(b, &incl, segs)
}

// ----- derived simple operations -----

/// `enumerate` via one backend `+-scan` of the 0/1 flag words.
pub(crate) fn enumerate(b: &dyn PrimitiveScans, flags: &[bool]) -> Vec<usize> {
    let ones: Vec<u64> = flags.iter().map(|&f| u64::from(f)).collect();
    b.plus_scan(&ones).iter().map(|&x| x as usize).collect()
}

/// Backward `enumerate` (count of trues strictly after each position).
pub(crate) fn back_enumerate(b: &dyn PrimitiveScans, flags: &[bool]) -> Vec<usize> {
    let ones: Vec<u64> = flags.iter().rev().map(|&f| u64::from(f)).collect();
    let mut out: Vec<usize> = b.plus_scan(&ones).iter().map(|&x| x as usize).collect();
    out.reverse();
    out
}

/// Count of true flags via the backend scan (exclusive last + last).
pub(crate) fn count(b: &dyn PrimitiveScans, flags: &[bool]) -> usize {
    match flags.last() {
        None => 0,
        Some(&last) => {
            let e = enumerate(b, flags);
            // Clamp: a faulty backend may report an absurd count.
            e.last()
                .map_or(0, |&x| x.saturating_add(usize::from(last)))
                .min(flags.len())
        }
    }
}

/// Defensive permute for backend-derived index vectors: out-of-range
/// destinations (possible only under a faulty backend) are dropped
/// rather than panicking.
fn scatter_permute<T: ScanElem>(a: &[T], idx: &[usize]) -> Vec<T> {
    if a.is_empty() {
        return Vec::new();
    }
    let mut out = vec![a[0]; a.len()];
    for (i, &d) in idx.iter().enumerate() {
        if d < out.len() {
            if let Some(&v) = a.get(i) {
                out[d] = v;
            }
        }
    }
    out
}

/// `pack` (Figure 11): backend enumerate of the keep flags, then
/// scatter the kept elements to their destinations.
pub(crate) fn pack<T: ScanElem>(b: &dyn PrimitiveScans, a: &[T], keep: &[bool]) -> Vec<T> {
    let n = a.len();
    if n == 0 {
        return Vec::new();
    }
    let dest = enumerate(b, keep);
    let total = dest
        .last()
        .map_or(0, |&x| x.saturating_add(usize::from(keep[n - 1])))
        .min(n);
    if total == 0 {
        return Vec::new();
    }
    let mut out = vec![a[0]; total];
    for i in 0..n {
        if keep[i] {
            if let Some(&d) = dest.get(i) {
                if d < total {
                    out[d] = a[i];
                }
            }
        }
    }
    out
}

/// `split` (Figure 3): two backend enumerates build the destination
/// index vector, then one permute.
pub(crate) fn split_count<T: ScanElem>(
    b: &dyn PrimitiveScans,
    a: &[T],
    flags: &[bool],
) -> (Vec<T>, usize) {
    let n = a.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let not_flags: Vec<bool> = flags.iter().map(|&f| !f).collect();
    let i_down = enumerate(b, &not_flags);
    let n_false = i_down
        .last()
        .map_or(0, |&x| x.saturating_add(usize::from(not_flags[n - 1])))
        .min(n);
    let i_true = enumerate(b, flags);
    let idx: Vec<usize> = (0..n)
        .map(|i| {
            if flags[i] {
                n_false.saturating_add(i_true.get(i).copied().unwrap_or(0))
            } else {
                i_down.get(i).copied().unwrap_or(0)
            }
        })
        .collect();
    (scatter_permute(a, &idx), n_false)
}

/// Three-way split: three backend enumerates, one permute.
pub(crate) fn split3<T: ScanElem>(
    b: &dyn PrimitiveScans,
    a: &[T],
    buckets: &[Bucket],
) -> (Vec<T>, usize, usize) {
    let n = a.len();
    if n == 0 {
        return (Vec::new(), 0, 0);
    }
    let lo: Vec<bool> = buckets.iter().map(|&x| x == Bucket::Lo).collect();
    let mid: Vec<bool> = buckets.iter().map(|&x| x == Bucket::Mid).collect();
    let hi: Vec<bool> = buckets.iter().map(|&x| x == Bucket::Hi).collect();
    let lo_scan = enumerate(b, &lo);
    let mid_scan = enumerate(b, &mid);
    let hi_scan = enumerate(b, &hi);
    let n_lo = lo_scan
        .last()
        .map_or(0, |&x| x.saturating_add(usize::from(lo[n - 1])))
        .min(n);
    let n_mid = mid_scan
        .last()
        .map_or(0, |&x| x.saturating_add(usize::from(mid[n - 1])))
        .min(n);
    let rank = |v: &[usize], i: usize| v.get(i).copied().unwrap_or(0);
    let idx: Vec<usize> = (0..n)
        .map(|i| match buckets[i] {
            Bucket::Lo => rank(&lo_scan, i),
            Bucket::Mid => n_lo.saturating_add(rank(&mid_scan, i)),
            Bucket::Hi => n_lo
                .saturating_add(n_mid)
                .saturating_add(rank(&hi_scan, i)),
        })
        .collect();
    (scatter_permute(a, &idx), n_lo, n_mid)
}

/// `flag_merge` (§2.5.1): source ranks from two backend enumerates.
/// Caller has validated lengths and the true-count.
pub(crate) fn flag_merge<T: ScanElem>(
    be: &dyn PrimitiveScans,
    flags: &[bool],
    a: &[T],
    b: &[T],
) -> Vec<T> {
    let n = flags.len();
    if n == 0 {
        return Vec::new();
    }
    let fill = if a.is_empty() { b[0] } else { a[0] };
    let not_flags: Vec<bool> = flags.iter().map(|&f| !f).collect();
    let ia = enumerate(be, &not_flags);
    let ib = enumerate(be, flags);
    (0..n)
        .map(|i| {
            let v = if flags[i] {
                ib.get(i).and_then(|&r| b.get(r))
            } else {
                ia.get(i).and_then(|&r| a.get(r))
            };
            v.copied().unwrap_or(fill)
        })
        .collect()
}

// ----- allocation -----

/// Processor allocation (Figure 8) with the `+-scan` on the backend.
pub(crate) fn allocate(b: &dyn PrimitiveScans, counts: &[usize]) -> Allocation {
    // The clamp total recomputes the sum sequentially; it only guards
    // allocation size against a faulty backend's garbage scan values.
    let true_total: usize = counts.iter().sum();
    let words: Vec<u64> = counts.iter().map(|&c| c as u64).collect();
    let starts_w = b.plus_scan(&words);
    let total = match (starts_w.last(), words.last()) {
        (Some(&s), Some(&w)) => ((s as usize).saturating_add(w as usize)).min(true_total),
        _ => 0,
    };
    let starts: Vec<usize> = starts_w.iter().map(|&s| (s as usize).min(total)).collect();
    let mut flags = vec![false; total];
    for (i, &c) in counts.iter().enumerate() {
        if c > 0 {
            if let Some(f) = starts.get(i).and_then(|&s| flags.get_mut(s)) {
                *f = true;
            }
        }
    }
    Allocation {
        total,
        starts,
        segments: Segments::from_flags(flags),
    }
}

/// Allocate-and-distribute (Figure 8) over the backend: scan for the
/// start pointers, scatter the values, segmented head-copy.
pub(crate) fn distribute<T: ScanElem>(
    b: &dyn PrimitiveScans,
    values: &[T],
    counts: &[usize],
) -> Vec<T> {
    let alloc = allocate(b, counts);
    if alloc.total == 0 || values.is_empty() {
        return Vec::new();
    }
    let mut heads: Vec<T> = vec![values[0]; alloc.total];
    for (i, &c) in counts.iter().enumerate() {
        if c > 0 {
            if let (Some(&s), Some(&v)) = (alloc.starts.get(i), values.get(i)) {
                if s < alloc.total {
                    heads[s] = v;
                }
            }
        }
    }
    seg_copy(b, &heads, &alloc.segments)
        .unwrap_or_else(|| segops::seg_copy(&heads, &alloc.segments))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_core::op::Prod;
    use scan_core::simulate::SoftwareScans;
    use scan_core::{ops, scan as core_scan, segmented};

    fn sw() -> SoftwareScans {
        SoftwareScans
    }

    #[test]
    fn routed_scans_match_software() {
        let a: Vec<u64> = vec![3, 1, 4, 1, 5, 9, 2, 6];
        assert_eq!(
            scan::<Sum, u64>(&sw(), &a).unwrap(),
            core_scan::<Sum, _>(&a)
        );
        assert_eq!(
            scan::<Max, u64>(&sw(), &a).unwrap(),
            core_scan::<Max, _>(&a)
        );
        assert_eq!(
            scan::<Min, u64>(&sw(), &a).unwrap(),
            core_scan::<Min, _>(&a)
        );
        let u: Vec<usize> = vec![2, 7, 1, 8];
        assert_eq!(
            scan::<Sum, usize>(&sw(), &u).unwrap(),
            core_scan::<Sum, _>(&u)
        );
        let s: Vec<i64> = vec![-3, 5, -1, 2];
        assert_eq!(
            scan::<Sum, i64>(&sw(), &s).unwrap(),
            core_scan::<Sum, _>(&s)
        );
        assert_eq!(
            scan::<Min, i64>(&sw(), &s).unwrap(),
            core_scan::<Min, _>(&s)
        );
        let f: Vec<f64> = vec![1.5, -2.0, 0.25, 3.0];
        assert_eq!(
            scan::<Max, f64>(&sw(), &f).unwrap(),
            core_scan::<Max, _>(&f)
        );
        let bools = vec![false, true, false, false, true];
        assert_eq!(
            scan::<Or, bool>(&sw(), &bools).unwrap(),
            core_scan::<Or, _>(&bools)
        );
        assert_eq!(
            scan::<And, bool>(&sw(), &bools).unwrap(),
            core_scan::<And, _>(&bools)
        );
        // No §3.4 construction: falls back.
        assert_eq!(scan::<Prod, u64>(&sw(), &a), None);
        assert_eq!(scan::<Sum, f64>(&sw(), &f), None);
    }

    #[test]
    fn routed_backward_and_total_match_software() {
        let a: Vec<u64> = vec![2, 1, 2, 3, 5];
        assert_eq!(
            scan_backward::<Sum, u64>(&sw(), &a).unwrap(),
            scan_core::scan_backward::<Sum, _>(&a)
        );
        let (excl, total) = scan_with_total::<Sum, u64>(&sw(), &a).unwrap();
        let (e2, t2) = scan_core::scan_with_total::<Sum, _>(&a);
        assert_eq!((excl, total), (e2, t2));
    }

    #[test]
    fn routed_segmented_ops_match_software() {
        let a: Vec<u64> = vec![5, 1, 3, 4, 3, 9, 2, 6];
        let segs = Segments::from_lengths(&[2, 4, 2]);
        assert_eq!(
            seg_scan::<Sum, u64>(&sw(), &a, &segs).unwrap(),
            segmented::seg_scan::<Sum, _>(&a, &segs)
        );
        assert_eq!(
            seg_scan::<Max, u64>(&sw(), &a, &segs).unwrap(),
            segmented::seg_scan::<Max, _>(&a, &segs)
        );
        assert_eq!(
            seg_scan_backward::<Sum, u64>(&sw(), &a, &segs).unwrap(),
            segmented::seg_scan_backward::<Sum, _>(&a, &segs)
        );
        assert_eq!(
            seg_copy(&sw(), &a, &segs).unwrap(),
            segops::seg_copy(&a, &segs)
        );
        assert_eq!(
            seg_distribute::<Sum, u64>(&sw(), &a, &segs).unwrap(),
            segops::seg_distribute::<Sum, _>(&a, &segs)
        );
        assert_eq!(
            seg_distribute::<Max, u64>(&sw(), &a, &segs).unwrap(),
            segops::seg_distribute::<Max, _>(&a, &segs)
        );
    }

    #[test]
    fn routed_derived_ops_match_software() {
        let flags = vec![true, false, false, true, false, true, true, false];
        assert_eq!(enumerate(&sw(), &flags), ops::enumerate(&flags));
        assert_eq!(back_enumerate(&sw(), &flags), ops::back_enumerate(&flags));
        assert_eq!(count(&sw(), &flags), ops::count(&flags));
        let a = [5u32, 7, 3, 1, 4, 2, 7, 2];
        assert_eq!(pack(&sw(), &a, &flags), ops::pack(&a, &flags));
        assert_eq!(split_count(&sw(), &a, &flags), ops::split_count(&a, &flags));
        use Bucket::*;
        let buckets = [Lo, Hi, Mid, Lo, Hi, Mid, Lo, Hi];
        assert_eq!(split3(&sw(), &a, &buckets), ops::split3(&a, &buckets));
        let m_flags = [false, true, true, false, true];
        let (xs, ys) = ([1u32, 4], [2u32, 3, 5]);
        assert_eq!(
            flag_merge(&sw(), &m_flags, &xs, &ys),
            ops::flag_merge(&m_flags, &xs, &ys)
        );
    }

    #[test]
    fn routed_allocation_matches_software() {
        let counts = [4usize, 0, 1, 3];
        let routed = allocate(&sw(), &counts);
        let soft = scan_core::allocate(&counts);
        assert_eq!(routed, soft);
        assert_eq!(
            distribute(&sw(), &[9u32, 8, 1, 2], &counts),
            scan_core::distribute(&[9u32, 8, 1, 2], &counts)
        );
    }

    /// A backend that returns garbage: huge values of the wrong length.
    struct Garbage;
    impl PrimitiveScans for Garbage {
        fn plus_scan(&self, a: &[u64]) -> Vec<u64> {
            vec![u64::MAX; a.len() / 2 + 1]
        }
        fn max_scan(&self, a: &[u64]) -> Vec<u64> {
            vec![u64::MAX - 1; a.len() + 3]
        }
    }

    #[test]
    fn garbage_backend_never_panics_or_overallocates() {
        let a = [5u64, 7, 3, 1];
        let flags = [true, false, true, false];
        // Results are wrong (that's the point of a faulty backend) but
        // every call stays in-bounds and panic-free.
        let _ = scan::<Sum, u64>(&Garbage, &a);
        let _ = scan::<Min, u64>(&Garbage, &a);
        let _ = enumerate(&Garbage, &flags);
        assert!(count(&Garbage, &flags) <= flags.len());
        let p = pack(&Garbage, &a, &flags);
        assert!(p.len() <= a.len());
        let (s, nf) = split_count(&Garbage, &a, &flags);
        assert_eq!(s.len(), a.len());
        assert!(nf <= a.len());
        let al = allocate(&Garbage, &[3, 1, 2]);
        assert!(al.total <= 6);
        let d = distribute(&Garbage, &[1u64, 2, 3], &[3, 1, 2]);
        assert!(d.len() <= 6);
    }

    #[test]
    fn reversed_segments_mark_old_ends() {
        let segs = Segments::from_lengths(&[2, 3, 1]);
        let rev = reversed_segments(&segs);
        assert_eq!(rev.lengths(), vec![1, 3, 2]);
    }
}
