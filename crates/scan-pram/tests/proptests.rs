//! Property tests for the machine models: results must be independent
//! of the model and the processor count; only step charges may differ,
//! and they must differ in the documented directions.

use proptest::prelude::*;
use scan_core::op::Sum;
use scan_pram::{BlockedVec, Ctx, Model};

proptest! {
    #[test]
    fn blocked_scan_matches_flat_for_any_processor_count(
        data in proptest::collection::vec(0u64..1_000_000, 0..300),
        p in 1usize..40,
    ) {
        let blocked = BlockedVec::new(data.clone(), p);
        prop_assert_eq!(
            blocked.scan::<Sum>().into_data(),
            scan_core::scan::<Sum, _>(&data)
        );
    }

    #[test]
    fn load_balance_preserves_order(
        data in proptest::collection::vec(any::<u32>(), 0..200),
        p in 1usize..20,
        seed in any::<u64>(),
    ) {
        let keep: Vec<bool> = (0..data.len())
            .map(|i| (seed >> (i % 64)) & 1 == 1)
            .collect();
        let v = BlockedVec::new(data.clone(), p);
        let balanced = v.load_balance(&keep);
        let expect: Vec<u32> = data
            .iter()
            .zip(&keep)
            .filter(|(_, &k)| k)
            .map(|(&x, _)| x)
            .collect();
        prop_assert_eq!(balanced.data(), expect.as_slice());
        // Blocks stay balanced: max block ≤ ⌈m/p⌉.
        let m = balanced.len();
        prop_assert!(balanced.max_block_len() <= m.div_ceil(p).max(1));
    }

    #[test]
    fn results_are_model_independent(
        data in proptest::collection::vec(any::<u64>(), 1..200),
        seed in any::<u64>(),
    ) {
        let flags: Vec<bool> = (0..data.len())
            .map(|i| (seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15)).is_multiple_of(3))
            .collect();
        let mut results = Vec::new();
        for model in Model::ALL {
            let mut ctx = Ctx::new(model);
            let s = ctx.scan::<Sum, _>(&data);
            let sp = ctx.split(&data, &flags);
            let pk = ctx.pack(&data, &flags);
            results.push((s, sp, pk));
        }
        prop_assert!(results.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn scan_model_never_costs_more_than_erew(
        n in 1usize..5000,
        p in 1usize..512,
    ) {
        prop_assert!(Model::Scan.scan_cost(n, p) <= Model::Erew.scan_cost(n, p));
        prop_assert_eq!(
            Model::Scan.elementwise_cost(n, p),
            Model::Erew.elementwise_cost(n, p)
        );
    }

    #[test]
    fn costs_decrease_with_more_processors(n in 1usize..10_000) {
        for model in Model::ALL {
            let mut prev = u64::MAX;
            for p in [1usize, 2, 4, 16, 64, 1024] {
                let c = model.scan_cost(n, p);
                prop_assert!(c <= prev, "{} cost grew at p={p}", model.name());
                prev = c;
            }
        }
    }

    #[test]
    fn fewer_processors_cost_more_steps_but_same_result(
        data in proptest::collection::vec(0u64..1000, 64..400),
    ) {
        let mut few = Ctx::with_processors(Model::Scan, 4);
        let mut many = Ctx::with_processors(Model::Scan, 1024);
        let a = few.scan::<Sum, _>(&data);
        let b = many.scan::<Sum, _>(&data);
        prop_assert_eq!(a, b);
        prop_assert!(few.steps() >= many.steps());
    }

    #[test]
    fn merge_primitive_never_increases_cost(n in 1usize..5000, p in 1usize..256) {
        for model in Model::ALL {
            prop_assert!(
                model.merge_cost(n, p, true) <= model.merge_cost(n, p, false)
            );
        }
    }
}
