//! Sparse matrix–vector multiply with segmented sums — the canonical
//! segmented-scan application (the paper's §2.3 machinery on the
//! workload its companion work \[7] popularized).
//!
//! A CSR-like layout maps directly onto the segmented vector
//! representation: one segment per row, one element per nonzero. The
//! product is: gather `x` through the column indices, multiply
//! elementwise, and one segmented `+`-reduce — a constant number of
//! program steps regardless of the sparsity structure.

use scan_core::op::Sum;
use scan_core::segmented::Segments;
use scan_pram::{Ctx, Model};

/// A sparse matrix in row-segmented form.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Nonzeros per row (rows may be empty).
    pub row_lengths: Vec<usize>,
    /// Column index of each nonzero, rows concatenated.
    pub col_indices: Vec<usize>,
    /// Value of each nonzero.
    pub values: Vec<f64>,
}

impl SparseMatrix {
    /// Build from a triplet list `(row, col, value)`. Triplets are
    /// sorted with the split radix sort, per the paper's recipe for
    /// building segmented representations.
    ///
    /// # Panics
    /// If an index is out of range.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> SparseMatrix {
        for &(r, c, _) in triplets {
            assert!(r < rows && c < cols, "triplet out of range");
        }
        let keys: Vec<u64> = triplets.iter().map(|&(r, _, _)| r as u64).collect();
        let ids: Vec<u64> = (0..triplets.len() as u64).collect();
        let bits = 64 - (rows.max(2) as u64 - 1).leading_zeros();
        let (sorted_rows, order) =
            crate::sort::radix::split_radix_sort_pairs(&keys, &ids, bits);
        let mut row_lengths = vec![0usize; rows];
        for &r in &sorted_rows {
            row_lengths[r as usize] += 1;
        }
        SparseMatrix {
            rows,
            cols,
            row_lengths,
            col_indices: order.iter().map(|&i| triplets[i as usize].1).collect(),
            values: order.iter().map(|&i| triplets[i as usize].2).collect(),
        }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row segmentation of the nonzero vector.
    pub fn segments(&self) -> Segments {
        Segments::from_lengths(&self.row_lengths)
    }

    /// `y = A x` on a step-counting machine: one gather, one multiply,
    /// one segmented reduce — `O(1)` program steps, `O(nnz/p)` with
    /// blocked processors.
    pub fn spmv_ctx(&self, ctx: &mut Ctx, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let gathered = ctx.gather(x, &self.col_indices);
        let products = ctx.zip(&self.values, &gathered, |a, b| a * b);
        let segs = self.segments();
        ctx.charge_seg_scan_op(self.nnz());
        let sums = scan_core::segops::seg_reduce::<Sum, _>(&products, &segs);
        // Scatter per-row sums back to row indices (empty rows → 0).
        let mut y = vec![0.0; self.rows];
        let mut k = 0;
        for (r, &len) in self.row_lengths.iter().enumerate() {
            if len > 0 {
                y[r] = sums[k];
                k += 1;
            }
        }
        ctx.charge_permute_op(self.rows);
        y
    }

    /// `y = A x` with the default scan-model machine.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        let mut ctx = Ctx::new(Model::Scan);
        self.spmv_ctx(&mut ctx, x)
    }

    /// Dense reference multiply, for verification.
    pub fn spmv_reference(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        let mut k = 0;
        for (r, &len) in self.row_lengths.iter().enumerate() {
            for _ in 0..len {
                y[r] += self.values[k] * x[self.col_indices[k]];
                k += 1;
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> SparseMatrix {
        // [ 2 0 1 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        SparseMatrix::from_triplets(
            3,
            3,
            &[(0, 0, 2.0), (2, 1, 4.0), (0, 2, 1.0), (2, 0, 3.0)],
        )
    }

    #[test]
    fn small_spmv() {
        let a = example();
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.spmv(&[1.0, 10.0, 100.0]), vec![102.0, 0.0, 43.0]);
    }

    #[test]
    fn triplets_sorted_into_rows() {
        let a = example();
        assert_eq!(a.row_lengths, vec![2, 0, 2]);
        // Row 0's nonzeros appear before row 2's.
        assert_eq!(a.col_indices.len(), 4);
    }

    #[test]
    fn matches_reference_on_random_matrices() {
        let mut s = 31u64;
        let mut rng = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(17);
            s >> 33
        };
        for _ in 0..10 {
            let rows = 1 + (rng() % 40) as usize;
            let cols = 1 + (rng() % 40) as usize;
            let nnz = (rng() % 200) as usize;
            let triplets: Vec<(usize, usize, f64)> = (0..nnz)
                .map(|_| {
                    (
                        (rng() as usize) % rows,
                        (rng() as usize) % cols,
                        (rng() % 100) as f64 / 10.0 - 5.0,
                    )
                })
                .collect();
            let a = SparseMatrix::from_triplets(rows, cols, &triplets);
            let x: Vec<f64> = (0..cols).map(|_| (rng() % 100) as f64 / 7.0).collect();
            let got = a.spmv(&x);
            let expect = a.spmv_reference(&x);
            for (g, e) in got.iter().zip(&expect) {
                assert!((g - e).abs() < 1e-9, "{got:?} vs {expect:?}");
            }
        }
    }

    #[test]
    fn empty_matrix_and_empty_rows() {
        let a = SparseMatrix::from_triplets(3, 3, &[]);
        assert_eq!(a.spmv(&[1.0, 2.0, 3.0]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn constant_step_count() {
        // O(1) vector ops regardless of size or structure.
        let ops_for = |rows: usize| {
            let triplets: Vec<(usize, usize, f64)> =
                (0..rows).map(|r| (r, r % 7, 1.0)).collect();
            let a = SparseMatrix::from_triplets(rows, 7, &triplets);
            let mut ctx = Ctx::new(Model::Scan);
            a.spmv_ctx(&mut ctx, &[1.0; 7]);
            ctx.stats().ops()
        };
        assert_eq!(ops_for(32), ops_for(4096));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_x_length_rejected() {
        example().spmv(&[1.0]);
    }
}
