//! Sorting: the paper's split radix sort (§2.2.1) and segmented
//! quicksort (§2.3.1), plus Batcher's bitonic sort as the Table 4
//! comparison baseline.

pub mod bitonic;
pub mod fused_radix;
pub mod mergesort;
pub mod quicksort;
pub mod radix;

pub use bitonic::bitonic_sort;
pub use fused_radix::{fused_radix_sort, fused_radix_sort_digits, try_fused_radix_sort};
pub use mergesort::merge_sort;
pub use quicksort::{quicksort, PivotRule};
pub use radix::{split_radix_sort, split_radix_sort_pairs, try_split_radix_sort};
