//! Multi-digit split radix sort on the fused `multi_split` engine.
//!
//! Algorithmically identical to
//! [`split_radix_sort_digits_ctx`][crate::sort::radix::split_radix_sort_digits_ctx]
//! — `⌈key_bits / digit_bits⌉` stable passes over `2^digit_bits`
//! buckets — but each pass runs as ONE fused histogram / scan /
//! scatter ([`scan_core::multi_split`]) over ping-pong buffers instead
//! of `2^w` whole-vector enumerate-scans, cutting the per-pass work
//! from `O(2^w · n)` to `O(n + blocks · 2^w)`. Step charges on the
//! `Ctx` machine are unchanged (see [`Ctx::multi_split`][Ctx]): fusion
//! is an execution detail, not a different scan-model algorithm.

use scan_core::multi_split::{multi_split_into, try_multi_split_into, MultiSplitScratch};
use scan_core::{Error, Result};
use scan_pram::{Ctx, Model};

/// Typed width check shared by the `try_*` sorts: every key must fit
/// in `key_bits` bits.
pub(crate) fn check_key_width(keys: &[u64], key_bits: u32) -> Result<()> {
    match keys.iter().find(|&&k| key_bits < 64 && k >> key_bits != 0) {
        Some(&bad) => Err(Error::WidthOverflow {
            required: 64 - bad.leading_zeros(),
            available: key_bits,
        }),
        None => Ok(()),
    }
}

/// Fused multi-digit split radix sort on a step-counting machine,
/// ascending and stable. Charges the same steps per pass as the
/// unfused multi-digit schedule (`2^w` scans, `2^w + 2` elementwise,
/// one permute), so Table 1/Table 4 accounting is identical.
///
/// # Panics
/// If a key exceeds `key_bits` bits, or `digit_bits` is 0 or > 16.
pub fn fused_radix_sort_digits_ctx(
    ctx: &mut Ctx,
    keys: &[u64],
    key_bits: u32,
    digit_bits: u32,
) -> Vec<u64> {
    assert!((1..=16).contains(&digit_bits), "digit width must be 1..=16");
    if let Some(&bad) = keys.iter().find(|&&k| key_bits < 64 && k >> key_bits != 0) {
        panic!("key {bad} does not fit in {key_bits} bits");
    }
    let n = keys.len();
    let buckets = 1usize << digit_bits;
    let mask = (buckets - 1) as u64;
    let mut a = keys.to_vec();
    let mut b = keys.to_vec();
    let mut scratch = MultiSplitScratch::new();
    let mut shift = 0;
    while shift < key_bits {
        // Same charges as the enumerate-per-bucket schedule (see
        // `Ctx::multi_split`): digit map, per-bucket flag + enumerate,
        // destination arithmetic, scatter.
        ctx.charge_elementwise_op(n);
        for _ in 0..buckets {
            ctx.charge_elementwise_op(n);
            ctx.charge_scan_op(n);
        }
        ctx.charge_elementwise_op(n);
        ctx.charge_permute_op(n);
        multi_split_into(
            &a,
            &mut b,
            buckets,
            move |k| ((k >> shift) & mask) as usize,
            &mut scratch,
        );
        core::mem::swap(&mut a, &mut b);
        shift += digit_bits;
    }
    a
}

/// Fused multi-digit sort with the default scan-model machine.
pub fn fused_radix_sort_digits(keys: &[u64], key_bits: u32, digit_bits: u32) -> Vec<u64> {
    let mut ctx = Ctx::new(Model::Scan);
    fused_radix_sort_digits_ctx(&mut ctx, keys, key_bits, digit_bits)
}

/// Fused radix sort with the default digit width (8-bit digits, capped
/// at `key_bits`) — the engine's production sort path.
pub fn fused_radix_sort(keys: &[u64], key_bits: u32) -> Vec<u64> {
    fused_radix_sort_digits(keys, key_bits, key_bits.clamp(1, 8))
}

/// Fused stable sort of `(key, payload)` pairs by key.
///
/// # Panics
/// Like [`fused_radix_sort_digits`], plus a length mismatch between
/// `keys` and `payloads`.
pub fn fused_radix_sort_pairs_digits(
    keys: &[u64],
    payloads: &[u64],
    key_bits: u32,
    digit_bits: u32,
) -> (Vec<u64>, Vec<u64>) {
    assert!((1..=16).contains(&digit_bits), "digit width must be 1..=16");
    assert_eq!(keys.len(), payloads.len(), "pairs length mismatch");
    if let Some(&bad) = keys.iter().find(|&&k| key_bits < 64 && k >> key_bits != 0) {
        panic!("key {bad} does not fit in {key_bits} bits");
    }
    let buckets = 1usize << digit_bits;
    let mask = (buckets - 1) as u64;
    let mut a: Vec<(u64, u64)> = keys.iter().copied().zip(payloads.iter().copied()).collect();
    let mut b = a.clone();
    let mut scratch = MultiSplitScratch::new();
    let mut shift = 0;
    while shift < key_bits {
        multi_split_into(
            &a,
            &mut b,
            buckets,
            move |(k, _)| ((k >> shift) & mask) as usize,
            &mut scratch,
        );
        core::mem::swap(&mut a, &mut b);
        shift += digit_bits;
    }
    (
        a.iter().map(|&(k, _)| k).collect(),
        a.iter().map(|&(_, v)| v).collect(),
    )
}

/// Checked fused sort: typed errors instead of panics for data-
/// dependent failures — [`Error::WidthOverflow`] for a key that does
/// not fit `key_bits`, [`Error::Exec`] when the ambient
/// [`ScanDeadline`][scan_core::ScanDeadline] expires or a key-function
/// panic is contained by the pool.
///
/// # Panics
/// Only on the static contract: `digit_bits` 0 or > 16.
pub fn try_fused_radix_sort_digits(
    keys: &[u64],
    key_bits: u32,
    digit_bits: u32,
) -> Result<Vec<u64>> {
    assert!((1..=16).contains(&digit_bits), "digit width must be 1..=16");
    scan_core::deadline::checkpoint()?;
    check_key_width(keys, key_bits)?;
    let buckets = 1usize << digit_bits;
    let mask = (buckets - 1) as u64;
    let mut a = keys.to_vec();
    let mut b = keys.to_vec();
    let mut scratch = MultiSplitScratch::new();
    let mut shift = 0;
    while shift < key_bits {
        try_multi_split_into(
            &a,
            &mut b,
            buckets,
            move |k| ((k >> shift) & mask) as usize,
            &mut scratch,
        )?;
        core::mem::swap(&mut a, &mut b);
        shift += digit_bits;
    }
    Ok(a)
}

/// Checked fused sort with the default digit width.
pub fn try_fused_radix_sort(keys: &[u64], key_bits: u32) -> Result<Vec<u64>> {
    try_fused_radix_sort_digits(keys, key_bits, key_bits.clamp(1, 8))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::radix::split_radix_sort_digits_ctx;
    use scan_core::{deadline, ExecError, ScanDeadline};

    fn keys(seed: u64, n: usize, bits: u32) -> Vec<u64> {
        let mask = if bits >= 64 { u64::MAX } else { (1 << bits) - 1 };
        let mut x = seed;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x & mask
            })
            .collect()
    }

    #[test]
    fn sorts_for_every_width() {
        let ks = keys(5, 600, 16);
        let mut expect = ks.clone();
        expect.sort_unstable();
        for w in [1u32, 2, 3, 4, 8, 11, 16] {
            assert_eq!(fused_radix_sort_digits(&ks, 16, w), expect, "w={w}");
        }
        assert_eq!(fused_radix_sort(&ks, 16), expect);
    }

    #[test]
    fn matches_legacy_path_and_charges() {
        let ks = keys(77, 256, 16);
        let mut fused_ctx = Ctx::new(Model::Scan);
        let mut legacy_ctx = Ctx::new(Model::Scan);
        for w in [1u32, 4, 8] {
            fused_ctx.reset_stats();
            legacy_ctx.reset_stats();
            let fused = fused_radix_sort_digits_ctx(&mut fused_ctx, &ks, 16, w);
            let legacy = split_radix_sort_digits_ctx(&mut legacy_ctx, &ks, 16, w);
            assert_eq!(fused, legacy, "w={w}");
            assert_eq!(
                fused_ctx.steps(),
                legacy_ctx.steps(),
                "fusion must not change scan-model accounting (w={w})"
            );
        }
    }

    #[test]
    fn stability_via_pairs() {
        let ks = [3u64, 1, 3, 1, 3];
        let payloads = [0u64, 1, 2, 3, 4];
        let (k, v) = fused_radix_sort_pairs_digits(&ks, &payloads, 2, 1);
        assert_eq!(k, vec![1, 1, 3, 3, 3]);
        assert_eq!(v, vec![1, 3, 0, 2, 4]);
    }

    #[test]
    fn empty_single_and_zero_bits() {
        assert!(fused_radix_sort(&[], 8).is_empty());
        assert_eq!(fused_radix_sort(&[9], 8), vec![9]);
        assert_eq!(fused_radix_sort(&[0, 0, 0], 0), vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_key_panics() {
        fused_radix_sort(&[256], 8);
    }

    #[test]
    fn try_reports_oversized_key() {
        assert_eq!(
            try_fused_radix_sort(&[256], 8),
            Err(Error::WidthOverflow {
                required: 9,
                available: 8
            })
        );
    }

    #[test]
    fn try_honors_cancellation() {
        let ks = keys(9, 50_000, 16);
        let d = ScanDeadline::manual();
        d.cancel();
        let r = deadline::with_deadline(&d, || try_fused_radix_sort(&ks, 16));
        assert_eq!(r, Err(Error::Exec(ExecError::Cancelled)));
    }

    #[test]
    fn try_matches_infallible_when_unbounded() {
        let ks = keys(13, 4096, 24);
        assert_eq!(try_fused_radix_sort(&ks, 24).unwrap(), fused_radix_sort(&ks, 24));
    }
}
