//! Segmented parallel quicksort (§2.3.1, Figure 5).
//!
//! "The basic intuition of the parallel version is to keep each subset
//! in its own segment, and to pick pivot values and split the keys
//! independently within each segment." Each iteration is a constant
//! number of scan-model steps, and with random pivots the expected
//! iteration count is `O(lg n)` — so expected `O(lg n)` step
//! complexity.

use scan_core::op::{And, Max, Sum};
use scan_core::ops::Bucket;
use scan_core::segmented::Segments;
use scan_pram::{Ctx, Model};

use crate::util::hash64;

/// How the pivot of each segment is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PivotRule {
    /// The first element of the segment (Figure 5's choice).
    First,
    /// A uniformly random element of the segment, derived from the
    /// given seed — the paper's suggestion for the `O(lg n)` expected
    /// bound.
    Random(u64),
}

/// The result of a quicksort run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuicksortRun {
    /// Sorted keys.
    pub keys: Vec<u64>,
    /// Iterations of the pick-pivot/split loop executed.
    pub iterations: usize,
}


/// Segmented quicksort on a step-counting machine.
pub fn quicksort_ctx(ctx: &mut Ctx, keys: &[u64], rule: PivotRule) -> QuicksortRun {
    let n = keys.len();
    if n <= 1 {
        return QuicksortRun {
            keys: keys.to_vec(),
            iterations: 0,
        };
    }
    let mut keys = keys.to_vec();
    let mut segs = Segments::single(n);
    let mut iterations = 0usize;
    // 4n + 64 is far beyond the worst case (first-element pivots on a
    // pathological order take O(n) iterations); exceeding it is a bug.
    let cap = 4 * n + 64;
    loop {
        // Step 1: exit if sorted. Each processor checks its left
        // neighbor; an and-distribute tells everyone the verdict.
        let shifted = ctx.shift_right(&keys, 0u64);
        let ok = ctx.zip(&shifted, &keys, |p, k| p <= k);
        if ctx.reduce::<And, _>(&ok) {
            break;
        }
        assert!(iterations < cap, "quicksort failed to converge");
        iterations += 1;
        // Step 2: pick a pivot within each segment and distribute it.
        let pivots = match rule {
            PivotRule::First => ctx.seg_copy(&keys, &segs),
            PivotRule::Random(seed) => {
                // A random number in the first element of each segment,
                // modulo the segment length, picks the element; a
                // max-distribute of the marked key broadcasts it.
                let idx = ctx.iota(n);
                let rands = ctx.map(&idx, |i| {
                    hash64(seed ^ (iterations as u64) << 32 ^ i as u64)
                });
                let r_head = ctx.seg_copy(&rands, &segs);
                let ones = ctx.constant(n, 1usize);
                let lens = ctx.seg_distribute::<Sum, _>(&ones, &segs);
                let base = segs.head_index_per_element();
                let target: Vec<usize> = (0..n)
                    .map(|i| base[i] + (r_head[i] as usize % lens[i]))
                    .collect();
                ctx.zip(&idx, &target, |i, t| i == t); // charge the compare
                let marked: Vec<u64> = (0..n)
                    .map(|i| if i == target[i] { keys[i] } else { 0 })
                    .collect();
                ctx.seg_distribute::<Max, _>(&marked, &segs)
            }
        };
        // Step 3: compare with the pivot; step 4: split into three
        // groups and insert new segment flags at the group boundaries.
        let buckets = ctx.zip(&keys, &pivots, |k, p| {
            if k < p {
                Bucket::Lo
            } else if k == p {
                Bucket::Mid
            } else {
                Bucket::Hi
            }
        });
        let r = ctx.seg_split3(&keys, &buckets, &segs);
        keys = r.values;
        segs = r.segments;
    }
    QuicksortRun { keys, iterations }
}

/// Quicksort with the default scan-model machine.
pub fn quicksort(keys: &[u64], rule: PivotRule) -> Vec<u64> {
    let mut ctx = Ctx::new(Model::Scan);
    quicksort_ctx(&mut ctx, keys, rule).keys
}

/// Quicksort for floats via the monotone key transform of §3.4.
pub fn quicksort_f64(keys: &[f64], rule: PivotRule) -> Vec<f64> {
    let keyed: Vec<u64> = keys.iter().map(|&x| scan_core::simulate::f64_key(x)).collect();
    quicksort(&keyed, rule)
        .into_iter()
        .map(scan_core::simulate::f64_unkey)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_sorts(keys: &[u64], rule: PivotRule) -> usize {
        let mut ctx = Ctx::new(Model::Scan);
        let run = quicksort_ctx(&mut ctx, keys, rule);
        let mut expect = keys.to_vec();
        expect.sort_unstable();
        assert_eq!(run.keys, expect);
        run.iterations
    }

    #[test]
    fn figure5_first_iteration() {
        // Keys from Figure 5 (scaled ×10 to keep them integral).
        let keys = [64u64, 92, 34, 16, 87, 41, 92, 34];
        let segs = Segments::single(8);
        let mut ctx = Ctx::new(Model::Scan);
        let pivots = ctx.seg_copy(&keys, &segs);
        assert_eq!(pivots, vec![64; 8]);
        let buckets: Vec<Bucket> = keys
            .iter()
            .map(|&k| {
                if k < 64 {
                    Bucket::Lo
                } else if k == 64 {
                    Bucket::Mid
                } else {
                    Bucket::Hi
                }
            })
            .collect();
        let r = ctx.seg_split3(&keys, &buckets, &segs);
        // Figure 5: [3.4 1.6 4.1 3.4 | 6.4 | 9.2 8.7 9.2]
        assert_eq!(r.values, vec![34, 16, 41, 34, 64, 92, 87, 92]);
        assert_eq!(
            r.segments.flags(),
            &[true, false, false, false, true, true, false, false]
        );
    }

    #[test]
    fn figure5_full_sort() {
        let keys = [64u64, 92, 34, 16, 87, 41, 92, 34];
        assert_eq!(
            quicksort(&keys, PivotRule::First),
            vec![16, 34, 34, 41, 64, 87, 92, 92]
        );
    }

    #[test]
    fn sorts_random_first_pivot() {
        let mut x = 7u64;
        let keys: Vec<u64> = (0..500)
            .map(|_| {
                x = x.wrapping_mul(48271) % 0x7FFFFFFF;
                x % 1000
            })
            .collect();
        assert_sorts(&keys, PivotRule::First);
    }

    #[test]
    fn sorts_random_random_pivot() {
        let mut x = 13u64;
        let keys: Vec<u64> = (0..500)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                x >> 40
            })
            .collect();
        assert_sorts(&keys, PivotRule::Random(99));
    }

    #[test]
    fn expected_logarithmic_iterations() {
        let mut x = 3u64;
        let keys: Vec<u64> = (0..4096)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                x >> 16
            })
            .collect();
        let iters = assert_sorts(&keys, PivotRule::Random(5));
        // lg 4096 = 12; random pivots land within a small constant of it.
        assert!(iters <= 4 * 12, "took {iters} iterations");
    }

    #[test]
    fn already_sorted_exits_immediately() {
        let keys: Vec<u64> = (0..100).collect();
        let mut ctx = Ctx::new(Model::Scan);
        let run = quicksort_ctx(&mut ctx, &keys, PivotRule::First);
        assert_eq!(run.iterations, 0);
    }

    #[test]
    fn all_equal_keys() {
        let keys = vec![7u64; 64];
        let iters = assert_sorts(&keys, PivotRule::First);
        assert_eq!(iters, 0, "equal keys are already sorted");
    }

    #[test]
    fn reverse_sorted_worst_case_still_sorts() {
        let keys: Vec<u64> = (0..128).rev().collect();
        assert_sorts(&keys, PivotRule::First);
        assert_sorts(&keys, PivotRule::Random(1));
    }

    #[test]
    fn duplicates_heavy() {
        let keys: Vec<u64> = (0..300).map(|i| i % 3).collect();
        assert_sorts(&keys, PivotRule::Random(17));
    }

    #[test]
    fn empty_and_single() {
        assert!(quicksort(&[], PivotRule::First).is_empty());
        assert_eq!(quicksort(&[5], PivotRule::First), vec![5]);
    }

    #[test]
    fn float_variant() {
        let keys = [3.5f64, -1.25, 0.0, 9.75, -100.0];
        assert_eq!(
            quicksort_f64(&keys, PivotRule::First),
            vec![-100.0, -1.25, 0.0, 3.5, 9.75]
        );
    }
}
