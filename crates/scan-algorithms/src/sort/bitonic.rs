//! Batcher's bitonic sort — the baseline the paper compares the split
//! radix sort against (Table 4), "commonly cited as the most practical
//! parallel sorting algorithm".
//!
//! The network has `lg n (lg n + 1)/2` compare-exchange stages; each
//! stage is one elementwise compare plus one permute-distance exchange,
//! so the step complexity is `O(lg² n)` on every model — scans don't
//! help it, which is exactly why it is the right yardstick.

use scan_pram::{Ctx, Model};

/// Bitonic sort on a step-counting machine. Ascending; the input is
/// padded to a power of two with `u64::MAX` internally.
pub fn bitonic_sort_ctx(ctx: &mut Ctx, keys: &[u64]) -> Vec<u64> {
    let n_orig = keys.len();
    if n_orig <= 1 {
        return keys.to_vec();
    }
    let n = n_orig.next_power_of_two();
    let mut a = keys.to_vec();
    a.resize(n, u64::MAX);
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j > 0 {
            // One network stage: every element fetches its partner
            // (one exchange round — `i ^ j` is a permutation) and keeps
            // the min or the max depending on its position.
            let idx: Vec<usize> = (0..n).map(|i| i ^ j).collect();
            let partner = ctx.gather(&a, &idx);
            let take_min: Vec<bool> = (0..n).map(|i| (i & j == 0) == (i & k == 0)).collect();
            let mins = ctx.zip(&a, &partner, |x, y| x.min(y));
            let maxs = ctx.zip(&a, &partner, |x, y| x.max(y));
            a = ctx.select(&take_min, &mins, &maxs);
            j /= 2;
        }
        k *= 2;
    }
    a.truncate(n_orig);
    a
}

/// Bitonic sort with the default scan-model machine.
pub fn bitonic_sort(keys: &[u64]) -> Vec<u64> {
    let mut ctx = Ctx::new(Model::Scan);
    bitonic_sort_ctx(&mut ctx, keys)
}

/// Number of compare-exchange stages the network executes for `n` keys.
pub fn bitonic_stage_count(n: usize) -> u64 {
    if n <= 1 {
        return 0;
    }
    let lg = (n.next_power_of_two().trailing_zeros()) as u64;
    lg * (lg + 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_pram::StepKind;

    #[test]
    fn sorts_random() {
        let mut x = 9u64;
        let keys: Vec<u64> = (0..777)
            .map(|_| {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                x >> 30
            })
            .collect();
        let got = bitonic_sort(&keys);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn stage_count_matches_formula() {
        let keys: Vec<u64> = (0..256).rev().collect();
        let mut ctx = Ctx::new(Model::Scan);
        bitonic_sort_ctx(&mut ctx, &keys);
        assert_eq!(
            ctx.stats().ops_of(StepKind::Permute),
            bitonic_stage_count(256)
        );
        assert_eq!(bitonic_stage_count(256), 36); // 8·9/2
    }

    #[test]
    fn non_power_of_two() {
        let keys = [5u64, 3, 9, 1, 7];
        assert_eq!(bitonic_sort(&keys), vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn empty_single_and_pair() {
        assert!(bitonic_sort(&[]).is_empty());
        assert_eq!(bitonic_sort(&[4]), vec![4]);
        assert_eq!(bitonic_sort(&[4, 2]), vec![2, 4]);
    }

    #[test]
    fn max_values_survive_padding() {
        let keys = [u64::MAX, 0, u64::MAX - 1];
        assert_eq!(bitonic_sort(&keys), vec![0, u64::MAX - 1, u64::MAX]);
    }

    #[test]
    fn scans_do_not_help_bitonic() {
        // The same step count under Scan and EREW models (no scans used).
        let keys: Vec<u64> = (0..128).rev().collect();
        let mut s = Ctx::new(Model::Scan);
        let mut e = Ctx::new(Model::Erew);
        bitonic_sort_ctx(&mut s, &keys);
        bitonic_sort_ctx(&mut e, &keys);
        assert_eq!(s.steps(), e.steps());
    }
}
