//! The split radix sort (§2.2.1, Figure 2).
//!
//! "The algorithm loops over the bits of the keys, starting at the
//! lowest bit, executing a `split` operation on each iteration." Each
//! `split` is a constant number of program steps in the scan model, so
//! sorting `d`-bit keys takes `O(d)` steps — `O(lg n)` when keys are
//! `O(lg n)` bits. This is the sort the Connection Machine's
//! instruction set shipped.

use scan_pram::{Ctx, Model};

/// Split radix sort of unsigned keys, ascending and stable, on a
/// step-counting machine. Only the low `key_bits` bits participate;
/// higher bits must be zero.
///
/// # Panics
/// If a key has a set bit at or above `key_bits`.
pub fn split_radix_sort_ctx(ctx: &mut Ctx, keys: &[u64], key_bits: u32) -> Vec<u64> {
    if let Some(&bad) = keys.iter().find(|&&k| key_bits < 64 && k >> key_bits != 0) {
        panic!("key {bad} does not fit in {key_bits} bits");
    }
    let mut a = keys.to_vec();
    // define split-radix-sort(A, number-of-bits):
    //   for i from 0 to (number-of-bits − 1): A ← split(A, A⟨i⟩)
    for i in 0..key_bits {
        let flags = ctx.map(&a, |k| (k >> i) & 1 == 1);
        a = ctx.split(&a, &flags);
    }
    a
}

/// Split radix sort with the default scan-model machine.
pub fn split_radix_sort(keys: &[u64], key_bits: u32) -> Vec<u64> {
    let mut ctx = Ctx::new(Model::Scan);
    split_radix_sort_ctx(&mut ctx, keys, key_bits)
}

/// Multi-digit split radix sort: processes `digit_bits` key bits per
/// pass with a `2^digit_bits`-way split (one enumerate per bucket) —
/// the standard Connection Machine refinement of §2.2.1's one-bit
/// split. `digit_bits = 1` reduces to [`split_radix_sort_ctx`]'s
/// schedule; wider digits trade fewer passes for more scans per pass
/// (`⌈d/w⌉ · 2^w` scans total), the ablation the benches sweep.
///
/// # Panics
/// If a key exceeds `key_bits` bits, or `digit_bits` is 0 or > 16.
pub fn split_radix_sort_digits_ctx(
    ctx: &mut Ctx,
    keys: &[u64],
    key_bits: u32,
    digit_bits: u32,
) -> Vec<u64> {
    assert!((1..=16).contains(&digit_bits), "digit width must be 1..=16");
    if let Some(&bad) = keys.iter().find(|&&k| key_bits < 64 && k >> key_bits != 0) {
        panic!("key {bad} does not fit in {key_bits} bits");
    }
    let buckets = 1usize << digit_bits;
    let mut a = keys.to_vec();
    // Flag and destination buffers are hoisted out of the bucket loop
    // (and the pass loop): each bucket refills them in place, so the
    // only per-pass allocations left are the scans' own outputs.
    let mut ones = vec![0usize; a.len()];
    let mut dest = vec![0usize; a.len()];
    let mut shift = 0;
    while shift < key_bits {
        let mask = (buckets - 1) as u64;
        // One enumerate per bucket value, then a bucket-base offset —
        // a 2^w-way stable split in 2^w scans plus one permute.
        let digit: Vec<u64> = ctx.map(&a, |k| (k >> shift) & mask);
        let mut base = 0usize;
        for b in 0..buckets as u64 {
            for (o, &d) in ones.iter_mut().zip(digit.iter()) {
                *o = usize::from(d == b);
            }
            ctx.charge_elementwise_op(a.len());
            ctx.charge_scan_op(a.len());
            let (ranks, count) = scan_core::scan_with_total::<scan_core::op::Sum, _>(&ones);
            for i in 0..a.len() {
                if digit[i] == b {
                    dest[i] = base + ranks[i];
                }
            }
            base += count;
        }
        ctx.charge_elementwise_op(a.len());
        a = ctx.permute_unchecked(&a, &dest);
        shift += digit_bits;
    }
    a
}

/// Multi-digit sort with the default scan-model machine.
pub fn split_radix_sort_digits(keys: &[u64], key_bits: u32, digit_bits: u32) -> Vec<u64> {
    let mut ctx = Ctx::new(Model::Scan);
    split_radix_sort_digits_ctx(&mut ctx, keys, key_bits, digit_bits)
}

/// Checked split radix sort: typed errors instead of panics.
/// An oversized key reports
/// [`Error::WidthOverflow`][scan_core::Error::WidthOverflow]; an
/// expired or cancelled ambient
/// [`ScanDeadline`][scan_core::ScanDeadline] reports
/// [`Error::Exec`][scan_core::Error::Exec], checked before every bit
/// pass and inside the underlying checked split.
pub fn try_split_radix_sort(keys: &[u64], key_bits: u32) -> scan_core::Result<Vec<u64>> {
    scan_core::deadline::checkpoint()?;
    super::fused_radix::check_key_width(keys, key_bits)?;
    let mut a = keys.to_vec();
    for i in 0..key_bits {
        scan_core::deadline::checkpoint()?;
        let flags: Vec<bool> = a.iter().map(|&k| (k >> i) & 1 == 1).collect();
        a = scan_core::ops::try_split(&a, &flags)?;
    }
    Ok(a)
}

/// Checked multi-digit split radix sort (the unfused enumerate-per-
/// bucket schedule): typed errors for oversized keys and deadline
/// expiry, checked once per bucket scan.
///
/// # Panics
/// Only on the static contract: `digit_bits` 0 or > 16.
pub fn try_split_radix_sort_digits(
    keys: &[u64],
    key_bits: u32,
    digit_bits: u32,
) -> scan_core::Result<Vec<u64>> {
    assert!((1..=16).contains(&digit_bits), "digit width must be 1..=16");
    scan_core::deadline::checkpoint()?;
    super::fused_radix::check_key_width(keys, key_bits)?;
    let buckets = 1usize << digit_bits;
    let mut a = keys.to_vec();
    let mut ones = vec![0usize; a.len()];
    let mut dest = vec![0usize; a.len()];
    let mut shift = 0;
    while shift < key_bits {
        let mask = (buckets - 1) as u64;
        let digit: Vec<u64> = a.iter().map(|&k| (k >> shift) & mask).collect();
        let mut base = 0usize;
        for b in 0..buckets as u64 {
            for (o, &d) in ones.iter_mut().zip(digit.iter()) {
                *o = usize::from(d == b);
            }
            let (ranks, count) =
                scan_core::scan::try_scan_with_total::<scan_core::op::Sum, _>(&ones)?;
            for i in 0..a.len() {
                if digit[i] == b {
                    dest[i] = base + ranks[i];
                }
            }
            base += count;
        }
        // `dest` is a permutation by construction (each index gets the
        // unique rank of its bucket occupancy).
        a = scan_core::ops::permute_unchecked(&a, &dest);
        shift += digit_bits;
    }
    Ok(a)
}

/// Split radix sort of `(key, payload)` pairs — "since integers,
/// characters, and floating-point numbers can all be sorted with a
/// radix sort, a radix sort suffices for almost all sorting of
/// fixed-length keys required in practice."
pub fn split_radix_sort_pairs_ctx(
    ctx: &mut Ctx,
    keys: &[u64],
    payloads: &[u64],
    key_bits: u32,
) -> (Vec<u64>, Vec<u64>) {
    assert_eq!(keys.len(), payloads.len(), "pairs length mismatch");
    let mut pairs: Vec<(u64, u64)> = keys.iter().copied().zip(payloads.iter().copied()).collect();
    for i in 0..key_bits {
        let flags = ctx.map(&pairs, |(k, _)| (k >> i) & 1 == 1);
        pairs = ctx.split(&pairs, &flags);
    }
    (
        pairs.iter().map(|&(k, _)| k).collect(),
        pairs.iter().map(|&(_, v)| v).collect(),
    )
}

/// Pair sort with the default scan-model machine.
pub fn split_radix_sort_pairs(
    keys: &[u64],
    payloads: &[u64],
    key_bits: u32,
) -> (Vec<u64>, Vec<u64>) {
    let mut ctx = Ctx::new(Model::Scan);
    split_radix_sort_pairs_ctx(&mut ctx, keys, payloads, key_bits)
}

/// Sort signed keys by biasing into unsigned (order-preserving).
pub fn split_radix_sort_i64(keys: &[i64]) -> Vec<i64> {
    let biased: Vec<u64> = keys.iter().map(|&k| (k as u64) ^ (1 << 63)).collect();
    split_radix_sort(&biased, 64)
        .into_iter()
        .map(|k| (k ^ (1 << 63)) as i64)
        .collect()
}

/// Sort floating-point keys via the monotone bit transform of §3.4
/// (non-NaN inputs).
pub fn split_radix_sort_f64(keys: &[f64]) -> Vec<f64> {
    let keyed: Vec<u64> = keys.iter().map(|&x| scan_core::simulate::f64_key(x)).collect();
    split_radix_sort(&keyed, 64)
        .into_iter()
        .map(scan_core::simulate::f64_unkey)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_pram::StepKind;

    #[test]
    fn figure2_trace() {
        // A = [5 7 3 1 4 2 7 2] (3-bit values)
        let a = [5u64, 7, 3, 1, 4, 2, 7, 2];
        let mut ctx = Ctx::new(Model::Scan);
        // After bit 0: [4 2 2 5 7 3 1 7]
        let f0: Vec<bool> = a.iter().map(|&k| k & 1 == 1).collect();
        let s1 = scan_core::ops::split(&a, &f0);
        assert_eq!(s1, vec![4, 2, 2, 5, 7, 3, 1, 7]);
        // After bit 1: [4 5 1 2 2 7 3 7]
        let f1: Vec<bool> = s1.iter().map(|&k| (k >> 1) & 1 == 1).collect();
        let s2 = scan_core::ops::split(&s1, &f1);
        assert_eq!(s2, vec![4, 5, 1, 2, 2, 7, 3, 7]);
        // After bit 2: [1 2 2 3 4 5 7 7]
        let f2: Vec<bool> = s2.iter().map(|&k| (k >> 2) & 1 == 1).collect();
        let s3 = scan_core::ops::split(&s2, &f2);
        assert_eq!(s3, vec![1, 2, 2, 3, 4, 5, 7, 7]);
        // And the full routine agrees.
        assert_eq!(split_radix_sort_ctx(&mut ctx, &a, 3), s3);
    }

    #[test]
    fn sorts_random_keys() {
        let mut x = 42u64;
        let keys: Vec<u64> = (0..1000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 20) & 0xFFFF
            })
            .collect();
        let got = split_radix_sort(&keys, 16);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn step_complexity_is_linear_in_bits() {
        let keys: Vec<u64> = (0..256).rev().collect();
        let mut ctx8 = Ctx::new(Model::Scan);
        split_radix_sort_ctx(&mut ctx8, &keys, 8);
        let mut ctx16 = Ctx::new(Model::Scan);
        split_radix_sort_ctx(&mut ctx16, &keys, 16);
        assert_eq!(ctx16.steps(), 2 * ctx8.steps());
        // O(1) scan-model steps per bit: per pass = 1 map + split's ops.
        assert_eq!(ctx8.stats().ops_of(StepKind::Permute), 8);
    }

    #[test]
    fn erew_pays_the_lg_factor() {
        let keys: Vec<u64> = (0..1024).map(|i| (i * 37) % 1024).collect();
        let mut scan_ctx = Ctx::new(Model::Scan);
        let mut erew_ctx = Ctx::new(Model::Erew);
        let a = split_radix_sort_ctx(&mut scan_ctx, &keys, 10);
        let b = split_radix_sort_ctx(&mut erew_ctx, &keys, 10);
        assert_eq!(a, b);
        // EREW steps / scan-model steps should approach the lg factor.
        assert!(erew_ctx.steps() > 2 * scan_ctx.steps());
    }

    #[test]
    fn stability_via_pairs() {
        // Two equal keys keep their payload order.
        let keys = [3u64, 1, 3, 1, 3];
        let payloads = [0u64, 1, 2, 3, 4];
        let (k, v) = split_radix_sort_pairs(&keys, &payloads, 2);
        assert_eq!(k, vec![1, 1, 3, 3, 3]);
        assert_eq!(v, vec![1, 3, 0, 2, 4]);
    }

    #[test]
    fn signed_and_float_sorts() {
        assert_eq!(
            split_radix_sort_i64(&[3, -1, 0, -7, 5]),
            vec![-7, -1, 0, 3, 5]
        );
        assert_eq!(
            split_radix_sort_f64(&[2.5, -0.5, 1e10, -1e10, 0.0]),
            vec![-1e10, -0.5, 0.0, 2.5, 1e10]
        );
    }

    #[test]
    fn empty_and_single() {
        assert!(split_radix_sort(&[], 8).is_empty());
        assert_eq!(split_radix_sort(&[9], 8), vec![9]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_key_rejected() {
        split_radix_sort(&[256], 8);
    }

    #[test]
    fn zero_bits_is_identity() {
        assert_eq!(split_radix_sort(&[0, 0, 0], 0), vec![0, 0, 0]);
    }

    #[test]
    fn multi_digit_sorts_for_every_width() {
        let mut x = 5u64;
        let keys: Vec<u64> = (0..600)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(11);
                (x >> 30) & 0xFFFF
            })
            .collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        for w in [1u32, 2, 4, 8, 16] {
            assert_eq!(split_radix_sort_digits(&keys, 16, w), expect, "w={w}");
        }
        // Non-dividing digit width (16 bits in 3-bit digits).
        assert_eq!(split_radix_sort_digits(&keys, 16, 3), expect);
    }

    #[test]
    fn multi_digit_stability() {
        let keys = [0x13u64, 0x11, 0x23, 0x21, 0x13];
        let sorted = split_radix_sort_digits(&keys, 8, 4);
        assert_eq!(sorted, vec![0x11, 0x13, 0x13, 0x21, 0x23]);
    }

    #[test]
    fn try_variants_sort_and_report_typed_errors() {
        use scan_core::{deadline, Error, ExecError, ScanDeadline};
        let keys: Vec<u64> = (0..500).map(|i| (i * 131) % 1024).collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(try_split_radix_sort(&keys, 10), Ok(expect.clone()));
        assert_eq!(try_split_radix_sort_digits(&keys, 10, 4), Ok(expect));
        // Oversized key: typed, not a panic.
        assert_eq!(
            try_split_radix_sort(&[256], 8),
            Err(Error::WidthOverflow {
                required: 9,
                available: 8
            })
        );
        assert_eq!(
            try_split_radix_sort_digits(&[300], 8, 4),
            Err(Error::WidthOverflow {
                required: 9,
                available: 8
            })
        );
        // Cancelled ambient deadline: typed, not a hang or panic.
        let d = ScanDeadline::manual();
        d.cancel();
        let r = deadline::with_deadline(&d, || try_split_radix_sort(&keys, 10));
        assert_eq!(r, Err(Error::Exec(ExecError::Cancelled)));
        let r = deadline::with_deadline(&d, || try_split_radix_sort_digits(&keys, 10, 2));
        assert_eq!(r, Err(Error::Exec(ExecError::Cancelled)));
    }

    #[test]
    fn digit_width_trades_passes_for_scans() {
        use scan_pram::StepKind;
        let keys: Vec<u64> = (0..256).rev().collect();
        let scans_for = |w: u32| {
            let mut ctx = Ctx::new(Model::Scan);
            split_radix_sort_digits_ctx(&mut ctx, &keys, 16, w);
            (
                ctx.stats().ops_of(StepKind::Scan),
                ctx.stats().ops_of(StepKind::Permute),
            )
        };
        let (s1, p1) = scans_for(1);
        let (s4, p4) = scans_for(4);
        assert_eq!(p1, 16, "one permute per pass");
        assert_eq!(p4, 4);
        assert_eq!(s1, 16 * 2);
        assert_eq!(s4, 4 * 16, "2^w scans per pass");
        let _ = (s1, s4);
    }
}
