//! Parallel mergesort on the §4 extension: the paper's conclusion
//! wonders whether "a merge primitive that merges two sorted vectors"
//! could join the scans as a unit-time primitive ("as shown by Batcher,
//! this can be executed in a single pass of an Omega network").
//!
//! With the primitive enabled ([`scan_pram::Ctx::with_merge_primitive`])
//! every round of pairwise run-merging is one program step, so sorting
//! takes `O(lg n)` steps; without it, each round pays the bitonic
//! network's `⌈lg p⌉` stages and the sort costs `O(lg² n)` — an
//! experimental answer to the paper's closing question.

use scan_pram::{Ctx, Model};

/// Bottom-up mergesort: `⌈lg n⌉` rounds of all-pairs run merges.
pub fn merge_sort_ctx(ctx: &mut Ctx, keys: &[u64]) -> Vec<u64> {
    let n = keys.len();
    let mut a = keys.to_vec();
    let mut width = 1;
    while width < n {
        a = ctx.merge_adjacent_runs(&a, width);
        width *= 2;
    }
    a
}

/// Mergesort with the default scan-model machine and the §4 merge
/// primitive enabled.
pub fn merge_sort(keys: &[u64]) -> Vec<u64> {
    let mut ctx = Ctx::new(Model::Scan).with_merge_primitive();
    merge_sort_ctx(&mut ctx, keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_pram::StepKind;

    #[test]
    fn sorts_random_keys() {
        let mut x = 11u64;
        let keys: Vec<u64> = (0..1000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                x >> 30
            })
            .collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(merge_sort(&keys), expect);
    }

    #[test]
    fn lg_n_rounds() {
        let keys: Vec<u64> = (0..1024).rev().collect();
        let mut ctx = Ctx::new(Model::Scan).with_merge_primitive();
        merge_sort_ctx(&mut ctx, &keys);
        assert_eq!(ctx.stats().ops_of(StepKind::Merge), 10);
    }

    #[test]
    fn primitive_removes_a_lg_factor() {
        let keys: Vec<u64> = (0..4096).map(|i| (i * 48271) % 4096).collect();
        let mut with = Ctx::new(Model::Scan).with_merge_primitive();
        let a = merge_sort_ctx(&mut with, &keys);
        let mut without = Ctx::new(Model::Scan);
        let b = merge_sort_ctx(&mut without, &keys);
        assert_eq!(a, b);
        // 12 rounds: with the primitive each costs ~3 steps; without,
        // each costs ~2·lg n stages.
        assert!(
            without.steps() > 5 * with.steps(),
            "{} vs {}",
            without.steps(),
            with.steps()
        );
    }

    #[test]
    fn edge_cases() {
        assert!(merge_sort(&[]).is_empty());
        assert_eq!(merge_sort(&[3]), vec![3]);
        assert_eq!(merge_sort(&[2, 1]), vec![1, 2]);
        assert_eq!(merge_sort(&[5, 5, 5]), vec![5, 5, 5]);
        // Non-power-of-two length with a trailing partial run.
        assert_eq!(merge_sort(&[9, 1, 8, 2, 7]), vec![1, 2, 7, 8, 9]);
    }

    #[test]
    fn merge_adjacent_runs_partial_tail() {
        let mut ctx = Ctx::new(Model::Scan).with_merge_primitive();
        // runs of width 2: [1,5][2,3][4]
        let merged = ctx.merge_adjacent_runs(&[1u64, 5, 2, 3, 4], 2);
        assert_eq!(merged, vec![1, 2, 3, 5, 4]);
    }
}
