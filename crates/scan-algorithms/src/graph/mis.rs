//! Maximal independent set (Table 1): Luby-style random priorities with
//! the neighbor reductions of the segmented graph representation —
//! expected `O(lg n)` steps on the scan model (the P-RAM versions pay
//! `O(lg² n)`).
//!
//! Each round: every live vertex draws a random priority; a vertex
//! whose priority beats all its neighbors' joins the set; chosen
//! vertices and their neighbors leave the graph.

use scan_core::op::{Min, Or};
use scan_pram::{Ctx, Model};

use super::segmented::SegGraph;
use crate::util::hash64;


/// Maximal independent set on a step-counting machine. Returns the
/// membership flag of every vertex.
pub fn maximal_independent_set_ctx(
    ctx: &mut Ctx,
    n_vertices: usize,
    edges: &[(usize, usize, u64)],
    seed: u64,
) -> Vec<bool> {
    let unit: Vec<(usize, usize, u64)> = edges
        .iter()
        .enumerate()
        .map(|(e, &(u, v, _))| (u, v, e as u64))
        .collect();
    let mut g = SegGraph::from_edges_ctx(ctx, n_vertices, &unit);
    let mut orig_id: Vec<usize> = (0..n_vertices).collect();
    let mut in_mis = vec![false; n_vertices];
    let mut rounds = 0usize;
    let cap = 64 + 8 * (usize::BITS - n_vertices.leading_zeros()) as usize;
    while g.n_vertices > 0 {
        assert!(rounds < cap, "MIS failed to converge");
        rounds += 1;
        let nv = g.n_vertices;
        // Random priorities, made distinct by the vertex id tail.
        let ids = ctx.iota(nv);
        let prio = ctx.map(&ids, |v| {
            (hash64(seed ^ ((rounds as u64) << 40) ^ v as u64) << 20) | v as u64
        });
        // Minimum neighbor priority via the §2.3.2 neighbor reduce;
        // isolated vertices see the identity (MAX) and always join.
        let min_nbr = g.neighbor_reduce::<Min, _>(ctx, &prio);
        let chosen = ctx.zip(&prio, &min_nbr, |p, m| p < m);
        for (v, &c) in chosen.iter().enumerate() {
            if c {
                in_mis[orig_id[v]] = true;
            }
        }
        ctx.charge_permute_op(nv);
        // Remove chosen vertices and their neighbors.
        let chosen_slot = g.vertex_to_slots(ctx, &chosen);
        let nbr_chosen_slot = g.across_edges(ctx, &chosen_slot);
        let nbr_chosen = g.per_vertex_reduce::<Or, _>(ctx, &nbr_chosen_slot);
        let removed = ctx.zip(&chosen, &nbr_chosen, |a, b| a | b);
        // Shrink the graph to the surviving vertices.
        let keep_vertex: Vec<bool> = ctx.map(&removed, |r| !r);
        let keep_slot = g.vertex_to_slots(ctx, &keep_vertex);
        let g2 = g.delete_slots(ctx, &keep_slot);
        // Renumber surviving vertices densely.
        let new_id = ctx.enumerate(&keep_vertex);
        let n_kept = ctx.count(&keep_vertex);
        let new_vertex_of_slot = ctx.map(&g2.vertex_of_slot, |v| new_id[v]);
        orig_id = ctx.pack(&orig_id, &keep_vertex);
        g = SegGraph {
            n_vertices: n_kept,
            vertex_of_slot: new_vertex_of_slot,
            cross_pointers: g2.cross_pointers,
            weights: g2.weights,
            edge_ids: g2.edge_ids,
        };
    }
    in_mis
}

/// Maximal independent set with the default scan-model machine.
pub fn maximal_independent_set(
    n_vertices: usize,
    edges: &[(usize, usize, u64)],
    seed: u64,
) -> Vec<bool> {
    let mut ctx = Ctx::new(Model::Scan);
    maximal_independent_set_ctx(&mut ctx, n_vertices, edges, seed)
}

/// Check that `in_mis` is independent and maximal on the given graph;
/// for tests.
pub fn verify_mis(n_vertices: usize, edges: &[(usize, usize, u64)], in_mis: &[bool]) {
    assert_eq!(in_mis.len(), n_vertices);
    let mut has_mis_neighbor = vec![false; n_vertices];
    for &(u, v, _) in edges {
        assert!(
            !(in_mis[u] && in_mis[v]),
            "vertices {u} and {v} are adjacent and both in the set"
        );
        if in_mis[u] {
            has_mis_neighbor[v] = true;
        }
        if in_mis[v] {
            has_mis_neighbor[u] = true;
        }
    }
    for v in 0..n_vertices {
        assert!(
            in_mis[v] || has_mis_neighbor[v],
            "vertex {v} could be added — the set is not maximal"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(n: usize, edges: &[(usize, usize, u64)], seed: u64) -> Vec<bool> {
        let mis = maximal_independent_set(n, edges, seed);
        verify_mis(n, edges, &mis);
        mis
    }

    #[test]
    fn triangle_yields_one_vertex() {
        let mis = check(3, &[(0, 1, 0), (1, 2, 0), (0, 2, 0)], 4);
        assert_eq!(mis.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn edgeless_graph_takes_everything() {
        let mis = check(5, &[], 1);
        assert!(mis.iter().all(|&b| b));
    }

    #[test]
    fn star_graph_center_or_leaves() {
        let edges: Vec<(usize, usize, u64)> = (1..10).map(|v| (0, v, 0)).collect();
        let mis = check(10, &edges, 8);
        if mis[0] {
            assert_eq!(mis.iter().filter(|&&b| b).count(), 1);
        } else {
            assert!(mis[1..].iter().all(|&b| b));
        }
    }

    #[test]
    fn path_graph() {
        let edges: Vec<(usize, usize, u64)> = (1..30).map(|v| (v - 1, v, 0)).collect();
        check(30, &edges, 12);
    }

    #[test]
    fn random_graphs() {
        let mut x = 5u64;
        let mut rng = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
            x >> 33
        };
        for trial in 0..10 {
            let n = 2 + (rng() % 40) as usize;
            let m = (rng() % 100) as usize;
            let edges: Vec<(usize, usize, u64)> = (0..m)
                .filter_map(|_| {
                    let u = (rng() as usize) % n;
                    let v = (rng() as usize) % n;
                    (u != v).then_some((u, v, 0))
                })
                .collect();
            check(n, &edges, trial);
        }
    }
}
