//! Sequential reference algorithms for verifying the scan-model graph
//! algorithms: Kruskal's MST and union-find components.

/// A plain union-find (path halving + union by size).
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns false if already joined.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        true
    }
}

/// Kruskal's MST (on the composite order `(weight, edge index)`, making
/// the minimum spanning forest unique). Returns the chosen edge
/// indices, sorted, and the total weight.
pub fn kruskal(n_vertices: usize, edges: &[(usize, usize, u64)]) -> (Vec<usize>, u64) {
    let mut order: Vec<usize> = (0..edges.len()).collect();
    order.sort_unstable_by_key(|&e| (edges[e].2, e));
    let mut uf = UnionFind::new(n_vertices);
    let mut chosen = Vec::new();
    let mut total = 0u64;
    for e in order {
        let (u, v, w) = edges[e];
        if uf.union(u, v) {
            chosen.push(e);
            total += w;
        }
    }
    chosen.sort_unstable();
    (chosen, total)
}

/// Component label (smallest member vertex) of every vertex.
pub fn components_reference(n_vertices: usize, edges: &[(usize, usize, u64)]) -> Vec<usize> {
    let mut uf = UnionFind::new(n_vertices);
    for &(u, v, _) in edges {
        uf.union(u, v);
    }
    let mut min_of_root = vec![usize::MAX; n_vertices];
    for v in 0..n_vertices {
        let r = uf.find(v);
        min_of_root[r] = min_of_root[r].min(v);
    }
    (0..n_vertices)
        .map(|v| {
            let r = uf.find(v);
            min_of_root[r]
        })
        .collect()
}

/// Sequential Tarjan biconnectivity (iterative DFS with an edge stack),
/// the reference for the parallel Tarjan–Vishkin implementation.
/// Requires a connected graph; self-loops are not supported.
pub fn biconnected_reference(
    n_vertices: usize,
    edges: &[(usize, usize, u64)],
) -> super::biconnected::BiconnectedResult {
    let m = edges.len();
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n_vertices]; // (nbr, edge id)
    for (e, &(u, v, _)) in edges.iter().enumerate() {
        assert_ne!(u, v, "self-loops unsupported");
        adj[u].push((v, e));
        adj[v].push((u, e));
    }
    let mut disc = vec![usize::MAX; n_vertices];
    let mut low = vec![0usize; n_vertices];
    let mut edge_block = vec![usize::MAX; m];
    let mut articulation = vec![false; n_vertices];
    let mut n_blocks = 0usize;
    let mut timer = 0usize;
    let mut edge_stack: Vec<usize> = Vec::new();
    // Iterative DFS frames: (vertex, parent edge id, next adj index).
    let mut frames: Vec<(usize, usize, usize)> = Vec::new();
    let root = 0usize;
    disc[root] = timer;
    low[root] = timer;
    timer += 1;
    frames.push((root, usize::MAX, 0));
    let mut root_children = 0usize;
    while let Some(&mut (v, pe, ref mut idx)) = frames.last_mut() {
        if *idx < adj[v].len() {
            let (w, e) = adj[v][*idx];
            *idx += 1;
            if e == pe {
                continue;
            }
            if disc[w] == usize::MAX {
                edge_stack.push(e);
                disc[w] = timer;
                low[w] = timer;
                timer += 1;
                if v == root {
                    root_children += 1;
                }
                frames.push((w, e, 0));
            } else if disc[w] < disc[v] {
                edge_stack.push(e);
                low[v] = low[v].min(disc[w]);
            }
        } else {
            frames.pop();
            if let Some(&mut (u, _, _)) = frames.last_mut() {
                low[u] = low[u].min(low[v]);
                if low[v] >= disc[u] {
                    // u is an articulation point (unless root, handled
                    // after); pop one block off the edge stack.
                    if u != root {
                        articulation[u] = true;
                    }
                    let block = n_blocks;
                    n_blocks += 1;
                    while let Some(&top) = edge_stack.last() {
                        let (a, b, _) = edges[top];
                        // Pop edges discovered within w's subtree call.
                        if disc[a].max(disc[b]) >= disc[v] {
                            edge_block[top] = block;
                            edge_stack.pop();
                        } else {
                            break;
                        }
                    }
                }
            }
        }
    }
    articulation[root] = root_children >= 2;
    assert!(
        edge_block.iter().all(|&b| b != usize::MAX),
        "graph must be connected"
    );
    let mut sizes = std::collections::HashMap::new();
    for &b in &edge_block {
        *sizes.entry(b).or_insert(0usize) += 1;
    }
    let bridge = edge_block.iter().map(|b| sizes[b] == 1).collect();
    super::biconnected::BiconnectedResult {
        edge_block,
        articulation,
        bridge,
        n_blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biconnected_reference_bowtie() {
        let edges = [
            (0, 1, 0),
            (1, 2, 0),
            (0, 2, 0),
            (2, 3, 0),
            (3, 4, 0),
            (2, 4, 0),
        ];
        let r = biconnected_reference(5, &edges);
        assert_eq!(r.n_blocks, 2);
        assert_eq!(r.articulation, vec![false, false, true, false, false]);
        assert!(r.bridge.iter().all(|&b| !b));
    }

    #[test]
    fn kruskal_figure6_graph() {
        let edges = [
            (0, 1, 1),
            (1, 2, 2),
            (1, 4, 3),
            (2, 3, 4),
            (2, 4, 5),
            (3, 4, 6),
        ];
        let (chosen, total) = kruskal(5, &edges);
        assert_eq!(chosen, vec![0, 1, 2, 3]);
        assert_eq!(total, 10);
    }

    #[test]
    fn kruskal_forest_on_disconnected_graph() {
        let edges = [(0, 1, 5), (2, 3, 7)];
        let (chosen, total) = kruskal(4, &edges);
        assert_eq!(chosen, vec![0, 1]);
        assert_eq!(total, 12);
    }

    #[test]
    fn component_labels() {
        let labels = components_reference(5, &[(0, 1, 0), (3, 4, 0)]);
        assert_eq!(labels, vec![0, 0, 2, 3, 3]);
    }

    #[test]
    fn union_find_paths() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0));
        assert!(uf.union(1, 3));
        assert_eq!(uf.find(0), uf.find(2));
    }
}
