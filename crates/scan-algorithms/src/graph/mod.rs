//! Graph algorithms on the segmented graph representation
//! (§2.3.2–§2.3.3 and the Table 1 graph rows).

pub mod biconnected;
pub mod components;
pub mod mis;
pub mod mst;
pub mod reference;
pub mod segmented;
pub mod star_merge;




pub use biconnected::{biconnected_components, BiconnectedResult};
pub use components::connected_components;
pub use mis::maximal_independent_set;
pub use mst::{minimum_spanning_tree, MstResult};
pub use segmented::SegGraph;
pub use star_merge::{star_merge, StarMergeResult};
