//! The segmented graph representation (§2.3.2, Figure 6).
//!
//! "An undirected graph can be represented using a segment for each
//! vertex and an element position within a segment for each edge of the
//! vertex. Since each edge is incident on two vertices, it appears in
//! two segments. The actual values kept in the elements of the
//! segmented vector are pointers to the other end of the edge."
//!
//! Construction from an edge list follows the paper: create two
//! elements per edge and sort them by vertex number with the split
//! radix sort, which places all of a vertex's edges in one contiguous
//! segment.

use scan_core::element::ScanElem;
use scan_core::op::{ScanOp, Sum};
use scan_core::segmented::Segments;
use scan_pram::{Ctx, Model};

use crate::sort::radix::split_radix_sort_pairs_ctx;

/// An undirected graph in the segmented representation: one segment per
/// vertex, one slot per edge end ("half-edge"), cross pointers linking
/// the two ends of each edge.
///
/// Vertices may own zero slots (isolated, or emptied by contraction);
/// the ground truth is [`SegGraph::vertex_of_slot`], which is
/// nondecreasing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegGraph {
    /// Number of vertices (including slot-less ones).
    pub n_vertices: usize,
    /// Owning vertex of each slot, nondecreasing.
    pub vertex_of_slot: Vec<usize>,
    /// For each slot, the slot holding the other end of the same edge.
    /// An involution without fixed points.
    pub cross_pointers: Vec<usize>,
    /// Weight carried by each slot (both ends of an edge carry the same
    /// weight — Figure 6's weights vector).
    pub weights: Vec<u64>,
    /// Original edge index of each slot, for reporting results in terms
    /// of the input edge list.
    pub edge_ids: Vec<usize>,
}

impl SegGraph {
    /// Build the representation from an edge list, on a step-counting
    /// machine. Self-loops are rejected (a self-loop is internal to its
    /// vertex and would be deleted by the first contraction anyway).
    ///
    /// # Panics
    /// If an endpoint is out of range or an edge is a self-loop, or if
    /// `n_vertices`/edge count exceed `u32::MAX` (the construction
    /// rides endpoint and half-edge ids through 64-bit radix keys).
    pub fn from_edges_ctx(ctx: &mut Ctx, n_vertices: usize, edges: &[(usize, usize, u64)]) -> Self {
        assert!(n_vertices <= u32::MAX as usize, "too many vertices");
        assert!(edges.len() <= (u32::MAX / 2) as usize, "too many edges");
        for &(u, v, _) in edges {
            assert!(u < n_vertices && v < n_vertices, "endpoint out of range");
            assert_ne!(u, v, "self-loops are not representable");
        }
        let s = 2 * edges.len();
        // Two half-edges per edge: (endpoint, half-edge id).
        let endpoints: Vec<u64> = edges
            .iter()
            .flat_map(|&(u, v, _)| [u as u64, v as u64])
            .collect();
        let half_ids: Vec<u64> = (0..s as u64).collect();
        // Sort by endpoint with the split radix sort (§2.3.2: "The split
        // radix sort can be used since the vertex numbers are all
        // integers less than n").
        let bits = 64 - (n_vertices.max(2) as u64 - 1).leading_zeros();
        let (sorted_vertex, sorted_half) =
            split_radix_sort_pairs_ctx(ctx, &endpoints, &half_ids, bits);
        // Where did each half-edge land? (scatter of slot indices).
        let slots = ctx.iota(s);
        let half_usize: Vec<usize> = sorted_half.iter().map(|&h| h as usize).collect();
        let slot_of_half = scan_core::ops::permute(&slots, &half_usize);
        ctx.charge_permute_op(s);
        // Cross pointer: the slot of the *other* half of the same edge.
        let partner_half: Vec<usize> = sorted_half
            .iter()
            .map(|&h| (h ^ 1) as usize)
            .collect();
        let cross_pointers = ctx.gather(&slot_of_half, &partner_half);
        let weights = ctx.map(&sorted_half, |h| edges[(h / 2) as usize].2);
        let edge_ids: Vec<usize> = sorted_half.iter().map(|&h| (h / 2) as usize).collect();
        ctx.charge_elementwise_op(s);
        SegGraph {
            n_vertices,
            vertex_of_slot: sorted_vertex.iter().map(|&v| v as usize).collect(),
            cross_pointers,
            weights,
            edge_ids,
        }
    }

    /// Build with the default scan-model machine.
    pub fn from_edges(n_vertices: usize, edges: &[(usize, usize, u64)]) -> Self {
        let mut ctx = Ctx::new(Model::Scan);
        Self::from_edges_ctx(&mut ctx, n_vertices, edges)
    }

    /// Number of slots (twice the number of live edges).
    pub fn n_slots(&self) -> usize {
        self.vertex_of_slot.len()
    }

    /// The per-vertex segmentation of the slot vector (Figure 6's
    /// segment-descriptor). Slot-less vertices contribute no segment.
    pub fn segments(&self) -> Segments {
        let flags = (0..self.n_slots())
            .map(|i| i == 0 || self.vertex_of_slot[i] != self.vertex_of_slot[i - 1])
            .collect();
        Segments::from_flags(flags)
    }

    /// Check every structural invariant; for tests and debugging.
    pub fn validate(&self) {
        let s = self.n_slots();
        assert_eq!(self.cross_pointers.len(), s);
        assert_eq!(self.weights.len(), s);
        assert_eq!(self.edge_ids.len(), s);
        assert!(self
            .vertex_of_slot
            .windows(2)
            .all(|w| w[0] <= w[1]), "vertex ids must be nondecreasing");
        for (i, &c) in self.cross_pointers.iter().enumerate() {
            assert!(c < s, "cross pointer out of range");
            assert_ne!(c, i, "fixed-point cross pointer (self-loop)");
            assert_eq!(self.cross_pointers[c], i, "cross pointers must be an involution");
            assert_eq!(self.weights[c], self.weights[i], "edge ends disagree on weight");
            assert_eq!(self.edge_ids[c], self.edge_ids[i], "edge ends disagree on id");
            assert_ne!(
                self.vertex_of_slot[c], self.vertex_of_slot[i],
                "edge internal to a vertex"
            );
        }
        if let Some(&v) = self.vertex_of_slot.last() {
            assert!(v < self.n_vertices);
        }
    }

    /// Distribute a per-vertex value to every slot of that vertex —
    /// EREW-style: scatter each value to its vertex's first slot, then
    /// a segmented copy. Charge: 1 permute + 1 segmented scan.
    pub fn vertex_to_slots<T: ScanElem>(&self, ctx: &mut Ctx, per_vertex: &[T]) -> Vec<T> {
        assert_eq!(per_vertex.len(), self.n_vertices, "per-vertex length mismatch");
        let s = self.n_slots();
        if s == 0 {
            return Vec::new();
        }
        let segs = self.segments();
        let mut heads: Vec<T> = vec![per_vertex[0]; s];
        for i in 0..s {
            if segs.is_head(i) {
                heads[i] = per_vertex[self.vertex_of_slot[i]];
            }
        }
        ctx.charge_permute_op(s);
        ctx.seg_copy(&heads, &segs)
    }

    /// Reduce the slot values of each vertex to one value per vertex
    /// (slot-less vertices receive the identity). Charge: 1 segmented
    /// scan + 1 permute (scattering results to vertex ids).
    pub fn per_vertex_reduce<O: ScanOp<T>, T: ScanElem>(
        &self,
        ctx: &mut Ctx,
        slot_values: &[T],
    ) -> Vec<T> {
        assert_eq!(slot_values.len(), self.n_slots(), "per-slot length mismatch");
        let mut out = vec![O::identity(); self.n_vertices];
        if self.n_slots() == 0 {
            return out;
        }
        let segs = self.segments();
        ctx.charge_seg_scan_op(self.n_slots());
        ctx.charge_permute_op(self.n_slots());
        let reduced = scan_core::segops::seg_reduce::<O, T>(slot_values, &segs);
        for (&(start, _), r) in segs.ranges().iter().zip(reduced) {
            out[self.vertex_of_slot[start]] = r;
        }
        out
    }

    /// The value at the other end of each slot's edge. Charge: 1
    /// permute (the cross pointers are a permutation).
    pub fn across_edges<T: ScanElem>(&self, ctx: &mut Ctx, slot_values: &[T]) -> Vec<T> {
        ctx.gather(slot_values, &self.cross_pointers)
    }

    /// §2.3.2's headline operation: every vertex combines a value from
    /// all its neighbors in a constant number of steps — distribute over
    /// the edges, swap ends, reduce back.
    pub fn neighbor_reduce<O: ScanOp<T>, T: ScanElem>(
        &self,
        ctx: &mut Ctx,
        per_vertex: &[T],
    ) -> Vec<T> {
        let over_edges = self.vertex_to_slots(ctx, per_vertex);
        let from_neighbors = self.across_edges(ctx, &over_edges);
        self.per_vertex_reduce::<O, T>(ctx, &from_neighbors)
    }

    /// Drop the slots whose `keep` flag is false, packing the survivors
    /// and rewiring cross pointers. A kept slot whose partner is
    /// dropped is dropped too (an edge needs both ends).
    /// Charge: ~2 scans + 3 permutes + elementwise.
    pub fn delete_slots(&self, ctx: &mut Ctx, keep: &[bool]) -> SegGraph {
        assert_eq!(keep.len(), self.n_slots(), "keep length mismatch");
        let partner_keep = self.across_edges(ctx, keep);
        let both = ctx.zip(keep, &partner_keep, |a, b| a & b);
        let ones = ctx.map(&both, usize::from);
        let (dest, _total) = ctx.scan_with_total::<Sum, _>(&ones);
        let new_cross_old: Vec<usize> = ctx.gather(&dest, &self.cross_pointers);
        SegGraph {
            n_vertices: self.n_vertices,
            vertex_of_slot: ctx.pack(&self.vertex_of_slot, &both),
            cross_pointers: ctx.pack(&new_cross_old, &both),
            weights: ctx.pack(&self.weights, &both),
            edge_ids: ctx.pack(&self.edge_ids, &both),
        }
    }

    /// Figure 6's example graph (5 vertices, 6 weighted edges), for
    /// tests and documentation. Weights `w1..w6` are encoded `1..6`.
    pub fn figure6() -> SegGraph {
        // Edges: w1:(v1,v2) w2:(v2,v3) w3:(v2,v5) w4:(v3,v4) w5:(v3,v5)
        // w6:(v4,v5), vertices renumbered 0-based.
        SegGraph::from_edges(
            5,
            &[
                (0, 1, 1),
                (1, 2, 2),
                (1, 4, 3),
                (2, 3, 4),
                (2, 4, 5),
                (3, 4, 6),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_core::op::{Max, Min, Or};

    #[test]
    fn figure6_representation() {
        let g = SegGraph::figure6();
        g.validate();
        // vertex = [1 2 2 2 3 3 3 4 4 5 5 5] (1-based in the paper)
        assert_eq!(g.vertex_of_slot, vec![0, 1, 1, 1, 2, 2, 2, 3, 3, 4, 4, 4]);
        // segment-descriptor = [T T F F T F F T F T F F]
        assert_eq!(
            g.segments().flags(),
            &[true, true, false, false, true, false, false, true, false, true, false, false]
        );
        // weights = [w1 w1 w2 w3 w2 w4 w5 w4 w6 w3 w5 w6]
        assert_eq!(g.weights, vec![1, 1, 2, 3, 2, 4, 5, 4, 6, 3, 5, 6]);
        // cross-pointers = [1 0 4 9 2 7 10 5 11 3 6 8]
        assert_eq!(g.cross_pointers, vec![1, 0, 4, 9, 2, 7, 10, 5, 11, 3, 6, 8]);
    }

    #[test]
    fn neighbor_reduce_sums_neighbors() {
        let g = SegGraph::figure6();
        let mut ctx = Ctx::new(Model::Scan);
        let vals: Vec<u64> = vec![10, 20, 30, 40, 50];
        let sums = g.neighbor_reduce::<Sum, _>(&mut ctx, &vals);
        // v0~{v1}=20; v1~{v0,v2,v4}=90; v2~{v1,v3,v4}=110;
        // v3~{v2,v4}=80; v4~{v1,v2,v3}=90.
        assert_eq!(sums, vec![20, 90, 110, 80, 90]);
    }

    #[test]
    fn neighbor_reduce_other_ops() {
        let g = SegGraph::figure6();
        let mut ctx = Ctx::new(Model::Scan);
        let vals: Vec<u64> = vec![10, 20, 30, 40, 50];
        assert_eq!(
            g.neighbor_reduce::<Max, _>(&mut ctx, &vals),
            vec![20, 50, 50, 50, 40]
        );
        assert_eq!(
            g.neighbor_reduce::<Min, _>(&mut ctx, &vals),
            vec![20, 10, 20, 30, 20]
        );
    }

    #[test]
    fn isolated_vertices() {
        let g = SegGraph::from_edges(4, &[(1, 2, 7)]);
        g.validate();
        assert_eq!(g.n_slots(), 2);
        let mut ctx = Ctx::new(Model::Scan);
        let r = g.neighbor_reduce::<Or, _>(&mut ctx, &[1u64, 2, 4, 8]);
        assert_eq!(r, vec![0, 4, 2, 0]);
    }

    #[test]
    fn empty_graph() {
        let g = SegGraph::from_edges(3, &[]);
        g.validate();
        assert_eq!(g.n_slots(), 0);
        let mut ctx = Ctx::new(Model::Scan);
        assert_eq!(
            g.per_vertex_reduce::<Sum, u64>(&mut ctx, &[]),
            vec![0, 0, 0]
        );
    }

    #[test]
    fn multigraph_edges() {
        // Two parallel edges between the same vertices.
        let g = SegGraph::from_edges(2, &[(0, 1, 5), (0, 1, 9)]);
        g.validate();
        assert_eq!(g.n_slots(), 4);
        let mut ctx = Ctx::new(Model::Scan);
        let deg = g.per_vertex_reduce::<Sum, _>(&mut ctx, &[1u64; 4]);
        assert_eq!(deg, vec![2, 2]);
    }

    #[test]
    fn delete_slots_drops_edges_with_either_end_marked() {
        let g = SegGraph::figure6();
        let mut ctx = Ctx::new(Model::Scan);
        // Drop every slot of vertex 1 — its three edges vanish entirely.
        let keep: Vec<bool> = g.vertex_of_slot.iter().map(|&v| v != 1).collect();
        let g2 = g.delete_slots(&mut ctx, &keep);
        g2.validate();
        // Surviving edges: w4 (v2,v3), w5 (v2,v4), w6 (v3,v4).
        assert_eq!(g2.n_slots(), 6);
        let mut ids: Vec<usize> = g2.edge_ids.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids, vec![3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        SegGraph::from_edges(2, &[(1, 1, 3)]);
    }

    #[test]
    fn vertex_to_slots_broadcast() {
        let g = SegGraph::figure6();
        let mut ctx = Ctx::new(Model::Scan);
        let slots = g.vertex_to_slots(&mut ctx, &[100u64, 200, 300, 400, 500]);
        let expect: Vec<u64> = g.vertex_of_slot.iter().map(|&v| (v as u64 + 1) * 100).collect();
        assert_eq!(slots, expect);
    }
}
