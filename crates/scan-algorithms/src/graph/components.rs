//! Connected components (Table 1): the same random-mate contraction as
//! the MST, with the edge choice free — `O(lg n)` steps on the scan
//! model versus `O(lg² n)` on the EREW P-RAM.

use scan_pram::{Ctx, Model};

use super::segmented::SegGraph;
use super::star_merge::star_merge;


/// Connected-components labelling on a step-counting machine: every
/// vertex receives the smallest vertex id in its component.
pub fn connected_components_ctx(
    ctx: &mut Ctx,
    n_vertices: usize,
    edges: &[(usize, usize, u64)],
    seed: u64,
) -> Vec<usize> {
    // Contract with unit weights (edge ids break ties), tracking where
    // every original vertex ends up.
    let unit: Vec<(usize, usize, u64)> = edges
        .iter()
        .enumerate()
        .map(|(e, &(u, v, _))| (u, v, e as u64))
        .collect();
    let mut g = SegGraph::from_edges_ctx(ctx, n_vertices, &unit);
    // rep[original vertex] = current contracted vertex.
    let mut rep: Vec<usize> = (0..n_vertices).collect();
    // min_orig[current vertex] = smallest original vertex id inside it.
    let mut min_orig: Vec<usize> = (0..n_vertices).collect();
    let mut rounds = 0usize;
    let cap = 64 + 8 * (usize::BITS - n_vertices.leading_zeros()) as usize;
    while g.n_slots() > 0 {
        assert!(rounds < cap, "components failed to converge");
        rounds += 1;
        let sel = super::star_merge::random_mate_select(ctx, &g, seed, rounds);
        if !sel.child_star.iter().any(|&c| c) {
            continue;
        }
        let merged = star_merge(ctx, &g, &sel.star, &sel.parent);
        // Update the original-vertex bookkeeping through the merge.
        let mut new_min = vec![usize::MAX; merged.graph.n_vertices];
        for (old, &new) in merged.vertex_map.iter().enumerate() {
            new_min[new] = new_min[new].min(min_orig[old]);
        }
        ctx.charge_permute_op(g.n_vertices);
        for r in rep.iter_mut() {
            *r = merged.vertex_map[*r];
        }
        ctx.charge_permute_op(n_vertices);
        min_orig = new_min;
        g = merged.graph;
    }
    rep.iter().map(|&r| min_orig[r]).collect()
}

/// Components with the default scan-model machine.
pub fn connected_components(
    n_vertices: usize,
    edges: &[(usize, usize, u64)],
    seed: u64,
) -> Vec<usize> {
    let mut ctx = Ctx::new(Model::Scan);
    connected_components_ctx(&mut ctx, n_vertices, edges, seed)
}

#[cfg(test)]
mod tests {
    use super::super::reference::components_reference;
    use super::*;

    fn check(n: usize, edges: &[(usize, usize, u64)], seed: u64) {
        assert_eq!(
            connected_components(n, edges, seed),
            components_reference(n, edges),
            "n={n} edges={edges:?}"
        );
    }

    #[test]
    fn two_components_and_isolated() {
        check(6, &[(0, 1, 0), (1, 2, 0), (4, 5, 0)], 9);
    }

    #[test]
    fn fully_connected() {
        let edges: Vec<(usize, usize, u64)> = (1..20).map(|v| (0, v, 0)).collect();
        check(20, &edges, 3);
    }

    #[test]
    fn no_edges() {
        check(5, &[], 1);
    }

    #[test]
    fn random_graphs() {
        let mut x = 99u64;
        let mut rng = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x >> 33
        };
        for trial in 0..10 {
            let n = 2 + (rng() % 50) as usize;
            let m = (rng() % 80) as usize;
            let edges: Vec<(usize, usize, u64)> = (0..m)
                .filter_map(|_| {
                    let u = (rng() as usize) % n;
                    let v = (rng() as usize) % n;
                    (u != v).then_some((u, v, 0))
                })
                .collect();
            check(n, &edges, trial);
        }
    }

    #[test]
    fn long_cycle() {
        let n = 64;
        let mut edges: Vec<(usize, usize, u64)> = (1..n).map(|v| (v - 1, v, 0)).collect();
        edges.push((n - 1, 0, 0));
        check(n, &edges, 13);
    }
}
