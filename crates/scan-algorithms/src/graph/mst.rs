//! The probabilistic minimum-spanning-tree algorithm (§2.3.3):
//! Sollin/Borůvka contraction with *random mate* star selection, each
//! contraction an `O(1)`-step star-merge — `O(lg n)` expected step
//! complexity on the scan model, versus `O(lg² n)` on the EREW P-RAM.
//!
//! "To find stars, each vertex flips a coin to decide whether they are
//! a child or parent. All children find their minimum edge (using a
//! min-distribute), and all such edges that are connected to a parent
//! are marked as star edges. Since, on average, ... 1/4 of the trees
//! are merged on each star-merge step."

use scan_pram::{Ctx, Model};

use super::segmented::SegGraph;
use super::star_merge::star_merge;

/// The result of an MST run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MstResult {
    /// Indices (into the input edge list) of the spanning-forest edges,
    /// ascending.
    pub edges: Vec<usize>,
    /// Sum of the chosen edges' weights.
    pub total_weight: u64,
    /// Star-merge rounds executed.
    pub rounds: usize,
}


/// Minimum spanning forest on a step-counting machine.
///
/// Weights are made distinct with the composite `(weight, edge id)`
/// order, so the forest matches Kruskal's exactly.
///
/// # Panics
/// If a weight needs more than 32 bits (the composite order rides both
/// halves in one 64-bit word).
pub fn minimum_spanning_tree_ctx(
    ctx: &mut Ctx,
    n_vertices: usize,
    edges: &[(usize, usize, u64)],
    seed: u64,
) -> MstResult {
    assert!(
        edges.iter().all(|&(_, _, w)| w <= u32::MAX as u64),
        "weights must fit in 32 bits"
    );
    // Composite weights make the minimum edge of every tree unique.
    let composite: Vec<(usize, usize, u64)> = edges
        .iter()
        .enumerate()
        .map(|(e, &(u, v, w))| (u, v, (w << 32) | e as u64))
        .collect();
    let mut g = SegGraph::from_edges_ctx(ctx, n_vertices, &composite);
    let mut chosen = Vec::new();
    let mut rounds = 0usize;
    let cap = 64 + 8 * (usize::BITS - n_vertices.leading_zeros()) as usize;
    while g.n_slots() > 0 {
        assert!(rounds < cap, "MST failed to converge");
        rounds += 1;
        // Composite weights make each child's minimum edge unique
        // within its segment, so the shared random-mate selection picks
        // exactly one star edge per merging child.
        let sel = super::star_merge::random_mate_select(ctx, &g, seed, rounds);
        // Record the merged edges (one per merging child).
        chosen.extend(ctx.pack(&g.edge_ids, &sel.child_star));
        if !sel.child_star.iter().any(|&c| c) {
            continue; // unlucky coin round; flip again
        }
        g = star_merge(ctx, &g, &sel.star, &sel.parent).graph;
    }
    chosen.sort_unstable();
    let total_weight = chosen.iter().map(|&e| edges[e].2).sum();
    MstResult {
        edges: chosen,
        total_weight,
        rounds,
    }
}

/// Minimum spanning forest with the default scan-model machine.
pub fn minimum_spanning_tree(
    n_vertices: usize,
    edges: &[(usize, usize, u64)],
    seed: u64,
) -> MstResult {
    let mut ctx = Ctx::new(Model::Scan);
    minimum_spanning_tree_ctx(&mut ctx, n_vertices, edges, seed)
}

#[cfg(test)]
mod tests {
    use super::super::reference::kruskal;
    use super::*;

    fn check(n: usize, edges: &[(usize, usize, u64)], seed: u64) -> MstResult {
        let r = minimum_spanning_tree(n, edges, seed);
        let (expect, total) = kruskal(n, edges);
        assert_eq!(r.edges, expect, "n={n} edges={edges:?}");
        assert_eq!(r.total_weight, total);
        r
    }

    #[test]
    fn figure6_graph_mst() {
        let edges = [
            (0, 1, 1),
            (1, 2, 2),
            (1, 4, 3),
            (2, 3, 4),
            (2, 4, 5),
            (3, 4, 6),
        ];
        let r = check(5, &edges, 42);
        assert_eq!(r.total_weight, 10);
    }

    #[test]
    fn single_edge_and_empty() {
        check(2, &[(0, 1, 9)], 1);
        let r = minimum_spanning_tree(4, &[], 1);
        assert!(r.edges.is_empty());
        assert_eq!(r.rounds, 0);
    }

    #[test]
    fn disconnected_forest() {
        let edges = [(0, 1, 3), (2, 3, 4), (0, 1, 10)];
        check(5, &edges, 7);
    }

    #[test]
    fn duplicate_weights_resolved_by_edge_id() {
        let edges = [(0, 1, 5), (1, 2, 5), (0, 2, 5)];
        let r = check(3, &edges, 3);
        assert_eq!(r.edges, vec![0, 1]);
    }

    #[test]
    fn random_graphs_match_kruskal() {
        let mut x = 2026u64;
        let mut rng = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x >> 33
        };
        for trial in 0..10 {
            let n = 3 + (rng() % 40) as usize;
            let m = (rng() % 120) as usize;
            let edges: Vec<(usize, usize, u64)> = (0..m)
                .filter_map(|_| {
                    let u = (rng() as usize) % n;
                    let v = (rng() as usize) % n;
                    (u != v).then(|| (u, v, rng() % 1000))
                })
                .collect();
            check(n, &edges, trial);
        }
    }

    #[test]
    fn dense_graph_logarithmic_rounds() {
        // Complete graph on 64 vertices: rounds should be O(lg n), far
        // below the vertex count.
        let n = 64;
        let mut edges = Vec::new();
        let mut w = 1u64;
        for u in 0..n {
            for v in (u + 1)..n {
                w = w.wrapping_mul(48271) % 100003;
                edges.push((u, v, w));
            }
        }
        let r = check(n, &edges, 11);
        assert!(r.rounds <= 40, "took {} rounds", r.rounds);
    }

    #[test]
    fn path_graph() {
        let edges: Vec<(usize, usize, u64)> =
            (1..50).map(|v| (v - 1, v, (v * 7 % 13) as u64)).collect();
        let r = check(50, &edges, 5);
        assert_eq!(r.edges.len(), 49, "a path's MST is the path itself");
    }
}
