//! Biconnected components (Table 1: `O(lg n)` on the scan model) via
//! the Tarjan–Vishkin reduction: biconnectivity of `G` reduces to
//! *connectivity* of an auxiliary graph on `G`'s spanning-tree edges,
//! and connectivity is the random-mate contraction we already have.
//!
//! Pipeline (every stage scan-native):
//! 1. spanning tree (unit-weight random-mate MST) and Euler-tour
//!    rooting → parents, preorder numbers, subtree sizes;
//! 2. `low`/`high`: subtree min/max of the nontree-edge reach of every
//!    vertex, computed with `lg n` rounds of doubling range-min over
//!    the preorder array (each round one elementwise vector operation);
//! 3. the auxiliary graph: tree edges are vertices; Tarjan–Vishkin's
//!    two rules add an auxiliary edge exactly when two tree edges must
//!    share a cycle;
//! 4. connected components of the auxiliary graph label the blocks;
//!    each nontree edge inherits the label of its deeper endpoint's
//!    tree edge.
//!
//! Articulation points and bridges fall out of the labelling.

use scan_pram::{Ctx, Model};

use super::components::connected_components_ctx;
use super::mst::minimum_spanning_tree_ctx;
use crate::tree_ops::euler_tour_ctx;

/// The output of [`biconnected_components`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BiconnectedResult {
    /// Block id of every input edge (ids are arbitrary but equal within
    /// a block; self-consistent across tree and nontree edges).
    pub edge_block: Vec<usize>,
    /// Whether each vertex is an articulation point.
    pub articulation: Vec<bool>,
    /// Whether each edge is a bridge (a block of its own).
    pub bridge: Vec<bool>,
    /// Number of distinct blocks.
    pub n_blocks: usize,
}

/// Sparse-table range-min/max over the preorder array: `lg n` doubling
/// rounds, each one elementwise vector operation over `n` values.
struct RangeMinMax {
    mins: Vec<Vec<u64>>,
    maxs: Vec<Vec<u64>>,
}

impl RangeMinMax {
    fn build(ctx: &mut Ctx, base_min: &[u64], base_max: &[u64]) -> Self {
        let n = base_min.len();
        let mut mins = vec![base_min.to_vec()];
        let mut maxs = vec![base_max.to_vec()];
        let mut width = 1;
        while width * 2 <= n {
            let (Some(prev_min), Some(prev_max)) = (mins.last(), maxs.last()) else {
                unreachable!("sparse tables seeded with the base row");
            };
            let next_min: Vec<u64> = (0..n)
                .map(|i| {
                    if i + width < n {
                        prev_min[i].min(prev_min[i + width])
                    } else {
                        prev_min[i]
                    }
                })
                .collect();
            let next_max: Vec<u64> = (0..n)
                .map(|i| {
                    if i + width < n {
                        prev_max[i].max(prev_max[i + width])
                    } else {
                        prev_max[i]
                    }
                })
                .collect();
            ctx.charge_elementwise_op(n);
            ctx.charge_elementwise_op(n);
            mins.push(next_min);
            maxs.push(next_max);
            width *= 2;
        }
        RangeMinMax { mins, maxs }
    }

    /// Min over `[l, r)`.
    fn min(&self, l: usize, r: usize) -> u64 {
        debug_assert!(l < r);
        let k = (usize::BITS - 1 - (r - l).leading_zeros()) as usize;
        self.mins[k][l].min(self.mins[k][r - (1 << k)])
    }

    /// Max over `[l, r)`.
    fn max(&self, l: usize, r: usize) -> u64 {
        debug_assert!(l < r);
        let k = (usize::BITS - 1 - (r - l).leading_zeros()) as usize;
        self.maxs[k][l].max(self.maxs[k][r - (1 << k)])
    }
}

/// Biconnected components of a **connected** graph, on a step-counting
/// machine.
///
/// # Panics
/// If the graph is empty or not connected, or an endpoint is out of
/// range.
pub fn biconnected_components_ctx(
    ctx: &mut Ctx,
    n_vertices: usize,
    edges: &[(usize, usize, u64)],
    seed: u64,
) -> BiconnectedResult {
    assert!(n_vertices >= 1, "need at least one vertex");
    if edges.is_empty() {
        assert_eq!(n_vertices, 1, "graph must be connected");
        return BiconnectedResult {
            edge_block: Vec::new(),
            articulation: vec![false],
            bridge: Vec::new(),
            n_blocks: 0,
        };
    }
    let m = edges.len();
    // 1. Spanning tree: unit weights make the MST any spanning tree.
    let unit: Vec<(usize, usize, u64)> = edges.iter().map(|&(u, v, _)| (u, v, 0)).collect();
    let tree = minimum_spanning_tree_ctx(ctx, n_vertices, &unit, seed);
    assert_eq!(
        tree.edges.len(),
        n_vertices - 1,
        "graph must be connected"
    );
    let is_tree_edge = {
        let mut f = vec![false; m];
        for &e in &tree.edges {
            f[e] = true;
        }
        f
    };
    ctx.charge_permute_op(m);
    let tree_edges: Vec<(usize, usize)> = tree.edges.iter().map(|&e| (edges[e].0, edges[e].1)).collect();
    // Root at 0; Euler tour gives parent / depth / subtree size, and
    // preorder = rank of the downward edge among downward edges, which
    // we recover by sorting vertices by (depth-extended) tour position.
    let tour = euler_tour_ctx(ctx, n_vertices, &tree_edges, 0, seed ^ 0x5eed);
    let parent = &tour.parent;
    let size = &tour.subtree_size;
    // Preorder: vertices sorted by the tour position of their entering
    // (downward) edge; the root is first.
    let pre = preorder_from_tour(ctx, n_vertices, &tree_edges, &tour);
    // vertex at each preorder slot (inverse of `pre`).
    let mut vertex_at = vec![0usize; n_vertices];
    for v in 0..n_vertices {
        vertex_at[pre[v]] = v;
    }
    ctx.charge_permute_op(n_vertices);

    // 2. local low/high: own preorder plus nontree-edge endpoints.
    let mut local_low: Vec<u64> = (0..n_vertices).map(|v| pre[v] as u64).collect();
    let mut local_high = local_low.clone();
    for (e, &(u, v, _)) in edges.iter().enumerate() {
        if !is_tree_edge[e] && u != v {
            local_low[u] = local_low[u].min(pre[v] as u64);
            local_low[v] = local_low[v].min(pre[u] as u64);
            local_high[u] = local_high[u].max(pre[v] as u64);
            local_high[v] = local_high[v].max(pre[u] as u64);
        }
    }
    ctx.charge_permute_op(m);
    ctx.charge_elementwise_op(m);
    // Reorder by preorder and build the doubling table.
    let low_by_pre: Vec<u64> = (0..n_vertices).map(|i| local_low[vertex_at[i]]).collect();
    let high_by_pre: Vec<u64> = (0..n_vertices).map(|i| local_high[vertex_at[i]]).collect();
    ctx.charge_permute_op(n_vertices);
    let table = RangeMinMax::build(ctx, &low_by_pre, &high_by_pre);
    // Subtree aggregates: low(v) = min over [pre(v), pre(v)+size(v)).
    let low: Vec<u64> = (0..n_vertices)
        .map(|v| table.min(pre[v], pre[v] + size[v] as usize))
        .collect();
    let high: Vec<u64> = (0..n_vertices)
        .map(|v| table.max(pre[v], pre[v] + size[v] as usize))
        .collect();
    ctx.charge_permute_op(n_vertices);

    // 3. The auxiliary graph on tree edges. Vertex v (≠ root)
    // represents the tree edge (parent(v), v).
    let root = 0usize;
    let mut aux_edges: Vec<(usize, usize, u64)> = Vec::new();
    // Rule (i): nontree edge {u, v}, neither an ancestor of the other.
    let is_ancestor =
        |a: usize, d: usize| pre[a] <= pre[d] && pre[d] < pre[a] + size[a] as usize;
    for (e, &(u, v, _)) in edges.iter().enumerate() {
        if !is_tree_edge[e] && u != v && !is_ancestor(u, v) && !is_ancestor(v, u) {
            aux_edges.push((u, v, 0));
        }
    }
    // Rule (ii): tree edge (w = parent(v), v) with w ≠ root joins
    // (parent(w), w) iff subtree(v) escapes subtree(w).
    for v in 0..n_vertices {
        if v == root || parent[v] == root {
            continue;
        }
        let w = parent[v];
        if low[v] < pre[w] as u64 || high[v] >= (pre[w] + size[w] as usize) as u64 {
            aux_edges.push((v, w, 0));
        }
    }
    ctx.charge_elementwise_op(m);
    ctx.charge_elementwise_op(n_vertices);

    // 4. Components of the auxiliary graph label the tree edges.
    let labels = connected_components_ctx(ctx, n_vertices, &aux_edges, seed ^ 0xb1c);
    // Per-edge block ids: a tree edge (p(v), v) takes label(v); a
    // nontree edge takes the label of its deeper endpoint (the one the
    // cycle enters last).
    let edge_block: Vec<usize> = edges
        .iter()
        .enumerate()
        .map(|(e, &(u, v, _))| {
            if is_tree_edge[e] {
                let child = if parent[u] == v { u } else { v };
                labels[child]
            } else if is_ancestor(u, v) {
                labels[v]
            } else {
                // v is an ancestor of u, or rule (i) connected the two
                // unrelated endpoints — either way u's label works.
                labels[u]
            }
        })
        .collect();
    ctx.charge_permute_op(m);

    // Blocks, bridges, articulation points.
    let mut block_sizes = std::collections::HashMap::new();
    for &b in &edge_block {
        *block_sizes.entry(b).or_insert(0usize) += 1;
    }
    let bridge: Vec<bool> = edge_block.iter().map(|b| block_sizes[b] == 1).collect();
    let mut incident_blocks: Vec<std::collections::HashSet<usize>> =
        vec![std::collections::HashSet::new(); n_vertices];
    for (e, &(u, v, _)) in edges.iter().enumerate() {
        if u != v {
            incident_blocks[u].insert(edge_block[e]);
            incident_blocks[v].insert(edge_block[e]);
        }
    }
    let articulation: Vec<bool> = incident_blocks.iter().map(|s| s.len() >= 2).collect();
    ctx.charge_permute_op(m);
    ctx.charge_elementwise_op(n_vertices);
    BiconnectedResult {
        edge_block,
        articulation,
        bridge,
        n_blocks: block_sizes.len(),
    }
}

/// Preorder numbers consistent with some DFS of the rooted tree. A
/// parallel implementation ranks the downward Euler-tour edges (the
/// tour already carries the positions); the host-side DFS below
/// produces an equivalent preorder and is charged as the `lg n`-round
/// ranking it stands for.
fn preorder_from_tour(
    ctx: &mut Ctx,
    n_vertices: usize,
    tree_edges: &[(usize, usize)],
    tour: &crate::tree_ops::EulerTour,
) -> Vec<usize> {
    let _ = tree_edges;
    let parent = &tour.parent;
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n_vertices];
    for v in 0..n_vertices {
        if parent[v] != v {
            children[parent[v]].push(v);
        }
    }
    let mut pre = vec![0usize; n_vertices];
    let mut stack = vec![0usize];
    let mut counter = 0;
    while let Some(v) = stack.pop() {
        pre[v] = counter;
        counter += 1;
        for &c in children[v].iter().rev() {
            stack.push(c);
        }
    }
    for _ in 0..(usize::BITS - n_vertices.leading_zeros()) {
        ctx.charge_elementwise_op(n_vertices);
    }
    pre
}

/// Biconnected components with the default scan-model machine.
pub fn biconnected_components(
    n_vertices: usize,
    edges: &[(usize, usize, u64)],
    seed: u64,
) -> BiconnectedResult {
    let mut ctx = Ctx::new(Model::Scan);
    biconnected_components_ctx(&mut ctx, n_vertices, edges, seed)
}

#[cfg(test)]
mod tests {
    use super::super::reference::biconnected_reference;
    use super::*;

    /// Compare block partitions up to relabelling.
    fn same_partition(a: &[usize], b: &[usize]) -> bool {
        if a.len() != b.len() {
            return false;
        }
        let mut fwd = std::collections::HashMap::new();
        let mut bwd = std::collections::HashMap::new();
        for (&x, &y) in a.iter().zip(b) {
            if *fwd.entry(x).or_insert(y) != y || *bwd.entry(y).or_insert(x) != x {
                return false;
            }
        }
        true
    }

    fn check(n: usize, edges: &[(usize, usize, u64)], seed: u64) -> BiconnectedResult {
        let got = biconnected_components(n, edges, seed);
        let expect = biconnected_reference(n, edges);
        assert!(
            same_partition(&got.edge_block, &expect.edge_block),
            "blocks differ: {:?} vs {:?} on {edges:?}",
            got.edge_block,
            expect.edge_block
        );
        assert_eq!(got.articulation, expect.articulation, "articulation points");
        assert_eq!(got.bridge, expect.bridge, "bridges");
        assert_eq!(got.n_blocks, expect.n_blocks);
        got
    }

    #[test]
    fn single_edge_is_a_bridge() {
        let r = check(2, &[(0, 1, 0)], 1);
        assert_eq!(r.n_blocks, 1);
        assert!(r.bridge[0]);
        assert_eq!(r.articulation, vec![false, false]);
    }

    #[test]
    fn triangle_is_one_block() {
        let r = check(3, &[(0, 1, 0), (1, 2, 0), (0, 2, 0)], 2);
        assert_eq!(r.n_blocks, 1);
        assert!(r.bridge.iter().all(|&b| !b));
    }

    #[test]
    fn two_triangles_sharing_a_vertex() {
        // Bowtie: vertex 2 is the articulation point.
        let edges = [
            (0, 1, 0),
            (1, 2, 0),
            (0, 2, 0),
            (2, 3, 0),
            (3, 4, 0),
            (2, 4, 0),
        ];
        let r = check(5, &edges, 3);
        assert_eq!(r.n_blocks, 2);
        assert_eq!(r.articulation, vec![false, false, true, false, false]);
    }

    #[test]
    fn path_is_all_bridges() {
        let edges: Vec<(usize, usize, u64)> = (1..6).map(|v| (v - 1, v, 0)).collect();
        let r = check(6, &edges, 4);
        assert_eq!(r.n_blocks, 5);
        assert!(r.bridge.iter().all(|&b| b));
        assert_eq!(r.articulation, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cycle_with_pendant() {
        // Square 0-1-2-3-0 plus pendant edge 3-4.
        let edges = [
            (0, 1, 0),
            (1, 2, 0),
            (2, 3, 0),
            (3, 0, 0),
            (3, 4, 0),
        ];
        let r = check(5, &edges, 5);
        assert_eq!(r.n_blocks, 2);
        assert!(r.bridge[4]);
        assert_eq!(r.articulation, vec![false, false, false, true, false]);
    }

    #[test]
    fn theta_graph_single_block() {
        // Two vertices joined by three internally-disjoint paths.
        let edges = [
            (0, 1, 0),
            (1, 5, 0),
            (0, 2, 0),
            (2, 3, 0),
            (3, 5, 0),
            (0, 4, 0),
            (4, 5, 0),
        ];
        let r = check(6, &edges, 6);
        assert_eq!(r.n_blocks, 1);
    }

    #[test]
    fn parallel_edges_share_a_block() {
        let edges = [(0, 1, 0), (0, 1, 0), (1, 2, 0)];
        let r = check(3, &edges, 7);
        assert_eq!(r.edge_block[0], r.edge_block[1]);
        assert!(r.bridge[2]);
    }

    #[test]
    fn random_connected_graphs() {
        let mut x = 77u64;
        let mut rng = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x >> 33
        };
        for trial in 0..12 {
            let n = 3 + (rng() % 30) as usize;
            // Spanning path + random extras keeps it connected.
            let mut edges: Vec<(usize, usize, u64)> =
                (1..n).map(|v| (v - 1, v, 0)).collect();
            for _ in 0..rng() % 40 {
                let u = (rng() as usize) % n;
                let v = (rng() as usize) % n;
                if u != v {
                    edges.push((u, v, 0));
                }
            }
            check(n, &edges, trial);
        }
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_graph_rejected() {
        biconnected_components(4, &[(0, 1, 0), (2, 3, 0)], 1);
    }
}
