//! The star-merge operation (§2.3.3, Figure 7).
//!
//! A *star* is a parent vertex plus child vertices, each child joined
//! to the parent by a marked *star edge*. `star_merge` contracts every
//! star into its parent in a constant number of program steps (for `m`
//! edges, `O(1)` in the scan model), following the paper's four-step
//! recipe:
//!
//! 1. **open space** — each child passes its segment length across its
//!    star edge; a segmented `+-distribute`/`+-scan` over the resulting
//!    needed-space vector sizes and places each parent's new segment;
//! 2. **permute the children in** — the parent returns each child's
//!    offset across the star edge, the child distributes it over its
//!    segment, and one permute moves every slot to its new home;
//! 3. **update cross pointers** — each slot passes its new position to
//!    the other end of its edge;
//! 4. **delete internal edges** — slots whose edge now starts and ends
//!    in the same segment (the star edges themselves, and any other
//!    newly-internal edge) are packed away.

use scan_core::op::{Max, Or, Sum};
use scan_pram::Ctx;

use super::segmented::SegGraph;

/// One random-mate star selection round (§2.3.3), shared by the MST
/// and connected-components contractions: flip a coin per vertex,
/// each child finds its minimum-weight slot with a segmented
/// min-distribute, and the child-side winners whose other end is a
/// parent become star edges (marked on both ends).
pub(crate) struct StarSelection {
    /// Per-vertex parent flags from the coin flips.
    pub parent: Vec<bool>,
    /// Star-edge flags per slot, both ends marked.
    pub star: Vec<bool>,
    /// The child-side star slots only (one per merging child).
    pub child_star: Vec<bool>,
}

pub(crate) fn random_mate_select(
    ctx: &mut Ctx,
    g: &SegGraph,
    seed: u64,
    round: usize,
) -> StarSelection {
    use crate::util::hash64;
    use scan_core::op::Min;
    let s = g.n_slots();
    let ids = ctx.iota(g.n_vertices);
    let parent = ctx.map(&ids, |v| hash64(seed ^ ((round as u64) << 32) ^ v as u64) & 1 == 1);
    let parent_slot = g.vertex_to_slots(ctx, &parent);
    let segs = g.segments();
    let min_w = ctx.seg_distribute::<Min, _>(&g.weights, &segs);
    let is_min = ctx.zip(&g.weights, &min_w, |w, m| w == m);
    let partner_parent = g.across_edges(ctx, &parent_slot);
    let child_star: Vec<bool> = (0..s)
        .map(|i| is_min[i] && !parent_slot[i] && partner_parent[i])
        .collect();
    ctx.charge_elementwise_op(s);
    let partner_child_star = g.across_edges(ctx, &child_star);
    let star = ctx.zip(&child_star, &partner_child_star, |a, b| a | b);
    StarSelection {
        parent,
        star,
        child_star,
    }
}

/// The output of [`star_merge`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StarMergeResult {
    /// The contracted graph. Its vertex count is the number of
    /// *standalone* (non-merging) vertices of the input.
    pub graph: SegGraph,
    /// Map from each input vertex to the contracted vertex that now
    /// represents it.
    pub vertex_map: Vec<usize>,
}

/// Contract every star of `g` in `O(1)` program steps.
///
/// `star_edge` marks, per slot, **both ends** of each star edge;
/// `parent` marks, per vertex, the star parents. Each merging child
/// (a non-parent vertex with a marked slot) must have exactly one
/// marked slot, whose other end lies in a parent vertex.
///
/// # Panics
/// If the star structure is inconsistent (checked in debug builds).
pub fn star_merge(ctx: &mut Ctx, g: &SegGraph, star_edge: &[bool], parent: &[bool]) -> StarMergeResult {
    let s = g.n_slots();
    assert_eq!(star_edge.len(), s, "star_edge length mismatch");
    assert_eq!(parent.len(), g.n_vertices, "parent length mismatch");
    let segs = g.segments();

    let parent_slot = g.vertex_to_slots(ctx, parent);
    // A merging child owns a marked slot and is not a parent.
    let child_star_slot = ctx.zip(star_edge, &parent_slot, |e, p| e & !p);
    let parent_star_slot = ctx.zip(star_edge, &parent_slot, |e, p| e & p);
    let merging_child = g.per_vertex_reduce::<Or, _>(ctx, &child_star_slot);
    debug_assert!(
        (0..g.n_vertices).all(|v| !(merging_child[v] && parent[v])),
        "a vertex cannot be both parent and merging child"
    );
    #[cfg(debug_assertions)]
    {
        // Exactly one star slot per merging child, and its other end in
        // a parent vertex.
        let mut count = vec![0usize; g.n_vertices];
        for i in 0..s {
            if child_star_slot[i] {
                count[g.vertex_of_slot[i]] += 1;
                assert!(
                    parent[g.vertex_of_slot[g.cross_pointers[i]]],
                    "star edge must lead to a parent"
                );
            }
        }
        for v in 0..g.n_vertices {
            assert!(
                count[v] == usize::from(merging_child[v]),
                "merging child must have exactly one star edge"
            );
        }
    }
    let standalone: Vec<bool> = ctx.map(&merging_child, |c| !c);
    let standalone_slot = g.vertex_to_slots(ctx, &standalone);

    // ---- step 1: open space ----
    // Each child passes its segment length across its star edge.
    let ones = ctx.constant(s, 1usize);
    let seg_len = ctx.seg_distribute::<Sum, _>(&ones, &segs);
    let incoming_len = g.across_edges(ctx, &seg_len);
    // Needed space: standalone slots keep themselves (1) and parent-side
    // star slots additionally open room for their child's slots.
    let needed: Vec<usize> = (0..s)
        .map(|i| {
            if !standalone_slot[i] {
                0
            } else if parent_star_slot[i] {
                1 + incoming_len[i]
            } else {
                1
            }
        })
        .collect();
    ctx.charge_elementwise_op(s);
    let (new_pos, total) = ctx.scan_with_total::<Sum, _>(&needed);

    // ---- step 2: permute the children into the opened space ----
    // The parent returns each child's base offset across the star edge;
    // the child distributes it over its segment (a max-distribute of
    // the single nonzero value).
    let base_msg: Vec<usize> = (0..s)
        .map(|i| if parent_star_slot[i] { new_pos[i] + 1 } else { 0 })
        .collect();
    ctx.charge_elementwise_op(s);
    let child_base_at_star = g.across_edges(ctx, &base_msg);
    let child_base = ctx.seg_distribute::<Max, _>(&child_base_at_star, &segs);
    let head_of = segs.head_index_per_element();
    let new_index: Vec<usize> = (0..s)
        .map(|i| {
            if standalone_slot[i] {
                new_pos[i]
            } else {
                child_base[i] + (i - head_of[i])
            }
        })
        .collect();
    ctx.charge_elementwise_op(s);
    debug_assert_eq!(
        {
            let mut sorted = new_index.clone();
            sorted.sort_unstable();
            sorted.dedup();
            sorted.len()
        },
        s,
        "new indices must be a permutation"
    );
    debug_assert!(new_index.iter().all(|&i| i < total));

    // New vertex numbering: standalone vertices in order.
    let new_id_exclusive = ctx.enumerate(&standalone);
    // Owner of each slot after the merge: its own vertex's new id for
    // standalone slots; the parent's new id (sent across the star edge
    // and distributed over the child segment) for child slots.
    let own_new_id = g.vertex_to_slots(ctx, &new_id_exclusive);
    let id_msg: Vec<usize> = (0..s)
        .map(|i| if parent_star_slot[i] { own_new_id[i] + 1 } else { 0 })
        .collect();
    ctx.charge_elementwise_op(s);
    let parent_id_at_star = g.across_edges(ctx, &id_msg);
    let parent_id = ctx.seg_distribute::<Max, _>(&parent_id_at_star, &segs);
    let owner_new_id: Vec<usize> = (0..s)
        .map(|i| {
            if standalone_slot[i] {
                own_new_id[i]
            } else {
                parent_id[i] - 1
            }
        })
        .collect();
    ctx.charge_elementwise_op(s);

    // ---- step 3: move everything and update the cross pointers ----
    let new_vertex_of_slot = ctx.permute_unchecked(&owner_new_id, &new_index);
    let new_weights = ctx.permute_unchecked(&g.weights, &new_index);
    let new_edge_ids = ctx.permute_unchecked(&g.edge_ids, &new_index);
    // "Pass the new position of each end of an edge to the other end."
    let partner_new = g.across_edges(ctx, &new_index);
    let new_cross = ctx.permute_unchecked(&partner_new, &new_index);

    let n_new_vertices = ctx.count(&standalone);
    let merged = SegGraph {
        n_vertices: n_new_vertices,
        vertex_of_slot: new_vertex_of_slot,
        cross_pointers: new_cross,
        weights: new_weights,
        edge_ids: new_edge_ids,
    };

    // ---- step 4: delete edges that now point within a segment ----
    let partner_vertex = merged.across_edges(ctx, &merged.vertex_of_slot);
    let keep = ctx.zip(&merged.vertex_of_slot, &partner_vertex, |a, b| a != b);
    let graph = merged.delete_slots(ctx, &keep);

    // Vertex map: standalone vertices keep their (renumbered) identity;
    // merging children take their parent's.
    let parent_new_id_per_vertex = {
        // Each child's star slot already knows its parent's new id.
        let msg: Vec<usize> = (0..s)
            .map(|i| if child_star_slot[i] { parent_id[i] } else { 0 })
            .collect();
        ctx.charge_elementwise_op(s);
        g.per_vertex_reduce::<Max, _>(ctx, &msg)
    };
    let vertex_map: Vec<usize> = (0..g.n_vertices)
        .map(|v| {
            if standalone[v] {
                new_id_exclusive[v]
            } else {
                parent_new_id_per_vertex[v] - 1
            }
        })
        .collect();
    ctx.charge_elementwise_op(g.n_vertices);

    StarMergeResult { graph, vertex_map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_pram::Model;

    /// Figure 7's star on the Figure 6 graph: parents v1, v3, v5
    /// (0-based 0, 2, 4), children v2 and v4 (1 and 3), star edges
    /// w2 (v2–v3) and w4 (v3–v4).
    fn figure7_inputs() -> (SegGraph, Vec<bool>, Vec<bool>) {
        let g = SegGraph::figure6();
        // Star-Edge = [F F T F T T F T F F F F]
        let star = vec![
            false, false, true, false, true, true, false, true, false, false, false, false,
        ];
        // Parent = [T F T F T]
        let parent = vec![true, false, true, false, true];
        (g, star, parent)
    }

    #[test]
    fn figure7_star_merge() {
        let (g, star, parent) = figure7_inputs();
        let mut ctx = Ctx::new(Model::Scan);
        let r = star_merge(&mut ctx, &g, &star, &parent);
        r.graph.validate();
        // After: 3 vertices (old v1, merged v3', old v5), 8 slots.
        assert_eq!(r.graph.n_vertices, 3);
        assert_eq!(r.graph.n_slots(), 8);
        // segment-descriptor = [T T F F F T F F] → lengths 1, 4, 3.
        assert_eq!(
            r.graph.segments().flags(),
            &[true, true, false, false, false, true, false, false]
        );
        // weights = [w1 w1 w3 w5 w6 w3 w5 w6] up to order within
        // segments; check as multisets per segment.
        let seg_weights: Vec<Vec<u64>> = r
            .graph
            .segments()
            .ranges()
            .iter()
            .map(|&(a, b)| {
                let mut w = r.graph.weights[a..b].to_vec();
                w.sort_unstable();
                w
            })
            .collect();
        assert_eq!(seg_weights, vec![vec![1], vec![1, 3, 5, 6], vec![3, 5, 6]]);
        // Children map to the merged parent.
        assert_eq!(r.vertex_map, vec![0, 1, 1, 1, 2]);
    }

    #[test]
    fn merge_without_any_star_is_identity_shape() {
        let g = SegGraph::figure6();
        let mut ctx = Ctx::new(Model::Scan);
        let star = vec![false; g.n_slots()];
        let parent = vec![true; g.n_vertices];
        let r = star_merge(&mut ctx, &g, &star, &parent);
        r.graph.validate();
        assert_eq!(r.graph.n_vertices, 5);
        assert_eq!(r.graph.n_slots(), 12);
        assert_eq!(r.vertex_map, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn two_children_one_parent_triangle_collapses() {
        // Triangle 0-1-2 with both 1 and 2 merging into 0: all edges
        // become internal and vanish.
        let g = SegGraph::from_edges(3, &[(0, 1, 1), (0, 2, 2), (1, 2, 3)]);
        let mut ctx = Ctx::new(Model::Scan);
        // Star edges: the (0,1) and (0,2) edges, both directions.
        let star: Vec<bool> = (0..g.n_slots()).map(|i| g.edge_ids[i] != 2).collect();
        let parent = vec![true, false, false];
        let r = star_merge(&mut ctx, &g, &star, &parent);
        r.graph.validate();
        assert_eq!(r.graph.n_vertices, 1);
        assert_eq!(r.graph.n_slots(), 0, "all edges became internal");
        assert_eq!(r.vertex_map, vec![0, 0, 0]);
    }

    #[test]
    fn disjoint_stars_merge_simultaneously() {
        // Path 0-1-2-3 plus edge 1-2; stars: 1→0 and 3→2.
        let g = SegGraph::from_edges(4, &[(0, 1, 1), (1, 2, 2), (2, 3, 3)]);
        let mut ctx = Ctx::new(Model::Scan);
        let star: Vec<bool> = (0..g.n_slots())
            .map(|i| g.edge_ids[i] == 0 || g.edge_ids[i] == 2)
            .collect();
        let parent = vec![true, false, true, false];
        let r = star_merge(&mut ctx, &g, &star, &parent);
        r.graph.validate();
        assert_eq!(r.graph.n_vertices, 2);
        // Only the middle edge survives, between the two merged vertices.
        assert_eq!(r.graph.n_slots(), 2);
        assert_eq!(r.vertex_map, vec![0, 0, 1, 1]);
        let mut ids = r.graph.edge_ids.clone();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 1]);
    }

    #[test]
    fn parallel_edges_to_merged_vertex_survive_as_multiedges() {
        // 0-1 and 0-2; 1 merges into 2... 1 and 2 connected? Use:
        // edges (1,0) (2,0) and (1,2); merge 1 into 2 via (1,2).
        let g = SegGraph::from_edges(3, &[(1, 0, 5), (2, 0, 6), (1, 2, 7)]);
        let mut ctx = Ctx::new(Model::Scan);
        let star: Vec<bool> = (0..g.n_slots()).map(|i| g.edge_ids[i] == 2).collect();
        let parent = vec![false, false, true];
        let r = star_merge(&mut ctx, &g, &star, &parent);
        r.graph.validate();
        assert_eq!(r.graph.n_vertices, 2);
        // Vertices {0} and {1,2 merged}; two parallel edges remain.
        assert_eq!(r.graph.n_slots(), 4);
        assert_eq!(r.vertex_map, vec![0, 1, 1]);
    }

    #[test]
    fn step_complexity_constant_in_scan_model() {
        // The number of vector operations must not depend on graph size.
        let ops_for = |n: usize| {
            let edges: Vec<(usize, usize, u64)> =
                (1..n).map(|v| (v - 1, v, v as u64)).collect();
            let g = SegGraph::from_edges(n, &edges);
            let star: Vec<bool> = (0..g.n_slots()).map(|i| g.edge_ids[i].is_multiple_of(2) && {
                let e = g.edge_ids[i];
                e.is_multiple_of(4)
            }).collect();
            // Stars: edge 4k merges vertex 4k+1 into 4k (even edges
            // chosen sparsely so stars stay disjoint).
            let parent: Vec<bool> = (0..n).map(|v| v % 4 != 1).collect();
            let mut ctx = Ctx::new(Model::Scan);
            star_merge(&mut ctx, &g, &star, &parent);
            ctx.stats().ops()
        };
        assert_eq!(ops_for(64), ops_for(1024));
    }
}
