//! Matrix operations (Table 1's matrix rows): vector×matrix in `O(1)`
//! steps with `n²` processors, matrix×matrix in `O(n)`, and a linear
//! system solver with partial pivoting in `O(n)` — the pivot search is
//! a `max`-reduce instead of the EREW's `O(lg n)` tree, which is where
//! the table's `O(n lg n) → O(n)` improvement comes from.

use scan_core::op::{Max, Sum};
use scan_core::segmented::Segments;
use scan_pram::{Ctx, Model};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Row-major storage, `rows * cols` long.
    pub data: Vec<f64>,
}

impl Matrix {
    /// Build from row-major data.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// The zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }
}

/// `y = x A` with `rows × cols` processors: distribute `x` over the
/// rows, multiply elementwise, and sum each column with one segmented
/// `+`-reduce over the column-major permutation — `O(1)` program steps
/// (Table 1's Vector × Matrix row).
pub fn vec_matrix_ctx(ctx: &mut Ctx, x: &[f64], a: &Matrix) -> Vec<f64> {
    assert_eq!(x.len(), a.rows, "dimension mismatch");
    if a.rows == 0 || a.cols == 0 {
        return vec![0.0; a.cols];
    }
    let n = a.rows * a.cols;
    // x_i broadcast across row i (one distribute).
    let x_rep = ctx.distribute(x, &vec![a.cols; a.rows]);
    let products = ctx.zip(&x_rep, &a.data, |xi, aij| xi * aij);
    // Transpose to column-major (one permute), then one segmented
    // reduce per column.
    let idx: Vec<usize> = (0..n)
        .map(|i| {
            let (r, c) = (i / a.cols, i % a.cols);
            c * a.rows + r
        })
        .collect();
    ctx.charge_elementwise_op(n);
    let col_major = ctx.permute_unchecked(&products, &idx);
    let segs = Segments::from_lengths(&vec![a.rows; a.cols]);
    ctx.charge_seg_scan_op(n);
    scan_core::segops::seg_reduce::<Sum, _>(&col_major, &segs)
}

/// `y = x A` with the default scan-model machine.
pub fn vec_matrix(x: &[f64], a: &Matrix) -> Vec<f64> {
    let mut ctx = Ctx::new(Model::Scan);
    vec_matrix_ctx(&mut ctx, x, a)
}

/// `C = A B` with `n²` processors in `O(n)` steps: `n` rank-1 updates,
/// each an `O(1)` broadcast-multiply-accumulate (Table 1's
/// Matrix × Matrix row).
pub fn mat_mul_ctx(ctx: &mut Ctx, a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols, b.rows, "dimension mismatch");
    let (m, n, k) = (a.rows, b.cols, a.cols);
    let mut c = vec![0.0f64; m * n];
    for t in 0..k {
        // Column t of A down the rows, row t of B across the columns.
        let col_t: Vec<f64> = (0..m).map(|r| a.at(r, t)).collect();
        let a_rep = ctx.distribute(&col_t, &vec![n; m]);
        let row_t = &b.data[t * n..(t + 1) * n];
        let b_rep: Vec<f64> = (0..m * n).map(|i| row_t[i % n]).collect();
        ctx.charge_permute_op(m * n); // broadcast of the row
        let products = ctx.zip(&a_rep, &b_rep, |x, y| x * y);
        c = ctx.zip(&products, &c, |p, acc| acc + p);
    }
    Matrix::new(m, n, c)
}

/// `C = A B` with the default scan-model machine.
pub fn mat_mul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut ctx = Ctx::new(Model::Scan);
    mat_mul_ctx(&mut ctx, a, b)
}

/// Solve `A x = b` by Gaussian elimination with partial pivoting, in
/// `O(n)` program steps with `n²` processors: each of the `n`
/// iterations finds its pivot with one `max`-reduce and eliminates with
/// one rank-1 update (Table 1's Linear Systems row).
///
/// Returns `None` when the matrix is singular (pivot below `1e-12`).
pub fn solve_ctx(ctx: &mut Ctx, a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(a.rows, a.cols, "square systems only");
    assert_eq!(b.len(), a.rows, "dimension mismatch");
    let n = a.rows;
    // Augmented system, row-major.
    let cols = n + 1;
    let mut m = vec![0.0f64; n * cols];
    for r in 0..n {
        m[r * cols..r * cols + n].copy_from_slice(&a.data[r * n..(r + 1) * n]);
        m[r * cols + n] = b[r];
    }
    for k in 0..n {
        // Pivot: the row with the largest |m[r][k]|, r ≥ k — one
        // max-reduce over a composite (|value| bits, row).
        let candidates: Vec<(f64, usize)> =
            (k..n).map(|r| (m[r * cols + k].abs(), r)).collect();
        ctx.charge_elementwise_op(n - k);
        ctx.charge_scan_op(n - k);
        let (pmax, prow) = candidates
            .iter()
            .copied()
            .fold((f64::NEG_INFINITY, usize::MAX), |acc, x| {
                if x.0 > acc.0 {
                    x
                } else {
                    acc
                }
            });
        if pmax < 1e-12 {
            return None;
        }
        if prow != k {
            for c in 0..cols {
                m.swap(k * cols + c, prow * cols + c);
            }
        }
        ctx.charge_permute_op(cols);
        // Eliminate below (and above — Gauss-Jordan keeps the step
        // count O(1) per iteration without a back-substitution scan).
        let pivot = m[k * cols + k];
        let pivot_row: Vec<f64> = m[k * cols..(k + 1) * cols].to_vec();
        ctx.charge_permute_op(cols); // broadcast pivot row
        ctx.charge_elementwise_op(n * cols); // the rank-1 update
        for r in 0..n {
            if r == k {
                continue;
            }
            let f = m[r * cols + k] / pivot;
            for c in k..cols {
                m[r * cols + c] -= f * pivot_row[c];
            }
        }
    }
    Some((0..n).map(|r| m[r * cols + n] / m[r * cols + r]).collect())
}

/// Solve with the default scan-model machine.
pub fn solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let mut ctx = Ctx::new(Model::Scan);
    solve_ctx(&mut ctx, a, b)
}

/// Largest pivot magnitude helper exposed for the bench harness: a
/// `max`-scan-based argmax over a column.
pub fn argmax_abs_ctx(ctx: &mut Ctx, v: &[f64]) -> usize {
    assert!(!v.is_empty());
    // Composite (|value| monotone bits, index) max-reduce.
    let enc: Vec<u128> = v
        .iter()
        .enumerate()
        .map(|(i, &x)| ((scan_core::simulate::f64_key(x.abs()) as u128) << 32) | i as u128)
        .collect();
    ctx.charge_elementwise_op(v.len());
    (ctx.reduce::<Max, _>(&enc) & 0xFFFF_FFFF) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn vec_matrix_small() {
        let a = Matrix::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        approx(&vec_matrix(&[1.0, 10.0], &a), &[41.0, 52.0, 63.0], 1e-12);
    }

    #[test]
    fn vec_matrix_identity() {
        let a = Matrix::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        approx(&vec_matrix(&x, &a), &x, 1e-12);
    }

    #[test]
    fn matmul_identity_and_known() {
        let a = Matrix::new(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert_eq!(mat_mul(&a, &i), a);
        let b = Matrix::new(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = mat_mul(&a, &b);
        approx(&c.data, &[19.0, 22.0, 43.0, 50.0], 1e-12);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::new(2, 3, vec![1.0, 0.0, 2.0, 0.0, 1.0, 1.0]);
        let b = Matrix::new(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let c = mat_mul(&a, &b);
        approx(&c.data, &[11.0, 14.0, 8.0, 10.0], 1e-12);
    }

    #[test]
    fn solve_known_system() {
        // x + y = 3, x - y = 1 → (2, 1)
        let a = Matrix::new(2, 2, vec![1.0, 1.0, 1.0, -1.0]);
        approx(&solve(&a, &[3.0, 1.0]).expect("nonsingular"), &[2.0, 1.0], 1e-9);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero in the leading position forces a row swap.
        let a = Matrix::new(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        approx(&solve(&a, &[5.0, 7.0]).expect("nonsingular"), &[7.0, 5.0], 1e-9);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::new(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(solve(&a, &[1.0, 2.0]), None);
    }

    #[test]
    fn random_systems_residual() {
        let mut x = 6u64;
        let mut rng = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(17);
            ((x >> 33) % 2000) as f64 / 100.0 - 10.0
        };
        for n in [1usize, 2, 5, 12, 24] {
            let a = Matrix::new(n, n, (0..n * n).map(|_| rng()).collect());
            let b: Vec<f64> = (0..n).map(|_| rng()).collect();
            if let Some(sol) = solve(&a, &b) {
                // Residual ‖Ax − b‖∞ must be tiny.
                for (r, &br) in b.iter().enumerate() {
                    let ax: f64 = (0..n).map(|c| a.at(r, c) * sol[c]).sum();
                    assert!((ax - br).abs() < 1e-6, "n={n} r={r}");
                }
            }
        }
    }

    #[test]
    fn argmax_abs_finds_largest() {
        let mut ctx = Ctx::new(Model::Scan);
        assert_eq!(argmax_abs_ctx(&mut ctx, &[1.0, -9.0, 3.0]), 1);
        assert_eq!(argmax_abs_ctx(&mut ctx, &[0.0]), 0);
    }

    #[test]
    fn step_complexity_linear_in_n_for_solver() {
        // Steps(2n) / Steps(n) stays near 2 with p = n² processors.
        let steps_for = |n: usize| {
            let a = Matrix::identity(n);
            let b = vec![1.0; n];
            let mut ctx = Ctx::new(Model::Scan);
            solve_ctx(&mut ctx, &a, &b);
            ctx.steps()
        };
        let (s8, s16) = (steps_for(8), steps_for(16));
        let ratio = s16 as f64 / s8 as f64;
        assert!(ratio < 3.0, "ratio {ratio}");
    }
}
