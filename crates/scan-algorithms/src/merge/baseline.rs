//! Merge baselines: the sequential two-finger merge (the work bound any
//! parallel merge is measured against) and Batcher's bitonic merging
//! network (the classic `O(lg n)`-step EREW merge).

use scan_pram::{Ctx, Model};

/// Sequential two-finger merge — the reference for correctness and the
/// `O(n)`-work baseline.
pub fn seq_merge(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Bitonic merge of two sorted vectors on a step-counting machine:
/// `lg n` compare-exchange stages. "As shown by Batcher, this can be
/// executed in a single pass of an Omega network" (§4).
pub fn bitonic_merge_ctx(ctx: &mut Ctx, a: &[u64], b: &[u64]) -> Vec<u64> {
    let n_out = a.len() + b.len();
    if n_out == 0 {
        return Vec::new();
    }
    let n = n_out.next_power_of_two();
    // ascending ++ padding ++ descending is bitonic.
    let mut v = Vec::with_capacity(n);
    v.extend_from_slice(a);
    v.resize(n - b.len(), u64::MAX);
    v.extend(b.iter().rev());
    let mut j = n / 2;
    while j > 0 {
        let idx: Vec<usize> = (0..n).map(|i| i ^ j).collect();
        let partner = ctx.gather(&v, &idx);
        let take_min: Vec<bool> = (0..n).map(|i| i & j == 0).collect();
        let mins = ctx.zip(&v, &partner, |x, y| x.min(y));
        let maxs = ctx.zip(&v, &partner, |x, y| x.max(y));
        v = ctx.select(&take_min, &mins, &maxs);
        j /= 2;
    }
    v.truncate(n_out);
    v
}

/// Bitonic merge with the default scan-model machine.
pub fn bitonic_merge(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut ctx = Ctx::new(Model::Scan);
    bitonic_merge_ctx(&mut ctx, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_pram::StepKind;

    fn check(a: &[u64], b: &[u64]) {
        let mut expect: Vec<u64> = a.iter().chain(b).copied().collect();
        expect.sort_unstable();
        assert_eq!(seq_merge(a, b), expect);
        assert_eq!(bitonic_merge(a, b), expect, "a={a:?} b={b:?}");
    }

    #[test]
    fn basic_merges() {
        check(&[1, 3, 5], &[2, 4, 6]);
        check(&[], &[1, 2]);
        check(&[1, 2], &[]);
        check(&[], &[]);
        check(&[7], &[7]);
    }

    #[test]
    fn uneven_lengths_and_duplicates() {
        check(&[1, 1, 1, 9, 9], &[1, 9]);
        check(&[5], &[0, 1, 2, 3, 4, 6, 7, 8, 9]);
        check(&[u64::MAX - 1, u64::MAX], &[0]);
    }

    #[test]
    fn random_merges() {
        let mut x = 17u64;
        let mut rng = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
            x >> 35
        };
        for _ in 0..20 {
            let mut a: Vec<u64> = (0..rng() % 50).map(|_| rng() % 100).collect();
            let mut b: Vec<u64> = (0..rng() % 50).map(|_| rng() % 100).collect();
            a.sort_unstable();
            b.sort_unstable();
            check(&a, &b);
        }
    }

    #[test]
    fn bitonic_merge_takes_lg_n_stages() {
        let a: Vec<u64> = (0..64).map(|i| 2 * i).collect();
        let b: Vec<u64> = (0..64).map(|i| 2 * i + 1).collect();
        let mut ctx = Ctx::new(Model::Scan);
        bitonic_merge_ctx(&mut ctx, &a, &b);
        // 128 elements → 7 stages, each one gather.
        assert_eq!(ctx.stats().ops_of(StepKind::Permute), 7);
    }
}
