//! The halving merge (§2.5.1, Figure 12) — the paper's one *original*
//! algorithm: merge two sorted vectors in `O(n/p + lg n)` steps, which
//! is optimal for `p < n/lg n`.
//!
//! The idea: extract the odd-indexed elements of both vectors (their
//! first, third, ... elements), recursively merge those half-length
//! vectors, then perform **even-insertion**: place each unmerged
//! element directly after the element it originally followed, producing
//! a *near-merge* vector whose disorder consists only of single
//! non-overlapping rotations, which two scans repair:
//!
//! ```text
//! head-copy ← max(max-scan(near-merge), near-merge)
//! result    ← min(min-backscan(near-merge), head-copy)
//! ```
//!
//! As the paper suggests, the recursion communicates **merge-flag
//! vectors** (`false` = next element of `A`, `true` = next element of
//! `B`), which "both uniquely specify how the elements should be merged
//! and specify in which position each element belongs".

use scan_core::op::{Max, Min};
use scan_pram::{Ctx, Model};

/// Maximum key value: the even-insertion rides on a `(key, source)`
/// composite in 64 bits, so keys must leave the top bit free.
pub const MAX_KEY: u64 = (1 << 63) - 1;

/// Merge two sorted vectors on a step-counting machine, returning the
/// merged values. Ties are broken stably (`a` before `b`).
///
/// # Panics
/// If an input is unsorted (debug) or a key exceeds [`MAX_KEY`].
pub fn halving_merge_ctx(ctx: &mut Ctx, a: &[u64], b: &[u64]) -> Vec<u64> {
    let flags = halving_merge_flags(ctx, a, b);
    ctx.flag_merge(&flags, a, b)
}

/// Merge with the default scan-model machine.
pub fn halving_merge(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut ctx = Ctx::new(Model::Scan);
    halving_merge_ctx(&mut ctx, a, b)
}

/// The merge-flag form: `flags[i]` is `true` when position `i` of the
/// merged result comes from `b`.
pub fn halving_merge_flags(ctx: &mut Ctx, a: &[u64], b: &[u64]) -> Vec<bool> {
    for v in [a, b] {
        debug_assert!(v.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
        assert!(
            v.iter().all(|&k| k <= MAX_KEY),
            "keys must leave the top bit free"
        );
    }
    hm(ctx, a, b)
}

fn hm(ctx: &mut Ctx, a: &[u64], b: &[u64]) -> Vec<bool> {
    if a.is_empty() {
        return vec![true; b.len()];
    }
    if b.is_empty() {
        return vec![false; a.len()];
    }
    if a.len() == 1 {
        return insert_single(ctx, a[0], b, false);
    }
    if b.len() == 1 {
        return insert_single(ctx, b[0], a, true);
    }
    // Extract the odd-indexed elements (first, third, ...) by packing.
    let a0: Vec<u64> = a.iter().step_by(2).copied().collect();
    let b0: Vec<u64> = b.iter().step_by(2).copied().collect();
    ctx.pack(a, &alternating(a.len()));
    ctx.pack(b, &alternating(b.len()));
    let f0 = hm(ctx, &a0, &b0);
    even_insertion(ctx, a, b, &f0)
}

fn alternating(n: usize) -> Vec<bool> {
    (0..n).map(|i| i % 2 == 0).collect()
}

/// Merge a single element into a sorted vector with two scans.
/// `single_is_b` says whether the singleton came from `B`.
fn insert_single(ctx: &mut Ctx, x: u64, v: &[u64], single_is_b: bool) -> Vec<bool> {
    // Stable: `a` elements precede equal `b` elements.
    let pos = if single_is_b {
        // x (from b) goes after all v (from a) elements ≤ x.
        let le = ctx.map(v, |y| y <= x);
        ctx.count(&le)
    } else {
        // x (from a) goes before all v (from b) elements ≥ x.
        let lt = ctx.map(v, |y| y < x);
        ctx.count(&lt)
    };
    let n = v.len() + 1;
    (0..n).map(|i| (i == pos) == single_is_b).collect()
}

/// The even-insertion: given the merge flags `f0` of the half-length
/// vectors, produce the merge flags of the full vectors.
fn even_insertion(ctx: &mut Ctx, a: &[u64], b: &[u64], f0: &[bool]) -> Vec<bool> {
    let m_len = f0.len();
    // Composite key (value << 1 | is_b): order-compatible with the key
    // order, stable (a before b), and carries the flag through the
    // rotation-repair scans.
    let not_f0: Vec<bool> = f0.iter().map(|&f| !f).collect();
    let enum_a = ctx.enumerate(&not_f0);
    let enum_b = ctx.enumerate(f0);
    // Per merged slot: its composite value, and its original successor's
    // composite value if the successor exists.
    let mut merged = Vec::with_capacity(m_len);
    let mut succ = Vec::with_capacity(m_len);
    let mut counts = Vec::with_capacity(m_len);
    for i in 0..m_len {
        let (src, idx, bit) = if f0[i] {
            (b, 2 * enum_b[i], 1u64)
        } else {
            (a, 2 * enum_a[i], 0u64)
        };
        merged.push((src[idx] << 1) | bit);
        if idx + 1 < src.len() {
            succ.push(Some((src[idx + 1] << 1) | bit));
            counts.push(2);
        } else {
            succ.push(None);
            counts.push(1);
        }
    }
    // The loop above fuses two gathers (element + successor) and two
    // elementwise steps (index arithmetic, composite construction).
    ctx.charge_permute_op(m_len);
    ctx.charge_permute_op(m_len);
    ctx.charge_elementwise_op(m_len);
    ctx.charge_elementwise_op(m_len);
    // Allocate the near-merge vector and scatter (element, successor) —
    // two disjoint scatters.
    let alloc = ctx.allocate(&counts);
    let mut near = vec![0u64; alloc.total];
    for i in 0..m_len {
        near[alloc.starts[i]] = merged[i];
        if let Some(s) = succ[i] {
            near[alloc.starts[i] + 1] = s;
        }
    }
    ctx.charge_permute_op(alloc.total);
    ctx.charge_permute_op(alloc.total);
    // x-near-merge: rotate each out-of-order block by one.
    let max_scan = ctx.scan::<Max, _>(&near);
    let head_copy = ctx.zip(&max_scan, &near, |h, x| h.max(x));
    let min_back = ctx.scan_backward::<Min, _>(&near);
    let result = ctx.zip(&min_back, &head_copy, |m, h| m.min(h));
    result.iter().map(|&c| c & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(a: &[u64], b: &[u64]) {
        let got = halving_merge(a, b);
        let mut expect: Vec<u64> = a.iter().chain(b).copied().collect();
        expect.sort_unstable();
        assert_eq!(got, expect, "a={a:?} b={b:?}");
    }

    #[test]
    fn figure12_example() {
        let a = [1u64, 7, 10, 13, 15, 20];
        let b = [3u64, 4, 9, 22, 23, 26];
        assert_eq!(
            halving_merge(&a, &b),
            vec![1, 3, 4, 7, 9, 10, 13, 15, 20, 22, 23, 26]
        );
    }

    #[test]
    fn figure12_inner_level_flags() {
        // A' = [1 10 15], B' = [3 9 23] → [F T T F F T]
        let mut ctx = Ctx::new(Model::Scan);
        let flags = halving_merge_flags(&mut ctx, &[1, 10, 15], &[3, 9, 23]);
        assert_eq!(flags, vec![false, true, true, false, false, true]);
    }

    #[test]
    fn empty_and_singletons() {
        check(&[], &[]);
        check(&[5], &[]);
        check(&[], &[5]);
        check(&[5], &[3]);
        check(&[3], &[5]);
        check(&[5], &[5]);
    }

    #[test]
    fn odd_lengths() {
        check(&[1, 4, 9], &[2, 3, 5, 8, 13]);
        check(&[10], &[1, 2, 3, 4, 5, 6, 7]);
        check(&[1, 2, 3, 4, 5, 6, 7], &[0]);
    }

    #[test]
    fn interleaved_and_disjoint_ranges() {
        check(&[1, 3, 5, 7], &[2, 4, 6, 8]);
        check(&[1, 2, 3, 4], &[5, 6, 7, 8]);
        check(&[5, 6, 7, 8], &[1, 2, 3, 4]);
    }

    #[test]
    fn duplicates_within_and_across() {
        check(&[2, 2, 2, 5], &[2, 2, 6]);
        check(&[0, 0, 0, 0], &[0, 0, 0, 0]);
        check(&[1, 1, 2, 3, 3], &[1, 2, 2, 3]);
    }

    #[test]
    fn stability_a_before_b() {
        // With equal keys, flags must place a's copies first.
        let mut ctx = Ctx::new(Model::Scan);
        let flags = halving_merge_flags(&mut ctx, &[5, 5], &[5]);
        assert_eq!(flags, vec![false, false, true]);
    }

    #[test]
    fn random_merges() {
        let mut x = 31u64;
        let mut rng = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x >> 33
        };
        for _ in 0..30 {
            let na = (rng() % 60) as usize;
            let nb = (rng() % 60) as usize;
            let mut a: Vec<u64> = (0..na).map(|_| rng() % 500).collect();
            let mut b: Vec<u64> = (0..nb).map(|_| rng() % 500).collect();
            a.sort_unstable();
            b.sort_unstable();
            check(&a, &b);
        }
    }

    #[test]
    fn step_complexity_is_logarithmic_with_full_processors() {
        // With p = n processors, steps grow ~lg n, not n.
        let a: Vec<u64> = (0..512).map(|i| 2 * i).collect();
        let b: Vec<u64> = (0..512).map(|i| 2 * i + 1).collect();
        let mut ctx = Ctx::new(Model::Scan);
        halving_merge_ctx(&mut ctx, &a, &b);
        let steps_512 = ctx.steps();
        let a2: Vec<u64> = (0..2048).map(|i| 2 * i).collect();
        let b2: Vec<u64> = (0..2048).map(|i| 2 * i + 1).collect();
        let mut ctx2 = Ctx::new(Model::Scan);
        halving_merge_ctx(&mut ctx2, &a2, &b2);
        // 4× the data should cost far less than 4× the steps.
        assert!(ctx2.steps() < 2 * steps_512, "{} vs {}", ctx2.steps(), steps_512);
    }

    #[test]
    #[should_panic(expected = "top bit")]
    fn oversized_key_rejected() {
        halving_merge(&[u64::MAX], &[1]);
    }
}
