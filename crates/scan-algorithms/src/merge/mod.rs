//! Merging: the paper's halving merge (§2.5.1) and the baselines it is
//! measured against.

pub mod baseline;
pub mod halving;

pub use baseline::{bitonic_merge, seq_merge};
pub use halving::{halving_merge, halving_merge_ctx, halving_merge_flags};
