//! Tree computations via the Euler-tour technique (Table 5's tree
//! contraction row).
//!
//! The paper cites tree contraction \[18] as the third `O(n/p + lg n)`
//! processor-step example. We realize the same bounds with the
//! scan-native route the paper's companion work \[7] takes: build the
//! Euler tour of the tree (one slot per directed edge, ordered by the
//! segmented graph layout), rank it with [`crate::list_rank`], and
//! answer rooting / subtree-size / depth queries with scans over the
//! tour. Every phase is `O(n/p + lg n)` steps, matching the table row.

use scan_pram::{Ctx, Model};

use crate::graph::segmented::SegGraph;
use crate::list_rank::contraction_rank_ctx;

/// The Euler tour of a rooted tree, plus the derived per-vertex data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EulerTour {
    /// For each slot (directed edge) of the tree's segmented graph, its
    /// position in the tour (0-based from the root's first edge).
    pub tour_position: Vec<usize>,
    /// Parent of each vertex (root maps to itself).
    pub parent: Vec<usize>,
    /// Depth of each vertex (root 0).
    pub depth: Vec<u64>,
    /// Subtree size of each vertex (leaves 1, root n).
    pub subtree_size: Vec<u64>,
}

/// Build the Euler tour of the tree `edges` (n-1 edges over n vertices)
/// rooted at `root`, and derive parents, depths and subtree sizes —
/// all with scans and one list ranking.
///
/// # Panics
/// If the edge set is not a tree on the vertices.
pub fn euler_tour_ctx(
    ctx: &mut Ctx,
    n_vertices: usize,
    edges: &[(usize, usize)],
    root: usize,
    seed: u64,
) -> EulerTour {
    assert!(root < n_vertices);
    assert_eq!(edges.len() + 1, n_vertices, "a tree has n-1 edges");
    if n_vertices == 1 {
        return EulerTour {
            tour_position: Vec::new(),
            parent: vec![root],
            depth: vec![0],
            subtree_size: vec![1],
        };
    }
    let weighted: Vec<(usize, usize, u64)> =
        edges.iter().map(|&(u, v)| (u, v, 0)).collect();
    let g = SegGraph::from_edges_ctx(ctx, n_vertices, &weighted);
    let s = g.n_slots();
    // Euler tour successor: after traversing edge (u→v) arriving at v
    // (slot x in u... we define slot semantics: slot x owned by u with
    // partner in v represents the directed edge u→v), the tour
    // continues with v's next outgoing slot after the reversal of x —
    // i.e. successor(x) = next slot after cross(x) within cross(x)'s
    // vertex, wrapping to the vertex's first slot.
    let segs = g.segments();
    let head = segs.head_index_per_element();
    let ones = ctx.constant(s, 1usize);
    let len = ctx.seg_distribute::<scan_core::op::Sum, _>(&ones, &segs);
    let succ: Vec<usize> = (0..s)
        .map(|i| {
            let c = g.cross_pointers[i];
            let h = head[c];
            h + (c - h + 1) % len[c]
        })
        .collect();
    ctx.charge_permute_op(s);
    ctx.charge_elementwise_op(s);
    // The tour starts at the root's first outgoing slot and visits all
    // 2(n-1) directed edges; cut it before the start to rank it.
    let root_first = (0..s)
        .find(|&i| g.vertex_of_slot[i] == root)
        .unwrap_or_else(|| panic!("root has an edge in a tree with n ≥ 2"));
    ctx.charge_scan_op(s);
    // last slot of the cycle: the one whose successor is root_first.
    let mut next = succ.clone();
    let last = (0..s)
        .find(|&i| succ[i] == root_first)
        .unwrap_or_else(|| panic!("cycle closes"));
    next[last] = last; // break the cycle into a list with tail `last`
    ctx.charge_elementwise_op(s);
    let rank_from_end = contraction_rank_ctx(ctx, &next, seed);
    let tour_position: Vec<usize> = rank_from_end
        .iter()
        .map(|&r| (s - 1) - r as usize)
        .collect();
    ctx.charge_elementwise_op(s);
    // An edge u→v is a *downward* (parent→child) edge exactly when it
    // appears in the tour before its reversal.
    let rev_pos = ctx.gather(&tour_position, &g.cross_pointers);
    let downward: Vec<bool> = (0..s).map(|i| tour_position[i] < rev_pos[i]).collect();
    ctx.charge_elementwise_op(s);
    // Parent of v: the u of the downward edge arriving at v.
    let mut parent = vec![usize::MAX; n_vertices];
    for i in 0..s {
        if downward[i] {
            parent[g.vertex_of_slot[g.cross_pointers[i]]] = g.vertex_of_slot[i];
        }
    }
    parent[root] = root;
    ctx.charge_permute_op(s);
    debug_assert!(parent.iter().all(|&p| p != usize::MAX), "not a tree");
    // Depth: +1 on downward edges, −1 on upward; an exclusive +-scan
    // over the tour order gives the depth at each arrival.
    let mut delta_by_pos = vec![0i64; s];
    for i in 0..s {
        delta_by_pos[tour_position[i]] = if downward[i] { 1 } else { -1 };
    }
    ctx.charge_permute_op(s);
    let depth_scan = ctx.inclusive_scan::<scan_core::op::Sum, _>(&delta_by_pos);
    let mut depth = vec![0u64; n_vertices];
    for i in 0..s {
        if downward[i] {
            let v = g.vertex_of_slot[g.cross_pointers[i]];
            depth[v] = depth_scan[tour_position[i]] as u64;
        }
    }
    ctx.charge_permute_op(s);
    // Subtree size of v: half the tour span between the downward edge
    // into v and its reversal, plus one.
    let mut subtree_size = vec![0u64; n_vertices];
    subtree_size[root] = n_vertices as u64;
    for i in 0..s {
        if downward[i] {
            let v = g.vertex_of_slot[g.cross_pointers[i]];
            subtree_size[v] = (rev_pos[i] - tour_position[i]).div_ceil(2) as u64;
        }
    }
    ctx.charge_permute_op(s);
    EulerTour {
        tour_position,
        parent,
        depth,
        subtree_size,
    }
}

/// Euler tour with the default scan-model machine.
pub fn euler_tour(
    n_vertices: usize,
    edges: &[(usize, usize)],
    root: usize,
    seed: u64,
) -> EulerTour {
    let mut ctx = Ctx::new(Model::Scan);
    euler_tour_ctx(&mut ctx, n_vertices, edges, root, seed)
}

/// Sequential reference: parents, depths, subtree sizes by DFS.
pub fn tree_reference(
    n_vertices: usize,
    edges: &[(usize, usize)],
    root: usize,
) -> (Vec<usize>, Vec<u64>, Vec<u64>) {
    let mut adj = vec![Vec::new(); n_vertices];
    for &(u, v) in edges {
        adj[u].push(v);
        adj[v].push(u);
    }
    let mut parent = vec![usize::MAX; n_vertices];
    let mut depth = vec![0u64; n_vertices];
    let mut size = vec![1u64; n_vertices];
    let mut order = Vec::new();
    let mut stack = vec![root];
    parent[root] = root;
    while let Some(v) = stack.pop() {
        order.push(v);
        for &w in &adj[v] {
            if parent[w] == usize::MAX && w != root {
                parent[w] = v;
                depth[w] = depth[v] + 1;
                stack.push(w);
            }
        }
    }
    for &v in order.iter().rev() {
        if v != root {
            size[parent[v]] += size[v];
        }
    }
    (parent, depth, size)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(n: usize, edges: &[(usize, usize)], root: usize) {
        let tour = euler_tour(n, edges, root, 42);
        let (parent, depth, size) = tree_reference(n, edges, root);
        assert_eq!(tour.parent, parent, "parents, root {root}, edges {edges:?}");
        assert_eq!(tour.depth, depth, "depths");
        assert_eq!(tour.subtree_size, size, "subtree sizes");
    }

    #[test]
    fn path_tree() {
        check(5, &[(0, 1), (1, 2), (2, 3), (3, 4)], 0);
        check(5, &[(0, 1), (1, 2), (2, 3), (3, 4)], 2);
    }

    #[test]
    fn star_tree() {
        let edges: Vec<(usize, usize)> = (1..8).map(|v| (0, v)).collect();
        check(8, &edges, 0);
        check(8, &edges, 3);
    }

    #[test]
    fn binary_tree() {
        let edges: Vec<(usize, usize)> = (1..15).map(|v| ((v - 1) / 2, v)).collect();
        check(15, &edges, 0);
        check(15, &edges, 14);
    }

    #[test]
    fn single_vertex() {
        check(1, &[], 0);
    }

    #[test]
    fn two_vertices() {
        check(2, &[(1, 0)], 0);
        check(2, &[(1, 0)], 1);
    }

    #[test]
    fn random_trees() {
        let mut x = 4u64;
        let mut rng = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(13);
            (x >> 33) as usize
        };
        for _ in 0..8 {
            let n = 2 + rng() % 60;
            // Random attachment tree.
            let edges: Vec<(usize, usize)> = (1..n).map(|v| (rng() % v, v)).collect();
            let root = rng() % n;
            check(n, &edges, root);
        }
    }

    #[test]
    fn tour_positions_are_a_permutation() {
        let edges = [(0, 1), (0, 2), (2, 3)];
        let tour = euler_tour(4, &edges, 0, 7);
        let mut pos = tour.tour_position.clone();
        pos.sort_unstable();
        assert_eq!(pos, (0..6).collect::<Vec<_>>());
    }
}
