//! Closest pair in the plane (Table 1: `O(lg n)` steps on the scan
//! model, `O(lg² n)` EREW).
//!
//! Divide and conquer on the x-sorted order with the classic strip
//! argument: after solving both halves, only points within `d` of the
//! dividing line matter, and each needs comparing against a constant
//! number of y-ordered strip neighbors. The sorts are split radix
//! sorts; the strip filter is a `pack`; the neighbor comparisons are a
//! constant number of shifted compares.

use scan_pram::{Ctx, Model};

use crate::sort::radix::split_radix_sort_pairs_ctx;

type Pt = (i64, i64);

/// Squared Euclidean distance.
#[inline]
fn d2(a: Pt, b: Pt) -> i64 {
    (a.0 - b.0).pow(2) + (a.1 - b.1).pow(2)
}

fn bias(v: i64) -> u64 {
    (v as u64) ^ (1 << 63)
}

/// Closest pair on a step-counting machine. Returns the two points and
/// their squared distance.
///
/// # Panics
/// If fewer than two points are supplied.
pub fn closest_pair_ctx(ctx: &mut Ctx, points: &[Pt]) -> (Pt, Pt, i64) {
    assert!(points.len() >= 2, "need at least two points");
    // Sort by x (radix), carrying the point index as payload.
    let xs: Vec<u64> = points.iter().map(|&(x, _)| bias(x)).collect();
    let idx: Vec<u64> = (0..points.len() as u64).collect();
    let (_, order) = split_radix_sort_pairs_ctx(ctx, &xs, &idx, 64);
    let sorted: Vec<Pt> = order.iter().map(|&i| points[i as usize]).collect();
    ctx.charge_permute_op(points.len());
    let (a, b, d) = solve(ctx, &sorted);
    (a, b, d)
}

fn solve(ctx: &mut Ctx, pts: &[Pt]) -> (Pt, Pt, i64) {
    let n = pts.len();
    if n <= 3 {
        // Constant-size base case.
        let mut best = (pts[0], pts[1], d2(pts[0], pts[1]));
        for i in 0..n {
            for j in (i + 1)..n {
                let d = d2(pts[i], pts[j]);
                if d < best.2 {
                    best = (pts[i], pts[j], d);
                }
            }
        }
        return best;
    }
    let mid = n / 2;
    let mid_x = pts[mid].0;
    let left = solve(ctx, &pts[..mid]);
    let right = solve(ctx, &pts[mid..]);
    let mut best = if left.2 <= right.2 { left } else { right };
    // Strip: points within the current best distance of the divider.
    let d_best = best.2;
    let in_strip: Vec<bool> = ctx.map(pts, move |p| (p.0 - mid_x).pow(2) < d_best);
    let strip = ctx.pack(pts, &in_strip);
    if strip.len() >= 2 {
        // Sort the strip by y and compare each point to its next 7
        // y-neighbors (the standard packing bound).
        let ys: Vec<u64> = strip.iter().map(|&(_, y)| bias(y)).collect();
        let ids: Vec<u64> = (0..strip.len() as u64).collect();
        let (_, order) = split_radix_sort_pairs_ctx(ctx, &ys, &ids, 64);
        let by_y: Vec<Pt> = order.iter().map(|&i| strip[i as usize]).collect();
        ctx.charge_permute_op(strip.len());
        for k in 1..=7usize {
            if k >= by_y.len() {
                break;
            }
            // One shifted compare per k: a constant number of vector ops.
            ctx.charge_permute_op(by_y.len());
            ctx.charge_elementwise_op(by_y.len());
            for i in 0..(by_y.len() - k) {
                let d = d2(by_y[i], by_y[i + k]);
                if d < best.2 {
                    best = (by_y[i], by_y[i + k], d);
                }
            }
        }
    }
    best
}

/// Closest pair with the default scan-model machine.
pub fn closest_pair(points: &[Pt]) -> (Pt, Pt, i64) {
    let mut ctx = Ctx::new(Model::Scan);
    closest_pair_ctx(&mut ctx, points)
}

/// Brute-force reference.
pub fn closest_pair_reference(points: &[Pt]) -> i64 {
    let mut best = i64::MAX;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            best = best.min(d2(points[i], points[j]));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(points: &[Pt]) {
        let (a, b, d) = closest_pair(points);
        assert_eq!(d, closest_pair_reference(points), "points={points:?}");
        assert_eq!(d, d2(a, b), "returned pair must realize the distance");
    }

    #[test]
    fn simple_cases() {
        check(&[(0, 0), (3, 4)]);
        check(&[(0, 0), (10, 0), (10, 1), (0, 9)]);
        check(&[(1, 1), (1, 1), (5, 5)]); // duplicates → distance 0
    }

    #[test]
    fn pair_straddling_the_divider() {
        // The closest pair crosses the median line.
        check(&[(-10, 0), (-9, 0), (-1, 0), (1, 1), (9, 0), (10, 0)]);
    }

    #[test]
    fn vertical_stack() {
        let points: Vec<Pt> = (0..20).map(|i| (0, i * i)).collect();
        check(&points);
    }

    #[test]
    fn random_clouds() {
        let mut x = 8u64;
        let mut rng = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(11);
            (x >> 40) as i64 % 1000 - 500
        };
        for _ in 0..10 {
            let n = 2 + (rng().unsigned_abs() as usize % 200);
            let points: Vec<Pt> = (0..n).map(|_| (rng(), rng())).collect();
            check(&points);
        }
    }

    #[test]
    fn grid_points() {
        let points: Vec<Pt> = (0..8)
            .flat_map(|i| (0..8).map(move |j| (i * 10, j * 10)))
            .collect();
        check(&points);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_point_rejected() {
        closest_pair(&[(1, 1)]);
    }
}
