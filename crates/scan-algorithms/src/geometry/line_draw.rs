//! Line drawing by processor allocation (§2.4.1, Figure 9).
//!
//! "The basic idea of the routine is for each line to allocate a
//! processor for each pixel in the line, and then for each allocated
//! pixel to determine, in parallel, its final position in the grid."
//! The pixel count of a line is `max(|Δx|, |Δy|)` plus the starting
//! endpoint — the same pixels the serial DDA produces. The whole
//! routine is `O(1)` program steps.

use scan_pram::{Ctx, Model};

/// One drawn pixel: grid position plus the line that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pixel {
    /// Grid x.
    pub x: i64,
    /// Grid y.
    pub y: i64,
    /// Index of the line segment this pixel belongs to.
    pub line: usize,
}

/// A line segment `((x0, y0), (x1, y1))` on the integer grid.
pub type Segment = ((i64, i64), (i64, i64));

/// Draw every line segment on a step-counting machine. Each segment is
/// `((x0, y0), (x1, y1))`; the result lists each line's pixels in
/// order, lines concatenated.
pub fn draw_lines_ctx(ctx: &mut Ctx, lines: &[Segment]) -> Vec<Pixel> {
    let l = lines.len();
    if l == 0 {
        return Vec::new();
    }
    // Pixels per line: max of the x and y differences, plus one for the
    // starting endpoint (the DDA draws both endpoints).
    let endpoints: Vec<(i64, i64, i64, i64)> = lines
        .iter()
        .map(|&((x0, y0), (x1, y1))| (x0, y0, x1, y1))
        .collect();
    let counts: Vec<usize> = ctx.map(&endpoints, |(x0, y0, x1, y1)| {
        ((x1 - x0).abs().max((y1 - y0).abs()) + 1) as usize
    });
    // Allocate a processor per pixel and distribute the endpoints.
    let ends = ctx.distribute(&endpoints, &counts);
    let owner = {
        let owners = ctx.iota(l);
        ctx.distribute(&owners, &counts)
    };
    // Position within the line, "determined with a +-scan".
    let alloc = ctx.allocate(&counts);
    let ones = ctx.constant(alloc.total, 1usize);
    let k = ctx.seg_scan::<scan_core::op::Sum, _>(&ones, &alloc.segments);
    // Each pixel computes its own (x, y): the DDA step rounded to the
    // nearest grid point.
    let pixels = (0..alloc.total)
        .map(|i| {
            let (x0, y0, x1, y1) = ends[i];
            let steps = (x1 - x0).abs().max((y1 - y0).abs());
            let t = k[i] as i64;
            let (x, y) = if steps == 0 {
                (x0, y0)
            } else {
                (
                    x0 + div_round(t * (x1 - x0), steps),
                    y0 + div_round(t * (y1 - y0), steps),
                )
            };
            Pixel {
                x,
                y,
                line: owner[i],
            }
        })
        .collect();
    ctx.charge_elementwise_op(alloc.total);
    pixels
}

/// Rounded division (ties toward +∞), exact for the DDA interpolation.
fn div_round(num: i64, den: i64) -> i64 {
    // den > 0 by construction.
    (2 * num + den).div_euclid(2 * den)
}

/// Draw with the default scan-model machine.
pub fn draw_lines(lines: &[Segment]) -> Vec<Pixel> {
    let mut ctx = Ctx::new(Model::Scan);
    draw_lines_ctx(&mut ctx, lines)
}

/// Render pixels on an ASCII grid (for the Figure 9 reproduction and
/// the example binary). Pixels outside the grid are ignored; a pixel
/// shared by several lines shows the last one — "this will require the
/// simplest form of concurrent-write (one of the values gets written)".
pub fn render_ascii(pixels: &[Pixel], width: usize, height: usize) -> String {
    let mut grid = vec![vec![b'.'; width]; height];
    for p in pixels {
        if p.x >= 0 && (p.x as usize) < width && p.y >= 0 && (p.y as usize) < height {
            grid[p.y as usize][p.x as usize] = b'0' + (p.line % 10) as u8;
        }
    }
    // y grows upward, like the paper's figure.
    grid.iter()
        .rev()
        .map(|row| String::from_utf8_lossy(row).into_owned())
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The serial DDA the paper cites as the reference output.
    fn dda(x0: i64, y0: i64, x1: i64, y1: i64) -> Vec<(i64, i64)> {
        let steps = (x1 - x0).abs().max((y1 - y0).abs());
        (0..=steps)
            .map(|t| {
                if steps == 0 {
                    (x0, y0)
                } else {
                    (
                        x0 + div_round(t * (x1 - x0), steps),
                        y0 + div_round(t * (y1 - y0), steps),
                    )
                }
            })
            .collect()
    }

    #[test]
    fn figure9_lines() {
        // Endpoints (11,2)–(23,14), (2,13)–(13,8), (16,4)–(31,4).
        let lines = [
            ((11, 2), (23, 14)),
            ((2, 13), (13, 8)),
            ((16, 4), (31, 4)),
        ];
        let pixels = draw_lines(&lines);
        // The paper allocates max(|Δx|,|Δy|) processors per line and
        // quotes 12, 11 and 16 pixels; drawing both endpoints (as the
        // DDA reference does) gives 13, 12 and 16 grid points, of which
        // the third line's 16 matches the paper exactly.
        let counts: Vec<usize> = (0..3)
            .map(|l| pixels.iter().filter(|p| p.line == l).count())
            .collect();
        assert_eq!(counts, vec![13, 12, 16]);
        // Every line reproduces its serial DDA pixels, in order.
        for (l, &((x0, y0), (x1, y1))) in lines.iter().enumerate() {
            let got: Vec<(i64, i64)> = pixels
                .iter()
                .filter(|p| p.line == l)
                .map(|p| (p.x, p.y))
                .collect();
            assert_eq!(got, dda(x0, y0, x1, y1), "line {l}");
        }
    }

    #[test]
    fn diagonal_line_exact() {
        let pixels = draw_lines(&[((0, 0), (4, 4))]);
        let got: Vec<(i64, i64)> = pixels.iter().map(|p| (p.x, p.y)).collect();
        assert_eq!(got, vec![(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]);
    }

    #[test]
    fn degenerate_point_line() {
        let pixels = draw_lines(&[((3, 7), (3, 7))]);
        assert_eq!(pixels.len(), 1);
        assert_eq!((pixels[0].x, pixels[0].y), (3, 7));
    }

    #[test]
    fn steep_and_reversed_lines() {
        for &(a, b) in &[((0, 0), (2, 9)), ((5, 5), (0, 0)), ((-3, 4), (-3, -4))] {
            let pixels = draw_lines(&[(a, b)]);
            let got: Vec<(i64, i64)> = pixels.iter().map(|p| (p.x, p.y)).collect();
            assert_eq!(got, dda(a.0, a.1, b.0, b.1));
        }
    }

    #[test]
    fn constant_step_complexity() {
        // O(1) vector operations no matter how many lines/pixels.
        let ops_for = |k: usize| {
            let lines: Vec<((i64, i64), (i64, i64))> =
                (0..k as i64).map(|i| ((0, i), (9, i))).collect();
            let mut ctx = Ctx::new(Model::Scan);
            draw_lines_ctx(&mut ctx, &lines);
            ctx.stats().ops()
        };
        assert_eq!(ops_for(4), ops_for(128));
    }

    #[test]
    fn ascii_render() {
        let pixels = draw_lines(&[((0, 0), (3, 0))]);
        let art = render_ascii(&pixels, 4, 2);
        assert_eq!(art, "....\n0000");
    }

    #[test]
    fn empty_input() {
        assert!(draw_lines(&[]).is_empty());
    }
}
