//! Convex hull by segmented quickhull (Table 1: probabilistic/expected
//! `O(lg n)` steps on the scan model).
//!
//! The same divide-and-conquer-in-segments technique as the quicksort
//! (§2.3.1): every open hull edge keeps its outside points in one
//! segment; each round, every segment finds its farthest point with a
//! segmented max-distribute (a hull vertex), splits its points between
//! the two new edges, and drops the points that fell inside — all
//! segments in parallel, a constant number of program steps per round.

use scan_core::op::{Max, Min};
use scan_core::ops::Bucket;
use scan_core::segmented::Segments;
use scan_pram::{Ctx, Model};

/// Coordinate bound: cross products and packed composites must fit
/// their fields.
pub const MAX_COORD: i64 = 1 << 20;

type Pt = (i64, i64);

#[inline]
fn cross(o: Pt, a: Pt, b: Pt) -> i64 {
    (a.0 - o.0) * (b.1 - o.1) - (a.1 - o.1) * (b.0 - o.0)
}

/// Encode a point into 42 bits (21 per biased coordinate).
#[inline]
fn enc(p: Pt) -> u64 {
    (((p.0 + MAX_COORD) as u64) << 21) | ((p.1 + MAX_COORD) as u64)
}

#[inline]
fn dec(e: u64) -> Pt {
    (
        ((e >> 21) & ((1 << 21) - 1)) as i64 - MAX_COORD,
        (e & ((1 << 21) - 1)) as i64 - MAX_COORD,
    )
}

/// Convex hull of a point set, counter-clockwise, strict vertices only
/// (no collinear interior points of edges). Duplicates are tolerated.
///
/// # Panics
/// If a coordinate's magnitude reaches [`MAX_COORD`].
pub fn convex_hull_ctx(ctx: &mut Ctx, points: &[Pt]) -> Vec<Pt> {
    assert!(
        points
            .iter()
            .all(|&(x, y)| x.abs() < MAX_COORD && y.abs() < MAX_COORD),
        "coordinates must satisfy |c| < 2^20"
    );
    if points.is_empty() {
        return Vec::new();
    }
    // Extreme points by the lexicographic (x, y) order, via min/max
    // reduce on the packed encoding.
    let encoded = ctx.map(points, enc);
    let l = dec(ctx.reduce::<Min, _>(&encoded));
    let r = dec(ctx.reduce::<Max, _>(&encoded));
    if l == r {
        return vec![l]; // all points identical
    }
    // Upper chain: strictly left of L→R; lower: strictly left of R→L.
    let side = ctx.map(points, |p| cross(l, r, p));
    let upper = {
        let keep = ctx.map(&side, |s| s > 0);
        ctx.pack(points, &keep)
    };
    let lower = {
        let keep = ctx.map(&side, |s| s < 0);
        ctx.pack(points, &keep)
    };
    let mut hull_set = vec![l, r];
    // One combined segmented state for both chains.
    let mut pts: Vec<Pt> = Vec::new();
    let mut chord_a: Vec<Pt> = Vec::new();
    let mut chord_b: Vec<Pt> = Vec::new();
    let mut flags: Vec<bool> = Vec::new();
    for (chain, (a, b)) in [(&upper, (l, r)), (&lower, (r, l))] {
        if !chain.is_empty() {
            flags.push(true);
            flags.extend(std::iter::repeat_n(false, chain.len() - 1));
            pts.extend_from_slice(chain);
            chord_a.extend(std::iter::repeat_n(a, chain.len()));
            chord_b.extend(std::iter::repeat_n(b, chain.len()));
        }
    }
    let mut segs = Segments::from_flags(flags);
    let mut rounds = 0usize;
    while !pts.is_empty() {
        rounds += 1;
        assert!(rounds <= pts.len() + 64, "quickhull failed to converge");
        let n = pts.len();
        // Farthest point from each segment's chord, packed with the
        // point so one max-distribute delivers it everywhere (EREW).
        let dist: Vec<u128> = (0..n)
            .map(|i| {
                let d = cross(chord_a[i], chord_b[i], pts[i]);
                debug_assert!(d > 0, "invariant: points lie strictly outside the chord");
                ((d as u128) << 64) | enc(pts[i]) as u128
            })
            .collect();
        ctx.charge_elementwise_op(n);
        let far = ctx.seg_distribute::<Max, _>(&dist, &segs);
        let f: Vec<Pt> = ctx.map(&far, |c| dec((c & u64::MAX as u128) as u64));
        // Each segment's f is a hull vertex (one per segment head).
        for (start, _) in segs.ranges() {
            hull_set.push(f[start]);
        }
        ctx.charge_permute_op(segs.count());
        // Split: left of (a, f) continues with chord (a, f); left of
        // (f, b) with (f, b); the rest (inside the triangle, or f
        // itself) is dropped.
        let buckets: Vec<Bucket> = (0..n)
            .map(|i| {
                if cross(chord_a[i], f[i], pts[i]) > 0 {
                    Bucket::Lo
                } else if cross(f[i], chord_b[i], pts[i]) > 0 {
                    Bucket::Mid
                } else {
                    Bucket::Hi
                }
            })
            .collect();
        ctx.charge_elementwise_op(n);
        let keep_bucket: Vec<bool> = buckets.iter().map(|&b| b != Bucket::Hi).collect();
        let new_chord_a: Vec<Pt> = (0..n)
            .map(|i| if buckets[i] == Bucket::Lo { chord_a[i] } else { f[i] })
            .collect();
        let new_chord_b: Vec<Pt> = (0..n)
            .map(|i| if buckets[i] == Bucket::Lo { f[i] } else { chord_b[i] })
            .collect();
        ctx.charge_elementwise_op(n);
        ctx.charge_elementwise_op(n);
        let split = ctx.seg_split3(&pts, &buckets, &segs);
        let moved_a = ctx.permute_unchecked(&new_chord_a, &split.index);
        let moved_b = ctx.permute_unchecked(&new_chord_b, &split.index);
        let moved_keep = ctx.permute_unchecked(&keep_bucket, &split.index);
        // Pack away the dropped group of every segment. Segment ids
        // survive packing in order, so heads are where the id changes.
        let seg_ids = split.segments.segment_ids();
        let kept_ids = ctx.pack(&seg_ids, &moved_keep);
        pts = ctx.pack(&split.values, &moved_keep);
        chord_a = ctx.pack(&moved_a, &moved_keep);
        chord_b = ctx.pack(&moved_b, &moved_keep);
        let head_flags: Vec<bool> = (0..pts.len())
            .map(|i| i == 0 || kept_ids[i] != kept_ids[i - 1])
            .collect();
        ctx.charge_elementwise_op(pts.len());
        segs = Segments::from_flags(head_flags);
    }
    order_ccw(hull_set)
}

/// Order the (strictly convex) hull vertex set counter-clockwise,
/// starting from the lexicographically smallest vertex.
fn order_ccw(mut vs: Vec<Pt>) -> Vec<Pt> {
    vs.sort_unstable();
    vs.dedup();
    if vs.len() <= 2 {
        return vs;
    }
    let c = (
        vs.iter().map(|p| p.0 as f64).sum::<f64>() / vs.len() as f64,
        vs.iter().map(|p| p.1 as f64).sum::<f64>() / vs.len() as f64,
    );
    let start = vs[0];
    let mut rest: Vec<Pt> = vs;
    rest.sort_by(|&p, &q| {
        let ap = ((p.1 as f64) - c.1).atan2((p.0 as f64) - c.0);
        let aq = ((q.1 as f64) - c.1).atan2((q.0 as f64) - c.0);
        ap.total_cmp(&aq)
    });
    let k = rest
        .iter()
        .position(|&p| p == start)
        .unwrap_or_else(|| panic!("start present"));
    rest.rotate_left(k);
    rest
}

/// Convex hull with the default scan-model machine.
pub fn convex_hull(points: &[Pt]) -> Vec<Pt> {
    let mut ctx = Ctx::new(Model::Scan);
    convex_hull_ctx(&mut ctx, points)
}

/// Andrew's monotone chain, strict vertices, CCW from the
/// lexicographic minimum — the verification reference.
pub fn convex_hull_reference(points: &[Pt]) -> Vec<Pt> {
    let mut ps = points.to_vec();
    ps.sort_unstable();
    ps.dedup();
    if ps.len() <= 2 {
        return ps;
    }
    let build = |iter: &mut dyn Iterator<Item = Pt>| {
        let mut chain: Vec<Pt> = Vec::new();
        for p in iter {
            while chain.len() >= 2
                && cross(chain[chain.len() - 2], chain[chain.len() - 1], p) <= 0
            {
                chain.pop();
            }
            chain.push(p);
        }
        chain
    };
    let lower = build(&mut ps.iter().copied());
    let upper = build(&mut ps.iter().rev().copied());
    let mut hull = lower;
    hull.pop();
    hull.extend(upper);
    hull.pop();
    hull
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(points: &[Pt]) {
        assert_eq!(
            convex_hull(points),
            convex_hull_reference(points),
            "points={points:?}"
        );
    }

    #[test]
    fn square_with_interior_points() {
        check(&[(0, 0), (4, 0), (4, 4), (0, 4), (2, 2), (1, 3), (3, 1)]);
    }

    #[test]
    fn triangle() {
        check(&[(0, 0), (5, 0), (2, 7)]);
    }

    #[test]
    fn collinear_points() {
        check(&[(0, 0), (1, 1), (2, 2), (3, 3)]);
        check(&[(0, 5), (0, 1), (0, 9)]);
    }

    #[test]
    fn duplicates_and_degenerate() {
        check(&[(3, 3), (3, 3), (3, 3)]);
        check(&[(1, 2)]);
        check(&[(1, 2), (4, 5)]);
        check(&[]);
    }

    #[test]
    fn collinear_edge_points_excluded() {
        // (2,0) lies on the hull edge (0,0)-(4,0): strict hulls skip it.
        check(&[(0, 0), (2, 0), (4, 0), (2, 5)]);
    }

    #[test]
    fn random_point_clouds() {
        let mut x = 12u64;
        let mut rng = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 40) as i64 % 200 - 100
        };
        for _ in 0..15 {
            let n = 3 + (rng().unsigned_abs() as usize % 150);
            let points: Vec<Pt> = (0..n).map(|_| (rng(), rng())).collect();
            check(&points);
        }
    }

    #[test]
    fn circle_points_all_on_hull() {
        let points: Vec<Pt> = (0..40)
            .map(|k| {
                let a = k as f64 * std::f64::consts::TAU / 40.0;
                ((1000.0 * a.cos()) as i64, (1000.0 * a.sin()) as i64)
            })
            .collect();
        let hull = convex_hull(&points);
        assert_eq!(hull, convex_hull_reference(&points));
        assert!(hull.len() >= 38, "almost all circle points are vertices");
    }

    #[test]
    #[should_panic(expected = "coordinates")]
    fn oversized_coordinates_rejected() {
        convex_hull(&[(MAX_COORD, 0), (0, 0), (1, 5)]);
    }
}
