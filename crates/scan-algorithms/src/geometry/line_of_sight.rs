//! Line of sight (Table 1: `O(1)` steps on the scan model).
//!
//! Given an observer and terrain altitudes along a ray, a point is
//! visible exactly when its vertical angle from the observer exceeds
//! the angle of every point in front of it — one `max-scan`.
//! The multi-ray version runs all rays at once with a single
//! *segmented* max-scan.

use scan_core::op::Max;
use scan_core::segmented::Segments;
use scan_pram::{Ctx, Model};

/// Visibility of each terrain sample along one ray. `altitudes[k]` is
/// the terrain height at distance `k + 1` from the observer, whose eye
/// is at height `observer`.
pub fn line_of_sight_ctx(ctx: &mut Ctx, observer: f64, altitudes: &[f64]) -> Vec<bool> {
    let n = altitudes.len();
    let idx = ctx.iota(n);
    let angles = ctx.zip(altitudes, &idx, |alt, k| (alt - observer) / (k as f64 + 1.0));
    let best_before = ctx.scan::<Max, _>(&angles);
    ctx.zip(&angles, &best_before, |a, b| a > b)
}

/// Single-ray line of sight with the default scan-model machine.
pub fn line_of_sight(observer: f64, altitudes: &[f64]) -> Vec<bool> {
    let mut ctx = Ctx::new(Model::Scan);
    line_of_sight_ctx(&mut ctx, observer, altitudes)
}

/// Many rays at once: `rays` holds each ray's altitude samples; all
/// rays share the observer height. One segmented max-scan resolves
/// every ray — still a constant number of program steps.
pub fn line_of_sight_rays_ctx(
    ctx: &mut Ctx,
    observer: f64,
    rays: &[Vec<f64>],
) -> Vec<Vec<bool>> {
    let lengths: Vec<usize> = rays.iter().map(Vec::len).collect();
    let flat: Vec<f64> = rays.iter().flatten().copied().collect();
    let segs = Segments::from_lengths(&lengths);
    let ones = ctx.constant(flat.len(), 1usize);
    let dist = ctx.seg_scan::<scan_core::op::Sum, _>(&ones, &segs);
    let angles = ctx.zip(&flat, &dist, |alt, k| (alt - observer) / (k as f64 + 1.0));
    let best_before = ctx.seg_scan::<Max, _>(&angles, &segs);
    // A segment head's exclusive scan yields the identity (-∞ via the
    // float identity of Max on a fresh segment — here 0-initialised
    // identity of the pair operator), so compare against -∞ explicitly.
    let visible: Vec<bool> = (0..flat.len())
        .map(|i| {
            let prior = if segs.is_head(i) {
                f64::NEG_INFINITY
            } else {
                best_before[i]
            };
            angles[i] > prior
        })
        .collect();
    ctx.charge_elementwise_op(flat.len());
    // Unflatten.
    let mut out = Vec::with_capacity(rays.len());
    let mut pos = 0;
    for &len in &lengths {
        out.push(visible[pos..pos + len].to_vec());
        pos += len;
    }
    out
}

/// Multi-ray line of sight with the default scan-model machine.
pub fn line_of_sight_rays(observer: f64, rays: &[Vec<f64>]) -> Vec<Vec<bool>> {
    let mut ctx = Ctx::new(Model::Scan);
    line_of_sight_rays_ctx(&mut ctx, observer, rays)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(observer: f64, altitudes: &[f64]) -> Vec<bool> {
        let mut best = f64::NEG_INFINITY;
        altitudes
            .iter()
            .enumerate()
            .map(|(k, &alt)| {
                let a = (alt - observer) / (k as f64 + 1.0);
                let vis = a > best;
                best = best.max(a);
                vis
            })
            .collect()
    }

    #[test]
    fn flat_terrain_at_eye_level_only_first_visible() {
        // Observer at terrain height: every sample subtends angle 0, so
        // only the nearest one beats the running maximum.
        let alt = vec![0.0; 10];
        let vis = line_of_sight(0.0, &alt);
        assert!(vis[0]);
        assert!(vis[1..].iter().all(|&v| !v));
    }

    #[test]
    fn elevated_observer_sees_all_flat_terrain() {
        // From above, nearer flat ground never hides farther ground:
        // the depression angle shrinks with distance.
        let alt = vec![0.0; 10];
        let vis = line_of_sight(10.0, &alt);
        assert!(vis.iter().all(|&v| v));
    }

    #[test]
    fn rising_terrain_all_visible() {
        let alt: Vec<f64> = (0..10).map(|k| (k * k) as f64).collect();
        let vis = line_of_sight(0.0, &alt);
        assert!(vis.iter().all(|&v| v));
    }

    #[test]
    fn hill_shadows_valley() {
        //      peak at 3 shadows the lower ground behind it
        let alt = [1.0, 2.0, 10.0, 1.0, 1.0, 20.0];
        let vis = line_of_sight(0.0, &alt);
        assert_eq!(vis, reference(0.0, &alt));
        assert!(vis[2]);
        assert!(!vis[3] && !vis[4]);
    }

    #[test]
    fn matches_reference_on_random_terrain() {
        let mut x = 77u64;
        let alt: Vec<f64> = (0..500)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 40) % 1000) as f64 / 10.0
            })
            .collect();
        assert_eq!(line_of_sight(42.0, &alt), reference(42.0, &alt));
    }

    #[test]
    fn multi_ray_matches_single_rays() {
        let rays = vec![
            vec![1.0, 5.0, 2.0, 9.0],
            vec![3.0],
            vec![],
            vec![0.0, 0.0, 7.0],
        ];
        let got = line_of_sight_rays(1.5, &rays);
        for (ray, vis) in rays.iter().zip(&got) {
            assert_eq!(vis, &line_of_sight(1.5, ray));
        }
    }

    #[test]
    fn constant_steps_for_any_ray_count() {
        let ops_for = |k: usize| {
            let rays: Vec<Vec<f64>> = (0..k).map(|i| vec![i as f64; 6]).collect();
            let mut ctx = Ctx::new(Model::Scan);
            line_of_sight_rays_ctx(&mut ctx, 0.0, &rays);
            ctx.stats().ops()
        };
        assert_eq!(ops_for(2), ops_for(64));
    }

    #[test]
    fn empty_terrain() {
        assert!(line_of_sight(5.0, &[]).is_empty());
    }
}
