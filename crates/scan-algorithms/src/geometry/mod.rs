//! Computational geometry on the scan model (Table 1's geometry rows
//! and the §2.4.1 line-drawing example).

pub mod closest_pair;
pub mod hull;
pub mod kdtree;
pub mod line_draw;
pub mod line_of_sight;

pub use closest_pair::closest_pair;
pub use hull::convex_hull;
pub use kdtree::KdTree;
pub use line_draw::{draw_lines, render_ascii, Pixel};
pub use line_of_sight::{line_of_sight, line_of_sight_rays};
