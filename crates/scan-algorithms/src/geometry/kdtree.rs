//! k-d tree construction (Table 1: `O(lg n)` expected steps on the
//! scan model versus `O(lg² n)` on the P-RAMs).
//!
//! The construction is the quicksort pattern of §2.3.1 in two
//! dimensions: every tree level splits **all** nodes' point sets at
//! once with one segmented three-way split, alternating the axis by
//! depth. Each node splits at its segment's first point (the same
//! pivot rule as Figure 5), giving expected logarithmic depth.

use scan_core::ops::Bucket;
use scan_core::segmented::Segments;
use scan_pram::{Ctx, Model};

type Pt = (i64, i64);

/// One node of the k-d tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KdNode {
    /// Split axis: 0 = x, 1 = y.
    pub axis: u8,
    /// Split coordinate.
    pub coord: i64,
    /// Points stored at this node (the pivot and everything sharing its
    /// coordinate on the split axis).
    pub points: Vec<Pt>,
    /// Child with `axis`-coordinate `< coord`.
    pub left: Option<usize>,
    /// Child with `axis`-coordinate `> coord`.
    pub right: Option<usize>,
}

/// A 2-d tree built level-by-level with segmented splits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KdTree {
    /// Node arena; index 0 is the root (when nonempty).
    pub nodes: Vec<KdNode>,
}

impl KdTree {
    /// Build on a step-counting machine.
    pub fn build_ctx(ctx: &mut Ctx, points: &[Pt]) -> KdTree {
        let mut nodes: Vec<KdNode> = Vec::new();
        if points.is_empty() {
            return KdTree { nodes };
        }
        // Active elements: points still travelling down, with their
        // segment (= node) bookkeeping.
        let mut pts = points.to_vec();
        let mut segs = Segments::single(pts.len());
        // node id owning each active segment, aligned with segs.ranges().
        nodes.push(KdNode {
            axis: 0,
            coord: 0,
            points: Vec::new(),
            left: None,
            right: None,
        });
        let mut seg_nodes: Vec<usize> = vec![0];
        let mut depth = 0u32;
        while !pts.is_empty() {
            let n = pts.len();
            let axis = (depth % 2) as u8;
            // Pivot coordinate: the segment head's coordinate on `axis`.
            let coords = ctx.map(&pts, move |p| if axis == 0 { p.0 } else { p.1 });
            let pivot = ctx.seg_copy(&coords, &segs);
            let buckets: Vec<Bucket> = ctx.zip(&coords, &pivot, |c, p| {
                if c < p {
                    Bucket::Lo
                } else if c == p {
                    Bucket::Mid
                } else {
                    Bucket::Hi
                }
            });
            let split = ctx.seg_split3(&pts, &buckets, &segs);
            // Walk the refined segments: Mid groups settle into their
            // node; Lo/Hi groups become child nodes and stay active.
            let old_ranges = segs.ranges();
            let mut next_pts = Vec::with_capacity(n);
            let mut next_flags = Vec::with_capacity(n);
            let mut next_seg_nodes = Vec::new();
            for (k, &(start, end)) in old_ranges.iter().enumerate() {
                let node = seg_nodes[k];
                let pv = pivot[start];
                nodes[node].axis = axis;
                nodes[node].coord = pv;
                // The split moved the three groups into Lo/Mid/Hi order
                // inside [start, end); classify by comparing against the
                // pivot (equivalent to reading the refined flags).
                let lo: Vec<Pt> = split.values[start..end]
                    .iter()
                    .copied()
                    .filter(|p| (if axis == 0 { p.0 } else { p.1 }) < pv)
                    .collect();
                let mid: Vec<Pt> = split.values[start..end]
                    .iter()
                    .copied()
                    .filter(|p| (if axis == 0 { p.0 } else { p.1 }) == pv)
                    .collect();
                let hi: Vec<Pt> = split.values[start..end]
                    .iter()
                    .copied()
                    .filter(|p| (if axis == 0 { p.0 } else { p.1 }) > pv)
                    .collect();
                nodes[node].points = mid;
                if !lo.is_empty() {
                    let child = nodes.len();
                    nodes.push(KdNode {
                        axis: 0,
                        coord: 0,
                        points: Vec::new(),
                        left: None,
                        right: None,
                    });
                    nodes[node].left = Some(child);
                    next_flags.push(true);
                    next_flags.extend(std::iter::repeat_n(false, lo.len() - 1));
                    next_pts.extend(lo);
                    next_seg_nodes.push(child);
                }
                if !hi.is_empty() {
                    let child = nodes.len();
                    nodes.push(KdNode {
                        axis: 0,
                        coord: 0,
                        points: Vec::new(),
                        left: None,
                        right: None,
                    });
                    nodes[node].right = Some(child);
                    next_flags.push(true);
                    next_flags.extend(std::iter::repeat_n(false, hi.len() - 1));
                    next_pts.extend(hi);
                    next_seg_nodes.push(child);
                }
            }
            ctx.charge_permute_op(n); // the regrouping pass above
            pts = next_pts;
            segs = Segments::from_flags(next_flags);
            seg_nodes = next_seg_nodes;
            depth += 1;
            assert!(depth < 64 + points.len() as u32, "k-d build failed to converge");
        }
        KdTree { nodes }
    }

    /// Build with the default scan-model machine.
    pub fn build(points: &[Pt]) -> KdTree {
        let mut ctx = Ctx::new(Model::Scan);
        Self::build_ctx(&mut ctx, points)
    }

    /// Number of points stored in the tree.
    pub fn len(&self) -> usize {
        self.nodes.iter().map(|n| n.points.len()).sum()
    }

    /// True when the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Nearest neighbor by squared Euclidean distance (standard pruned
    /// descent). Returns `None` on an empty tree.
    pub fn nearest(&self, q: Pt) -> Option<(Pt, i64)> {
        if self.nodes.is_empty() {
            return None;
        }
        let mut best: Option<(Pt, i64)> = None;
        self.nearest_rec(0, q, &mut best);
        best
    }

    fn nearest_rec(&self, node: usize, q: Pt, best: &mut Option<(Pt, i64)>) {
        let n = &self.nodes[node];
        for &p in &n.points {
            let d = (p.0 - q.0).pow(2) + (p.1 - q.1).pow(2);
            if best.is_none_or(|(_, bd)| d < bd) {
                *best = Some((p, d));
            }
        }
        let qc = if n.axis == 0 { q.0 } else { q.1 };
        let (near, far) = if qc < n.coord {
            (n.left, n.right)
        } else {
            (n.right, n.left)
        };
        if let Some(c) = near {
            self.nearest_rec(c, q, best);
        }
        let plane_d = (qc - n.coord).pow(2);
        if let Some(c) = far {
            if best.is_none_or(|(_, bd)| plane_d < bd) {
                self.nearest_rec(c, q, best);
            }
        }
    }

    /// All points inside the axis-aligned rectangle
    /// `[x_lo, x_hi] × [y_lo, y_hi]` (inclusive), by pruned descent.
    pub fn range_query(&self, x_range: (i64, i64), y_range: (i64, i64)) -> Vec<Pt> {
        let mut out = Vec::new();
        if !self.nodes.is_empty() {
            self.range_rec(0, x_range, y_range, &mut out);
        }
        out
    }

    fn range_rec(&self, node: usize, xr: (i64, i64), yr: (i64, i64), out: &mut Vec<Pt>) {
        let n = &self.nodes[node];
        for &p in &n.points {
            if p.0 >= xr.0 && p.0 <= xr.1 && p.1 >= yr.0 && p.1 <= yr.1 {
                out.push(p);
            }
        }
        let (lo, hi) = if n.axis == 0 { xr } else { yr };
        if let Some(l) = n.left {
            if lo < n.coord {
                self.range_rec(l, xr, yr, out);
            }
        }
        if let Some(r) = n.right {
            if hi > n.coord {
                self.range_rec(r, xr, yr, out);
            }
        }
    }

    /// Verify the k-d invariant on every node; for tests.
    pub fn validate(&self) {
        for n in &self.nodes {
            for &p in &n.points {
                let c = if n.axis == 0 { p.0 } else { p.1 };
                assert_eq!(c, n.coord, "node points must sit on the split plane");
            }
            if let Some(l) = n.left {
                self.assert_subtree(l, n.axis, n.coord, true);
            }
            if let Some(r) = n.right {
                self.assert_subtree(r, n.axis, n.coord, false);
            }
        }
    }

    fn assert_subtree(&self, node: usize, axis: u8, coord: i64, is_left: bool) {
        let n = &self.nodes[node];
        for &p in &n.points {
            let c = if axis == 0 { p.0 } else { p.1 };
            if is_left {
                assert!(c < coord, "left subtree point violates the split");
            } else {
                assert!(c > coord, "right subtree point violates the split");
            }
        }
        if let Some(l) = n.left {
            self.assert_subtree(l, axis, coord, is_left);
        }
        if let Some(r) = n.right {
            self.assert_subtree(r, axis, coord, is_left);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_nearest(points: &[Pt], q: Pt) -> i64 {
        points
            .iter()
            .map(|&p| (p.0 - q.0).pow(2) + (p.1 - q.1).pow(2))
            .min()
            .expect("nonempty")
    }

    #[test]
    fn build_and_validate_small() {
        let points = [(3, 1), (1, 4), (5, 2), (2, 2), (4, 5), (0, 0)];
        let t = KdTree::build(&points);
        t.validate();
        assert_eq!(t.len(), points.len());
    }

    #[test]
    fn nearest_matches_brute_force() {
        let mut x = 21u64;
        let mut rng = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(9);
            (x >> 40) as i64 % 100 - 50
        };
        let points: Vec<Pt> = (0..300).map(|_| (rng(), rng())).collect();
        let t = KdTree::build(&points);
        t.validate();
        for _ in 0..100 {
            let q = (rng(), rng());
            let (_, d) = t.nearest(q).expect("nonempty tree");
            assert_eq!(d, brute_nearest(&points, q), "query {q:?}");
        }
    }

    #[test]
    fn duplicate_points() {
        let points = vec![(2, 2); 10];
        let t = KdTree::build(&points);
        t.validate();
        assert_eq!(t.len(), 10);
        assert_eq!(t.nearest((0, 0)), Some(((2, 2), 8)));
    }

    #[test]
    fn empty_and_single() {
        let t = KdTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.nearest((0, 0)), None);
        let t = KdTree::build(&[(7, -3)]);
        assert_eq!(t.nearest((7, -3)), Some(((7, -3), 0)));
    }

    #[test]
    fn expected_logarithmic_depth_on_random_input() {
        let mut x = 5u64;
        let mut rng = move || {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (x >> 35) as i64 % 100000
        };
        let points: Vec<Pt> = (0..2048).map(|_| (rng(), rng())).collect();
        let mut ctx = Ctx::new(Model::Scan);
        let t = KdTree::build_ctx(&mut ctx, &points);
        t.validate();
        // Depth ≈ number of build levels; node count bounds it loosely.
        // With random data the arena stays near 2n and ops stay near
        // the level count (≈ lg n), far below n.
        assert!(ctx.stats().ops() < 40 * 11, "ops = {}", ctx.stats().ops());
    }

    #[test]
    fn range_query_matches_filter() {
        let mut x = 3u64;
        let mut rng = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(5);
            (x >> 40) as i64 % 200 - 100
        };
        let points: Vec<Pt> = (0..400).map(|_| (rng(), rng())).collect();
        let t = KdTree::build(&points);
        for _ in 0..20 {
            let (x0, x1) = {
                let a = rng();
                let b = rng();
                (a.min(b), a.max(b))
            };
            let (y0, y1) = {
                let a = rng();
                let b = rng();
                (a.min(b), a.max(b))
            };
            let mut got = t.range_query((x0, x1), (y0, y1));
            let mut expect: Vec<Pt> = points
                .iter()
                .copied()
                .filter(|p| p.0 >= x0 && p.0 <= x1 && p.1 >= y0 && p.1 <= y1)
                .collect();
            got.sort_unstable();
            expect.sort_unstable();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn range_query_empty_tree_and_empty_window() {
        let t = KdTree::build(&[]);
        assert!(t.range_query((-5, 5), (-5, 5)).is_empty());
        let t = KdTree::build(&[(0, 0), (10, 10)]);
        assert!(t.range_query((1, 2), (1, 2)).is_empty());
        assert_eq!(t.range_query((0, 10), (0, 10)).len(), 2);
    }

    #[test]
    fn collinear_inputs() {
        let points: Vec<Pt> = (0..50).map(|i| (i, 0)).collect();
        let t = KdTree::build(&points);
        t.validate();
        assert_eq!(t.len(), 50);
        assert_eq!(t.nearest((25, 10)), Some(((25, 0), 100)));
    }
}
