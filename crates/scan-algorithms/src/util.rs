//! Small shared helpers for the algorithm suite.

/// The splitmix64 finalizer: a stateless, high-quality 64-bit mixer
/// used wherever an algorithm needs deterministic per-(seed, round,
/// element) coin flips or priorities.
#[inline]
pub(crate) fn hash64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_mixing() {
        assert_eq!(hash64(0), hash64(0));
        assert_ne!(hash64(0), hash64(1));
        // Low bits flip between consecutive inputs (coin-flip quality).
        let flips = (0..64u64).filter(|&i| hash64(i) & 1 == 1).count();
        assert!((20..=44).contains(&flips), "biased coin: {flips}/64");
    }
}
