//! # scan-algorithms
//!
//! The algorithm suite of *Scans as Primitive Parallel Operations*:
//! every example algorithm the paper describes (§2), the broader Table 1
//! families, and the baselines they are compared against.
//!
//! Every algorithm is written against [`scan_pram::Ctx`], the
//! step-counting vector machine, so one implementation yields both the
//! answer and its measured step complexity under any P-RAM variant.
//! Convenience wrappers that hide the context are provided throughout.
//!
//! | paper section | algorithm | module |
//! |---------------|-----------|--------|
//! | §2.2.1 | split radix sort | [`sort::radix`] |
//! | §2.3.1 | segmented quicksort | [`mod@sort::quicksort`] |
//! | Table 4 | bitonic sort (baseline) | [`sort::bitonic`] |
//! | §2.3.2 | segmented graph representation | [`graph::segmented`] |
//! | §2.3.3 | star merge + minimum spanning tree | [`mod@graph::star_merge`], [`graph::mst`] |
//! | Table 1 | connected components | [`graph::components`] |
//! | Table 1 | maximal independent set | [`graph::mis`] |
//! | §2.4.1 | line drawing | [`geometry::line_draw`] |
//! | Table 1 | line of sight | [`mod@geometry::line_of_sight`] |
//! | Table 1 | convex hull (quickhull) | [`geometry::hull`] |
//! | Table 1 | k-d tree construction | [`geometry::kdtree`] |
//! | Table 1 | closest pair in the plane | [`mod@geometry::closest_pair`] |
//! | §2.5.1 | halving merge | [`merge::halving`] |
//! | Table 1 | merge baselines | [`merge::baseline`] |
//! | Table 5 | list ranking | [`list_rank`] |
//! | Table 5 | tree computations (Euler tour) | [`tree_ops`] |
//! | Table 1 | matrix operations, linear solver | [`matrix`] |
//! | appendix | binary addition & polynomial evaluation as scans | [`numeric`] |


#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod game_search;
pub mod geometry;
pub mod graph;
pub mod list_rank;
pub mod matrix;
pub mod matrix_sparse;
pub mod numeric;
pub mod tree_ops;
mod util;


pub mod merge;

pub mod sort;

