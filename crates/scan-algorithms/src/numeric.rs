//! The appendix algorithms: scans predate the P-RAM literature, and the
//! paper's history section records two of the earliest uses —
//!
//! - **Ofman (1963)**: binary addition as a carry-resolution scan. We
//!   implement both the paper's segmented-or-scan formulation and the
//!   classic kill/propagate/generate operator scan, and check them
//!   against each other;
//! - **Stone (1971)**: polynomial evaluation as
//!   `A · ×-scan(copy(X))` on a perfect shuffle network.

use scan_core::element::ScanElem;
use scan_core::op::{Prod, ScanOp, Sum};
use scan_core::segmented::Segments;
use scan_pram::{Ctx, Model};

/// Big-integer addition via the paper's appendix formulation:
/// `(A ⊕ B) ⊕ seg-or-scan(A ∧ B, segments after kill positions)`.
///
/// `a` and `b` are little-endian bit vectors of equal length; the
/// result has the same length (the final carry is dropped, i.e.
/// addition modulo `2^n`).
pub fn ofman_add_ctx(ctx: &mut Ctx, a: &[bool], b: &[bool]) -> Vec<bool> {
    assert_eq!(a.len(), b.len(), "operand length mismatch");
    let n = a.len();
    if n == 0 {
        return Vec::new();
    }
    let generate = ctx.zip(a, b, |x, y| x & y);
    let kill = ctx.zip(a, b, |x, y| !x & !y);
    // A carry cannot cross a kill position: start a new segment just
    // above every kill.
    let seg_flags: Vec<bool> = (0..n).map(|i| i == 0 || kill[i - 1]).collect();
    ctx.charge_permute_op(n); // the neighbor shift
    let segs = Segments::from_flags(seg_flags);
    let carry = ctx.seg_scan::<scan_core::op::Or, _>(&generate, &segs);
    let partial = ctx.zip(a, b, |x, y| x ^ y);
    ctx.zip(&partial, &carry, |s, c| s ^ c)
}

/// Ofman addition with the default scan-model machine.
pub fn ofman_add(a: &[bool], b: &[bool]) -> Vec<bool> {
    let mut ctx = Ctx::new(Model::Scan);
    ofman_add_ctx(&mut ctx, a, b)
}

/// Carry state for the kill/propagate/generate scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kpg {
    /// No carry out regardless of carry in.
    Kill,
    /// Carry out equals carry in.
    Propagate,
    /// Carry out regardless of carry in.
    Generate,
}

/// The KPG operator: `combine(left, right)` resolves a carry crossing
/// `left` then `right`. Associative with identity `Propagate`...
/// actually the identity must absorb on the left: `Kill` plays the
/// role of "no carry entering", which is the scan's initial value; the
/// operator's true identity is `Propagate`.
pub struct KpgOp;

impl ScanOp<Kpg> for KpgOp {
    const NAME: &'static str = "kpg";
    fn identity() -> Kpg {
        Kpg::Propagate
    }
    #[inline]
    fn combine(left: Kpg, right: Kpg) -> Kpg {
        match right {
            Kpg::Propagate => left,
            other => other,
        }
    }
}

/// Binary addition via the KPG scan — the carry-lookahead view of the
/// same computation; must agree with [`ofman_add`] bit for bit.
pub fn kpg_add_ctx(ctx: &mut Ctx, a: &[bool], b: &[bool]) -> Vec<bool> {
    assert_eq!(a.len(), b.len(), "operand length mismatch");
    let states: Vec<Kpg> = ctx.zip(a, b, |x, y| match (x, y) {
        (true, true) => Kpg::Generate,
        (false, false) => Kpg::Kill,
        _ => Kpg::Propagate,
    });
    // Exclusive scan; a leading Propagate chain resolves to the
    // identity, which we read as "no carry in".
    let carry_state = ctx.scan::<KpgOp, _>(&states);
    let carry: Vec<bool> = ctx.map(&carry_state, |s| s == Kpg::Generate);
    let partial = ctx.zip(a, b, |x, y| x ^ y);
    ctx.zip(&partial, &carry, |s, c| s ^ c)
}

/// KPG addition with the default scan-model machine.
pub fn kpg_add(a: &[bool], b: &[bool]) -> Vec<bool> {
    let mut ctx = Ctx::new(Model::Scan);
    kpg_add_ctx(&mut ctx, a, b)
}

/// Stone's polynomial evaluation: `p(x) = Σ aᵢ xⁱ` computed as
/// `A · ×-scan(copy(x))` followed by a `+`-reduce — three program
/// steps.
pub fn poly_eval_ctx<T>(ctx: &mut Ctx, coeffs: &[T], x: T) -> T
where
    T: ScanElem,
    Prod: ScanOp<T>,
    Sum: ScanOp<T>,
{
    let xs = ctx.constant(coeffs.len(), x);
    let powers = ctx.scan::<Prod, _>(&xs); // [1, x, x², ...]
    let terms = ctx.zip(coeffs, &powers, |a, p| Prod::combine(a, p));
    ctx.reduce::<Sum, _>(&terms)
}

/// Polynomial evaluation with the default scan-model machine.
pub fn poly_eval(coeffs: &[f64], x: f64) -> f64 {
    let mut ctx = Ctx::new(Model::Scan);
    poly_eval_ctx(&mut ctx, coeffs, x)
}

/// Little-endian bit decomposition helper.
pub fn to_bits(mut v: u64, n: usize) -> Vec<bool> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(v & 1 == 1);
        v >>= 1;
    }
    out
}

/// Little-endian bit recomposition helper.
pub fn from_bits(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ofman_addition_exhaustive_6bit() {
        for a in 0..64u64 {
            for b in 0..64u64 {
                let got = from_bits(&ofman_add(&to_bits(a, 6), &to_bits(b, 6)));
                assert_eq!(got, (a + b) & 63, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn kpg_addition_exhaustive_6bit() {
        for a in 0..64u64 {
            for b in 0..64u64 {
                let got = from_bits(&kpg_add(&to_bits(a, 6), &to_bits(b, 6)));
                assert_eq!(got, (a + b) & 63, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn both_formulations_agree_on_wide_words() {
        let mut x = 3u64;
        for _ in 0..50 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = x;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = x;
            let ab = to_bits(a, 64);
            let bb = to_bits(b, 64);
            assert_eq!(ofman_add(&ab, &bb), kpg_add(&ab, &bb));
            assert_eq!(from_bits(&ofman_add(&ab, &bb)), a.wrapping_add(b));
        }
    }

    #[test]
    fn empty_addition() {
        assert!(ofman_add(&[], &[]).is_empty());
        assert!(kpg_add(&[], &[]).is_empty());
    }

    #[test]
    fn kpg_operator_laws() {
        let all = [Kpg::Kill, Kpg::Propagate, Kpg::Generate];
        for &a in &all {
            assert_eq!(KpgOp::combine(KpgOp::identity(), a), a);
            assert_eq!(KpgOp::combine(a, KpgOp::identity()), a);
            for &b in &all {
                for &c in &all {
                    assert_eq!(
                        KpgOp::combine(KpgOp::combine(a, b), c),
                        KpgOp::combine(a, KpgOp::combine(b, c))
                    );
                }
            }
        }
    }

    #[test]
    fn polynomial_evaluation() {
        // p(x) = 3 + 2x + x³ at x = 2 → 3 + 4 + 8 = 15.
        assert_eq!(poly_eval(&[3.0, 2.0, 0.0, 1.0], 2.0), 15.0);
        assert_eq!(poly_eval(&[], 5.0), 0.0);
        assert_eq!(poly_eval(&[7.0], 100.0), 7.0);
    }

    #[test]
    fn polynomial_matches_horner_on_random_input() {
        let mut x = 9u64;
        let mut rng = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(3);
            ((x >> 40) % 100) as f64 / 10.0 - 5.0
        };
        for _ in 0..20 {
            let coeffs: Vec<f64> = (0..10).map(|_| rng()).collect();
            let at = rng() / 4.0;
            let horner = coeffs.iter().rev().fold(0.0, |acc, &c| acc * at + c);
            let got = poly_eval(&coeffs, at);
            assert!((got - horner).abs() < 1e-6 * (1.0 + horner.abs()));
        }
    }

    #[test]
    fn integer_polynomial() {
        let mut ctx = Ctx::new(Model::Scan);
        // 1 + x + x² + x³ at x = 3 (wrapping u64) = 40.
        assert_eq!(poly_eval_ctx(&mut ctx, &[1u64, 1, 1, 1], 3), 40);
    }
}
