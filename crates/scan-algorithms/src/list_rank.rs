//! List ranking (Table 5): the distance of every node from the end of
//! a linked list.
//!
//! Two implementations, matching Table 5's two rows:
//!
//! - [`wyllie_rank`] — Wyllie's pointer jumping: `O(lg n)` rounds of
//!   `O(1)` steps with `p = n`, but `O(n lg n)` processor-step product;
//! - [`contraction_rank`] — randomized independent-set contraction with
//!   scan-based load balancing (`pack`): the surviving list halves
//!   (in expectation) every round, so total work is `O(n)` and the
//!   processor-step product drops to `O(n)` with `p = n/lg n` — the
//!   optimal row of Table 5 (Cole–Vishkin \[12] achieve it
//!   deterministically; random mate is the scan-friendly variant).
//!
//! The list is given as a `next` array; `next[i] == i` marks the tail.
//! `rank[i]` counts the nodes strictly after `i`.

use scan_pram::{Ctx, Model};

use crate::util::hash64;


/// Wyllie's pointer jumping on a step-counting machine.
pub fn wyllie_rank_ctx(ctx: &mut Ctx, next: &[usize]) -> Vec<u64> {
    let n = next.len();
    if n == 0 {
        return Vec::new();
    }
    let mut nxt = next.to_vec();
    let mut rank: Vec<u64> = ctx.map(&nxt, |_| 0);
    let ids = ctx.iota(n);
    rank = ctx.zip(&rank, &ids, |_, i| u64::from(nxt[i] != i));
    let mut rounds = 0;
    loop {
        rounds += 1;
        assert!(rounds <= 2 * n.ilog2().max(1) + 8, "pointer jumping diverged");
        // Done when every pointer has reached the tail (the gather's
        // fixed point): one more jump would change nothing.
        let done = nxt.iter().all(|&p| nxt[p] == p);
        ctx.charge_elementwise_op(n);
        ctx.charge_scan_op(n); // the and-distribute of the done flags
        if done {
            break;
        }
        // rank[i] += rank[next[i]]; next[i] = next[next[i]]
        let next_rank = ctx.gather(&rank, &nxt);
        rank = ctx.zip(&rank, &next_rank, |a, b| a + b);
        nxt = ctx.gather(&nxt, &nxt);
    }
    rank
}

/// Wyllie ranking with the default scan-model machine.
pub fn wyllie_rank(next: &[usize]) -> Vec<u64> {
    let mut ctx = Ctx::new(Model::Scan);
    wyllie_rank_ctx(&mut ctx, next)
}

/// Randomized contraction list ranking: splice out an independent set,
/// recurse on the packed survivors, reinsert. Work `O(n)` in
/// expectation.
///
/// As in the optimal P-RAM algorithms the paper cites \[12], the
/// contraction stops once the list fits the processors (`p` elements)
/// and finishes with pointer jumping on the short remainder — the
/// contraction phase costs `O(n/p)` steps, the jumping tail `O(lg p)`.
pub fn contraction_rank_ctx(ctx: &mut Ctx, next: &[usize], seed: u64) -> Vec<u64> {
    let n = next.len();
    if n == 0 {
        return Vec::new();
    }
    // d[i]: weighted distance from i to next[i] (1 for live edges).
    let ids: Vec<usize> = (0..n).collect();
    let d: Vec<u64> = next.iter().zip(&ids).map(|(&p, &i)| u64::from(p != i)).collect();
    ctx.charge_elementwise_op(n);
    let threshold = ctx.processors().map(|p| p.max(4)).unwrap_or(4);
    rank_rec(ctx, &ids, next, &d, seed, 0, threshold)
}

/// Recursive layer: `nodes[i]` are the original ids (for rng
/// decorrelation), `next`/`d` are positions *within this layer*.
fn rank_rec(
    ctx: &mut Ctx,
    nodes: &[usize],
    next: &[usize],
    d: &[u64],
    seed: u64,
    depth: u32,
    threshold: usize,
) -> Vec<u64> {
    let n = nodes.len();
    assert!(depth < 128, "contraction failed to converge");
    if n <= 2 {
        // rank(tail) = 0; rank(other) = its edge weight.
        let mut rank = vec![0u64; n];
        for i in 0..n {
            if next[i] != i {
                rank[i] = d[i] + if next[next[i]] == next[i] { 0 } else { d[next[i]] };
            }
        }
        return rank;
    }
    if n <= threshold {
        // The list fits the processors: finish with weighted pointer
        // jumping (O(lg p) steps on ≤ p elements).
        let mut nxt = next.to_vec();
        let mut rank = d.to_vec();
        loop {
            let done = nxt.iter().all(|&p| nxt[p] == p);
            ctx.charge_elementwise_op(n);
            ctx.charge_scan_op(n);
            if done {
                return rank;
            }
            let next_rank = ctx.gather(&rank, &nxt);
            let is_tail: Vec<bool> = nxt.iter().enumerate().map(|(i, &p)| p == i).collect();
            rank = (0..n)
                .map(|i| if is_tail[i] { 0 } else { rank[i] + next_rank[i] })
                .collect();
            ctx.charge_elementwise_op(n);
            nxt = ctx.gather(&nxt, &nxt);
        }
    }
    // Independent set: coin(i) && !coin(next[i]), excluding tails and
    // heads-of-tails corner cases handled naturally.
    let coins: Vec<bool> = nodes
        .iter()
        .map(|&v| hash64(seed ^ ((depth as u64) << 48) ^ v as u64) & 1 == 1)
        .collect();
    ctx.charge_elementwise_op(n);
    let next_coin = ctx.gather(&coins, next);
    let spliced: Vec<bool> = (0..n)
        .map(|i| next[i] != i && coins[i] && !next_coin[i])
        .collect();
    ctx.charge_elementwise_op(n);
    // Predecessor pointers (invert next).
    let mut pred = vec![usize::MAX; n];
    for i in 0..n {
        if next[i] != i {
            pred[next[i]] = i;
        }
    }
    ctx.charge_permute_op(n);
    // Splice: pred’s edge absorbs the spliced node’s edge.
    let keep: Vec<bool> = spliced.iter().map(|&s| !s).collect();
    ctx.charge_elementwise_op(n);
    let mut new_next = next.to_vec();
    let mut new_d = d.to_vec();
    for i in 0..n {
        if spliced[i] && pred[i] != usize::MAX && !spliced[pred[i]] {
            new_next[pred[i]] = next[i];
            new_d[pred[i]] = d[pred[i]] + d[i];
        }
    }
    ctx.charge_permute_op(n);
    ctx.charge_elementwise_op(n);
    // Load balance: pack the survivors (Figure 11) and renumber. One
    // pack moves the whole (node, weight, next) record.
    let new_pos = scan_core::ops::enumerate(&keep);
    ctx.charge_scan_op(n);
    let records: Vec<(usize, u64, usize)> = (0..n)
        .map(|i| (nodes[i], new_d[i], new_next[i]))
        .collect();
    let kept = ctx.pack(&records, &keep);
    let kept_nodes: Vec<usize> = kept.iter().map(|&(v, _, _)| v).collect();
    let kept_d: Vec<u64> = kept.iter().map(|&(_, w, _)| w).collect();
    let kept_next: Vec<usize> = kept.iter().map(|&(_, _, p)| new_pos[p]).collect();
    ctx.charge_permute_op(kept_nodes.len());
    let kept_rank = rank_rec(ctx, &kept_nodes, &kept_next, &kept_d, seed, depth + 1, threshold);
    // Reinsert: a spliced node's rank is its old edge weight plus its
    // old successor's rank.
    let mut rank = vec![0u64; n];
    let mut ki = 0;
    for i in 0..n {
        if keep[i] {
            rank[i] = kept_rank[ki];
            ki += 1;
        }
    }
    for i in 0..n {
        if spliced[i] {
            rank[i] = d[i] + rank[next[i]];
        }
    }
    ctx.charge_permute_op(n);
    ctx.charge_elementwise_op(n);
    rank
}

/// Contraction ranking with the default scan-model machine.
pub fn contraction_rank(next: &[usize], seed: u64) -> Vec<u64> {
    let mut ctx = Ctx::new(Model::Scan);
    contraction_rank_ctx(&mut ctx, next, seed)
}

/// Sequential reference.
pub fn rank_reference(next: &[usize]) -> Vec<u64> {
    let n = next.len();
    let mut rank = vec![0u64; n];
    // Find tail, walk backward via an inverted pointer array.
    let mut pred = vec![usize::MAX; n];
    let mut tail = usize::MAX;
    for i in 0..n {
        if next[i] == i {
            tail = i;
        } else {
            pred[next[i]] = i;
        }
    }
    assert!(tail != usize::MAX || n == 0, "list must have a tail");
    let mut cur = tail;
    let mut r = 0u64;
    while cur != usize::MAX {
        rank[cur] = r;
        r += 1;
        cur = pred[cur];
    }
    rank
}

/// Build a random list permutation of length `n`: returns the `next`
/// array (workload generator for the Table 5 bench).
pub fn random_list(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed | 1;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    let mut next = vec![0usize; n];
    for w in order.windows(2) {
        next[w[0]] = w[1];
    }
    if n > 0 {
        let tail = order[n - 1];
        next[tail] = tail;
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(next: &[usize], seed: u64) {
        let expect = rank_reference(next);
        assert_eq!(wyllie_rank(next), expect, "wyllie on {next:?}");
        assert_eq!(contraction_rank(next, seed), expect, "contraction on {next:?}");
    }

    #[test]
    fn straight_list() {
        // 0→1→2→3→4 (tail 4)
        check(&[1, 2, 3, 4, 4], 1);
    }

    #[test]
    fn single_and_pair() {
        check(&[0], 2);
        check(&[1, 1], 3);
        check(&[], 4);
    }

    #[test]
    fn scrambled_lists() {
        for seed in 0..5 {
            let next = random_list(100, seed * 7 + 1);
            check(&next, seed);
        }
    }

    #[test]
    fn large_list() {
        let next = random_list(5000, 99);
        check(&next, 5);
    }

    #[test]
    fn wyllie_work_exceeds_contraction_work() {
        // Table 5's point: pointer jumping with p = n does Θ(n lg n)
        // processor-steps; the contraction with p = n/lg n does Θ(n).
        let products = |lg_n: u32| {
            let n = 1usize << lg_n;
            let next = random_list(n, 3);
            let mut wy = Ctx::with_processors(Model::Scan, n);
            wyllie_rank_ctx(&mut wy, &next);
            let p = n / lg_n as usize;
            let mut co = Ctx::with_processors(Model::Scan, p);
            contraction_rank_ctx(&mut co, &next, 1);
            (wy.steps() * n as u64, co.steps() * p as u64)
        };
        let (wy16, co16) = products(16);
        assert!(
            wy16 > co16,
            "wyllie {wy16} vs contraction {co16} processor-steps"
        );
        // The gap is the Θ(lg n) work factor, so it must widen with n.
        let (wy12, co12) = products(12);
        let r12 = wy12 as f64 / co12 as f64;
        let r16 = wy16 as f64 / co16 as f64;
        assert!(r16 > r12, "ratio must grow: {r12:.2} → {r16:.2}");
    }

    #[test]
    fn random_list_generator_is_valid() {
        let next = random_list(50, 8);
        // Exactly one tail; all reachable.
        let tails = next.iter().enumerate().filter(|&(i, &p)| i == p).count();
        assert_eq!(tails, 1);
        let ranks = rank_reference(&next);
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        let expect: Vec<u64> = (0..50).collect();
        assert_eq!(sorted, expect, "ranks must be a permutation of 0..n");
    }
}
