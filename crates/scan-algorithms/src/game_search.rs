//! Branch-and-bound game search (§2.4–§2.5): the paper motivates
//! processor allocation with "a brute force chess-playing algorithm
//! that executes a fixed-depth search of possible moves ... Since the
//! algorithm dynamically decides how many next moves to generate,
//! depending on the position, we need to dynamically allocate new
//! elements," and motivates load balancing with the pruning of the
//! bounding phase.
//!
//! This module runs that exact pattern on a complete, verifiable game:
//! data-parallel minimax over tic-tac-toe. Each search wave holds the
//! whole frontier in one vector; every position counts its legal moves,
//! one `allocate` creates the children, a segmented copy distributes
//! each parent across its segment, and the rank within the segment
//! (one segmented `+-scan`) selects the move. The backward pass is one
//! segmented min- or max-reduce per level — the paper's minimax
//! ("trying to minimize the benefit of one player and maximize the
//! benefit of the other") as segmented distributes.

use scan_core::op::{Max, Min, Sum};
use scan_pram::{Ctx, Model};

/// A tic-tac-toe position: bitboards for X and O plus the side to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Board {
    /// Cells occupied by X (bits 0..9, row-major).
    pub x: u16,
    /// Cells occupied by O.
    pub o: u16,
    /// Whether X is to move.
    pub x_to_move: bool,
}

const LINES: [u16; 8] = [
    0b000_000_111,
    0b000_111_000,
    0b111_000_000,
    0b001_001_001,
    0b010_010_010,
    0b100_100_100,
    0b100_010_001,
    0b001_010_100,
];

const FULL: u16 = 0b111_111_111;

impl Board {
    /// The empty board, X to move.
    pub fn empty() -> Board {
        Board {
            x: 0,
            o: 0,
            x_to_move: true,
        }
    }

    /// Build from a string of 9 characters (`X`, `O`, `.`), row-major.
    ///
    /// # Panics
    /// On malformed input or overlapping marks.
    pub fn parse(s: &str, x_to_move: bool) -> Board {
        let cells: Vec<char> = s.chars().filter(|c| !c.is_whitespace()).collect();
        assert_eq!(cells.len(), 9, "need 9 cells");
        let mut b = Board {
            x: 0,
            o: 0,
            x_to_move,
        };
        for (i, c) in cells.iter().enumerate() {
            match c {
                'X' | 'x' => b.x |= 1 << i,
                'O' | 'o' => b.o |= 1 << i,
                '.' => {}
                _ => panic!("bad cell {c}"),
            }
        }
        assert_eq!(b.x & b.o, 0, "overlapping marks");
        b
    }

    fn winner(self) -> Option<bool> {
        for line in LINES {
            if self.x & line == line {
                return Some(true);
            }
            if self.o & line == line {
                return Some(false);
            }
        }
        None
    }

    /// Terminal score from X's perspective: `+1` X win, `−1` O win,
    /// `0` draw; `None` while the game is live.
    pub fn terminal_score(self) -> Option<i8> {
        match self.winner() {
            Some(true) => Some(1),
            Some(false) => Some(-1),
            None if (self.x | self.o) == FULL => Some(0),
            None => None,
        }
    }

    /// Number of legal moves (0 when terminal).
    pub fn move_count(self) -> usize {
        if self.terminal_score().is_some() {
            0
        } else {
            (FULL & !(self.x | self.o)).count_ones() as usize
        }
    }

    /// Apply the `k`-th legal move (by ascending cell index).
    ///
    /// # Panics
    /// If `k` is out of range.
    pub fn apply_nth(self, k: usize) -> Board {
        let mut free = FULL & !(self.x | self.o);
        for _ in 0..k {
            free &= free - 1; // clear lowest set bit
        }
        assert!(free != 0, "move index out of range");
        let cell = free & free.wrapping_neg();
        if self.x_to_move {
            Board {
                x: self.x | cell,
                o: self.o,
                x_to_move: false,
            }
        } else {
            Board {
                x: self.x,
                o: self.o | cell,
                x_to_move: true,
            }
        }
    }
}

/// Statistics from a parallel search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResult {
    /// Minimax value of the root, from X's perspective.
    pub value: i8,
    /// Nodes expanded per wave (the frontier sizes).
    pub wave_sizes: Vec<usize>,
}

/// Fixed-depth data-parallel minimax on a step-counting machine.
/// `max_depth ≥ 9` makes the search exact for tic-tac-toe; shallower
/// cutoffs score live positions 0.
pub fn parallel_minimax_ctx(ctx: &mut Ctx, root: Board, max_depth: usize) -> SearchResult {
    // Forward phase: expand wave by wave, recording each level.
    struct Level {
        boards: Vec<Board>,
        counts: Vec<usize>,
        terminal: Vec<Option<i8>>,
    }
    let mut levels: Vec<Level> = Vec::new();
    let mut frontier = vec![root];
    let mut wave_sizes = Vec::new();
    for depth in 0..=max_depth {
        wave_sizes.push(frontier.len());
        let terminal: Vec<Option<i8>> = ctx.map(&frontier, |b| b.terminal_score());
        // The bounding phase: positions that are decided stop branching
        // (their counts drop to zero — the paper's pruning).
        let counts: Vec<usize> = if depth == max_depth {
            ctx.constant(frontier.len(), 0usize)
        } else {
            ctx.map(&frontier, |b: Board| b.move_count())
        };
        // §2.4: dynamically allocate one processor per child move.
        let parents = ctx.distribute(&frontier, &counts);
        let alloc = ctx.allocate(&counts);
        let ones = ctx.constant(alloc.total, 1usize);
        let move_index = ctx.seg_scan::<Sum, _>(&ones, &alloc.segments);
        let children: Vec<Board> = parents
            .iter()
            .zip(&move_index)
            .map(|(&b, &k)| b.apply_nth(k))
            .collect();
        ctx.charge_elementwise_op(alloc.total);
        levels.push(Level {
            boards: frontier,
            counts,
            terminal,
        });
        frontier = children;
        if frontier.is_empty() {
            break;
        }
    }
    // Backward phase: per level, the expanded positions take a
    // segmented min/max over their children's values — a constant
    // number of segmented operations per level.
    let mut child_values: Vec<i8> = frontier
        .iter()
        .map(|b| b.terminal_score().unwrap_or(0))
        .collect();
    ctx.charge_elementwise_op(frontier.len());
    for level in levels.iter().rev() {
        let alloc = scan_core::allocate(&level.counts);
        debug_assert_eq!(alloc.total, child_values.len());
        // One segmented reduce per player; each parent then selects its
        // own by side to move (both are single vector steps).
        let maxs = if alloc.total > 0 {
            ctx.seg_distribute::<Max, _>(&child_values, &alloc.segments)
        } else {
            Vec::new()
        };
        let mins = if alloc.total > 0 {
            ctx.seg_distribute::<Min, _>(&child_values, &alloc.segments)
        } else {
            Vec::new()
        };
        let mut values = Vec::with_capacity(level.boards.len());
        for (i, b) in level.boards.iter().enumerate() {
            let v = if let Some(t) = level.terminal[i] {
                t
            } else if level.counts[i] == 0 {
                0 // depth cutoff on a live position
            } else {
                let head = alloc.starts[i];
                if b.x_to_move {
                    maxs[head]
                } else {
                    mins[head]
                }
            };
            values.push(v);
        }
        ctx.charge_permute_op(level.boards.len());
        ctx.charge_elementwise_op(level.boards.len());
        child_values = values;
    }
    SearchResult {
        value: child_values[0],
        wave_sizes,
    }
}

/// Parallel minimax with the default scan-model machine.
pub fn parallel_minimax(root: Board, max_depth: usize) -> SearchResult {
    let mut ctx = Ctx::new(Model::Scan);
    parallel_minimax_ctx(&mut ctx, root, max_depth)
}

/// Sequential minimax reference.
pub fn minimax_reference(b: Board, max_depth: usize) -> i8 {
    if let Some(t) = b.terminal_score() {
        return t;
    }
    if max_depth == 0 {
        return 0;
    }
    let n = b.move_count();
    let mut best: Option<i8> = None;
    for k in 0..n {
        let v = minimax_reference(b.apply_nth(k), max_depth - 1);
        best = Some(match best {
            None => v,
            Some(cur) => {
                if b.x_to_move {
                    cur.max(v)
                } else {
                    cur.min(v)
                }
            }
        });
    }
    best.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn board_mechanics() {
        let b = Board::parse("XX. OO. ...", true);
        assert_eq!(b.move_count(), 5);
        let win = b.apply_nth(0); // X plays cell 2
        assert_eq!(win.terminal_score(), Some(1));
        assert_eq!(win.move_count(), 0);
    }

    #[test]
    fn draw_detection() {
        let b = Board::parse("XOX XXO OXO", true);
        assert_eq!(b.terminal_score(), Some(0));
    }

    #[test]
    fn immediate_win_found() {
        // X completes the top row.
        let b = Board::parse("XX. OO. ...", true);
        assert_eq!(parallel_minimax(b, 9).value, 1);
    }

    #[test]
    fn forced_loss_detected() {
        // O has two ways to win; X to move cannot stop both.
        let b = Board::parse("OO. .X. .XO", true);
        assert_eq!(
            parallel_minimax(b, 9).value,
            minimax_reference(b, 9)
        );
    }

    #[test]
    fn perfect_play_is_a_draw() {
        let r = parallel_minimax(Board::empty(), 9);
        assert_eq!(r.value, 0, "tic-tac-toe is a draw");
        // The frontier swells and then collapses as games finish — the
        // §2.4 dynamic-allocation profile. First waves: 1, 9, 72, ...
        assert_eq!(&r.wave_sizes[..3], &[1, 9, 72]);
        assert_eq!(r.wave_sizes.len(), 10);
    }

    #[test]
    fn matches_reference_on_random_positions() {
        let mut state = 77u64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for _ in 0..40 {
            // Play a few random moves from the start, then compare.
            let mut b = Board::empty();
            let plies = (rng() % 6) as usize;
            for _ in 0..plies {
                if b.move_count() == 0 {
                    break;
                }
                let k = (rng() as usize) % b.move_count();
                b = b.apply_nth(k);
            }
            for depth in [0usize, 1, 2, 9] {
                assert_eq!(
                    parallel_minimax(b, depth).value,
                    minimax_reference(b, depth),
                    "board {b:?} depth {depth}"
                );
            }
        }
    }

    #[test]
    fn cutoff_scores_live_positions_zero() {
        let r = parallel_minimax(Board::empty(), 0);
        assert_eq!(r.value, 0);
        assert_eq!(r.wave_sizes, vec![1]);
    }

    #[test]
    fn step_complexity_counts_waves_not_nodes() {
        // The program-step count is (a small constant) × depth, even
        // though the node count explodes: the whole wave is a handful
        // of vector operations.
        let mut ctx = Ctx::new(Model::Scan);
        let r = parallel_minimax_ctx(&mut ctx, Board::empty(), 9);
        let nodes: usize = r.wave_sizes.iter().sum();
        assert!(nodes > 100_000, "full tree has ~550k nodes, got {nodes}");
        assert!(
            ctx.steps() < 1200,
            "steps must scale with depth, not nodes: {}",
            ctx.steps()
        );
    }
}
