//! Property-based tests: every algorithm against an independent
//! reference on arbitrary inputs.

use proptest::prelude::*;
use scan_algorithms::geometry::closest_pair::{closest_pair, closest_pair_reference};
use scan_algorithms::geometry::hull::{convex_hull, convex_hull_reference};
use scan_algorithms::geometry::kdtree::KdTree;
use scan_algorithms::graph::reference::{components_reference, kruskal};
use scan_algorithms::graph::{connected_components, minimum_spanning_tree};
use scan_algorithms::list_rank::{contraction_rank, rank_reference, wyllie_rank};
use scan_algorithms::merge::{bitonic_merge, halving_merge, seq_merge};
use scan_algorithms::numeric::{from_bits, kpg_add, ofman_add, to_bits};
use scan_algorithms::sort::{bitonic_sort, quicksort, split_radix_sort, PivotRule};
use scan_algorithms::tree_ops::{euler_tour, tree_reference};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn radix_sort_sorts(keys in proptest::collection::vec(0u64..1_000_000, 0..500)) {
        let mut expect = keys.clone();
        expect.sort_unstable();
        prop_assert_eq!(split_radix_sort(&keys, 20), expect);
    }

    #[test]
    fn quicksort_sorts(keys in proptest::collection::vec(any::<u64>(), 0..400), seed in any::<u64>()) {
        let mut expect = keys.clone();
        expect.sort_unstable();
        prop_assert_eq!(quicksort(&keys, PivotRule::Random(seed)), expect.clone());
        prop_assert_eq!(quicksort(&keys, PivotRule::First), expect);
    }

    #[test]
    fn bitonic_sorts(keys in proptest::collection::vec(any::<u64>(), 0..400)) {
        let mut expect = keys.clone();
        expect.sort_unstable();
        prop_assert_eq!(bitonic_sort(&keys), expect);
    }

    #[test]
    fn merges_agree(
        mut a in proptest::collection::vec(0u64..1_000_000, 0..300),
        mut b in proptest::collection::vec(0u64..1_000_000, 0..300),
    ) {
        a.sort_unstable();
        b.sort_unstable();
        let expect = seq_merge(&a, &b);
        prop_assert_eq!(halving_merge(&a, &b), expect.clone());
        prop_assert_eq!(bitonic_merge(&a, &b), expect);
    }

    #[test]
    fn mst_matches_kruskal(
        n in 2usize..40,
        raw in proptest::collection::vec((any::<u16>(), any::<u16>(), 0u64..1000), 0..120),
        seed in any::<u64>(),
    ) {
        let edges: Vec<(usize, usize, u64)> = raw
            .iter()
            .filter_map(|&(u, v, w)| {
                let (u, v) = (u as usize % n, v as usize % n);
                (u != v).then_some((u, v, w))
            })
            .collect();
        let got = minimum_spanning_tree(n, &edges, seed);
        let (expect, weight) = kruskal(n, &edges);
        prop_assert_eq!(got.edges, expect);
        prop_assert_eq!(got.total_weight, weight);
    }

    #[test]
    fn components_match_union_find(
        n in 1usize..50,
        raw in proptest::collection::vec((any::<u16>(), any::<u16>()), 0..100),
        seed in any::<u64>(),
    ) {
        let edges: Vec<(usize, usize, u64)> = raw
            .iter()
            .filter_map(|&(u, v)| {
                let (u, v) = (u as usize % n, v as usize % n);
                (u != v).then_some((u, v, 0))
            })
            .collect();
        prop_assert_eq!(
            connected_components(n, &edges, seed),
            components_reference(n, &edges)
        );
    }

    #[test]
    fn hull_matches_monotone_chain(
        pts in proptest::collection::vec((-500i64..500, -500i64..500), 0..200),
    ) {
        prop_assert_eq!(convex_hull(&pts), convex_hull_reference(&pts));
    }

    #[test]
    fn closest_pair_matches_brute_force(
        pts in proptest::collection::vec((-1000i64..1000, -1000i64..1000), 2..150),
    ) {
        let (_, _, d) = closest_pair(&pts);
        prop_assert_eq!(d, closest_pair_reference(&pts));
    }

    #[test]
    fn kdtree_nearest_matches_brute_force(
        pts in proptest::collection::vec((-300i64..300, -300i64..300), 1..150),
        queries in proptest::collection::vec((-400i64..400, -400i64..400), 1..20),
    ) {
        let t = KdTree::build(&pts);
        t.validate();
        prop_assert_eq!(t.len(), pts.len());
        for q in queries {
            let best = pts
                .iter()
                .map(|&p| (p.0 - q.0).pow(2) + (p.1 - q.1).pow(2))
                .min()
                .unwrap();
            prop_assert_eq!(t.nearest(q).unwrap().1, best);
        }
    }

    #[test]
    fn list_rankers_match_reference(n in 1usize..200, seed in any::<u64>()) {
        let next = scan_algorithms::list_rank::random_list(n, seed | 1);
        let expect = rank_reference(&next);
        prop_assert_eq!(wyllie_rank(&next), expect.clone());
        prop_assert_eq!(contraction_rank(&next, seed), expect);
    }

    #[test]
    fn euler_tour_matches_dfs(n in 1usize..80, seed in any::<u64>(), root_pick in any::<u64>()) {
        // Random attachment tree.
        let mut state = seed | 1;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        let edges: Vec<(usize, usize)> = (1..n).map(|v| (rng() % v, v)).collect();
        let root = root_pick as usize % n;
        let tour = euler_tour(n, &edges, root, seed);
        let (parent, depth, size) = tree_reference(n, &edges, root);
        prop_assert_eq!(tour.parent, parent);
        prop_assert_eq!(tour.depth, depth);
        prop_assert_eq!(tour.subtree_size, size);
    }

    #[test]
    fn biconnected_matches_tarjan(
        n in 2usize..25,
        extra in proptest::collection::vec((any::<u16>(), any::<u16>()), 0..40),
        seed in any::<u64>(),
    ) {
        use scan_algorithms::graph::biconnected::biconnected_components;
        use scan_algorithms::graph::reference::biconnected_reference;
        // Spanning path keeps it connected.
        let mut edges: Vec<(usize, usize, u64)> = (1..n).map(|v| (v - 1, v, 0)).collect();
        for &(u, v) in &extra {
            let (u, v) = (u as usize % n, v as usize % n);
            if u != v {
                edges.push((u, v, 0));
            }
        }
        let got = biconnected_components(n, &edges, seed);
        let expect = biconnected_reference(n, &edges);
        // Same partition up to relabelling.
        let mut fwd = std::collections::HashMap::new();
        let mut bwd = std::collections::HashMap::new();
        for (&x, &y) in got.edge_block.iter().zip(&expect.edge_block) {
            prop_assert_eq!(*fwd.entry(x).or_insert(y), y);
            prop_assert_eq!(*bwd.entry(y).or_insert(x), x);
        }
        prop_assert_eq!(got.articulation, expect.articulation);
        prop_assert_eq!(got.bridge, expect.bridge);
        prop_assert_eq!(got.n_blocks, expect.n_blocks);
    }

    #[test]
    fn spmv_matches_reference(
        rows in 1usize..30,
        cols in 1usize..30,
        raw in proptest::collection::vec((any::<u16>(), any::<u16>(), -50i32..50), 0..150),
    ) {
        use scan_algorithms::matrix_sparse::SparseMatrix;
        let triplets: Vec<(usize, usize, f64)> = raw
            .iter()
            .map(|&(r, c, v)| (r as usize % rows, c as usize % cols, v as f64 / 4.0))
            .collect();
        let a = SparseMatrix::from_triplets(rows, cols, &triplets);
        let x: Vec<f64> = (0..cols).map(|i| i as f64 - 3.5).collect();
        let got = a.spmv(&x);
        let expect = a.spmv_reference(&x);
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!((g - e).abs() < 1e-9);
        }
    }

    #[test]
    fn merge_sort_sorts(keys in proptest::collection::vec(any::<u64>(), 0..400)) {
        let mut expect = keys.clone();
        expect.sort_unstable();
        prop_assert_eq!(scan_algorithms::sort::merge_sort(&keys), expect);
    }

    #[test]
    fn scan_adders_add(a in any::<u64>(), b in any::<u64>()) {
        let ab = to_bits(a, 64);
        let bb = to_bits(b, 64);
        let expect = a.wrapping_add(b);
        prop_assert_eq!(from_bits(&ofman_add(&ab, &bb)), expect);
        prop_assert_eq!(from_bits(&kpg_add(&ab, &bb)), expect);
    }
}
