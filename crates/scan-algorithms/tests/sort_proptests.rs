//! Differential + stability suite for the fused radix sort.
//!
//! The fused engine (`scan_core::multi_split`) must be a drop-in
//! replacement for the unfused enumerate-per-bucket schedule: same
//! output, same stability guarantee, same scan-model charges — at
//! every digit width, at sizes straddling `PAR_THRESHOLD`, under both
//! parallel schedules. Like `scan-core`'s engine suite, the pool is
//! pinned to 4 lanes so the blocked paths genuinely run parallel even
//! on a single-core CI machine.

use proptest::prelude::*;
use scan_algorithms::sort::fused_radix::{
    fused_radix_sort, fused_radix_sort_digits, fused_radix_sort_digits_ctx,
    fused_radix_sort_pairs_digits, try_fused_radix_sort, try_fused_radix_sort_digits,
};
use scan_algorithms::sort::radix::{split_radix_sort_digits, split_radix_sort_digits_ctx};
use scan_core::parallel::{self, Schedule, PAR_THRESHOLD};
use scan_pram::{Ctx, Model};
use std::sync::{Mutex, Once};

static INIT: Once = Once::new();

/// Pin the pool width to 4 before the lazy pool is first created (the
/// CI container may expose one core, which would silently bypass the
/// parallel scatter paths).
fn setup() {
    INIT.call_once(|| {
        std::env::set_var("SCAN_CORE_THREADS", "4");
        assert_eq!(scan_core::pool::global().threads(), 4);
    });
}

/// Serializes tests that flip the process-wide default schedule.
static SCHED_LOCK: Mutex<()> = Mutex::new(());

fn with_default_schedule<R>(s: Schedule, f: impl FnOnce() -> R) -> R {
    let _guard = SCHED_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    parallel::set_default_schedule(s);
    let r = f();
    parallel::set_default_schedule(Schedule::Pooled);
    r
}

/// Deterministic pseudo-random keys (splitmix64), masked to `bits`.
fn keys(mut seed: u64, n: usize, bits: u32) -> Vec<u64> {
    let mask = if bits >= 64 { u64::MAX } else { (1 << bits) - 1 };
    (0..n)
        .map(|_| {
            seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) & mask
        })
        .collect()
}

const WIDTHS: [u32; 4] = [1, 4, 8, 11];

#[test]
fn fused_matches_legacy_and_std_across_threshold_and_schedules() {
    setup();
    let sizes = [
        0usize,
        1,
        7,
        1000,
        PAR_THRESHOLD - 1,
        PAR_THRESHOLD,
        PAR_THRESHOLD + 1,
        2 * PAR_THRESHOLD + 7,
    ];
    for sched in [Schedule::Pooled, Schedule::Spawn, Schedule::Sequential] {
        with_default_schedule(sched, || {
            for &n in &sizes {
                let ks = keys(n as u64 ^ 0xDEAD, n, 16);
                let mut expect = ks.clone();
                expect.sort_unstable();
                for w in WIDTHS {
                    let fused = fused_radix_sort_digits(&ks, 16, w);
                    assert_eq!(fused, expect, "sched={sched:?} n={n} w={w}");
                }
                // The legacy path is quadratic in 2^w per pass — check
                // it differentially at one cheap width only for the
                // large sizes.
                let legacy = split_radix_sort_digits(&ks, 16, 8);
                assert_eq!(legacy, expect, "legacy sched={sched:?} n={n}");
            }
        });
    }
}

#[test]
fn stability_with_tagged_duplicates_across_threshold() {
    setup();
    for &n in &[1000usize, PAR_THRESHOLD + 17] {
        // Heavily duplicated 4-bit keys tagged with their original
        // index: a stable sort must keep tags ascending per key.
        let ks = keys(42 + n as u64, n, 4);
        let tags: Vec<u64> = (0..n as u64).collect();
        for w in WIDTHS {
            let (sk, sv) = fused_radix_sort_pairs_digits(&ks, &tags, 4, w);
            let mut expect: Vec<(u64, u64)> = ks.iter().copied().zip(tags.iter().copied()).collect();
            expect.sort_by_key(|&(k, _)| k); // std stable sort
            let got: Vec<(u64, u64)> = sk.into_iter().zip(sv).collect();
            assert_eq!(got, expect, "n={n} w={w}");
        }
    }
}

#[test]
fn ctx_charges_match_legacy_at_every_width() {
    setup();
    let ks = keys(7, 512, 16);
    for w in WIDTHS {
        let mut fused_ctx = Ctx::new(Model::Scan);
        let mut legacy_ctx = Ctx::new(Model::Scan);
        let fused = fused_radix_sort_digits_ctx(&mut fused_ctx, &ks, 16, w);
        let legacy = split_radix_sort_digits_ctx(&mut legacy_ctx, &ks, 16, w);
        assert_eq!(fused, legacy, "w={w}");
        assert_eq!(fused_ctx.steps(), legacy_ctx.steps(), "w={w}");
    }
}

#[test]
fn try_fused_agrees_and_reports_typed_errors() {
    setup();
    use scan_core::{deadline, Error, ExecError, ScanDeadline};
    let ks = keys(3, PAR_THRESHOLD + 5, 16);
    assert_eq!(
        try_fused_radix_sort(&ks, 16).unwrap(),
        fused_radix_sort(&ks, 16)
    );
    assert!(matches!(
        try_fused_radix_sort(&[1 << 20], 16),
        Err(Error::WidthOverflow { available: 16, .. })
    ));
    let d = ScanDeadline::manual();
    d.cancel();
    for sched in [Schedule::Pooled, Schedule::Spawn] {
        with_default_schedule(sched, || {
            let r = deadline::with_deadline(&d, || try_fused_radix_sort_digits(&ks, 16, 8));
            assert_eq!(r, Err(Error::Exec(ExecError::Cancelled)), "sched={sched:?}");
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random keys, random width: fused == std unstable sort (values
    /// only) and fused pairs == std stable sort (stability).
    #[test]
    fn fused_sorts_random_keys(
        ks in proptest::collection::vec(0u64..(1 << 16), 0..700),
        wi in 0usize..4,
    ) {
        setup();
        let w = WIDTHS[wi];
        let mut expect = ks.clone();
        expect.sort_unstable();
        prop_assert_eq!(fused_radix_sort_digits(&ks, 16, w), expect);
    }

    /// Fused and legacy schedules are interchangeable on random data.
    #[test]
    fn fused_matches_legacy_random(
        ks in proptest::collection::vec(0u64..(1 << 10), 0..400),
        wi in 0usize..3,
    ) {
        setup();
        let w = [1u32, 4, 8][wi];
        prop_assert_eq!(
            fused_radix_sort_digits(&ks, 10, w),
            split_radix_sort_digits(&ks, 10, w)
        );
    }

    /// Stability under duplicates for the pairs variant.
    #[test]
    fn fused_pairs_stable_random(
        ks in proptest::collection::vec(0u64..16, 0..500),
        wi in 0usize..2,
    ) {
        setup();
        let w = [1u32, 4][wi];
        let tags: Vec<u64> = (0..ks.len() as u64).collect();
        let (sk, sv) = fused_radix_sort_pairs_digits(&ks, &tags, 4, w);
        let mut expect: Vec<(u64, u64)> =
            ks.iter().copied().zip(tags.iter().copied()).collect();
        expect.sort_by_key(|&(k, _)| k);
        let got: Vec<(u64, u64)> = sk.into_iter().zip(sv).collect();
        prop_assert_eq!(got, expect);
    }

    /// The checked variant never panics and agrees with the infallible
    /// path when no deadline is armed.
    #[test]
    fn try_fused_total_random(
        ks in proptest::collection::vec(0u64..(1 << 12), 0..300),
        wi in 0usize..2,
    ) {
        setup();
        let w = [1u32, 8][wi];
        let r = try_fused_radix_sort_digits(&ks, 12, w);
        prop_assert_eq!(r.unwrap(), fused_radix_sort_digits(&ks, 12, w));
    }
}
