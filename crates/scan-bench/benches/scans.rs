//! Wall-clock benchmarks of the scan kernels: sequential vs blocked
//! parallel, plain vs segmented, and the §3.4 simulated variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scan_bench::random_keys;
use scan_core::op::{Max, Sum};
use scan_core::parallel::{exclusive_scan_by, seq_exclusive_scan_by};
use scan_core::segmented::{seg_scan, Segments};
use scan_core::simulate::{self, SoftwareScans};

fn bench_plain_scans(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan/plus");
    g.sample_size(20);
    for lg in [16u32, 20, 24] {
        let n = 1usize << lg;
        let a = random_keys(n, 32, 1);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("sequential", n), &a, |b, a| {
            b.iter(|| seq_exclusive_scan_by(a, 0u64, |x, y| x.wrapping_add(y)))
        });
        g.bench_with_input(BenchmarkId::new("parallel", n), &a, |b, a| {
            b.iter(|| exclusive_scan_by(a, 0u64, |x, y| x.wrapping_add(y)))
        });
    }
    g.finish();
}

fn bench_max_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan/max");
    g.sample_size(20);
    let n = 1usize << 22;
    let a = random_keys(n, 48, 2);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("direct", |b| b.iter(|| scan_core::scan::<Max, _>(&a)));
    g.bench_function("min_via_inverted_max", |b| {
        b.iter(|| simulate::min_scan_u64(&SoftwareScans, &a))
    });
    g.finish();
}

fn bench_segmented(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan/segmented");
    g.sample_size(20);
    for seg_len in [8usize, 1024, 1 << 20] {
        let n = 1usize << 20;
        let a = random_keys(n, 32, 3);
        let flags: Vec<bool> = (0..n).map(|i| i % seg_len == 0).collect();
        let segs = Segments::from_flags(flags);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(
            BenchmarkId::new("seg_plus_scan/seg_len", seg_len),
            &(a, segs),
            |b, (a, segs)| b.iter(|| seg_scan::<Sum, _>(a, segs)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_plain_scans, bench_max_scan, bench_segmented);
criterion_main!(benches);
