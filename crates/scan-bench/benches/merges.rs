//! Wall-clock merging: the halving merge against the bitonic merging
//! network and the sequential two-finger baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scan_algorithms::merge::{bitonic_merge, halving_merge, seq_merge};
use scan_bench::sorted_keys;

fn bench_merges(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge");
    g.sample_size(10);
    for lg in [14u32, 18] {
        let n = 1usize << lg;
        let a = sorted_keys(n, 30, 6);
        let b = sorted_keys(n, 30, 7);
        g.throughput(Throughput::Elements(2 * n as u64));
        g.bench_with_input(BenchmarkId::new("halving", n), &(a.clone(), b.clone()), |bch, (a, b)| {
            bch.iter(|| halving_merge(a, b))
        });
        g.bench_with_input(BenchmarkId::new("bitonic", n), &(a.clone(), b.clone()), |bch, (a, b)| {
            bch.iter(|| bitonic_merge(a, b))
        });
        g.bench_with_input(BenchmarkId::new("sequential", n), &(a, b), |bch, (a, b)| {
            bch.iter(|| seq_merge(a, b))
        });
    }
    g.finish();
}

fn bench_skewed_merge(c: &mut Criterion) {
    // Uneven inputs: one short, one long.
    let mut g = c.benchmark_group("merge/skewed");
    g.sample_size(10);
    let a = sorted_keys(1 << 8, 30, 8);
    let b = sorted_keys(1 << 18, 30, 9);
    g.bench_function("halving_256_vs_256k", |bch| {
        bch.iter(|| halving_merge(&a, &b))
    });
    g.bench_function("sequential_256_vs_256k", |bch| {
        bch.iter(|| seq_merge(&a, &b))
    });
    g.finish();
}

criterion_group!(benches, bench_merges, bench_skewed_merge);
criterion_main!(benches);
