//! Wall-clock geometry: line drawing by allocation, line of sight,
//! quickhull vs monotone chain, k-d tree build + queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scan_algorithms::geometry::hull::{convex_hull, convex_hull_reference};
use scan_algorithms::geometry::kdtree::KdTree;
use scan_algorithms::geometry::line_of_sight::line_of_sight;
use scan_algorithms::geometry::draw_lines;
use scan_bench::{random_points, Rng};

fn bench_line_drawing(c: &mut Criterion) {
    let mut g = c.benchmark_group("geometry/line_drawing");
    g.sample_size(10);
    for n_lines in [256usize, 4096] {
        let mut rng = Rng::new(31);
        let lines: Vec<((i64, i64), (i64, i64))> = (0..n_lines)
            .map(|_| {
                (
                    (rng.below(1024) as i64, rng.below(1024) as i64),
                    (rng.below(1024) as i64, rng.below(1024) as i64),
                )
            })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n_lines), &lines, |b, l| {
            b.iter(|| draw_lines(l))
        });
    }
    g.finish();
}

fn bench_line_of_sight(c: &mut Criterion) {
    let mut g = c.benchmark_group("geometry/line_of_sight");
    g.sample_size(10);
    let n = 1 << 20;
    let mut rng = Rng::new(32);
    let alts: Vec<f64> = (0..n).map(|_| rng.below(1000) as f64 / 7.0).collect();
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("max_scan_1M_samples", |b| {
        b.iter(|| line_of_sight(10.0, &alts))
    });
    g.finish();
}

fn bench_hull(c: &mut Criterion) {
    let mut g = c.benchmark_group("geometry/convex_hull");
    g.sample_size(10);
    for n in [1024usize, 16384] {
        let pts = random_points(n, 1 << 19, 33);
        g.bench_with_input(BenchmarkId::new("quickhull", n), &pts, |b, p| {
            b.iter(|| convex_hull(p))
        });
        g.bench_with_input(BenchmarkId::new("monotone_chain", n), &pts, |b, p| {
            b.iter(|| convex_hull_reference(p))
        });
    }
    g.finish();
}

fn bench_kdtree(c: &mut Criterion) {
    let mut g = c.benchmark_group("geometry/kdtree");
    g.sample_size(10);
    let pts = random_points(1 << 14, 1 << 19, 34);
    g.bench_function("build_16k", |b| b.iter(|| KdTree::build(&pts)));
    let tree = KdTree::build(&pts);
    let queries = random_points(1000, 1 << 19, 35);
    g.bench_function("nearest_1k_queries", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|&q| tree.nearest(q).expect("nonempty").1)
                .sum::<i64>()
        })
    });
    g.bench_function("range_1k_queries", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|&q| {
                    tree.range_query((q.0 - 1000, q.0 + 1000), (q.1 - 1000, q.1 + 1000))
                        .len()
                })
                .sum::<usize>()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_line_drawing,
    bench_line_of_sight,
    bench_hull,
    bench_kdtree
);
criterion_main!(benches);
