//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - the parallel-scan block schedule vs a pure sequential pass (the
//!   2× work overhead of the two-pass scheme must be bought back by
//!   parallelism);
//! - segmented scans via the pair operator vs via two unsegmented
//!   primitives (§3.4) — the hardware route does more passes;
//! - quicksort pivot rules (first element vs random), the paper's
//!   expected-case argument.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scan_algorithms::sort::{quicksort, PivotRule};
use scan_bench::random_keys;
use scan_core::op::{Max, Sum};
use scan_core::segmented::{seg_scan, Segments};
use scan_core::simulate::{seg_max_scan_via_primitives, SoftwareScans};

fn ablate_seg_scan_route(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/segmented_route");
    g.sample_size(10);
    let n = 1usize << 20;
    let a = random_keys(n, 20, 20);
    let flags: Vec<bool> = (0..n).map(|i| i % 64 == 0).collect();
    let segs = Segments::from_flags(flags);
    g.bench_function("pair_operator", |b| {
        b.iter(|| seg_scan::<Max, _>(&a, &segs))
    });
    g.bench_function("two_primitives_fig16", |b| {
        b.iter(|| seg_max_scan_via_primitives(&SoftwareScans, &a, &segs, 24).unwrap())
    });
    g.finish();
}

fn ablate_pivot_rule(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/quicksort_pivot");
    g.sample_size(10);
    let n = 1usize << 14;
    let random_input = random_keys(n, 30, 21);
    let sorted_input: Vec<u64> = {
        let mut v = random_input.clone();
        v.sort_unstable();
        v
    };
    // Nearly-sorted adversarial input: sorted with a few swaps, which
    // punishes first-element pivots.
    let nearly_sorted: Vec<u64> = {
        let mut v = sorted_input.clone();
        for i in (0..n).step_by(97) {
            v.swap(i, (i + 13) % n);
        }
        v
    };
    for (name, input) in [("random", &random_input), ("nearly_sorted", &nearly_sorted)] {
        g.bench_with_input(BenchmarkId::new("first_pivot", name), input, |b, k| {
            b.iter(|| quicksort(k, PivotRule::First))
        });
        g.bench_with_input(BenchmarkId::new("random_pivot", name), input, |b, k| {
            b.iter(|| quicksort(k, PivotRule::Random(5)))
        });
    }
    g.finish();
}

fn ablate_scan_with_total(c: &mut Criterion) {
    // scan_with_total vs scan-then-reduce: one pass saved.
    let mut g = c.benchmark_group("ablation/scan_with_total");
    g.sample_size(10);
    let a = random_keys(1 << 22, 32, 22);
    g.bench_function("fused", |b| {
        b.iter(|| scan_core::scan_with_total::<Sum, _>(&a))
    });
    g.bench_function("scan_then_reduce", |b| {
        b.iter(|| {
            (
                scan_core::scan::<Sum, _>(&a),
                scan_core::reduce::<Sum, _>(&a),
            )
        })
    });
    g.finish();
}

fn ablate_merge_primitive(c: &mut Criterion) {
    // The §4 extension: step counts with/without the unit-time merge
    // primitive (wall clock is identical — the primitive changes the
    // *charge*, which the bench asserts).
    use scan_algorithms::sort::mergesort::merge_sort_ctx;
    use scan_pram::{Ctx, Model};
    let mut g = c.benchmark_group("ablation/merge_primitive");
    g.sample_size(10);
    let keys = random_keys(1 << 14, 30, 23);
    g.bench_function("mergesort_with_primitive", |b| {
        b.iter(|| {
            let mut ctx = Ctx::new(Model::Scan).with_merge_primitive();
            let out = merge_sort_ctx(&mut ctx, &keys);
            assert!(ctx.steps() < 200, "O(lg n) steps with the primitive");
            out
        })
    });
    g.bench_function("mergesort_without_primitive", |b| {
        b.iter(|| {
            let mut ctx = Ctx::new(Model::Scan);
            let out = merge_sort_ctx(&mut ctx, &keys);
            assert!(ctx.steps() > 300, "O(lg^2 n) steps without it");
            out
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    ablate_seg_scan_route,
    ablate_pivot_rule,
    ablate_scan_with_total,
    ablate_merge_primitive
);
criterion_main!(benches);
