//! The simulated hardware under Criterion: bit cycles are fixed by the
//! design (`m + 2 lg n − 1`), so this measures simulator throughput and
//! verifies cycle counts stay exactly on the paper's bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scan_bench::random_keys;
use scan_circuit::{OpKind, TreeScanCircuit};

fn bench_circuit_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("circuit/scan_simulation");
    g.sample_size(10);
    for lg in [8u32, 12] {
        let n = 1usize << lg;
        let values = random_keys(n, 32, 15);
        g.bench_with_input(BenchmarkId::new("plus_32bit", n), &values, |b, v| {
            let mut circuit = TreeScanCircuit::new(n);
            b.iter(|| {
                let run = circuit.scan(OpKind::Plus, v, 32);
                assert_eq!(run.cycles, 32 + 2 * lg as u64 - 1);
                run
            })
        });
        g.bench_with_input(BenchmarkId::new("max_32bit", n), &values, |b, v| {
            let mut circuit = TreeScanCircuit::new(n);
            b.iter(|| circuit.scan(OpKind::Max, v, 32))
        });
    }
    g.finish();
}

fn bench_field_width(c: &mut Criterion) {
    // Cycle count is linear in the field width m (the m + 2 lg n law).
    let mut g = c.benchmark_group("circuit/field_width");
    g.sample_size(10);
    let n = 1usize << 10;
    for m in [8u32, 32, 64] {
        let values = random_keys(n, m, 16);
        g.bench_with_input(BenchmarkId::from_parameter(m), &values, |b, v| {
            let mut circuit = TreeScanCircuit::new(n);
            b.iter(|| circuit.scan(OpKind::Plus, v, m))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_circuit_scan, bench_field_width);
criterion_main!(benches);
