//! Wall-clock Table 4: split radix sort vs quicksort vs bitonic vs the
//! standard library, across key counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scan_algorithms::sort::{bitonic_sort, quicksort, split_radix_sort, PivotRule};
use scan_bench::random_keys;

fn bench_sorts(c: &mut Criterion) {
    let mut g = c.benchmark_group("sort/16bit_keys");
    g.sample_size(10);
    for lg in [12u32, 16] {
        let n = 1usize << lg;
        let keys = random_keys(n, 16, 4);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("split_radix", n), &keys, |b, k| {
            b.iter(|| split_radix_sort(k, 16))
        });
        g.bench_with_input(BenchmarkId::new("quicksort", n), &keys, |b, k| {
            b.iter(|| quicksort(k, PivotRule::Random(7)))
        });
        g.bench_with_input(BenchmarkId::new("bitonic", n), &keys, |b, k| {
            b.iter(|| bitonic_sort(k))
        });
        g.bench_with_input(BenchmarkId::new("std_unstable", n), &keys, |b, k| {
            b.iter(|| {
                let mut v = k.clone();
                v.sort_unstable();
                v
            })
        });
    }
    g.finish();
}

fn bench_radix_width(c: &mut Criterion) {
    // Ablation: the radix sort's cost is linear in the key width.
    let mut g = c.benchmark_group("sort/radix_key_width");
    g.sample_size(10);
    let n = 1usize << 16;
    for bits in [8u32, 16, 32] {
        let keys = random_keys(n, bits, 5);
        g.bench_with_input(BenchmarkId::from_parameter(bits), &keys, |b, k| {
            b.iter(|| split_radix_sort(k, bits))
        });
    }
    g.finish();
}

fn bench_radix_digit_width(c: &mut Criterion) {
    // Ablation: digit width trades passes (d/w) for scans per pass
    // (2^w) — the CM's classic tuning knob.
    use scan_algorithms::sort::radix::split_radix_sort_digits;
    let mut g = c.benchmark_group("sort/radix_digit_width");
    g.sample_size(10);
    let keys = random_keys(1 << 16, 16, 6);
    for w in [1u32, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(w), &keys, |b, k| {
            b.iter(|| split_radix_sort_digits(k, 16, w))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sorts, bench_radix_width, bench_radix_digit_width);
criterion_main!(benches);
