//! Wall-clock graph algorithms: the random-mate MST and connected
//! components against Kruskal / union-find.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scan_algorithms::graph::reference::{components_reference, kruskal};
use scan_algorithms::graph::{connected_components, minimum_spanning_tree, SegGraph};
use scan_bench::connected_graph;

fn bench_mst(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph/mst");
    g.sample_size(10);
    for n in [512usize, 2048] {
        let edges = connected_graph(n, 4 * n, 10);
        g.bench_with_input(BenchmarkId::new("random_mate", n), &edges, |b, e| {
            b.iter(|| minimum_spanning_tree(n, e, 11))
        });
        g.bench_with_input(BenchmarkId::new("kruskal", n), &edges, |b, e| {
            b.iter(|| kruskal(n, e))
        });
    }
    g.finish();
}

fn bench_components(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph/components");
    g.sample_size(10);
    let n = 2048;
    let edges = connected_graph(n, 2 * n, 12);
    g.bench_function("random_mate", |b| {
        b.iter(|| connected_components(n, &edges, 13))
    });
    g.bench_function("union_find", |b| {
        b.iter(|| components_reference(n, &edges))
    });
    g.finish();
}

fn bench_build_and_neighbor_reduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph/representation");
    g.sample_size(10);
    let n = 4096;
    let edges = connected_graph(n, 4 * n, 14);
    g.bench_function("build_segmented", |b| {
        b.iter(|| SegGraph::from_edges(n, &edges))
    });
    let graph = SegGraph::from_edges(n, &edges);
    let vals: Vec<u64> = (0..n as u64).collect();
    g.bench_function("neighbor_sum", |b| {
        b.iter(|| {
            let mut ctx = scan_pram::Ctx::new(scan_pram::Model::Scan);
            graph.neighbor_reduce::<scan_core::op::Sum, _>(&mut ctx, &vals)
        })
    });
    g.finish();
}

fn bench_biconnected(c: &mut Criterion) {
    use scan_algorithms::graph::biconnected::biconnected_components;
    use scan_algorithms::graph::reference::biconnected_reference;
    let mut g = c.benchmark_group("graph/biconnected");
    g.sample_size(10);
    let n = 512;
    let edges = connected_graph(n, 2 * n, 17);
    g.bench_function("tarjan_vishkin", |b| {
        b.iter(|| biconnected_components(n, &edges, 19))
    });
    g.bench_function("sequential_tarjan", |b| {
        b.iter(|| biconnected_reference(n, &edges))
    });
    g.finish();
}

fn bench_spmv(c: &mut Criterion) {
    use scan_algorithms::matrix_sparse::SparseMatrix;
    let mut g = c.benchmark_group("graph/spmv");
    g.sample_size(10);
    let n = 10_000;
    let triplets: Vec<(usize, usize, f64)> = (0..8 * n)
        .map(|k| ((k * 31) % n, (k * 17) % n, 1.5))
        .collect();
    let a = SparseMatrix::from_triplets(n, n, &triplets);
    let x = vec![1.0; n];
    g.bench_function("segmented_sums", |b| b.iter(|| a.spmv(&x)));
    g.bench_function("row_loop_reference", |b| b.iter(|| a.spmv_reference(&x)));
    g.finish();
}

criterion_group!(
    benches,
    bench_mst,
    bench_components,
    bench_build_and_neighbor_reduce,
    bench_biconnected,
    bench_spmv
);
criterion_main!(benches);
