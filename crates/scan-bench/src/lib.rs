//! Shared workload generators and table formatting for the
//! reproduction harness. Each `table*` binary regenerates one table of
//! the paper; the Criterion benches measure wall clock on the rayon
//! kernels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A deterministic splitmix64-based generator (no external RNG needed
/// in the harness path).
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeded generator. Splitmix64 accepts any 64-bit seed (including
    /// 0), so all bits of `seed` select a distinct stream — an earlier
    /// revision forced the low bit on, silently aliasing seed `2k` with
    /// `2k+1`.
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// Next raw 64-bit value.
    // Deliberately named like `Iterator::next`; the generator is
    // infinite, so the iterator protocol's `Option` would only add noise.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value below `bound`, without modulo bias.
    ///
    /// Lemire's multiply-shift method with a rejection loop: accept the
    /// high word of `x * bound` unless the low word falls in the
    /// aliased region `[0, 2^64 mod bound)`, in which case redraw.
    /// The expected number of redraws is below one for every `bound`.
    pub fn below(&mut self, bound: u64) -> u64 {
        let bound = bound.max(1);
        // 2^64 mod bound, computed without u128 division by 2^64.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next();
            let wide = u128::from(x) * u128::from(bound);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }
}

/// Random keys bounded by `2^bits`.
pub fn random_keys(n: usize, bits: u32, seed: u64) -> Vec<u64> {
    let mut rng = Rng::new(seed);
    let mask = if bits >= 64 { u64::MAX } else { (1 << bits) - 1 };
    (0..n).map(|_| rng.next() & mask).collect()
}

/// A random multigraph with `m` candidate edges (self-loops skipped).
pub fn random_graph(n: usize, m: usize, seed: u64) -> Vec<(usize, usize, u64)> {
    let mut rng = Rng::new(seed);
    (0..m)
        .filter_map(|_| {
            let u = rng.below(n as u64) as usize;
            let v = rng.below(n as u64) as usize;
            (u != v).then(|| (u, v, rng.below(1 << 20)))
        })
        .collect()
}

/// A connected random graph: a random spanning path plus extra edges.
pub fn connected_graph(n: usize, extra: usize, seed: u64) -> Vec<(usize, usize, u64)> {
    let mut rng = Rng::new(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        perm.swap(i, j);
    }
    let mut edges: Vec<(usize, usize, u64)> = perm
        .windows(2)
        .map(|w| (w[0], w[1], rng.below(1 << 20)))
        .collect();
    edges.extend(random_graph(n, extra, seed ^ 0xabcdef));
    edges
}

/// Random sorted vector.
pub fn sorted_keys(n: usize, bits: u32, seed: u64) -> Vec<u64> {
    let mut v = random_keys(n, bits, seed);
    v.sort_unstable();
    v
}

/// Random points in a square of the given half-extent.
pub fn random_points(n: usize, extent: i64, seed: u64) -> Vec<(i64, i64)> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|_| {
            (
                (rng.next() as i64).rem_euclid(2 * extent) - extent,
                (rng.next() as i64).rem_euclid(2 * extent) - extent,
            )
        })
        .collect()
}

/// Print a row of right-aligned cells under the given widths.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let row: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}"))
        .collect();
    println!("{}", row.join("  "));
}

/// Print a rule matching the widths.
pub fn print_rule(widths: &[usize]) {
    let row: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    println!("{}", row.join("  "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(5);
        let mut b = Rng::new(5);
        for _ in 0..10 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn adjacent_seeds_give_distinct_streams() {
        // The old constructor OR'd the low seed bit on, aliasing 2 and 3.
        let mut a = Rng::new(2);
        let mut b = Rng::new(3);
        assert_ne!(
            (0..4).map(|_| a.next()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = Rng::new(42);
        for bound in [1u64, 2, 3, 7, 1000, u64::MAX / 2 + 1] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
        // bound=3 splits 2^64 unevenly for a modulo reduction; the
        // rejection sampler must keep all three residues near 1/3.
        let mut counts = [0u64; 3];
        for _ in 0..30_000 {
            counts[rng.below(3) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed counts: {counts:?}");
        }
        // Degenerate bound: stay total rather than divide by zero.
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn workloads_have_requested_shapes() {
        assert_eq!(random_keys(100, 8, 1).len(), 100);
        assert!(random_keys(100, 8, 1).iter().all(|&k| k < 256));
        let s = sorted_keys(50, 16, 2);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
        let g = connected_graph(20, 10, 3);
        assert!(g.len() >= 19);
        let p = random_points(30, 100, 4);
        assert!(p.iter().all(|&(x, y)| x.abs() <= 100 && y.abs() <= 100));
    }
}
