//! Shared workload generators and table formatting for the
//! reproduction harness. Each `table*` binary regenerates one table of
//! the paper; the Criterion benches measure wall clock on the rayon
//! kernels.

#![warn(missing_docs)]

/// A deterministic splitmix64-based generator (no external RNG needed
/// in the harness path).
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    /// Next raw 64-bit value.
    // Deliberately named like `Iterator::next`; the generator is
    // infinite, so the iterator protocol's `Option` would only add noise.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value below `bound`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// Random keys bounded by `2^bits`.
pub fn random_keys(n: usize, bits: u32, seed: u64) -> Vec<u64> {
    let mut rng = Rng::new(seed);
    let mask = if bits >= 64 { u64::MAX } else { (1 << bits) - 1 };
    (0..n).map(|_| rng.next() & mask).collect()
}

/// A random multigraph with `m` candidate edges (self-loops skipped).
pub fn random_graph(n: usize, m: usize, seed: u64) -> Vec<(usize, usize, u64)> {
    let mut rng = Rng::new(seed);
    (0..m)
        .filter_map(|_| {
            let u = (rng.next() as usize) % n;
            let v = (rng.next() as usize) % n;
            (u != v).then(|| (u, v, rng.below(1 << 20)))
        })
        .collect()
}

/// A connected random graph: a random spanning path plus extra edges.
pub fn connected_graph(n: usize, extra: usize, seed: u64) -> Vec<(usize, usize, u64)> {
    let mut rng = Rng::new(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (rng.next() as usize) % (i + 1);
        perm.swap(i, j);
    }
    let mut edges: Vec<(usize, usize, u64)> = perm
        .windows(2)
        .map(|w| (w[0], w[1], rng.below(1 << 20)))
        .collect();
    edges.extend(random_graph(n, extra, seed ^ 0xabcdef));
    edges
}

/// Random sorted vector.
pub fn sorted_keys(n: usize, bits: u32, seed: u64) -> Vec<u64> {
    let mut v = random_keys(n, bits, seed);
    v.sort_unstable();
    v
}

/// Random points in a square of the given half-extent.
pub fn random_points(n: usize, extent: i64, seed: u64) -> Vec<(i64, i64)> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|_| {
            (
                (rng.next() as i64).rem_euclid(2 * extent) - extent,
                (rng.next() as i64).rem_euclid(2 * extent) - extent,
            )
        })
        .collect()
}

/// Print a row of right-aligned cells under the given widths.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let row: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}"))
        .collect();
    println!("{}", row.join("  "));
}

/// Print a rule matching the widths.
pub fn print_rule(widths: &[usize]) {
    let row: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    println!("{}", row.join("  "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(5);
        let mut b = Rng::new(5);
        for _ in 0..10 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn workloads_have_requested_shapes() {
        assert_eq!(random_keys(100, 8, 1).len(), 100);
        assert!(random_keys(100, 8, 1).iter().all(|&k| k < 256));
        let s = sorted_keys(50, 16, 2);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
        let g = connected_graph(20, 10, 3);
        assert!(g.len() >= 19);
        let p = random_points(30, 100, 4);
        assert!(p.iter().all(|&(x, y)| x.abs() <= 100 && y.abs() <= 100));
    }
}
