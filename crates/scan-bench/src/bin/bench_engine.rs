//! Old-versus-new execution engine benchmark.
//!
//! Times the headline kernels under the seed engine's schedule
//! (fresh `thread::scope` spawns per call, unfused kernels with
//! materialized intermediate vectors) against the current engine
//! (persistent worker pool, fused map→scan kernels), across sizes
//! `2^14 .. 2^24`, and writes the medians to `BENCH_engine.json` at
//! the repository root.
//!
//! Every timed pair is also checked for equality — the two engines
//! must agree bit-for-bit on these integer kernels, so a reported
//! speedup can never hide a wrong answer.
//!
//! Usage:
//!   cargo run --release -p scan-bench --bin bench_engine
//!   cargo run --release -p scan-bench --bin bench_engine -- --smoke
//!   cargo run --release -p scan-bench --bin bench_engine -- --out path.json

use scan_algorithms::sort::radix::split_radix_sort;
use scan_bench::random_keys;
use scan_core::ops::{enumerate, pack};
use scan_core::parallel::{self, Schedule};
use scan_core::segmented::{seg_scan, Segments};
use scan_core::{scan, Max, Sum};
use std::time::Instant;

/// One kernel measurement: median ns per call for both engines.
struct Row {
    kernel: &'static str,
    n: usize,
    old_ns: u128,
    new_ns: u128,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.old_ns as f64 / self.new_ns.max(1) as f64
    }
}

/// Median of `k` timed runs of `f` (ns), after `warmup` untimed runs.
fn time_median<R>(warmup: usize, k: usize, mut f: impl FnMut() -> R) -> u128 {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples: Vec<u128> = (0..k)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Repetitions scaled down with input size so each cell costs roughly
/// the same wall clock.
fn reps(n: usize) -> usize {
    ((1usize << 26) / n.max(1)).clamp(3, 25)
}

/// Run `f` with the process-wide default schedule set to `sched`.
fn under<R>(sched: Schedule, f: impl FnOnce() -> R) -> R {
    parallel::set_default_schedule(sched);
    let r = f();
    parallel::set_default_schedule(Schedule::Pooled);
    r
}

/// Seed-style unfused exclusive seg scan: materialize the (value, flag)
/// pair vector, inclusive-scan it, then a separate shift pass.
fn old_seg_plus_scan(a: &[u64], segs: &Segments) -> Vec<u64> {
    let pairs: Vec<(u64, bool)> = (0..a.len()).map(|i| (a[i], segs.is_head(i))).collect();
    let inc = parallel::inclusive_scan_by_sched(
        Schedule::Spawn,
        &pairs,
        (0u64, false),
        |(v1, f1), (v2, f2)| {
            if f2 {
                (v2, true)
            } else {
                (v1.wrapping_add(v2), f1)
            }
        },
    );
    (0..a.len())
        .map(|i| if segs.is_head(i) { 0 } else { inc[i - 1].0 })
        .collect()
}

/// Seed-style unfused pack: 0/1 vector, scan, reduce, scatter.
fn old_pack(a: &[u64], keep: &[bool]) -> Vec<u64> {
    let ones: Vec<usize> = parallel::map_by_sched(Schedule::Spawn, keep, usize::from);
    let dest = parallel::exclusive_scan_by_sched(Schedule::Spawn, &ones, 0, |x, y| x + y);
    let total = parallel::reduce_by_sched(Schedule::Spawn, &ones, 0, |x, y| x + y);
    let mut out = vec![0u64; total];
    for i in 0..a.len() {
        if keep[i] {
            out[dest[i]] = a[i];
        }
    }
    out
}

fn bench_sizes(smoke: bool) -> Vec<usize> {
    if smoke {
        vec![1 << 10, (1 << 14) + 1]
    } else {
        vec![1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24]
    }
}

fn sort_sizes(smoke: bool) -> Vec<usize> {
    if smoke {
        vec![1 << 10]
    } else {
        vec![1 << 14, 1 << 16, 1 << 18, 1 << 20]
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| {
            format!("{}/../../BENCH_engine.json", env!("CARGO_MANIFEST_DIR"))
        });

    let threads = scan_core::pool::global().threads();
    println!("engine bench: pool width {threads}, smoke={smoke}");

    let mut rows: Vec<Row> = Vec::new();
    let (w, k_override) = if smoke { (0, Some(1)) } else { (2, None) };

    for n in bench_sizes(smoke) {
        let k = k_override.unwrap_or_else(|| reps(n));
        let a = random_keys(n, 32, 0xBE7C4);
        let flags: Vec<bool> = a.iter().map(|&x| x % 64 == 0).collect();
        let segs = Segments::from_flags(flags.clone());

        // +-scan: identical kernel, old schedule vs pooled schedule.
        let old = time_median(w, k, || {
            parallel::exclusive_scan_by_sched(Schedule::Spawn, &a, 0u64, u64::wrapping_add)
        });
        let new = time_median(w, k, || scan::<Sum, _>(&a));
        assert_eq!(
            parallel::exclusive_scan_by_sched(Schedule::Spawn, &a, 0u64, u64::wrapping_add),
            scan::<Sum, _>(&a),
            "+-scan engines disagree at n={n}"
        );
        rows.push(Row { kernel: "+-scan", n, old_ns: old, new_ns: new });

        // max-scan.
        let old = time_median(w, k, || {
            parallel::exclusive_scan_by_sched(Schedule::Spawn, &a, 0u64, u64::max)
        });
        let new = time_median(w, k, || scan::<Max, _>(&a));
        rows.push(Row { kernel: "max-scan", n, old_ns: old, new_ns: new });

        // Segmented +-scan: unfused pair materialization + shift pass
        // vs the fused load/emit kernel.
        let old = time_median(w, k, || old_seg_plus_scan(&a, &segs));
        let new = time_median(w, k, || seg_scan::<Sum, _>(&a, &segs));
        assert_eq!(
            old_seg_plus_scan(&a, &segs),
            seg_scan::<Sum, _>(&a, &segs),
            "seg-scan engines disagree at n={n}"
        );
        rows.push(Row { kernel: "seg-+-scan", n, old_ns: old, new_ns: new });

        // enumerate: 0/1 vector + scan vs fused map→scan.
        let old = time_median(w, k, || {
            let ones: Vec<usize> = parallel::map_by_sched(Schedule::Spawn, &flags, usize::from);
            parallel::exclusive_scan_by_sched(Schedule::Spawn, &ones, 0, |x, y| x + y)
        });
        let new = time_median(w, k, || enumerate(&flags));
        assert_eq!(
            {
                let ones: Vec<usize> =
                    parallel::map_by_sched(Schedule::Spawn, &flags, usize::from);
                parallel::exclusive_scan_by_sched(Schedule::Spawn, &ones, 0, |x, y| x + y)
            },
            enumerate(&flags),
            "enumerate engines disagree at n={n}"
        );
        rows.push(Row { kernel: "enumerate", n, old_ns: old, new_ns: new });

        // pack: unfused scan+reduce vs fused scan-with-total.
        let old = time_median(w, k, || old_pack(&a, &flags));
        let new = time_median(w, k, || pack(&a, &flags));
        assert_eq!(old_pack(&a, &flags), pack(&a, &flags), "pack engines disagree at n={n}");
        rows.push(Row { kernel: "pack", n, old_ns: old, new_ns: new });
    }

    // A whole algorithm built from the primitives: split radix sort on
    // 16-bit keys, old schedule vs pooled schedule end to end.
    for n in sort_sizes(smoke) {
        let k = k_override.unwrap_or_else(|| reps(n * 8));
        let keys = random_keys(n, 16, 0x5027);
        let old = time_median(w, k, || under(Schedule::Spawn, || split_radix_sort(&keys, 16)));
        let new = time_median(w, k, || split_radix_sort(&keys, 16));
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(split_radix_sort(&keys, 16), expect, "radix sort wrong at n={n}");
        rows.push(Row { kernel: "split_radix_sort", n, old_ns: old, new_ns: new });
    }

    println!(
        "{:>18} {:>10} {:>14} {:>14} {:>9}",
        "kernel", "n", "old ns", "new ns", "speedup"
    );
    for r in &rows {
        println!(
            "{:>18} {:>10} {:>14} {:>14} {:>8.2}x",
            r.kernel,
            r.n,
            r.old_ns,
            r.new_ns,
            r.speedup()
        );
    }

    if smoke {
        println!("smoke mode: correctness verified, no JSON written");
        return;
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"n\": {}, \"old_ns\": {}, \"new_ns\": {}, \"speedup\": {:.3}}}{}\n",
            r.kernel,
            r.n,
            r.old_ns,
            r.new_ns,
            r.speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_engine.json");
    println!("wrote {out_path}");
}
