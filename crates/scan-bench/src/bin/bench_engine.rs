//! Old-versus-new execution engine benchmark.
//!
//! Times the headline kernels under the seed engine's schedule
//! (fresh `thread::scope` spawns per call, unfused kernels with
//! materialized intermediate vectors) against the current engine
//! (persistent worker pool, fused map→scan kernels), across sizes
//! `2^14 .. 2^24`, and writes the medians to `BENCH_engine.json` at
//! the repository root.
//!
//! Every timed pair is also checked for equality — the two engines
//! must agree bit-for-bit on these integer kernels, so a reported
//! speedup can never hide a wrong answer.
//!
//! The sort section times three things per size: the legacy 1-bit
//! engine sort under both schedules, the fused `multi_split` sort
//! against this run's legacy sort (so its speedup column is the
//! fused-vs-legacy ratio on this machine), and a digit-width sweep
//! (w ∈ {1, 4, 8}) of the unfused enumerate-per-bucket schedule vs the
//! fused kernel. Two roofline rows per size bound the scans from
//! below: `memcpy` (reused destination — the raw bandwidth floor) and
//! `memcpy(fresh)` (`a.to_vec()` — the floor for a kernel that must
//! allocate and return a fresh `Vec`, which at large n is dominated
//! by first-touch page faults, not the copy). A `+-scan(lookback)`
//! row times the single-pass decoupled-
//! lookback schedule against the two-pass blocked engine — with
//! bit-for-bit equality between the two schedules asserted (on `+`,
//! `max` and the segmented operator) before any timing counts, in
//! `--smoke` mode too.
//!
//! The JSON records the actual pool width, the SIMD ISA the dispatcher
//! selected, and a derived GB/s column for the bandwidth-bound rows
//! (16 bytes of traffic per element: one streamed read, one streamed
//! write) so the roofline gap is readable straight off the file.
//!
//! Usage:
//!   cargo run --release -p scan-bench --bin bench_engine
//!   cargo run --release -p scan-bench --bin bench_engine -- --smoke
//!   cargo run --release -p scan-bench --bin bench_engine -- --out path.json
//!   cargo run --release -p scan-bench --bin bench_engine -- --smoke --chaos
//!
//! `--chaos` appends a resilience smoke section: the fallible kernels
//! run under seeded delay/panic injection (see `scan_fault::ChaosPlan`)
//! with per-scenario timings, equality checks on every `Ok`, and a
//! watchdog proving nothing hangs.

use scan_algorithms::sort::fused_radix::{fused_radix_sort, fused_radix_sort_digits};
use scan_algorithms::sort::radix::{split_radix_sort, split_radix_sort_digits};
use scan_bench::random_keys;
use scan_core::ops::{enumerate, pack};
use scan_core::parallel::{self, Schedule};
use scan_core::segmented::{seg_scan, Segments};
use scan_core::{scan, Max, Sum};
use std::time::Instant;

/// One kernel measurement: median ns per call for both engines.
struct Row {
    kernel: &'static str,
    n: usize,
    old_ns: u128,
    new_ns: u128,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.old_ns as f64 / self.new_ns.max(1) as f64
    }

    /// Derived bandwidth of the `new` engine for the rows that stream
    /// one read + one write per 8-byte element; `None` for kernels
    /// whose traffic is not that simple shape.
    fn gbps(&self) -> Option<f64> {
        matches!(
            self.kernel,
            "memcpy" | "memcpy(fresh)" | "+-scan" | "max-scan" | "+-scan(lookback)"
        )
        .then(|| 16.0 * self.n as f64 / self.new_ns.max(1) as f64)
    }
}

/// Median of `k` timed runs of `f` (ns), after `warmup` untimed runs.
fn time_median<R>(warmup: usize, k: usize, mut f: impl FnMut() -> R) -> u128 {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples: Vec<u128> = (0..k)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Repetitions scaled down with input size so each cell costs roughly
/// the same wall clock.
fn reps(n: usize) -> usize {
    ((1usize << 26) / n.max(1)).clamp(3, 25)
}

/// Run `f` with the process-wide default schedule set to `sched`.
fn under<R>(sched: Schedule, f: impl FnOnce() -> R) -> R {
    parallel::set_default_schedule(sched);
    let r = f();
    parallel::set_default_schedule(Schedule::Pooled);
    r
}

/// Seed-style unfused exclusive seg scan: materialize the (value, flag)
/// pair vector, inclusive-scan it, then a separate shift pass.
fn old_seg_plus_scan(a: &[u64], segs: &Segments) -> Vec<u64> {
    let pairs: Vec<(u64, bool)> = (0..a.len()).map(|i| (a[i], segs.is_head(i))).collect();
    let inc = parallel::inclusive_scan_by_sched(
        Schedule::Spawn,
        &pairs,
        (0u64, false),
        |(v1, f1), (v2, f2)| {
            if f2 {
                (v2, true)
            } else {
                (v1.wrapping_add(v2), f1)
            }
        },
    );
    (0..a.len())
        .map(|i| if segs.is_head(i) { 0 } else { inc[i - 1].0 })
        .collect()
}

/// Seed-style unfused pack: 0/1 vector, scan, reduce, scatter.
fn old_pack(a: &[u64], keep: &[bool]) -> Vec<u64> {
    let ones: Vec<usize> = parallel::map_by_sched(Schedule::Spawn, keep, usize::from);
    let dest = parallel::exclusive_scan_by_sched(Schedule::Spawn, &ones, 0, |x, y| x + y);
    let total = parallel::reduce_by_sched(Schedule::Spawn, &ones, 0, |x, y| x + y);
    let mut out = vec![0u64; total];
    for i in 0..a.len() {
        if keep[i] {
            out[dest[i]] = a[i];
        }
    }
    out
}

fn bench_sizes(smoke: bool) -> Vec<usize> {
    if smoke {
        vec![1 << 10, (1 << 14) + 1]
    } else {
        vec![1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24]
    }
}

fn sort_sizes(smoke: bool) -> Vec<usize> {
    if smoke {
        vec![1 << 10]
    } else {
        vec![1 << 14, 1 << 16, 1 << 18, 1 << 20]
    }
}

/// The `--chaos` resilience smoke: seeded injection of delays and
/// panics into the fallible kernels. Each scenario is timed, watched
/// by a wall-clock watchdog (no hang), and every `Ok` is checked for
/// exact equality with the reference scan.
fn run_chaos(smoke: bool) {
    use scan_core::{ExecError, ScanDeadline};
    use scan_fault::{chaos_op, ChaosPlan};
    use std::sync::mpsc;
    use std::time::Duration;

    let sizes: Vec<usize> = if smoke {
        vec![(1 << 14) + 1]
    } else {
        vec![1 << 16, 1 << 18]
    };
    println!("\nchaos smoke: seeded delay/panic injection over the try_* kernels");
    println!("(injected worker panics print their unwind messages below — that is the scenario, not a failure)");
    println!(
        "{:>10} {:>16} {:>14} {:>20}",
        "n", "scenario", "ns", "outcome"
    );
    for n in sizes {
        let a = random_keys(n, 32, 0xC4A05);
        let expect = scan::<Sum, _>(&a);
        let cases: Vec<(&str, ChaosPlan, Option<u64>)> = vec![
            ("quiet", ChaosPlan::quiet(1), None),
            (
                "sparse-delay",
                ChaosPlan {
                    delay_every: 4096,
                    delay_us: 50,
                    ..ChaosPlan::quiet(2)
                },
                None,
            ),
            (
                "delay+deadline",
                ChaosPlan {
                    delay_every: 64,
                    delay_us: 100,
                    ..ChaosPlan::quiet(3)
                },
                Some(2),
            ),
            (
                "worker-panic",
                ChaosPlan {
                    panic_every: 5000,
                    ..ChaosPlan::quiet(4)
                },
                None,
            ),
        ];
        for (name, plan, deadline_ms) in cases {
            let (tx, rx) = mpsc::channel();
            let a2 = a.clone();
            let handle = std::thread::spawn(move || {
                let body = || {
                    parallel::try_exclusive_scan_by(&a2, 0u64, chaos_op(plan, u64::wrapping_add))
                };
                let t = Instant::now();
                let got = match deadline_ms {
                    Some(ms) => {
                        let d = ScanDeadline::after(Duration::from_millis(ms));
                        scan_core::deadline::with_deadline(&d, body)
                    }
                    None => body(),
                };
                let _ = tx.send((t.elapsed().as_nanos(), got));
            });
            let (ns, got) = rx
                .recv_timeout(Duration::from_secs(60))
                .expect("chaos scenario hung");
            let _ = handle.join();
            let outcome = match &got {
                Ok(out) => {
                    assert_eq!(out, &expect, "chaos Ok disagrees at n={n} ({name})");
                    "ok (verified)".to_string()
                }
                Err(e) => e.to_string(),
            };
            match name {
                "quiet" | "sparse-delay" => {
                    assert!(got.is_ok(), "{name} must succeed, got {got:?}")
                }
                "delay+deadline" => assert_eq!(
                    got.as_ref().err(),
                    Some(&ExecError::DeadlineExceeded),
                    "delays past the deadline must surface as typed expiry"
                ),
                _ => assert!(
                    matches!(got, Err(ExecError::WorkerLost { .. })),
                    "an injected panic must surface as WorkerLost, got {got:?}"
                ),
            }
            println!("{n:>10} {name:>16} {ns:>14} {outcome:>20}");
        }
        // The pool survived every scenario: a clean pooled scan still
        // agrees with the reference.
        assert_eq!(
            scan::<Sum, _>(&a),
            expect,
            "pool unusable after chaos at n={n}"
        );
    }
    println!(
        "chaos smoke passed: every scenario terminated with a verified result or a typed error"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let chaos = args.iter().any(|a| a == "--chaos");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| format!("{}/../../BENCH_engine.json", env!("CARGO_MANIFEST_DIR")));

    let threads = scan_core::pool::global().threads();
    let simd = scan_core::simd::active_isa().name();
    println!("engine bench: pool width {threads}, simd {simd}, smoke={smoke}");

    let mut rows: Vec<Row> = Vec::new();
    let (w, k_override) = if smoke { (0, Some(1)) } else { (2, None) };

    for n in bench_sizes(smoke) {
        let k = k_override.unwrap_or_else(|| reps(n));
        let a = random_keys(n, 32, 0xBE7C4);
        let flags: Vec<bool> = a.iter().map(|&x| x % 64 == 0).collect();
        let segs = Segments::from_flags(flags.clone());

        // +-scan: identical kernel, old schedule vs pooled schedule.
        let old = time_median(w, k, || {
            parallel::exclusive_scan_by_sched(Schedule::Spawn, &a, 0u64, u64::wrapping_add)
        });
        let new = time_median(w, k, || scan::<Sum, _>(&a));
        assert_eq!(
            parallel::exclusive_scan_by_sched(Schedule::Spawn, &a, 0u64, u64::wrapping_add),
            scan::<Sum, _>(&a),
            "+-scan engines disagree at n={n}"
        );
        rows.push(Row {
            kernel: "+-scan",
            n,
            old_ns: old,
            new_ns: new,
        });

        // max-scan.
        let old = time_median(w, k, || {
            parallel::exclusive_scan_by_sched(Schedule::Spawn, &a, 0u64, u64::max)
        });
        let new = time_median(w, k, || scan::<Max, _>(&a));
        rows.push(Row {
            kernel: "max-scan",
            n,
            old_ns: old,
            new_ns: new,
        });

        // Segmented +-scan: unfused pair materialization + shift pass
        // vs the fused load/emit kernel.
        let old = time_median(w, k, || old_seg_plus_scan(&a, &segs));
        let new = time_median(w, k, || seg_scan::<Sum, _>(&a, &segs));
        assert_eq!(
            old_seg_plus_scan(&a, &segs),
            seg_scan::<Sum, _>(&a, &segs),
            "seg-scan engines disagree at n={n}"
        );
        rows.push(Row {
            kernel: "seg-+-scan",
            n,
            old_ns: old,
            new_ns: new,
        });

        // enumerate: 0/1 vector + scan vs fused map→scan.
        let old = time_median(w, k, || {
            let ones: Vec<usize> = parallel::map_by_sched(Schedule::Spawn, &flags, usize::from);
            parallel::exclusive_scan_by_sched(Schedule::Spawn, &ones, 0, |x, y| x + y)
        });
        let new = time_median(w, k, || enumerate(&flags));
        assert_eq!(
            {
                let ones: Vec<usize> = parallel::map_by_sched(Schedule::Spawn, &flags, usize::from);
                parallel::exclusive_scan_by_sched(Schedule::Spawn, &ones, 0, |x, y| x + y)
            },
            enumerate(&flags),
            "enumerate engines disagree at n={n}"
        );
        rows.push(Row {
            kernel: "enumerate",
            n,
            old_ns: old,
            new_ns: new,
        });

        // pack: unfused scan+reduce vs fused scan-with-total.
        let old = time_median(w, k, || old_pack(&a, &flags));
        let new = time_median(w, k, || pack(&a, &flags));
        assert_eq!(
            old_pack(&a, &flags),
            pack(&a, &flags),
            "pack engines disagree at n={n}"
        );
        rows.push(Row {
            kernel: "pack",
            n,
            old_ns: old,
            new_ns: new,
        });

        // Single-pass decoupled lookback vs the two-pass blocked
        // engine: the same typed kernel with the process default
        // schedule swapped. The schedules must agree bit-for-bit on
        // `+`, `max` and the segmented operator — asserted on every
        // size, in --smoke mode too, before any timing counts.
        let blocked = scan::<Sum, _>(&a);
        assert_eq!(
            under(Schedule::Lookback, || scan::<Sum, _>(&a)),
            blocked,
            "lookback +-scan disagrees with blocked at n={n}"
        );
        assert_eq!(
            under(Schedule::Lookback, || scan::<Max, _>(&a)),
            scan::<Max, _>(&a),
            "lookback max-scan disagrees with blocked at n={n}"
        );
        assert_eq!(
            under(Schedule::Lookback, || seg_scan::<Sum, _>(&a, &segs)),
            seg_scan::<Sum, _>(&a, &segs),
            "lookback seg-scan disagrees with blocked at n={n}"
        );
        let old = time_median(w, k, || scan::<Sum, _>(&a));
        let new = time_median(w, k, || under(Schedule::Lookback, || scan::<Sum, _>(&a)));
        rows.push(Row {
            kernel: "+-scan(lookback)",
            n,
            old_ns: old,
            new_ns: new,
        });

        // Plain memcpy roofline: the memory-bandwidth floor any
        // one-pass kernel is chasing (old == new by construction).
        let mut dstv = vec![0u64; n];
        let t = time_median(w, k, || {
            dstv.copy_from_slice(&a);
            std::hint::black_box(dstv[n - 1])
        });
        rows.push(Row {
            kernel: "memcpy",
            n,
            old_ns: t,
            new_ns: t,
        });

        // The same floor with the kernels' allocation behavior: every
        // scan call returns a freshly allocated Vec, so the floor it
        // can actually reach is "allocate and produce a copy" — which
        // at large n is dominated by the page faults of first touch,
        // not the copy loop. This is the apples-to-apples roofline.
        let t = time_median(w, k, || a.to_vec());
        rows.push(Row {
            kernel: "memcpy(fresh)",
            n,
            old_ns: t,
            new_ns: t,
        });
    }

    // A whole algorithm built from the primitives: split radix sort on
    // 16-bit keys, old schedule vs pooled schedule end to end.
    for n in sort_sizes(smoke) {
        let k = k_override.unwrap_or_else(|| reps(n * 8));
        let keys = random_keys(n, 16, 0x5027);
        let mut expect = keys.clone();
        expect.sort_unstable();
        let old = time_median(w, k, || {
            under(Schedule::Spawn, || split_radix_sort(&keys, 16))
        });
        let legacy_ns = time_median(w, k, || split_radix_sort(&keys, 16));
        assert_eq!(
            split_radix_sort(&keys, 16),
            expect,
            "radix sort wrong at n={n}"
        );
        rows.push(Row {
            kernel: "split_radix_sort",
            n,
            old_ns: old,
            new_ns: legacy_ns,
        });

        // The fused multi_split sort (8-bit digits): old = this run's
        // legacy engine sort, new = fused — so the row's speedup IS the
        // fused-vs-legacy ratio on this machine. Equality against the
        // legacy path (and std) is asserted before the timing counts.
        let fused = fused_radix_sort(&keys, 16);
        assert_eq!(
            fused,
            split_radix_sort(&keys, 16),
            "fused sort disagrees with the legacy path at n={n}"
        );
        assert_eq!(fused, expect, "fused sort wrong at n={n}");
        let fused_ns = time_median(w, k, || fused_radix_sort(&keys, 16));
        rows.push(Row {
            kernel: "fused_radix_sort",
            n,
            old_ns: legacy_ns,
            new_ns: fused_ns,
        });

        // Digit-width sweep: the unfused enumerate-per-bucket schedule
        // vs the fused kernel at the same width.
        for (dw, name) in [
            (1u32, "radix_digits(w=1)"),
            (4, "radix_digits(w=4)"),
            (8, "radix_digits(w=8)"),
        ] {
            assert_eq!(
                fused_radix_sort_digits(&keys, 16, dw),
                split_radix_sort_digits(&keys, 16, dw),
                "fused/unfused disagree at n={n} w={dw}"
            );
            let old = time_median(w, k, || split_radix_sort_digits(&keys, 16, dw));
            let new = time_median(w, k, || fused_radix_sort_digits(&keys, 16, dw));
            rows.push(Row {
                kernel: name,
                n,
                old_ns: old,
                new_ns: new,
            });
        }
    }

    // Streaming and sharded execution against the in-RAM kernel on
    // the same data: `old` is one whole-input in-RAM scan, `new` is
    // the chunked constant-memory stream or the sharded executor at
    // 1/2/4 shards. Bit-equality is asserted on every configuration
    // before any timing counts.
    {
        use scan_core::{ScanStream, SliceSource};
        use scan_shard::{ScanKind as ShardKind, ShardConfig, ShardedExecutor};
        use std::sync::Arc;

        let (stream_n, chunk_len) = if smoke {
            (1usize << 16, 1usize << 12)
        } else {
            (1usize << 28, 1usize << 20)
        };
        let k = k_override.unwrap_or(3);
        let data = Arc::new(random_keys(stream_n, 32, 0x57BEA));
        let want = scan::<Sum, _>(&data);
        let base_ns = time_median(w, k, || scan::<Sum, _>(&data));

        // Equality outside the timed region: the stream's chunks
        // concatenate to the in-RAM scan.
        let mut got = Vec::with_capacity(stream_n);
        let mut s = ScanStream::<Sum, u64, _>::exclusive(SliceSource::new(&data, chunk_len));
        s.process(|c| got.extend_from_slice(c))
            .expect("stream failed");
        assert_eq!(got, want, "streamed scan disagrees with in-RAM");
        drop(got);

        let stream_ns = time_median(w, k, || {
            let mut s =
                ScanStream::<Sum, u64, _>::exclusive(SliceSource::new(&data, chunk_len));
            s.process(|c| {
                std::hint::black_box(c.len());
            })
            .expect("stream failed")
        });
        rows.push(Row {
            kernel: "+-scan(stream)",
            n: stream_n,
            old_ns: base_ns,
            new_ns: stream_ns,
        });

        for shards in [1usize, 2, 4] {
            // Generous watchdog: this is a perf harness, not a loss
            // test — on a loaded 1-core runner a 2^28 shard job can
            // overrun the default 5 s watchdog and register a
            // spurious (recovered) loss, failing the losses==0 gate.
            let ex = ShardedExecutor::new(ShardConfig {
                shards,
                watchdog: std::time::Duration::from_secs(300),
                ..ShardConfig::default()
            });
            assert_eq!(
                ex.scan_arc(ShardKind::Sum, &data).expect("sharded scan failed"),
                want,
                "sharded scan disagrees with in-RAM at {shards} shards"
            );
            let h = ex.health();
            assert_eq!(h.losses, 0, "no chaos configured, no losses expected");
            let sharded_ns = time_median(w, k, || {
                ex.scan_arc(ShardKind::Sum, &data).expect("sharded scan failed")
            });
            rows.push(Row {
                kernel: match shards {
                    1 => "+-scan(shard=1)",
                    2 => "+-scan(shard=2)",
                    _ => "+-scan(shard=4)",
                },
                n: stream_n,
                old_ns: base_ns,
                new_ns: sharded_ns,
            });
        }
    }

    println!(
        "{:>18} {:>10} {:>14} {:>14} {:>9} {:>8}",
        "kernel", "n", "old ns", "new ns", "speedup", "GB/s"
    );
    for r in &rows {
        let gbps = r
            .gbps()
            .map_or_else(|| "-".to_string(), |g| format!("{g:.2}"));
        println!(
            "{:>18} {:>10} {:>14} {:>14} {:>8.2}x {:>8}",
            r.kernel,
            r.n,
            r.old_ns,
            r.new_ns,
            r.speedup(),
            gbps
        );
    }

    // Roofline gap at the largest size: how far the one-pass scans sit
    // from the streamed-copy floor — against both the reused-buffer
    // bandwidth roofline and the allocate-a-fresh-Vec roofline that
    // matches the kernels' own calling convention.
    for base in ["memcpy", "memcpy(fresh)"] {
        if let Some(mem) = rows.iter().rev().find(|r| r.kernel == base) {
            for kernel in ["+-scan", "+-scan(lookback)"] {
                if let Some(r) = rows
                    .iter()
                    .rev()
                    .find(|r| r.kernel == kernel && r.n == mem.n)
                {
                    println!(
                        "roofline: {} at n=2^{} runs at {:.2}x {}",
                        kernel,
                        mem.n.ilog2(),
                        r.new_ns as f64 / mem.new_ns.max(1) as f64,
                        base
                    );
                }
            }
        }
    }

    if chaos {
        run_chaos(smoke);
    }

    if smoke {
        println!("smoke mode: correctness verified, no JSON written");
        return;
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"simd\": \"{simd}\",\n"));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let gbps = r
            .gbps()
            .map_or_else(|| "null".to_string(), |g| format!("{g:.3}"));
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"n\": {}, \"old_ns\": {}, \"new_ns\": {}, \"speedup\": {:.3}, \"gbps\": {}}}{}\n",
            r.kernel,
            r.n,
            r.old_ns,
            r.new_ns,
            r.speedup(),
            gbps,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_engine.json");
    println!("wrote {out_path}");
}
