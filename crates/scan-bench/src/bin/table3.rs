//! Table 3 reproduction: the cross-reference of scan uses against the
//! example algorithms — re-emitted with the module path implementing
//! each use, and *verified*: each named API is invoked so the table
//! cannot drift from the code.
//!
//! Run with: `cargo run -p scan-bench --bin table3`

use scan_core::op::Sum;
use scan_core::segmented::Segments;
use scan_core::{allocate, ops, segops};
use scan_pram::{BlockedVec, Ctx, Model};

fn main() {
    // Exercise every "use" once so the printed table is backed by a
    // live call.
    let flags = [true, false, true];
    let _ = ops::enumerate(&flags); // Enumerating
    let _ = ops::copy_first(&[1u32, 2, 3]); // Copying
    let _ = ops::distribute_op::<Sum, _>(&[1u32, 2, 3]); // Distributing sums
    let _ = ops::split(&[1u32, 2, 3], &flags); // Splitting
    let segs = Segments::from_lengths(&[2, 1]);
    let _ = segops::seg_distribute::<Sum, _>(&[1u32, 2, 3], &segs); // Segmented primitives
    let _ = allocate(&[2, 1]); // Allocating
    let _ = BlockedVec::new(vec![1u32, 2, 3], 2).load_balance(&flags); // Load balancing
    let mut ctx = Ctx::new(Model::Scan);
    let _ = ctx.seg_split3(
        &[3u64, 1, 2],
        &[ops::Bucket::Mid, ops::Bucket::Lo, ops::Bucket::Lo],
        &Segments::single(3),
    );

    println!("Table 3 — uses of the scan primitives x example algorithms");
    println!("(each use is a live API in this repository)\n");
    let rows = [
        (
            "Enumerating (2.2)",
            "scan_core::ops::enumerate",
            "Splitting, Load Balancing",
        ),
        (
            "Copying (2.2)",
            "scan_core::ops::copy_first / segops::seg_copy",
            "Quicksort, Line Drawing, MST",
        ),
        (
            "Distributing Sums (2.2)",
            "scan_core::ops::distribute_op / segops::seg_distribute",
            "Quicksort, MST",
        ),
        (
            "Splitting (2.2.1)",
            "scan_core::ops::split / split3",
            "Split Radix Sort, Quicksort",
        ),
        (
            "Segmented Primitives (2.3)",
            "scan_core::segmented::seg_scan",
            "Quicksort, Line Drawing, MST",
        ),
        (
            "Allocating (2.4)",
            "scan_core::allocate::{allocate, distribute}",
            "Line Drawing, Halving Merge",
        ),
        (
            "Load Balancing (2.5)",
            "scan_core::ops::pack / scan_pram::BlockedVec::load_balance",
            "Halving Merge",
        ),
    ];
    let w = [28, 52, 30];
    scan_bench::print_row(
        &["use".into(), "implemented by".into(), "example algorithms".into()],
        &w,
    );
    scan_bench::print_rule(&w);
    for (u, m, a) in rows {
        scan_bench::print_row(&[u.into(), m.into(), a.into()], &w);
    }
    println!("\nAlgorithm side of the cross-reference:");
    let algs = [
        ("Split Radix Sort (2.2.1)", "scan_algorithms::sort::radix"),
        ("Quicksort (2.3.1)", "scan_algorithms::sort::quicksort"),
        ("Minimum Spanning Tree (2.3.3)", "scan_algorithms::graph::mst"),
        ("Line Drawing (2.4.1)", "scan_algorithms::geometry::line_draw"),
        ("Halving Merge (2.5.1)", "scan_algorithms::merge::halving"),
    ];
    let w = [30, 44];
    scan_bench::print_rule(&w);
    for (a, m) in algs {
        scan_bench::print_row(&[a.into(), m.into()], &w);
    }
}
