//! Table 2 reproduction: a scan costs no more than a shared-memory
//! reference, in theory and "in hardware" — here, on the cycle-accurate
//! circuit simulator versus a butterfly-network reference model —
//! plus the §3.3 example system timings.
//!
//! Run with: `cargo run -p scan-bench --release --bin table2`

use scan_bench::{print_row, print_rule, random_keys};
use scan_circuit::{baseline, ExampleSystem, HardwareCost, OpKind, TreeScanCircuit};

fn main() {
    println!("Table 2 — memory reference vs scan operation\n");
    println!("Theoretical rows (models, n processors):");
    let widths = [34, 22, 22];
    print_row(
        &["".into(), "memory reference".into(), "scan operation".into()],
        &widths,
    );
    print_rule(&widths);
    print_row(
        &[
            "VLSI time".into(),
            "O(lg n)   [Leighton]".into(),
            "O(lg n) [Leiserson]".into(),
        ],
        &widths,
    );
    print_row(
        &[
            "VLSI area (model @ n=64K)".into(),
            format!("{:.2e}", baseline::network_area_model(1 << 16)),
            format!("{:.2e}", baseline::scan_area_model(1 << 16)),
        ],
        &widths,
    );
    print_row(
        &[
            "circuit depth".into(),
            "O(lg n)  [AKS]".into(),
            "O(lg n)  [Fich]".into(),
        ],
        &widths,
    );
    print_row(
        &[
            "circuit size (components @64K)".into(),
            format!("{}", baseline::butterfly_switches(1 << 16)),
            format!("{}", HardwareCost::for_leaves(1 << 16).size_components()),
        ],
        &widths,
    );
    print_rule(&widths);

    println!("\nMeasured rows (64K processors, 32-bit fields — the CM-2 point;");
    println!("the paper reports 600 cycles for a reference, 550 for a scan):\n");
    // The model numbers...
    let n = 1 << 16;
    let model_scan = baseline::scan_bit_cycles(n, 32);
    let model_ref = baseline::memory_reference_bit_cycles(n, 32);
    // ...and the scan measured on the actual simulated circuit. The
    // full 64K-leaf circuit is large; simulate it exactly.
    let values = random_keys(n, 32, 7);
    let mut circuit = TreeScanCircuit::new(n);
    let run = circuit.scan(OpKind::Plus, &values, 32);
    let widths = [34, 22, 22];
    print_row(
        &["".into(), "memory reference".into(), "scan operation".into()],
        &widths,
    );
    print_rule(&widths);
    print_row(
        &[
            "bit cycles (model)".into(),
            model_ref.to_string(),
            model_scan.to_string(),
        ],
        &widths,
    );
    // Measured on the packet-level butterfly simulator: a full random
    // permutation of 32-bit reads (request + pipelined reply).
    let router = scan_circuit::ButterflyRouter::new(n);
    let mut perm: Vec<usize> = (0..n).collect();
    let mut x = 0x1234_5678_9abc_def0u64;
    for i in (1..n).rev() {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (x >> 33) as usize % (i + 1);
        perm.swap(i, j);
    }
    let router_bits = 2 * router.reference_bit_cycles(&perm, 32);
    print_row(
        &[
            "bit cycles (simulated router)".into(),
            router_bits.to_string(),
            "-".into(),
        ],
        &widths,
    );
    print_row(
        &[
            "bit cycles (simulated circuit)".into(),
            "-".into(),
            run.cycles.to_string(),
        ],
        &widths,
    );
    // Segmented scans in hardware cost one extra bit cycle (the flag
    // leads each frame) — §3's "little additional hardware".
    let mut seg_circuit = scan_circuit::SegTreeScanCircuit::new(n);
    let flags: Vec<bool> = (0..n).map(|i| i % 16 == 0).collect();
    let seg_run = seg_circuit.seg_scan(scan_circuit::OpKind::Plus, &values, &flags, 32);
    print_row(
        &[
            "  segmented scan (simulated)".into(),
            "-".into(),
            seg_run.cycles.to_string(),
        ],
        &widths,
    );
    print_row(
        &[
            "extra hardware needed".into(),
            "the router itself".into(),
            "0 (shares wires)".into(),
        ],
        &widths,
    );
    print_rule(&widths);
    println!(
        "\nShape check: scan ({}) <= reference (model {}, simulated router {}) —",
        run.cycles, model_ref, router_bits
    );
    println!("as in the paper, where the scan (550) beat the reference (600) on");
    println!("the CM-2.");

    // Correctness of the giant run, spot-checked.
    let mut acc = 0u64;
    for (i, &v) in values.iter().enumerate() {
        if i % 9999 == 0 {
            assert_eq!(run.values[i], acc & 0xFFFF_FFFF);
        }
        acc = (acc + v) & 0xFFFF_FFFF;
    }
    println!("(64K-leaf circuit output spot-verified against software.)");

    println!("\n§3.3 example system (4096 processors, 64 per board):");
    let sys = ExampleSystem::paper_config();
    println!(
        "  per-board chip: {} sum state machines, {} shift registers (paper: 126, 63)",
        sys.state_machines_per_chip(),
        sys.shift_registers_per_chip()
    );
    println!(
        "  32-bit scan @100ns clock: {:.1} us  (paper: ~5 us)",
        sys.scan_time_us(32)
    );
    let fast = ExampleSystem { clock_ns: 10.0, ..sys };
    println!(
        "  32-bit scan @ 10ns clock: {:.2} us (paper: ~0.5 us)",
        fast.scan_time_us(32)
    );
}
