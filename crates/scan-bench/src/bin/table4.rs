//! Table 4 reproduction: split radix sort vs bitonic sort.
//!
//! The paper reports 20,000 vs 19,000 bit cycles for 16-bit keys on a
//! 64K-processor CM-1 — near parity, with the radix sort slightly
//! behind (it ran in macrocode). We reproduce the comparison three
//! ways: the theoretical bit-time formulas, our bit-serial cost models
//! at the paper's exact configuration, and measured wall clock of the
//! real implementations on this machine.
//!
//! Run with: `cargo run -p scan-bench --release --bin table4`

use std::time::Instant;

use scan_algorithms::sort::{bitonic_sort, split_radix_sort};
use scan_bench::{print_row, print_rule, random_keys};
use scan_circuit::baseline;

fn time_ms(mut f: impl FnMut()) -> f64 {
    // One warmup, then the best of three (Criterion covers the
    // rigorous version in benches/sorts.rs).
    f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    println!("Table 4 — split radix sort vs bitonic sort (n keys, d bits)\n");
    let widths = [38, 18, 14];
    print_row(
        &["".into(), "split radix".into(), "bitonic".into()],
        &widths,
    );
    print_rule(&widths);
    print_row(
        &[
            "theoretical bit time".into(),
            "O(d lg n)".into(),
            "O(d + lg^2 n)".into(),
        ],
        &widths,
    );
    let (n, d) = (1usize << 16, 16u32);
    let radix_cycles = baseline::split_radix_sort_bit_cycles(n, d);
    let bitonic_cycles = baseline::bitonic_sort_bit_cycles(n, d);
    print_row(
        &[
            "bit cycles, model (n=64K, d=16)".into(),
            radix_cycles.to_string(),
            bitonic_cycles.to_string(),
        ],
        &widths,
    );
    print_row(
        &[
            "bit cycles, paper (CM-1 measured)".into(),
            "20,000".into(),
            "19,000".into(),
        ],
        &widths,
    );
    print_rule(&widths);
    println!(
        "\nmodel ratio radix/bitonic = {:.2}   (paper: 20000/19000 = 1.05)",
        radix_cycles as f64 / bitonic_cycles as f64
    );

    println!("\nWall clock on this machine (same keys, results asserted equal):");
    let widths = [10, 16, 16, 10];
    print_row(
        &[
            "n".into(),
            "split radix ms".into(),
            "bitonic ms".into(),
            "ratio".into(),
        ],
        &widths,
    );
    print_rule(&widths);
    for lg in [12u32, 14, 16, 18] {
        let n = 1usize << lg;
        let keys = random_keys(n, 16, 99);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(split_radix_sort(&keys, 16), expect);
        assert_eq!(bitonic_sort(&keys), expect);
        let radix_ms = time_ms(|| {
            std::hint::black_box(split_radix_sort(std::hint::black_box(&keys), 16));
        });
        let bitonic_ms = time_ms(|| {
            std::hint::black_box(bitonic_sort(std::hint::black_box(&keys)));
        });
        print_row(
            &[
                n.to_string(),
                format!("{radix_ms:.2}"),
                format!("{bitonic_ms:.2}"),
                format!("{:.2}", radix_ms / bitonic_ms),
            ],
            &widths,
        );
    }
    println!("\nShape check: the two sorts stay within a small factor of each");
    println!("other at every size, with bitonic's lg^2 n stage count slowly");
    println!("losing ground as n grows — the same crossover Table 4 implies.");
}
