//! Table 5 reproduction: "the processor-step complexity of many
//! algorithms can be reduced by using fewer processors and assigning
//! many elements to each processor."
//!
//! For the halving merge, list ranking and the Euler-tour tree
//! computations we measure steps at `p = n` and at `p = n/lg n`, and
//! report the processor-step product — which must fall from
//! `Θ(n lg n)` toward `Θ(n)`.
//!
//! Run with: `cargo run -p scan-bench --release --bin table5`

use scan_algorithms::list_rank::{contraction_rank_ctx, random_list, wyllie_rank_ctx};
use scan_algorithms::merge::halving::halving_merge_ctx;
use scan_algorithms::tree_ops::euler_tour_ctx;
use scan_bench::{print_row, print_rule, sorted_keys, Rng};
use scan_pram::{Ctx, Model};

type CaseFn = Box<dyn Fn(&mut Ctx, usize)>;

struct Case {
    name: &'static str,
    run: CaseFn,
}

fn main() {
    println!("Table 5 — processor-step complexity with p = n vs p = n/lg n\n");
    let cases = vec![
        Case {
            name: "Halving Merge",
            run: Box::new(|ctx, n| {
                let a = sorted_keys(n / 2, 30, 1);
                let b = sorted_keys(n / 2, 30, 2);
                halving_merge_ctx(ctx, &a, &b);
            }),
        },
        Case {
            name: "List Ranking (contraction)",
            run: Box::new(|ctx, n| {
                let next = random_list(n, 3);
                contraction_rank_ctx(ctx, &next, 7);
            }),
        },
        Case {
            name: "List Ranking (Wyllie, control)",
            run: Box::new(|ctx, n| {
                let next = random_list(n, 3);
                wyllie_rank_ctx(ctx, &next);
            }),
        },
        Case {
            name: "Tree Contraction (Euler tour)",
            run: Box::new(|ctx, n| {
                let mut rng = Rng::new(5);
                let edges: Vec<(usize, usize)> = (1..n)
                    .map(|v| ((rng.next() as usize) % v, v))
                    .collect();
                euler_tour_ctx(ctx, n, &edges, 0, 9);
            }),
        },
    ];
    let widths = [30, 8, 10, 10, 14, 14, 7];
    print_row(
        &[
            "algorithm".into(),
            "n".into(),
            "steps@n".into(),
            "steps@n/lg".into(),
            "proc-steps@n".into(),
            "proc-steps@n/lg".into(),
            "gain".into(),
        ],
        &widths,
    );
    print_rule(&widths);
    for case in cases {
        for (k, lg) in [12u32, 14, 16].into_iter().enumerate() {
            let n = 1usize << lg;
            let mut full = Ctx::with_processors(Model::Scan, n);
            (case.run)(&mut full, n);
            let p = n / lg as usize;
            let mut few = Ctx::with_processors(Model::Scan, p);
            (case.run)(&mut few, n);
            let product_full = full.steps() * n as u64;
            let product_few = few.steps() * p as u64;
            print_row(
                &[
                    if k == 0 { case.name.into() } else { String::new() },
                    n.to_string(),
                    full.steps().to_string(),
                    few.steps().to_string(),
                    product_full.to_string(),
                    product_few.to_string(),
                    format!("{:.2}", product_full as f64 / product_few as f64),
                ],
                &widths,
            );
        }
        print_rule(&widths);
    }
    println!("\nReading the table:");
    println!(" - at p = n the products grow like n lg n (the paper's first rows);");
    println!(" - at p = n/lg n the work-efficient algorithms keep their step");
    println!("   counts near O(lg n), so the product falls toward O(n) and the");
    println!("   gain column grows with n;");
    println!(" - Wyllie's pointer jumping is the control: its work is Θ(n lg n)");
    println!("   regardless of p, so reducing processors cannot rescue it —");
    println!("   its gain stays near the others' at small n but stops growing.");
}
