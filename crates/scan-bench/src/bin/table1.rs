//! Table 1 reproduction: step complexity of the algorithm suite under
//! the EREW P-RAM versus the scan model.
//!
//! The paper's table lists the best-known asymptotic bounds per model;
//! our measurement runs *this repository's scan-based algorithms* under
//! both cost models and shows the table's substance directly: the same
//! program costs an extra `Θ(lg n)` factor the moment scans stop being
//! unit-time. Bitonic sort is included as the control — it uses no
//! scans, so the two models charge it identically.
//!
//! Run with: `cargo run -p scan-bench --release --bin table1`

use scan_bench::{connected_graph, print_row, print_rule, random_keys, random_points, Rng};
use scan_pram::{Ctx, Model};

type RunFn = Box<dyn Fn(&mut Ctx, usize, u64)>;

struct Row {
    name: &'static str,
    paper_erew: &'static str,
    paper_scan: &'static str,
    run: RunFn,
}

fn rows() -> Vec<Row> {
    vec![
        Row {
            name: "Minimum Spanning Tree",
            paper_erew: "O(lg^2 n)",
            paper_scan: "O(lg n)",
            run: Box::new(|ctx, n, seed| {
                let edges = connected_graph(n, 4 * n, seed);
                scan_algorithms::graph::mst::minimum_spanning_tree_ctx(ctx, n, &edges, seed);
            }),
        },
        Row {
            name: "Connected Components",
            paper_erew: "O(lg^2 n)",
            paper_scan: "O(lg n)",
            run: Box::new(|ctx, n, seed| {
                let edges = connected_graph(n, 2 * n, seed);
                scan_algorithms::graph::components::connected_components_ctx(
                    ctx, n, &edges, seed,
                );
            }),
        },
        Row {
            name: "Maximal Independent Set",
            paper_erew: "O(lg^2 n)",
            paper_scan: "O(lg n)",
            run: Box::new(|ctx, n, seed| {
                let edges = connected_graph(n, 2 * n, seed);
                scan_algorithms::graph::mis::maximal_independent_set_ctx(ctx, n, &edges, seed);
            }),
        },
        Row {
            name: "Biconnected Components",
            paper_erew: "O(lg^2 n)",
            paper_scan: "O(lg n)",
            run: Box::new(|ctx, n, seed| {
                let edges = connected_graph(n, 2 * n, seed);
                scan_algorithms::graph::biconnected::biconnected_components_ctx(
                    ctx, n, &edges, seed,
                );
            }),
        },
        Row {
            name: "Sorting (split radix)",
            paper_erew: "O(lg n)*",
            paper_scan: "O(lg n)",
            run: Box::new(|ctx, n, seed| {
                let bits = (usize::BITS - n.leading_zeros()).min(20);
                let keys = random_keys(n, bits, seed);
                scan_algorithms::sort::radix::split_radix_sort_ctx(ctx, &keys, bits);
            }),
        },
        Row {
            name: "Sorting (quicksort)",
            paper_erew: "O(lg n)*",
            paper_scan: "O(lg n) exp.",
            run: Box::new(|ctx, n, seed| {
                let keys = random_keys(n, 30, seed);
                scan_algorithms::sort::quicksort::quicksort_ctx(
                    ctx,
                    &keys,
                    scan_algorithms::sort::quicksort::PivotRule::Random(seed),
                );
            }),
        },
        Row {
            name: "Sorting (bitonic, control)",
            paper_erew: "O(lg^2 n)",
            paper_scan: "O(lg^2 n)",
            run: Box::new(|ctx, n, seed| {
                let keys = random_keys(n, 30, seed);
                scan_algorithms::sort::bitonic::bitonic_sort_ctx(ctx, &keys);
            }),
        },
        Row {
            name: "Merging (halving merge)",
            paper_erew: "O(lg n)",
            paper_scan: "O(lg lg n)**",
            run: Box::new(|ctx, n, seed| {
                let a = scan_bench::sorted_keys(n / 2, 30, seed);
                let b = scan_bench::sorted_keys(n / 2, 30, seed ^ 99);
                scan_algorithms::merge::halving::halving_merge_ctx(ctx, &a, &b);
            }),
        },
        Row {
            name: "Convex Hull",
            paper_erew: "O(lg n)",
            paper_scan: "O(lg n)",
            run: Box::new(|ctx, n, seed| {
                let pts = random_points(n, 1 << 19, seed);
                scan_algorithms::geometry::hull::convex_hull_ctx(ctx, &pts);
            }),
        },
        Row {
            name: "Building a K-D Tree",
            paper_erew: "O(lg^2 n)",
            paper_scan: "O(lg n)",
            run: Box::new(|ctx, n, seed| {
                let pts = random_points(n, 1 << 19, seed);
                scan_algorithms::geometry::kdtree::KdTree::build_ctx(ctx, &pts);
            }),
        },
        Row {
            name: "Closest Pair in the Plane",
            paper_erew: "O(lg^2 n)",
            paper_scan: "O(lg n)",
            run: Box::new(|ctx, n, seed| {
                let pts = random_points(n, 1 << 19, seed);
                scan_algorithms::geometry::closest_pair::closest_pair_ctx(ctx, &pts);
            }),
        },
        Row {
            name: "Line of Sight",
            paper_erew: "O(lg n)",
            paper_scan: "O(1)",
            run: Box::new(|ctx, n, seed| {
                let mut rng = Rng::new(seed);
                let alts: Vec<f64> = (0..n).map(|_| rng.below(1000) as f64).collect();
                scan_algorithms::geometry::line_of_sight::line_of_sight_ctx(ctx, 5.0, &alts);
            }),
        },
        Row {
            name: "Line Drawing",
            paper_erew: "O(lg n)",
            paper_scan: "O(1)",
            run: Box::new(|ctx, n, seed| {
                let mut rng = Rng::new(seed);
                let lines: Vec<((i64, i64), (i64, i64))> = (0..n / 16)
                    .map(|_| {
                        (
                            (rng.below(512) as i64, rng.below(512) as i64),
                            (rng.below(512) as i64, rng.below(512) as i64),
                        )
                    })
                    .collect();
                scan_algorithms::geometry::line_draw::draw_lines_ctx(ctx, &lines);
            }),
        },
        Row {
            name: "Vector x Matrix",
            paper_erew: "O(lg n)",
            paper_scan: "O(1)",
            run: Box::new(|ctx, n, seed| {
                let side = (n as f64).sqrt() as usize;
                let mut rng = Rng::new(seed);
                let a = scan_algorithms::matrix::Matrix::new(
                    side,
                    side,
                    (0..side * side).map(|_| rng.below(100) as f64).collect(),
                );
                let x: Vec<f64> = (0..side).map(|_| rng.below(100) as f64).collect();
                scan_algorithms::matrix::vec_matrix_ctx(ctx, &x, &a);
            }),
        },
        Row {
            name: "Matrix x Matrix",
            paper_erew: "O(n)",
            paper_scan: "O(n)",
            run: Box::new(|ctx, n, seed| {
                let side = (n as f64).sqrt() as usize;
                let mut rng = Rng::new(seed);
                let a = scan_algorithms::matrix::Matrix::new(
                    side,
                    side,
                    (0..side * side).map(|_| rng.below(100) as f64).collect(),
                );
                scan_algorithms::matrix::mat_mul_ctx(ctx, &a, &a);
            }),
        },
        Row {
            name: "Linear System Solver",
            paper_erew: "O(n lg n)",
            paper_scan: "O(n)",
            run: Box::new(|ctx, n, seed| {
                let side = (n as f64).sqrt() as usize;
                let mut rng = Rng::new(seed);
                let mut data: Vec<f64> =
                    (0..side * side).map(|_| rng.below(100) as f64 + 1.0).collect();
                for i in 0..side {
                    data[i * side + i] += 1000.0; // well-conditioned
                }
                let a = scan_algorithms::matrix::Matrix::new(side, side, data);
                let b: Vec<f64> = (0..side).map(|_| rng.below(100) as f64).collect();
                scan_algorithms::matrix::solve_ctx(ctx, &a, &b);
            }),
        },
    ]
}

fn main() {
    println!("Table 1 — step complexity, EREW P-RAM vs the scan model");
    println!("(measured on this repository's scan-based algorithms; the");
    println!(" paper's asymptotic columns are reprinted for reference)\n");
    let sizes = [1usize << 10, 1 << 12, 1 << 14];
    let widths = [28, 8, 10, 10, 7, 11, 12];
    print_row(
        &[
            "algorithm".into(),
            "n".into(),
            "EREW".into(),
            "Scan".into(),
            "ratio".into(),
            "paper EREW".into(),
            "paper Scan".into(),
        ],
        &widths,
    );
    print_rule(&widths);
    for row in rows() {
        let mut ratios = Vec::new();
        for (k, &n) in sizes.iter().enumerate() {
            let mut erew = Ctx::new(Model::Erew);
            (row.run)(&mut erew, n, 42);
            let mut scan = Ctx::new(Model::Scan);
            (row.run)(&mut scan, n, 42);
            let ratio = erew.steps() as f64 / scan.steps().max(1) as f64;
            ratios.push(ratio);
            print_row(
                &[
                    if k == 0 { row.name.into() } else { String::new() },
                    n.to_string(),
                    erew.steps().to_string(),
                    scan.steps().to_string(),
                    format!("{ratio:.2}"),
                    if k == 0 { row.paper_erew.into() } else { String::new() },
                    if k == 0 { row.paper_scan.into() } else { String::new() },
                ],
                &widths,
            );
        }
        print_rule(&widths);
        let _ = ratios;
    }
    println!("\n*  Table 1's EREW sorting row is Cole's O(lg n) mergesort, which no");
    println!("   one (including the paper, see §2.2.1) considers practical; the");
    println!("   measured rows show the same scan-based algorithm under both charge");
    println!("   models, i.e. exactly the factor the scan primitives remove.");
    println!("** The paper's O(lg lg n) merge row is the CREW bound; the halving");
    println!("   merge measured here is the paper's §2.5.1 algorithm at p = n.");
    println!("\nMax Flow is listed in Table 1 but not described in this paper (it");
    println!("cites [7,8]); it is out of scope — see DESIGN.md. Biconnected");
    println!("components (also cited out) IS reproduced above, via Tarjan-Vishkin");
    println!("on this repository's Euler-tour + connectivity machinery.");
}
